#!/usr/bin/env bash
# Tier-1 verify wrapper: configure, build, test.
#
#   scripts/check.sh [Debug|Release] [extra cmake args...]
#
# Mirrors what CI runs; PPR_BUILD_BENCH=ON is included so bench bitrot is
# caught at compile time.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_TYPE="${1:-Release}"
shift || true

BUILD_DIR="build-${BUILD_TYPE,,}"

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE="${BUILD_TYPE}" \
  -DPPR_BUILD_BENCH=ON \
  "$@"
cmake --build "${BUILD_DIR}" -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"
