#!/usr/bin/env bash
# Tier-1 verify wrapper — the same entry point CI uses, so a local run
# reproduces any CI job's commands exactly.
#
#   scripts/check.sh [Debug|Release] [extra cmake args...]
#       configure, build (benches included, so bench bitrot is caught at
#       compile time), ctest.
#
#   scripts/check.sh --sanitize=thread
#   scripts/check.sh --sanitize=address,undefined
#       sanitizer build via -DPPR_SANITIZE. thread runs the concurrency
#       suites twice (default parallelism and PPR_THREADS=1) — TSAN
#       slows the numeric sweeps ~10x for no added coverage; the other
#       sanitizers run the full suite.
#
#   scripts/check.sh --analyze
#       Clang -Wthread-safety as errors via -DPPR_ANALYZE (needs
#       clang++; set CXX to pick one).
#
#   scripts/check.sh --tidy
#       clang-tidy with the repo .clang-tidy (scripts/run_tidy.sh) plus
#       the raw-mutex confinement check.

set -euo pipefail
cd "$(dirname "$0")/.."

MODE=build
BUILD_TYPE=Release
SANITIZE=""
ARGS=()
for arg in "$@"; do
  case "${arg}" in
    Debug|Release) BUILD_TYPE="${arg}" ;;
    --tidy) MODE=tidy ;;
    --analyze) MODE=analyze ;;
    --sanitize=*) MODE=sanitize; SANITIZE="${arg#--sanitize=}" ;;
    *) ARGS+=("${arg}") ;;
  esac
done

# The concurrency surface TSAN covers: worker pool, ParallelFor kernels,
# the PprServer queue/context-checkout path, the updates-under-load
# suite (PprServerDynamicTest matches PprServer*), which races
# ApplyUpdates' exclusive epoch barrier against concurrent queries, the
# chaos suites (PprServerChaosTest / PprServerQueueTest), which race
# cancellation, deadlines, injected faults and bounded-drain shutdown
# against all of the above, the dynamic resize conformance suite
# (DynamicResizeTest), whose node add/remove batches grow and shrink
# tracker and walk-index dimensions under the same epoch machinery, and
# the fused multi-source tier (BatchFusedTest / BatchForaTest /
# BatchTopKEarlyTest for the threaded kernel, BatchQueueTest /
# PprServerBatchTest for queue coalescing), which races multi-threaded
# SolveMany blocks and worker-side batch draining against the queue and
# epoch barrier. The sharded tier (Sharded* suites) races the routing
# front-end — owner and scatter-gather submission, merger threads, the
# cross-shard epoch barrier, and the sharded chaos/bounded-drain
# paths — against N concurrent PprServer shards.
TSAN_FILTER='WorkerPool*:ThreadBudget*:PprServer*:ParallelFor*:Batch*:DynamicResize*:Sharded*'

case "${MODE}" in
  tidy)
    exec scripts/run_tidy.sh "${ARGS[@]+"${ARGS[@]}"}"
    ;;

  analyze)
    export CXX="${CXX:-clang++}"
    BUILD_DIR=build-analyze
    cmake -B "${BUILD_DIR}" -S . \
      -DCMAKE_BUILD_TYPE=Debug \
      -DPPR_ANALYZE=ON \
      -DPPR_BUILD_BENCH=ON \
      "${ARGS[@]+"${ARGS[@]}"}"
    # The analysis runs at compile time; a clean build is the pass.
    cmake --build "${BUILD_DIR}" -j "$(nproc)"
    ;;

  sanitize)
    BUILD_DIR="build-san-${SANITIZE//,/-}"
    cmake -B "${BUILD_DIR}" -S . \
      -DCMAKE_BUILD_TYPE=Debug \
      -DPPR_SANITIZE="${SANITIZE}" \
      "${ARGS[@]+"${ARGS[@]}"}"
    cmake --build "${BUILD_DIR}" -j "$(nproc)"
    if [ "${SANITIZE}" = thread ]; then
      "${BUILD_DIR}/ppr_tests" --gtest_filter="${TSAN_FILTER}"
      PPR_THREADS=1 "${BUILD_DIR}/ppr_tests" --gtest_filter="${TSAN_FILTER}"
    else
      ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"
      PPR_THREADS=1 "${BUILD_DIR}/ppr_tests" --gtest_filter="${TSAN_FILTER}"
    fi
    ;;

  build)
    BUILD_DIR="build-${BUILD_TYPE,,}"
    cmake -B "${BUILD_DIR}" -S . \
      -DCMAKE_BUILD_TYPE="${BUILD_TYPE}" \
      -DPPR_BUILD_BENCH=ON \
      "${ARGS[@]+"${ARGS[@]}"}"
    cmake --build "${BUILD_DIR}" -j "$(nproc)"
    ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"
    ;;
esac
