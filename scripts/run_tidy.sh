#!/usr/bin/env bash
# clang-tidy over the library sources with the repo's .clang-tidy
# (warnings are errors there). CI's clang-tidy job and
# `scripts/check.sh --tidy` both land here, so local runs reproduce CI
# exactly.
#
#   scripts/run_tidy.sh [paths...]
#
# With no paths, lints every src/**/*.cc. Honors $CLANG_TIDY (binary to
# use) and $BUILD_DIR (compile-commands dir, default build-tidy).

set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${CLANG_TIDY}" >/dev/null 2>&1; then
  echo "error: ${CLANG_TIDY} not found — install clang-tidy or set" \
       "CLANG_TIDY" >&2
  exit 2
fi

# compile_commands.json drives tidy; bench/tests/examples are covered by
# -Wall builds and stay out of the lint surface.
BUILD_DIR="${BUILD_DIR:-build-tidy}"
cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DPPR_BUILD_TESTS=OFF \
  -DPPR_BUILD_EXAMPLES=OFF \
  > /dev/null

if [ "$#" -gt 0 ]; then
  files=("$@")
else
  mapfile -t files < <(find src -name '*.cc' | sort)
fi

echo "clang-tidy (${#files[@]} files, .clang-tidy, warnings are errors)"
"${CLANG_TIDY}" -p "${BUILD_DIR}" --quiet "${files[@]}"

# The wrapper layer is the one place raw std primitives are allowed;
# everywhere else they bypass the thread-safety annotations. Grep-level
# check so it runs even where clang-tidy itself is unavailable.
scripts/check_raw_mutex.sh
