#!/usr/bin/env bash
# No raw std synchronization primitives outside src/util/mutex.h: the
# annotated ppr::Mutex wrappers are what -Wthread-safety sees, so a raw
# std::mutex member is invisible to the analysis — exactly the hole the
# contracts exist to close.

set -euo pipefail
cd "$(dirname "$0")/.."

pattern='std::(mutex|shared_mutex|condition_variable|lock_guard|scoped_lock|unique_lock|shared_lock)'
offenders="$(grep -rnE "${pattern}" src --include='*.h' --include='*.cc' \
             | grep -v '^src/util/mutex\.h:' || true)"
if [ -n "${offenders}" ]; then
  echo "error: raw std synchronization primitive outside src/util/mutex.h" >&2
  echo "       (use ppr::Mutex / MutexLock / CondVar from util/mutex.h):" >&2
  echo "${offenders}" >&2
  exit 1
fi
echo "raw-mutex check: clean (wrappers confined to src/util/mutex.h)"
