// Quickstart: the 60-second tour of the library.
//
//   1. Build a graph (here: the 5-node example from the paper's Figure 1).
//   2. Answer a high-precision SSPPR query with PowerPush.
//   3. Answer an approximate SSPPR query with SpeedPPR.
//   4. Compare the two.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "approx/speedppr.h"
#include "core/power_push.h"
#include "graph/generators.h"
#include "util/rng.h"

int main() {
  using namespace ppr;

  // 1. A graph. Real applications use GraphBuilder / LoadGraphFromEdgeList;
  //    generators ship for experiments and demos.
  Graph graph = PaperExampleGraph();
  std::printf("graph: n=%u, m=%llu\n", graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()));

  // 2. High-precision query: pi(s, v) for all v, l1 error <= 1e-10.
  const NodeId source = 0;
  PowerPushOptions options;
  options.lambda = 1e-10;
  PprEstimate estimate;
  SolveStats stats = PowerPush(graph, source, options, &estimate);
  std::printf("\nPowerPush (lambda=%.0e, %llu pushes, %.3f ms):\n",
              options.lambda,
              static_cast<unsigned long long>(stats.push_operations),
              stats.seconds * 1e3);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    std::printf("  pi(v%u, v%u) = %.8f\n", source + 1, v + 1,
                estimate.reserve[v]);
  }

  // 3. Approximate query: relative error 0.1 for every node with
  //    pi >= 1/n, with probability 1 - 1/n.
  ApproxOptions approx;
  approx.epsilon = 0.1;
  Rng rng(42);  // all randomness is explicit and reproducible
  std::vector<double> approx_estimate;
  SolveStats approx_stats =
      SpeedPpr(graph, source, approx, rng, &approx_estimate);
  std::printf("\nSpeedPPR (eps=%.1f, %llu walks):\n", approx.epsilon,
              static_cast<unsigned long long>(approx_stats.random_walks));
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    double rel = estimate.reserve[v] > 0
                     ? (approx_estimate[v] - estimate.reserve[v]) /
                           estimate.reserve[v]
                     : 0.0;
    std::printf("  pi(v%u, v%u) ~ %.8f  (rel err %+.4f)\n", source + 1,
                v + 1, approx_estimate[v], rel);
  }
  return 0;
}
