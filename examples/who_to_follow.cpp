// Who-to-Follow: the classic PPR application the paper's introduction
// motivates (Twitter-style recommendation). For a user u in a directed
// social graph, rank the accounts u does not follow yet by pi(u, .) and
// recommend the top-k.
//
// Demonstrates:
//   * building the epsilon-independent SpeedPPR walk index once and
//     serving many users from it,
//   * ranking with eval/metrics' TopK,
//   * comparing against the exact ranking from PowerPush.
//
// Run:  ./build/examples/who_to_follow [num_users]

#include <cstdio>
#include <cstdlib>

#include "approx/speedppr.h"
#include "core/power_push.h"
#include "eval/metrics.h"
#include "eval/query_gen.h"
#include "graph/datasets.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace ppr;
  const size_t num_users = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3;
  constexpr size_t kTopK = 10;

  // A Twitter-like follower graph (directed, heavy-tailed).
  Graph graph = MakeDataset(FindDataset("twitter-sim"), /*scale=*/0.1);
  std::printf("social graph: n=%u users, m=%llu follow edges\n",
              graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()));

  // Build the index once; it serves every user and every epsilon.
  Rng index_rng(7);
  Timer index_timer;
  WalkIndex index =
      WalkIndex::Build(graph, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, index_rng);
  std::printf("walk index: %llu walks, built in %.2fs\n\n",
              static_cast<unsigned long long>(index.total_walks()),
              index_timer.ElapsedSeconds());

  ApproxOptions options;
  options.epsilon = 0.2;
  Rng rng(99);

  for (NodeId user : SampleQuerySources(graph, num_users, /*seed=*/3)) {
    std::vector<double> scores;
    Timer query_timer;
    SpeedPpr(graph, user, options, rng, &scores, &index);
    const double query_ms = query_timer.ElapsedMillis();

    // Mask the user themself and accounts already followed.
    scores[user] = 0.0;
    for (NodeId followee : graph.OutNeighbors(user)) scores[followee] = 0.0;
    std::vector<NodeId> recommended = TopK(scores, kTopK);

    // Exact ranking for comparison.
    PowerPushOptions exact_options;
    exact_options.lambda = 1e-10;
    PprEstimate exact;
    PowerPush(graph, user, exact_options, &exact);
    exact.reserve[user] = 0.0;
    for (NodeId followee : graph.OutNeighbors(user)) {
      exact.reserve[followee] = 0.0;
    }
    std::vector<NodeId> exact_top = TopK(exact.reserve, kTopK);
    const double precision = PrecisionAtK(scores, exact.reserve, kTopK);

    std::printf("user %u (follows %u accounts, %.1f ms query):\n", user,
                graph.OutDegree(user), query_ms);
    std::printf("  recommend:");
    for (NodeId r : recommended) std::printf(" %u", r);
    std::printf("\n  exact top:");
    for (NodeId r : exact_top) std::printf(" %u", r);
    std::printf("\n  precision@%zu vs exact: %.2f\n\n", kTopK, precision);
  }
  return 0;
}
