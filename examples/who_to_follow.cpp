// Who-to-Follow: the classic PPR application the paper's introduction
// motivates (Twitter-style recommendation). For a user u in a directed
// social graph, rank the accounts u does not follow yet by pi(u, .) and
// recommend the top-k.
//
// Demonstrates:
//   * building the epsilon-independent SpeedPPR walk index once and
//     serving many users from it,
//   * ranking with eval/metrics' TopK,
//   * comparing against the exact ranking from PowerPush,
//   * the fused multi-source tier: every user advanced through one CSR
//     traversal per sweep (batch=) with top-k early retirement
//     (topk_early=), versus the same solver run user by user.
//
// Run:  ./build/examples/who_to_follow [num_users]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "api/batch_solver.h"
#include "api/registry.h"
#include "approx/speedppr.h"
#include "core/power_push.h"
#include "eval/metrics.h"
#include "eval/query_gen.h"
#include "eval/topk_query.h"
#include "graph/datasets.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace ppr;
  const size_t num_users = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3;
  constexpr size_t kTopK = 10;

  // A Twitter-like follower graph (directed, heavy-tailed).
  Graph graph = MakeDataset(FindDataset("twitter-sim"), /*scale=*/0.1);
  std::printf("social graph: n=%u users, m=%llu follow edges\n",
              graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()));

  // Build the index once; it serves every user and every epsilon.
  Rng index_rng(7);
  Timer index_timer;
  WalkIndex index =
      WalkIndex::Build(graph, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, index_rng);
  std::printf("walk index: %llu walks, built in %.2fs\n\n",
              static_cast<unsigned long long>(index.total_walks()),
              index_timer.ElapsedSeconds());

  ApproxOptions options;
  options.epsilon = 0.2;
  Rng rng(99);

  for (NodeId user : SampleQuerySources(graph, num_users, /*seed=*/3)) {
    std::vector<double> scores;
    Timer query_timer;
    SpeedPpr(graph, user, options, rng, &scores, &index);
    const double query_ms = query_timer.ElapsedMillis();

    // Mask the user themself and accounts already followed.
    scores[user] = 0.0;
    for (NodeId followee : graph.OutNeighbors(user)) scores[followee] = 0.0;
    std::vector<NodeId> recommended = TopK(scores, kTopK);

    // Exact ranking for comparison.
    PowerPushOptions exact_options;
    exact_options.lambda = 1e-10;
    PprEstimate exact;
    PowerPush(graph, user, exact_options, &exact);
    exact.reserve[user] = 0.0;
    for (NodeId followee : graph.OutNeighbors(user)) {
      exact.reserve[followee] = 0.0;
    }
    std::vector<NodeId> exact_top = TopK(exact.reserve, kTopK);
    const double precision = PrecisionAtK(scores, exact.reserve, kTopK);

    std::printf("user %u (follows %u accounts, %.1f ms query):\n", user,
                graph.OutDegree(user), query_ms);
    std::printf("  recommend:");
    for (NodeId r : recommended) std::printf(" %u", r);
    std::printf("\n  exact top:");
    for (NodeId r : exact_top) std::printf(" %u", r);
    std::printf("\n  precision@%zu vs exact: %.2f\n\n", kTopK, precision);
  }

  // ---- fused multi-source tier --------------------------------------
  // One batch=-configured solver answers every user with a single CSR
  // pass per sweep; topk_early lets a user whose top-k gap already
  // exceeds their residual bound retire while the rest keep pushing.
  // The serial baseline runs the *same* spec user by user, so the only
  // difference is fusion — results are bit-identical by contract.
  const std::vector<NodeId> users =
      SampleQuerySources(graph, num_users, /*seed=*/3);
  NodeId max_followed = 0;
  for (NodeId user : users) {
    max_followed = std::max(max_followed, graph.OutDegree(user));
  }
  // Over-request so masking the user and their followees afterwards
  // still leaves kTopK genuine recommendations.
  const size_t request_k = kTopK + max_followed + 1;

  auto created = SolverRegistry::Global().Create(
      "fwdpush:rmax=1e-7,batch=64,topk_early=1");
  if (!created.ok()) {
    std::printf("fused solver unavailable\n");
    return 1;
  }
  auto solver = std::move(created).ValueOrDie();
  if (!solver->Prepare(graph).ok()) {
    std::printf("fused solver unavailable\n");
    return 1;
  }

  SolverContext serial_context;
  Timer serial_timer;
  std::vector<std::vector<NodeId>> serial_top(users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    PprQuery query;
    query.source = users[i];
    query.top_k = request_k;
    PprResult result;
    if (!solver->Solve(query, serial_context, &result).ok()) return 1;
    serial_top[i] = std::move(result.top_nodes);
  }
  const double serial_ms = serial_timer.ElapsedMillis();

  SolverContext fused_context;
  Timer fused_timer;
  const std::vector<TopKResult> fused =
      TopKPprBatch(*solver->AsBatch(), fused_context, users, request_k);
  const double fused_ms = fused_timer.ElapsedMillis();

  std::printf("fused tier (%zu users, batch=64, topk_early):\n",
              users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    if (fused[i].nodes != serial_top[i]) {
      std::printf("  MISMATCH vs serial for user %u\n", users[i]);
      return 1;
    }
    std::printf("  user %u recommend:", users[i]);
    size_t shown = 0;
    for (NodeId r : fused[i].nodes) {
      if (r == users[i]) continue;
      const auto followees = graph.OutNeighbors(users[i]);
      if (std::find(followees.begin(), followees.end(), r) !=
          followees.end()) {
        continue;
      }
      std::printf(" %u", r);
      if (++shown == kTopK) break;
    }
    std::printf("\n");
  }
  std::printf("  serial: %.1f ms total, fused: %.1f ms total (%.2fx)\n",
              serial_ms, fused_ms,
              fused_ms > 0.0 ? serial_ms / fused_ms : 0.0);
  return 0;
}
