// ppr_cli: answer SSPPR queries from the command line on your own graph.
//
// Usage:
//   ppr_cli <edge-list-file | dataset-name> <source> [options]
//     --algo=powerpush|powitr|fwdpush|speedppr|fora|mc   (default powerpush)
//     --lambda=1e-8      l1-error target (high-precision algorithms)
//     --eps=0.5          relative error (approximate algorithms)
//     --alpha=0.2        teleport probability
//     --topk=10          number of results printed
//     --undirected       symmetrize the input edge list
//
// The first argument is either a SNAP-format edge list ("src dst" per
// line, '#' comments) or a built-in dataset name such as "pokec-sim".

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "approx/fora.h"
#include "approx/monte_carlo.h"
#include "approx/speedppr.h"
#include "core/forward_push.h"
#include "core/power_iteration.h"
#include "core/power_push.h"
#include "eval/metrics.h"
#include "graph/datasets.h"
#include "graph/edge_list_io.h"
#include "util/flags.h"
#include "util/timer.h"

namespace {

using namespace ppr;

bool IsDatasetName(const std::string& name) {
  for (const DatasetSpec& spec : PaperDatasets()) {
    if (spec.name == name || spec.paper_name == name) return true;
  }
  return false;
}

int Usage(const FlagParser& parser) {
  std::fprintf(stderr,
               "usage: ppr_cli <edge-list | dataset-name> <source> [flags]\n"
               "%s",
               parser.Usage().c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string algo = "powerpush";
  double lambda = 1e-8;
  double eps = 0.5;
  double alpha = 0.2;
  uint64_t topk = 10;
  bool undirected = false;

  FlagParser parser;
  parser.AddString("algo", &algo,
                   "powerpush|powitr|fwdpush|speedppr|fora|mc");
  parser.AddDouble("lambda", &lambda, "l1-error target (high-precision)");
  parser.AddDouble("eps", &eps, "relative error (approximate)");
  parser.AddDouble("alpha", &alpha, "teleport probability");
  parser.AddUint64("topk", &topk, "number of results printed");
  parser.AddBool("undirected", &undirected, "symmetrize the edge list");

  Status parse_status = parser.Parse(argc, argv);
  if (!parse_status.ok()) {
    std::fprintf(stderr, "%s\n", parse_status.ToString().c_str());
    return Usage(parser);
  }
  if (parser.positional().size() != 2) return Usage(parser);
  const std::string input = parser.positional()[0];
  const NodeId source = static_cast<NodeId>(
      std::strtoul(parser.positional()[1].c_str(), nullptr, 10));

  Graph graph;
  if (IsDatasetName(input)) {
    graph = MakeDataset(FindDataset(input), /*scale=*/0.25);
  } else {
    BuildOptions options;
    options.symmetrize = undirected;
    auto loaded = LoadGraphFromEdgeList(input, options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", input.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded).ValueOrDie();
  }
  if (source >= graph.num_nodes()) {
    std::fprintf(stderr, "source %u out of range (n=%u)\n", source,
                 graph.num_nodes());
    return 1;
  }
  std::printf("graph: n=%u m=%llu | algo=%s source=%u\n", graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()),
              algo.c_str(), source);

  std::vector<double> scores;
  Rng rng(1);
  Timer timer;
  if (algo == "powerpush") {
    PowerPushOptions options;
    options.alpha = alpha;
    options.lambda = lambda;
    PprEstimate estimate;
    PowerPush(graph, source, options, &estimate);
    scores = std::move(estimate.reserve);
  } else if (algo == "powitr") {
    PowerIterationOptions options;
    options.alpha = alpha;
    options.lambda = lambda;
    PprEstimate estimate;
    PowerIteration(graph, source, options, &estimate);
    scores = std::move(estimate.reserve);
  } else if (algo == "fwdpush") {
    ForwardPushOptions options;
    options.alpha = alpha;
    options.rmax = lambda / static_cast<double>(graph.num_edges());
    PprEstimate estimate;
    FifoForwardPush(graph, source, options, &estimate);
    scores = std::move(estimate.reserve);
  } else if (algo == "speedppr" || algo == "fora" || algo == "mc") {
    ApproxOptions options;
    options.alpha = alpha;
    options.epsilon = eps;
    if (algo == "speedppr") {
      SpeedPpr(graph, source, options, rng, &scores);
    } else if (algo == "fora") {
      Fora(graph, source, options, rng, &scores);
    } else {
      MonteCarlo(graph, source, options, rng, &scores);
    }
  } else {
    std::fprintf(stderr, "unknown algorithm: %s\n", algo.c_str());
    return Usage(parser);
  }
  const double seconds = timer.ElapsedSeconds();

  std::printf("query time: %.4fs\ntop-%zu nodes by PPR:\n", seconds, topk);
  for (NodeId v : TopK(scores, topk)) {
    std::printf("  %8u  %.8f\n", v, scores[v]);
  }
  return 0;
}
