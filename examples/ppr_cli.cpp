// ppr_cli: answer SSPPR queries from the command line on your own graph.
//
// Usage:
//   ppr_cli <edge-list-file | dataset-name> <source> [options]
//     --algo=SPEC        solver spec, e.g. powerpush or speedppr:eps=0.1
//     --lambda=1e-8      l1-error target (high-precision algorithms)
//     --eps=0.5          relative error (approximate algorithms)
//     --alpha=0.2        teleport probability
//     --target=N         single-pair target (bippr / hubppr)
//     --topk=10          number of results printed
//     --undirected       symmetrize the input edge list
//
// Evolving-graph mode (--updates, needs a dynamic solver such as
// --algo=dynfwdpush) answers the query, applies an edge-update stream
// through DynamicSolver::ApplyUpdates, and answers again — printing the
// epoch, the repair cost and the maintained error bound:
//     --updates=FILE     "+ src dst" / "- src dst" per line, # comments
//     --updates=synthetic:count=200,deletes=0.2,skew=0.5,seed=13
//
// Serving mode (--serve) runs a PprServer on the loaded graph and fires
// randomly-sourced queries at it, reporting throughput, latency
// percentiles and backpressure rejections — a one-command load probe:
//     --serve            serve instead of answering one query
//     --qps=0            submission rate (0 = as fast as possible)
//     --duration=5       seconds of load
//     --serve-workers=0  server worker threads (0 = thread budget)
//     --serve-queue=1024 bounded queue capacity
//     --shards=1         >1 serves through a sharded tier instead
//     --partition=hash   node-ownership scheme (hash, range, degree)
//
// Every solver is dispatched through SolverRegistry — run with --help to
// see the registered names and their option keys. The spec may carry
// solver-specific overrides ("speedppr:eps=0.1,indexed=true"); the
// dedicated flags above override the spec for the common parameters.
//
// The first argument is either a SNAP-format edge list ("src dst" per
// line, '#' comments) or a built-in dataset name such as "pokec-sim".

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/context.h"
#include "api/dynamic_solver.h"
#include "api/registry.h"
#include "eval/experiment.h"
#include "eval/query_gen.h"
#include "graph/datasets.h"
#include "graph/edge_list_io.h"
#include "graph/partition.h"
#include "serve/ppr_server.h"
#include "serve/sharded_server.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace ppr;

bool IsDatasetName(const std::string& name) {
  for (const DatasetSpec& spec : PaperDatasets()) {
    if (spec.name == name || spec.paper_name == name) return true;
  }
  return false;
}

/// Open-loop load: --qps paces submissions (0 floods) until --duration
/// elapses. Works against PprServer and ShardedPprServer alike — both
/// speak Submit → PprFuture. Rejected submissions (full queue) are
/// counted by the server, not retried.
struct OpenLoopLoad {
  uint64_t fired = 0;
  std::vector<PprFuture> futures;
  double wall = 0.0;
};

template <typename Server>
OpenLoopLoad DriveOpenLoop(Server& server, const Graph& graph, double qps,
                           double duration) {
  OpenLoopLoad load;
  Rng rng(20260731);
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(duration));
  while (std::chrono::steady_clock::now() < deadline) {
    if (qps > 0) {
      const auto due =
          start +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(static_cast<double>(load.fired) /
                                            qps));
      // Check before sleeping: a slot past the deadline must not extend
      // the probe by one inter-arrival interval.
      if (due >= deadline) break;
      std::this_thread::sleep_until(due);
    }
    PprQuery query;
    query.source = static_cast<NodeId>(rng.NextBounded(graph.num_nodes()));
    auto submitted = server.Submit(query);
    load.fired++;
    if (submitted.ok()) {
      load.futures.push_back(std::move(submitted).ValueOrDie());
    } else {
      // Backpressure hit. The server already tallied the rejection;
      // back off briefly instead of hammering Submit millions of times.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  for (const PprFuture& f : load.futures) f.Wait();
  load.wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return load;
}

void PrintLatencies(const std::vector<PprFuture>& futures) {
  if (futures.empty()) return;
  std::vector<double> latencies;
  latencies.reserve(futures.size());
  for (const PprFuture& f : futures) latencies.push_back(f.latency_seconds());
  std::printf("latency: p50=%.3fms p99=%.3fms max=%.3fms\n",
              Percentile(latencies, 50.0) * 1e3,
              Percentile(latencies, 99.0) * 1e3,
              Percentile(latencies, 100.0) * 1e3);
}

/// --serve with --shards > 1: the same load probe against a sharded
/// tier — N in-process PprServer shards over a --partition split of the
/// graph — reporting the aggregated (cross-shard) counter taxonomy.
int RunShardedServeMode(const std::string& algo, const Graph& graph,
                        double qps, double duration, uint64_t workers,
                        uint64_t queue_capacity, uint64_t shards,
                        const std::string& partition) {
  auto scheme = ParsePartitionScheme(partition);
  if (!scheme.ok()) {
    std::fprintf(stderr, "serve: %s\n", scheme.status().ToString().c_str());
    return 1;
  }
  ShardedPprServerOptions options;
  options.shards = static_cast<size_t>(shards);
  options.partition = scheme.value();
  options.shard.workers = static_cast<unsigned>(workers);
  options.shard.queue_capacity = static_cast<size_t>(queue_capacity);
  ShardedPprServer server(options);
  Status added = server.AddSolver(algo, graph);
  if (!added.ok()) {
    std::fprintf(stderr, "serve: %s\n", added.ToString().c_str());
    return 1;
  }
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "serve: %s\n", started.ToString().c_str());
    return 1;
  }
  char qps_text[32] = "unlimited";
  if (qps > 0) std::snprintf(qps_text, sizeof(qps_text), "%g", qps);
  const PartitionReport& report = server.partition().report();
  std::printf("serving %s: shards=%zu partition=%s cut=%.1f%% "
              "workers/shard=%u queue/shard=%zu qps=%s duration=%.1fs\n",
              algo.c_str(), server.num_shards(),
              std::string(PartitionSchemeName(scheme.value())).c_str(),
              report.cut_fraction * 100.0, options.shard.workers,
              options.shard.queue_capacity, qps_text, duration);

  OpenLoopLoad load = DriveOpenLoop(server, graph, qps, duration);
  server.Stop();

  const ShardedPprServerStats stats = server.stats();
  std::printf("aggregated: submitted=%llu rejected=%llu completed=%llu "
              "failed=%llu shed=%llu cancelled=%llu updates=%llu "
              "(fired %llu)\n",
              static_cast<unsigned long long>(stats.total.submitted),
              static_cast<unsigned long long>(stats.total.rejected),
              static_cast<unsigned long long>(stats.total.completed),
              static_cast<unsigned long long>(stats.total.failed),
              static_cast<unsigned long long>(stats.total.shed),
              static_cast<unsigned long long>(stats.total.cancelled),
              static_cast<unsigned long long>(stats.updates_applied),
              static_cast<unsigned long long>(load.fired));
  for (size_t s = 0; s < stats.per_shard.size(); ++s) {
    std::printf("  shard %zu: submitted=%llu completed=%llu\n", s,
                static_cast<unsigned long long>(stats.per_shard[s].submitted),
                static_cast<unsigned long long>(stats.per_shard[s].completed));
  }
  std::printf("throughput: %.1f queries/s over %.2fs\n",
              static_cast<double>(stats.total.completed) / load.wall,
              load.wall);
  PrintLatencies(load.futures);
  return 0;
}

/// --serve: open-loop load generation against a PprServer hosting the
/// --algo solver. Sources are sampled uniformly; --qps paces
/// submissions (0 floods). Rejected submissions (full queue) are
/// counted, not retried — the report shows what the server sheds.
int RunServeMode(const std::string& algo, const Graph& graph, double qps,
                 double duration, uint64_t workers, uint64_t queue_capacity) {
  PprServerOptions options;
  options.workers = static_cast<unsigned>(workers);
  options.queue_capacity = static_cast<size_t>(queue_capacity);
  PprServer server(options);
  Status added = server.AddSolver(algo, graph);
  if (!added.ok()) {
    std::fprintf(stderr, "serve: %s\n", added.ToString().c_str());
    return 1;
  }
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "serve: %s\n", started.ToString().c_str());
    return 1;
  }
  char qps_text[32] = "unlimited";
  if (qps > 0) std::snprintf(qps_text, sizeof(qps_text), "%g", qps);
  std::printf("serving %s: workers=%u queue=%zu qps=%s duration=%.1fs\n",
              algo.c_str(), server.options().workers,
              server.options().queue_capacity, qps_text, duration);

  OpenLoopLoad load = DriveOpenLoop(server, graph, qps, duration);
  server.Stop();

  const PprServerStats stats = server.Snapshot();
  std::printf("submitted: %llu  accepted: %llu  rejected: %llu  "
              "completed: %llu  failed: %llu\n",
              static_cast<unsigned long long>(load.fired),
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.failed));
  std::printf("throughput: %.1f queries/s over %.2fs\n",
              static_cast<double>(stats.completed) / load.wall, load.wall);
  PrintLatencies(load.futures);
  return 0;
}

/// --updates: resolves the spec to an UpdateBatch — a "synthetic:..."
/// spec (key=val grammar shared with --algo) generates a stream against
/// the loaded graph; anything else is read as an update file.
Result<UpdateBatch> ResolveUpdates(const std::string& spec,
                                   const Graph& graph) {
  auto parsed = ParseSolverSpec(spec);
  if (parsed.ok() && parsed.value().name == "synthetic") {
    UpdateWorkloadOptions workload;
    uint64_t count = workload.count;
    uint64_t seed = workload.seed;
    OptionReader reader(parsed.value());
    reader.Uint64("count", &count)
        .Double("deletes", &workload.delete_fraction)
        .Double("skew", &workload.skew)
        .Uint64("seed", &seed);
    PPR_RETURN_IF_ERROR(reader.Finish());
    workload.count = static_cast<size_t>(count);
    workload.seed = seed;
    return GenerateUpdateStream(graph, workload);
  }
  return ReadUpdateStreamText(spec);
}

int Usage(const FlagParser& parser) {
  std::fprintf(stderr,
               "usage: ppr_cli <edge-list | dataset-name> <source> [flags]\n"
               "%s\nregistered solvers (--algo):\n%s",
               parser.Usage().c_str(),
               SolverRegistry::Global().HelpText().c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string algo = "powerpush";
  double lambda = 0.0;
  double eps = 0.0;
  double alpha = 0.0;
  uint64_t target = static_cast<uint64_t>(kNoTarget);
  uint64_t topk = 10;
  bool undirected = false;
  std::string updates;
  bool serve = false;
  double qps = 0.0;
  double duration = 5.0;
  uint64_t serve_workers = 0;
  uint64_t serve_queue = 1024;
  uint64_t shards = 1;
  std::string partition = "hash";

  FlagParser parser;
  parser.AddString("algo", &algo,
                   "solver spec: name[:key=val,...]; see list below");
  parser.AddDouble("lambda", &lambda, "l1-error target (high-precision)");
  parser.AddDouble("eps", &eps, "relative error (approximate)");
  parser.AddDouble("alpha", &alpha, "teleport probability");
  parser.AddUint64("target", &target, "single-pair target node");
  parser.AddUint64("topk", &topk, "number of results printed");
  parser.AddBool("undirected", &undirected, "symmetrize the edge list");
  parser.AddString("updates", &updates,
                   "edge-update stream: file or synthetic:count=...,"
                   "deletes=...,skew=...,seed=... (dynamic solvers)");
  parser.AddBool("serve", &serve, "run a PprServer load probe instead");
  parser.AddDouble("qps", &qps, "serve: submission rate (0 = flood)");
  parser.AddDouble("duration", &duration, "serve: seconds of load");
  parser.AddUint64("serve-workers", &serve_workers,
                   "serve: worker threads (0 = thread budget)");
  parser.AddUint64("serve-queue", &serve_queue,
                   "serve: bounded queue capacity");
  parser.AddUint64("shards", &shards,
                   "serve: shard count (>1 runs a sharded tier)");
  parser.AddString("partition", &partition,
                   "serve: node-ownership scheme (hash, range, degree)");

  Status parse_status = parser.Parse(argc, argv);
  if (!parse_status.ok()) {
    std::fprintf(stderr, "%s\n", parse_status.ToString().c_str());
    return Usage(parser);
  }
  if (parser.positional().size() != 2) return Usage(parser);
  const std::string input = parser.positional()[0];
  const NodeId source = static_cast<NodeId>(
      std::strtoul(parser.positional()[1].c_str(), nullptr, 10));

  auto created = SolverRegistry::Global().Create(algo);
  if (!created.ok()) {
    std::fprintf(stderr, "bad --algo: %s\n",
                 created.status().ToString().c_str());
    return Usage(parser);
  }
  std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();

  Graph graph;
  if (IsDatasetName(input)) {
    graph = MakeDataset(FindDataset(input), /*scale=*/0.25);
  } else {
    BuildOptions options;
    options.symmetrize = undirected;
    auto loaded = LoadGraphFromEdgeList(input, options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", input.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded).ValueOrDie();
  }
  if (solver->capabilities().needs_in_adjacency) graph.BuildInAdjacency();
  if (serve) {
    // The server prepares its own solver instance(s) from the spec; the
    // <source> positional is ignored (sources are sampled).
    std::printf("graph: n=%u m=%llu | serve --algo=%s\n", graph.num_nodes(),
                static_cast<unsigned long long>(graph.num_edges()),
                algo.c_str());
    if (shards > 1) {
      return RunShardedServeMode(algo, graph, qps, duration, serve_workers,
                                 serve_queue, shards, partition);
    }
    return RunServeMode(algo, graph, qps, duration, serve_workers,
                        serve_queue);
  }
  if (source >= graph.num_nodes()) {
    std::fprintf(stderr, "source %u out of range (n=%u)\n", source,
                 graph.num_nodes());
    return 1;
  }
  // Range-check before narrowing to NodeId: a 64-bit value would
  // otherwise truncate to a valid-looking (wrong) node.
  if (target != static_cast<uint64_t>(kNoTarget) &&
      target >= graph.num_nodes()) {
    std::fprintf(stderr, "target %llu out of range (n=%u)\n",
                 static_cast<unsigned long long>(target), graph.num_nodes());
    return 1;
  }
  std::printf("graph: n=%u m=%llu | algo=%s source=%u\n", graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()),
              algo.c_str(), source);

  Timer prepare_timer;
  Status prepared = solver->Prepare(graph);
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", prepared.ToString().c_str());
    return 1;
  }
  if (solver->capabilities().has_index) {
    std::printf("preprocessing: %.4fs\n", prepare_timer.ElapsedSeconds());
  }

  PprQuery query;
  query.source = source;
  query.alpha = alpha;
  query.lambda = lambda;
  query.epsilon = eps;
  query.target = static_cast<NodeId>(target);
  query.top_k = topk;

  SolverContext context(/*seed=*/1);
  PprResult result;
  Timer timer;
  Status solved = solver->Solve(query, context, &result);
  const double seconds = timer.ElapsedSeconds();
  if (!solved.ok()) {
    std::fprintf(stderr, "solve failed: %s\n", solved.ToString().c_str());
    return 1;
  }

  std::printf("query time: %.4fs\n", seconds);
  auto print_result = [&](const PprResult& r) {
    if (query.target != kNoTarget) {
      std::printf("ppr(%u, %u) = %.8f\n", source, query.target,
                  r.scores[query.target]);
      return;
    }
    std::printf("top-%zu nodes by PPR:\n", r.top_nodes.size());
    for (NodeId v : r.top_nodes) {
      std::printf("  %8u  %.8f\n", v, r.scores[v]);
    }
  };
  print_result(result);
  if (updates.empty()) return 0;

  DynamicSolver* dynamic = solver->AsDynamic();
  if (dynamic == nullptr) {
    std::fprintf(stderr,
                 "--updates needs a dynamic solver (e.g. "
                 "--algo=dynfwdpush); '%s' does not support updates\n",
                 algo.c_str());
    return 1;
  }
  auto batch = ResolveUpdates(updates, graph);
  if (!batch.ok()) {
    std::fprintf(stderr, "bad --updates: %s\n",
                 batch.status().ToString().c_str());
    return 1;
  }
  UpdateStats stats;
  Status applied = dynamic->ApplyUpdates(batch.value(), &stats);
  if (!applied.ok()) {
    std::fprintf(stderr, "apply failed: %s\n", applied.ToString().c_str());
    return 1;
  }
  std::printf("applied %zu updates: epoch=%llu repair_pushes=%llu "
              "repair time: %.4fs\n",
              batch.value().size(),
              static_cast<unsigned long long>(stats.epoch),
              static_cast<unsigned long long>(stats.push_operations),
              stats.seconds);
  Timer requery_timer;
  Status resolved = solver->Solve(query, context, &result);
  if (!resolved.ok()) {
    std::fprintf(stderr, "re-solve failed: %s\n",
                 resolved.ToString().c_str());
    return 1;
  }
  std::printf("re-query time: %.4fs (epoch %llu, l1 bound %.2e)\n",
              requery_timer.ElapsedSeconds(),
              static_cast<unsigned long long>(result.epoch),
              result.l1_bound);
  print_result(result);
  return 0;
}
