// ppr_cli: answer SSPPR queries from the command line on your own graph.
//
// Usage:
//   ppr_cli <edge-list-file | dataset-name> <source> [options]
//     --algo=SPEC        solver spec, e.g. powerpush or speedppr:eps=0.1
//     --lambda=1e-8      l1-error target (high-precision algorithms)
//     --eps=0.5          relative error (approximate algorithms)
//     --alpha=0.2        teleport probability
//     --target=N         single-pair target (bippr / hubppr)
//     --topk=10          number of results printed
//     --undirected       symmetrize the input edge list
//
// Every solver is dispatched through SolverRegistry — run with --help to
// see the registered names and their option keys. The spec may carry
// solver-specific overrides ("speedppr:eps=0.1,indexed=true"); the
// dedicated flags above override the spec for the common parameters.
//
// The first argument is either a SNAP-format edge list ("src dst" per
// line, '#' comments) or a built-in dataset name such as "pokec-sim".

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "api/context.h"
#include "api/registry.h"
#include "graph/datasets.h"
#include "graph/edge_list_io.h"
#include "util/flags.h"
#include "util/timer.h"

namespace {

using namespace ppr;

bool IsDatasetName(const std::string& name) {
  for (const DatasetSpec& spec : PaperDatasets()) {
    if (spec.name == name || spec.paper_name == name) return true;
  }
  return false;
}

int Usage(const FlagParser& parser) {
  std::fprintf(stderr,
               "usage: ppr_cli <edge-list | dataset-name> <source> [flags]\n"
               "%s\nregistered solvers (--algo):\n%s",
               parser.Usage().c_str(),
               SolverRegistry::Global().HelpText().c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string algo = "powerpush";
  double lambda = 0.0;
  double eps = 0.0;
  double alpha = 0.0;
  uint64_t target = static_cast<uint64_t>(kNoTarget);
  uint64_t topk = 10;
  bool undirected = false;

  FlagParser parser;
  parser.AddString("algo", &algo,
                   "solver spec: name[:key=val,...]; see list below");
  parser.AddDouble("lambda", &lambda, "l1-error target (high-precision)");
  parser.AddDouble("eps", &eps, "relative error (approximate)");
  parser.AddDouble("alpha", &alpha, "teleport probability");
  parser.AddUint64("target", &target, "single-pair target node");
  parser.AddUint64("topk", &topk, "number of results printed");
  parser.AddBool("undirected", &undirected, "symmetrize the edge list");

  Status parse_status = parser.Parse(argc, argv);
  if (!parse_status.ok()) {
    std::fprintf(stderr, "%s\n", parse_status.ToString().c_str());
    return Usage(parser);
  }
  if (parser.positional().size() != 2) return Usage(parser);
  const std::string input = parser.positional()[0];
  const NodeId source = static_cast<NodeId>(
      std::strtoul(parser.positional()[1].c_str(), nullptr, 10));

  auto created = SolverRegistry::Global().Create(algo);
  if (!created.ok()) {
    std::fprintf(stderr, "bad --algo: %s\n",
                 created.status().ToString().c_str());
    return Usage(parser);
  }
  std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();

  Graph graph;
  if (IsDatasetName(input)) {
    graph = MakeDataset(FindDataset(input), /*scale=*/0.25);
  } else {
    BuildOptions options;
    options.symmetrize = undirected;
    auto loaded = LoadGraphFromEdgeList(input, options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", input.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded).ValueOrDie();
  }
  if (source >= graph.num_nodes()) {
    std::fprintf(stderr, "source %u out of range (n=%u)\n", source,
                 graph.num_nodes());
    return 1;
  }
  // Range-check before narrowing to NodeId: a 64-bit value would
  // otherwise truncate to a valid-looking (wrong) node.
  if (target != static_cast<uint64_t>(kNoTarget) &&
      target >= graph.num_nodes()) {
    std::fprintf(stderr, "target %llu out of range (n=%u)\n",
                 static_cast<unsigned long long>(target), graph.num_nodes());
    return 1;
  }
  if (solver->capabilities().needs_in_adjacency) graph.BuildInAdjacency();

  std::printf("graph: n=%u m=%llu | algo=%s source=%u\n", graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()),
              algo.c_str(), source);

  Timer prepare_timer;
  Status prepared = solver->Prepare(graph);
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", prepared.ToString().c_str());
    return 1;
  }
  if (solver->capabilities().has_index) {
    std::printf("preprocessing: %.4fs\n", prepare_timer.ElapsedSeconds());
  }

  PprQuery query;
  query.source = source;
  query.alpha = alpha;
  query.lambda = lambda;
  query.epsilon = eps;
  query.target = static_cast<NodeId>(target);
  query.top_k = topk;

  SolverContext context(/*seed=*/1);
  PprResult result;
  Timer timer;
  Status solved = solver->Solve(query, context, &result);
  const double seconds = timer.ElapsedSeconds();
  if (!solved.ok()) {
    std::fprintf(stderr, "solve failed: %s\n", solved.ToString().c_str());
    return 1;
  }

  std::printf("query time: %.4fs\n", seconds);
  if (query.target != kNoTarget) {
    std::printf("ppr(%u, %u) = %.8f\n", source, query.target,
                result.scores[query.target]);
    return 0;
  }
  std::printf("top-%zu nodes by PPR:\n", result.top_nodes.size());
  for (NodeId v : result.top_nodes) {
    std::printf("  %8u  %.8f\n", v, result.scores[v]);
  }
  return 0;
}
