// Global PageRank + top-k PPR side by side — the "computing PageRank"
// application of SSPPR the paper's introduction leads with.
//
// Shows that (a) global PageRank surfaces globally-popular nodes while
// (b) top-k *Personalized* PageRank from a specific source surfaces
// nodes relevant to that source, and how much the two rankings disagree
// (the whole reason personalization matters).
//
// Run:  ./build/examples/pagerank_topk [source]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/pagerank.h"
#include "eval/metrics.h"
#include "eval/topk_query.h"
#include "graph/datasets.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace ppr;
  constexpr size_t kTopK = 10;

  Graph graph = MakeDataset(FindDataset("lj-sim"), /*scale=*/0.1);
  std::printf("graph: n=%u, m=%llu\n\n", graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()));
  const NodeId source =
      argc > 1 ? static_cast<NodeId>(std::strtoul(argv[1], nullptr, 10)) %
                     graph.num_nodes()
               : 123 % graph.num_nodes();

  // Global PageRank.
  PageRankOptions pr_options;
  SolveStats pr_stats;
  std::vector<double> pagerank = PageRank(graph, pr_options, &pr_stats);
  std::vector<NodeId> global_top = TopK(pagerank, kTopK);
  std::printf("global PageRank (%llu iterations, %.3fs) top-%zu:\n",
              static_cast<unsigned long long>(pr_stats.iterations),
              pr_stats.seconds, kTopK);
  for (NodeId v : global_top) std::printf("  %8u  %.6f\n", v, pagerank[v]);

  // Personalized top-k from `source`.
  TopKOptions topk_options;
  Rng rng(17);
  TopKResult personalized = TopKPpr(graph, source, kTopK, topk_options, rng);
  std::printf("\npersonalized top-%zu for source %u "
              "(eps=%.2f after %d rounds, %.3fs):\n",
              kTopK, source, personalized.final_epsilon, personalized.rounds,
              personalized.seconds);
  for (size_t i = 0; i < personalized.nodes.size(); ++i) {
    std::printf("  %8u  %.6f\n", personalized.nodes[i],
                personalized.scores[i]);
  }

  // How different are the two views?
  size_t overlap = 0;
  for (NodeId v : personalized.nodes) {
    if (std::find(global_top.begin(), global_top.end(), v) !=
        global_top.end()) {
      overlap++;
    }
  }
  std::printf("\noverlap between global and personalized top-%zu: %zu/%zu "
              "— personalization %s\n",
              kTopK, overlap, kTopK,
              overlap < kTopK / 2 ? "changes most of the ranking"
                                  : "mostly agrees with global popularity");
  return 0;
}
