// PPR features for graph representation learning — the second family of
// applications the paper's introduction cites (HOPE, STRAP, Verse, ADSF
// all consume PPR vectors as node features).
//
// For a sample of nodes this example computes high-precision PPR rows
// with PowerPush, sparsifies them at a threshold (the standard STRAP
// trick: entries below delta carry no signal), and reports the resulting
// feature-matrix statistics. The sparsified rows are written to a simple
// text file, one "node: (neighbor, score)..." row per line.
//
// Run:  ./build/examples/embedding_features [num_rows] [out.txt]

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/power_push.h"
#include "eval/query_gen.h"
#include "graph/datasets.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace ppr;
  const size_t num_rows = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 32;
  const std::string out_path = argc > 2 ? argv[2] : "ppr_features.txt";
  // STRAP-style sparsification threshold.
  const double feature_threshold = 1e-4;

  Graph graph = MakeDataset(FindDataset("dblp-sim"), /*scale=*/0.2);
  std::printf("co-authorship graph: n=%u, m=%llu\n", graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()));

  PowerPushOptions options;
  options.lambda = 1e-8;

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }

  Timer total;
  PprEstimate estimate;
  uint64_t total_nonzeros = 0;
  uint64_t kept = 0;
  double kept_mass = 0.0;
  for (NodeId node : SampleQuerySources(graph, num_rows, /*seed=*/5)) {
    PowerPush(graph, node, options, &estimate);
    out << node << ":";
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      const double score = estimate.reserve[v];
      if (score <= 0.0) continue;
      total_nonzeros++;
      if (score < feature_threshold) continue;
      kept++;
      kept_mass += score;
      out << " (" << v << "," << score << ")";
    }
    out << "\n";
  }
  out.close();

  std::printf("computed %zu PPR feature rows in %.2fs\n", num_rows,
              total.ElapsedSeconds());
  std::printf("sparsification @ %.0e: kept %llu of %llu nonzeros "
              "(%.1f%%), covering %.1f%% of probability mass per row\n",
              feature_threshold, static_cast<unsigned long long>(kept),
              static_cast<unsigned long long>(total_nonzeros),
              100.0 * kept / total_nonzeros,
              100.0 * kept_mass / static_cast<double>(num_rows));
  std::printf("features written to %s\n", out_path.c_str());
  return 0;
}
