#ifndef PPR_GRAPH_GRAPH_BUILDER_H_
#define PPR_GRAPH_GRAPH_BUILDER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace ppr {

/// Cleaning options applied by GraphBuilder::Build. The defaults mirror
/// the dataset preparation in §8 of the paper: undirected inputs are
/// symmetrized, parallel edges and self-loops are dropped, isolated nodes
/// are removed, and remaining nodes are relabeled to a dense [0, n).
struct BuildOptions {
  /// Add the reverse of every edge (treat the input as undirected).
  bool symmetrize = false;
  /// Drop (v, v) edges.
  bool remove_self_loops = true;
  /// Collapse parallel edges.
  bool deduplicate = true;
  /// Remove nodes with neither in- nor out-edges and relabel the rest,
  /// preserving relative id order.
  bool remove_isolated = true;
  /// Also materialize the transpose (in-adjacency).
  bool build_in_adjacency = false;
};

/// Accumulates edges and produces a cleaned CSR Graph.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-sizes the edge buffer.
  void Reserve(size_t num_edges) { edges_.reserve(num_edges); }

  /// Adds a directed edge. Node ids may be sparse; Build compacts them.
  void AddEdge(NodeId src, NodeId dst) { edges_.push_back({src, dst}); }

  size_t num_pending_edges() const { return edges_.size(); }

  /// Consumes the accumulated edges and builds the graph. The builder is
  /// left empty and reusable.
  Graph Build(const BuildOptions& options = {});

  /// Convenience: builds a graph directly from an edge vector.
  static Graph FromEdges(std::vector<Edge> edges,
                         const BuildOptions& options = {});

 private:
  std::vector<Edge> edges_;
};

}  // namespace ppr

#endif  // PPR_GRAPH_GRAPH_BUILDER_H_
