#include "graph/permute.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <utility>

namespace ppr {

Graph PermuteGraph(const Graph& graph, const std::vector<NodeId>& perm) {
  const NodeId n = graph.num_nodes();
  PPR_CHECK(perm.size() == n);
#ifndef NDEBUG
  {
    std::vector<NodeId> check = perm;
    std::sort(check.begin(), check.end());
    for (NodeId i = 0; i < n; ++i) PPR_DCHECK(check[i] == i);
  }
#endif
  // Built directly in CSR form rather than through GraphBuilder: a
  // permutation preserves the node universe by definition, whereas the
  // builder derives it from the edges and would silently drop an
  // isolated node that the order assigns the highest id.
  std::vector<EdgeId> offsets(static_cast<size_t>(n) + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    offsets[perm[u] + 1] = graph.OutDegree(u);
  }
  for (NodeId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  std::vector<NodeId> targets(graph.num_edges());
  for (NodeId u = 0; u < n; ++u) {
    EdgeId cursor = offsets[perm[u]];
    for (NodeId v : graph.OutNeighbors(u)) targets[cursor++] = perm[v];
    // Graph::HasEdge binary-searches, so each list stays sorted.
    std::sort(targets.begin() + static_cast<int64_t>(offsets[perm[u]]),
              targets.begin() + static_cast<int64_t>(offsets[perm[u] + 1]));
  }
  return Graph(std::move(offsets), std::move(targets));
}

std::vector<NodeId> DegreeDescendingOrder(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  std::vector<NodeId> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](NodeId a, NodeId b) {
                     return graph.OutDegree(a) > graph.OutDegree(b);
                   });
  std::vector<NodeId> perm(n);
  for (NodeId rank = 0; rank < n; ++rank) perm[by_degree[rank]] = rank;
  return perm;
}

std::vector<NodeId> BfsOrder(const Graph& graph, NodeId root) {
  const NodeId n = graph.num_nodes();
  PPR_CHECK(root < n);
  std::vector<NodeId> perm(n, n);  // n = unassigned sentinel
  std::vector<NodeId> frontier;
  NodeId next_id = 0;
  perm[root] = next_id++;
  frontier.push_back(root);
  size_t head = 0;
  while (head < frontier.size()) {
    NodeId v = frontier[head++];
    for (NodeId u : graph.OutNeighbors(v)) {
      if (perm[u] == n) {
        perm[u] = next_id++;
        frontier.push_back(u);
      }
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (perm[v] == n) perm[v] = next_id++;
  }
  return perm;
}

std::vector<NodeId> RandomOrder(NodeId n, Rng& rng) {
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng);
  return perm;
}

}  // namespace ppr
