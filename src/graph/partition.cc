#include "graph/partition.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <sstream>
#include <utility>

#include "util/rng.h"
#include "util/string_utils.h"

namespace ppr {

Result<PartitionScheme> ParsePartitionScheme(std::string_view name) {
  if (name == "hash") return PartitionScheme::kHash;
  if (name == "range") return PartitionScheme::kRange;
  if (name == "degree") return PartitionScheme::kDegree;
  return Status::InvalidArgument("unknown partition scheme '" +
                                 std::string(name) +
                                 "' (want hash, range, or degree)");
}

std::string_view PartitionSchemeName(PartitionScheme scheme) {
  switch (scheme) {
    case PartitionScheme::kHash:
      return "hash";
    case PartitionScheme::kRange:
      return "range";
    case PartitionScheme::kDegree:
      return "degree";
  }
  return "?";
}

size_t GraphPartition::HashOwner(NodeId global, size_t fragments) {
  // Seeded so owner(v) is not correlated with the splitmix streams the
  // solvers draw their walk seeds from.
  return static_cast<size_t>(
      SplitMix64(0x9aa7d1b3c5e2f041ULL ^ global).Next() % fragments);
}

namespace {

// Node-to-fragment assignment for each scheme. Deterministic in the
// graph and k alone.
std::vector<uint32_t> AssignOwners(const Graph& graph, size_t k,
                                   PartitionScheme scheme) {
  const NodeId n = graph.num_nodes();
  std::vector<uint32_t> owner(n);
  switch (scheme) {
    case PartitionScheme::kHash: {
      for (NodeId v = 0; v < n; ++v) {
        owner[v] = static_cast<uint32_t>(GraphPartition::HashOwner(v, k));
      }
      break;
    }
    case PartitionScheme::kRange: {
      const NodeId block = static_cast<NodeId>((n + k - 1) / k);
      for (NodeId v = 0; v < n; ++v) {
        owner[v] = static_cast<uint32_t>(std::min<size_t>(v / block, k - 1));
      }
      break;
    }
    case PartitionScheme::kDegree: {
      // LPT greedy: nodes in decreasing out-degree order (ties by id,
      // so the result is deterministic), each to the fragment with the
      // least total degree so far (ties by fragment id). k is small, so
      // the linear argmin beats a heap in practice.
      std::vector<NodeId> order(n);
      std::iota(order.begin(), order.end(), NodeId{0});
      std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        return graph.OutDegree(a) > graph.OutDegree(b);
      });
      std::vector<uint64_t> load(k, 0);
      for (NodeId v : order) {
        size_t best = 0;
        for (size_t f = 1; f < k; ++f) {
          if (load[f] < load[best]) best = f;
        }
        owner[v] = static_cast<uint32_t>(best);
        // +1 so isolated nodes still spread instead of all landing on
        // fragment 0.
        load[best] += graph.OutDegree(v) + 1;
      }
      break;
    }
  }
  return owner;
}

}  // namespace

Result<GraphPartition> GraphPartition::Build(const Graph& graph,
                                             size_t fragments,
                                             PartitionScheme scheme) {
  if (fragments == 0) {
    return Status::InvalidArgument("partition: fragment count must be >= 1");
  }
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("partition: graph is empty");
  }

  GraphPartition partition;
  partition.scheme_ = scheme;
  partition.owner_ = AssignOwners(graph, fragments, scheme);
  const NodeId n = graph.num_nodes();

  // Local ids: ascending global order within each fragment.
  partition.local_id_.assign(n, 0);
  std::vector<std::vector<NodeId>> members(fragments);
  for (NodeId v = 0; v < n; ++v) {
    auto& m = members[partition.owner_[v]];
    partition.local_id_[v] = static_cast<NodeId>(m.size());
    m.push_back(v);
  }

  partition.fragments_.resize(fragments);
  PartitionReport& report = partition.report_;
  report.scheme = scheme;
  report.fragments = fragments;
  report.total_edges = graph.num_edges();
  report.fragment_stats.resize(fragments);

  uint64_t max_owned_edges = 0;
  size_t max_nodes = 0;
  for (size_t f = 0; f < fragments; ++f) {
    GraphFragment& frag = partition.fragments_[f];
    frag.local_to_global = std::move(members[f]);

    std::vector<EdgeId> offsets;
    offsets.reserve(frag.local_to_global.size() + 1);
    offsets.push_back(0);
    std::vector<NodeId> targets;
    EdgeId ghosts = 0;
    NodeId dead = 0;
    for (NodeId g : frag.local_to_global) {
      for (NodeId h : graph.OutNeighbors(g)) {
        if (partition.owner_[h] == f) {
          targets.push_back(partition.local_id_[h]);
        } else {
          ++ghosts;
        }
      }
      if (graph.OutDegree(g) == 0) ++dead;
      offsets.push_back(static_cast<EdgeId>(targets.size()));
    }
    frag.subgraph = Graph(std::move(offsets), std::move(targets));

    // Subgraph stats, then the two fields the subgraph alone cannot
    // know: the edge cut this fragment contributes, and dead ends by
    // *global* out-degree (a node whose edges are all ghosts is cut,
    // not dead).
    frag.stats = ComputeGraphStats(frag.subgraph);
    frag.stats.ghost_edges = ghosts;
    frag.stats.dead_ends = dead;
    report.fragment_stats[f] = frag.stats;

    report.internal_edges += frag.subgraph.num_edges();
    report.cut_edges += ghosts;
    max_owned_edges =
        std::max<uint64_t>(max_owned_edges, frag.subgraph.num_edges() + ghosts);
    max_nodes = std::max<size_t>(max_nodes, frag.local_to_global.size());
  }

  if (report.total_edges > 0) {
    report.cut_fraction = static_cast<double>(report.cut_edges) /
                          static_cast<double>(report.total_edges);
    report.edge_imbalance =
        static_cast<double>(max_owned_edges) /
        (static_cast<double>(report.total_edges) / static_cast<double>(fragments));
  }
  report.node_imbalance =
      static_cast<double>(max_nodes) /
      (static_cast<double>(n) / static_cast<double>(fragments));
  return partition;
}

UpdateSplit GraphPartition::SplitBatch(const UpdateBatch& batch) const {
  UpdateSplit split;
  split.per_fragment.resize(fragments_.size());
  for (const EdgeUpdate& update : batch.updates) {
    switch (update.kind) {
      case UpdateKind::kInsert:
      case UpdateKind::kDelete: {
        split.per_fragment[FragmentOf(update.u)].updates.push_back(update);
        if (FragmentOf(update.u) != FragmentOf(update.v)) {
          ++split.cross_fragment;
        }
        break;
      }
      case UpdateKind::kAddNode:
      case UpdateKind::kRemoveNode: {
        // Node-id-space changes are broadcast: every fragment must agree
        // on which ids exist (RemoveNode may detach in-edges anywhere).
        for (UpdateBatch& slice : split.per_fragment) {
          slice.updates.push_back(update);
        }
        break;
      }
    }
  }
  return split;
}

std::string FormatReport(const PartitionReport& report) {
  std::ostringstream out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%%", report.cut_fraction * 100.0);
  out << "partition scheme=" << PartitionSchemeName(report.scheme)
      << " k=" << report.fragments << " cut=" << HumanCount(report.cut_edges)
      << "/" << HumanCount(report.total_edges) << " (" << buf << ")";
  std::snprintf(buf, sizeof(buf), " node_imb=%.2f edge_imb=%.2f",
                report.node_imbalance, report.edge_imbalance);
  out << buf;
  for (size_t f = 0; f < report.fragment_stats.size(); ++f) {
    out << "\n  f" << f << ": " << FormatGraphStats(report.fragment_stats[f]);
  }
  return out.str();
}

}  // namespace ppr
