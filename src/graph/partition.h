#ifndef PPR_GRAPH_PARTITION_H_
#define PPR_GRAPH_PARTITION_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "graph/graph_stats.h"
#include "util/status.h"

namespace ppr {

/// Deterministic node-to-fragment assignment strategies. All three are
/// pure functions of (graph, fragment count): the same inputs always
/// produce the same partition, so shards agree on ownership without any
/// coordination.
enum class PartitionScheme {
  /// owner(v) = splitmix64(v) mod k. Ignores structure; gives near-
  /// perfect node balance and a cut fraction near (k-1)/k.
  kHash,
  /// Contiguous blocks of ~n/k node ids. Preserves id locality, which
  /// keeps the cut low on graphs whose ids correlate with communities
  /// (BFS/degree relabeled CSRs, generator output).
  kRange,
  /// Greedy longest-processing-time bin packing on out-degree: nodes in
  /// decreasing degree order, each to the fragment with the least total
  /// degree so far. Balances *edges* rather than nodes, which is what
  /// equalizes per-shard solve cost on heavy-tailed graphs.
  kDegree,
};

Result<PartitionScheme> ParsePartitionScheme(std::string_view name);
std::string_view PartitionSchemeName(PartitionScheme scheme);

/// One fragment of an edge-cut partition: the subgraph induced on the
/// owned nodes (intra-fragment edges only, compacted to local ids) plus
/// the maps to translate between local and global id spaces.
struct GraphFragment {
  /// Intra-fragment edges, re-indexed to [0, stats.num_nodes).
  Graph subgraph;

  /// local_to_global[l] = global id of local node l; ascending.
  std::vector<NodeId> local_to_global;

  /// Fragment-level stats. num_edges counts intra-fragment edges only;
  /// ghost_edges counts edges whose tail is owned here but whose head
  /// lives on another fragment (the edge-cut contribution of this
  /// fragment); dead_ends counts owned nodes with *global* out-degree 0
  /// — a node whose edges are all ghosts is cut, not dead.
  GraphStats stats;
};

/// Per-fragment slices of one UpdateBatch (see GraphPartition::SplitBatch).
struct UpdateSplit {
  /// per_fragment[f] holds, in original batch order, the updates whose
  /// owner is fragment f. Node add/remove updates are broadcast into
  /// every slice (all replicas must agree on the node-id space).
  std::vector<UpdateBatch> per_fragment;

  /// Edge updates whose endpoints live on different fragments — the
  /// updates a distributed transport would need to forward.
  size_t cross_fragment = 0;
};

/// Partition-quality summary (see FormatReport for the one-line form).
struct PartitionReport {
  PartitionScheme scheme = PartitionScheme::kHash;
  size_t fragments = 0;
  EdgeId total_edges = 0;
  EdgeId internal_edges = 0;
  /// Edges with tail and head on different fragments (= sum of the
  /// per-fragment ghost_edges).
  EdgeId cut_edges = 0;
  /// cut_edges / total_edges; 0 on an edgeless graph.
  double cut_fraction = 0.0;
  /// max over fragments of nodes / (n/k); 1.0 = perfectly balanced.
  double node_imbalance = 0.0;
  /// max over fragments of owned out-edges / (m/k). Owned out-edges
  /// (internal + ghost) approximate per-fragment push/walk work.
  double edge_imbalance = 0.0;
  /// Per-fragment stats, indexed by fragment id (== GraphFragment::stats).
  std::vector<GraphStats> fragment_stats;
};

std::string FormatReport(const PartitionReport& report);

/// A deterministic edge-cut partition of a CSR graph into k fragments.
///
/// Ownership is total: every node (including ids beyond the snapshot the
/// partition was built from — see FragmentOf) maps to exactly one
/// fragment. The partition is immutable after Build; it never observes
/// later graph mutations, which is why ids appended afterwards fall back
/// to hash ownership under every scheme.
class GraphPartition {
 public:
  /// Builds a k-way partition. Fails on k == 0 or an empty graph.
  static Result<GraphPartition> Build(const Graph& graph, size_t fragments,
                                      PartitionScheme scheme);

  /// Owner fragment of a global node id. Ids beyond the build-time node
  /// count (nodes appended by later UpdateBatches) are hash-owned under
  /// every scheme, so all parties can compute ownership of a node that
  /// did not exist when the partition was built.
  size_t FragmentOf(NodeId global) const {
    if (global < owner_.size()) return owner_[global];
    return HashOwner(global, fragments_.size());
  }

  /// Local id of `global` inside its owner fragment. Precondition:
  /// global was part of the build-time graph.
  NodeId LocalId(NodeId global) const { return local_id_[global]; }

  size_t num_fragments() const { return fragments_.size(); }
  NodeId num_nodes() const { return static_cast<NodeId>(owner_.size()); }
  PartitionScheme scheme() const { return scheme_; }

  const GraphFragment& fragment(size_t f) const { return fragments_[f]; }
  const PartitionReport& report() const { return report_; }

  /// Slices a batch into per-fragment sub-batches: edge updates go to
  /// the owner of their tail u (ownership of edge state follows the
  /// CSR row), node add/remove is broadcast to every fragment. Also
  /// counts cross-fragment edge updates. Pure routing — no validation.
  UpdateSplit SplitBatch(const UpdateBatch& batch) const;

  /// The stable hash-ownership function (splitmix64(v) mod k) used by
  /// kHash and by every scheme for post-build node ids.
  static size_t HashOwner(NodeId global, size_t fragments);

 private:
  GraphPartition() = default;

  PartitionScheme scheme_ = PartitionScheme::kHash;
  std::vector<GraphFragment> fragments_;
  std::vector<uint32_t> owner_;    // global -> fragment
  std::vector<NodeId> local_id_;   // global -> local id within owner
  PartitionReport report_;
};

}  // namespace ppr

#endif  // PPR_GRAPH_PARTITION_H_
