#include "graph/edge_list_io.h"

#include <cstdio>
#include <fstream>
#include <limits>

#include "util/string_utils.h"

namespace ppr {

namespace {
constexpr uint64_t kBinaryMagic = 0x5050523147524248ULL;  // "PPR1GRBH"
}  // namespace

Result<std::vector<Edge>> ReadEdgeListText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);

  std::vector<Edge> edges;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    auto fields = SplitAndTrim(line, " \t\r,");
    if (fields.size() < 2) {
      return Status::Corruption(path + ":" + std::to_string(line_no) +
                                ": expected 'src dst'");
    }
    uint64_t src = 0;
    uint64_t dst = 0;
    if (!ParseUint64(fields[0], &src) || !ParseUint64(fields[1], &dst)) {
      return Status::Corruption(path + ":" + std::to_string(line_no) +
                                ": malformed node id");
    }
    if (src > std::numeric_limits<NodeId>::max() ||
        dst > std::numeric_limits<NodeId>::max()) {
      return Status::OutOfRange(path + ":" + std::to_string(line_no) +
                                ": node id exceeds 32 bits");
    }
    edges.push_back({static_cast<NodeId>(src), static_cast<NodeId>(dst)});
  }
  return edges;
}

Status WriteEdgeListText(const std::string& path,
                         const std::vector<Edge>& edges) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "# directed edge list, " << edges.size() << " edges\n";
  for (const Edge& e : edges) out << e.src << "\t" << e.dst << "\n";
  out.flush();
  if (!out) return Status::IOError("write failed on " + path);
  return Status::OK();
}

Result<Graph> LoadGraphFromEdgeList(const std::string& path,
                                    const BuildOptions& options) {
  auto edges = ReadEdgeListText(path);
  if (!edges.ok()) return edges.status();
  return GraphBuilder::FromEdges(std::move(edges.value()), options);
}

Result<UpdateBatch> ReadUpdateStreamText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);

  UpdateBatch batch;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    auto fields = SplitAndTrim(line, " \t\r,");
    // Node ops carry fewer fields than edge ops: "n" alone adds one
    // isolated node, "x u" detaches node u.
    if (fields[0] == "n") {
      if (fields.size() != 1) {
        return Status::Corruption(path + ":" + std::to_string(line_no) +
                                  ": 'n' (add node) takes no operands");
      }
      batch.AddNode();
      continue;
    }
    if (fields[0] == "x") {
      if (fields.size() != 2) {
        return Status::Corruption(path + ":" + std::to_string(line_no) +
                                  ": expected 'x u' (remove node)");
      }
      uint64_t u = 0;
      if (!ParseUint64(fields[1], &u)) {
        return Status::Corruption(path + ":" + std::to_string(line_no) +
                                  ": malformed node id");
      }
      if (u > std::numeric_limits<NodeId>::max()) {
        return Status::OutOfRange(path + ":" + std::to_string(line_no) +
                                  ": node id exceeds 32 bits");
      }
      batch.RemoveNode(static_cast<NodeId>(u));
      continue;
    }
    if (fields.size() < 3) {
      return Status::Corruption(path + ":" + std::to_string(line_no) +
                                ": expected '+|- src dst'");
    }
    UpdateKind kind;
    if (fields[0] == "+" || fields[0] == "a") {
      kind = UpdateKind::kInsert;
    } else if (fields[0] == "-" || fields[0] == "d") {
      kind = UpdateKind::kDelete;
    } else {
      return Status::Corruption(path + ":" + std::to_string(line_no) +
                                ": update kind must be '+'/'-'/'n'/'x' "
                                "(or 'a'/'d')");
    }
    uint64_t src = 0;
    uint64_t dst = 0;
    if (!ParseUint64(fields[1], &src) || !ParseUint64(fields[2], &dst)) {
      return Status::Corruption(path + ":" + std::to_string(line_no) +
                                ": malformed node id");
    }
    if (src > std::numeric_limits<NodeId>::max() ||
        dst > std::numeric_limits<NodeId>::max()) {
      return Status::OutOfRange(path + ":" + std::to_string(line_no) +
                                ": node id exceeds 32 bits");
    }
    batch.updates.push_back(
        {kind, static_cast<NodeId>(src), static_cast<NodeId>(dst)});
  }
  return batch;
}

Status WriteUpdateStreamText(const std::string& path,
                             const UpdateBatch& batch) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "# edge-update stream, " << batch.size() << " updates\n";
  for (const EdgeUpdate& up : batch.updates) {
    switch (up.kind) {
      case UpdateKind::kInsert:
        out << "+\t" << up.u << "\t" << up.v << "\n";
        break;
      case UpdateKind::kDelete:
        out << "-\t" << up.u << "\t" << up.v << "\n";
        break;
      case UpdateKind::kAddNode:
        out << "n\n";
        break;
      case UpdateKind::kRemoveNode:
        out << "x\t" << up.u << "\n";
        break;
    }
  }
  out.flush();
  if (!out) return Status::IOError("write failed on " + path);
  return Status::OK();
}

Status WriteGraphBinary(const std::string& path, const Graph& graph) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");

  auto write_u64 = [&](uint64_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  write_u64(kBinaryMagic);
  write_u64(graph.num_nodes());
  write_u64(graph.num_edges());
  out.write(reinterpret_cast<const char*>(graph.out_offsets().data()),
            static_cast<std::streamsize>(graph.out_offsets().size() *
                                         sizeof(EdgeId)));
  out.write(reinterpret_cast<const char*>(graph.out_targets().data()),
            static_cast<std::streamsize>(graph.out_targets().size() *
                                         sizeof(NodeId)));
  out.flush();
  if (!out) return Status::IOError("write failed on " + path);
  return Status::OK();
}

Result<Graph> ReadGraphBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);

  auto read_u64 = [&](uint64_t* v) {
    in.read(reinterpret_cast<char*>(v), sizeof(*v));
    return static_cast<bool>(in);
  };
  uint64_t magic = 0;
  uint64_t n = 0;
  uint64_t m = 0;
  if (!read_u64(&magic) || magic != kBinaryMagic) {
    return Status::Corruption(path + ": bad magic");
  }
  if (!read_u64(&n) || !read_u64(&m)) {
    return Status::Corruption(path + ": truncated header");
  }

  std::vector<EdgeId> offsets(n + 1);
  std::vector<NodeId> targets(m);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(EdgeId)));
  in.read(reinterpret_cast<char*>(targets.data()),
          static_cast<std::streamsize>(targets.size() * sizeof(NodeId)));
  if (!in) return Status::Corruption(path + ": truncated body");
  if (offsets.front() != 0 || offsets.back() != m) {
    return Status::Corruption(path + ": inconsistent CSR offsets");
  }
  return Graph(std::move(offsets), std::move(targets));
}

}  // namespace ppr
