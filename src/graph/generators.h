#ifndef PPR_GRAPH_GENERATORS_H_
#define PPR_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/rng.h"

namespace ppr {

/// Synthetic graph generators.
///
/// The paper evaluates on six SNAP graphs; those downloads are not
/// available in this offline environment, so benchmarks run on synthetic
/// stand-ins produced here (see DESIGN.md "Substitutions"). The generators
/// are also the backbone of the test suite: properties are checked across
/// structurally diverse graphs. All generators are deterministic given the
/// Rng they are passed.

/// The 5-node directed example of the paper's Figure 1 (0-indexed):
/// v1->{v2,v3}, v2->{v1,v3,v4,v5}, v3->{v2,v4}, v4->{v1,v2,v3},
/// v5->{v2,v3}. Tests replay the paper's running examples (Figures 2, 3)
/// on it.
Graph PaperExampleGraph();

/// Simple deterministic topologies.
Graph PathGraph(NodeId n);                 ///< 0->1->...->n-1 (last is a dead end)
Graph CycleGraph(NodeId n);                ///< 0->1->...->n-1->0
Graph StarGraph(NodeId n);                 ///< bidirected star, hub = node 0
Graph CompleteGraph(NodeId n);             ///< all ordered pairs, no loops
Graph GridGraph(NodeId rows, NodeId cols); ///< 4-neighbor bidirected grid

/// Erdős–Rényi G(n, m) with m = round(n * avg_out_degree) distinct
/// directed edges.
Graph ErdosRenyi(NodeId n, double avg_out_degree, Rng& rng);

/// Barabási–Albert preferential attachment, edges_per_node attachments per
/// arriving node, symmetrized (each undirected edge becomes two directed
/// edges, the paper's convention for undirected data).
Graph BarabasiAlbert(NodeId n, NodeId edges_per_node, Rng& rng);

/// Chung–Lu fixed-m variant: approximately n*avg_degree directed edges
/// whose endpoints are drawn from power-law weights with tail exponent
/// `exponent` (> 2). Out- and in-weights use independent node
/// permutations, so hub sets of the two directions differ, as in real
/// directed social graphs. If `symmetrize`, generates half the edges and
/// mirrors them (undirected-style data; avg_degree then counts directed
/// edges after mirroring).
Graph ChungLuPowerLaw(NodeId n, double avg_degree, double exponent, Rng& rng,
                      bool symmetrize = false);

/// Directed "copy model" web graph (Kumar et al.): node v attaches
/// out_degree edges; each edge copies a random prototype's corresponding
/// out-edge with probability copy_prob, else links uniformly at random.
/// Produces the tight-knit local clusters + skewed in-degrees typical of
/// web crawls such as Web-Stanford.
Graph CopyModelWeb(NodeId n, NodeId out_degree, double copy_prob, Rng& rng);

}  // namespace ppr

#endif  // PPR_GRAPH_GENERATORS_H_
