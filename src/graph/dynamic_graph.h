#ifndef PPR_GRAPH_DYNAMIC_GRAPH_H_
#define PPR_GRAPH_DYNAMIC_GRAPH_H_

#include <span>
#include <vector>

#include "graph/graph.h"

namespace ppr {

/// Mutable directed graph: adjacency-vector storage supporting edge
/// insertion, the substrate for the evolving-graph PPR tracker
/// (core/dynamic_ppr.h). The immutable CSR Graph stays the right choice
/// for static workloads (PowerPush's scan phase depends on its layout);
/// Snapshot() bridges to it.
class DynamicGraph {
 public:
  /// Starts with n isolated nodes.
  explicit DynamicGraph(NodeId n) : adjacency_(n), num_edges_(0) {}

  /// Copies an existing static graph.
  explicit DynamicGraph(const Graph& graph);

  NodeId num_nodes() const { return static_cast<NodeId>(adjacency_.size()); }
  EdgeId num_edges() const { return num_edges_; }

  NodeId OutDegree(NodeId v) const {
    PPR_DCHECK(v < num_nodes());
    return static_cast<NodeId>(adjacency_[v].size());
  }

  std::span<const NodeId> OutNeighbors(NodeId v) const {
    PPR_DCHECK(v < num_nodes());
    return adjacency_[v];
  }

  /// Appends the directed edge (u, v). Parallel edges are permitted (the
  /// caller decides); self-loops are rejected.
  void AddEdge(NodeId u, NodeId v);

  /// Materializes an immutable CSR copy (used to cross-check the
  /// incremental tracker against from-scratch solves).
  Graph Snapshot() const;

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  EdgeId num_edges_;
};

}  // namespace ppr

#endif  // PPR_GRAPH_DYNAMIC_GRAPH_H_
