#ifndef PPR_GRAPH_DYNAMIC_GRAPH_H_
#define PPR_GRAPH_DYNAMIC_GRAPH_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace ppr {

/// One mutation of an evolving graph. Edge mutations keep the node set
/// fixed; the node mutations resize it — kAddNode appends one isolated
/// node, kRemoveNode detaches every edge incident to a node (the id
/// stays allocated as an isolated dead end, so existing ids never
/// shift).
enum class UpdateKind : uint8_t {
  kInsert,      ///< append directed edge (u, v); parallel edges permitted
  kDelete,      ///< remove one occurrence of directed edge (u, v)
  kAddNode,     ///< append one isolated node (u, v unused)
  kRemoveNode,  ///< detach node u: remove all its in- and out-edges
};

struct EdgeUpdate {
  UpdateKind kind = UpdateKind::kInsert;
  NodeId u = 0;
  NodeId v = 0;

  bool operator==(const EdgeUpdate&) const = default;
};

/// An ordered sequence of graph mutations — the unit in which updates
/// travel through the system (DynamicSolver::ApplyUpdates,
/// PprServer::ApplyUpdates, the eval/query_gen workload generator, and
/// ppr_cli --updates). Updates apply strictly in order, so a batch may
/// delete an edge it inserted earlier, wire edges to a node it added,
/// or remove a node whose edges it just created.
struct UpdateBatch {
  std::vector<EdgeUpdate> updates;

  UpdateBatch& Insert(NodeId u, NodeId v) {
    updates.push_back({UpdateKind::kInsert, u, v});
    return *this;
  }
  UpdateBatch& Delete(NodeId u, NodeId v) {
    updates.push_back({UpdateKind::kDelete, u, v});
    return *this;
  }
  UpdateBatch& AddNode() {
    updates.push_back({UpdateKind::kAddNode, 0, 0});
    return *this;
  }
  UpdateBatch& RemoveNode(NodeId u) {
    updates.push_back({UpdateKind::kRemoveNode, u, 0});
    return *this;
  }

  size_t size() const { return updates.size(); }
  bool empty() const { return updates.empty(); }
  void clear() { updates.clear(); }
};

/// Versioned mutable directed graph: adjacency-vector storage supporting
/// edge insertion *and deletion*, the substrate for the evolving-graph
/// PPR subsystem (core/dynamic_ppr.h, the "dynfwdpush" solver). The
/// immutable CSR Graph stays the right choice for static workloads
/// (PowerPush's scan phase depends on its layout); Snapshot() bridges to
/// it for cross-checking.
///
/// Versioning: every applied mutation advances the epoch by one. An
/// edge-only UpdateBatch of k updates moves the graph from epoch e to
/// e + k; a kRemoveNode update advances it by its incident edge count
/// plus one (the lowering described at RemoveNode()).
/// Epochs are monotonically increasing and never reused; fingerprint()
/// is a 64-bit hash of the construction state plus the full mutation
/// history, so two DynamicGraphs agree on (epoch, fingerprint) iff they
/// were built identically and replayed the same update sequence — the
/// key epoch-consistent serving and caches hang results on.
class DynamicGraph {
 public:
  /// Starts with n isolated nodes at epoch 0.
  explicit DynamicGraph(NodeId n);

  /// Copies an existing static graph (epoch 0; fingerprint seeded from
  /// Graph::Fingerprint so different base graphs never collide).
  explicit DynamicGraph(const Graph& graph);

  NodeId num_nodes() const { return static_cast<NodeId>(adjacency_.size()); }
  EdgeId num_edges() const { return num_edges_; }

  /// Number of nodes with out-degree zero, maintained incrementally —
  /// O(1), unlike Graph::CountDeadEnds. Feeds the (m + k)·rmax error
  /// bound of the dynamic tracker.
  NodeId num_dead_ends() const { return num_dead_ends_; }

  /// Number of mutations applied since construction.
  uint64_t epoch() const { return epoch_; }

  /// Hash of (construction state, mutation history); see class comment.
  uint64_t fingerprint() const { return fingerprint_; }

  NodeId OutDegree(NodeId v) const {
    PPR_DCHECK(v < num_nodes());
    return static_cast<NodeId>(adjacency_[v].size());
  }

  std::span<const NodeId> OutNeighbors(NodeId v) const {
    PPR_DCHECK(v < num_nodes());
    return adjacency_[v];
  }

  /// Multiplicity of the directed edge (u, v). O(d_u).
  NodeId EdgeMultiplicity(NodeId u, NodeId v) const;

  /// Appends the directed edge (u, v) and advances the epoch. Parallel
  /// edges are permitted (the caller decides); self-loops are rejected.
  void AddEdge(NodeId u, NodeId v);

  /// Removes one occurrence of (u, v) and advances the epoch. The edge
  /// must exist (PPR_CHECK); use Apply() for validated batches.
  void RemoveEdge(NodeId u, NodeId v);

  /// Appends one isolated node (a dead end until it gains an out-edge)
  /// and advances the epoch. Returns the new node's id, always the
  /// previous num_nodes() — ids are dense and never reused.
  NodeId AddNode();

  /// Detaches node u: removes every in-edge (scanning rows 0..n-1 in
  /// order, each parallel occurrence separately), then every out-edge
  /// in row order, then records one kRemoveNode marker mutation — so
  /// the epoch advances by (incident edges + 1). The id stays allocated
  /// as an isolated dead end; later batches may wire edges back to it.
  /// Each constituent edge removal is surfaced to the optional hooks as
  /// a kDelete EdgeUpdate — `before` fires while the edge still exists,
  /// `after` right after it is gone — which is how the residue trackers
  /// and the walk index observe the lowering (DynamicSspprPool). O(n +
  /// incident edges). Returns the number of edges removed.
  size_t RemoveNode(NodeId u,
                    const std::function<void(const EdgeUpdate&)>& before = {},
                    const std::function<void(const EdgeUpdate&)>& after = {});

  /// Validates the whole batch against the current state (bounds,
  /// self-loops, deletions of edges that will not exist when reached —
  /// honoring in-batch ordering, including nodes the batch adds or
  /// removes), then applies it. On error nothing is applied and the
  /// epoch does not move; on success the epoch advances by one per
  /// mutation — batch.size() for edge-only batches, more when the batch
  /// removes nodes (each kRemoveNode lowers to its incident edge
  /// deletions plus the marker).
  Status Apply(const UpdateBatch& batch);

  /// Apply()'s validation without the mutation — shared with callers
  /// that must interleave per-update bookkeeping (DynamicSspprPool).
  Status Validate(const UpdateBatch& batch) const;

  /// Materializes an immutable CSR copy (used to cross-check the
  /// incremental tracker against from-scratch solves).
  Graph Snapshot() const;

 private:
  void MixMutation(UpdateKind kind, NodeId u, NodeId v);

  std::vector<std::vector<NodeId>> adjacency_;
  EdgeId num_edges_;
  NodeId num_dead_ends_ = 0;
  uint64_t epoch_ = 0;
  uint64_t fingerprint_ = 0;
};

}  // namespace ppr

#endif  // PPR_GRAPH_DYNAMIC_GRAPH_H_
