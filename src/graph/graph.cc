#include "graph/graph.h"

#include <algorithm>

namespace ppr {

Graph::Graph(std::vector<EdgeId> out_offsets, std::vector<NodeId> out_targets)
    : out_offsets_(std::move(out_offsets)),
      out_targets_(std::move(out_targets)) {
  PPR_CHECK(!out_offsets_.empty());
  PPR_CHECK(out_offsets_.front() == 0);
  PPR_CHECK(out_offsets_.back() == out_targets_.size());
  for (size_t i = 0; i + 1 < out_offsets_.size(); ++i) {
    PPR_CHECK(out_offsets_[i] <= out_offsets_[i + 1]);
  }
  for (NodeId t : out_targets_) PPR_CHECK(t < num_nodes());
}

uint64_t Graph::Fingerprint() const {
  // FNV-1a with a final avalanche; collision-resistant enough for cache
  // keying (not for adversarial inputs).
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t x) {
    h = (h ^ x) * 0x100000001b3ULL;
  };
  mix(out_offsets_.size());
  for (EdgeId offset : out_offsets_) mix(offset);
  for (NodeId target : out_targets_) mix(target);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

void Graph::BuildInAdjacency() {
  if (has_in_adjacency() || num_nodes() == 0) return;
  const NodeId n = num_nodes();
  in_offsets_.assign(n + 1, 0);
  for (NodeId t : out_targets_) in_offsets_[t + 1]++;
  for (NodeId v = 0; v < n; ++v) in_offsets_[v + 1] += in_offsets_[v];

  in_targets_.resize(out_targets_.size());
  std::vector<EdgeId> cursor(in_offsets_.begin(), in_offsets_.end() - 1);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : OutNeighbors(u)) in_targets_[cursor[v]++] = u;
  }
  // Counting sort over sources in increasing u already leaves each
  // in-list sorted; assert in debug builds.
#ifndef NDEBUG
  for (NodeId v = 0; v < n; ++v) {
    auto in = InNeighbors(v);
    PPR_DCHECK(std::is_sorted(in.begin(), in.end()));
  }
#endif
}

NodeId Graph::CountDeadEnds() const {
  NodeId count = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (OutDegree(v) == 0) count++;
  }
  return count;
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  PPR_DCHECK(u < num_nodes() && v < num_nodes());
  auto neighbors = OutNeighbors(u);
  return std::binary_search(neighbors.begin(), neighbors.end(), v);
}

double Graph::AverageDegree() const {
  if (num_nodes() == 0) return 0.0;
  return static_cast<double>(num_edges()) / static_cast<double>(num_nodes());
}

uint64_t Graph::MemoryBytes() const {
  return out_offsets_.size() * sizeof(EdgeId) +
         out_targets_.size() * sizeof(NodeId) +
         in_offsets_.size() * sizeof(EdgeId) +
         in_targets_.size() * sizeof(NodeId);
}

}  // namespace ppr
