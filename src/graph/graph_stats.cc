#include "graph/graph_stats.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/string_utils.h"

namespace ppr {

GraphStats ComputeGraphStats(const Graph& graph) {
  GraphStats stats;
  stats.num_nodes = graph.num_nodes();
  stats.num_edges = graph.num_edges();
  stats.avg_degree = graph.AverageDegree();

  std::vector<NodeId> degrees(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    NodeId d = graph.OutDegree(v);
    degrees[v] = d;
    stats.out_degree_histogram.Add(d);
    stats.max_out_degree = std::max(stats.max_out_degree, d);
    if (d == 0) stats.dead_ends++;
  }

  if (graph.num_edges() > 0 && graph.num_nodes() > 0) {
    std::sort(degrees.begin(), degrees.end(), std::greater<NodeId>());
    size_t top = std::max<size_t>(1, degrees.size() / 100);
    uint64_t top_sum = 0;
    for (size_t i = 0; i < top; ++i) top_sum += degrees[i];
    stats.top1pct_degree_share =
        static_cast<double>(top_sum) / static_cast<double>(graph.num_edges());
  }
  return stats;
}

std::string FormatGraphStats(const GraphStats& stats) {
  std::ostringstream out;
  out << "n=" << HumanCount(stats.num_nodes)
      << " m=" << HumanCount(stats.num_edges) << " m/n=";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", stats.avg_degree);
  out << buf << " maxd=" << stats.max_out_degree
      << " dead=" << stats.dead_ends;
  if (stats.ghost_edges > 0) out << " ghost=" << HumanCount(stats.ghost_edges);
  return out.str();
}

}  // namespace ppr
