#ifndef PPR_GRAPH_EDGE_LIST_IO_H_
#define PPR_GRAPH_EDGE_LIST_IO_H_

#include <string>
#include <vector>

#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "util/status.h"

namespace ppr {

/// Reads a SNAP-style whitespace-separated edge list ("src dst" per line,
/// '#'/'%' comments allowed). This is the format of every dataset in the
/// paper's Table 1 as distributed at snap.stanford.edu.
Result<std::vector<Edge>> ReadEdgeListText(const std::string& path);

/// Writes an edge list in the same format.
Status WriteEdgeListText(const std::string& path,
                         const std::vector<Edge>& edges);

/// Loads and cleans a SNAP edge list into a Graph in one step.
Result<Graph> LoadGraphFromEdgeList(const std::string& path,
                                    const BuildOptions& options = {});

/// Compact binary snapshot of a built graph (magic + n + m + CSR arrays).
/// Round-trips exactly; used to cache cleaned graphs between bench runs.
Status WriteGraphBinary(const std::string& path, const Graph& graph);
Result<Graph> ReadGraphBinary(const std::string& path);

/// Reads an edge-update stream for the evolving-graph subsystem
/// (ppr_cli --updates=<file>). One update per line,
///
///   + src dst     edge insertion
///   - src dst     edge deletion
///   n             node addition (appends one isolated node)
///   x u           node removal (detaches node u)
///
/// with '#'/'%' comments and blank lines allowed; "a"/"d" are accepted
/// as aliases for "+"/"-". Validation against a concrete graph happens
/// at apply time (DynamicGraph::Validate), not here.
Result<UpdateBatch> ReadUpdateStreamText(const std::string& path);

/// Writes an update stream in the same format.
Status WriteUpdateStreamText(const std::string& path,
                             const UpdateBatch& batch);

}  // namespace ppr

#endif  // PPR_GRAPH_EDGE_LIST_IO_H_
