#ifndef PPR_GRAPH_PERMUTE_H_
#define PPR_GRAPH_PERMUTE_H_

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace ppr {

/// Node-relabeling utilities. §5 of the paper attributes part of
/// PowerPush's win to its storage format — nodes sorted by id with
/// adjacency lists concatenated in the same order. These helpers produce
/// alternative id assignments so the effect of storage order can be
/// measured (bench_ablation_node_order) and exploited (BFS/degree
/// orders improve locality on some workloads).

/// Rebuilds the graph with node v renamed to perm[v]. perm must be a
/// permutation of [0, n).
Graph PermuteGraph(const Graph& graph, const std::vector<NodeId>& perm);

/// old id -> new id orderings:

/// Highest out-degree first (hubs get small ids, clustering the hot rows
/// of the CSR arrays).
std::vector<NodeId> DegreeDescendingOrder(const Graph& graph);

/// Breadth-first order from `root` (neighbors get nearby ids; unreached
/// nodes are appended in id order). Uses out-edges only.
std::vector<NodeId> BfsOrder(const Graph& graph, NodeId root);

/// Uniformly random relabeling — the adversarial baseline for locality.
std::vector<NodeId> RandomOrder(NodeId n, Rng& rng);

}  // namespace ppr

#endif  // PPR_GRAPH_PERMUTE_H_
