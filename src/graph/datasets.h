#ifndef PPR_GRAPH_DATASETS_H_
#define PPR_GRAPH_DATASETS_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace ppr {

/// A synthetic stand-in for one of the paper's six SNAP datasets
/// (Table 1). The stand-in reproduces the original's directedness,
/// average degree, and heavy-tailed degree shape at a laptop-scale node
/// count; see DESIGN.md "Substitutions" for the rationale.
struct DatasetSpec {
  /// Our name, e.g. "dblp-sim".
  std::string name;
  /// The dataset it stands in for, e.g. "DBLP".
  std::string paper_name;
  /// Whether the original is distributed as a directed graph. Undirected
  /// originals are symmetrized, matching the paper's preparation.
  bool directed = true;
  /// Node count at scale = 1.
  NodeId base_nodes = 0;
  /// Target m/n (counting directed edges after symmetrization), from
  /// Table 1.
  double avg_degree = 0.0;
  /// Generator family.
  enum class Family { kChungLu, kChungLuSym, kCopyWeb, kBarabasiAlbert };
  Family family = Family::kChungLu;
  /// Power-law tail exponent for the Chung–Lu families.
  double exponent = 2.5;
};

/// The six stand-ins, in the paper's Table 1 order: DBLP, Web-Stanford,
/// Pokec, LiveJournal, Orkut, Twitter.
const std::vector<DatasetSpec>& PaperDatasets();

/// Looks up a spec by name ("dblp-sim", ...). Aborts on unknown names;
/// use PaperDatasets() to enumerate valid ones.
const DatasetSpec& FindDataset(const std::string& name);

/// Materializes a dataset at `scale` (node count = base_nodes * scale,
/// minimum 1000). Deterministic in (spec, scale, seed).
Graph MakeDataset(const DatasetSpec& spec, double scale = 1.0,
                  uint64_t seed = 42);

/// Reads PPR_BENCH_SCALE (default 1.0) so every bench can be grown or
/// shrunk without recompiling. Clamped to [0.01, 100].
double BenchScaleFromEnv();

}  // namespace ppr

#endif  // PPR_GRAPH_DATASETS_H_
