#include "graph/dynamic_graph.h"

#include <algorithm>

namespace ppr {

DynamicGraph::DynamicGraph(const Graph& graph)
    : adjacency_(graph.num_nodes()), num_edges_(graph.num_edges()) {
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    auto neighbors = graph.OutNeighbors(v);
    adjacency_[v].assign(neighbors.begin(), neighbors.end());
  }
}

void DynamicGraph::AddEdge(NodeId u, NodeId v) {
  PPR_CHECK(u < num_nodes() && v < num_nodes());
  PPR_CHECK(u != v) << "self-loops are not supported";
  adjacency_[u].push_back(v);
  num_edges_++;
}

Graph DynamicGraph::Snapshot() const {
  // Build the CSR directly: ids must stay aligned (including trailing
  // isolated nodes, which GraphBuilder's relabeling would drop) and
  // multiplicities must be preserved.
  const NodeId n = num_nodes();
  std::vector<EdgeId> offsets(static_cast<size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + adjacency_[v].size();
  }
  std::vector<NodeId> targets;
  targets.reserve(num_edges_);
  for (NodeId v = 0; v < n; ++v) {
    std::vector<NodeId> sorted(adjacency_[v].begin(), adjacency_[v].end());
    std::sort(sorted.begin(), sorted.end());
    targets.insert(targets.end(), sorted.begin(), sorted.end());
  }
  return Graph(std::move(offsets), std::move(targets));
}

}  // namespace ppr
