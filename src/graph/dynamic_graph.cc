#include "graph/dynamic_graph.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "util/rng.h"

namespace ppr {

namespace {

/// 64-bit packing of one mutation, fed through SplitMix64 so the running
/// fingerprint diffuses every bit of (kind, u, v).
uint64_t MutationWord(UpdateKind kind, NodeId u, NodeId v) {
  return (static_cast<uint64_t>(kind) << 63) |
         (static_cast<uint64_t>(u) << 32) | static_cast<uint64_t>(v);
}

}  // namespace

DynamicGraph::DynamicGraph(NodeId n)
    : adjacency_(n),
      num_edges_(0),
      num_dead_ends_(n),
      fingerprint_(SplitMix64(static_cast<uint64_t>(n)).Next()) {}

DynamicGraph::DynamicGraph(const Graph& graph)
    : adjacency_(graph.num_nodes()),
      num_edges_(graph.num_edges()),
      fingerprint_(SplitMix64(graph.Fingerprint()).Next()) {
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    auto neighbors = graph.OutNeighbors(v);
    // assign() from random-access iterators performs one exact-capacity
    // allocation per row; AddEdge growth beyond it is amortized
    // doubling, never per-edge reallocation from zero.
    adjacency_[v].assign(neighbors.begin(), neighbors.end());
    if (neighbors.empty()) num_dead_ends_++;
  }
}

NodeId DynamicGraph::EdgeMultiplicity(NodeId u, NodeId v) const {
  PPR_DCHECK(u < num_nodes());
  NodeId count = 0;
  for (NodeId x : adjacency_[u]) {
    if (x == v) count++;
  }
  return count;
}

void DynamicGraph::MixMutation(UpdateKind kind, NodeId u, NodeId v) {
  epoch_++;
  fingerprint_ =
      SplitMix64(fingerprint_ ^ MutationWord(kind, u, v)).Next();
}

void DynamicGraph::AddEdge(NodeId u, NodeId v) {
  PPR_CHECK(u < num_nodes() && v < num_nodes());
  PPR_CHECK(u != v) << "self-loops are not supported";
  if (adjacency_[u].empty()) num_dead_ends_--;
  adjacency_[u].push_back(v);
  num_edges_++;
  MixMutation(UpdateKind::kInsert, u, v);
}

void DynamicGraph::RemoveEdge(NodeId u, NodeId v) {
  PPR_CHECK(u < num_nodes() && v < num_nodes());
  auto& row = adjacency_[u];
  auto it = std::find(row.begin(), row.end(), v);
  PPR_CHECK(it != row.end()) << "edge (" << u << ", " << v << ") not present";
  row.erase(it);  // keep the remaining order: push iteration is stable
  num_edges_--;
  if (row.empty()) num_dead_ends_++;
  MixMutation(UpdateKind::kDelete, u, v);
}

Status DynamicGraph::Validate(const UpdateBatch& batch) const {
  // Running multiplicities for the edges the batch touches — seeded
  // from the graph with one O(d_u) scan on first touch, then O(1) — so
  // a deletion is checked against the graph *as it will be* when the
  // update is reached (a batch may consume edges it inserted earlier).
  std::unordered_map<uint64_t, int64_t> remaining;
  for (size_t i = 0; i < batch.updates.size(); ++i) {
    const EdgeUpdate& up = batch.updates[i];
    if (up.u >= num_nodes() || up.v >= num_nodes()) {
      return Status::InvalidArgument(
          "update " + std::to_string(i) + ": node out of range (n=" +
          std::to_string(num_nodes()) + ")");
    }
    if (up.u == up.v) {
      return Status::InvalidArgument("update " + std::to_string(i) +
                                     ": self-loops are not supported");
    }
    const uint64_t key =
        (static_cast<uint64_t>(up.u) << 32) | static_cast<uint64_t>(up.v);
    auto it = remaining.find(key);
    if (it == remaining.end()) {
      it = remaining
               .emplace(key,
                        static_cast<int64_t>(EdgeMultiplicity(up.u, up.v)))
               .first;
    }
    if (up.kind == UpdateKind::kInsert) {
      it->second++;
    } else {
      if (it->second <= 0) {
        return Status::InvalidArgument(
            "update " + std::to_string(i) + ": edge (" +
            std::to_string(up.u) + ", " + std::to_string(up.v) +
            ") does not exist at that point of the batch");
      }
      it->second--;
    }
  }
  return Status::OK();
}

Status DynamicGraph::Apply(const UpdateBatch& batch) {
  PPR_RETURN_IF_ERROR(Validate(batch));
  for (const EdgeUpdate& up : batch.updates) {
    if (up.kind == UpdateKind::kInsert) {
      AddEdge(up.u, up.v);
    } else {
      RemoveEdge(up.u, up.v);
    }
  }
  return Status::OK();
}

Graph DynamicGraph::Snapshot() const {
  // Build the CSR directly: ids must stay aligned (including trailing
  // isolated nodes, which GraphBuilder's relabeling would drop) and
  // multiplicities must be preserved. Rows are appended into the final
  // arrays and sorted in place — no per-row temporaries.
  const NodeId n = num_nodes();
  std::vector<EdgeId> offsets;
  offsets.reserve(static_cast<size_t>(n) + 1);
  offsets.push_back(0);
  std::vector<NodeId> targets;
  targets.reserve(num_edges_);
  for (NodeId v = 0; v < n; ++v) {
    const size_t row_begin = targets.size();
    targets.insert(targets.end(), adjacency_[v].begin(), adjacency_[v].end());
    std::sort(targets.begin() + row_begin, targets.end());
    offsets.push_back(targets.size());
  }
  return Graph(std::move(offsets), std::move(targets));
}

}  // namespace ppr
