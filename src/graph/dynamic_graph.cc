#include "graph/dynamic_graph.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "util/rng.h"

namespace ppr {

namespace {

/// 64-bit packing of one mutation, fed through SplitMix64 so the running
/// fingerprint diffuses every bit of (kind, u, v). Two kind bits cover
/// the four mutation kinds; fingerprints are runtime-only tokens (never
/// persisted), so widening the field across versions is safe.
uint64_t MutationWord(UpdateKind kind, NodeId u, NodeId v) {
  return (static_cast<uint64_t>(kind) << 62) |
         (static_cast<uint64_t>(u) << 32) | static_cast<uint64_t>(v);
}

}  // namespace

DynamicGraph::DynamicGraph(NodeId n)
    : adjacency_(n),
      num_edges_(0),
      num_dead_ends_(n),
      fingerprint_(SplitMix64(static_cast<uint64_t>(n)).Next()) {}

DynamicGraph::DynamicGraph(const Graph& graph)
    : adjacency_(graph.num_nodes()),
      num_edges_(graph.num_edges()),
      fingerprint_(SplitMix64(graph.Fingerprint()).Next()) {
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    auto neighbors = graph.OutNeighbors(v);
    // assign() from random-access iterators performs one exact-capacity
    // allocation per row; AddEdge growth beyond it is amortized
    // doubling, never per-edge reallocation from zero.
    adjacency_[v].assign(neighbors.begin(), neighbors.end());
    if (neighbors.empty()) num_dead_ends_++;
  }
}

NodeId DynamicGraph::EdgeMultiplicity(NodeId u, NodeId v) const {
  PPR_DCHECK(u < num_nodes());
  NodeId count = 0;
  for (NodeId x : adjacency_[u]) {
    if (x == v) count++;
  }
  return count;
}

void DynamicGraph::MixMutation(UpdateKind kind, NodeId u, NodeId v) {
  epoch_++;
  fingerprint_ =
      SplitMix64(fingerprint_ ^ MutationWord(kind, u, v)).Next();
}

void DynamicGraph::AddEdge(NodeId u, NodeId v) {
  PPR_CHECK(u < num_nodes() && v < num_nodes());
  PPR_CHECK(u != v) << "self-loops are not supported";
  if (adjacency_[u].empty()) num_dead_ends_--;
  adjacency_[u].push_back(v);
  num_edges_++;
  MixMutation(UpdateKind::kInsert, u, v);
}

void DynamicGraph::RemoveEdge(NodeId u, NodeId v) {
  PPR_CHECK(u < num_nodes() && v < num_nodes());
  auto& row = adjacency_[u];
  auto it = std::find(row.begin(), row.end(), v);
  PPR_CHECK(it != row.end()) << "edge (" << u << ", " << v << ") not present";
  row.erase(it);  // keep the remaining order: push iteration is stable
  num_edges_--;
  if (row.empty()) num_dead_ends_++;
  MixMutation(UpdateKind::kDelete, u, v);
}

NodeId DynamicGraph::AddNode() {
  adjacency_.emplace_back();
  num_dead_ends_++;
  const NodeId id = static_cast<NodeId>(adjacency_.size() - 1);
  MixMutation(UpdateKind::kAddNode, id, 0);
  return id;
}

size_t DynamicGraph::RemoveNode(
    NodeId u, const std::function<void(const EdgeUpdate&)>& before,
    const std::function<void(const EdgeUpdate&)>& after) {
  PPR_CHECK(u < num_nodes());
  size_t removed = 0;
  auto drop = [&](NodeId a, NodeId b) {
    const EdgeUpdate lowered{UpdateKind::kDelete, a, b};
    if (before) before(lowered);
    RemoveEdge(a, b);
    if (after) after(lowered);
    removed++;
  };
  // In-edges first, scanning rows in id order; each parallel occurrence
  // is its own lowered deletion so observers see multiplicities drop one
  // step at a time, exactly as an equivalent hand-written batch would.
  for (NodeId x = 0; x < num_nodes(); ++x) {
    if (x == u) continue;
    NodeId multiplicity = EdgeMultiplicity(x, u);
    while (multiplicity-- > 0) drop(x, u);
  }
  // Then the out-edges, front to back (RemoveEdge erases the first
  // occurrence, so taking front() each round preserves row order).
  while (!adjacency_[u].empty()) drop(u, adjacency_[u].front());
  // Finally the marker mutation: the epoch/fingerprint history records
  // the removal itself, not just its lowering.
  MixMutation(UpdateKind::kRemoveNode, u, 0);
  return removed;
}

Status DynamicGraph::Validate(const UpdateBatch& batch) const {
  // Running multiplicities for the edges the batch touches — seeded
  // from the graph with one O(d_u) scan on first touch, then O(1) — so
  // a deletion is checked against the graph *as it will be* when the
  // update is reached (a batch may consume edges it inserted earlier,
  // touch nodes it added, or re-touch an edge slot a node removal
  // cleared). Node ops need two extra pieces of running state: the node
  // count as it evolves through the batch, and the set of nodes removed
  // so far — a first-touch key with a removed endpoint seeds at zero
  // instead of the pre-batch multiplicity, and a removal zeroes every
  // already-tracked key incident to it.
  std::unordered_map<uint64_t, int64_t> remaining;
  std::unordered_set<NodeId> removed_nodes;
  uint64_t running_n = num_nodes();
  auto multiplicity_at = [&](NodeId a, NodeId b) -> int64_t {
    if (a >= num_nodes() || b >= num_nodes()) return 0;  // added in-batch
    if (removed_nodes.count(a) != 0 || removed_nodes.count(b) != 0) return 0;
    return static_cast<int64_t>(EdgeMultiplicity(a, b));
  };
  for (size_t i = 0; i < batch.updates.size(); ++i) {
    const EdgeUpdate& up = batch.updates[i];
    if (up.kind == UpdateKind::kAddNode) {
      running_n++;
      continue;
    }
    if (up.u >= running_n ||
        (up.kind != UpdateKind::kRemoveNode && up.v >= running_n)) {
      return Status::InvalidArgument(
          "update " + std::to_string(i) + ": node out of range (n=" +
          std::to_string(running_n) + ")");
    }
    if (up.kind == UpdateKind::kRemoveNode) {
      for (auto& [key, count] : remaining) {
        if (static_cast<NodeId>(key >> 32) == up.u ||
            static_cast<NodeId>(key & 0xffffffffULL) == up.u) {
          count = 0;
        }
      }
      removed_nodes.insert(up.u);
      continue;
    }
    if (up.u == up.v) {
      return Status::InvalidArgument("update " + std::to_string(i) +
                                     ": self-loops are not supported");
    }
    const uint64_t key =
        (static_cast<uint64_t>(up.u) << 32) | static_cast<uint64_t>(up.v);
    auto it = remaining.find(key);
    if (it == remaining.end()) {
      it = remaining.emplace(key, multiplicity_at(up.u, up.v)).first;
    }
    if (up.kind == UpdateKind::kInsert) {
      it->second++;
    } else {
      if (it->second <= 0) {
        return Status::InvalidArgument(
            "update " + std::to_string(i) + ": edge (" +
            std::to_string(up.u) + ", " + std::to_string(up.v) +
            ") does not exist at that point of the batch");
      }
      it->second--;
    }
  }
  return Status::OK();
}

Status DynamicGraph::Apply(const UpdateBatch& batch) {
  PPR_RETURN_IF_ERROR(Validate(batch));
  for (const EdgeUpdate& up : batch.updates) {
    switch (up.kind) {
      case UpdateKind::kInsert:
        AddEdge(up.u, up.v);
        break;
      case UpdateKind::kDelete:
        RemoveEdge(up.u, up.v);
        break;
      case UpdateKind::kAddNode:
        AddNode();
        break;
      case UpdateKind::kRemoveNode:
        RemoveNode(up.u);
        break;
    }
  }
  return Status::OK();
}

Graph DynamicGraph::Snapshot() const {
  // Build the CSR directly: ids must stay aligned (including trailing
  // isolated nodes, which GraphBuilder's relabeling would drop) and
  // multiplicities must be preserved. Rows are appended into the final
  // arrays and sorted in place — no per-row temporaries.
  const NodeId n = num_nodes();
  std::vector<EdgeId> offsets;
  offsets.reserve(static_cast<size_t>(n) + 1);
  offsets.push_back(0);
  std::vector<NodeId> targets;
  targets.reserve(num_edges_);
  for (NodeId v = 0; v < n; ++v) {
    const size_t row_begin = targets.size();
    targets.insert(targets.end(), adjacency_[v].begin(), adjacency_[v].end());
    std::sort(targets.begin() + row_begin, targets.end());
    offsets.push_back(targets.size());
  }
  return Graph(std::move(offsets), std::move(targets));
}

}  // namespace ppr
