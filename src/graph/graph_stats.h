#ifndef PPR_GRAPH_GRAPH_STATS_H_
#define PPR_GRAPH_GRAPH_STATS_H_

#include <string>

#include "graph/graph.h"
#include "util/histogram.h"

namespace ppr {

/// Summary statistics of a built graph — the quantities of the paper's
/// Table 1 plus degree-distribution detail used to validate that synthetic
/// stand-ins are heavy-tailed.
struct GraphStats {
  NodeId num_nodes = 0;
  EdgeId num_edges = 0;
  double avg_degree = 0.0;
  NodeId max_out_degree = 0;

  /// Nodes with out-degree 0. For a partition fragment this counts
  /// *global* dead ends only — a node whose edges all leave the
  /// fragment is cut, not dead (see ghost_edges).
  NodeId dead_ends = 0;

  /// Edges whose tail is local but whose head lives outside this
  /// (sub)graph — the fragment's edge-cut contribution. Always 0 for a
  /// whole graph; filled by GraphPartition for fragments. Kept separate
  /// from dead_ends so cut edges are never misread as absorbing mass.
  EdgeId ghost_edges = 0;
  Histogram out_degree_histogram;

  /// Fraction of edges incident (as source) to the top 1% highest
  /// out-degree nodes; > ~0.1 indicates a heavy tail.
  double top1pct_degree_share = 0.0;
};

GraphStats ComputeGraphStats(const Graph& graph);

/// One-line rendering: "n=317K m=2.10M m/n=6.62 maxd=343 dead=0".
std::string FormatGraphStats(const GraphStats& stats);

}  // namespace ppr

#endif  // PPR_GRAPH_GRAPH_STATS_H_
