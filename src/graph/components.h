#ifndef PPR_GRAPH_COMPONENTS_H_
#define PPR_GRAPH_COMPONENTS_H_

#include <vector>

#include "graph/graph.h"

namespace ppr {

/// Weakly-connected-component decomposition (edges treated as
/// undirected). Shared by SlashBurn and available to applications that
/// need to restrict PPR queries to the component of the source.
struct ComponentResult {
  /// node -> component id in [0, num_components); components are
  /// numbered in order of their smallest member.
  std::vector<NodeId> component_of;
  /// component id -> size.
  std::vector<NodeId> sizes;
  /// Index of the largest component (smallest id wins ties).
  NodeId giant = 0;

  NodeId num_components() const { return static_cast<NodeId>(sizes.size()); }
};

/// Decomposes the whole graph. Requires in-adjacency (undirected
/// connectivity needs both edge directions).
ComponentResult WeaklyConnectedComponents(const Graph& graph);

/// Decomposes the subgraph induced by {v : mask[v] != 0}. Nodes outside
/// the mask get component id = num_components() (an out-of-range
/// sentinel). Requires in-adjacency.
ComponentResult WeaklyConnectedComponents(const Graph& graph,
                                          const std::vector<uint8_t>& mask);

}  // namespace ppr

#endif  // PPR_GRAPH_COMPONENTS_H_
