#ifndef PPR_GRAPH_GRAPH_H_
#define PPR_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/logging.h"

namespace ppr {

/// Node identifier. Graphs are relabeled to [0, n) at build time, so
/// 32 bits cover every dataset the paper uses except full Twitter, whose
/// node count (41.7M) also fits comfortably.
using NodeId = uint32_t;

/// Edge index / edge count type.
using EdgeId = uint64_t;

/// A directed edge (source, target).
struct Edge {
  NodeId src;
  NodeId dst;

  bool operator==(const Edge&) const = default;
  bool operator<(const Edge& o) const {
    return src != o.src ? src < o.src : dst < o.dst;
  }
};

/// Immutable directed graph in Compressed Sparse Row form.
///
/// The out-adjacency of every node is stored contiguously, concatenated in
/// node-id order in one large array — exactly the storage format §5 of the
/// paper calls out as the enabler of PowerPush's cache-friendly global
/// sequential scans. An optional in-adjacency (the transpose) is kept for
/// algorithms that need it (BePI builds H = I − (1−α)Pᵀ from it).
///
/// Dead ends (out-degree 0) are permitted; PPR algorithms follow the
/// paper's convention of conceptually redirecting a dead end's outgoing
/// mass back to the query source.
class Graph {
 public:
  Graph() = default;

  /// Builds from CSR arrays. offsets.size() == n+1, offsets[n] ==
  /// targets.size(). Prefer GraphBuilder, which produces cleaned input.
  Graph(std::vector<EdgeId> out_offsets, std::vector<NodeId> out_targets);

  NodeId num_nodes() const { return static_cast<NodeId>(out_offsets_.empty() ? 0 : out_offsets_.size() - 1); }
  EdgeId num_edges() const { return out_targets_.size(); }

  NodeId OutDegree(NodeId v) const {
    PPR_DCHECK(v < num_nodes());
    return static_cast<NodeId>(out_offsets_[v + 1] - out_offsets_[v]);
  }

  std::span<const NodeId> OutNeighbors(NodeId v) const {
    PPR_DCHECK(v < num_nodes());
    return {out_targets_.data() + out_offsets_[v],
            out_targets_.data() + out_offsets_[v + 1]};
  }

  bool has_in_adjacency() const { return !in_offsets_.empty(); }

  NodeId InDegree(NodeId v) const {
    PPR_DCHECK(has_in_adjacency() && v < num_nodes());
    return static_cast<NodeId>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  std::span<const NodeId> InNeighbors(NodeId v) const {
    PPR_DCHECK(has_in_adjacency() && v < num_nodes());
    return {in_targets_.data() + in_offsets_[v],
            in_targets_.data() + in_offsets_[v + 1]};
  }

  /// Computes and caches the transpose; required before InNeighbors().
  /// Idempotent.
  void BuildInAdjacency();

  /// Number of nodes with out-degree zero.
  NodeId CountDeadEnds() const;

  /// True if edge (u, v) exists. O(log d_u) via binary search; adjacency
  /// lists are sorted by GraphBuilder.
  bool HasEdge(NodeId u, NodeId v) const;

  /// Average out-degree m/n; 0 for the empty graph.
  double AverageDegree() const;

  /// Bytes of CSR storage (both directions if built).
  uint64_t MemoryBytes() const;

  /// Direct access to the raw CSR arrays (used by the scan loops of
  /// PowerPush and by serialization).
  const std::vector<EdgeId>& out_offsets() const { return out_offsets_; }
  const std::vector<NodeId>& out_targets() const { return out_targets_; }

  /// 64-bit hash of the out-CSR arrays. Two graphs with different edges
  /// (or the same edges under a different node labeling) fingerprint
  /// differently with overwhelming probability; used to key on-disk
  /// caches (WalkIndex cache_dir=) to the exact graph they were built
  /// on. O(n + m).
  uint64_t Fingerprint() const;

 private:
  std::vector<EdgeId> out_offsets_;
  std::vector<NodeId> out_targets_;
  std::vector<EdgeId> in_offsets_;
  std::vector<NodeId> in_targets_;
};

}  // namespace ppr

#endif  // PPR_GRAPH_GRAPH_H_
