#include "graph/components.h"

#include "util/logging.h"

namespace ppr {

namespace {

ComponentResult Decompose(const Graph& graph,
                          const std::vector<uint8_t>* mask) {
  PPR_CHECK(graph.has_in_adjacency())
      << "components need the transpose; call Graph::BuildInAdjacency";
  const NodeId n = graph.num_nodes();
  ComponentResult result;
  result.component_of.assign(n, 0);
  std::vector<uint8_t> visited(n, 0);
  std::vector<NodeId> stack;

  auto in_scope = [&](NodeId v) { return mask == nullptr || (*mask)[v]; };

  NodeId next_component = 0;
  for (NodeId seed = 0; seed < n; ++seed) {
    if (visited[seed] || !in_scope(seed)) continue;
    const NodeId component = next_component++;
    NodeId size = 0;
    stack.assign(1, seed);
    visited[seed] = 1;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      result.component_of[v] = component;
      size++;
      auto visit = [&](NodeId u) {
        if (!visited[u] && in_scope(u)) {
          visited[u] = 1;
          stack.push_back(u);
        }
      };
      for (NodeId u : graph.OutNeighbors(v)) visit(u);
      for (NodeId u : graph.InNeighbors(v)) visit(u);
    }
    result.sizes.push_back(size);
    if (size > result.sizes[result.giant]) result.giant = component;
  }

  // Out-of-scope nodes get the sentinel id.
  if (mask != nullptr) {
    for (NodeId v = 0; v < n; ++v) {
      if (!in_scope(v)) result.component_of[v] = next_component;
    }
  }
  return result;
}

}  // namespace

ComponentResult WeaklyConnectedComponents(const Graph& graph) {
  return Decompose(graph, nullptr);
}

ComponentResult WeaklyConnectedComponents(const Graph& graph,
                                          const std::vector<uint8_t>& mask) {
  PPR_CHECK(mask.size() == graph.num_nodes());
  return Decompose(graph, &mask);
}

}  // namespace ppr
