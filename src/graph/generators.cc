#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "graph/graph_builder.h"

namespace ppr {

namespace {

/// Walker's alias method: O(n) build, O(1) sampling from a discrete
/// distribution. Used by the weight-driven generators.
class AliasTable {
 public:
  explicit AliasTable(const std::vector<double>& weights) {
    const size_t n = weights.size();
    PPR_CHECK(n > 0);
    prob_.resize(n);
    alias_.resize(n);
    double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    PPR_CHECK(total > 0.0);

    std::vector<double> scaled(n);
    for (size_t i = 0; i < n; ++i) {
      scaled[i] = weights[i] * static_cast<double>(n) / total;
    }
    std::vector<uint32_t> small;
    std::vector<uint32_t> large;
    for (size_t i = 0; i < n; ++i) {
      (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
      uint32_t s = small.back();
      small.pop_back();
      uint32_t l = large.back();
      large.pop_back();
      prob_[s] = scaled[s];
      alias_[s] = l;
      scaled[l] = (scaled[l] + scaled[s]) - 1.0;
      (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    for (uint32_t i : large) prob_[i] = 1.0;
    for (uint32_t i : small) prob_[i] = 1.0;  // FP residue: accept directly
  }

  uint32_t Sample(Rng& rng) const {
    uint32_t column = static_cast<uint32_t>(rng.NextBounded(prob_.size()));
    return rng.NextDouble() < prob_[column] ? column : alias_[column];
  }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

/// Power-law weights w_i = (i + i0)^(-1/(exponent-1)), the standard
/// Chung–Lu recipe for tail exponent `exponent`.
std::vector<double> PowerLawWeights(NodeId n, double exponent) {
  PPR_CHECK(exponent > 2.0) << "Chung-Lu needs tail exponent > 2";
  const double gamma = 1.0 / (exponent - 1.0);
  const double i0 = 10.0;  // damps the largest hub to keep w_max manageable
  std::vector<double> weights(n);
  for (NodeId i = 0; i < n; ++i) {
    weights[i] = std::pow(static_cast<double>(i) + i0, -gamma);
  }
  return weights;
}

}  // namespace

Graph PaperExampleGraph() {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 0);
  builder.AddEdge(1, 2);
  builder.AddEdge(1, 3);
  builder.AddEdge(1, 4);
  builder.AddEdge(2, 1);
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 0);
  builder.AddEdge(3, 1);
  builder.AddEdge(3, 2);
  builder.AddEdge(4, 1);
  builder.AddEdge(4, 2);
  return builder.Build();
}

Graph PathGraph(NodeId n) {
  PPR_CHECK(n >= 2);
  GraphBuilder builder;
  for (NodeId v = 0; v + 1 < n; ++v) builder.AddEdge(v, v + 1);
  BuildOptions options;
  options.remove_isolated = false;  // keep the terminal dead end
  return builder.Build(options);
}

Graph CycleGraph(NodeId n) {
  PPR_CHECK(n >= 2);
  GraphBuilder builder;
  for (NodeId v = 0; v < n; ++v) builder.AddEdge(v, (v + 1) % n);
  return builder.Build();
}

Graph StarGraph(NodeId n) {
  PPR_CHECK(n >= 2);
  GraphBuilder builder;
  for (NodeId v = 1; v < n; ++v) builder.AddEdge(0, v);
  BuildOptions options;
  options.symmetrize = true;
  return builder.Build(options);
}

Graph CompleteGraph(NodeId n) {
  PPR_CHECK(n >= 2);
  GraphBuilder builder;
  builder.Reserve(static_cast<size_t>(n) * (n - 1));
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v) builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

Graph GridGraph(NodeId rows, NodeId cols) {
  PPR_CHECK(rows >= 1 && cols >= 1 && rows * cols >= 2);
  GraphBuilder builder;
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) builder.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  BuildOptions options;
  options.symmetrize = true;
  return builder.Build(options);
}

Graph ErdosRenyi(NodeId n, double avg_out_degree, Rng& rng) {
  PPR_CHECK(n >= 2 && avg_out_degree > 0);
  const EdgeId target =
      static_cast<EdgeId>(std::llround(avg_out_degree * n));
  GraphBuilder builder;
  builder.Reserve(target + target / 16);
  // Sample with rejection of loops; duplicates are removed by the builder,
  // so oversample slightly.
  EdgeId to_draw = target + target / 32 + 8;
  for (EdgeId i = 0; i < to_draw; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (u == v) continue;
    builder.AddEdge(u, v);
  }
  BuildOptions options;
  options.remove_isolated = false;
  return builder.Build(options);
}

Graph BarabasiAlbert(NodeId n, NodeId edges_per_node, Rng& rng) {
  PPR_CHECK(edges_per_node >= 1);
  PPR_CHECK(n > edges_per_node);
  // Repeated-endpoints list: sampling a uniform element of `endpoints`
  // realizes preferential attachment.
  std::vector<NodeId> endpoints;
  endpoints.reserve(static_cast<size_t>(n) * edges_per_node * 2);
  GraphBuilder builder;

  // Seed clique over the first edges_per_node+1 nodes.
  for (NodeId u = 0; u <= edges_per_node; ++u) {
    for (NodeId v = u + 1; v <= edges_per_node; ++v) {
      builder.AddEdge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (NodeId v = edges_per_node + 1; v < n; ++v) {
    for (NodeId k = 0; k < edges_per_node; ++k) {
      NodeId target = endpoints[rng.NextBounded(endpoints.size())];
      if (target == v) {
        --k;
        continue;
      }
      builder.AddEdge(v, target);
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
  }
  BuildOptions options;
  options.symmetrize = true;
  return builder.Build(options);
}

Graph ChungLuPowerLaw(NodeId n, double avg_degree, double exponent, Rng& rng,
                      bool symmetrize) {
  PPR_CHECK(n >= 2 && avg_degree > 0);
  std::vector<double> weights = PowerLawWeights(n, exponent);

  // Independent hub assignments for the two endpoints.
  std::vector<NodeId> out_perm(n);
  std::vector<NodeId> in_perm(n);
  std::iota(out_perm.begin(), out_perm.end(), 0);
  std::iota(in_perm.begin(), in_perm.end(), 0);
  std::shuffle(out_perm.begin(), out_perm.end(), rng);
  std::shuffle(in_perm.begin(), in_perm.end(), rng);

  AliasTable table(weights);
  EdgeId target = static_cast<EdgeId>(std::llround(avg_degree * n));
  if (symmetrize) target /= 2;
  GraphBuilder builder;
  builder.Reserve(target + target / 16);
  EdgeId to_draw = target + target / 24 + 8;  // headroom for dedup losses
  for (EdgeId i = 0; i < to_draw; ++i) {
    NodeId u = out_perm[table.Sample(rng)];
    NodeId v = in_perm[table.Sample(rng)];
    if (u == v) continue;
    builder.AddEdge(u, v);
  }
  BuildOptions options;
  options.symmetrize = symmetrize;
  return builder.Build(options);
}

Graph CopyModelWeb(NodeId n, NodeId out_degree, double copy_prob, Rng& rng) {
  PPR_CHECK(n > out_degree && out_degree >= 1);
  PPR_CHECK(copy_prob >= 0.0 && copy_prob <= 1.0);
  // adjacency[v][k]: the k-th out-edge of v, filled in arrival order.
  std::vector<std::vector<NodeId>> adjacency(n);
  GraphBuilder builder;

  // Bootstrap: a directed cycle over the first out_degree+1 nodes keeps
  // early prototypes non-degenerate.
  const NodeId boot = out_degree + 1;
  for (NodeId v = 0; v < boot; ++v) {
    for (NodeId k = 1; k <= out_degree; ++k) {
      NodeId t = (v + k) % boot;
      adjacency[v].push_back(t);
      builder.AddEdge(v, t);
    }
  }
  for (NodeId v = boot; v < n; ++v) {
    NodeId prototype = static_cast<NodeId>(rng.NextBounded(v));
    for (NodeId k = 0; k < out_degree; ++k) {
      NodeId t;
      if (rng.NextBernoulli(copy_prob) && k < adjacency[prototype].size()) {
        t = adjacency[prototype][k];
      } else {
        t = static_cast<NodeId>(rng.NextBounded(v));
      }
      if (t == v) t = prototype;
      adjacency[v].push_back(t);
      builder.AddEdge(v, t);
    }
  }
  BuildOptions options;
  options.remove_isolated = false;
  return builder.Build(options);
}

}  // namespace ppr
