#include "graph/datasets.h"

#include <algorithm>
#include <cstdlib>

#include "graph/generators.h"
#include "util/logging.h"
#include "util/rng.h"

namespace ppr {

const std::vector<DatasetSpec>& PaperDatasets() {
  using Family = DatasetSpec::Family;
  static const std::vector<DatasetSpec> kDatasets = {
      // DBLP: 317K nodes, m/n 6.62, undirected co-authorship. BA gives the
      // same flavor of sparse heavy-tail collaboration structure.
      {"dblp-sim", "DBLP", /*directed=*/false, 32768, 6.62,
       Family::kBarabasiAlbert, 2.8},
      // Web-Stanford: 282K nodes, m/n 8.20, directed web crawl with strong
      // local link-copying structure.
      {"webst-sim", "Web-St", /*directed=*/true, 32768, 8.20,
       Family::kCopyWeb, 2.3},
      // Pokec: 1.63M nodes, m/n 18.8, directed social network.
      {"pokec-sim", "Pokec", /*directed=*/true, 65536, 18.8,
       Family::kChungLu, 2.5},
      // LiveJournal: 4.85M nodes, m/n 14.1, directed social network.
      {"lj-sim", "LJ", /*directed=*/true, 131072, 14.1, Family::kChungLu,
       2.45},
      // Orkut: 3.07M nodes, m/n 76.3, dense undirected social network —
      // the dataset where BePI's preprocessing blows up in the paper.
      {"orkut-sim", "Orkut", /*directed=*/false, 49152, 76.3,
       Family::kChungLuSym, 2.6},
      // Twitter: 41.7M nodes, m/n 35.3, directed follower graph with
      // extreme hubs.
      {"twitter-sim", "Twitter", /*directed=*/true, 131072, 35.3,
       Family::kChungLu, 2.2},
  };
  return kDatasets;
}

const DatasetSpec& FindDataset(const std::string& name) {
  for (const DatasetSpec& spec : PaperDatasets()) {
    if (spec.name == name || spec.paper_name == name) return spec;
  }
  PPR_CHECK(false) << "unknown dataset: " << name;
  __builtin_unreachable();
}

Graph MakeDataset(const DatasetSpec& spec, double scale, uint64_t seed) {
  PPR_CHECK(scale > 0);
  NodeId n = static_cast<NodeId>(
      std::max(1000.0, static_cast<double>(spec.base_nodes) * scale));
  Rng rng(seed ^ (static_cast<uint64_t>(spec.name[0]) << 32) ^
          spec.name.size());
  switch (spec.family) {
    case DatasetSpec::Family::kChungLu:
      return ChungLuPowerLaw(n, spec.avg_degree, spec.exponent, rng,
                             /*symmetrize=*/false);
    case DatasetSpec::Family::kChungLuSym:
      return ChungLuPowerLaw(n, spec.avg_degree, spec.exponent, rng,
                             /*symmetrize=*/true);
    case DatasetSpec::Family::kCopyWeb:
      return CopyModelWeb(n, static_cast<NodeId>(spec.avg_degree + 0.5),
                          /*copy_prob=*/0.55, rng);
    case DatasetSpec::Family::kBarabasiAlbert:
      return BarabasiAlbert(
          n, static_cast<NodeId>(std::max(1.0, spec.avg_degree / 2.0)), rng);
  }
  __builtin_unreachable();
}

double BenchScaleFromEnv() {
  const char* env = std::getenv("PPR_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double scale = std::atof(env);
  if (scale <= 0.0) return 1.0;
  return std::clamp(scale, 0.01, 100.0);
}

}  // namespace ppr
