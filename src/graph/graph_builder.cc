#include "graph/graph_builder.h"

#include <algorithm>
#include <utility>

namespace ppr {

Graph GraphBuilder::Build(const BuildOptions& options) {
  std::vector<Edge> edges = std::move(edges_);
  edges_.clear();
  return FromEdges(std::move(edges), options);
}

Graph GraphBuilder::FromEdges(std::vector<Edge> edges,
                              const BuildOptions& options) {
  if (options.symmetrize) {
    size_t original = edges.size();
    edges.reserve(original * 2);
    for (size_t i = 0; i < original; ++i) {
      edges.push_back({edges[i].dst, edges[i].src});
    }
  }

  if (options.remove_self_loops) {
    std::erase_if(edges, [](const Edge& e) { return e.src == e.dst; });
  }

  std::sort(edges.begin(), edges.end());
  if (options.deduplicate) {
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }

  // Determine the id universe.
  NodeId max_id = 0;
  for (const Edge& e : edges) {
    max_id = std::max({max_id, e.src, e.dst});
  }
  NodeId universe = edges.empty() ? 0 : max_id + 1;

  // Relabel: keep only ids that occur on at least one edge.
  std::vector<NodeId> relabel;
  NodeId n = universe;
  if (options.remove_isolated) {
    std::vector<uint8_t> seen(universe, 0);
    for (const Edge& e : edges) {
      seen[e.src] = 1;
      seen[e.dst] = 1;
    }
    relabel.assign(universe, 0);
    NodeId next = 0;
    for (NodeId v = 0; v < universe; ++v) {
      if (seen[v]) relabel[v] = next++;
    }
    n = next;
    for (Edge& e : edges) {
      e.src = relabel[e.src];
      e.dst = relabel[e.dst];
    }
  }

  std::vector<EdgeId> offsets(static_cast<size_t>(n) + 1, 0);
  for (const Edge& e : edges) offsets[e.src + 1]++;
  for (NodeId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];

  std::vector<NodeId> targets(edges.size());
  // Edges are sorted by (src, dst): write in order, each adjacency list
  // comes out sorted.
  for (size_t i = 0; i < edges.size(); ++i) targets[i] = edges[i].dst;

  Graph graph(std::move(offsets), std::move(targets));
  if (options.build_in_adjacency) graph.BuildInAdjacency();
  return graph;
}

}  // namespace ppr
