#ifndef PPR_APPROX_RESACC_H_
#define PPR_APPROX_RESACC_H_

#include <vector>

#include "approx/monte_carlo.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace ppr {

/// ResAcc (Lin et al., ICDE'20), reimplemented from its description in
/// the paper's §7: an index-free FORA accelerator that *accumulates* the
/// residue flowing back to the source during the forward-push phase
/// instead of re-pushing it. A walk whose mass returns to s behaves like
/// a fresh walk from s, so the accumulated mass is distributed over all
/// nodes proportionally to the current estimate (a renormalization by
/// 1/(1 − r_acc)) before the Monte-Carlo phase.
///
/// This is a faithful simplification of the published algorithm (which
/// additionally tunes push thresholds); it preserves the key behaviour
/// the paper's Figures 7–8 exercise: index-free, FORA-like cost, slightly
/// better constant factors on graphs where much residue recirculates.
SolveStats ResAcc(const Graph& graph, NodeId source,
                  const ApproxOptions& options, Rng& rng,
                  std::vector<double>* out);

}  // namespace ppr

#endif  // PPR_APPROX_RESACC_H_
