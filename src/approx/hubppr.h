#ifndef PPR_APPROX_HUBPPR_H_
#define PPR_APPROX_HUBPPR_H_

#include <unordered_map>
#include <vector>

#include "approx/bippr.h"
#include "core/workspace.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace ppr {

/// HubPPR (Wang et al., VLDB'16), reimplemented at its core idea for the
/// related-work roster (§7): accelerate bidirectional single-pair
/// queries by *precomputing the backward oracle for hub targets*. Hubs
/// are the nodes most likely to be queried / most expensive to push
/// backward — we select the top-H by global PageRank, matching the
/// original's aggregated-benefit heuristic.
///
/// A query (s, t) runs BiPPR's forward-walk phase against either the
/// precomputed backward state (t is a hub: zero backward cost) or a
/// fresh BackwardPush (t is not). Estimates are identical in
/// distribution either way; only the cost moves from query time to
/// preprocessing.
///
/// Same preconditions as BackwardPush: in-adjacency built, no dead ends.
class HubPprIndex {
 public:
  struct Options {
    double alpha = 0.2;
    /// Number of hub targets to precompute; 0 selects ceil(n/64).
    NodeId num_hubs = 0;
    /// Backward residue threshold used both at preprocessing and at
    /// query time; 0 selects BiPPR's balanced default per query.
    double rmax = 1e-5;
  };

  /// Preprocesses the hub oracles. The graph must outlive the index.
  static HubPprIndex Build(const Graph& graph, const Options& options);

  /// Single-pair estimate of π(source, target).
  BiPprResult Query(NodeId source, NodeId target, double epsilon,
                    Rng& rng) const;

  bool IsHub(NodeId v) const { return hub_states_.contains(v); }
  NodeId num_hubs() const { return static_cast<NodeId>(hub_states_.size()); }
  uint64_t IndexBytes() const;
  double build_seconds() const { return build_seconds_; }

 private:
  HubPprIndex() = default;

  const Graph* graph_ = nullptr;
  Options options_;
  /// hub target -> backward-push (reserve, residue) state.
  std::unordered_map<NodeId, PprEstimate> hub_states_;
  double build_seconds_ = 0.0;
};

}  // namespace ppr

#endif  // PPR_APPROX_HUBPPR_H_
