#ifndef PPR_APPROX_RESIDUE_WALKS_H_
#define PPR_APPROX_RESIDUE_WALKS_H_

#include <vector>

#include "approx/walk_index.h"
#include "core/workspace.h"
#include "graph/graph.h"
#include "util/cancellation.h"
#include "util/rng.h"

namespace ppr {

/// The Monte-Carlo phase shared by FORA, SpeedPPR, ResAcc and the
/// dynamic approximate tier (Equation (14)): for every node v with
/// leftover residue r(s,v) ≠ 0, W_v = ceil(|r(s,v)|·W) α-walks from v
/// each add r(s,v)/W_v to the estimate of their stop node. The static
/// push phases only ever leave r ≥ 0, where this is the textbook rule;
/// the dynamic tier's deletion corrections can leave r < 0, and the
/// same unbiased estimate applies with signed contributions. When
/// `index` is non-empty, the first min(W_v, K_v) walks consume
/// pre-generated endpoints; any shortfall is topped up with fresh walks
/// (§6.1's ε-dependence caveat for FORA+; never needed by SpeedPPR's
/// d_v-sized index).
///
/// Parallelism and determinism: one draw from `rng` seeds the phase, and
/// every node's walks run on an independent stream derived from
/// (seed, v) — the WalkIndex::BuildParallel scheme. With threads > 1 the
/// nodes are split into contiguous, walk-count-balanced chunks; each
/// worker appends its contributions to a private accumulator, and the
/// accumulators are merged in chunk order, which replays the serial
/// node-ascending accumulation order exactly. Results are therefore
/// bit-identical for EVERY thread count (including 1). threads = 0
/// defers to ParallelThreadCount() (PPR_THREADS / hardware).
///
/// `out` must be sized n and already contain whatever the walks refine
/// (typically the reserve vector); contributions are accumulated into it.
/// Increments stats->random_walks and stats->walk_steps.
///
/// `cancel`, when non-null, is polled at chunk boundaries and every ~256
/// nodes inside a chunk; a triggered token abandons the remaining walks
/// (the partial accumulation is meaningless and the caller discards it).
/// nullptr never polls — bit-identical to the pre-cancellation phase.
void ResidueWalkPhase(const Graph& graph, const std::vector<double>& residue,
                      uint64_t walk_count_w, double alpha, Rng& rng,
                      WalkIndexView index, std::vector<double>* out,
                      SolveStats* stats, unsigned threads = 0,
                      const CancelToken* cancel = nullptr);

/// Support-only copy of the push reserves into the (all-zero) score
/// buffer that the walk phase then refines: writes only nonzero
/// entries, preserving the caller's sparse-reset accounting.
inline void SeedScoresFromReserve(const std::vector<double>& reserve,
                                  std::vector<double>* out) {
  const size_t n = reserve.size();
  for (size_t v = 0; v < n; ++v) {
    if (reserve[v] != 0.0) (*out)[v] = reserve[v];
  }
}

}  // namespace ppr

#endif  // PPR_APPROX_RESIDUE_WALKS_H_
