#include "approx/residue_walks.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "approx/random_walk.h"
#include "util/parallel.h"

namespace ppr {

namespace {

inline uint64_t WalksForResidue(double residue, double walk_count_w) {
  // |r|: the dynamic tier leaves signed residues; the walk count follows
  // the magnitude, the contribution keeps the sign.
  return static_cast<uint64_t>(std::ceil(std::fabs(residue) * walk_count_w));
}

/// Runs the walks of nodes [lo, hi), adding each contribution via
/// `emit(v, stop, contribution)` in (node-ascending, walk-ascending)
/// order.
template <typename Emit>
void WalkNodeRange(const Graph& graph, const std::vector<double>& residue,
                   uint64_t lo, uint64_t hi, uint64_t walk_count_w,
                   double alpha, uint64_t seed, WalkIndexView index,
                   const Emit& emit, uint64_t* walks, uint64_t* steps,
                   const CancelToken* cancel) {
  const double dw = static_cast<double>(walk_count_w);
  for (uint64_t v = lo; v < hi; ++v) {
    if (cancel != nullptr && ((v - lo) & 255) == 0 && cancel->ShouldStop()) {
      return;
    }
    const double r = residue[v];
    if (r == 0.0) continue;
    const uint64_t wv = WalksForResidue(r, dw);
    const double contribution = r / static_cast<double>(wv);
    uint64_t served = 0;
    if (!index.empty()) {
      auto endpoints = index.Endpoints(static_cast<NodeId>(v));
      served = std::min<uint64_t>(wv, endpoints.size());
      for (uint64_t i = 0; i < served; ++i) {
        emit(v, endpoints[i], contribution);
      }
    }
    if (served < wv) {
      // Node v's walks always come from child stream v of the phase
      // seed, no matter which worker runs them.
      Rng rng = SplitStream(seed, v);
      for (uint64_t i = served; i < wv; ++i) {
        WalkOutcome outcome =
            RandomWalk(graph, static_cast<NodeId>(v), alpha, rng);
        emit(v, outcome.stop, contribution);
        *steps += outcome.steps;
      }
    }
    *walks += wv;
  }
}

/// A worker's walk results: one stop node per walk in emission order,
/// run-length grouped by origin so the merge can rederive each run's
/// contribution from the residue instead of storing 8 bytes per walk.
struct WalkBuffer {
  std::vector<NodeId> stops;
  std::vector<std::pair<NodeId, uint64_t>> runs;  // (origin, #stops)
};

}  // namespace

void ResidueWalkPhase(const Graph& graph, const std::vector<double>& residue,
                      uint64_t walk_count_w, double alpha, Rng& rng,
                      WalkIndexView index, std::vector<double>* out,
                      SolveStats* stats, unsigned threads,
                      const CancelToken* cancel) {
  const NodeId n = graph.num_nodes();
  PPR_CHECK(residue.size() == n);
  PPR_CHECK(out->size() == n);
  const uint64_t seed = rng.NextUint64();
  if (threads == 0) threads = ParallelThreadCount();

  // Below this many walks the chunk bookkeeping costs more than it
  // saves; above the upper cap the 4-bytes-per-walk stop buffers would
  // outgrow memory (~1 GiB at the cap), so such extreme queries run
  // serially with O(1) extra space. Any cutoff is safe because serial
  // and parallel runs produce the same bits.
  constexpr uint64_t kMinParallelWalks = 1 << 12;
  constexpr uint64_t kMaxBufferedWalks = uint64_t{1} << 28;

  const double dw = static_cast<double>(walk_count_w);
  uint64_t total_walks = 0;
  if (threads > 1) {
    for (NodeId v = 0; v < n; ++v) {
      if (residue[v] != 0.0) total_walks += WalksForResidue(residue[v], dw);
    }
  }

  if (threads <= 1 || total_walks < kMinParallelWalks ||
      total_walks > kMaxBufferedWalks) {
    uint64_t walks = 0;
    uint64_t steps = 0;
    WalkNodeRange(
        graph, residue, 0, n, walk_count_w, alpha, seed, index,
        [&](uint64_t, NodeId stop, double c) { (*out)[stop] += c; }, &walks,
        &steps, cancel);
    stats->random_walks += walks;
    stats->walk_steps += steps;
    return;
  }

  // Contiguous chunks balanced by walk count, so one hub-heavy id range
  // cannot starve the other workers.
  const std::vector<uint64_t> bounds = BalancedChunkBounds(
      n, threads,
      [&](uint64_t v) {
        return residue[v] != 0.0 ? WalksForResidue(residue[v], dw) : 0;
      },
      total_walks);

  std::vector<WalkBuffer> buffers(threads);
  std::vector<uint64_t> chunk_walks(threads, 0);
  std::vector<uint64_t> chunk_steps(threads, 0);
  ParallelForThreads(0, threads, threads,
                     [&](uint64_t lo, uint64_t hi, unsigned) {
    for (uint64_t c = lo; c < hi; ++c) {
      // Chunk boundary: a triggered token skips the remaining chunks
      // (WalkNodeRange polls inside the chunk as well).
      if (cancel != nullptr && cancel->ShouldStop()) break;
      WalkBuffer& buffer = buffers[c];
      buffer.stops.reserve((total_walks + threads - 1) / threads);
      WalkNodeRange(
          graph, residue, bounds[c], bounds[c + 1], walk_count_w, alpha,
          seed, index,
          [&buffer](uint64_t v, NodeId stop, double) {
            if (buffer.runs.empty() || buffer.runs.back().first != v) {
              buffer.runs.emplace_back(static_cast<NodeId>(v), 0);
            }
            buffer.runs.back().second++;
            buffer.stops.push_back(stop);
          },
          &chunk_walks[c], &chunk_steps[c], cancel);
    }
  }, /*grain=*/1);

  // Chunks are ascending node ranges, so applying them in order replays
  // the serial accumulation order addition for addition.
  for (unsigned c = 0; c < threads; ++c) {
    const WalkBuffer& buffer = buffers[c];
    size_t cursor = 0;
    for (const auto& [origin, count] : buffer.runs) {
      const double r = residue[origin];
      const double contribution =
          r / static_cast<double>(WalksForResidue(r, dw));
      for (uint64_t i = 0; i < count; ++i) {
        (*out)[buffer.stops[cursor++]] += contribution;
      }
    }
    stats->random_walks += chunk_walks[c];
    stats->walk_steps += chunk_steps[c];
  }
}

}  // namespace ppr
