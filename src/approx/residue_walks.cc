#include "approx/residue_walks.h"

#include <algorithm>
#include <cmath>

#include "approx/random_walk.h"

namespace ppr {

void ResidueWalkPhase(const Graph& graph, const std::vector<double>& residue,
                      uint64_t walk_count_w, double alpha, Rng& rng,
                      const WalkIndex* index, std::vector<double>* out,
                      SolveStats* stats) {
  const NodeId n = graph.num_nodes();
  PPR_CHECK(residue.size() == n);
  PPR_CHECK(out->size() == n);
  const double dw = static_cast<double>(walk_count_w);
  for (NodeId v = 0; v < n; ++v) {
    const double r = residue[v];
    if (r <= 0.0) continue;
    const uint64_t wv = static_cast<uint64_t>(std::ceil(r * dw));
    const double contribution = r / static_cast<double>(wv);
    uint64_t served = 0;
    if (index != nullptr) {
      auto endpoints = index->Endpoints(v);
      served = std::min<uint64_t>(wv, endpoints.size());
      for (uint64_t i = 0; i < served; ++i) {
        (*out)[endpoints[i]] += contribution;
      }
    }
    for (uint64_t i = served; i < wv; ++i) {
      WalkOutcome outcome = RandomWalk(graph, v, alpha, rng);
      (*out)[outcome.stop] += contribution;
      stats->walk_steps += outcome.steps;
    }
    stats->random_walks += wv;
  }
}

}  // namespace ppr
