#include "approx/hubppr.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/backward_push.h"
#include "core/pagerank.h"
#include "util/timer.h"

namespace ppr {

namespace {

/// Forward phase shared with BiPPR: one α-walk accumulating α·residue at
/// every visited node (unbiased for Σ_v π(s,v)·residue(v); see
/// approx/bippr.cc).
double WalkContribution(const Graph& graph, NodeId source, double alpha,
                        const std::vector<double>& residue, Rng& rng) {
  double contribution = 0.0;
  NodeId current = source;
  for (;;) {
    contribution += alpha * residue[current];
    if (rng.NextBernoulli(alpha)) break;
    auto neighbors = graph.OutNeighbors(current);
    PPR_DCHECK(!neighbors.empty());
    current = neighbors[rng.NextBounded(neighbors.size())];
  }
  return contribution;
}

}  // namespace

HubPprIndex HubPprIndex::Build(const Graph& graph, const Options& options) {
  PPR_CHECK(graph.has_in_adjacency())
      << "HubPPR needs the transpose; call Graph::BuildInAdjacency first";
  PPR_CHECK(options.rmax > 0.0);
  Timer timer;
  HubPprIndex index;
  index.graph_ = &graph;
  index.options_ = options;

  const NodeId hubs = options.num_hubs > 0
                          ? options.num_hubs
                          : std::max<NodeId>(1, (graph.num_nodes() + 63) / 64);

  // Hub selection: global PageRank ranks nodes by how much total PPR
  // mass points at them — the natural proxy for backward-push cost and
  // query popularity.
  PageRankOptions pr;
  pr.alpha = options.alpha;
  std::vector<double> rank = PageRank(graph, pr);
  std::vector<NodeId> by_rank(graph.num_nodes());
  std::iota(by_rank.begin(), by_rank.end(), 0);
  const NodeId take = std::min<NodeId>(hubs, graph.num_nodes());
  std::partial_sort(by_rank.begin(), by_rank.begin() + take, by_rank.end(),
                    [&](NodeId a, NodeId b) { return rank[a] > rank[b]; });
  by_rank.resize(take);
  for (NodeId t : by_rank) {
    BackwardPushOptions backward;
    backward.alpha = options.alpha;
    backward.rmax = options.rmax;
    PprEstimate state;
    BackwardPush(graph, t, backward, &state);
    index.hub_states_.emplace(t, std::move(state));
  }
  index.build_seconds_ = timer.ElapsedSeconds();
  return index;
}

BiPprResult HubPprIndex::Query(NodeId source, NodeId target, double epsilon,
                               Rng& rng) const {
  PPR_CHECK(source < graph_->num_nodes() && target < graph_->num_nodes());
  Timer timer;

  const PprEstimate* state = nullptr;
  PprEstimate fresh;
  BiPprResult result;
  auto it = hub_states_.find(target);
  if (it != hub_states_.end()) {
    state = &it->second;  // backward phase paid at preprocessing time
  } else {
    BackwardPushOptions backward;
    backward.alpha = options_.alpha;
    backward.rmax = options_.rmax;
    SolveStats stats = BackwardPush(*graph_, target, backward, &fresh);
    result.backward_pushes = stats.push_operations;
    state = &fresh;
  }

  const NodeId n = graph_->num_nodes();
  const double delta = 1.0 / static_cast<double>(n);
  uint64_t walks = static_cast<uint64_t>(
      std::ceil(8.0 * options_.rmax * std::log(2.0 * n) /
                (epsilon * epsilon * delta)));
  walks = std::max<uint64_t>(walks, 16);

  double total = 0.0;
  for (uint64_t i = 0; i < walks; ++i) {
    total += WalkContribution(*graph_, source, options_.alpha,
                              state->residue, rng);
  }
  result.estimate =
      state->reserve[source] + total / static_cast<double>(walks);
  result.walks = walks;
  result.seconds = timer.ElapsedSeconds();
  return result;
}

uint64_t HubPprIndex::IndexBytes() const {
  uint64_t bytes = 0;
  for (const auto& [node, state] : hub_states_) {
    bytes += sizeof(node);
    bytes += (state.reserve.size() + state.residue.size()) * sizeof(double);
  }
  return bytes;
}

}  // namespace ppr
