#include "approx/resacc.h"

#include <cmath>

#include "approx/fora.h"
#include "approx/residue_walks.h"
#include "core/workspace.h"
#include "util/fifo_queue.h"
#include "util/timer.h"

namespace ppr {

SolveStats ResAcc(const Graph& graph, NodeId source,
                  const ApproxOptions& options, Rng& rng,
                  std::vector<double>* out) {
  PPR_CHECK(source < graph.num_nodes());
  const NodeId n = graph.num_nodes();
  const uint64_t w =
      ChernoffWalkCount(n, options.epsilon, options.ResolvedMu(n));
  const double rmax = ForaRmax(graph, w);
  const double alpha = options.alpha;

  Timer timer;
  SolveStats stats;

  // Push phase. The source is pushed once to seed the frontier; residue
  // that later returns to it is accumulated rather than re-pushed.
  PprEstimate estimate;
  estimate.Reset(n, source);
  std::vector<double>& reserve = estimate.reserve;
  std::vector<double>& residue = estimate.residue;

  FifoQueue queue(n);
  queue.PushIfAbsent(source);
  bool source_seeded = false;
  while (!queue.empty()) {
    const NodeId v = queue.Pop();
    if (v == source && source_seeded) continue;  // accumulate, don't re-push
    const double r = residue[v];
    if (r == 0.0) continue;
    if (v == source) source_seeded = true;
    reserve[v] += alpha * r;
    const double push = (1.0 - alpha) * r;
    const NodeId d = graph.OutDegree(v);
    residue[v] = 0.0;
    if (d == 0) {
      residue[source] += push;
      stats.edge_pushes += 1;
    } else {
      const double inc = push / d;
      for (NodeId u : graph.OutNeighbors(v)) {
        residue[u] += inc;
        if (u != source &&
            residue[u] >
                static_cast<double>(EffectiveDegree(graph, u)) * rmax) {
          queue.PushIfAbsent(u);
        }
      }
      stats.edge_pushes += d;
    }
    stats.push_operations++;
  }

  // Distribute the accumulated source residue: mass that returned to s
  // will eventually spread as a fresh PPR vector from s, i.e.
  // proportionally to the final distribution. Renormalizing reserve and
  // the other residues by 1/(1 - r_acc) realizes exactly that.
  const double accumulated = residue[source];
  if (accumulated > 0.0 && accumulated < 1.0) {
    const double scale = 1.0 / (1.0 - accumulated);
    residue[source] = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      reserve[v] *= scale;
      residue[v] *= scale;
    }
  }

  // Monte-Carlo phase, identical to FORA's.
  *out = reserve;
  const double rsum = estimate.ResidueSum();
  ResidueWalkPhase(graph, residue, w, alpha, rng, /*index=*/nullptr, out,
                   &stats, options.threads);

  stats.final_rsum = rsum;
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace ppr
