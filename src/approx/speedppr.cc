#include "approx/speedppr.h"

#include <cmath>

#include "approx/monte_carlo.h"
#include "approx/random_walk.h"
#include "core/forward_push.h"
#include "core/power_push.h"
#include "util/timer.h"

namespace ppr {

SolveStats SpeedPpr(const Graph& graph, NodeId source,
                    const ApproxOptions& options, Rng& rng,
                    std::vector<double>* out, const WalkIndex* index) {
  PPR_CHECK(source < graph.num_nodes());
  const NodeId n = graph.num_nodes();
  const uint64_t w =
      ChernoffWalkCount(n, options.epsilon, options.ResolvedMu(n));

  if (w <= graph.num_edges()) {
    // §6.1: with m >= W, plain MonteCarlo already costs O(W) <= O(m).
    return MonteCarlo(graph, source, options, rng, out);
  }

  Timer timer;
  SolveStats stats;

  // Phase 1a: PowerPush down to λ = m/W.
  PprEstimate estimate;
  PowerPushOptions push_options;
  push_options.alpha = options.alpha;
  push_options.lambda =
      static_cast<double>(graph.num_edges()) / static_cast<double>(w);
  SolveStats push_stats = PowerPush(graph, source, push_options, &estimate);
  stats.push_operations = push_stats.push_operations;
  stats.edge_pushes = push_stats.edge_pushes;

  // Phase 1b: O(m) refinement (Lemma 4.5) so that no node is active
  // w.r.t. r_max = 1/W, i.e. r(s,v) <= d_v/W for every v.
  const double rmax = 1.0 / static_cast<double>(w);
  SolveStats refine_stats =
      FifoForwardPushRefine(graph, source, options.alpha, rmax, &estimate);
  stats.push_operations += refine_stats.push_operations;
  stats.edge_pushes += refine_stats.edge_pushes;
  stats.final_rsum = refine_stats.final_rsum;

  // Phase 2: at most d_v walks per node.
  *out = estimate.reserve;
  const double dw = static_cast<double>(w);
  for (NodeId v = 0; v < n; ++v) {
    const double r = estimate.residue[v];
    if (r <= 0.0) continue;
    const uint64_t wv = static_cast<uint64_t>(std::ceil(r * dw));
    PPR_DCHECK(wv <= EffectiveDegree(graph, v))
        << "refinement must cap W_v at the degree";
    const double contribution = r / static_cast<double>(wv);
    uint64_t served = 0;
    if (index != nullptr) {
      auto endpoints = index->Endpoints(v);
      served = std::min<uint64_t>(wv, endpoints.size());
      for (uint64_t i = 0; i < served; ++i) {
        (*out)[endpoints[i]] += contribution;
      }
    }
    for (uint64_t i = served; i < wv; ++i) {
      WalkOutcome outcome = RandomWalk(graph, v, options.alpha, rng);
      (*out)[outcome.stop] += contribution;
      stats.walk_steps += outcome.steps;
    }
    stats.random_walks += wv;
  }

  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace ppr
