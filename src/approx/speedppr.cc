#include "approx/speedppr.h"

#include <cmath>

#include "approx/monte_carlo.h"
#include "approx/residue_walks.h"
#include "core/forward_push.h"
#include "core/power_push.h"
#include "util/timer.h"

namespace ppr {

SolveStats SpeedPprInto(const Graph& graph, NodeId source,
                        const ApproxOptions& options, Rng& rng,
                        PprEstimate* estimate, std::vector<double>* out,
                        WalkIndexView index, FifoQueue* queue,
                        ThreadDenseBuffers* thread_scratch) {
  PPR_CHECK(source < graph.num_nodes());
  PPR_CHECK(out->size() == graph.num_nodes());
  const NodeId n = graph.num_nodes();
  const uint64_t w =
      ChernoffWalkCount(n, options.epsilon, options.ResolvedMu(n));

  if (SpeedPprUsesMonteCarloFallback(graph, options)) {
    // §6.1: with m >= W, plain MonteCarlo already costs O(W) <= O(m).
    return MonteCarloInto(graph, source, options, rng, out, thread_scratch);
  }
  PPR_CHECK(estimate->reserve.size() == n);
  PPR_CHECK(estimate->residue.size() == n);

  Timer timer;
  SolveStats stats;

  // Phase 1a: PowerPush down to λ = m/W.
  PowerPushOptions push_options;
  push_options.alpha = options.alpha;
  push_options.lambda =
      static_cast<double>(graph.num_edges()) / static_cast<double>(w);
  push_options.assume_initialized = true;
  push_options.threads = options.threads;
  push_options.cancel = options.cancel;
  SolveStats push_stats = PowerPush(graph, source, push_options, estimate,
                                    /*trace=*/nullptr, queue, thread_scratch);
  stats.push_operations = push_stats.push_operations;
  stats.edge_pushes = push_stats.edge_pushes;

  const bool stopped_early =
      options.cancel != nullptr && options.cancel->ShouldStop();

  // Phase 1b: O(m) refinement (Lemma 4.5) so that no node is active
  // w.r.t. r_max = 1/W, i.e. r(s,v) <= d_v/W for every v.
  const double rmax = 1.0 / static_cast<double>(w);
  if (!stopped_early) {
    SolveStats refine_stats = FifoForwardPushRefine(
        graph, source, options.alpha, rmax, estimate, queue, options.cancel);
    stats.push_operations += refine_stats.push_operations;
    stats.edge_pushes += refine_stats.edge_pushes;
    stats.final_rsum = refine_stats.final_rsum;
  }
  if (options.cancel != nullptr && options.cancel->ShouldStop()) {
    stats.seconds = timer.ElapsedSeconds();
    return stats;  // partial (Lemma 4.5 does not hold); caller discards
  }

#ifndef NDEBUG
  // Lemma 4.5's cap: refinement must leave W_v = ceil(r(s,v)·W) <= d_v.
  for (NodeId v = 0; v < n; ++v) {
    const double r = estimate->residue[v];
    if (r <= 0.0) continue;
    PPR_DCHECK(static_cast<uint64_t>(
                   std::ceil(r * static_cast<double>(w))) <=
               EffectiveDegree(graph, v))
        << "refinement must cap W_v at the degree (v=" << v << ")";
  }
#endif

  // Phase 2: at most d_v walks per node.
  SeedScoresFromReserve(estimate->reserve, out);
  ResidueWalkPhase(graph, estimate->residue, w, options.alpha, rng, index, out,
                   &stats, options.threads, options.cancel);

  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

SolveStats SpeedPpr(const Graph& graph, NodeId source,
                    const ApproxOptions& options, Rng& rng,
                    std::vector<double>* out, WalkIndexView index) {
  PPR_CHECK(source < graph.num_nodes());
  const NodeId n = graph.num_nodes();
  out->assign(n, 0.0);
  PprEstimate estimate;
  if (!SpeedPprUsesMonteCarloFallback(graph, options)) {
    estimate.Reset(n, source);
  }
  return SpeedPprInto(graph, source, options, rng, &estimate, out, index);
}

}  // namespace ppr
