#ifndef PPR_APPROX_RANDOM_WALK_H_
#define PPR_APPROX_RANDOM_WALK_H_

#include "graph/graph.h"
#include "util/rng.h"

namespace ppr {

/// The α-random-walk engine shared by every Monte-Carlo-phase algorithm.
///
/// Semantics follow §2 of the paper: at each step the walk stops at the
/// current node with probability α, otherwise moves to a uniformly random
/// out-neighbor. A dead end conceptually has an edge back to the walk's
/// *origin* — for index-based algorithms the walks are pre-generated
/// before the query source is known, so the origin (not the query source)
/// is the only consistent redirect target; for walks started at the query
/// source the two coincide.
struct WalkOutcome {
  NodeId stop;       ///< the node the walk stopped at
  uint32_t steps;    ///< number of moves made (0 = stopped at the origin)
};

/// Performs one α-random walk from `origin` and returns where it stopped.
WalkOutcome RandomWalk(const Graph& graph, NodeId origin, double alpha,
                       Rng& rng);

/// Expected walk length is (1−α)/α; used by cost accounting and tests.
inline double ExpectedWalkSteps(double alpha) {
  return (1.0 - alpha) / alpha;
}

}  // namespace ppr

#endif  // PPR_APPROX_RANDOM_WALK_H_
