#include "approx/random_walk.h"

#include "util/logging.h"

namespace ppr {

WalkOutcome RandomWalk(const Graph& graph, NodeId origin, double alpha,
                       Rng& rng) {
  PPR_DCHECK(origin < graph.num_nodes());
  PPR_DCHECK(alpha > 0.0 && alpha < 1.0);
  NodeId current = origin;
  uint32_t steps = 0;
  // Draw the geometric stop time first, then advance that many moves —
  // one RNG call for the length instead of one Bernoulli per step.
  uint64_t moves = rng.NextGeometric(alpha);
  for (uint64_t i = 0; i < moves; ++i) {
    auto neighbors = graph.OutNeighbors(current);
    if (neighbors.empty()) {
      current = origin;  // dead end: conceptual edge back to the origin
    } else {
      current = neighbors[rng.NextBounded(neighbors.size())];
    }
    ++steps;
  }
  return {current, steps};
}

}  // namespace ppr
