#include "approx/monte_carlo.h"

#include <algorithm>
#include <cmath>

#include "approx/random_walk.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace ppr {

namespace {

/// Walks per RNG block. Block boundaries depend only on the walk count,
/// never on the thread count, which is what makes the results
/// thread-count invariant.
constexpr uint64_t kWalkBlock = 1 << 12;

}  // namespace

uint64_t ChernoffWalkCount(NodeId n, double epsilon, double mu) {
  PPR_CHECK(n >= 2);
  PPR_CHECK(epsilon > 0.0);
  PPR_CHECK(mu > 0.0);
  double w = 2.0 * (2.0 * epsilon / 3.0 + 2.0) * std::log(n) /
             (epsilon * epsilon * mu);
  return static_cast<uint64_t>(std::ceil(w));
}

SolveStats MonteCarlo(const Graph& graph, NodeId source,
                      const ApproxOptions& options, Rng& rng,
                      std::vector<double>* out) {
  out->assign(graph.num_nodes(), 0.0);
  return MonteCarloInto(graph, source, options, rng, out);
}

SolveStats MonteCarloInto(const Graph& graph, NodeId source,
                          const ApproxOptions& options, Rng& rng,
                          std::vector<double>* out,
                          ThreadDenseBuffers* thread_scratch) {
  PPR_CHECK(source < graph.num_nodes());
  const NodeId n = graph.num_nodes();
  PPR_CHECK(out->size() == n);
  const uint64_t walks =
      ChernoffWalkCount(n, options.epsilon, options.ResolvedMu(n));

  Timer timer;
  SolveStats stats;
  const double weight = 1.0 / static_cast<double>(walks);
  const uint64_t seed = rng.NextUint64();
  const uint64_t blocks = (walks + kWalkBlock - 1) / kWalkBlock;
  const unsigned threads =
      options.threads == 0 ? ParallelThreadCount() : options.threads;

  const bool dense_counts = MonteCarloUsesDenseCounts(n, options);
  const CancelToken* cancel = options.cancel;
  if (threads <= 1 || blocks < 2) {
    uint64_t steps = 0;
    for (uint64_t b = 0; b < blocks; ++b) {
      if (cancel != nullptr && cancel->ShouldStop()) break;
      Rng block_rng = SplitStream(seed, b);
      const uint64_t hi = std::min(walks, (b + 1) * kWalkBlock);
      for (uint64_t i = b * kWalkBlock; i < hi; ++i) {
        WalkOutcome outcome = RandomWalk(graph, source, options.alpha,
                                         block_rng);
        (*out)[outcome.stop] += weight;
        steps += outcome.steps;
      }
    }
    stats.walk_steps = steps;
  } else if (dense_counts) {
    // Dense per-worker stop counts: O(n·threads) reusable memory beats
    // the O(walks) stop list whenever walks >= n — crucially including
    // the billions-of-walks regimes where buffering every stop would
    // not fit. Counts live in the lendable double buffers (exact up to
    // 2^53, far beyond any Chernoff W); every contribution is the
    // identical `weight`, so an entry's value depends only on how many
    // times it is incremented — folding the workers' counts with
    // repeated adds is bit-identical to the serial walk loop, and the
    // merge re-zeroes the buffers per the scratch contract.
    ThreadDenseBuffers local;
    ThreadDenseBuffers& counts =
        thread_scratch != nullptr ? *thread_scratch : local;
    EnsureThreadBuffers(&counts, threads, n);
    std::vector<uint64_t> chunk_steps(threads, 0);
    ParallelForThreads(0, blocks, threads,
                       [&](uint64_t lo, uint64_t hi, unsigned w) {
      auto& local_counts = counts[w];
      for (uint64_t b = lo; b < hi; ++b) {
        if (cancel != nullptr && cancel->ShouldStop()) break;
        Rng block_rng = SplitStream(seed, b);
        const uint64_t end = std::min(walks, (b + 1) * kWalkBlock);
        for (uint64_t i = b * kWalkBlock; i < end; ++i) {
          WalkOutcome outcome = RandomWalk(graph, source, options.alpha,
                                           block_rng);
          local_counts[outcome.stop] += 1.0;
          chunk_steps[w] += outcome.steps;
        }
      }
    }, /*grain=*/1);
    // Each entry's value depends only on its own add count, so the
    // merge parallelizes over nodes without changing a bit — otherwise
    // the O(walks) fold would serialize exactly the regime this branch
    // exists for.
    ParallelForThreads(0, n, threads, [&](uint64_t lo, uint64_t hi,
                                          unsigned) {
      for (uint64_t v = lo; v < hi; ++v) {
        for (unsigned w = 0; w < threads; ++w) {
          const uint64_t count = static_cast<uint64_t>(counts[w][v]);
          for (uint64_t i = 0; i < count; ++i) (*out)[v] += weight;
          counts[w][v] = 0.0;
        }
      }
    });
    for (unsigned w = 0; w < threads; ++w) stats.walk_steps += chunk_steps[w];
  } else {
    // Workers own contiguous block ranges; merging their stop lists in
    // worker order replays the serial walk order exactly.
    std::vector<std::vector<NodeId>> stops(threads);
    std::vector<uint64_t> chunk_steps(threads, 0);
    ParallelForThreads(0, blocks, threads,
                       [&](uint64_t lo, uint64_t hi, unsigned w) {
      auto& buffer = stops[w];
      buffer.reserve((hi - lo) * kWalkBlock);
      for (uint64_t b = lo; b < hi; ++b) {
        if (cancel != nullptr && cancel->ShouldStop()) break;
        Rng block_rng = SplitStream(seed, b);
        const uint64_t end = std::min(walks, (b + 1) * kWalkBlock);
        for (uint64_t i = b * kWalkBlock; i < end; ++i) {
          WalkOutcome outcome = RandomWalk(graph, source, options.alpha,
                                           block_rng);
          buffer.push_back(outcome.stop);
          chunk_steps[w] += outcome.steps;
        }
      }
    }, /*grain=*/1);
    for (unsigned w = 0; w < threads; ++w) {
      for (NodeId stop : stops[w]) (*out)[stop] += weight;
      stats.walk_steps += chunk_steps[w];
    }
  }

  stats.random_walks = walks;
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace ppr
