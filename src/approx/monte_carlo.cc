#include "approx/monte_carlo.h"

#include <cmath>

#include "approx/random_walk.h"
#include "util/timer.h"

namespace ppr {

uint64_t ChernoffWalkCount(NodeId n, double epsilon, double mu) {
  PPR_CHECK(n >= 2);
  PPR_CHECK(epsilon > 0.0);
  PPR_CHECK(mu > 0.0);
  double w = 2.0 * (2.0 * epsilon / 3.0 + 2.0) * std::log(n) /
             (epsilon * epsilon * mu);
  return static_cast<uint64_t>(std::ceil(w));
}

SolveStats MonteCarlo(const Graph& graph, NodeId source,
                      const ApproxOptions& options, Rng& rng,
                      std::vector<double>* out) {
  out->assign(graph.num_nodes(), 0.0);
  return MonteCarloInto(graph, source, options, rng, out);
}

SolveStats MonteCarloInto(const Graph& graph, NodeId source,
                          const ApproxOptions& options, Rng& rng,
                          std::vector<double>* out) {
  PPR_CHECK(source < graph.num_nodes());
  const NodeId n = graph.num_nodes();
  PPR_CHECK(out->size() == n);
  const uint64_t walks =
      ChernoffWalkCount(n, options.epsilon, options.ResolvedMu(n));

  Timer timer;
  SolveStats stats;
  const double weight = 1.0 / static_cast<double>(walks);
  for (uint64_t i = 0; i < walks; ++i) {
    WalkOutcome outcome = RandomWalk(graph, source, options.alpha, rng);
    (*out)[outcome.stop] += weight;
    stats.walk_steps += outcome.steps;
  }
  stats.random_walks = walks;
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace ppr
