#include "approx/bippr.h"

#include <cmath>

#include "core/backward_push.h"
#include "util/timer.h"

namespace ppr {

namespace {

/// One α-walk from `source`, accumulating α·residue(v) at every visited
/// node v. Unbiasedness: E[#visits to v] = π(s,v)/α, so the per-walk
/// contribution has expectation Σ_v π(s,v)·residue(v) — exactly the
/// residual term of the BiPPR identity. Accumulating along the whole
/// walk (rather than only at the stop node) reuses each walk for every
/// prefix length, which lowers variance at no extra cost.
double WalkContribution(const Graph& graph, NodeId source, double alpha,
                        const std::vector<double>& residue, Rng& rng,
                        uint64_t* steps) {
  double contribution = 0.0;
  NodeId current = source;
  for (;;) {
    contribution += alpha * residue[current];
    if (rng.NextBernoulli(alpha)) break;
    auto neighbors = graph.OutNeighbors(current);
    PPR_DCHECK(!neighbors.empty());
    current = neighbors[rng.NextBounded(neighbors.size())];
    (*steps)++;
  }
  return contribution;
}

}  // namespace

BiPprResult BiPpr(const Graph& graph, NodeId source, NodeId target,
                  const BiPprOptions& options, Rng& rng) {
  PPR_CHECK(source < graph.num_nodes() && target < graph.num_nodes());
  const NodeId n = graph.num_nodes();
  const double delta =
      options.delta > 0.0 ? options.delta : 1.0 / static_cast<double>(n);
  Timer timer;

  // Backward phase.
  BackwardPushOptions backward;
  backward.alpha = options.alpha;
  if (options.rmax > 0.0) {
    backward.rmax = options.rmax;
  } else {
    const double m = static_cast<double>(graph.num_edges());
    backward.rmax =
        options.epsilon *
        std::sqrt(delta * m / static_cast<double>(n) / std::log(n));
  }
  PprEstimate est;
  SolveStats backward_stats = BackwardPush(graph, target, backward, &est);

  // Forward phase: walks refine the residual expectation. Chernoff-style
  // count for relative error epsilon at magnitude delta, scaled by the
  // max residue (the per-sample range).
  const double rmax = backward.rmax;
  uint64_t walks = static_cast<uint64_t>(
      std::ceil(8.0 * rmax * std::log(2.0 * n) /
                (options.epsilon * options.epsilon * delta)));
  walks = std::max<uint64_t>(walks, 16);

  // The identity needs E over the *alive-visit* distribution; each
  // walk's contribution sums alpha * residue(v) over visited nodes v.
  double total = 0.0;
  uint64_t steps = 0;
  for (uint64_t i = 0; i < walks; ++i) {
    total +=
        WalkContribution(graph, source, options.alpha, est.residue, rng,
                         &steps);
  }

  BiPprResult result;
  result.estimate = est.reserve[source] + total / static_cast<double>(walks);
  result.walks = walks;
  result.backward_pushes = backward_stats.push_operations;
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace ppr
