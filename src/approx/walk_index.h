#ifndef PPR_APPROX_WALK_INDEX_H_
#define PPR_APPROX_WALK_INDEX_H_

#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace ppr {

/// Pre-generated α-random-walk endpoints, the index structure behind
/// FORA+ and SpeedPPR-Index. For each node v the index stores the stop
/// nodes of K_v independent walks from v; a query consumes the first
/// W_v = ceil(r(s,v)·W) of them instead of simulating walks.
///
/// The two sizing rules are the crux of the paper's Table 2 comparison:
///
///  * kForaPlus:  K_v = ceil(d_v·sqrt(W/m)) + 1, which depends on W and
///    therefore on ε — an index built for ε₁ cannot serve ε₂ < ε₁
///    without topping up with fresh walks.
///  * kSpeedPpr:  K_v = d_v (1 for dead ends), at most m walks in total —
///    never larger than the graph and valid for *every* ε, because
///    SpeedPPR's refinement guarantees W_v ≤ d_v.
class WalkIndex {
 public:
  enum class Sizing { kForaPlus, kSpeedPpr };

  /// Generates the index. `walk_count_w` (the W of Equation (12)) is only
  /// used by the kForaPlus sizing. Deterministic given the Rng.
  static WalkIndex Build(const Graph& graph, double alpha, Sizing sizing,
                         uint64_t walk_count_w, Rng& rng);

  /// Multi-threaded build (ParallelFor over nodes). Each node's walks are
  /// seeded from (seed, node id), so the result is identical regardless
  /// of thread count — including to a single-threaded BuildParallel run —
  /// but differs from Build(), which consumes one sequential stream.
  static WalkIndex BuildParallel(const Graph& graph, double alpha,
                                 Sizing sizing, uint64_t walk_count_w,
                                 uint64_t seed);

  /// Endpoints of the pre-generated walks from v (size K_v).
  std::span<const NodeId> Endpoints(NodeId v) const {
    PPR_DCHECK(v + 1 < offsets_.size());
    return {endpoints_.data() + offsets_[v],
            endpoints_.data() + offsets_[v + 1]};
  }

  NodeId num_nodes() const {
    return static_cast<NodeId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }
  uint64_t total_walks() const { return endpoints_.size(); }
  /// In-memory/bottom-line index size: what Table 2 reports.
  uint64_t SizeBytes() const {
    return offsets_.size() * sizeof(uint64_t) +
           endpoints_.size() * sizeof(NodeId);
  }
  double build_seconds() const { return build_seconds_; }
  double alpha() const { return alpha_; }

  /// Serialization, so index size can also be verified on disk.
  Status SaveTo(const std::string& path) const;
  static Result<WalkIndex> LoadFrom(const std::string& path);

  /// Canonical cache filename used by the registry's cache_dir= option:
  /// encodes every build input (sizing, alpha, W, seed) plus the
  /// Graph::Fingerprint() of the exact CSR the index was generated on,
  /// so a stale or foreign cache never matches by name.
  static std::string CacheFileName(Sizing sizing, double alpha,
                                   uint64_t walk_count_w, uint64_t seed,
                                   uint64_t graph_fingerprint);

 private:
  WalkIndex() = default;

  std::vector<uint64_t> offsets_;
  std::vector<NodeId> endpoints_;
  double alpha_ = 0.2;
  double build_seconds_ = 0.0;
};

}  // namespace ppr

#endif  // PPR_APPROX_WALK_INDEX_H_
