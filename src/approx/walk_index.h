#ifndef PPR_APPROX_WALK_INDEX_H_
#define PPR_APPROX_WALK_INDEX_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace ppr {

/// Pre-generated α-random-walk endpoints, the index structure behind
/// FORA+ and SpeedPPR-Index. For each node v the index stores the stop
/// nodes of K_v independent walks from v; a query consumes the first
/// W_v = ceil(r(s,v)·W) of them instead of simulating walks.
///
/// The two sizing rules are the crux of the paper's Table 2 comparison:
///
///  * kForaPlus:  K_v = ceil(d_v·sqrt(W/m)) + 1, which depends on W and
///    therefore on ε — an index built for ε₁ cannot serve ε₂ < ε₁
///    without topping up with fresh walks.
///  * kSpeedPpr:  K_v = d_v (1 for dead ends), at most m walks in total —
///    never larger than the graph and valid for *every* ε, because
///    SpeedPPR's refinement guarantees W_v ≤ d_v.
class WalkIndex {
 public:
  enum class Sizing { kForaPlus, kSpeedPpr };

  /// Generates the index. `walk_count_w` (the W of Equation (12)) is only
  /// used by the kForaPlus sizing. Deterministic given the Rng.
  static WalkIndex Build(const Graph& graph, double alpha, Sizing sizing,
                         uint64_t walk_count_w, Rng& rng);

  /// Multi-threaded build (ParallelFor over nodes). Each node's walks are
  /// seeded from (seed, node id), so the result is identical regardless
  /// of thread count — including to a single-threaded BuildParallel run —
  /// but differs from Build(), which consumes one sequential stream.
  static WalkIndex BuildParallel(const Graph& graph, double alpha,
                                 Sizing sizing, uint64_t walk_count_w,
                                 uint64_t seed);

  /// Endpoints of the pre-generated walks from v (size K_v).
  std::span<const NodeId> Endpoints(NodeId v) const {
    PPR_DCHECK(v + 1 < offsets_.size());
    return {endpoints_.data() + offsets_[v],
            endpoints_.data() + offsets_[v + 1]};
  }

  NodeId num_nodes() const {
    return static_cast<NodeId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }
  uint64_t total_walks() const { return endpoints_.size(); }
  /// In-memory/bottom-line index size: what Table 2 reports.
  uint64_t SizeBytes() const {
    return offsets_.size() * sizeof(uint64_t) +
           endpoints_.size() * sizeof(NodeId);
  }
  double build_seconds() const { return build_seconds_; }
  double alpha() const { return alpha_; }

  /// Graph::Fingerprint() of the exact CSR the walks were generated on,
  /// recorded at Build time and serialized with the index. Cache loads
  /// verify it against the live graph, so a cache file saved before an
  /// update can never silently serve the post-update graph — even when
  /// the file sits at a colliding or tampered-with path.
  uint64_t graph_fingerprint() const { return graph_fingerprint_; }

  /// Serialization, so index size can also be verified on disk.
  Status SaveTo(const std::string& path) const;
  static Result<WalkIndex> LoadFrom(const std::string& path);

  /// Canonical cache filename used by the registry's cache_dir= option:
  /// encodes every build input (sizing, alpha, W, seed) plus the
  /// Graph::Fingerprint() of the exact CSR the index was generated on,
  /// so a stale or foreign cache never matches by name. The fingerprint
  /// is additionally embedded in the file itself (graph_fingerprint()),
  /// which is what the load-time staleness check trusts.
  static std::string CacheFileName(Sizing sizing, double alpha,
                                   uint64_t walk_count_w, uint64_t seed,
                                   uint64_t graph_fingerprint);

 private:
  WalkIndex() = default;

  std::vector<uint64_t> offsets_;
  std::vector<NodeId> endpoints_;
  double alpha_ = 0.2;
  double build_seconds_ = 0.0;
  uint64_t graph_fingerprint_ = 0;
};

/// A walk index that stays valid while the graph evolves — the index
/// structure behind the dynamic approximate tier ("dynfora" /
/// "dynspeedppr"). Where WalkIndex must be rebuilt from scratch after
/// any edge mutation, a DynamicWalkIndex repairs itself: it remembers,
/// for every stored walk, the nodes whose out-adjacency the walk
/// consumed (a per-node walk→slot inverted index), and after a mutation
/// of u's adjacency it
///
///  1. resamples every walk that departed u — from the *mutation point*:
///     the prefix up to the walk's first departure from u only consumed
///     unchanged adjacency rows (and memoryless α-flips), so it is kept,
///     and the suffix is regenerated from u against the new adjacency;
///  2. resizes u's own walk count K_u to the sizing rule's target at
///     the new degree (appending fresh walks or dropping the last ones).
///
/// Both steps draw from a per-node RNG stream (node u's stream serves
/// the mutations of u), so the refresh is deterministic given the
/// update sequence and independent of other nodes' histories. Because
/// every kept prefix is distributed as on the new graph and every
/// regenerated suffix is sampled from it, the index after any update
/// sequence is distribution-identical to a fresh build on the final
/// graph — the property the dynamic conformance suite exercises.
///
/// For Sizing::kForaPlus the per-degree walk ratio sqrt(W/m) is
/// re-derived when the live edge count m drifts past a configurable
/// factor of the m it was last derived at (default 2x, `drift_factor`):
/// every node's K_v is then resized through its own refresh stream —
/// fresh appends, tail drops — so the resized index is
/// distribution-identical to a fresh build at the new m. Between drift
/// events the ratio holds steady (re-deriving on every update would
/// resize every node every time for no accuracy gain; shortfalls are
/// topped up with fresh walks at query time, as always).
///
/// Cost per mutation: O(walks through u · expected walk length) plus
/// the K_u resize — proportional to the mutation's actual blast
/// radius, not to the index size. A drift resize is the exception:
/// O(total walks), amortized over the ~m/2 mutations it took to
/// trigger.
class DynamicWalkIndex {
 public:
  /// Re-derive the kForaPlus ratio when m drifts 2x by default; 0
  /// disables drift tracking (the pre-drift frozen-ratio behavior).
  static constexpr double kDefaultDriftFactor = 2.0;

  DynamicWalkIndex(const Graph& graph, double alpha, WalkIndex::Sizing sizing,
                   uint64_t walk_count_w, uint64_t seed,
                   double drift_factor = kDefaultDriftFactor);

  /// Endpoints of the currently valid walks from v (size K_v at the
  /// current degree). Invalidated by RefreshMutatedNode.
  std::span<const NodeId> Endpoints(NodeId v) const {
    PPR_DCHECK(v < nodes_.size());
    return nodes_[v].endpoints;
  }

  NodeId num_nodes() const { return static_cast<NodeId>(nodes_.size()); }
  uint64_t total_walks() const { return total_walks_; }
  double alpha() const { return alpha_; }
  WalkIndex::Sizing sizing() const { return sizing_; }
  double build_seconds() const { return build_seconds_; }

  /// In-memory bytes of the stored walks (endpoints, path arenas, slot
  /// tables) plus the inverted index — the dynamic tier's entry in the
  /// Table-2-style memory story. Content bytes, matching the convention
  /// of WalkIndex::SizeBytes (vector headers and slack capacity are
  /// excluded); retired arena words still count until compaction
  /// reclaims them, which is exactly what the memory-accounting
  /// regression test pins down.
  uint64_t SizeBytes() const;

  /// Number of drift-triggered whole-index K_v re-derivations so far
  /// (kForaPlus only; always 0 for kSpeedPpr or drift_factor 0).
  uint64_t resize_events() const { return resize_events_; }

  /// Repairs the index after one mutation of u's out-adjacency; `graph`
  /// must already reflect the mutation (call once per applied update,
  /// in order). Returns the number of walks resampled (invalidated
  /// suffixes, fresh walks appended by the K_u resize, and — when this
  /// mutation tipped m past the drift factor — the whole-index resize).
  uint64_t RefreshMutatedNode(const DynamicGraph& graph, NodeId u);

  /// Grows the index by one node, mirroring DynamicGraph::AddNode (call
  /// once per applied kAddNode, in order). The new node's initial walks
  /// come from its build stream — bit-identical to what a fresh build
  /// at the new n would generate for it — and its refresh stream is
  /// armed for future mutations.
  void AddNode();

 private:
  /// One node's stored walks, arena-flattened: endpoints in their own
  /// contiguous array (Endpoints() hands out the span the walk phase
  /// consumes), and every walk's departure path — origin first; empty
  /// when the walk stopped without moving — concatenated into `arena`,
  /// walk i owning arena[begin[i], begin[i]+length[i]). This is the CSR
  /// trick WalkIndex::offsets_/endpoints_ uses, adapted for in-place
  /// refresh: a resampled path is appended at the arena tail and the
  /// old span retired where it lies; once retired words outnumber live
  /// ones the arena is compacted in one pass (amortized O(1) per
  /// refresh). Compared to one heap vector per walk this drops the
  /// per-walk header/allocation entirely — 8 bytes of slot table per
  /// walk instead of a 24-byte header plus allocator slack.
  struct NodeWalks {
    std::vector<NodeId> endpoints;
    std::vector<NodeId> arena;
    std::vector<uint32_t> begin;
    std::vector<uint32_t> length;
    uint64_t live_words = 0;  // Σ length; arena.size() − retired words

    std::span<const NodeId> Path(uint32_t walk) const {
      return {arena.data() + begin[walk], length[walk]};
    }
    uint32_t walk_count() const {
      return static_cast<uint32_t>(begin.size());
    }
  };

  /// Inverted-index entry: walk `walk` of origin `origin` departed the
  /// indexed node. Entries go stale when a walk is resampled or dropped;
  /// RefreshMutatedNode validates lazily (the walk must still exist and
  /// its current path must still contain the node) and deduplicates.
  struct Slot {
    NodeId origin;
    uint32_t walk;
  };

  uint64_t TargetWalks(NodeId degree) const;
  /// Registers walk (origin, walk) in through_ for every node of its
  /// path from position `from` on that does not appear earlier in the
  /// path (earlier occurrences already carry an entry).
  void RegisterPath(NodeId origin, uint32_t walk, size_t from);
  /// Drops duplicate and stale entries from through_[x] and re-arms its
  /// growth limit. Called amortized from RegisterPath so the lazily
  /// invalidated lists of rarely-mutated nodes stay within a constant
  /// factor of their live size instead of growing with update volume.
  void CompactThrough(NodeId x);
  /// Replaces walk `walk`'s path with scratch_'s contents: retires the
  /// old arena span, appends at the tail, compacts when retired words
  /// outnumber live ones.
  void CommitPath(NodeWalks& walks, uint32_t walk);
  /// Rewrites the arena with only live spans, in walk order.
  void CompactArena(NodeWalks& walks);
  /// Grows or shrinks node v's walk count to the sizing target at its
  /// current degree, drawing appends from streams_[v]. Returns walks
  /// appended (counted as resampled).
  uint64_t ResizeNode(const DynamicGraph& graph, NodeId v, uint64_t target);
  /// Re-derives fora_ratio_ at the current m and resizes every node —
  /// the drift event. Returns walks appended across the index.
  uint64_t ResizeForDrift(const DynamicGraph& graph);

  double alpha_;
  WalkIndex::Sizing sizing_;
  uint64_t walk_count_w_ = 0;
  uint64_t seed_ = 0;
  double fora_ratio_ = 0.0;  // sqrt(W/m) as of the last derivation
  double drift_factor_ = kDefaultDriftFactor;
  double ratio_edges_ = 0.0;  // the m fora_ratio_ was last derived at
  uint64_t resize_events_ = 0;
  std::vector<NodeWalks> nodes_;
  std::vector<std::vector<Slot>> through_;
  /// Per-node compaction thresholds: through_[x] is compacted when it
  /// outgrows this, then re-armed at twice the compacted size.
  std::vector<uint32_t> through_limits_;
  std::vector<Rng> streams_;  // per-node refresh streams
  std::vector<NodeId> scratch_;  // reusable path buffer for refreshes
  uint64_t total_walks_ = 0;
  double build_seconds_ = 0.0;
};

/// Non-owning view over either index flavor, so the shared walk phase
/// (and the FORA/SpeedPPR compositions) consume pre-generated endpoints
/// without caring whether they come from a static WalkIndex or an
/// incrementally maintained DynamicWalkIndex. Implicitly constructible
/// from either pointer; a null/default view means "no index, simulate
/// every walk" — exactly the old `const WalkIndex* = nullptr` contract.
class WalkIndexView {
 public:
  WalkIndexView() = default;
  WalkIndexView(std::nullptr_t) {}                         // NOLINT
  WalkIndexView(const WalkIndex* index) : flat_(index) {}  // NOLINT
  WalkIndexView(const DynamicWalkIndex* index)             // NOLINT
      : dynamic_(index) {}

  bool empty() const { return flat_ == nullptr && dynamic_ == nullptr; }

  std::span<const NodeId> Endpoints(NodeId v) const {
    return flat_ != nullptr ? flat_->Endpoints(v) : dynamic_->Endpoints(v);
  }

 private:
  const WalkIndex* flat_ = nullptr;
  const DynamicWalkIndex* dynamic_ = nullptr;
};

}  // namespace ppr

#endif  // PPR_APPROX_WALK_INDEX_H_
