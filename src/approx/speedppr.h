#ifndef PPR_APPROX_SPEEDPPR_H_
#define PPR_APPROX_SPEEDPPR_H_

#include <vector>

#include "approx/monte_carlo.h"
#include "approx/walk_index.h"
#include "core/workspace.h"
#include "graph/graph.h"
#include "util/fifo_queue.h"
#include "util/rng.h"

namespace ppr {

/// SpeedPPR (Algorithm 4) — the paper's approximate-SSPPR contribution.
///
/// Structure-wise it is FORA with the first phase replaced by PowerPush at
/// λ = m/W plus an O(m) FIFO refinement that guarantees no node is active
/// w.r.t. r_max = 1/W. The consequences (§6.2):
///
///  * every leftover residue satisfies r(s,v) ≤ d_v/W, so the Monte-Carlo
///    phase needs W_v = ceil(r(s,v)·W) ≤ d_v walks — at most m in total —
///    giving O(m·log(W/m)) = O(n log n log(1/ε)) expected time on
///    scale-free graphs, beating FORA's O(n log n / ε);
///  * an index of exactly d_v pre-generated walks per node (≤ graph size)
///    serves *every* ε — built once, reused forever (Table 2's 10×
///    index-size/preprocessing win).
///
/// If W ≤ m the code falls back to plain MonteCarlo, as the paper notes
/// that regime is better served by MC directly.
///
/// Pass a WalkIndex built with Sizing::kSpeedPpr for the indexed variant
/// (SpeedPPR-Index); nullptr simulates walks on the fly.
SolveStats SpeedPpr(const Graph& graph, NodeId source,
                    const ApproxOptions& options, Rng& rng,
                    std::vector<double>* out,
                    WalkIndexView index = nullptr);

/// True when SpeedPpr runs as plain MonteCarlo (W ≤ m, §6.1). The
/// adapter gates its scratch lending on this predicate so it cannot
/// drift from the branch inside SpeedPprInto.
inline bool SpeedPprUsesMonteCarloFallback(const Graph& graph,
                                           const ApproxOptions& options) {
  const NodeId n = graph.num_nodes();
  return ChernoffWalkCount(n, options.epsilon, options.ResolvedMu(n)) <=
         graph.num_edges();
}

/// Workspace variant — the single composition both SpeedPpr() and the
/// api/ "speedppr" adapter run. `estimate` must hold the canonical
/// start state (residue = e_source) and `out` must be all-zero, both
/// sized n; no O(n) initialization is performed, so a SolverContext can
/// supply sparsely-reset buffers. `queue` optionally provides the push
/// loops' scratch FIFO. In the W ≤ m regime the walk phase runs as
/// plain MonteCarlo and `estimate` is left untouched.
/// `thread_scratch` optionally lends the PowerPush stage's per-thread
/// buffers when options.threads > 1 (see ThreadDenseBuffers).
SolveStats SpeedPprInto(const Graph& graph, NodeId source,
                        const ApproxOptions& options, Rng& rng,
                        PprEstimate* estimate, std::vector<double>* out,
                        WalkIndexView index = nullptr,
                        FifoQueue* queue = nullptr,
                        ThreadDenseBuffers* thread_scratch = nullptr);

}  // namespace ppr

#endif  // PPR_APPROX_SPEEDPPR_H_
