#include "approx/walk_index.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "approx/random_walk.h"
#include "util/fault_injection.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace ppr {

namespace {

constexpr uint64_t kIndexMagic = 0x5050523257494458ULL;  // "PPR2WIDX"

/// Salt separating a node's refresh stream from its build stream: both
/// derive from (seed, v), and the refresh draws must not replay the
/// build draws.
constexpr uint64_t kRefreshSalt = 0x9e6b7d1f2c3a55ULL;

/// Floor for the inverted-index compaction thresholds, so tiny lists
/// never thrash through repeated compactions.
constexpr size_t kMinCompactLimit = 8;

/// Offsets for the chosen sizing rule; shared by both build paths.
std::vector<uint64_t> SizingOffsets(const Graph& graph,
                                    WalkIndex::Sizing sizing,
                                    uint64_t walk_count_w) {
  const NodeId n = graph.num_nodes();
  const double fora_ratio =
      sizing == WalkIndex::Sizing::kForaPlus
          ? std::sqrt(static_cast<double>(walk_count_w) /
                      static_cast<double>(graph.num_edges()))
          : 0.0;
  std::vector<uint64_t> offsets(static_cast<size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId d = graph.OutDegree(v);
    uint64_t k;
    if (sizing == WalkIndex::Sizing::kForaPlus) {
      k = static_cast<uint64_t>(std::ceil(d * fora_ratio)) + 1;
    } else {
      k = d == 0 ? 1 : d;  // SpeedPPR: at most m walks in total
    }
    offsets[v + 1] = offsets[v] + k;
  }
  return offsets;
}

/// One α-walk from `origin` recording the departure sequence into
/// *path (cleared first). RNG consumption matches RandomWalk() draw for
/// draw — one geometric for the length, one bounded draw per non-dead-
/// end move — so a freshly built DynamicWalkIndex reproduces
/// WalkIndex::BuildParallel's endpoints bit for bit.
template <typename GraphT>
NodeId RecordWalk(const GraphT& graph, NodeId origin, double alpha, Rng& rng,
                  std::vector<NodeId>* path) {
  path->clear();
  NodeId current = origin;
  const uint64_t moves = rng.NextGeometric(alpha);
  for (uint64_t i = 0; i < moves; ++i) {
    path->push_back(current);
    auto neighbors = graph.OutNeighbors(current);
    if (neighbors.empty()) {
      current = origin;  // dead end: conceptual edge back to the origin
    } else {
      current =
          neighbors[rng.NextBounded(static_cast<uint64_t>(neighbors.size()))];
    }
  }
  return current;
}

/// Regenerates a walk's suffix from `from`, which the walk already
/// decided to depart (its α-flip said "continue" before the mutation;
/// the flip is adjacency-independent, so it is kept). One forced move
/// out of `from`, then a memoryless geometric number of further moves —
/// exactly the conditional law of a fresh walk's suffix given that it
/// reaches `from` and continues. Departures append to *path, whose last
/// entry must already be `from`.
template <typename GraphT>
NodeId ResumeWalk(const GraphT& graph, NodeId origin, NodeId from,
                  double alpha, Rng& rng, std::vector<NodeId>* path) {
  auto first = graph.OutNeighbors(from);
  NodeId current =
      first.empty()
          ? origin
          : first[rng.NextBounded(static_cast<uint64_t>(first.size()))];
  const uint64_t moves = rng.NextGeometric(alpha);
  for (uint64_t i = 0; i < moves; ++i) {
    path->push_back(current);
    auto neighbors = graph.OutNeighbors(current);
    if (neighbors.empty()) {
      current = origin;
    } else {
      current =
          neighbors[rng.NextBounded(static_cast<uint64_t>(neighbors.size()))];
    }
  }
  return current;
}

}  // namespace

WalkIndex WalkIndex::Build(const Graph& graph, double alpha, Sizing sizing,
                           uint64_t walk_count_w, Rng& rng) {
  PPR_CHECK(alpha > 0.0 && alpha < 1.0);
  const NodeId n = graph.num_nodes();
  WalkIndex index;
  index.alpha_ = alpha;
  index.graph_fingerprint_ = graph.Fingerprint();
  Timer timer;

  index.offsets_ = SizingOffsets(graph, sizing, walk_count_w);
  index.endpoints_.resize(index.offsets_.back());
  for (NodeId v = 0; v < n; ++v) {
    for (uint64_t i = index.offsets_[v]; i < index.offsets_[v + 1]; ++i) {
      index.endpoints_[i] = RandomWalk(graph, v, alpha, rng).stop;
    }
  }
  index.build_seconds_ = timer.ElapsedSeconds();
  return index;
}

WalkIndex WalkIndex::BuildParallel(const Graph& graph, double alpha,
                                   Sizing sizing, uint64_t walk_count_w,
                                   uint64_t seed) {
  PPR_CHECK(alpha > 0.0 && alpha < 1.0);
  const NodeId n = graph.num_nodes();
  WalkIndex index;
  index.alpha_ = alpha;
  index.graph_fingerprint_ = graph.Fingerprint();
  Timer timer;

  index.offsets_ = SizingOffsets(graph, sizing, walk_count_w);
  index.endpoints_.resize(index.offsets_.back());
  // Each worker writes a disjoint slice; each node gets its own stream
  // seeded from (seed, v), so the output is thread-count independent.
  ParallelFor(0, n, [&](uint64_t lo, uint64_t hi, unsigned) {
    for (uint64_t v = lo; v < hi; ++v) {
      Rng rng = SplitStream(seed, v);
      for (uint64_t i = index.offsets_[v]; i < index.offsets_[v + 1]; ++i) {
        index.endpoints_[i] =
            RandomWalk(graph, static_cast<NodeId>(v), alpha, rng).stop;
      }
    }
  });
  index.build_seconds_ = timer.ElapsedSeconds();
  return index;
}

std::string WalkIndex::CacheFileName(Sizing sizing, double alpha,
                                     uint64_t walk_count_w, uint64_t seed,
                                     uint64_t graph_fingerprint) {
  char buffer[160];
  // %.17g: alphas that differ anywhere in the double must not collide
  // on one filename (the load-time alpha check would make such a cache
  // thrash forever instead of ever hitting).
  std::snprintf(buffer, sizeof(buffer),
                "widx_%s_a%.17g_w%llu_s%llu_g%016llx.bin",
                sizing == Sizing::kForaPlus ? "fora" : "speedppr", alpha,
                static_cast<unsigned long long>(walk_count_w),
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(graph_fingerprint));
  return buffer;
}

Status WalkIndex::SaveTo(const std::string& path) const {
  PPR_FAULT_STATUS("walkindex.save");
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  auto write_u64 = [&](uint64_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  write_u64(kIndexMagic);
  write_u64(num_nodes());
  write_u64(endpoints_.size());
  write_u64(graph_fingerprint_);
  out.write(reinterpret_cast<const char*>(&alpha_), sizeof(alpha_));
  out.write(reinterpret_cast<const char*>(offsets_.data()),
            static_cast<std::streamsize>(offsets_.size() * sizeof(uint64_t)));
  out.write(reinterpret_cast<const char*>(endpoints_.data()),
            static_cast<std::streamsize>(endpoints_.size() * sizeof(NodeId)));
  out.flush();
  if (!out) return Status::IOError("write failed on " + path);
  return Status::OK();
}

Result<WalkIndex> WalkIndex::LoadFrom(const std::string& path) {
  PPR_FAULT_STATUS("walkindex.load");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  auto read_u64 = [&](uint64_t* v) {
    in.read(reinterpret_cast<char*>(v), sizeof(*v));
    return static_cast<bool>(in);
  };
  uint64_t magic = 0;
  uint64_t n = 0;
  uint64_t total = 0;
  if (!read_u64(&magic) || magic != kIndexMagic) {
    return Status::Corruption(path + ": bad magic");
  }
  WalkIndex index;
  if (!read_u64(&n) || !read_u64(&total) ||
      !read_u64(&index.graph_fingerprint_)) {
    return Status::Corruption(path + ": truncated header");
  }
  in.read(reinterpret_cast<char*>(&index.alpha_), sizeof(index.alpha_));
  index.offsets_.resize(n + 1);
  index.endpoints_.resize(total);
  in.read(reinterpret_cast<char*>(index.offsets_.data()),
          static_cast<std::streamsize>(index.offsets_.size() *
                                       sizeof(uint64_t)));
  in.read(reinterpret_cast<char*>(index.endpoints_.data()),
          static_cast<std::streamsize>(index.endpoints_.size() *
                                       sizeof(NodeId)));
  if (!in) return Status::Corruption(path + ": truncated body");
  if (index.offsets_.front() != 0 || index.offsets_.back() != total) {
    return Status::Corruption(path + ": inconsistent offsets");
  }
  return index;
}

// -------------------------------------------------------- DynamicWalkIndex

DynamicWalkIndex::DynamicWalkIndex(const Graph& graph, double alpha,
                                   WalkIndex::Sizing sizing,
                                   uint64_t walk_count_w, uint64_t seed)
    : alpha_(alpha), sizing_(sizing) {
  PPR_CHECK(alpha > 0.0 && alpha < 1.0);
  const NodeId n = graph.num_nodes();
  if (sizing == WalkIndex::Sizing::kForaPlus) {
    fora_ratio_ = std::sqrt(static_cast<double>(walk_count_w) /
                            static_cast<double>(graph.num_edges()));
  }
  Timer timer;
  nodes_.resize(n);
  through_.resize(n);
  streams_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    streams_.push_back(SplitStream(seed ^ kRefreshSalt, v));
  }

  // Walk generation is embarrassingly parallel (each node owns its walks
  // and its (seed, v) stream — the BuildParallel scheme, so the initial
  // endpoints match a static BuildParallel bit for bit); the inverted
  // index is registered in a serial pass after.
  ParallelFor(0, n, [&](uint64_t lo, uint64_t hi, unsigned) {
    for (uint64_t v = lo; v < hi; ++v) {
      Rng rng = SplitStream(seed, v);
      const uint64_t k = TargetWalks(graph.OutDegree(static_cast<NodeId>(v)));
      NodeWalks& walks = nodes_[v];
      walks.endpoints.resize(k);
      walks.paths.resize(k);
      for (uint64_t i = 0; i < k; ++i) {
        walks.endpoints[i] = RecordWalk(graph, static_cast<NodeId>(v), alpha,
                                        rng, &walks.paths[i]);
      }
    }
  });
  // No stale entries can exist during the initial registration, so the
  // compaction thresholds stay out of the way until after it.
  through_limits_.assign(n, std::numeric_limits<uint32_t>::max());
  for (NodeId v = 0; v < n; ++v) {
    total_walks_ += nodes_[v].endpoints.size();
    for (uint32_t i = 0; i < nodes_[v].paths.size(); ++i) {
      RegisterPath(v, i, 0);
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    through_limits_[v] = static_cast<uint32_t>(
        std::max<size_t>(kMinCompactLimit, 2 * through_[v].size()));
  }
  build_seconds_ = timer.ElapsedSeconds();
}

uint64_t DynamicWalkIndex::TargetWalks(NodeId degree) const {
  if (sizing_ == WalkIndex::Sizing::kSpeedPpr) {
    return degree == 0 ? 1 : degree;
  }
  return static_cast<uint64_t>(std::ceil(degree * fora_ratio_)) + 1;
}

void DynamicWalkIndex::RegisterPath(NodeId origin, uint32_t walk,
                                    size_t from) {
  const std::vector<NodeId>& path = nodes_[origin].paths[walk];
  for (size_t j = from; j < path.size(); ++j) {
    const NodeId x = path[j];
    // An earlier occurrence already carries this walk's entry (paths are
    // short — expected (1−α)/α departures — so the scan is cheap).
    bool seen = false;
    for (size_t i = 0; i < j && !seen; ++i) seen = path[i] == x;
    if (!seen) {
      through_[x].push_back({origin, walk});
      if (through_[x].size() > through_limits_[x]) CompactThrough(x);
    }
  }
}

void DynamicWalkIndex::CompactThrough(NodeId x) {
  std::vector<Slot>& list = through_[x];
  std::sort(list.begin(), list.end(), [](const Slot& a, const Slot& b) {
    return a.origin != b.origin ? a.origin < b.origin : a.walk < b.walk;
  });
  list.erase(std::unique(list.begin(), list.end(),
                         [](const Slot& a, const Slot& b) {
                           return a.origin == b.origin && a.walk == b.walk;
                         }),
             list.end());
  list.erase(std::remove_if(list.begin(), list.end(),
                            [&](const Slot& s) {
                              const NodeWalks& walks = nodes_[s.origin];
                              if (s.walk >= walks.paths.size()) return true;
                              const std::vector<NodeId>& path =
                                  walks.paths[s.walk];
                              return std::find(path.begin(), path.end(), x) ==
                                     path.end();
                            }),
             list.end());
  // Doubling re-arm: compaction work stays amortized O(1) per append,
  // and the list never exceeds ~2x its live size.
  through_limits_[x] = static_cast<uint32_t>(
      std::max<size_t>(kMinCompactLimit, 2 * list.size()));
}

uint64_t DynamicWalkIndex::RefreshMutatedNode(const DynamicGraph& graph,
                                              NodeId u) {
  PPR_CHECK(u < nodes_.size());
  Rng& rng = streams_[u];
  uint64_t resampled = 0;

  // 1. Resample every walk that departed u, from its first departure.
  // The entry list is taken by value: valid walks re-register themselves
  // below (their path still contains u), stale or duplicate entries are
  // dropped here — this is where the lazily invalidated inverted index
  // gets compacted.
  std::vector<Slot> entries = std::move(through_[u]);
  through_[u].clear();
  std::sort(entries.begin(), entries.end(), [](const Slot& a, const Slot& b) {
    return a.origin != b.origin ? a.origin < b.origin : a.walk < b.walk;
  });
  for (size_t e = 0; e < entries.size(); ++e) {
    const Slot slot = entries[e];
    if (e > 0 && entries[e - 1].origin == slot.origin &&
        entries[e - 1].walk == slot.walk) {
      continue;  // duplicate
    }
    NodeWalks& walks = nodes_[slot.origin];
    if (slot.walk >= walks.paths.size()) continue;  // walk was dropped
    std::vector<NodeId>& path = walks.paths[slot.walk];
    const auto it = std::find(path.begin(), path.end(), u);
    if (it == path.end()) continue;  // stale: resampled away earlier
    const size_t p = static_cast<size_t>(it - path.begin());
    path.resize(p + 1);
    walks.endpoints[slot.walk] =
        ResumeWalk(graph, slot.origin, u, alpha_, rng, &path);
    RegisterPath(slot.origin, slot.walk, p);  // re-registers u itself too
    resampled++;
  }

  // 2. Track the sizing rule at u's new degree. Dropped walks leave
  // stale inverted entries behind (purged lazily above); appended walks
  // are full fresh samples on the current graph.
  const uint64_t target = TargetWalks(graph.OutDegree(u));
  NodeWalks& own = nodes_[u];
  while (own.endpoints.size() > target) {
    own.endpoints.pop_back();
    own.paths.pop_back();
    total_walks_--;
  }
  while (own.endpoints.size() < target) {
    own.paths.emplace_back();
    own.endpoints.push_back(
        RecordWalk(graph, u, alpha_, rng, &own.paths.back()));
    RegisterPath(u, static_cast<uint32_t>(own.paths.size() - 1), 0);
    total_walks_++;
    resampled++;
  }
  return resampled;
}

}  // namespace ppr
