#include "approx/walk_index.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <thread>

#include "approx/random_walk.h"
#include "util/fault_injection.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace ppr {

namespace {

constexpr uint64_t kIndexMagic = 0x5050523257494458ULL;  // "PPR2WIDX"

/// Salt separating a node's refresh stream from its build stream: both
/// derive from (seed, v), and the refresh draws must not replay the
/// build draws.
constexpr uint64_t kRefreshSalt = 0x9e6b7d1f2c3a55ULL;

/// Floor for the inverted-index compaction thresholds, so tiny lists
/// never thrash through repeated compactions.
constexpr size_t kMinCompactLimit = 8;

/// Offsets for the chosen sizing rule; shared by both build paths.
std::vector<uint64_t> SizingOffsets(const Graph& graph,
                                    WalkIndex::Sizing sizing,
                                    uint64_t walk_count_w) {
  const NodeId n = graph.num_nodes();
  const double fora_ratio =
      sizing == WalkIndex::Sizing::kForaPlus
          ? std::sqrt(static_cast<double>(walk_count_w) /
                      static_cast<double>(graph.num_edges()))
          : 0.0;
  std::vector<uint64_t> offsets(static_cast<size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId d = graph.OutDegree(v);
    uint64_t k;
    if (sizing == WalkIndex::Sizing::kForaPlus) {
      k = static_cast<uint64_t>(std::ceil(d * fora_ratio)) + 1;
    } else {
      k = d == 0 ? 1 : d;  // SpeedPPR: at most m walks in total
    }
    offsets[v + 1] = offsets[v] + k;
  }
  return offsets;
}

/// One α-walk from `origin` recording the departure sequence into
/// *path (cleared first). RNG consumption matches RandomWalk() draw for
/// draw — one geometric for the length, one bounded draw per non-dead-
/// end move — so a freshly built DynamicWalkIndex reproduces
/// WalkIndex::BuildParallel's endpoints bit for bit.
template <typename GraphT>
NodeId RecordWalk(const GraphT& graph, NodeId origin, double alpha, Rng& rng,
                  std::vector<NodeId>* path) {
  path->clear();
  NodeId current = origin;
  const uint64_t moves = rng.NextGeometric(alpha);
  for (uint64_t i = 0; i < moves; ++i) {
    path->push_back(current);
    auto neighbors = graph.OutNeighbors(current);
    if (neighbors.empty()) {
      current = origin;  // dead end: conceptual edge back to the origin
    } else {
      current =
          neighbors[rng.NextBounded(static_cast<uint64_t>(neighbors.size()))];
    }
  }
  return current;
}

/// Regenerates a walk's suffix from `from`, which the walk already
/// decided to depart (its α-flip said "continue" before the mutation;
/// the flip is adjacency-independent, so it is kept). One forced move
/// out of `from`, then a memoryless geometric number of further moves —
/// exactly the conditional law of a fresh walk's suffix given that it
/// reaches `from` and continues. Departures append to *path, whose last
/// entry must already be `from`.
template <typename GraphT>
NodeId ResumeWalk(const GraphT& graph, NodeId origin, NodeId from,
                  double alpha, Rng& rng, std::vector<NodeId>* path) {
  auto first = graph.OutNeighbors(from);
  NodeId current =
      first.empty()
          ? origin
          : first[rng.NextBounded(static_cast<uint64_t>(first.size()))];
  const uint64_t moves = rng.NextGeometric(alpha);
  for (uint64_t i = 0; i < moves; ++i) {
    path->push_back(current);
    auto neighbors = graph.OutNeighbors(current);
    if (neighbors.empty()) {
      current = origin;
    } else {
      current =
          neighbors[rng.NextBounded(static_cast<uint64_t>(neighbors.size()))];
    }
  }
  return current;
}

}  // namespace

WalkIndex WalkIndex::Build(const Graph& graph, double alpha, Sizing sizing,
                           uint64_t walk_count_w, Rng& rng) {
  PPR_CHECK(alpha > 0.0 && alpha < 1.0);
  const NodeId n = graph.num_nodes();
  WalkIndex index;
  index.alpha_ = alpha;
  index.graph_fingerprint_ = graph.Fingerprint();
  Timer timer;

  index.offsets_ = SizingOffsets(graph, sizing, walk_count_w);
  index.endpoints_.resize(index.offsets_.back());
  for (NodeId v = 0; v < n; ++v) {
    for (uint64_t i = index.offsets_[v]; i < index.offsets_[v + 1]; ++i) {
      index.endpoints_[i] = RandomWalk(graph, v, alpha, rng).stop;
    }
  }
  index.build_seconds_ = timer.ElapsedSeconds();
  return index;
}

WalkIndex WalkIndex::BuildParallel(const Graph& graph, double alpha,
                                   Sizing sizing, uint64_t walk_count_w,
                                   uint64_t seed) {
  PPR_CHECK(alpha > 0.0 && alpha < 1.0);
  const NodeId n = graph.num_nodes();
  WalkIndex index;
  index.alpha_ = alpha;
  index.graph_fingerprint_ = graph.Fingerprint();
  Timer timer;

  index.offsets_ = SizingOffsets(graph, sizing, walk_count_w);
  index.endpoints_.resize(index.offsets_.back());
  // Each worker writes a disjoint slice; each node gets its own stream
  // seeded from (seed, v), so the output is thread-count independent.
  ParallelFor(0, n, [&](uint64_t lo, uint64_t hi, unsigned) {
    for (uint64_t v = lo; v < hi; ++v) {
      Rng rng = SplitStream(seed, v);
      for (uint64_t i = index.offsets_[v]; i < index.offsets_[v + 1]; ++i) {
        index.endpoints_[i] =
            RandomWalk(graph, static_cast<NodeId>(v), alpha, rng).stop;
      }
    }
  });
  index.build_seconds_ = timer.ElapsedSeconds();
  return index;
}

std::string WalkIndex::CacheFileName(Sizing sizing, double alpha,
                                     uint64_t walk_count_w, uint64_t seed,
                                     uint64_t graph_fingerprint) {
  char buffer[160];
  // %.17g: alphas that differ anywhere in the double must not collide
  // on one filename (the load-time alpha check would make such a cache
  // thrash forever instead of ever hitting).
  std::snprintf(buffer, sizeof(buffer),
                "widx_%s_a%.17g_w%llu_s%llu_g%016llx.bin",
                sizing == Sizing::kForaPlus ? "fora" : "speedppr", alpha,
                static_cast<unsigned long long>(walk_count_w),
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(graph_fingerprint));
  return buffer;
}

Status WalkIndex::SaveTo(const std::string& path) const {
  PPR_FAULT_STATUS("walkindex.save");
  // Write-temp-then-rename: the canonical name only ever holds a
  // complete file, so a crash mid-write or a concurrent saver sharing
  // cache_dir= cannot leave a truncated cache where loads expect a good
  // one. The temp name is salted per-thread so two concurrent savers of
  // the same index do not interleave into one temp file; last rename
  // wins with identical content.
  const std::string tmp =
      path + ".tmp." +
      std::to_string(std::hash<std::thread::id>()(std::this_thread::get_id()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp + " for writing");
    auto write_u64 = [&](uint64_t v) {
      out.write(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    write_u64(kIndexMagic);
    write_u64(num_nodes());
    write_u64(endpoints_.size());
    write_u64(graph_fingerprint_);
    out.write(reinterpret_cast<const char*>(&alpha_), sizeof(alpha_));
    out.write(reinterpret_cast<const char*>(offsets_.data()),
              static_cast<std::streamsize>(offsets_.size() *
                                           sizeof(uint64_t)));
    out.write(reinterpret_cast<const char*>(endpoints_.data()),
              static_cast<std::streamsize>(endpoints_.size() *
                                           sizeof(NodeId)));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::IOError("write failed on " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Result<WalkIndex> WalkIndex::LoadFrom(const std::string& path) {
  PPR_FAULT_STATUS("walkindex.load");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  auto read_u64 = [&](uint64_t* v) {
    in.read(reinterpret_cast<char*>(v), sizeof(*v));
    return static_cast<bool>(in);
  };
  uint64_t magic = 0;
  uint64_t n = 0;
  uint64_t total = 0;
  if (!read_u64(&magic) || magic != kIndexMagic) {
    return Status::Corruption(path + ": bad magic");
  }
  WalkIndex index;
  if (!read_u64(&n) || !read_u64(&total) ||
      !read_u64(&index.graph_fingerprint_)) {
    return Status::Corruption(path + ": truncated header");
  }
  in.read(reinterpret_cast<char*>(&index.alpha_), sizeof(index.alpha_));
  if (!in) return Status::Corruption(path + ": truncated header");
  // Size the allocations from the actual file, not the header's word: a
  // corrupt or hostile file claiming 2^60 endpoints must fail cleanly
  // here, not OOM in resize(). Header is 5 u64-sized fields; the body
  // must hold exactly (n+1) offsets and `total` endpoints.
  in.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  constexpr uint64_t kHeaderBytes = 5 * sizeof(uint64_t);
  // Overflow-safe bounds before computing the exact expected size.
  if (n > (file_size - kHeaderBytes) / sizeof(uint64_t) ||
      total > (file_size - kHeaderBytes) / sizeof(NodeId)) {
    return Status::Corruption(path + ": header counts exceed file size");
  }
  const uint64_t expected =
      kHeaderBytes + (n + 1) * sizeof(uint64_t) + total * sizeof(NodeId);
  if (file_size != expected) {
    return Status::Corruption(path + ": file size " +
                              std::to_string(file_size) + " != expected " +
                              std::to_string(expected));
  }
  in.seekg(static_cast<std::streamoff>(kHeaderBytes));
  index.offsets_.resize(n + 1);
  index.endpoints_.resize(total);
  in.read(reinterpret_cast<char*>(index.offsets_.data()),
          static_cast<std::streamsize>(index.offsets_.size() *
                                       sizeof(uint64_t)));
  in.read(reinterpret_cast<char*>(index.endpoints_.data()),
          static_cast<std::streamsize>(index.endpoints_.size() *
                                       sizeof(NodeId)));
  if (!in) return Status::Corruption(path + ": truncated body");
  if (index.offsets_.front() != 0 || index.offsets_.back() != total) {
    return Status::Corruption(path + ": inconsistent offsets");
  }
  for (size_t i = 0; i + 1 < index.offsets_.size(); ++i) {
    if (index.offsets_[i] > index.offsets_[i + 1]) {
      return Status::Corruption(path + ": offsets not monotonic");
    }
  }
  return index;
}

// -------------------------------------------------------- DynamicWalkIndex

DynamicWalkIndex::DynamicWalkIndex(const Graph& graph, double alpha,
                                   WalkIndex::Sizing sizing,
                                   uint64_t walk_count_w, uint64_t seed,
                                   double drift_factor)
    : alpha_(alpha),
      sizing_(sizing),
      walk_count_w_(walk_count_w),
      seed_(seed),
      drift_factor_(drift_factor) {
  PPR_CHECK(alpha > 0.0 && alpha < 1.0);
  PPR_CHECK(drift_factor == 0.0 || drift_factor > 1.0)
      << "drift factor must exceed 1 (or be 0 to disable)";
  const NodeId n = graph.num_nodes();
  ratio_edges_ = static_cast<double>(std::max<EdgeId>(graph.num_edges(), 1));
  if (sizing == WalkIndex::Sizing::kForaPlus) {
    fora_ratio_ = std::sqrt(static_cast<double>(walk_count_w) /
                            static_cast<double>(graph.num_edges()));
  }
  Timer timer;
  nodes_.resize(n);
  through_.resize(n);
  streams_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    streams_.push_back(SplitStream(seed ^ kRefreshSalt, v));
  }

  // Walk generation is embarrassingly parallel (each node owns its walks
  // and its (seed, v) stream — the BuildParallel scheme, so the initial
  // endpoints match a static BuildParallel bit for bit); the inverted
  // index is registered in a serial pass after. Paths go straight into
  // the per-node arena — one allocation stream per node, no per-walk
  // heap vectors.
  ParallelFor(0, n, [&](uint64_t lo, uint64_t hi, unsigned) {
    std::vector<NodeId> scratch;
    for (uint64_t v = lo; v < hi; ++v) {
      Rng rng = SplitStream(seed, v);
      const uint64_t k = TargetWalks(graph.OutDegree(static_cast<NodeId>(v)));
      NodeWalks& walks = nodes_[v];
      walks.endpoints.reserve(k);
      walks.begin.reserve(k);
      walks.length.reserve(k);
      for (uint64_t i = 0; i < k; ++i) {
        const NodeId stop =
            RecordWalk(graph, static_cast<NodeId>(v), alpha, rng, &scratch);
        walks.endpoints.push_back(stop);
        walks.begin.push_back(static_cast<uint32_t>(walks.arena.size()));
        walks.length.push_back(static_cast<uint32_t>(scratch.size()));
        walks.arena.insert(walks.arena.end(), scratch.begin(), scratch.end());
      }
      walks.live_words = walks.arena.size();
    }
  });
  // No stale entries can exist during the initial registration, so the
  // compaction thresholds stay out of the way until after it.
  through_limits_.assign(n, std::numeric_limits<uint32_t>::max());
  for (NodeId v = 0; v < n; ++v) {
    total_walks_ += nodes_[v].endpoints.size();
    for (uint32_t i = 0; i < nodes_[v].walk_count(); ++i) {
      RegisterPath(v, i, 0);
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    through_limits_[v] = static_cast<uint32_t>(
        std::max<size_t>(kMinCompactLimit, 2 * through_[v].size()));
  }
  build_seconds_ = timer.ElapsedSeconds();
}

uint64_t DynamicWalkIndex::SizeBytes() const {
  uint64_t bytes = 0;
  for (const NodeWalks& walks : nodes_) {
    bytes += walks.endpoints.size() * sizeof(NodeId) +
             walks.arena.size() * sizeof(NodeId) +
             walks.begin.size() * sizeof(uint32_t) +
             walks.length.size() * sizeof(uint32_t);
  }
  for (const std::vector<Slot>& list : through_) {
    bytes += list.size() * sizeof(Slot);
  }
  bytes += through_limits_.size() * sizeof(uint32_t);
  return bytes;
}

uint64_t DynamicWalkIndex::TargetWalks(NodeId degree) const {
  if (sizing_ == WalkIndex::Sizing::kSpeedPpr) {
    return degree == 0 ? 1 : degree;
  }
  return static_cast<uint64_t>(std::ceil(degree * fora_ratio_)) + 1;
}

void DynamicWalkIndex::RegisterPath(NodeId origin, uint32_t walk,
                                    size_t from) {
  const std::span<const NodeId> path = nodes_[origin].Path(walk);
  for (size_t j = from; j < path.size(); ++j) {
    const NodeId x = path[j];
    // An earlier occurrence already carries this walk's entry (paths are
    // short — expected (1−α)/α departures — so the scan is cheap).
    bool seen = false;
    for (size_t i = 0; i < j && !seen; ++i) seen = path[i] == x;
    if (!seen) {
      through_[x].push_back({origin, walk});
      if (through_[x].size() > through_limits_[x]) CompactThrough(x);
    }
  }
}

void DynamicWalkIndex::CompactThrough(NodeId x) {
  std::vector<Slot>& list = through_[x];
  std::sort(list.begin(), list.end(), [](const Slot& a, const Slot& b) {
    return a.origin != b.origin ? a.origin < b.origin : a.walk < b.walk;
  });
  list.erase(std::unique(list.begin(), list.end(),
                         [](const Slot& a, const Slot& b) {
                           return a.origin == b.origin && a.walk == b.walk;
                         }),
             list.end());
  list.erase(std::remove_if(list.begin(), list.end(),
                            [&](const Slot& s) {
                              const NodeWalks& walks = nodes_[s.origin];
                              if (s.walk >= walks.walk_count()) return true;
                              const std::span<const NodeId> path =
                                  walks.Path(s.walk);
                              return std::find(path.begin(), path.end(), x) ==
                                     path.end();
                            }),
             list.end());
  // Doubling re-arm: compaction work stays amortized O(1) per append,
  // and the list never exceeds ~2x its live size.
  through_limits_[x] = static_cast<uint32_t>(
      std::max<size_t>(kMinCompactLimit, 2 * list.size()));
}

void DynamicWalkIndex::CompactArena(NodeWalks& walks) {
  std::vector<NodeId> packed;
  packed.reserve(walks.live_words);
  for (uint32_t i = 0; i < walks.walk_count(); ++i) {
    const std::span<const NodeId> path = walks.Path(i);
    walks.begin[i] = static_cast<uint32_t>(packed.size());
    packed.insert(packed.end(), path.begin(), path.end());
  }
  walks.arena = std::move(packed);
  PPR_DCHECK(walks.arena.size() == walks.live_words);
}

void DynamicWalkIndex::CommitPath(NodeWalks& walks, uint32_t walk) {
  walks.live_words -= walks.length[walk];
  walks.length[walk] = 0;  // retire the old span before any compaction
  // Compact before appending when retired words outnumber live ones (the
  // slack floor keeps tiny arenas from thrashing). Amortized O(1) per
  // commit: each compaction copies at most the words retired since the
  // previous one.
  constexpr size_t kMinArenaSlack = 64;
  if (walks.arena.size() >
      2 * walks.live_words + 2 * scratch_.size() + kMinArenaSlack) {
    CompactArena(walks);
  }
  PPR_CHECK(walks.arena.size() + scratch_.size() <=
            std::numeric_limits<uint32_t>::max());
  walks.begin[walk] = static_cast<uint32_t>(walks.arena.size());
  walks.length[walk] = static_cast<uint32_t>(scratch_.size());
  walks.arena.insert(walks.arena.end(), scratch_.begin(), scratch_.end());
  walks.live_words += scratch_.size();
}

uint64_t DynamicWalkIndex::RefreshMutatedNode(const DynamicGraph& graph,
                                              NodeId u) {
  PPR_CHECK(u < nodes_.size());
  Rng& rng = streams_[u];
  uint64_t resampled = 0;

  // 1. Resample every walk that departed u, from its first departure.
  // The entry list is taken by value: valid walks re-register themselves
  // below (their path still contains u), stale or duplicate entries are
  // dropped here — this is where the lazily invalidated inverted index
  // gets compacted.
  std::vector<Slot> entries = std::move(through_[u]);
  through_[u].clear();
  std::sort(entries.begin(), entries.end(), [](const Slot& a, const Slot& b) {
    return a.origin != b.origin ? a.origin < b.origin : a.walk < b.walk;
  });
  for (size_t e = 0; e < entries.size(); ++e) {
    const Slot slot = entries[e];
    if (e > 0 && entries[e - 1].origin == slot.origin &&
        entries[e - 1].walk == slot.walk) {
      continue;  // duplicate
    }
    NodeWalks& walks = nodes_[slot.origin];
    if (slot.walk >= walks.walk_count()) continue;  // walk was dropped
    const std::span<const NodeId> path = walks.Path(slot.walk);
    const auto it = std::find(path.begin(), path.end(), u);
    if (it == path.end()) continue;  // stale: resampled away earlier
    const size_t p = static_cast<size_t>(it - path.begin());
    // Kept prefix through the first departure from u, then the resampled
    // suffix, assembled in scratch_ and committed over the old span.
    scratch_.assign(path.begin(), path.begin() + p + 1);
    walks.endpoints[slot.walk] =
        ResumeWalk(graph, slot.origin, u, alpha_, rng, &scratch_);
    CommitPath(walks, slot.walk);
    RegisterPath(slot.origin, slot.walk, p);  // re-registers u itself too
    resampled++;
  }

  // 2. Track the sizing rule at u's new degree.
  resampled += ResizeNode(graph, u, TargetWalks(graph.OutDegree(u)));

  // 3. Drift check (kForaPlus only): if this mutation tipped the live
  // edge count past the configured factor of the m the ratio was derived
  // at, re-derive sqrt(W/m) and retarget every node. Each node resizes
  // through its own refresh stream, so the result is exactly the index a
  // fresh build at the new m would maintain — the endpoint-frequency
  // conformance test crosses one of these events on purpose.
  if (sizing_ == WalkIndex::Sizing::kForaPlus && drift_factor_ > 0.0) {
    const double m_now =
        static_cast<double>(std::max<EdgeId>(graph.num_edges(), 1));
    if (m_now > ratio_edges_ * drift_factor_ ||
        m_now * drift_factor_ < ratio_edges_) {
      resampled += ResizeForDrift(graph);
    }
  }
  return resampled;
}

uint64_t DynamicWalkIndex::ResizeNode(const DynamicGraph& graph, NodeId v,
                                      uint64_t target) {
  // Dropped walks leave stale inverted entries behind (purged lazily by
  // CompactThrough); appended walks are full fresh samples on the
  // current graph, drawn from v's own refresh stream.
  uint64_t appended = 0;
  NodeWalks& own = nodes_[v];
  while (own.endpoints.size() > target) {
    own.live_words -= own.length.back();
    own.endpoints.pop_back();
    own.begin.pop_back();
    own.length.pop_back();
    total_walks_--;
  }
  while (own.endpoints.size() < target) {
    const NodeId stop = RecordWalk(graph, v, alpha_, streams_[v], &scratch_);
    own.endpoints.push_back(stop);
    own.begin.push_back(0);
    own.length.push_back(0);
    CommitPath(own, own.walk_count() - 1);
    RegisterPath(v, own.walk_count() - 1, 0);
    total_walks_++;
    appended++;
  }
  return appended;
}

uint64_t DynamicWalkIndex::ResizeForDrift(const DynamicGraph& graph) {
  const double m_now =
      static_cast<double>(std::max<EdgeId>(graph.num_edges(), 1));
  fora_ratio_ = std::sqrt(static_cast<double>(walk_count_w_) / m_now);
  ratio_edges_ = m_now;
  resize_events_++;
  uint64_t appended = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    appended += ResizeNode(graph, v, TargetWalks(graph.OutDegree(v)));
  }
  return appended;
}

void DynamicWalkIndex::AddNode() {
  const NodeId v = static_cast<NodeId>(nodes_.size());
  nodes_.emplace_back();
  through_.emplace_back();
  through_limits_.push_back(static_cast<uint32_t>(kMinCompactLimit));
  streams_.push_back(SplitStream(seed_ ^ kRefreshSalt, v));

  // The new node is isolated (mirroring DynamicGraph::AddNode), so its
  // initial walks can be generated without the graph: a walk from a dead
  // end draws its geometric length and then bounces on the conceptual
  // back-edge to the origin every move — endpoint v, path of `moves`
  // copies of v. RNG consumption matches RecordWalk draw for draw (one
  // geometric, no bounded draws), and the draws come from the node's
  // build stream — bit-identical to a fresh build at the new n.
  Rng build = SplitStream(seed_, v);
  NodeWalks& walks = nodes_.back();
  const uint64_t k = TargetWalks(0);
  for (uint64_t i = 0; i < k; ++i) {
    const uint64_t moves = build.NextGeometric(alpha_);
    walks.endpoints.push_back(v);
    walks.begin.push_back(static_cast<uint32_t>(walks.arena.size()));
    walks.length.push_back(static_cast<uint32_t>(moves));
    walks.arena.insert(walks.arena.end(), moves, v);
    total_walks_++;
  }
  walks.live_words = walks.arena.size();
  for (uint32_t i = 0; i < walks.walk_count(); ++i) {
    RegisterPath(v, i, 0);
  }
}

}  // namespace ppr
