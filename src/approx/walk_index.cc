#include "approx/walk_index.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "approx/random_walk.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace ppr {

namespace {

constexpr uint64_t kIndexMagic = 0x5050523157494458ULL;  // "PPR1WIDX"

/// Offsets for the chosen sizing rule; shared by both build paths.
std::vector<uint64_t> SizingOffsets(const Graph& graph,
                                    WalkIndex::Sizing sizing,
                                    uint64_t walk_count_w) {
  const NodeId n = graph.num_nodes();
  const double fora_ratio =
      sizing == WalkIndex::Sizing::kForaPlus
          ? std::sqrt(static_cast<double>(walk_count_w) /
                      static_cast<double>(graph.num_edges()))
          : 0.0;
  std::vector<uint64_t> offsets(static_cast<size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId d = graph.OutDegree(v);
    uint64_t k;
    if (sizing == WalkIndex::Sizing::kForaPlus) {
      k = static_cast<uint64_t>(std::ceil(d * fora_ratio)) + 1;
    } else {
      k = d == 0 ? 1 : d;  // SpeedPPR: at most m walks in total
    }
    offsets[v + 1] = offsets[v] + k;
  }
  return offsets;
}

}  // namespace

WalkIndex WalkIndex::Build(const Graph& graph, double alpha, Sizing sizing,
                           uint64_t walk_count_w, Rng& rng) {
  PPR_CHECK(alpha > 0.0 && alpha < 1.0);
  const NodeId n = graph.num_nodes();
  WalkIndex index;
  index.alpha_ = alpha;
  Timer timer;

  index.offsets_ = SizingOffsets(graph, sizing, walk_count_w);
  index.endpoints_.resize(index.offsets_.back());
  for (NodeId v = 0; v < n; ++v) {
    for (uint64_t i = index.offsets_[v]; i < index.offsets_[v + 1]; ++i) {
      index.endpoints_[i] = RandomWalk(graph, v, alpha, rng).stop;
    }
  }
  index.build_seconds_ = timer.ElapsedSeconds();
  return index;
}

WalkIndex WalkIndex::BuildParallel(const Graph& graph, double alpha,
                                   Sizing sizing, uint64_t walk_count_w,
                                   uint64_t seed) {
  PPR_CHECK(alpha > 0.0 && alpha < 1.0);
  const NodeId n = graph.num_nodes();
  WalkIndex index;
  index.alpha_ = alpha;
  Timer timer;

  index.offsets_ = SizingOffsets(graph, sizing, walk_count_w);
  index.endpoints_.resize(index.offsets_.back());
  // Each worker writes a disjoint slice; each node gets its own stream
  // seeded from (seed, v), so the output is thread-count independent.
  ParallelFor(0, n, [&](uint64_t lo, uint64_t hi, unsigned) {
    for (uint64_t v = lo; v < hi; ++v) {
      Rng rng = SplitStream(seed, v);
      for (uint64_t i = index.offsets_[v]; i < index.offsets_[v + 1]; ++i) {
        index.endpoints_[i] =
            RandomWalk(graph, static_cast<NodeId>(v), alpha, rng).stop;
      }
    }
  });
  index.build_seconds_ = timer.ElapsedSeconds();
  return index;
}

std::string WalkIndex::CacheFileName(Sizing sizing, double alpha,
                                     uint64_t walk_count_w, uint64_t seed,
                                     uint64_t graph_fingerprint) {
  char buffer[160];
  // %.17g: alphas that differ anywhere in the double must not collide
  // on one filename (the load-time alpha check would make such a cache
  // thrash forever instead of ever hitting).
  std::snprintf(buffer, sizeof(buffer),
                "widx_%s_a%.17g_w%llu_s%llu_g%016llx.bin",
                sizing == Sizing::kForaPlus ? "fora" : "speedppr", alpha,
                static_cast<unsigned long long>(walk_count_w),
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(graph_fingerprint));
  return buffer;
}

Status WalkIndex::SaveTo(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  auto write_u64 = [&](uint64_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  write_u64(kIndexMagic);
  write_u64(num_nodes());
  write_u64(endpoints_.size());
  out.write(reinterpret_cast<const char*>(&alpha_), sizeof(alpha_));
  out.write(reinterpret_cast<const char*>(offsets_.data()),
            static_cast<std::streamsize>(offsets_.size() * sizeof(uint64_t)));
  out.write(reinterpret_cast<const char*>(endpoints_.data()),
            static_cast<std::streamsize>(endpoints_.size() * sizeof(NodeId)));
  out.flush();
  if (!out) return Status::IOError("write failed on " + path);
  return Status::OK();
}

Result<WalkIndex> WalkIndex::LoadFrom(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  auto read_u64 = [&](uint64_t* v) {
    in.read(reinterpret_cast<char*>(v), sizeof(*v));
    return static_cast<bool>(in);
  };
  uint64_t magic = 0;
  uint64_t n = 0;
  uint64_t total = 0;
  if (!read_u64(&magic) || magic != kIndexMagic) {
    return Status::Corruption(path + ": bad magic");
  }
  if (!read_u64(&n) || !read_u64(&total)) {
    return Status::Corruption(path + ": truncated header");
  }
  WalkIndex index;
  in.read(reinterpret_cast<char*>(&index.alpha_), sizeof(index.alpha_));
  index.offsets_.resize(n + 1);
  index.endpoints_.resize(total);
  in.read(reinterpret_cast<char*>(index.offsets_.data()),
          static_cast<std::streamsize>(index.offsets_.size() *
                                       sizeof(uint64_t)));
  in.read(reinterpret_cast<char*>(index.endpoints_.data()),
          static_cast<std::streamsize>(index.endpoints_.size() *
                                       sizeof(NodeId)));
  if (!in) return Status::Corruption(path + ": truncated body");
  if (index.offsets_.front() != 0 || index.offsets_.back() != total) {
    return Status::Corruption(path + ": inconsistent offsets");
  }
  return index;
}

}  // namespace ppr
