#ifndef PPR_APPROX_MONTE_CARLO_H_
#define PPR_APPROX_MONTE_CARLO_H_

#include <vector>

#include "core/workspace.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace ppr {

/// Parameters shared by every approximate-SSPPR algorithm. The guarantee
/// (§2): for every node v with π(s,v) ≥ mu, the estimate satisfies
/// |π̂(s,v) − π(s,v)| ≤ epsilon·π(s,v) with probability ≥ 1 − 1/n.
struct ApproxOptions {
  double alpha = 0.2;
  double epsilon = 0.5;
  /// PPR threshold μ; 0 means the conventional default 1/n.
  double mu = 0.0;

  double ResolvedMu(NodeId n) const {
    return mu > 0.0 ? mu : 1.0 / static_cast<double>(n);
  }
};

/// Number of walks W required by the Chernoff bound, Equation (12):
/// W = 2(2ε/3 + 2)·log n / (ε²·μ).
uint64_t ChernoffWalkCount(NodeId n, double epsilon, double mu);

/// The plain Monte-Carlo method: W independent α-walks from the source;
/// π̂(s,v) = (walks stopped at v) / W. Expected time O(W/α) — the
/// baseline every other approximate algorithm improves on. `out` is
/// resized to n.
SolveStats MonteCarlo(const Graph& graph, NodeId source,
                      const ApproxOptions& options, Rng& rng,
                      std::vector<double>* out);

/// As MonteCarlo, but `out` must already be sized n and all-zero; the
/// O(n) assign() is skipped. Used by the api/ adapters together with a
/// SolverContext sparse reset.
SolveStats MonteCarloInto(const Graph& graph, NodeId source,
                          const ApproxOptions& options, Rng& rng,
                          std::vector<double>* out);

}  // namespace ppr

#endif  // PPR_APPROX_MONTE_CARLO_H_
