#ifndef PPR_APPROX_MONTE_CARLO_H_
#define PPR_APPROX_MONTE_CARLO_H_

#include <vector>

#include "core/workspace.h"
#include "graph/graph.h"
#include "util/cancellation.h"
#include "util/rng.h"

namespace ppr {

/// Parameters shared by every approximate-SSPPR algorithm. The guarantee
/// (§2): for every node v with π(s,v) ≥ mu, the estimate satisfies
/// |π̂(s,v) − π(s,v)| ≤ epsilon·π(s,v) with probability ≥ 1 − 1/n.
struct ApproxOptions {
  double alpha = 0.2;
  double epsilon = 0.5;
  /// PPR threshold μ; 0 means the conventional default 1/n.
  double mu = 0.0;
  /// Worker threads for the Monte-Carlo walk phases (and, for SpeedPPR,
  /// its PowerPush stage). 0 defers the walk phases to
  /// ParallelThreadCount() and keeps the push stage serial; walk-phase
  /// results are bit-identical for every thread count (per-node /
  /// per-block RNG streams with ordered merges), push-stage results only
  /// for a fixed one.
  unsigned threads = 0;
  /// Optional cooperative cancellation, polled between walk blocks and
  /// between algorithm phases; nullptr (the default) never polls.
  const CancelToken* cancel = nullptr;

  double ResolvedMu(NodeId n) const {
    return mu > 0.0 ? mu : 1.0 / static_cast<double>(n);
  }
};

/// Number of walks W required by the Chernoff bound, Equation (12):
/// W = 2(2ε/3 + 2)·log n / (ε²·μ).
uint64_t ChernoffWalkCount(NodeId n, double epsilon, double mu);

/// True when MonteCarloInto's parallel path will use the dense
/// per-worker stop counts (and therefore read `thread_scratch`). The
/// adapters gate their scratch lending on this predicate so the two
/// layers cannot drift.
inline bool MonteCarloUsesDenseCounts(NodeId n, const ApproxOptions& options) {
  return ChernoffWalkCount(n, options.epsilon, options.ResolvedMu(n)) >=
         static_cast<uint64_t>(n);
}

/// The plain Monte-Carlo method: W independent α-walks from the source;
/// π̂(s,v) = (walks stopped at v) / W. Expected time O(W/α) — the
/// baseline every other approximate algorithm improves on. `out` is
/// resized to n.
SolveStats MonteCarlo(const Graph& graph, NodeId source,
                      const ApproxOptions& options, Rng& rng,
                      std::vector<double>* out);

/// As MonteCarlo, but `out` must already be sized n and all-zero; the
/// O(n) assign() is skipped. Used by the api/ adapters together with a
/// SolverContext sparse reset.
///
/// Walks run in fixed-size blocks, each on an RNG stream derived from
/// (one draw of `rng`, block id); workers take contiguous block ranges
/// and their buffers merge in block order, so results are bit-identical
/// for every options.threads value (0 = ParallelThreadCount()).
///
/// `thread_scratch`, when non-null, lends the parallel path's per-thread
/// stop-count accumulators (zero-on-return contract, see
/// ThreadDenseBuffers) so a warm SolverContext pays their O(n·threads)
/// initialization once; nullptr allocates locally.
SolveStats MonteCarloInto(const Graph& graph, NodeId source,
                          const ApproxOptions& options, Rng& rng,
                          std::vector<double>* out,
                          ThreadDenseBuffers* thread_scratch = nullptr);

}  // namespace ppr

#endif  // PPR_APPROX_MONTE_CARLO_H_
