#ifndef PPR_APPROX_BIPPR_H_
#define PPR_APPROX_BIPPR_H_

#include "core/workspace.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace ppr {

/// Options for the bidirectional single-pair estimator.
struct BiPprOptions {
  double alpha = 0.2;
  /// Target relative accuracy for pairs with π(s,t) ≥ delta.
  double epsilon = 0.5;
  /// PPR magnitude threshold; 0 selects 1/n.
  double delta = 0.0;
  /// Backward-push residue threshold; 0 selects the balanced
  /// sqrt-tradeoff value epsilon * sqrt(delta · m / n / log n).
  double rmax = 0.0;
};

/// Result of a single-pair query.
struct BiPprResult {
  double estimate = 0.0;
  uint64_t walks = 0;
  uint64_t backward_pushes = 0;
  double seconds = 0.0;
};

/// BiPPR (Lofgren et al., WSDM'16) — the bidirectional single-pair
/// baseline from the paper's related work (§7). Estimates π(s, t) by
/// combining a Backward Push from t (giving reserve/residue vectors)
/// with forward random walks from s:
///
///     π(s, t) = reserve[s] + E_{v ~ walk from s}[ residue[v] ]
///
/// which is an unbiased identity; the walks estimate the expectation.
/// Requires in-adjacency and a dead-end-free graph (see BackwardPush).
BiPprResult BiPpr(const Graph& graph, NodeId source, NodeId target,
                  const BiPprOptions& options, Rng& rng);

}  // namespace ppr

#endif  // PPR_APPROX_BIPPR_H_
