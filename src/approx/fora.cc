#include "approx/fora.h"

#include <cmath>

#include "approx/random_walk.h"
#include "core/forward_push.h"
#include "util/timer.h"

namespace ppr {

double ForaRmax(const Graph& graph, uint64_t walk_count_w) {
  return 1.0 / std::sqrt(static_cast<double>(graph.num_edges()) *
                         static_cast<double>(walk_count_w));
}

SolveStats Fora(const Graph& graph, NodeId source,
                const ApproxOptions& options, Rng& rng,
                std::vector<double>* out, const WalkIndex* index) {
  PPR_CHECK(source < graph.num_nodes());
  const NodeId n = graph.num_nodes();
  const uint64_t w =
      ChernoffWalkCount(n, options.epsilon, options.ResolvedMu(n));

  Timer timer;
  SolveStats stats;

  // Phase 1: forward push.
  PprEstimate estimate;
  ForwardPushOptions push_options;
  push_options.alpha = options.alpha;
  push_options.rmax = ForaRmax(graph, w);
  SolveStats push_stats =
      FifoForwardPush(graph, source, push_options, &estimate);
  stats.push_operations = push_stats.push_operations;
  stats.edge_pushes = push_stats.edge_pushes;
  stats.final_rsum = push_stats.final_rsum;

  // Phase 2: Monte-Carlo refinement of the leftover residues.
  *out = estimate.reserve;
  const double dw = static_cast<double>(w);
  for (NodeId v = 0; v < n; ++v) {
    const double r = estimate.residue[v];
    if (r <= 0.0) continue;
    const uint64_t wv = static_cast<uint64_t>(std::ceil(r * dw));
    const double contribution = r / static_cast<double>(wv);
    uint64_t served = 0;
    if (index != nullptr) {
      auto endpoints = index->Endpoints(v);
      served = std::min<uint64_t>(wv, endpoints.size());
      for (uint64_t i = 0; i < served; ++i) {
        (*out)[endpoints[i]] += contribution;
      }
    }
    for (uint64_t i = served; i < wv; ++i) {
      WalkOutcome outcome = RandomWalk(graph, v, options.alpha, rng);
      (*out)[outcome.stop] += contribution;
      stats.walk_steps += outcome.steps;
    }
    stats.random_walks += wv;
  }

  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace ppr
