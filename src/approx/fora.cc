#include "approx/fora.h"

#include <cmath>

#include "approx/residue_walks.h"
#include "core/forward_push.h"
#include "util/timer.h"

namespace ppr {

double ForaRmax(const Graph& graph, uint64_t walk_count_w) {
  return 1.0 / std::sqrt(static_cast<double>(graph.num_edges()) *
                         static_cast<double>(walk_count_w));
}

SolveStats ForaInto(const Graph& graph, NodeId source,
                    const ApproxOptions& options, Rng& rng,
                    PprEstimate* estimate, std::vector<double>* out,
                    WalkIndexView index, FifoQueue* queue) {
  PPR_CHECK(source < graph.num_nodes());
  const NodeId n = graph.num_nodes();
  PPR_CHECK(out->size() == n);
  PPR_CHECK(estimate->reserve.size() == n);
  PPR_CHECK(estimate->residue.size() == n);
  const uint64_t w =
      ChernoffWalkCount(n, options.epsilon, options.ResolvedMu(n));

  Timer timer;
  SolveStats stats;

  // Phase 1: forward push.
  ForwardPushOptions push_options;
  push_options.alpha = options.alpha;
  push_options.rmax = ForaRmax(graph, w);
  push_options.assume_initialized = true;
  push_options.cancel = options.cancel;
  SolveStats push_stats = FifoForwardPush(graph, source, push_options,
                                          estimate, /*trace=*/nullptr, queue);
  stats.push_operations = push_stats.push_operations;
  stats.edge_pushes = push_stats.edge_pushes;
  stats.final_rsum = push_stats.final_rsum;
  if (options.cancel != nullptr && options.cancel->ShouldStop()) {
    stats.seconds = timer.ElapsedSeconds();
    return stats;  // partial; the Solve wrapper converts to a Status
  }

  // Phase 2: Monte-Carlo refinement of the leftover residues.
  SeedScoresFromReserve(estimate->reserve, out);
  ResidueWalkPhase(graph, estimate->residue, w, options.alpha, rng, index, out,
                   &stats, options.threads, options.cancel);

  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

SolveStats Fora(const Graph& graph, NodeId source,
                const ApproxOptions& options, Rng& rng,
                std::vector<double>* out, WalkIndexView index) {
  PPR_CHECK(source < graph.num_nodes());
  const NodeId n = graph.num_nodes();
  out->assign(n, 0.0);
  PprEstimate estimate;
  estimate.Reset(n, source);
  return ForaInto(graph, source, options, rng, &estimate, out, index);
}

}  // namespace ppr
