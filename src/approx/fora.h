#ifndef PPR_APPROX_FORA_H_
#define PPR_APPROX_FORA_H_

#include <vector>

#include "approx/monte_carlo.h"
#include "approx/walk_index.h"
#include "core/workspace.h"
#include "graph/graph.h"
#include "util/fifo_queue.h"
#include "util/rng.h"

namespace ppr {

/// FORA (Wang et al., KDD'17) — the state-of-the-art two-phase framework
/// the paper improves on, reimplemented as the comparison baseline.
///
/// Phase 1 runs FIFO-FwdPush with r_max = 1/sqrt(m·W) (the value that
/// balances the push cost 1/r_max against the walk cost m·r_max·W).
/// Phase 2 refines every node v with leftover residue by W_v =
/// ceil(r(s,v)·W) α-walks, each contributing r(s,v)/W_v to the estimate
/// of its stop node (Equation (14)). Expected time O(sqrt(m·W)), i.e.
/// O(n·log n / ε) on scale-free graphs.
///
/// If `index` is non-null (FORA+), phase 2 consumes pre-generated walk
/// endpoints instead of simulating; when the index holds fewer than W_v
/// endpoints for some node (it was built for a larger ε), the shortfall
/// is topped up with fresh walks — the ε-dependence weakness §6.1
/// discusses.
SolveStats Fora(const Graph& graph, NodeId source, const ApproxOptions& options,
                Rng& rng, std::vector<double>* out,
                WalkIndexView index = nullptr);

/// Workspace variant — the single composition both Fora() and the api/
/// "fora" adapter run. `estimate` must hold the canonical start state
/// and `out` must be all-zero, both sized n (see SpeedPprInto).
SolveStats ForaInto(const Graph& graph, NodeId source,
                    const ApproxOptions& options, Rng& rng,
                    PprEstimate* estimate, std::vector<double>* out,
                    WalkIndexView index = nullptr,
                    FifoQueue* queue = nullptr);

/// The r_max FORA uses for a given W: 1/sqrt(m·W).
double ForaRmax(const Graph& graph, uint64_t walk_count_w);

}  // namespace ppr

#endif  // PPR_APPROX_FORA_H_
