#ifndef PPR_EVAL_BATCH_H_
#define PPR_EVAL_BATCH_H_

#include <vector>

#include "approx/monte_carlo.h"
#include "approx/walk_index.h"
#include "core/power_push.h"
#include "graph/graph.h"

namespace ppr {

/// Multi-source query batches — the workload of the embedding
/// applications (§1: HOPE/STRAP/Verse compute PPR rows for *every* node).
/// Sources are processed in parallel across threads; each source gets an
/// independent RNG stream derived from (seed, source index), so results
/// are identical for any thread count.

/// High-precision rows via PowerPush. Returns one reserve vector per
/// source, aligned with `sources`.
std::vector<std::vector<double>> BatchPowerPush(
    const Graph& graph, const std::vector<NodeId>& sources,
    const PowerPushOptions& options);

/// Approximate rows via SpeedPPR (optionally indexed).
std::vector<std::vector<double>> BatchSpeedPpr(
    const Graph& graph, const std::vector<NodeId>& sources,
    const ApproxOptions& options, uint64_t seed,
    const WalkIndex* index = nullptr);

}  // namespace ppr

#endif  // PPR_EVAL_BATCH_H_
