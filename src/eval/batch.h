#ifndef PPR_EVAL_BATCH_H_
#define PPR_EVAL_BATCH_H_

#include <string_view>
#include <vector>

#include "api/query.h"
#include "api/solver.h"
#include "approx/monte_carlo.h"
#include "approx/walk_index.h"
#include "core/power_push.h"
#include "graph/graph.h"
#include "util/status.h"

namespace ppr {

/// Multi-source query batches — the workload of the embedding
/// applications (§1: HOPE/STRAP/Verse compute PPR rows for *every* node).
/// Sources are processed in parallel across threads; each source gets an
/// independent RNG stream derived from (seed, source index), so results
/// are identical for any thread count.

/// Unified batch driver: answers `base` (with source replaced per entry)
/// for every source through one prepared Solver. Each worker thread owns
/// a SolverContext, so consecutive queries in a chunk reuse the
/// workspace with sparse resets; the context is reseeded per source from
/// (seed, index) for thread-count-independent results. The solver must
/// be Prepare()d, and its Solve must be safe to call concurrently — keep
/// all per-query mutable state in the SolverContext, as the built-in
/// adapters do. Solve failures are fatal (PPR_CHECK).
std::vector<std::vector<double>> BatchSolve(Solver& solver,
                                            const std::vector<NodeId>& sources,
                                            const PprQuery& base = {},
                                            uint64_t seed = 1);

/// As above, but creates the solver from a registry spec string (e.g.
/// "speedppr:eps=0.3") and prepares it on `graph`. Returns the spec /
/// prepare error instead of rows when the spec is invalid.
Result<std::vector<std::vector<double>>> BatchSolve(
    const Graph& graph, std::string_view solver_spec,
    const std::vector<NodeId>& sources, const PprQuery& base = {},
    uint64_t seed = 1);

/// High-precision rows via PowerPush. Returns one reserve vector per
/// source, aligned with `sources`. Routed through BatchSolve; the
/// ablation flags (use_queue_phase / use_epochs) keep a direct fallback.
std::vector<std::vector<double>> BatchPowerPush(
    const Graph& graph, const std::vector<NodeId>& sources,
    const PowerPushOptions& options);

/// Approximate rows via SpeedPPR (optionally indexed). Routed through
/// BatchSolve when no external index is supplied; an explicit `index`
/// keeps the direct path (the registry's "speedppr-index" builds and
/// owns its own).
std::vector<std::vector<double>> BatchSpeedPpr(
    const Graph& graph, const std::vector<NodeId>& sources,
    const ApproxOptions& options, uint64_t seed,
    const WalkIndex* index = nullptr);

}  // namespace ppr

#endif  // PPR_EVAL_BATCH_H_
