#ifndef PPR_EVAL_GROUND_TRUTH_H_
#define PPR_EVAL_GROUND_TRUTH_H_

#include <vector>

#include "graph/graph.h"

namespace ppr {

/// Computes the ground-truth PPR vector the way the paper does for
/// Figure 8: PowerPush driven to the smallest λ that double precision can
/// still resolve. λ = 1e-15 leaves every per-node error far below any
/// quantity the experiments compare against (approximate errors are
/// ≥ 1e-4, high-precision λ is 1e-8).
std::vector<double> ComputeGroundTruth(const Graph& graph, NodeId source,
                                       double alpha = 0.2,
                                       double lambda = 1e-15);

}  // namespace ppr

#endif  // PPR_EVAL_GROUND_TRUTH_H_
