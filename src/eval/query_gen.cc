#include "eval/query_gen.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"
#include "util/rng.h"

namespace ppr {

std::vector<NodeId> SampleQuerySources(const Graph& graph, size_t count,
                                       uint64_t seed) {
  const NodeId n = graph.num_nodes();
  PPR_CHECK(n > 0);
  count = std::min<size_t>(count, n);
  Rng rng(seed);
  std::unordered_set<NodeId> chosen;
  std::vector<NodeId> sources;
  sources.reserve(count);
  while (sources.size() < count) {
    NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (chosen.insert(v).second) sources.push_back(v);
  }
  return sources;
}

namespace {

/// Uniform for skew 0; id ~ n·U^(1+skew) otherwise, concentrating mass
/// on low ids (a smooth stand-in for preferential attachment).
NodeId SampleSkewedNode(NodeId n, double skew, Rng& rng) {
  if (skew <= 0.0) return static_cast<NodeId>(rng.NextBounded(n));
  const double u = rng.NextDouble();
  NodeId v = static_cast<NodeId>(static_cast<double>(n) *
                                 std::pow(u, 1.0 + skew));
  return v < n ? v : n - 1;
}

}  // namespace

Result<UpdateBatch> GenerateUpdateStream(const Graph& base,
                                         const UpdateWorkloadOptions& options) {
  const NodeId n = base.num_nodes();
  PPR_CHECK(n >= 2) << "update streams need at least two nodes";
  if (options.count == 0 ||
      options.count > UpdateWorkloadOptions::kMaxUpdateCount) {
    return Status::InvalidArgument(
        "update workload count must be in [1, " +
        std::to_string(UpdateWorkloadOptions::kMaxUpdateCount) + "]; got " +
        std::to_string(options.count));
  }
  if (!std::isfinite(options.skew) || options.skew < 0.0 ||
      options.skew > UpdateWorkloadOptions::kMaxUpdateSkew) {
    return Status::InvalidArgument(
        "update workload skew must be finite and in [0, " +
        std::to_string(UpdateWorkloadOptions::kMaxUpdateSkew) + "]; got " +
        std::to_string(options.skew));
  }
  const double add_fraction = options.node_add_fraction;
  const double remove_fraction = options.node_remove_fraction;
  if (!std::isfinite(add_fraction) || add_fraction < 0.0 ||
      !std::isfinite(remove_fraction) || remove_fraction < 0.0 ||
      add_fraction + remove_fraction > 1.0) {
    return Status::InvalidArgument(
        "node_add_fraction and node_remove_fraction must be finite, "
        "non-negative, and sum to at most 1");
  }
  const double delete_fraction =
      std::clamp(options.delete_fraction, 0.0, 1.0);
  Rng rng(options.seed);

  // The live multiset of edges, so deletions always hit an existing one
  // — including edges this stream inserted earlier.
  std::vector<Edge> live;
  live.reserve(base.num_edges() + options.count);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId w : base.OutNeighbors(v)) live.push_back({v, w});
  }

  // Node-op bookkeeping. Only touched when a node fraction is set, so
  // fraction-0 streams replay the exact pre-node-op RNG sequence.
  NodeId running_n = n;
  std::unordered_set<NodeId> removed;

  UpdateBatch batch;
  batch.updates.reserve(options.count);
  while (batch.size() < options.count) {
    if (add_fraction + remove_fraction > 0.0) {
      const double r = rng.NextDouble();
      if (r < add_fraction) {
        batch.AddNode();
        ++running_n;
        continue;
      }
      if (r < add_fraction + remove_fraction) {
        // Keep at least two nodes alive (the generator's own floor for
        // edge endpoints); when the roll cannot be honored, the draw
        // falls through to an edge update instead of looping.
        if (running_n - removed.size() > 2) {
          NodeId u;
          do {
            u = static_cast<NodeId>(rng.NextBounded(running_n));
          } while (removed.count(u) != 0);
          live.erase(std::remove_if(live.begin(), live.end(),
                                    [u](const Edge& e) {
                                      return e.src == u || e.dst == u;
                                    }),
                     live.end());
          removed.insert(u);
          batch.RemoveNode(u);
          continue;
        }
      }
    }
    if (!live.empty() && rng.NextBernoulli(delete_fraction)) {
      const size_t i = static_cast<size_t>(rng.NextBounded(live.size()));
      const Edge edge = live[i];
      live[i] = live.back();
      live.pop_back();
      batch.Delete(edge.src, edge.dst);
    } else if (delete_fraction >= 1.0) {
      // A pure-deletion workload just exhausted the live edges. Padding
      // with insertions would smuggle updates the caller excluded, and
      // re-rolling the (always-delete) coin would loop forever — stop
      // with the stream built so far.
      PPR_LOG(Warning) << "update stream truncated at " << batch.size()
                       << " of " << options.count
                       << " updates: delete_fraction=1 and no deletable "
                          "edges remain";
      break;
    } else {
      const NodeId u = SampleSkewedNode(running_n, options.skew, rng);
      const NodeId w = SampleSkewedNode(running_n, options.skew, rng);
      if (u == w) continue;  // resample instead of biasing toward u±1
      if (removed.count(u) != 0 || removed.count(w) != 0) continue;
      live.push_back({u, w});
      batch.Insert(u, w);
    }
  }
  return batch;
}

}  // namespace ppr
