#include "eval/query_gen.h"

#include <unordered_set>

#include "util/logging.h"
#include "util/rng.h"

namespace ppr {

std::vector<NodeId> SampleQuerySources(const Graph& graph, size_t count,
                                       uint64_t seed) {
  const NodeId n = graph.num_nodes();
  PPR_CHECK(n > 0);
  count = std::min<size_t>(count, n);
  Rng rng(seed);
  std::unordered_set<NodeId> chosen;
  std::vector<NodeId> sources;
  sources.reserve(count);
  while (sources.size() < count) {
    NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (chosen.insert(v).second) sources.push_back(v);
  }
  return sources;
}

}  // namespace ppr
