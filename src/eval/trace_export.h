#ifndef PPR_EVAL_TRACE_EXPORT_H_
#define PPR_EVAL_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "core/trace.h"
#include "util/status.h"

namespace ppr {

/// A labeled convergence series — one plotted curve of Figures 5/6.
struct TraceSeries {
  std::string label;
  std::vector<ConvergenceTrace::Point> points;
};

/// Renders series to CSV ("label,seconds,updates,rsum" rows) so the
/// bench output can be re-plotted with external tooling. One row per
/// checkpoint; series are concatenated.
std::string TracesToCsv(const std::vector<TraceSeries>& series);

/// Writes TracesToCsv output to a file.
Status WriteTracesCsv(const std::string& path,
                      const std::vector<TraceSeries>& series);

/// Parses WriteTracesCsv output back (used by tests and by downstream
/// plotting scripts that want validation).
Result<std::vector<TraceSeries>> ReadTracesCsv(const std::string& path);

}  // namespace ppr

#endif  // PPR_EVAL_TRACE_EXPORT_H_
