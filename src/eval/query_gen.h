#ifndef PPR_EVAL_QUERY_GEN_H_
#define PPR_EVAL_QUERY_GEN_H_

#include <vector>

#include "graph/graph.h"

namespace ppr {

/// Samples `count` distinct query source nodes uniformly at random — the
/// paper's protocol ("30 query source nodes generated uniformly at
/// random"). Deterministic in (n, count, seed).
std::vector<NodeId> SampleQuerySources(const Graph& graph, size_t count,
                                       uint64_t seed = 7);

}  // namespace ppr

#endif  // PPR_EVAL_QUERY_GEN_H_
