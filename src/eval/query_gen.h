#ifndef PPR_EVAL_QUERY_GEN_H_
#define PPR_EVAL_QUERY_GEN_H_

#include <vector>

#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "util/status.h"

namespace ppr {

/// Samples `count` distinct query source nodes uniformly at random — the
/// paper's protocol ("30 query source nodes generated uniformly at
/// random"). Deterministic in (n, count, seed).
std::vector<NodeId> SampleQuerySources(const Graph& graph, size_t count,
                                       uint64_t seed = 7);

/// Shape of a synthetic edge-update stream for the evolving-graph
/// benches and tests (bench_fig6 staleness curves,
/// bench_extension_dynamic, ppr_cli --updates=synthetic:...).
struct UpdateWorkloadOptions {
  /// Number of updates in the stream. Must be in [1, kMaxUpdateCount].
  size_t count = 100;
  /// Fraction of updates that are deletions (of then-live edges); the
  /// rest are insertions. Clamped to [0, 1].
  double delete_fraction = 0.2;
  /// Endpoint skew for insertions: 0 = uniform; larger values bias both
  /// endpoints toward low node ids as id^-ish power law (datasets and
  /// order=degree layouts put hubs at low ids, so skew concentrates the
  /// update stream on hot rows). Must be finite and in
  /// [0, kMaxUpdateSkew].
  double skew = 0.0;
  /// Fraction of updates that add a fresh isolated node (kAddNode) /
  /// detach a live node (kRemoveNode). Both default to 0, and at 0 the
  /// generated stream is bit-identical to streams from before node ops
  /// existed (no extra RNG draws). Must be finite, in [0, 1], and sum
  /// to at most 1 with each other; the remaining probability mass goes
  /// to edge updates split by delete_fraction.
  double node_add_fraction = 0.0;
  double node_remove_fraction = 0.0;
  uint64_t seed = 13;

  /// Guard rails enforced with InvalidArgument: a count above this is a
  /// units mistake, not a workload; a skew above this collapses every
  /// endpoint draw onto node 0 (n·U^(1+skew) underflows) and NaN/inf
  /// would silently disable or absorb the bias.
  static constexpr size_t kMaxUpdateCount = 100'000'000;
  static constexpr double kMaxUpdateSkew = 64.0;
};

/// Generates a valid update stream against `base`: every deletion
/// targets an edge that exists at its point in the stream (edges the
/// stream itself inserted are fair game), insertions avoid self-loops
/// and never touch removed nodes, node removals target live nodes (the
/// generator keeps at least two alive), and the result passes
/// DynamicGraph::Validate on a graph equal to `base`. Deterministic in
/// (base, options). Out-of-bounds count/skew/node fractions return
/// InvalidArgument (see UpdateWorkloadOptions).
///
/// Degenerate workloads terminate instead of looping or padding: a
/// pure-deletion stream (delete_fraction = 1) on a graph that runs out
/// of deletable edges returns the shorter all-deletes stream it could
/// build, with a warning — never silent insertions the caller asked to
/// exclude.
Result<UpdateBatch> GenerateUpdateStream(const Graph& base,
                                         const UpdateWorkloadOptions& options);

}  // namespace ppr

#endif  // PPR_EVAL_QUERY_GEN_H_
