#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace ppr {

double L1Distance(std::span<const double> a, std::span<const double> b) {
  PPR_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

double L2Distance(std::span<const double> a, std::span<const double> b) {
  PPR_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

double MaxRelativeError(std::span<const double> estimate,
                        std::span<const double> truth, double threshold) {
  PPR_CHECK(estimate.size() == truth.size());
  double worst = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] < threshold || truth[i] <= 0.0) continue;
    worst = std::max(worst, std::fabs(estimate[i] - truth[i]) / truth[i]);
  }
  return worst;
}

std::vector<uint32_t> TopK(std::span<const double> values, size_t k) {
  k = std::min(k, values.size());
  std::vector<uint32_t> ids(values.size());
  std::iota(ids.begin(), ids.end(), 0);
  // Total order even in the presence of NaNs: descending by value, NaNs
  // after every number, equal values (and NaN pairs) broken ascending by
  // node id. A plain `values[a] > values[b]` comparator is not a strict
  // weak ordering once a NaN appears (NaN compares false against
  // everything), which makes partial_sort undefined; this one stays
  // deterministic for any input.
  std::partial_sort(ids.begin(), ids.begin() + k, ids.end(),
                    [&](uint32_t a, uint32_t b) {
                      const double va = values[a];
                      const double vb = values[b];
                      const bool nan_a = std::isnan(va);
                      const bool nan_b = std::isnan(vb);
                      if (nan_a != nan_b) return nan_b;
                      if (!nan_a && va != vb) return va > vb;
                      return a < b;
                    });
  ids.resize(k);
  return ids;
}

double PrecisionAtK(std::span<const double> estimate,
                    std::span<const double> truth, size_t k) {
  PPR_CHECK(estimate.size() == truth.size());
  if (k == 0) return 1.0;
  std::vector<uint32_t> est_top = TopK(estimate, k);
  std::vector<uint32_t> true_top = TopK(truth, k);
  std::sort(est_top.begin(), est_top.end());
  std::sort(true_top.begin(), true_top.end());
  std::vector<uint32_t> common;
  std::set_intersection(est_top.begin(), est_top.end(), true_top.begin(),
                        true_top.end(), std::back_inserter(common));
  return static_cast<double>(common.size()) /
         static_cast<double>(true_top.size());
}

}  // namespace ppr
