#include "eval/experiment.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "core/power_push.h"
#include "util/logging.h"
#include "util/string_utils.h"
#include "util/timer.h"

namespace ppr {

std::vector<NamedGraph> LoadBenchDatasets(double scale, size_t max_count) {
  const double env_scale = BenchScaleFromEnv();
  std::vector<std::string> filter;
  if (const char* env = std::getenv("PPR_BENCH_DATASETS")) {
    for (std::string_view piece : SplitAndTrim(env, ", ")) {
      filter.emplace_back(piece);
    }
  }

  std::vector<NamedGraph> result;
  for (const DatasetSpec& spec : PaperDatasets()) {
    if (!filter.empty() &&
        std::find(filter.begin(), filter.end(), spec.name) == filter.end() &&
        std::find(filter.begin(), filter.end(), spec.paper_name) ==
            filter.end()) {
      continue;
    }
    if (max_count != 0 && result.size() >= max_count) break;
    PPR_LOG(Info) << "generating " << spec.name << " (stand-in for "
                  << spec.paper_name << ") at scale " << scale * env_scale;
    result.push_back(
        {spec.name, spec.paper_name, MakeDataset(spec, scale * env_scale)});
  }
  return result;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  return values[mid];
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  // Out-of-range (or NaN) percentiles clamp instead of crashing: p < 0
  // and NaN behave as p = 0 (the sample minimum), p > 100 as p = 100
  // (the maximum). Harness code computes p from user-facing knobs, and
  // a slightly-off request should degrade to the nearest defined
  // percentile, not take the process down mid-report.
  if (!(p >= 0.0)) {
    p = 0.0;
  } else if (p > 100.0) {
    p = 100.0;
  }
  // Nearest-rank on the sorted sample: index ⌈p/100·n⌉-1, clamped. The
  // convention is simple and never interpolates beyond observed values —
  // right for latency reporting, where p99 should be a real latency.
  const size_t n = values.size();
  size_t rank = static_cast<size_t>(std::ceil(p / 100.0 * n));
  if (rank > 0) rank--;
  if (rank >= n) rank = n - 1;
  std::nth_element(values.begin(), values.begin() + rank, values.end());
  return values[rank];
}

std::vector<double> TimePerQuery(const std::vector<NodeId>& sources,
                                 const std::function<void(NodeId)>& fn) {
  std::vector<double> seconds;
  seconds.reserve(sources.size());
  for (NodeId s : sources) {
    Timer timer;
    fn(s);
    seconds.push_back(timer.ElapsedSeconds());
  }
  return seconds;
}

std::vector<double> TimePerQuery(Solver& solver, SolverContext& context,
                                 const std::vector<NodeId>& sources,
                                 const PprQuery& base) {
  std::vector<double> seconds;
  seconds.reserve(sources.size());
  PprResult result;
  for (NodeId s : sources) {
    PprQuery query = base;
    query.source = s;
    Timer timer;
    Status status = solver.Solve(query, context, &result);
    seconds.push_back(timer.ElapsedSeconds());
    PPR_CHECK(status.ok()) << status.ToString();
  }
  return seconds;
}

double HighPrecisionLambda(const Graph& graph) { return PaperLambda(graph); }

size_t BenchQueryCount(size_t default_count) {
  if (const char* env = std::getenv("PPR_BENCH_QUERIES")) {
    int v = std::atoi(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return default_count;
}

}  // namespace ppr
