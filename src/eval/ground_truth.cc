#include "eval/ground_truth.h"

#include "core/power_push.h"

namespace ppr {

std::vector<double> ComputeGroundTruth(const Graph& graph, NodeId source,
                                       double alpha, double lambda) {
  PowerPushOptions options;
  options.alpha = alpha;
  options.lambda = lambda;
  PprEstimate estimate;
  PowerPush(graph, source, options, &estimate);
  return std::move(estimate.reserve);
}

}  // namespace ppr
