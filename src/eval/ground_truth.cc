#include "eval/ground_truth.h"

#include <memory>

#include "api/context.h"
#include "api/registry.h"

namespace ppr {

std::vector<double> ComputeGroundTruth(const Graph& graph, NodeId source,
                                       double alpha, double lambda) {
  auto created = SolverRegistry::Global().Create("powerpush");
  PPR_CHECK(created.ok()) << created.status().ToString();
  std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
  Status prepared = solver->Prepare(graph);
  PPR_CHECK(prepared.ok()) << prepared.ToString();

  SolverContext context;
  PprQuery query;
  query.source = source;
  query.alpha = alpha;
  query.lambda = lambda;
  PprResult result;
  Status solved = solver->Solve(query, context, &result);
  PPR_CHECK(solved.ok()) << solved.ToString();
  return std::move(result.scores);
}

}  // namespace ppr
