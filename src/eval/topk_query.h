#ifndef PPR_EVAL_TOPK_QUERY_H_
#define PPR_EVAL_TOPK_QUERY_H_

#include <cstdint>
#include <vector>

#include "api/batch_solver.h"
#include "api/context.h"
#include "api/solver.h"
#include "approx/walk_index.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace ppr {

/// Options for the top-k SSPPR query layer.
struct TopKOptions {
  double alpha = 0.2;
  /// Initial relative error; each refinement round halves it.
  double initial_epsilon = 0.5;
  /// Floor below which refinement stops regardless of stability.
  double min_epsilon = 0.05;
  /// Rounds with an unchanged top-k set required to declare convergence.
  int stable_rounds = 2;
};

struct TopKResult {
  /// The k node ids in decreasing estimated-PPR order.
  std::vector<NodeId> nodes;
  /// Their estimates, aligned with `nodes`.
  std::vector<double> scores;
  /// ε at which the answer stabilized.
  double final_epsilon = 0.0;
  int rounds = 0;
  double seconds = 0.0;
};

/// Top-k PPR by iterative refinement: run SpeedPPR at geometrically
/// shrinking ε until the top-k *set* is stable across rounds (the
/// whole-distribution analogue of TopPPR's stop-when-separated rule —
/// §7 notes top-k methods are orthogonal to this paper, so we layer a
/// simple one over SpeedPPR rather than reimplement TopPPR's bounds).
/// The ε-independent SpeedPPR walk index makes the repeated calls cheap:
/// pass one via `index` and every round reuses it.
TopKResult TopKPpr(const Graph& graph, NodeId source, size_t k,
                   const TopKOptions& options, Rng& rng,
                   const WalkIndex* index = nullptr);

/// Solver-polymorphic variant: refines through *any* prepared
/// approximate solver (the per-round ε rides in PprQuery::epsilon). The
/// context keeps the workspace warm across rounds; reuse it across
/// queries for the full sparse-reset benefit.
TopKResult TopKPpr(Solver& solver, SolverContext& context, NodeId source,
                   size_t k, const TopKOptions& options);

/// Fused multi-source top-k: answers every source's top-k with one
/// SolveMany pass through a batch-configured solver (batch= > 0), so a
/// who-to-follow sweep over many users costs one cache pass over the
/// adjacency per fused block instead of one per user. Configure the
/// solver with topk_early=1 to let the kernel retire a source whose
/// top-k gap already exceeds its residual bound while the rest of the
/// block keeps pushing — the returned top-k *sets* are unchanged, only
/// the work shrinks. `query` carries the per-source knobs (alpha,
/// epsilon/lambda overrides); its source and top_k fields are filled
/// per entry. Results align with `sources`; a per-source failure
/// crashes (PPR_CHECK), matching the serial drivers' contract.
std::vector<TopKResult> TopKPprBatch(BatchSolver& solver,
                                     SolverContext& context,
                                     const std::vector<NodeId>& sources,
                                     size_t k, const PprQuery& query = {});

}  // namespace ppr

#endif  // PPR_EVAL_TOPK_QUERY_H_
