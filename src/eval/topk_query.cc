#include "eval/topk_query.h"

#include <algorithm>

#include "approx/speedppr.h"
#include "eval/metrics.h"
#include "util/timer.h"

namespace ppr {

TopKResult TopKPpr(const Graph& graph, NodeId source, size_t k,
                   const TopKOptions& options, Rng& rng,
                   const WalkIndex* index) {
  PPR_CHECK(source < graph.num_nodes());
  PPR_CHECK(k > 0);
  PPR_CHECK(options.initial_epsilon >= options.min_epsilon);
  PPR_CHECK(options.min_epsilon > 0.0);
  k = std::min<size_t>(k, graph.num_nodes());
  Timer timer;

  TopKResult result;
  std::vector<NodeId> previous_top;
  int stable = 0;
  double epsilon = options.initial_epsilon;
  std::vector<double> estimate;

  for (;;) {
    ApproxOptions approx;
    approx.alpha = options.alpha;
    approx.epsilon = epsilon;
    SpeedPpr(graph, source, approx, rng, &estimate, index);
    result.rounds++;

    std::vector<NodeId> top = TopK(estimate, k);
    std::vector<NodeId> sorted_top = top;
    std::sort(sorted_top.begin(), sorted_top.end());
    if (sorted_top == previous_top) {
      stable++;
    } else {
      stable = 0;
      previous_top = std::move(sorted_top);
    }

    const bool converged = stable >= options.stable_rounds - 1;
    const bool at_floor = epsilon <= options.min_epsilon;
    if (converged || at_floor) {
      result.nodes = std::move(top);
      result.scores.reserve(k);
      for (NodeId v : result.nodes) result.scores.push_back(estimate[v]);
      result.final_epsilon = epsilon;
      break;
    }
    epsilon = std::max(options.min_epsilon, epsilon / 2.0);
  }

  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace ppr
