#include "eval/topk_query.h"

#include <algorithm>
#include <functional>

#include "approx/speedppr.h"
#include "eval/metrics.h"
#include "util/timer.h"

namespace ppr {

namespace {

/// The shared refinement loop: run `solve_at(eps)` at geometrically
/// shrinking ε until the top-k *set* is stable across rounds (the
/// whole-distribution analogue of TopPPR's stop-when-separated rule —
/// §7 notes top-k methods are orthogonal to this paper, so we layer a
/// simple one over any approximate solver rather than reimplement
/// TopPPR's bounds).
TopKResult RefineTopK(
    size_t k, const TopKOptions& options,
    const std::function<const std::vector<double>&(double eps)>& solve_at) {
  PPR_CHECK(k > 0);
  PPR_CHECK(options.initial_epsilon >= options.min_epsilon);
  PPR_CHECK(options.min_epsilon > 0.0);
  Timer timer;

  TopKResult result;
  std::vector<NodeId> previous_top;
  int stable = 0;
  double epsilon = options.initial_epsilon;

  for (;;) {
    const std::vector<double>& estimate = solve_at(epsilon);
    result.rounds++;

    std::vector<NodeId> top = TopK(estimate, k);
    std::vector<NodeId> sorted_top = top;
    std::sort(sorted_top.begin(), sorted_top.end());
    if (sorted_top == previous_top) {
      stable++;
    } else {
      stable = 0;
      previous_top = std::move(sorted_top);
    }

    const bool converged = stable >= options.stable_rounds - 1;
    const bool at_floor = epsilon <= options.min_epsilon;
    if (converged || at_floor) {
      result.nodes = std::move(top);
      result.scores.reserve(k);
      for (NodeId v : result.nodes) result.scores.push_back(estimate[v]);
      result.final_epsilon = epsilon;
      break;
    }
    epsilon = std::max(options.min_epsilon, epsilon / 2.0);
  }

  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace

TopKResult TopKPpr(const Graph& graph, NodeId source, size_t k,
                   const TopKOptions& options, Rng& rng,
                   const WalkIndex* index) {
  PPR_CHECK(source < graph.num_nodes());
  k = std::min<size_t>(k, graph.num_nodes());
  std::vector<double> estimate;
  return RefineTopK(k, options,
                    [&](double eps) -> const std::vector<double>& {
                      ApproxOptions approx;
                      approx.alpha = options.alpha;
                      approx.epsilon = eps;
                      SpeedPpr(graph, source, approx, rng, &estimate, index);
                      return estimate;
                    });
}

std::vector<TopKResult> TopKPprBatch(BatchSolver& solver,
                                     SolverContext& context,
                                     const std::vector<NodeId>& sources,
                                     size_t k, const PprQuery& query) {
  PPR_CHECK(solver.graph() != nullptr) << "solver not Prepare()d";
  PPR_CHECK(k > 0);
  k = std::min<size_t>(k, solver.graph()->num_nodes());

  std::vector<PprQuery> queries(sources.size(), query);
  for (size_t i = 0; i < sources.size(); ++i) {
    queries[i].source = sources[i];
    queries[i].top_k = k;
  }
  std::vector<PprResult> results;
  std::vector<Status> statuses;
  const Status status = solver.SolveMany(queries, context, &results,
                                         &statuses);
  PPR_CHECK(status.ok()) << status.ToString();

  std::vector<TopKResult> out(sources.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    TopKResult& r = out[i];
    r.nodes = std::move(results[i].top_nodes);
    r.scores.reserve(r.nodes.size());
    for (NodeId v : r.nodes) r.scores.push_back(results[i].scores[v]);
    r.final_epsilon = queries[i].epsilon;
    r.rounds = 1;
    r.seconds = results[i].stats.seconds;
  }
  return out;
}

TopKResult TopKPpr(Solver& solver, SolverContext& context, NodeId source,
                   size_t k, const TopKOptions& options) {
  PPR_CHECK(solver.graph() != nullptr) << "solver not Prepare()d";
  k = std::min<size_t>(k, solver.graph()->num_nodes());
  PprResult round;
  return RefineTopK(k, options,
                    [&](double eps) -> const std::vector<double>& {
                      PprQuery query;
                      query.source = source;
                      query.alpha = options.alpha;
                      query.epsilon = eps;
                      Status status = solver.Solve(query, context, &round);
                      PPR_CHECK(status.ok()) << status.ToString();
                      return round.scores;
                    });
}

}  // namespace ppr
