#ifndef PPR_EVAL_METRICS_H_
#define PPR_EVAL_METRICS_H_

#include <cstdint>
#include <span>
#include <vector>

namespace ppr {

/// ‖a − b‖₁ — the paper's high-precision error measure.
double L1Distance(std::span<const double> a, std::span<const double> b);

/// ‖a − b‖₂ — BePI's convergence measure (§8.1).
double L2Distance(std::span<const double> a, std::span<const double> b);

/// max over {v : truth[v] ≥ threshold} of |estimate[v] − truth[v]| /
/// truth[v] — the approximate-query guarantee metric (§2). Returns 0 for
/// an empty qualifying set.
double MaxRelativeError(std::span<const double> estimate,
                        std::span<const double> truth, double threshold);

/// Fraction of the true top-k (by PPR) recovered in the estimated top-k.
/// Ties broken by node id, matching common PPR evaluation practice.
double PrecisionAtK(std::span<const double> estimate,
                    std::span<const double> truth, size_t k);

/// Indices of the k largest values under a deterministic total order:
/// descending by value, equal values broken by lower id first, NaNs
/// ordered after every number (and among themselves by id). The same
/// input always yields the same ids, NaN or not.
std::vector<uint32_t> TopK(std::span<const double> values, size_t k);

}  // namespace ppr

#endif  // PPR_EVAL_METRICS_H_
