#include "eval/trace_export.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/string_utils.h"

namespace ppr {

std::string TracesToCsv(const std::vector<TraceSeries>& series) {
  std::ostringstream out;
  out << "label,seconds,updates,rsum\n";
  char buf[128];
  for (const TraceSeries& s : series) {
    for (const auto& p : s.points) {
      std::snprintf(buf, sizeof(buf), "%s,%.9f,%" PRIu64 ",%.17g\n",
                    s.label.c_str(), p.seconds, p.updates, p.rsum);
      out << buf;
    }
  }
  return out.str();
}

Status WriteTracesCsv(const std::string& path,
                      const std::vector<TraceSeries>& series) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << TracesToCsv(series);
  out.flush();
  if (!out) return Status::IOError("write failed on " + path);
  return Status::OK();
}

Result<std::vector<TraceSeries>> ReadTracesCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line) || line != "label,seconds,updates,rsum") {
    return Status::Corruption(path + ": bad CSV header");
  }
  std::vector<TraceSeries> series;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto fields = SplitAndTrim(line, ",");
    if (fields.size() != 4) {
      return Status::Corruption(path + ":" + std::to_string(line_no) +
                                ": expected 4 fields");
    }
    const std::string label(fields[0]);
    ConvergenceTrace::Point point;
    point.seconds = std::atof(std::string(fields[1]).c_str());
    uint64_t updates = 0;
    if (!ParseUint64(fields[2], &updates)) {
      return Status::Corruption(path + ":" + std::to_string(line_no) +
                                ": malformed updates");
    }
    point.updates = updates;
    point.rsum = std::atof(std::string(fields[3]).c_str());
    if (series.empty() || series.back().label != label) {
      series.push_back({label, {}});
    }
    series.back().points.push_back(point);
  }
  return series;
}

}  // namespace ppr
