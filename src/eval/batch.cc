#include "eval/batch.h"

#include "approx/speedppr.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace ppr {

std::vector<std::vector<double>> BatchPowerPush(
    const Graph& graph, const std::vector<NodeId>& sources,
    const PowerPushOptions& options) {
  std::vector<std::vector<double>> rows(sources.size());
  // Sources are few but heavy: grain=1 lets even a handful of queries
  // spread across threads.
  ParallelFor(
      0, sources.size(),
      [&](uint64_t lo, uint64_t hi, unsigned) {
        PprEstimate estimate;
        for (uint64_t i = lo; i < hi; ++i) {
          PowerPush(graph, sources[i], options, &estimate);
          rows[i] = estimate.reserve;
        }
      },
      /*grain=*/1);
  return rows;
}

std::vector<std::vector<double>> BatchSpeedPpr(
    const Graph& graph, const std::vector<NodeId>& sources,
    const ApproxOptions& options, uint64_t seed, const WalkIndex* index) {
  std::vector<std::vector<double>> rows(sources.size());
  ParallelFor(
      0, sources.size(),
      [&](uint64_t lo, uint64_t hi, unsigned) {
        for (uint64_t i = lo; i < hi; ++i) {
          Rng rng(SplitMix64(seed ^ (i * 0xbf58476d1ce4e5b9ULL)).Next());
          SpeedPpr(graph, sources[i], options, rng, &rows[i], index);
        }
      },
      /*grain=*/1);
  return rows;
}

}  // namespace ppr
