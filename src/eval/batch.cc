#include "eval/batch.h"

#include <string>

#include "api/context.h"
#include "api/registry.h"
#include "approx/speedppr.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace ppr {

namespace {

/// The batch seeding convention: stream i is derived from (seed, i) so
/// any work partition produces the same rows.
uint64_t SourceSeed(uint64_t seed, uint64_t i) {
  return SplitMix64(seed ^ (i * 0xbf58476d1ce4e5b9ULL)).Next();
}

}  // namespace

std::vector<std::vector<double>> BatchSolve(Solver& solver,
                                            const std::vector<NodeId>& sources,
                                            const PprQuery& base,
                                            uint64_t seed) {
  std::vector<std::vector<double>> rows(sources.size());
  // Sources are few but heavy: grain=1 lets even a handful of queries
  // spread across threads. One context per chunk keeps the workspace
  // warm across that chunk's queries.
  ParallelFor(
      0, sources.size(),
      [&](uint64_t lo, uint64_t hi, unsigned) {
        SolverContext context;
        PprResult result;
        for (uint64_t i = lo; i < hi; ++i) {
          context.Reseed(SourceSeed(seed, i));
          PprQuery query = base;
          query.source = sources[i];
          Status status = solver.Solve(query, context, &result);
          PPR_CHECK(status.ok())
              << "batch solve failed on source " << sources[i] << ": "
              << status.ToString();
          rows[i] = std::move(result.scores);
        }
      },
      /*grain=*/1);
  return rows;
}

Result<std::vector<std::vector<double>>> BatchSolve(
    const Graph& graph, std::string_view solver_spec,
    const std::vector<NodeId>& sources, const PprQuery& base, uint64_t seed) {
  auto created = SolverRegistry::Global().Create(solver_spec);
  if (!created.ok()) return created.status();
  std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
  PPR_RETURN_IF_ERROR(solver->Prepare(graph));
  return BatchSolve(*solver, sources, base, seed);
}

std::vector<std::vector<double>> BatchPowerPush(
    const Graph& graph, const std::vector<NodeId>& sources,
    const PowerPushOptions& options) {
  const PowerPushOptions defaults;
  if (options.use_queue_phase && options.use_epochs &&
      options.epoch_num == defaults.epoch_num &&
      options.scan_threshold_fraction == defaults.scan_threshold_fraction &&
      !options.assume_initialized) {
    // alpha/lambda ride in the typed query; the remaining knobs are at
    // their defaults, so the bare spec suffices (formatting doubles
    // into a spec string would be LC_NUMERIC-fragile).
    PprQuery base;
    base.alpha = options.alpha;
    base.lambda = options.lambda;
    auto rows = BatchSolve(graph, "powerpush", sources, base);
    PPR_CHECK(rows.ok()) << rows.status().ToString();
    return std::move(rows).ValueOrDie();
  }
  // Non-default knobs (ablation switches, epoch/scan tuning) take the
  // direct path: typed options in, typed call out.
  std::vector<std::vector<double>> rows(sources.size());
  ParallelFor(
      0, sources.size(),
      [&](uint64_t lo, uint64_t hi, unsigned) {
        PprEstimate estimate;
        for (uint64_t i = lo; i < hi; ++i) {
          PowerPush(graph, sources[i], options, &estimate);
          rows[i] = estimate.reserve;
        }
      },
      /*grain=*/1);
  return rows;
}

std::vector<std::vector<double>> BatchSpeedPpr(
    const Graph& graph, const std::vector<NodeId>& sources,
    const ApproxOptions& options, uint64_t seed, const WalkIndex* index) {
  if (index == nullptr) {
    PprQuery base;
    base.alpha = options.alpha;
    base.epsilon = options.epsilon;
    base.mu = options.mu;
    auto rows = BatchSolve(graph, "speedppr", sources, base, seed);
    PPR_CHECK(rows.ok()) << rows.status().ToString();
    return std::move(rows).ValueOrDie();
  }
  // An externally-owned walk index keeps the direct path; the registry
  // variant ("speedppr-index") builds and owns its own.
  std::vector<std::vector<double>> rows(sources.size());
  ParallelFor(
      0, sources.size(),
      [&](uint64_t lo, uint64_t hi, unsigned) {
        for (uint64_t i = lo; i < hi; ++i) {
          Rng rng(SourceSeed(seed, i));
          SpeedPpr(graph, sources[i], options, rng, &rows[i], index);
        }
      },
      /*grain=*/1);
  return rows;
}

}  // namespace ppr
