#ifndef PPR_EVAL_EXPERIMENT_H_
#define PPR_EVAL_EXPERIMENT_H_

#include <functional>
#include <string>
#include <vector>

#include "api/context.h"
#include "api/query.h"
#include "api/solver.h"
#include "graph/datasets.h"
#include "graph/graph.h"

namespace ppr {

/// A materialized bench dataset.
struct NamedGraph {
  std::string name;        ///< e.g. "dblp-sim"
  std::string paper_name;  ///< e.g. "DBLP"
  Graph graph;
};

/// Materializes the six paper stand-ins at the given scale (multiplied by
/// PPR_BENCH_SCALE). If PPR_BENCH_DATASETS is set to a comma-separated
/// list of names, only those are produced — handy for quick iterations.
/// `max_count` (0 = all) truncates the list for expensive benches.
std::vector<NamedGraph> LoadBenchDatasets(double scale = 1.0,
                                          size_t max_count = 0);

/// Mean and median of a sample (seconds, errors, ...).
double Mean(const std::vector<double>& values);
double Median(std::vector<double> values);

/// Nearest-rank percentile of a sample — the latency reporter for the
/// serve path (p=50/p=99 in bench_serve and ppr_cli --serve). Defined
/// for every input: an empty sample reports 0.0, p is clamped into
/// [0, 100] (NaN behaves as 0), p=0 is the sample minimum and p=100
/// the maximum.
double Percentile(std::vector<double> values, double p);

/// Times `fn` over each source and returns per-source seconds.
std::vector<double> TimePerQuery(const std::vector<NodeId>& sources,
                                 const std::function<void(NodeId)>& fn);

/// Times one prepared Solver over each source (base.source replaced per
/// entry) on a warm context — the registry-driven benches' workhorse.
/// Solve failures are fatal.
std::vector<double> TimePerQuery(Solver& solver, SolverContext& context,
                                 const std::vector<NodeId>& sources,
                                 const PprQuery& base = {});

/// Bench-wide query count: the paper's 30 sources, scaled down via
/// PPR_BENCH_QUERIES if set.
size_t BenchQueryCount(size_t default_count = 5);

/// The paper's high-precision λ, min(1e-8, 1/m) — re-exported from
/// core/PaperLambda so registry-driven benches need no algorithm
/// headers. Matches the "powerpush" solver's unset-lambda default.
double HighPrecisionLambda(const Graph& graph);

}  // namespace ppr

#endif  // PPR_EVAL_EXPERIMENT_H_
