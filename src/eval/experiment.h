#ifndef PPR_EVAL_EXPERIMENT_H_
#define PPR_EVAL_EXPERIMENT_H_

#include <functional>
#include <string>
#include <vector>

#include "graph/datasets.h"
#include "graph/graph.h"

namespace ppr {

/// A materialized bench dataset.
struct NamedGraph {
  std::string name;        ///< e.g. "dblp-sim"
  std::string paper_name;  ///< e.g. "DBLP"
  Graph graph;
};

/// Materializes the six paper stand-ins at the given scale (multiplied by
/// PPR_BENCH_SCALE). If PPR_BENCH_DATASETS is set to a comma-separated
/// list of names, only those are produced — handy for quick iterations.
/// `max_count` (0 = all) truncates the list for expensive benches.
std::vector<NamedGraph> LoadBenchDatasets(double scale = 1.0,
                                          size_t max_count = 0);

/// Mean and median of a sample (seconds, errors, ...).
double Mean(const std::vector<double>& values);
double Median(std::vector<double> values);

/// Times `fn` over each source and returns per-source seconds.
std::vector<double> TimePerQuery(const std::vector<NodeId>& sources,
                                 const std::function<void(NodeId)>& fn);

/// Bench-wide query count: the paper's 30 sources, scaled down via
/// PPR_BENCH_QUERIES if set.
size_t BenchQueryCount(size_t default_count = 5);

}  // namespace ppr

#endif  // PPR_EVAL_EXPERIMENT_H_
