#ifndef PPR_CORE_PRIORITY_PUSH_H_
#define PPR_CORE_PRIORITY_PUSH_H_

#include "core/forward_push.h"
#include "core/trace.h"
#include "core/workspace.h"
#include "graph/graph.h"

namespace ppr {

/// Max-benefit-first Forward Push: Algorithm 1 with the "pick an
/// arbitrary active node" step replaced by "pick the active node whose
/// push has the highest unit-cost benefit r(s,v)/d_v" via an indexed
/// heap.
///
/// This is the natural greedy alternative to the FIFO discipline that
/// Theorem 4.3 analyzes. It reaches a given rsum in the fewest pushes of
/// any ordering (each push converts the most mass per edge touched), but
/// pays O(log n) heap maintenance per residue update and a random access
/// pattern — exactly the constant-factor trade-off that makes the
/// paper's FIFO+scan design win in practice. Exists primarily for the
/// push-ordering ablation (bench_ablation_push_order) and as a reference
/// implementation of the "arbitrary pick" freedom in Algorithm 1.
SolveStats PriorityForwardPush(const Graph& graph, NodeId source,
                               const ForwardPushOptions& options,
                               PprEstimate* out,
                               ConvergenceTrace* trace = nullptr);

}  // namespace ppr

#endif  // PPR_CORE_PRIORITY_PUSH_H_
