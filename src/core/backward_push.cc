#include "core/backward_push.h"

#include "util/fifo_queue.h"
#include "util/timer.h"

namespace ppr {

SolveStats BackwardPush(const Graph& graph, NodeId target,
                        const BackwardPushOptions& options,
                        PprEstimate* out) {
  PPR_CHECK(target < graph.num_nodes());
  PPR_CHECK(graph.has_in_adjacency())
      << "BackwardPush needs the transpose; call Graph::BuildInAdjacency";
  PPR_CHECK(graph.CountDeadEnds() == 0)
      << "BackwardPush requires a dead-end-free graph (see header)";
  PPR_CHECK(options.rmax > 0.0);
  PPR_CHECK(options.alpha > 0.0 && options.alpha < 1.0);

  const NodeId n = graph.num_nodes();
  const double alpha = options.alpha;
  Timer timer;

  // reserve[v] underestimates pi(v, target); residue[v] is the
  // yet-unprocessed contribution weight of pi(., v).
  out->Reset(n, target);
  std::vector<double>& reserve = out->reserve;
  std::vector<double>& residue = out->residue;

  FifoQueue queue(n);
  queue.PushIfAbsent(target);

  SolveStats stats;
  while (!queue.empty()) {
    const NodeId u = queue.Pop();
    const double r = residue[u];
    if (r <= options.rmax) continue;  // may have been drained already
    reserve[u] += alpha * r;
    residue[u] = 0.0;
    const double push = (1.0 - alpha) * r;
    for (NodeId w : graph.InNeighbors(u)) {
      // w reaches u with probability 1/d_w per step.
      residue[w] += push / graph.OutDegree(w);
      if (residue[w] > options.rmax) queue.PushIfAbsent(w);
      stats.edge_pushes++;
    }
    stats.push_operations++;
  }

  stats.final_rsum = out->ResidueSum();
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace ppr
