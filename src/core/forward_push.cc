#include "core/forward_push.h"

#include "util/fifo_queue.h"
#include "util/timer.h"

namespace ppr {

namespace {

/// Shared FIFO push loop. Seeds the queue with every currently-active
/// node and pushes until the queue drains (or rsum falls to stop_rsum).
SolveStats RunFifoLoop(const Graph& graph, NodeId source, double alpha,
                       double rmax, double stop_rsum, PprEstimate* estimate,
                       ConvergenceTrace* trace, FifoQueue* scratch,
                       const CancelToken* cancel) {
  const NodeId n = graph.num_nodes();
  FifoQueue local_queue(scratch != nullptr ? 0 : n);
  FifoQueue& queue = scratch != nullptr ? *scratch : local_queue;
  if (scratch != nullptr) queue.Reconfigure(n);
  double rsum = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    const double r = estimate->residue[v];
    rsum += r;
    if (r > static_cast<double>(EffectiveDegree(graph, v)) * rmax) {
      queue.PushIfAbsent(v);
    }
  }

  SolveStats stats;
  Timer timer;
  std::vector<double>& reserve = estimate->reserve;
  std::vector<double>& residue = estimate->residue;

  // Cancellation poll cadence: cheap enough to be invisible, frequent
  // enough that a deadline miss stays within ~1024 pushes of compute.
  constexpr uint64_t kCancelPollMask = 1023;

  while (!queue.empty() && (stop_rsum <= 0.0 || rsum > stop_rsum)) {
    if (cancel != nullptr && (stats.push_operations & kCancelPollMask) == 0 &&
        cancel->ShouldStop()) {
      break;
    }
    const NodeId v = queue.Pop();
    const double r = residue[v];
    if (r == 0.0) continue;
    reserve[v] += alpha * r;
    rsum -= alpha * r;
    const double push = (1.0 - alpha) * r;
    const NodeId d = graph.OutDegree(v);
    residue[v] = 0.0;
    if (d == 0) {
      // Dead end: the remaining mass jumps back to the source.
      residue[source] += push;
      if (residue[source] >
          static_cast<double>(EffectiveDegree(graph, source)) * rmax) {
        queue.PushIfAbsent(source);
      }
      stats.edge_pushes += 1;
    } else {
      const double inc = push / d;
      for (NodeId u : graph.OutNeighbors(v)) {
        residue[u] += inc;
        if (residue[u] >
            static_cast<double>(EffectiveDegree(graph, u)) * rmax) {
          queue.PushIfAbsent(u);
        }
      }
      stats.edge_pushes += d;
    }
    stats.push_operations++;
    if (trace != nullptr && trace->Due(stats.edge_pushes)) {
      trace->Record(stats.edge_pushes, rsum);
    }
  }

  stats.final_rsum = rsum;
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace

SolveStats FifoForwardPush(const Graph& graph, NodeId source,
                           const ForwardPushOptions& options, PprEstimate* out,
                           ConvergenceTrace* trace, FifoQueue* queue) {
  PPR_CHECK(source < graph.num_nodes());
  PPR_CHECK(options.rmax > 0.0);
  PPR_CHECK(options.alpha > 0.0 && options.alpha < 1.0);

  if (trace != nullptr) trace->Start();
  out->EnsureStartState(graph.num_nodes(), source, options.assume_initialized);
  SolveStats stats = RunFifoLoop(graph, source, options.alpha, options.rmax,
                                 options.stop_rsum, out, trace, queue,
                                 options.cancel);
  if (trace != nullptr) trace->Record(stats.edge_pushes, stats.final_rsum);
  return stats;
}

SolveStats FifoForwardPushRefine(const Graph& graph, NodeId source,
                                 double alpha, double rmax,
                                 PprEstimate* estimate, FifoQueue* queue,
                                 const CancelToken* cancel) {
  PPR_CHECK(source < graph.num_nodes());
  PPR_CHECK(rmax > 0.0);
  PPR_CHECK(estimate->reserve.size() == graph.num_nodes());
  PPR_CHECK(estimate->residue.size() == graph.num_nodes());
  return RunFifoLoop(graph, source, alpha, rmax, /*stop_rsum=*/0.0, estimate,
                     /*trace=*/nullptr, queue, cancel);
}

}  // namespace ppr
