#include "core/workspace.h"

// Header-only at present; this translation unit anchors the library and
// keeps a stable home for future out-of-line members.
