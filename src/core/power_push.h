#ifndef PPR_CORE_POWER_PUSH_H_
#define PPR_CORE_POWER_PUSH_H_

#include "core/trace.h"
#include "core/workspace.h"
#include "graph/graph.h"
#include "util/cancellation.h"
#include "util/fifo_queue.h"

namespace ppr {

/// Options for PowerPush (Algorithm 3 of the paper). The defaults are the
/// paper's: epochNum = 8, scanThreshold = n/4. The two booleans exist for
/// the ablation bench (bench_ablation_powerpush) and leave the algorithm
/// exactly as published when true.
struct PowerPushOptions {
  double alpha = 0.2;
  /// ℓ1-error threshold λ. The paper uses min(1e-8, 1/m).
  double lambda = 1e-8;
  /// Number of dynamic-threshold epochs in the scan phase.
  int epoch_num = 8;
  /// Switch from the FIFO queue to global sequential scans once the
  /// active frontier exceeds this fraction of n.
  double scan_threshold_fraction = 0.25;
  /// Ablation: skip the local FIFO phase (scan from the start).
  bool use_queue_phase = true;
  /// Ablation: disable the dynamic ℓ1 threshold (single epoch at λ).
  bool use_epochs = true;
  /// When true, `out` must already hold the canonical start state
  /// (reserve 0 everywhere, residue = e_source) at size n and the O(n)
  /// Reset() is skipped — the api/ adapters pair this with a
  /// SolverContext sparse reset.
  bool assume_initialized = false;
  /// Worker threads for the global scan phase. 0 or 1 keeps the paper's
  /// asynchronous sequential scan (pushes see residue deposited earlier
  /// in the same pass). N > 1 runs each pass as a chunked SpMV with
  /// per-thread residue buffers merged in worker order: pushes become
  /// simultaneous within a pass (possibly a few more passes to reach the
  /// epoch target) but every pass is parallel, the exit test still uses
  /// the exact residue sum, and the λ certificate at termination is
  /// unchanged. Deterministic for a fixed N. The FIFO phase is
  /// inherently sequential and always runs on one thread.
  unsigned threads = 0;
  /// Optional cooperative cancellation: polled every ~1024 pushes in the
  /// FIFO phase and at every scan-pass boundary in the global phase.
  /// nullptr (the default) never polls.
  const CancelToken* cancel = nullptr;
};

/// The λ value the paper uses for high-precision experiments:
/// min(1e-8, 1/m).
double PaperLambda(const Graph& graph);

/// Power Iteration with Forward Push — the paper's primary contribution.
/// Unifies the local and global approaches:
///
///  1. *Local phase.* FIFO-FwdPush with r_max = λ/m while the active
///     frontier is small: work is proportional to the touched
///     neighborhood only.
///  2. *Global phase.* Once more than scanThreshold nodes are active, the
///     queue's random access patterns lose to a cache-friendly sequential
///     scan over the CSR arrays, so the algorithm switches to scanning
///     all nodes and pushing the active ones *asynchronously* (a push
///     sees residue accumulated earlier in the same scan — §5 explains
///     why this beats simultaneous pushes).
///  3. *Dynamic threshold.* The scan phase runs in epochs with shrinking
///     ℓ1 targets λ^(i/epochNum), i = 1..epochNum, so that early pushes
///     have high unit-cost benefit and nodes accumulate residue before
///     being pushed.
///
/// Running time is O(m log(1/λ)) (Theorem 4.3). On return out->reserve
/// satisfies ‖π̂ − π‖₁ = rsum ≤ λ on dead-end-free graphs; with k dead
/// ends the bound relaxes to λ·(1 + k/m), matching classic FwdPush
/// termination (every node inactive w.r.t. λ/m).
/// `queue` optionally supplies a reusable scratch FIFO for the local
/// phase (see FifoForwardPush); nullptr allocates one per call.
/// `thread_scratch` optionally lends the parallel scan's per-thread
/// buffers (see ThreadDenseBuffers); nullptr allocates locally.
SolveStats PowerPush(const Graph& graph, NodeId source,
                     const PowerPushOptions& options, PprEstimate* out,
                     ConvergenceTrace* trace = nullptr,
                     FifoQueue* queue = nullptr,
                     ThreadDenseBuffers* thread_scratch = nullptr);

}  // namespace ppr

#endif  // PPR_CORE_POWER_PUSH_H_
