#ifndef PPR_CORE_FORWARD_PUSH_H_
#define PPR_CORE_FORWARD_PUSH_H_

#include "core/trace.h"
#include "core/workspace.h"
#include "graph/graph.h"
#include "util/cancellation.h"
#include "util/fifo_queue.h"

namespace ppr {

/// Options for FIFO-FwdPush (Algorithm 2 of the paper).
struct ForwardPushOptions {
  double alpha = 0.2;
  /// Residue threshold: v is active iff r(s,v) > d_v * rmax. With
  /// rmax = λ/m, termination guarantees ‖π̂ − π‖₁ ≤ λ (Equation (7)),
  /// and Theorem 4.3 bounds the running time by O(m log(1/λ)).
  double rmax = 1e-8;
  /// Optional early stop: additionally stop once rsum ≤ stop_rsum
  /// (0 disables; the classic algorithm runs until no node is active).
  double stop_rsum = 0.0;
  /// When true, `out` must already hold a valid (reserve, residue) state
  /// of size n — typically the canonical start state produced by a
  /// SolverContext sparse reset — and the O(n) Reset() is skipped. Used
  /// by the api/ adapters to make repeated queries allocation- and
  /// assign-free.
  bool assume_initialized = false;
  /// Optional cooperative cancellation, polled every ~1024 push
  /// operations; the loop exits early with a partial estimate. nullptr
  /// (the default) takes the unpolled path — bit-identical behavior.
  const CancelToken* cancel = nullptr;
};

/// First-In-First-Out Forward Push — the "common implementation" whose
/// O(m log(1/λ)) bound is the paper's headline theoretical result. Active
/// nodes are organized in a FIFO ring with O(1) membership tests; a push
/// converts α of a node's residue into reserve and spreads the rest over
/// its out-neighbors. Dead-end mass is redirected to the source.
/// `queue` optionally supplies a reusable scratch FIFO (it is
/// Reconfigure()d to the graph's node count); nullptr allocates one
/// per call.
SolveStats FifoForwardPush(const Graph& graph, NodeId source,
                           const ForwardPushOptions& options, PprEstimate* out,
                           ConvergenceTrace* trace = nullptr,
                           FifoQueue* queue = nullptr);

/// Continues pushing from an existing (reserve, residue) state until no
/// node is active w.r.t. rmax. This is the O(m) post-refinement step that
/// SpeedPPR (Algorithm 4, line 3) applies after PowerPush: by Lemma 4.5,
/// starting from rsum ≤ m*rmax it costs only O(m).
SolveStats FifoForwardPushRefine(const Graph& graph, NodeId source,
                                 double alpha, double rmax,
                                 PprEstimate* estimate,
                                 FifoQueue* queue = nullptr,
                                 const CancelToken* cancel = nullptr);

}  // namespace ppr

#endif  // PPR_CORE_FORWARD_PUSH_H_
