#include "core/power_push.h"

#include <algorithm>
#include <cmath>

#include "core/scatter_merge.h"
#include "util/fifo_queue.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace ppr {

namespace {

/// One simultaneous scan pass over edge-balanced row chunks: every node
/// active w.r.t. epoch_rmax is pushed against the residue snapshot, the
/// outgoing mass lands in per-chunk buffers, and the merge folds the
/// buffers back into the residue in chunk order (accumulate mode: the
/// residue keeps its sub-threshold entries). Returns the number of
/// pushes performed.
uint64_t ParallelScanPass(const Graph& graph, NodeId source, double alpha,
                          double epoch_rmax,
                          const std::vector<uint64_t>& row_bounds,
                          unsigned threads, PprEstimate* out,
                          ThreadDenseBuffers& deltas, SolveStats* stats) {
  std::vector<double>& reserve = out->reserve;
  std::vector<double>& residue = out->residue;
  const auto& offsets = graph.out_offsets();
  const auto& targets = graph.out_targets();
  std::vector<uint64_t> chunk_pushes(threads, 0);
  std::vector<uint64_t> chunk_edges(threads, 0);
  ScatterMergeStep(
      graph.num_nodes(), row_bounds, threads, deltas,
      [&](unsigned c, uint64_t row_begin, uint64_t row_end,
          std::vector<double>& delta) {
        for (uint64_t v = row_begin; v < row_end; ++v) {
          const double r = residue[v];
          const NodeId d = static_cast<NodeId>(offsets[v + 1] - offsets[v]);
          const NodeId deff = d == 0 ? 1 : d;
          if (r <= static_cast<double>(deff) * epoch_rmax) continue;
          reserve[v] += alpha * r;
          const double push = (1.0 - alpha) * r;
          residue[v] = 0.0;
          if (d == 0) {
            delta[source] += push;
            chunk_edges[c] += 1;
          } else {
            const double inc = push / d;
            for (EdgeId e = offsets[v]; e < offsets[v + 1]; ++e) {
              delta[targets[e]] += inc;
            }
            chunk_edges[c] += d;
          }
          chunk_pushes[c]++;
        }
      },
      residue, /*accumulate=*/true);

  uint64_t pushes = 0;
  for (unsigned w = 0; w < threads; ++w) {
    pushes += chunk_pushes[w];
    stats->push_operations += chunk_pushes[w];
    stats->edge_pushes += chunk_edges[w];
  }
  return pushes;
}

}  // namespace

double PaperLambda(const Graph& graph) {
  return std::min(1e-8, 1.0 / static_cast<double>(graph.num_edges()));
}

SolveStats PowerPush(const Graph& graph, NodeId source,
                     const PowerPushOptions& options, PprEstimate* out,
                     ConvergenceTrace* trace, FifoQueue* scratch,
                     ThreadDenseBuffers* thread_scratch) {
  PPR_CHECK(source < graph.num_nodes());
  PPR_CHECK(options.lambda > 0.0 && options.lambda < 1.0);
  PPR_CHECK(options.alpha > 0.0 && options.alpha < 1.0);
  PPR_CHECK(options.epoch_num >= 1);

  const NodeId n = graph.num_nodes();
  const double alpha = options.alpha;
  const double lambda = options.lambda;
  const double rmax = lambda / static_cast<double>(graph.num_edges());
  const size_t scan_threshold = static_cast<size_t>(
      std::max(1.0, options.scan_threshold_fraction * n));

  Timer timer;
  if (trace != nullptr) trace->Start();
  out->EnsureStartState(n, source, options.assume_initialized);
  std::vector<double>& reserve = out->reserve;
  std::vector<double>& residue = out->residue;

  SolveStats stats;
  double rsum = 1.0;

  const auto stopped = [&options] {
    return options.cancel != nullptr && options.cancel->ShouldStop();
  };
  constexpr uint64_t kCancelPollMask = 1023;

  // ---- Phase 1: local FIFO pushes while the frontier is sparse. ----
  if (options.use_queue_phase) {
    FifoQueue local_queue(scratch != nullptr ? 0 : n);
    FifoQueue& queue = scratch != nullptr ? *scratch : local_queue;
    if (scratch != nullptr) queue.Reconfigure(n);
    queue.PushIfAbsent(source);
    while (!queue.empty() && queue.size() <= scan_threshold &&
           rsum > lambda) {
      if (options.cancel != nullptr &&
          (stats.push_operations & kCancelPollMask) == 0 && stopped()) {
        break;
      }
      const NodeId v = queue.Pop();
      const double r = residue[v];
      if (r == 0.0) continue;
      reserve[v] += alpha * r;
      rsum -= alpha * r;
      const double push = (1.0 - alpha) * r;
      const NodeId d = graph.OutDegree(v);
      residue[v] = 0.0;
      if (d == 0) {
        residue[source] += push;
        if (residue[source] >
            static_cast<double>(EffectiveDegree(graph, source)) * rmax) {
          queue.PushIfAbsent(source);
        }
        stats.edge_pushes += 1;
      } else {
        const double inc = push / d;
        for (NodeId u : graph.OutNeighbors(v)) {
          residue[u] += inc;
          if (residue[u] >
              static_cast<double>(EffectiveDegree(graph, u)) * rmax) {
            queue.PushIfAbsent(u);
          }
        }
        stats.edge_pushes += d;
      }
      stats.push_operations++;
      if (trace != nullptr && trace->Due(stats.edge_pushes)) {
        trace->Record(stats.edge_pushes, rsum);
      }
    }
  }

  // ---- Phase 2: global scans with a dynamic threshold. ----
  if (rsum > lambda && !stopped()) {
    const unsigned threads = options.threads <= 1 ? 1 : options.threads;
    std::vector<uint64_t> row_bounds;
    ThreadDenseBuffers local_buffers;
    ThreadDenseBuffers* deltas = nullptr;
    if (threads > 1) {
      const auto& off = graph.out_offsets();
      row_bounds = BalancedChunkBounds(
          n, threads, [&](uint64_t v) { return off[v + 1] - off[v] + 1; });
      deltas = thread_scratch != nullptr ? thread_scratch : &local_buffers;
      EnsureThreadBuffers(deltas, threads, n);
    }
    const int epochs = options.use_epochs ? options.epoch_num : 1;
    const auto& offsets = graph.out_offsets();
    const auto& targets = graph.out_targets();
    for (int i = 1; i <= epochs; ++i) {
      // ℓ1 target for this epoch: λ^(i/epochNum); the matching push
      // threshold is r'max = target / m.
      const double epoch_target =
          options.use_epochs
              ? std::pow(lambda, static_cast<double>(i) / epochs)
              : lambda;
      const double epoch_rmax =
          epoch_target / static_cast<double>(graph.num_edges());
      while (rsum > epoch_target) {
        if (stopped()) break;
        if (threads > 1) {
          const uint64_t pushes = ParallelScanPass(
              graph, source, alpha, epoch_rmax, row_bounds, threads, out,
              *deltas, &stats);
          stats.iterations++;
          rsum = out->ResidueSum();
          if (trace != nullptr && trace->Due(stats.edge_pushes)) {
            trace->Record(stats.edge_pushes, rsum);
          }
          if (pushes == 0) break;
          continue;
        }
        // One asynchronous pass over the concatenated adjacency array:
        // pushes later in the pass see residue deposited earlier in the
        // same pass.
        const uint64_t pushes_before = stats.push_operations;
        for (NodeId v = 0; v < n; ++v) {
          const double r = residue[v];
          const NodeId d =
              static_cast<NodeId>(offsets[v + 1] - offsets[v]);
          const NodeId deff = d == 0 ? 1 : d;
          if (r <= static_cast<double>(deff) * epoch_rmax) continue;
          reserve[v] += alpha * r;
          rsum -= alpha * r;
          const double push = (1.0 - alpha) * r;
          residue[v] = 0.0;
          if (d == 0) {
            residue[source] += push;
            stats.edge_pushes += 1;
          } else {
            const double inc = push / d;
            for (EdgeId e = offsets[v]; e < offsets[v + 1]; ++e) {
              residue[targets[e]] += inc;
            }
            stats.edge_pushes += d;
          }
          stats.push_operations++;
          if (trace != nullptr && trace->Due(stats.edge_pushes)) {
            trace->Record(stats.edge_pushes, rsum);
          }
        }
        stats.iterations++;
        // Incremental rsum drifts by one ulp per push; refresh it with an
        // exact O(n) sum once per pass so epoch exits are trustworthy.
        rsum = out->ResidueSum();
        // With dead ends, sub-threshold residues can sum slightly above
        // the epoch target while no node is active; a pass that performed
        // no pushes cannot make progress, so move to the next epoch.
        if (stats.push_operations == pushes_before) break;
      }
      if (stopped()) break;
    }
  }

  if (trace != nullptr) trace->Record(stats.edge_pushes, rsum);
  stats.final_rsum = rsum;
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace ppr
