#ifndef PPR_CORE_PAGERANK_H_
#define PPR_CORE_PAGERANK_H_

#include <vector>

#include "core/workspace.h"
#include "graph/graph.h"

namespace ppr {

/// Options for global PageRank.
struct PageRankOptions {
  /// Teleport probability (PageRank convention: damping = 1 − alpha).
  double alpha = 0.2;
  /// ℓ1 convergence threshold on the alive mass.
  double lambda = 1e-10;
  uint64_t max_iterations = 10000;
  /// Worker threads for the per-iteration scan; 0 or 1 runs the serial
  /// kernel, N > 1 the chunked-SpMV kernel (see PowerIterationOptions).
  unsigned threads = 0;
};

/// Global PageRank — the uniform-teleport special case of PPR
/// (π_PR = (1/n)·Σ_s π_s), listed by the paper's introduction as the
/// first traditional application of SSPPR. Implemented as power
/// iteration with the uniform start vector; dead-end mass is
/// redistributed uniformly (the standard dangling-node convention — the
/// per-source "jump back to s" rule averages to uniform over all
/// sources).
///
/// Returns the PageRank vector (sums to 1). `thread_scratch` optionally
/// lends the parallel kernel's per-thread accumulators (see
/// ThreadDenseBuffers); nullptr allocates locally.
std::vector<double> PageRank(const Graph& graph,
                             const PageRankOptions& options = {},
                             SolveStats* stats = nullptr,
                             ThreadDenseBuffers* thread_scratch = nullptr);

}  // namespace ppr

#endif  // PPR_CORE_PAGERANK_H_
