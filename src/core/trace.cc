#include "core/trace.h"

// Header-only; anchor translation unit.
