#ifndef PPR_CORE_SCATTER_MERGE_H_
#define PPR_CORE_SCATTER_MERGE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/workspace.h"
#include "graph/graph.h"

namespace ppr {

/// Per-chunk row body of a scatter/merge superstep: process rows
/// [row_begin, row_end) of chunk `c`, accumulating every pushed value
/// into `delta` (all-zero on entry, per the ThreadDenseBuffers lending
/// contract). Chunk-local counters (rsum, pushes, dangling mass) belong
/// in caller-owned per-chunk arrays captured by the closure.
using ScatterBody = std::function<void(
    unsigned c, uint64_t row_begin, uint64_t row_end,
    std::vector<double>& delta)>;

/// One deterministic scatter/merge superstep — the pattern PowItr,
/// PageRank and PowerPush's scan phase each used to restate inline:
///
///  1. scatter: chunk c runs `scatter` over its rows
///     [row_bounds[c], row_bounds[c+1]), landing outgoing mass in the
///     per-chunk buffer deltas[c];
///  2. barrier, then `between` (if given) runs once on the calling
///     thread — e.g. PageRank folds its per-chunk dangling mass here —
///     and returns a uniform term added to every merged entry;
///  3. merge: target[v] = (accumulate ? target[v] : 0) + uniform
///            + Σ_c deltas[c][v], folding chunks in ascending order and
///     re-zeroing deltas[c][v], so the buffers come back all-zero.
///
/// The fixed fold order makes the result deterministic for a given chunk
/// count, and both phases run through ParallelForThreads, i.e. on the
/// shared WorkerPool — a superstep inside one query of a busy PprServer
/// shares workers with every other query instead of spawning its own.
///
/// Requires row_bounds.size() == chunks + 1 (BalancedChunkBounds output)
/// and deltas sized [chunks][n] all-zero (EnsureThreadBuffers).
void ScatterMergeStep(NodeId n, const std::vector<uint64_t>& row_bounds,
                      unsigned chunks, ThreadDenseBuffers& deltas,
                      const ScatterBody& scatter, std::vector<double>& target,
                      bool accumulate,
                      const std::function<double()>& between = nullptr);

}  // namespace ppr

#endif  // PPR_CORE_SCATTER_MERGE_H_
