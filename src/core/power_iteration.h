#ifndef PPR_CORE_POWER_ITERATION_H_
#define PPR_CORE_POWER_ITERATION_H_

#include "core/trace.h"
#include "core/workspace.h"
#include "graph/graph.h"
#include "util/cancellation.h"

namespace ppr {

/// Options for the vanilla global approach (§3.1 of the paper).
struct PowerIterationOptions {
  /// Teleport probability of the α-random walk.
  double alpha = 0.2;
  /// ℓ1-error threshold λ; iterate until ‖π̂ − π‖₁ = ‖γ‖₁ ≤ λ.
  double lambda = 1e-8;
  /// Safety cap; (1−α)^j ≤ λ needs ~log(1/λ)/α iterations, far below this.
  uint64_t max_iterations = 100000;
  /// When true, `out` must already hold the canonical start state at
  /// size n and the O(n) Reset() is skipped (see PowerPushOptions).
  bool assume_initialized = false;
  /// Worker threads for the per-iteration scan. 0 or 1 runs the serial
  /// kernel (the historical bit pattern); N > 1 chunks the CSR rows by
  /// edge count and scatters into per-thread buffers merged in worker
  /// order — deterministic for a fixed N, equal to the serial result up
  /// to floating-point reassociation (≈1e-12 ℓ1 in practice).
  unsigned threads = 0;
  /// Optional cooperative cancellation, polled at every SpMV iteration
  /// boundary; nullptr (the default) never polls.
  const CancelToken* cancel = nullptr;
};

/// Power Iteration: maintains the alive-walk distribution γ_j and the
/// partial PPR sum π̂ = Σ_{k≤j} α γ_k. Each iteration multiplies γ by
/// (1−α)P via a full pass over the graph, so the ℓ1 error decays as
/// (1−α)^j exactly (Equation (6)) and total time is O(m log(1/λ)).
///
/// Dead ends are handled by redirecting their outgoing mass to the source
/// (the paper's conceptual dead-end→source edge).
///
/// On return, out->reserve is π̂ and out->residue is the final γ.
///
/// `thread_scratch`, when non-null, lends the per-thread accumulators
/// (see ThreadDenseBuffers) so a reused SolverContext pays their O(n·T)
/// initialization once, not per query; nullptr allocates locally.
SolveStats PowerIteration(const Graph& graph, NodeId source,
                          const PowerIterationOptions& options,
                          PprEstimate* out,
                          ConvergenceTrace* trace = nullptr,
                          ThreadDenseBuffers* thread_scratch = nullptr);

}  // namespace ppr

#endif  // PPR_CORE_POWER_ITERATION_H_
