#ifndef PPR_CORE_BACKWARD_PUSH_H_
#define PPR_CORE_BACKWARD_PUSH_H_

#include "core/workspace.h"
#include "graph/graph.h"

namespace ppr {

/// Options for Backward Push (Andersen et al., FOCS'06 "local
/// computation of PageRank contributions").
struct BackwardPushOptions {
  double alpha = 0.2;
  /// Per-node absolute error threshold: on termination every node v
  /// satisfies |π̂(v, t) − π(v, t)| ≤ rmax.
  double rmax = 1e-6;
};

/// Single-Target PPR by Backward Push — the dual of Forward Push and the
/// second half of the bidirectional estimators (BiPPR) discussed in the
/// paper's related work (§7). Computes, for a fixed target t, an
/// estimate of π(v, t) for *every* source v.
///
/// Invariant maintained for each v (van der Hofstad / Lofgren form):
///     π(v, t) = reserve[v] + Σ_u residue[u] · π(v, u)
/// A backward push on u moves α·r(u) into reserve[u] and propagates
/// (1−α)·r(u)/d_w to each in-neighbor w of u. On termination all
/// residues are ≤ rmax, giving the per-node bound above (since
/// Σ_u π(v,u) ≤ 1).
///
/// Requires the graph's in-adjacency (Graph::BuildInAdjacency).
/// Dead-end caveat: the dead-end→source convention makes π
/// source-dependent, which a single backward pass cannot capture, so
/// this solver requires a dead-end-free graph (the classic setting of
/// backward search; callers with dead ends should pre-process them
/// away).
SolveStats BackwardPush(const Graph& graph, NodeId target,
                        const BackwardPushOptions& options, PprEstimate* out);

}  // namespace ppr

#endif  // PPR_CORE_BACKWARD_PUSH_H_
