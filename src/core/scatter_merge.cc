#include "core/scatter_merge.h"

#include "util/logging.h"
#include "util/parallel.h"

namespace ppr {

void ScatterMergeStep(NodeId n, const std::vector<uint64_t>& row_bounds,
                      unsigned chunks, ThreadDenseBuffers& deltas,
                      const ScatterBody& scatter, std::vector<double>& target,
                      bool accumulate,
                      const std::function<double()>& between) {
  PPR_DCHECK(row_bounds.size() == chunks + 1);
  PPR_DCHECK(deltas.size() >= chunks);
  PPR_DCHECK(target.size() == n);

  ParallelForThreads(0, chunks, chunks,
                     [&](uint64_t lo, uint64_t hi, unsigned) {
    for (uint64_t c = lo; c < hi; ++c) {
      scatter(static_cast<unsigned>(c), row_bounds[c], row_bounds[c + 1],
              deltas[c]);
    }
  }, /*grain=*/1);

  const double uniform = between ? between() : 0.0;

  ParallelForThreads(0, n, chunks, [&](uint64_t lo, uint64_t hi, unsigned) {
    for (uint64_t v = lo; v < hi; ++v) {
      double sum = (accumulate ? target[v] : 0.0) + uniform;
      for (unsigned w = 0; w < chunks; ++w) {
        sum += deltas[w][v];
        deltas[w][v] = 0.0;
      }
      target[v] = sum;
    }
  });
}

}  // namespace ppr
