#ifndef PPR_CORE_MULTI_SOURCE_H_
#define PPR_CORE_MULTI_SOURCE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/workspace.h"
#include "graph/graph.h"
#include "util/cancellation.h"

namespace ppr {

/// Options for the fused multi-source sweep kernel.
struct MultiSourceOptions {
  /// false: power-iteration mode — every nonzero residue entry pushes
  /// each sweep and source b terminates when its residue sum drops to
  /// threshold[b] (= λ_b). true: forward-push scan mode — entry (v, b)
  /// pushes only while r > EffectiveDegree(v)·threshold[b] (= rmax_b),
  /// smaller residues carry over unchanged, and source b terminates on
  /// the first sweep that performs zero pushes for it.
  bool push_mode = false;
  /// Honor per-source top_k[] gap retirement (see MultiSourceFusedSolve).
  bool topk_early = false;
  uint64_t max_iterations = 100000;
  /// <= 1 runs the sweep serially; > 1 partitions CSR rows across
  /// `threads` chunks and merges deterministically via ScatterMergeStep.
  unsigned threads = 0;
  /// Whole-block cancellation, polled once per sweep. A stop retires
  /// every remaining source with its partial state (callers detect the
  /// interruption through the token, exactly like the serial kernels).
  const CancelToken* block_cancel = nullptr;
};

/// Per-source output destinations for MultiSourceFusedSolve. A source's
/// columns are extracted the moment it retires (converged, hit
/// max_iterations, cancelled, or top-k-separated) — the block matrices
/// recycle retired columns, so the kernel owns the export.
struct MultiSourceOutputs {
  /// size B; scores[b] points at an all-zero length-n buffer that
  /// receives source b's reserve (score) column.
  std::span<double* const> scores;
  /// size B or empty; non-null entries receive the residue column.
  std::span<double* const> residues;
  /// size B; per-source counters (push_operations, edge_pushes,
  /// iterations, final_rsum, seconds-from-kernel-start-at-retirement).
  std::span<SolveStats> stats;
  /// size B or empty; set to 1 for sources retired by the top-k gap
  /// rule before their threshold termination.
  std::span<uint8_t> early_retired;
};

/// Advances B sources through one CSR traversal per sweep: the residue
/// and reserve block matrices are flat length n·B vectors laid out
/// node-major (entry (v, b) at v·B + b), so one pass over the adjacency
/// serves every source in the block instead of B passes. Columns are
/// fully independent — per-source alpha/threshold, dead-end mass
/// returned to that source's own column — so the per-column arithmetic
/// (operation sequence, FP rounding) is identical to the serial kernels
/// at every block width:
///
///  * power mode replicates core/power_iteration's serial loop per
///    column (same skip-zero / reserve += α·r / scatter (1−α)·r/d order,
///    same termination `rsum > λ && iterations < max`);
///  * push mode is the deterministic node-ordered scan analogue of FIFO
///    forward push: same pushes, same (m + dead_ends)·rmax certificate,
///    but a fixed sweep order shared by every batch width so fused and
///    per-source runs of the *same scan discipline* match bit-for-bit.
///
/// threads > 1 reuses scatter_merge.h over the flat block target with
/// row bounds scaled into element space; per-chunk per-source counters
/// merge in ascending chunk order, giving the same grouping as the
/// serial parallel kernels (equal to serial up to ~1e-12 FP
/// reassociation, deterministic for a fixed thread count).
///
/// Top-k early retirement (options.topk_early, top_k[b] > 0): at a
/// sweep boundary, source b retires early when the gap between its
/// k-th and (k+1)-th largest reserve exceeds its remaining residue sum
/// rsum_b — no unsettled mass can change the top-k *set* (order within
/// the set may still differ from the converged run). The rule reads
/// only column b, so serial (B=1) and fused runs retire identically.
///
/// Per-source cancellation (cancels[b], entries nullable) is polled at
/// sweep boundaries; a stopped source retires with partial state.
///
/// Preconditions: sources/alpha/threshold sized B with threshold > 0;
/// top_k sized B or empty; cancels sized B or empty; reserve/residue
/// all-zero length n·B (n·B must fit NodeId); next all-zero length n·B
/// when threads <= 1 (unused otherwise, may be empty); thread_scratch
/// non-null when threads > 1.
void MultiSourceFusedSolve(const Graph& graph,
                           std::span<const NodeId> sources,
                           std::span<const double> alpha,
                           std::span<const double> threshold,
                           std::span<const size_t> top_k,
                           std::span<const CancelToken* const> cancels,
                           const MultiSourceOptions& options,
                           std::vector<double>& reserve,
                           std::vector<double>& residue,
                           std::vector<double>& next,
                           ThreadDenseBuffers* thread_scratch,
                           const MultiSourceOutputs& out);

}  // namespace ppr

#endif  // PPR_CORE_MULTI_SOURCE_H_
