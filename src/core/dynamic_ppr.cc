#include "core/dynamic_ppr.h"

#include <cmath>

#include "util/fifo_queue.h"

namespace ppr {

DynamicSsppr::DynamicSsppr(DynamicGraph* graph, NodeId source,
                           const Options& options)
    : graph_(graph), source_(source), options_(options) {
  PPR_CHECK(graph != nullptr);
  PPR_CHECK(source < graph->num_nodes());
  PPR_CHECK(options.rmax > 0.0);
  PPR_CHECK(options.alpha > 0.0 && options.alpha < 1.0);
  estimate_.Reset(graph->num_nodes(), source);
  Refresh();
}

bool DynamicSsppr::IsActive(NodeId v) const {
  return std::fabs(estimate_.residue[v]) >
         static_cast<double>(EffectiveDegreeOf(v)) * options_.rmax;
}

uint64_t DynamicSsppr::PushLoop() {
  const double alpha = options_.alpha;
  FifoQueue queue(graph_->num_nodes());
  for (NodeId v = 0; v < graph_->num_nodes(); ++v) {
    if (IsActive(v)) queue.PushIfAbsent(v);
  }
  uint64_t pushes = 0;
  while (!queue.empty()) {
    const NodeId v = queue.Pop();
    const double r = estimate_.residue[v];
    if (r == 0.0) continue;
    // Pushes work symmetrically for negative residue (insertions shrink
    // old neighbors' transition probability, deletions take the removed
    // target's share away, so corrections can be negative): reserve
    // decreases and negative mass propagates.
    estimate_.reserve[v] += alpha * r;
    estimate_.residue[v] = 0.0;
    const double push = (1.0 - alpha) * r;
    const NodeId d = graph_->OutDegree(v);
    if (d == 0) {
      estimate_.residue[source_] += push;
      if (IsActive(source_)) queue.PushIfAbsent(source_);
    } else {
      const double inc = push / d;
      for (NodeId u : graph_->OutNeighbors(v)) {
        estimate_.residue[u] += inc;
        if (IsActive(u)) queue.PushIfAbsent(u);
      }
    }
    pushes++;
  }
  return pushes;
}

uint64_t DynamicSsppr::Refresh() { return PushLoop(); }

void DynamicSsppr::ObserveBeforeInsert(NodeId u, NodeId w) {
  PPR_CHECK(u < graph_->num_nodes() && w < graph_->num_nodes());
  // Validate before touching residues: DynamicGraph::AddEdge rejects
  // self-loops, and the correction must not run for an edge that will
  // never be inserted.
  PPR_CHECK(u != w) << "self-loops are not supported";
  const double alpha = options_.alpha;
  const double scale = (1.0 - alpha) / alpha * estimate_.reserve[u];
  const NodeId d_old = graph_->OutDegree(u);

  // Δr = (1−α)/α · π̂(u) · (P'[u] − P[u]).
  if (d_old == 0) {
    // u was a dead end whose effective row was e_source; the new row is
    // e_w.
    estimate_.residue[source_] -= scale;
    estimate_.residue[w] += scale;
  } else {
    const double shrink =
        1.0 / (d_old + 1.0) - 1.0 / static_cast<double>(d_old);
    // Iterating occurrences handles parallel edges: each occurrence of a
    // neighbor carried 1/d of the row and now carries 1/(d+1).
    for (NodeId x : graph_->OutNeighbors(u)) {
      estimate_.residue[x] += scale * shrink;
    }
    estimate_.residue[w] += scale / (d_old + 1.0);
  }
}

void DynamicSsppr::ObserveBeforeDelete(NodeId u, NodeId w) {
  PPR_CHECK(u < graph_->num_nodes() && w < graph_->num_nodes());
  const double alpha = options_.alpha;
  const double scale = (1.0 - alpha) / alpha * estimate_.reserve[u];
  const NodeId d_old = graph_->OutDegree(u);
  PPR_CHECK(d_old > 0) << "deleting from a dead end";

  if (d_old == 1) {
    // u becomes a dead end: its row e_w turns into the dead-end
    // convention's e_source — the exact mirror of the insertion case.
    estimate_.residue[source_] += scale;
    estimate_.residue[w] -= scale;
  } else {
    // Every surviving occurrence grows from 1/d to 1/(d−1); the removed
    // occurrence of w loses its 1/d outright. Skipping exactly one
    // occurrence keeps parallel edges correct.
    const double grow =
        1.0 / (d_old - 1.0) - 1.0 / static_cast<double>(d_old);
    bool removed = false;
    for (NodeId x : graph_->OutNeighbors(u)) {
      if (!removed && x == w) {
        estimate_.residue[w] -= scale / d_old;
        removed = true;
      } else {
        estimate_.residue[x] += scale * grow;
      }
    }
    PPR_CHECK(removed) << "edge (" << u << ", " << w << ") not present";
  }
}

void DynamicSsppr::GrowTo(NodeId n) {
  PPR_CHECK(n >= estimate_.reserve.size());
  PPR_CHECK(n <= graph_->num_nodes());
  estimate_.reserve.resize(n, 0.0);
  estimate_.residue.resize(n, 0.0);
}

uint64_t DynamicSsppr::AddEdge(NodeId u, NodeId w) {
  ObserveBeforeInsert(u, w);
  graph_->AddEdge(u, w);
  return PushLoop();
}

uint64_t DynamicSsppr::RemoveEdge(NodeId u, NodeId w) {
  ObserveBeforeDelete(u, w);
  graph_->RemoveEdge(u, w);
  return PushLoop();
}

double DynamicSsppr::ResidueL1() const {
  double sum = 0.0;
  for (double r : estimate_.residue) sum += std::fabs(r);
  return sum;
}

// ------------------------------------------------------------------ pool

DynamicSspprPool::DynamicSspprPool(DynamicGraph* graph,
                                   const DynamicSsppr::Options& options)
    : graph_(graph), options_(options) {
  PPR_CHECK(graph != nullptr);
}

DynamicSsppr& DynamicSspprPool::TrackerFor(NodeId source) {
  auto it = trackers_.find(source);
  if (it == trackers_.end()) {
    it = trackers_
             .emplace(source,
                      std::make_unique<DynamicSsppr>(graph_, source, options_))
             .first;
  }
  return *it->second;
}

Status DynamicSspprPool::Apply(
    const UpdateBatch& batch, uint64_t* pushes,
    const std::function<void(const EdgeUpdate&)>& applied) {
  PPR_RETURN_IF_ERROR(graph_->Validate(batch));
  for (const EdgeUpdate& up : batch.updates) {
    switch (up.kind) {
      case UpdateKind::kInsert:
        for (auto& [source, tracker] : trackers_) {
          tracker->ObserveBeforeInsert(up.u, up.v);
        }
        graph_->AddEdge(up.u, up.v);
        break;
      case UpdateKind::kDelete:
        for (auto& [source, tracker] : trackers_) {
          tracker->ObserveBeforeDelete(up.u, up.v);
        }
        graph_->RemoveEdge(up.u, up.v);
        break;
      case UpdateKind::kAddNode:
        graph_->AddNode();
        for (auto& [source, tracker] : trackers_) {
          tracker->GrowTo(graph_->num_nodes());
        }
        break;
      case UpdateKind::kRemoveNode:
        // RemoveNode lowers to per-edge deletions; the `before` hook
        // runs the usual pre-mutation corrections and the `after` hook
        // forwards each lowered deletion to the caller (the walk index
        // refreshes the mutated endpoint per edge, not per marker).
        graph_->RemoveNode(
            up.u,
            [this](const EdgeUpdate& lowered) {
              for (auto& [source, tracker] : trackers_) {
                tracker->ObserveBeforeDelete(lowered.u, lowered.v);
              }
            },
            applied);
        break;
    }
    if (applied) applied(up);
  }
  uint64_t total = 0;
  for (auto& [source, tracker] : trackers_) total += tracker->Refresh();
  if (pushes != nullptr) *pushes += total;
  return Status::OK();
}

}  // namespace ppr
