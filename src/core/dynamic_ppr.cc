#include "core/dynamic_ppr.h"

#include <cmath>

#include "util/fifo_queue.h"

namespace ppr {

DynamicSsppr::DynamicSsppr(DynamicGraph* graph, NodeId source,
                           const Options& options)
    : graph_(graph), source_(source), options_(options) {
  PPR_CHECK(graph != nullptr);
  PPR_CHECK(source < graph->num_nodes());
  PPR_CHECK(options.rmax > 0.0);
  PPR_CHECK(options.alpha > 0.0 && options.alpha < 1.0);
  estimate_.Reset(graph->num_nodes(), source);
  Refresh();
}

bool DynamicSsppr::IsActive(NodeId v) const {
  return std::fabs(estimate_.residue[v]) >
         static_cast<double>(EffectiveDegreeOf(v)) * options_.rmax;
}

uint64_t DynamicSsppr::PushLoop() {
  const double alpha = options_.alpha;
  FifoQueue queue(graph_->num_nodes());
  for (NodeId v = 0; v < graph_->num_nodes(); ++v) {
    if (IsActive(v)) queue.PushIfAbsent(v);
  }
  uint64_t pushes = 0;
  while (!queue.empty()) {
    const NodeId v = queue.Pop();
    const double r = estimate_.residue[v];
    if (r == 0.0) continue;
    // Pushes work symmetrically for negative residue (insertions shrink
    // old neighbors' transition probability, so corrections can be
    // negative): reserve decreases and negative mass propagates.
    estimate_.reserve[v] += alpha * r;
    estimate_.residue[v] = 0.0;
    const double push = (1.0 - alpha) * r;
    const NodeId d = graph_->OutDegree(v);
    if (d == 0) {
      estimate_.residue[source_] += push;
      if (IsActive(source_)) queue.PushIfAbsent(source_);
    } else {
      const double inc = push / d;
      for (NodeId u : graph_->OutNeighbors(v)) {
        estimate_.residue[u] += inc;
        if (IsActive(u)) queue.PushIfAbsent(u);
      }
    }
    pushes++;
  }
  return pushes;
}

uint64_t DynamicSsppr::Refresh() { return PushLoop(); }

uint64_t DynamicSsppr::AddEdge(NodeId u, NodeId w) {
  PPR_CHECK(u < graph_->num_nodes() && w < graph_->num_nodes());
  // Validate before touching residues: DynamicGraph::AddEdge rejects
  // self-loops, and the correction below must not run for an edge that
  // will never be inserted.
  PPR_CHECK(u != w) << "self-loops are not supported";
  const double alpha = options_.alpha;
  const double scale = (1.0 - alpha) / alpha * estimate_.reserve[u];
  const NodeId d_old = graph_->OutDegree(u);

  // Δr = (1−α)/α · π̂(u) · (P'[u] − P[u]).
  if (d_old == 0) {
    // u was a dead end whose effective row was e_source; the new row is
    // e_w.
    estimate_.residue[source_] -= scale;
    estimate_.residue[w] += scale;
  } else {
    const double shrink =
        1.0 / (d_old + 1.0) - 1.0 / static_cast<double>(d_old);
    for (NodeId x : graph_->OutNeighbors(u)) {
      estimate_.residue[x] += scale * shrink;
    }
    estimate_.residue[w] += scale / (d_old + 1.0);
  }
  graph_->AddEdge(u, w);
  return PushLoop();
}

double DynamicSsppr::ResidueL1() const {
  double sum = 0.0;
  for (double r : estimate_.residue) sum += std::fabs(r);
  return sum;
}

}  // namespace ppr
