#ifndef PPR_CORE_TRACE_H_
#define PPR_CORE_TRACE_H_

#include <cstdint>
#include <vector>

#include "util/timer.h"

namespace ppr {

/// Records (wall-clock, #residue-updates, rsum) checkpoints during a
/// solve. This is the instrumentation behind Figures 5 and 6 of the
/// paper: rsum is exactly the current ℓ1 error of the reserve vector, so
/// plotting points() reproduces "actual ℓ1-error vs execution time" and
/// "... vs #residue updates".
///
/// The paper samples every 4m edge pushes; benches pass
/// interval = 4 * graph.num_edges().
class ConvergenceTrace {
 public:
  struct Point {
    double seconds;
    uint64_t updates;
    double rsum;
  };

  /// interval_updates == 0 records only the solver's natural boundaries
  /// (iteration/epoch ends); > 0 additionally records every time the
  /// update counter crosses a multiple of the interval.
  explicit ConvergenceTrace(uint64_t interval_updates = 0)
      : interval_(interval_updates), next_due_(interval_updates) {}

  /// Starts (or restarts) the clock; clears recorded points.
  void Start() {
    points_.clear();
    next_due_ = interval_;
    timer_.Reset();
  }

  /// Cheap check for the solver's hot loop.
  bool Due(uint64_t total_updates) const {
    return interval_ != 0 && total_updates >= next_due_;
  }

  /// Appends a checkpoint and schedules the next Due() boundary.
  void Record(uint64_t total_updates, double rsum) {
    points_.push_back({timer_.ElapsedSeconds(), total_updates, rsum});
    if (interval_ != 0) {
      while (next_due_ <= total_updates) next_due_ += interval_;
    }
  }

  const std::vector<Point>& points() const { return points_; }

 private:
  uint64_t interval_;
  uint64_t next_due_;
  Timer timer_;
  std::vector<Point> points_;
};

}  // namespace ppr

#endif  // PPR_CORE_TRACE_H_
