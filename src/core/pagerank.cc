#include "core/pagerank.h"

#include "core/scatter_merge.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace ppr {

std::vector<double> PageRank(const Graph& graph,
                             const PageRankOptions& options,
                             SolveStats* stats_out,
                             ThreadDenseBuffers* thread_scratch) {
  const NodeId n = graph.num_nodes();
  PPR_CHECK(n > 0);
  PPR_CHECK(options.alpha > 0.0 && options.alpha < 1.0);
  PPR_CHECK(options.lambda > 0.0);
  const double alpha = options.alpha;
  const unsigned threads = options.threads <= 1 ? 1 : options.threads;
  Timer timer;

  std::vector<double> rank(n, 0.0);
  std::vector<double> gamma(n, 1.0 / n);  // alive mass, starts uniform

  SolveStats stats;
  double rsum = 1.0;

  if (threads > 1) {
    const auto& offsets = graph.out_offsets();
    const std::vector<uint64_t> row_bounds = BalancedChunkBounds(
        n, threads,
        [&](uint64_t v) { return offsets[v + 1] - offsets[v] + 1; });
    ThreadDenseBuffers local;
    ThreadDenseBuffers& deltas =
        thread_scratch != nullptr ? *thread_scratch : local;
    EnsureThreadBuffers(&deltas, threads, n);
    std::vector<double> chunk_dangling(threads, 0.0);
    std::vector<uint64_t> chunk_pushes(threads, 0);
    std::vector<uint64_t> chunk_edges(threads, 0);
    while (rsum > options.lambda &&
           stats.iterations < options.max_iterations) {
      ScatterMergeStep(
          n, row_bounds, threads, deltas,
          [&](unsigned c, uint64_t row_begin, uint64_t row_end,
              std::vector<double>& delta) {
            double dangling = 0.0;
            for (uint64_t v = row_begin; v < row_end; ++v) {
              const double g = gamma[v];
              if (g == 0.0) continue;
              rank[v] += alpha * g;
              const double push = (1.0 - alpha) * g;
              const NodeId d = graph.OutDegree(static_cast<NodeId>(v));
              if (d == 0) {
                dangling += push;
                chunk_edges[c] += 1;
              } else {
                const double inc = push / d;
                for (NodeId u : graph.OutNeighbors(static_cast<NodeId>(v))) {
                  delta[u] += inc;
                }
                chunk_edges[c] += d;
              }
              chunk_pushes[c]++;
            }
            chunk_dangling[c] = dangling;
          },
          gamma, /*accumulate=*/false,
          // Between scatter and merge: fold the per-chunk dangling mass
          // into the uniform share every merged entry receives.
          [&] {
            double dangling = 0.0;
            for (unsigned w = 0; w < threads; ++w) {
              dangling += chunk_dangling[w];
              chunk_dangling[w] = 0.0;
              stats.push_operations += chunk_pushes[w];
              stats.edge_pushes += chunk_edges[w];
              chunk_pushes[w] = 0;
              chunk_edges[w] = 0;
            }
            return dangling > 0.0 ? dangling / n : 0.0;
          });
      rsum *= (1.0 - alpha);
      stats.iterations++;
    }
  } else {
    std::vector<double> next(n, 0.0);
    while (rsum > options.lambda &&
           stats.iterations < options.max_iterations) {
      double dangling = 0.0;
      for (NodeId v = 0; v < n; ++v) {
        const double g = gamma[v];
        if (g == 0.0) continue;
        rank[v] += alpha * g;
        const double push = (1.0 - alpha) * g;
        const NodeId d = graph.OutDegree(v);
        if (d == 0) {
          dangling += push;
          stats.edge_pushes += 1;
        } else {
          const double inc = push / d;
          for (NodeId u : graph.OutNeighbors(v)) next[u] += inc;
          stats.edge_pushes += d;
        }
        stats.push_operations++;
      }
      if (dangling > 0.0) {
        const double share = dangling / n;
        for (NodeId v = 0; v < n; ++v) next[v] += share;
      }
      gamma.swap(next);
      std::fill(next.begin(), next.end(), 0.0);
      rsum *= (1.0 - alpha);
      stats.iterations++;
    }
  }
  // Fold the remaining alive mass in as if it stopped where it stands —
  // bounds the final error by lambda while keeping the sum exactly 1.
  for (NodeId v = 0; v < n; ++v) rank[v] += gamma[v];

  stats.final_rsum = rsum;
  stats.seconds = timer.ElapsedSeconds();
  if (stats_out != nullptr) *stats_out = stats;
  return rank;
}

}  // namespace ppr
