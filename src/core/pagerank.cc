#include "core/pagerank.h"

#include "util/timer.h"

namespace ppr {

std::vector<double> PageRank(const Graph& graph,
                             const PageRankOptions& options,
                             SolveStats* stats_out) {
  const NodeId n = graph.num_nodes();
  PPR_CHECK(n > 0);
  PPR_CHECK(options.alpha > 0.0 && options.alpha < 1.0);
  PPR_CHECK(options.lambda > 0.0);
  const double alpha = options.alpha;
  Timer timer;

  std::vector<double> rank(n, 0.0);
  std::vector<double> gamma(n, 1.0 / n);  // alive mass, starts uniform
  std::vector<double> next(n, 0.0);

  SolveStats stats;
  double rsum = 1.0;
  while (rsum > options.lambda &&
         stats.iterations < options.max_iterations) {
    double dangling = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      const double g = gamma[v];
      if (g == 0.0) continue;
      rank[v] += alpha * g;
      const double push = (1.0 - alpha) * g;
      const NodeId d = graph.OutDegree(v);
      if (d == 0) {
        dangling += push;
        stats.edge_pushes += 1;
      } else {
        const double inc = push / d;
        for (NodeId u : graph.OutNeighbors(v)) next[u] += inc;
        stats.edge_pushes += d;
      }
      stats.push_operations++;
    }
    if (dangling > 0.0) {
      const double share = dangling / n;
      for (NodeId v = 0; v < n; ++v) next[v] += share;
    }
    gamma.swap(next);
    std::fill(next.begin(), next.end(), 0.0);
    rsum *= (1.0 - alpha);
    stats.iterations++;
  }
  // Fold the remaining alive mass in as if it stopped where it stands —
  // bounds the final error by lambda while keeping the sum exactly 1.
  for (NodeId v = 0; v < n; ++v) rank[v] += gamma[v];

  stats.final_rsum = rsum;
  stats.seconds = timer.ElapsedSeconds();
  if (stats_out != nullptr) *stats_out = stats;
  return rank;
}

}  // namespace ppr
