#include "core/priority_push.h"

#include "util/d_heap.h"
#include "util/timer.h"

namespace ppr {

SolveStats PriorityForwardPush(const Graph& graph, NodeId source,
                               const ForwardPushOptions& options,
                               PprEstimate* out, ConvergenceTrace* trace) {
  PPR_CHECK(source < graph.num_nodes());
  PPR_CHECK(options.rmax > 0.0);
  PPR_CHECK(options.alpha > 0.0 && options.alpha < 1.0);

  const NodeId n = graph.num_nodes();
  const double alpha = options.alpha;
  Timer timer;
  if (trace != nullptr) trace->Start();

  out->EnsureStartState(n, source, options.assume_initialized);
  std::vector<double>& reserve = out->reserve;
  std::vector<double>& residue = out->residue;

  // Heap priority = unit-cost benefit r(s,v)/deff(v); a node is active
  // iff its benefit exceeds rmax (same active set as Algorithm 1).
  DHeap heap(n);
  auto benefit = [&](NodeId v) {
    return residue[v] / static_cast<double>(EffectiveDegree(graph, v));
  };
  heap.Update(source, benefit(source));

  SolveStats stats;
  double rsum = 1.0;
  while (!heap.empty() && heap.TopPriority() > options.rmax &&
         (options.stop_rsum <= 0.0 || rsum > options.stop_rsum)) {
    const NodeId v = heap.PopTop();
    const double r = residue[v];
    reserve[v] += alpha * r;
    rsum -= alpha * r;
    const double push = (1.0 - alpha) * r;
    const NodeId d = graph.OutDegree(v);
    residue[v] = 0.0;
    if (d == 0) {
      residue[source] += push;
      if (benefit(source) > options.rmax) {
        heap.Update(source, benefit(source));
      }
      stats.edge_pushes += 1;
    } else {
      const double inc = push / d;
      for (NodeId u : graph.OutNeighbors(v)) {
        residue[u] += inc;
        const double b = benefit(u);
        if (b > options.rmax) heap.Update(u, b);
      }
      stats.edge_pushes += d;
    }
    stats.push_operations++;
    if (trace != nullptr && trace->Due(stats.edge_pushes)) {
      trace->Record(stats.edge_pushes, rsum);
    }
  }

  stats.final_rsum = rsum;
  stats.seconds = timer.ElapsedSeconds();
  if (trace != nullptr) trace->Record(stats.edge_pushes, rsum);
  return stats;
}

}  // namespace ppr
