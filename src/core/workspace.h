#ifndef PPR_CORE_WORKSPACE_H_
#define PPR_CORE_WORKSPACE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace ppr {

/// The (reserve, residue) pair every push-style SSPPR algorithm maintains
/// (§3.2 of the paper):
///
///  * reserve[v] = π̂(s, v), an underestimate of the true PPR π(s, v);
///  * residue[v] = r(s, v), probability mass of the alive random walk not
///    yet converted into reserve.
///
/// Invariant (mass conservation): ReserveSum() + ResidueSum() == 1 up to
/// floating-point error, at every point of every algorithm.
struct PprEstimate {
  std::vector<double> reserve;
  std::vector<double> residue;

  /// Initializes to the algorithms' common start state: all reserves 0,
  /// all residues 0 except residue[source] = 1.
  void Reset(NodeId n, NodeId source) {
    reserve.assign(n, 0.0);
    residue.assign(n, 0.0);
    residue[source] = 1.0;
  }

  /// Puts the estimate into the start state honoring the
  /// assume_initialized convention shared by the push solvers: when
  /// set, the caller already initialized the buffers (e.g. a
  /// SolverContext sparse reset) and only the sizes are validated —
  /// the O(n) assign is skipped.
  void EnsureStartState(NodeId n, NodeId source, bool assume_initialized) {
    if (assume_initialized) {
      PPR_CHECK(reserve.size() == n);
      PPR_CHECK(residue.size() == n);
    } else {
      Reset(n, source);
    }
  }

  double ReserveSum() const {
    double sum = 0.0;
    for (double x : reserve) sum += x;
    return sum;
  }

  /// The exact ℓ1-error of `reserve` against the true PPR vector
  /// (Equation (7) of the paper).
  double ResidueSum() const {
    double sum = 0.0;
    for (double x : residue) sum += x;
    return sum;
  }
};

/// Counters common to all solvers. "Edge pushes" is the paper's residue-
/// update count (Figure 6's x-axis): a push on v costs d_v updates (1 for
/// a dead end, whose mass is redirected to the source).
struct SolveStats {
  uint64_t push_operations = 0;
  uint64_t edge_pushes = 0;
  uint64_t iterations = 0;
  /// Monte-Carlo phase counters (approximate algorithms only).
  uint64_t random_walks = 0;
  uint64_t walk_steps = 0;
  double seconds = 0.0;
  /// ℓ1 error bound (= residue sum) at termination of the push phase.
  double final_rsum = 0.0;
};

/// Per-thread dense accumulators used by the parallel iteration kernels
/// (PowItr, PageRank, PowerPush's scan phase): worker w scatters its
/// chunk's pushes into buffer w, and a merge pass folds the buffers into
/// the real vector in fixed worker order so results are deterministic
/// for a given thread count.
///
/// Contract: buffers handed to a kernel must be all-zero, and every
/// kernel returns them all-zero (the merge re-zeroes whatever the
/// scatter touched), so a SolverContext can lend the same buffers to
/// query after query without O(n·threads) reinitialization.
using ThreadDenseBuffers = std::vector<std::vector<double>>;

/// Sizes `buffers` to `count` all-zero vectors of length n, reusing (and
/// trusting, per the contract above) buffers that already match.
inline void EnsureThreadBuffers(ThreadDenseBuffers* buffers, unsigned count,
                                NodeId n) {
  if (buffers->size() > count) buffers->resize(count);
  while (buffers->size() < count) buffers->emplace_back();
  for (auto& buffer : *buffers) {
    if (buffer.size() != n) buffer.assign(n, 0.0);
  }
}

/// Effective degree used in the active-node test r(s,v) > d_v * rmax.
/// Dead ends use 1 so that the test stays meaningful (the paper assumes no
/// dead ends; we instead redirect their mass to the source, and a dead end
/// is considered active while it still holds more than rmax mass).
inline NodeId EffectiveDegree(const Graph& graph, NodeId v) {
  NodeId d = graph.OutDegree(v);
  return d == 0 ? 1 : d;
}

}  // namespace ppr

#endif  // PPR_CORE_WORKSPACE_H_
