#include "core/multi_source.h"

#include <algorithm>
#include <functional>
#include <limits>

#include "core/scatter_merge.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace ppr {

void MultiSourceFusedSolve(const Graph& graph,
                           std::span<const NodeId> sources,
                           std::span<const double> alpha,
                           std::span<const double> threshold,
                           std::span<const size_t> top_k,
                           std::span<const CancelToken* const> cancels,
                           const MultiSourceOptions& options,
                           std::vector<double>& reserve,
                           std::vector<double>& residue,
                           std::vector<double>& next,
                           ThreadDenseBuffers* thread_scratch,
                           const MultiSourceOutputs& out) {
  const NodeId n = graph.num_nodes();
  const size_t B = sources.size();
  PPR_CHECK(alpha.size() == B && threshold.size() == B);
  PPR_CHECK(out.scores.size() == B && out.stats.size() == B);
  PPR_CHECK(out.residues.empty() || out.residues.size() == B);
  PPR_CHECK(out.early_retired.empty() || out.early_retired.size() == B);
  PPR_CHECK(top_k.empty() || top_k.size() == B);
  PPR_CHECK(cancels.empty() || cancels.size() == B);
  const size_t words = static_cast<size_t>(n) * B;
  PPR_CHECK(words <= std::numeric_limits<NodeId>::max());
  PPR_CHECK(reserve.size() == words && residue.size() == words);
  if (B == 0 || n == 0) return;
  for (size_t b = 0; b < B; ++b) {
    PPR_CHECK(sources[b] < n);
    PPR_CHECK(threshold[b] > 0.0);
    PPR_CHECK(alpha[b] > 0.0 && alpha[b] < 1.0);
  }

  const bool push_mode = options.push_mode;
  const unsigned threads = options.threads <= 1 ? 1 : options.threads;
  PPR_CHECK(threads == 1 || thread_scratch != nullptr);
  PPR_CHECK(threads > 1 || next.size() == words);
  Timer timer;

  // Seed e_{source_b} into every column.
  for (size_t b = 0; b < B; ++b) {
    residue[static_cast<size_t>(sources[b]) * B + b] = 1.0;
  }

  std::vector<double> rsum(B, 1.0);
  std::vector<double> sweep_rsum(B, 0.0);
  std::vector<uint64_t> sweep_pushes(B, 0);
  std::vector<double> gap_scratch;

  auto export_column = [&](uint32_t b, bool early) {
    double* scores = out.scores[b];
    for (NodeId v = 0; v < n; ++v) {
      scores[v] = reserve[static_cast<size_t>(v) * B + b];
    }
    if (!out.residues.empty() && out.residues[b] != nullptr) {
      double* residues = out.residues[b];
      for (NodeId v = 0; v < n; ++v) {
        residues[v] = residue[static_cast<size_t>(v) * B + b];
      }
    }
    out.stats[b].final_rsum = rsum[b];
    out.stats[b].seconds = timer.ElapsedSeconds();
    if (!out.early_retired.empty()) out.early_retired[b] = early ? 1 : 0;
  };

  // A source whose k-th / (k+1)-th reserve gap exceeds its unsettled
  // residue mass cannot have its top-k set changed by further pushes
  // (each score can only grow by at most rsum_b).
  auto topk_separated = [&](uint32_t b, size_t k, double slack) {
    if (k >= n) return false;  // the whole vector is the top-k
    gap_scratch.resize(n);
    for (NodeId v = 0; v < n; ++v) {
      gap_scratch[v] = reserve[static_cast<size_t>(v) * B + b];
    }
    std::nth_element(gap_scratch.begin(),
                     gap_scratch.begin() + static_cast<ptrdiff_t>(k - 1),
                     gap_scratch.end(), std::greater<double>());
    const double kth = gap_scratch[k - 1];
    const double runner_up = *std::max_element(
        gap_scratch.begin() + static_cast<ptrdiff_t>(k), gap_scratch.end());
    return kth - runner_up > slack;
  };

  // The serial per-source loops enter on `rsum > λ` (power) or
  // unconditionally for the first scan (push); sources that never
  // enter export their seed state untouched.
  std::vector<uint32_t> active;
  active.reserve(B);
  for (size_t b = 0; b < B; ++b) {
    const bool enter =
        options.max_iterations > 0 && (push_mode || rsum[b] > threshold[b]);
    if (enter) {
      active.push_back(static_cast<uint32_t>(b));
    } else {
      export_column(static_cast<uint32_t>(b), false);
    }
  }

  const size_t deg_b = B;  // column stride, hoisted for the hot loops

  auto serial_sweep = [&]() {
    for (NodeId v = 0; v < n; ++v) {
      const size_t row = static_cast<size_t>(v) * deg_b;
      const NodeId d = graph.OutDegree(v);
      const double deff = static_cast<double>(d == 0 ? 1 : d);
      for (uint32_t b : active) {
        const double r = residue[row + b];
        if (r == 0.0) continue;
        if (push_mode && !(r > deff * threshold[b])) {
          next[row + b] += r;  // below-threshold mass carries unchanged
          sweep_rsum[b] += r;
          continue;
        }
        reserve[row + b] += alpha[b] * r;
        const double push = (1.0 - alpha[b]) * r;
        if (d == 0) {
          next[static_cast<size_t>(sources[b]) * deg_b + b] += push;
          out.stats[b].edge_pushes += 1;
        } else {
          const double inc = push / static_cast<double>(d);
          for (NodeId u : graph.OutNeighbors(v)) {
            next[static_cast<size_t>(u) * deg_b + b] += inc;
          }
          out.stats[b].edge_pushes += d;
        }
        sweep_rsum[b] += push;
        out.stats[b].push_operations++;
        sweep_pushes[b]++;
      }
    }
  };

  // Parallel sweep state: CSR row bounds scaled into element space so
  // one chunk owns whole rows of the block matrix, plus per-chunk
  // per-source counters folded in ascending chunk order (the same
  // deterministic grouping as ParallelPowerStep).
  std::vector<uint64_t> elem_bounds;
  std::vector<double> chunk_rsum;
  std::vector<uint64_t> chunk_pushes;
  std::vector<uint64_t> chunk_edges;
  if (threads > 1) {
    const auto& offsets = graph.out_offsets();
    elem_bounds = BalancedChunkBounds(
        n, threads,
        [&](uint64_t v) { return offsets[v + 1] - offsets[v] + 1; });
    for (uint64_t& bound : elem_bounds) bound *= B;
    EnsureThreadBuffers(thread_scratch, threads, static_cast<NodeId>(words));
    chunk_rsum.assign(static_cast<size_t>(threads) * B, 0.0);
    chunk_pushes.assign(static_cast<size_t>(threads) * B, 0);
    chunk_edges.assign(static_cast<size_t>(threads) * B, 0);
  }

  auto parallel_sweep = [&]() {
    ScatterMergeStep(
        static_cast<NodeId>(words), elem_bounds, threads, *thread_scratch,
        [&](unsigned c, uint64_t elem_begin, uint64_t elem_end,
            std::vector<double>& delta) {
          const size_t base = static_cast<size_t>(c) * deg_b;
          for (uint64_t e = elem_begin; e < elem_end; e += deg_b) {
            const NodeId v = static_cast<NodeId>(e / deg_b);
            const size_t row = static_cast<size_t>(e);
            const NodeId d = graph.OutDegree(v);
            const double deff = static_cast<double>(d == 0 ? 1 : d);
            for (uint32_t b : active) {
              const double r = residue[row + b];
              if (r == 0.0) continue;
              if (push_mode && !(r > deff * threshold[b])) {
                delta[row + b] += r;
                chunk_rsum[base + b] += r;
                continue;
              }
              reserve[row + b] += alpha[b] * r;
              const double push = (1.0 - alpha[b]) * r;
              if (d == 0) {
                delta[static_cast<size_t>(sources[b]) * deg_b + b] += push;
                chunk_edges[base + b] += 1;
              } else {
                const double inc = push / static_cast<double>(d);
                for (NodeId u : graph.OutNeighbors(v)) {
                  delta[static_cast<size_t>(u) * deg_b + b] += inc;
                }
                chunk_edges[base + b] += d;
              }
              chunk_rsum[base + b] += push;
              chunk_pushes[base + b]++;
            }
          }
        },
        residue, /*accumulate=*/false);
    for (unsigned c = 0; c < threads; ++c) {
      const size_t base = static_cast<size_t>(c) * deg_b;
      for (uint32_t b : active) {
        sweep_rsum[b] += chunk_rsum[base + b];
        sweep_pushes[b] += chunk_pushes[base + b];
        out.stats[b].push_operations += chunk_pushes[base + b];
        out.stats[b].edge_pushes += chunk_edges[base + b];
        chunk_rsum[base + b] = 0.0;
        chunk_pushes[base + b] = 0;
        chunk_edges[base + b] = 0;
      }
    }
  };

  while (!active.empty()) {
    if (options.block_cancel != nullptr && options.block_cancel->ShouldStop()) {
      break;
    }
    if (!cancels.empty()) {
      size_t kept = 0;
      for (uint32_t b : active) {
        if (cancels[b] != nullptr && cancels[b]->ShouldStop()) {
          export_column(b, false);
        } else {
          active[kept++] = b;
        }
      }
      active.resize(kept);
      if (active.empty()) break;
    }

    for (uint32_t b : active) {
      sweep_rsum[b] = 0.0;
      sweep_pushes[b] = 0;
    }
    if (threads == 1) {
      serial_sweep();
      residue.swap(next);
      std::fill(next.begin(), next.end(), 0.0);
    } else {
      parallel_sweep();
    }
    for (uint32_t b : active) {
      rsum[b] = sweep_rsum[b];
      out.stats[b].iterations++;
    }

    size_t kept = 0;
    for (uint32_t b : active) {
      const bool exhausted = out.stats[b].iterations >= options.max_iterations;
      const bool converged =
          push_mode ? sweep_pushes[b] == 0 : !(rsum[b] > threshold[b]);
      if (converged || exhausted) {
        export_column(b, false);
        continue;
      }
      if (options.topk_early && !top_k.empty() && top_k[b] > 0 &&
          topk_separated(b, top_k[b], rsum[b])) {
        export_column(b, true);
        continue;
      }
      active[kept++] = b;
    }
    active.resize(kept);
  }

  // A block-level cancel leaves sources mid-flight; export their
  // partial state so callers observing the token still get columns.
  for (uint32_t b : active) export_column(b, false);
}

}  // namespace ppr
