#include "core/power_iteration.h"

#include <vector>

#include "util/timer.h"

namespace ppr {

SolveStats PowerIteration(const Graph& graph, NodeId source,
                          const PowerIterationOptions& options,
                          PprEstimate* out, ConvergenceTrace* trace) {
  PPR_CHECK(source < graph.num_nodes());
  PPR_CHECK(options.lambda > 0.0);
  PPR_CHECK(options.alpha > 0.0 && options.alpha < 1.0);

  const NodeId n = graph.num_nodes();
  const double alpha = options.alpha;
  Timer timer;
  if (trace != nullptr) trace->Start();

  out->EnsureStartState(n, source, options.assume_initialized);
  std::vector<double>& gamma = out->residue;  // γ_j, the alive-walk mass
  std::vector<double> next(n, 0.0);           // γ_{j+1}

  SolveStats stats;
  double rsum = 1.0;
  while (rsum > options.lambda && stats.iterations < options.max_iterations) {
    // One simultaneous step: π̂ += α γ;  γ' = (1−α) γ P.
    double next_rsum = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      const double r = gamma[v];
      if (r == 0.0) continue;
      out->reserve[v] += alpha * r;
      const double push = (1.0 - alpha) * r;
      const NodeId d = graph.OutDegree(v);
      if (d == 0) {
        next[source] += push;  // dead end: walk jumps back to the source
        stats.edge_pushes += 1;
      } else {
        const double inc = push / d;
        for (NodeId u : graph.OutNeighbors(v)) next[u] += inc;
        stats.edge_pushes += d;
      }
      next_rsum += push;
      stats.push_operations++;
    }
    gamma.swap(next);
    std::fill(next.begin(), next.end(), 0.0);
    rsum = next_rsum;
    stats.iterations++;
    if (trace != nullptr && trace->Due(stats.edge_pushes)) {
      trace->Record(stats.edge_pushes, rsum);
    }
  }

  if (trace != nullptr) trace->Record(stats.edge_pushes, rsum);
  stats.final_rsum = rsum;
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace ppr
