#include "core/power_iteration.h"

#include <vector>

#include "core/scatter_merge.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace ppr {

namespace {

/// One parallel γ → (π̂, γ') step: chunks scatter their rows' pushes
/// into per-chunk buffers, then the merge rebuilds gamma as the
/// chunk-ordered sum (ScatterMergeStep re-zeroes the buffers). Returns
/// the new rsum.
double ParallelPowerStep(const Graph& graph, NodeId source, double alpha,
                         const std::vector<uint64_t>& row_bounds,
                         unsigned threads, std::vector<double>& gamma,
                         std::vector<double>& reserve,
                         ThreadDenseBuffers& deltas,
                         std::vector<double>& chunk_rsum,
                         std::vector<uint64_t>& chunk_pushes,
                         std::vector<uint64_t>& chunk_edges,
                         SolveStats* stats) {
  ScatterMergeStep(
      graph.num_nodes(), row_bounds, threads, deltas,
      [&](unsigned c, uint64_t row_begin, uint64_t row_end,
          std::vector<double>& delta) {
        double rsum = 0.0;
        for (uint64_t v = row_begin; v < row_end; ++v) {
          const double r = gamma[v];
          if (r == 0.0) continue;
          reserve[v] += alpha * r;
          const double push = (1.0 - alpha) * r;
          const NodeId d = graph.OutDegree(static_cast<NodeId>(v));
          if (d == 0) {
            delta[source] += push;
            chunk_edges[c] += 1;
          } else {
            const double inc = push / d;
            for (NodeId u : graph.OutNeighbors(static_cast<NodeId>(v))) {
              delta[u] += inc;
            }
            chunk_edges[c] += d;
          }
          rsum += push;
          chunk_pushes[c]++;
        }
        chunk_rsum[c] = rsum;
      },
      gamma, /*accumulate=*/false);

  double next_rsum = 0.0;
  for (unsigned w = 0; w < threads; ++w) {
    next_rsum += chunk_rsum[w];
    stats->push_operations += chunk_pushes[w];
    stats->edge_pushes += chunk_edges[w];
    chunk_pushes[w] = 0;
    chunk_edges[w] = 0;
  }
  return next_rsum;
}

}  // namespace

SolveStats PowerIteration(const Graph& graph, NodeId source,
                          const PowerIterationOptions& options,
                          PprEstimate* out, ConvergenceTrace* trace,
                          ThreadDenseBuffers* thread_scratch) {
  PPR_CHECK(source < graph.num_nodes());
  PPR_CHECK(options.lambda > 0.0);
  PPR_CHECK(options.alpha > 0.0 && options.alpha < 1.0);

  const NodeId n = graph.num_nodes();
  const double alpha = options.alpha;
  const unsigned threads = options.threads <= 1 ? 1 : options.threads;
  Timer timer;
  if (trace != nullptr) trace->Start();

  out->EnsureStartState(n, source, options.assume_initialized);
  std::vector<double>& gamma = out->residue;  // γ_j, the alive-walk mass

  SolveStats stats;
  double rsum = 1.0;

  if (threads > 1) {
    const auto& offsets = graph.out_offsets();
    const std::vector<uint64_t> row_bounds = BalancedChunkBounds(
        n, threads,
        [&](uint64_t v) { return offsets[v + 1] - offsets[v] + 1; });
    ThreadDenseBuffers local;
    ThreadDenseBuffers& deltas =
        thread_scratch != nullptr ? *thread_scratch : local;
    EnsureThreadBuffers(&deltas, threads, n);
    std::vector<double> chunk_rsum(threads, 0.0);
    std::vector<uint64_t> chunk_pushes(threads, 0);
    std::vector<uint64_t> chunk_edges(threads, 0);
    while (rsum > options.lambda &&
           stats.iterations < options.max_iterations) {
      if (options.cancel != nullptr && options.cancel->ShouldStop()) break;
      rsum = ParallelPowerStep(graph, source, alpha, row_bounds, threads,
                               gamma, out->reserve, deltas, chunk_rsum,
                               chunk_pushes, chunk_edges, &stats);
      stats.iterations++;
      if (trace != nullptr && trace->Due(stats.edge_pushes)) {
        trace->Record(stats.edge_pushes, rsum);
      }
    }
  } else {
    std::vector<double> next(n, 0.0);  // γ_{j+1}
    while (rsum > options.lambda &&
           stats.iterations < options.max_iterations) {
      if (options.cancel != nullptr && options.cancel->ShouldStop()) break;
      // One simultaneous step: π̂ += α γ;  γ' = (1−α) γ P.
      double next_rsum = 0.0;
      for (NodeId v = 0; v < n; ++v) {
        const double r = gamma[v];
        if (r == 0.0) continue;
        out->reserve[v] += alpha * r;
        const double push = (1.0 - alpha) * r;
        const NodeId d = graph.OutDegree(v);
        if (d == 0) {
          next[source] += push;  // dead end: walk jumps back to the source
          stats.edge_pushes += 1;
        } else {
          const double inc = push / d;
          for (NodeId u : graph.OutNeighbors(v)) next[u] += inc;
          stats.edge_pushes += d;
        }
        next_rsum += push;
        stats.push_operations++;
      }
      gamma.swap(next);
      std::fill(next.begin(), next.end(), 0.0);
      rsum = next_rsum;
      stats.iterations++;
      if (trace != nullptr && trace->Due(stats.edge_pushes)) {
        trace->Record(stats.edge_pushes, rsum);
      }
    }
  }

  if (trace != nullptr) trace->Record(stats.edge_pushes, rsum);
  stats.final_rsum = rsum;
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace ppr
