#ifndef PPR_CORE_SIM_FORWARD_PUSH_H_
#define PPR_CORE_SIM_FORWARD_PUSH_H_

#include "core/trace.h"
#include "core/workspace.h"
#include "graph/graph.h"

namespace ppr {

/// Simultaneous Forward Push (§4.1) — the special FwdPush variant that is
/// *exactly* equivalent to Power Iteration (Lemma 4.1): every node with a
/// non-zero residue is pushed simultaneously in each iteration
/// (r_max = 0), so the residue vector after j iterations equals γ_j of
/// PowItr and the reserve vector equals π̂^(j).
///
/// The implementation deliberately performs its floating-point operations
/// in the same order as PowerIteration() so the equivalence holds not only
/// mathematically but bit-for-bit — the equivalence test in
/// tests/sim_equivalence_test.cc asserts exact equality.
SolveStats SimForwardPush(const Graph& graph, NodeId source, double alpha,
                          double lambda, PprEstimate* out,
                          ConvergenceTrace* trace = nullptr,
                          uint64_t max_iterations = 100000);

}  // namespace ppr

#endif  // PPR_CORE_SIM_FORWARD_PUSH_H_
