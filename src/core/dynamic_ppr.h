#ifndef PPR_CORE_DYNAMIC_PPR_H_
#define PPR_CORE_DYNAMIC_PPR_H_

#include "core/workspace.h"
#include "graph/dynamic_graph.h"

namespace ppr {

/// Single-source PPR on an evolving graph — the dynamic setting of the
/// paper's related work (§7: Ohsaka et al. KDD'15, Zhang et al. KDD'16).
/// Maintains a (reserve, residue) pair whose push invariant
///
///     r = e_s − (1/α)·π̂·(I − (1−α)P)
///
/// is restored *algebraically* after every edge insertion: only row u of
/// P changes when (u, w) arrives, so the exact correction is local,
///
///     Δr(x) = (1−α)/α · π̂(u) · (P'[u][x] − P[u][x]),
///
/// touching u's old neighbors (their transition probability shrinks from
/// 1/d to 1/(d+1) — residues may go *negative*, which the tracker and
/// its error bound handle via |r|) and the new neighbor w. Cost: O(d_u)
/// per insertion plus local pushes, versus O(m log 1/λ) from scratch.
///
/// Error guarantee at any point: ‖π̂ − π‖₁ ≤ Σ_v |r(v)| ≤ (m+k)·r_max
/// after Refresh() (k = dead ends), mirroring Equation (7).
class DynamicSsppr {
 public:
  struct Options {
    double alpha = 0.2;
    /// Activity threshold: a node is pushed while |r| > deff·rmax.
    double rmax = 1e-7;
  };

  /// The tracker keeps a reference to `graph`; insert edges through
  /// AddEdge below (mutating `graph` behind the tracker's back breaks
  /// the invariant).
  DynamicSsppr(DynamicGraph* graph, NodeId source, const Options& options);

  /// Applies the insertion to the graph and repairs the estimate.
  /// Returns the number of push operations performed.
  uint64_t AddEdge(NodeId u, NodeId w);

  /// Pushes until no node is active (call after a batch of insertions if
  /// intermediate accuracy does not matter; AddEdge already refreshes).
  uint64_t Refresh();

  /// Current estimate; reserve ≈ π_s within the bound above.
  const PprEstimate& estimate() const { return estimate_; }

  /// Σ|r| — the current ℓ1-error bound.
  double ResidueL1() const;

  NodeId source() const { return source_; }

 private:
  NodeId EffectiveDegreeOf(NodeId v) const {
    NodeId d = graph_->OutDegree(v);
    return d == 0 ? 1 : d;
  }
  bool IsActive(NodeId v) const;
  uint64_t PushLoop();

  DynamicGraph* graph_;
  NodeId source_;
  Options options_;
  PprEstimate estimate_;
};

}  // namespace ppr

#endif  // PPR_CORE_DYNAMIC_PPR_H_
