#ifndef PPR_CORE_DYNAMIC_PPR_H_
#define PPR_CORE_DYNAMIC_PPR_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/workspace.h"
#include "graph/dynamic_graph.h"
#include "util/status.h"

namespace ppr {

/// Single-source PPR on an evolving graph — the dynamic setting of the
/// paper's related work (§7: Ohsaka et al. KDD'15, Zhang et al. KDD'16).
/// Maintains a (reserve, residue) pair whose push invariant
///
///     r = e_s − (1/α)·π̂·(I − (1−α)P)
///
/// is restored *algebraically* after every edge mutation: only row u of
/// P changes when (u, w) arrives or leaves, so the exact correction is
/// local,
///
///     Δr(x) = (1−α)/α · π̂(u) · (P'[u][x] − P[u][x]),
///
/// touching u's neighbors and w. Insertions shrink the old neighbors'
/// transition probability (1/d → 1/(d+1)); deletions grow the remaining
/// ones (1/d → 1/(d−1)) and take w's 1/d away entirely — in both
/// directions residues may go *negative*, which the tracker and its
/// error bound handle via |r|. Deleting a node's last edge turns its row
/// into the dead-end row e_source, the exact mirror of a dead end
/// gaining its first edge. Cost: O(d_u) per mutation plus local pushes,
/// versus O(m log 1/λ) from scratch.
///
/// Error guarantee at any point: ‖π̂ − π‖₁ ≤ Σ_v |r(v)| ≤ (m+k)·r_max
/// after Refresh() (k = dead ends), mirroring Equation (7).
class DynamicSsppr {
 public:
  struct Options {
    double alpha = 0.2;
    /// Activity threshold: a node is pushed while |r| > deff·rmax.
    double rmax = 1e-7;
  };

  /// The tracker keeps a reference to `graph`; mutate it through
  /// AddEdge/RemoveEdge below, or through a DynamicSspprPool when
  /// several trackers share the graph (mutating `graph` behind the
  /// tracker's back breaks the invariant).
  DynamicSsppr(DynamicGraph* graph, NodeId source, const Options& options);

  /// Applies the insertion to the graph and repairs the estimate.
  /// Returns the number of push operations performed.
  uint64_t AddEdge(NodeId u, NodeId w);

  /// Removes one occurrence of (u, w) — which must exist — and repairs.
  /// Returns the number of push operations performed.
  uint64_t RemoveEdge(NodeId u, NodeId w);

  /// Pushes until no node is active. AddEdge/RemoveEdge already refresh;
  /// pool orchestration defers this to the end of a batch.
  uint64_t Refresh();

  // ---- pool orchestration (graph mutated by the caller) --------------
  //
  // The algebraic correction reads row u of P *before* the mutation, so
  // a pool sharing one graph across trackers calls Observe* on every
  // tracker, then mutates the graph once, and Refresh()es after the
  // batch. The invariant is maintained exactly between observations —
  // refresh timing only affects the error bound, not correctness.

  /// Correction for an upcoming insertion of (u, w); no push, no graph
  /// mutation.
  void ObserveBeforeInsert(NodeId u, NodeId w);

  /// Correction for an upcoming deletion of one occurrence of (u, w);
  /// the edge must currently exist.
  void ObserveBeforeDelete(NodeId u, NodeId w);

  /// Resizes the estimate to n nodes after the graph gained isolated
  /// nodes (kAddNode). Exact, no repair needed: a node nothing points
  /// at has π̂ = 0 and r = 0, so the push invariant extends with zeros.
  void GrowTo(NodeId n);

  /// Current estimate; reserve ≈ π_s within the bound above.
  const PprEstimate& estimate() const { return estimate_; }

  /// Σ|r| — the current ℓ1-error bound.
  double ResidueL1() const;

  NodeId source() const { return source_; }
  const Options& options() const { return options_; }

 private:
  NodeId EffectiveDegreeOf(NodeId v) const {
    NodeId d = graph_->OutDegree(v);
    return d == 0 ? 1 : d;
  }
  bool IsActive(NodeId v) const;
  uint64_t PushLoop();

  DynamicGraph* graph_;
  NodeId source_;
  Options options_;
  PprEstimate estimate_;
};

/// A set of per-source trackers sharing one DynamicGraph and one update
/// stream — the multi-query shape of the evolving-graph subsystem (the
/// "dynfwdpush" solver wraps one of these). Each source pays its own
/// O(n) tracker once; an applied batch mutates the graph once and
/// repairs every tracker, so k concurrent sources cost k local
/// corrections per update, not k copies of the graph.
class DynamicSspprPool {
 public:
  /// The pool keeps a reference to `graph`; after construction, mutate
  /// it only through Apply().
  DynamicSspprPool(DynamicGraph* graph, const DynamicSsppr::Options& options);

  /// The tracker for `source`, created (from-scratch push at the current
  /// epoch) on first use. Stable address for the pool's lifetime.
  DynamicSsppr& TrackerFor(NodeId source);

  /// Validates and applies the batch: per-update algebraic corrections
  /// on every tracker interleaved with the graph mutations, then one
  /// Refresh per tracker. On validation error nothing is applied. The
  /// total repair pushes are added to *pushes when non-null.
  ///
  /// `applied`, when set, runs immediately after each mutation lands in
  /// the graph (in batch order, before the end-of-batch refreshes) —
  /// the hook the dynamic approximate tier uses to keep its walk index
  /// in lockstep with the shared repair pool without re-validating or
  /// re-walking the batch. A kRemoveNode update fires the hook once per
  /// lowered edge deletion (as a kDelete) and then once for the marker
  /// itself; a kAddNode fires after every tracker has grown.
  Status Apply(const UpdateBatch& batch, uint64_t* pushes = nullptr,
               const std::function<void(const EdgeUpdate&)>& applied = {});

  size_t tracker_count() const { return trackers_.size(); }
  const DynamicGraph& graph() const { return *graph_; }

 private:
  DynamicGraph* graph_;
  DynamicSsppr::Options options_;
  std::unordered_map<NodeId, std::unique_ptr<DynamicSsppr>> trackers_;
};

}  // namespace ppr

#endif  // PPR_CORE_DYNAMIC_PPR_H_
