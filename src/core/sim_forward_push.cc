#include "core/sim_forward_push.h"

#include <vector>

#include "util/timer.h"

namespace ppr {

SolveStats SimForwardPush(const Graph& graph, NodeId source, double alpha,
                          double lambda, PprEstimate* out,
                          ConvergenceTrace* trace, uint64_t max_iterations) {
  PPR_CHECK(source < graph.num_nodes());
  PPR_CHECK(lambda > 0.0);
  PPR_CHECK(alpha > 0.0 && alpha < 1.0);

  const NodeId n = graph.num_nodes();
  Timer timer;
  if (trace != nullptr) trace->Start();

  out->Reset(n, source);
  std::vector<double>& residue = out->residue;  // r^(j)
  std::vector<double> next(n, 0.0);             // r^(j+1)

  SolveStats stats;
  double rsum = 1.0;
  while (rsum > lambda && stats.iterations < max_iterations) {
    // Push every node with a non-zero residue, based on the residues at
    // the start of the iteration ("simultaneous" pushes).
    double next_rsum = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      const double r = residue[v];
      if (r == 0.0) continue;
      out->reserve[v] += alpha * r;
      const double push = (1.0 - alpha) * r;
      const NodeId d = graph.OutDegree(v);
      if (d == 0) {
        next[source] += push;
        stats.edge_pushes += 1;
      } else {
        const double inc = push / d;
        for (NodeId u : graph.OutNeighbors(v)) next[u] += inc;
        stats.edge_pushes += d;
      }
      next_rsum += push;
      stats.push_operations++;
    }
    residue.swap(next);
    std::fill(next.begin(), next.end(), 0.0);
    rsum = next_rsum;
    stats.iterations++;
    if (trace != nullptr && trace->Due(stats.edge_pushes)) {
      trace->Record(stats.edge_pushes, rsum);
    }
  }

  if (trace != nullptr) trace->Record(stats.edge_pushes, rsum);
  stats.final_rsum = rsum;
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace ppr
