#ifndef PPR_SERVE_FUTURE_STATE_H_
#define PPR_SERVE_FUTURE_STATE_H_

#include <chrono>
#include <utility>

#include "api/query.h"
#include "serve/ppr_server.h"
#include "util/cancellation.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace ppr {

/// Shared completion state behind a PprFuture. Serving-tier internal:
/// PprServer publishes worker results into it, and ShardedPprServer
/// reuses it verbatim so a routed or merged query hands back the exact
/// same future type (Wait/Get/Cancel/latency semantics included) as a
/// single-server Submit.
struct PprFuture::State {
  Mutex mu;
  CondVar cv;
  bool done PPR_GUARDED_BY(mu) = false;
  Status status PPR_GUARDED_BY(mu);
  PprResult result PPR_GUARDED_BY(mu);
  std::chrono::steady_clock::time_point submitted;
  double latency_seconds PPR_GUARDED_BY(mu) = 0.0;
  /// Lives here (not in the queued request) so Cancel() keeps working
  /// while the query is in flight and the token outlives the server if
  /// the future does. Armed/chained before the request is published to
  /// the queue; only polled (atomics) afterwards.
  CancelToken token;
};

namespace internal {

/// Publishes one terminal (status, result) pair: stamps the latency
/// clock, marks the state done and wakes every waiter. Exactly-once per
/// state — the single point where a future completes, shared by the
/// worker path (PprServer::FinishRequest) and the router's merge path.
inline void PublishToFuture(PprFuture::State& state, Status status,
                            PprResult result) {
  {
    MutexLock lock(state.mu);
    state.status = std::move(status);
    state.result = std::move(result);
    state.latency_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      state.submitted)
            .count();
    state.done = true;
  }
  state.cv.NotifyAll();
}

}  // namespace internal
}  // namespace ppr

#endif  // PPR_SERVE_FUTURE_STATE_H_
