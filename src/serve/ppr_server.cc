#include "serve/ppr_server.h"

#include <algorithm>
#include <utility>

#include "api/batch_solver.h"
#include "api/registry.h"
#include "serve/future_state.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/worker_pool.h"

namespace ppr {

// ---------------------------------------------------------------- future

bool PprFuture::done() const {
  PPR_CHECK(valid());
  MutexLock lock(state_->mu);
  return state_->done;
}

void PprFuture::Wait() const {
  PPR_CHECK(valid());
  MutexLock lock(state_->mu);
  while (!state_->done) state_->cv.Wait(lock);
}

Status PprFuture::Get(PprResult* out) const {
  PPR_CHECK(valid());
  MutexLock lock(state_->mu);
  while (!state_->done) state_->cv.Wait(lock);
  if (state_->status.ok() && out != nullptr) *out = state_->result;
  return state_->status;
}

void PprFuture::Cancel() const {
  PPR_CHECK(valid());
  state_->token.RequestCancel();
}

double PprFuture::latency_seconds() const {
  PPR_CHECK(valid());
  MutexLock lock(state_->mu);
  PPR_CHECK(state_->done);
  return state_->latency_seconds;
}

// ---------------------------------------------------------------- server

namespace {

unsigned ResolveWorkers(const PprServerOptions& options) {
  return options.workers > 0 ? options.workers : ThreadBudget();
}

size_t ResolveContexts(const PprServerOptions& options) {
  return options.contexts > 0 ? options.contexts
                              : static_cast<size_t>(ResolveWorkers(options));
}

}  // namespace

PprServer::PprServer(PprServerOptions options)
    : options_(options),
      contexts_(ResolveContexts(options), options.seed),
      queue_(options.queue_capacity),
      hard_stop_(std::make_shared<std::atomic<bool>>(false)) {
  options_.workers = ResolveWorkers(options);
  options_.contexts = ResolveContexts(options);
}

PprServer::~PprServer() { Stop(); }

Status PprServer::AddSolver(std::string_view spec, const Graph& graph) {
  auto created = SolverRegistry::Global().Create(spec);
  if (!created.ok()) return created.status();
  std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
  PPR_RETURN_IF_ERROR(solver->Prepare(graph));
  return AddSolver(std::string(spec), std::move(solver));
}

Status PprServer::AddSolver(std::string name, std::unique_ptr<Solver> solver) {
  PPR_CHECK(solver != nullptr);
  MutexLock lock(mu_);
  if (started_) {
    return Status::FailedPrecondition("AddSolver after Start()");
  }
  for (const Hosted& hosted : solvers_) {
    if (hosted.name == name) {
      return Status::InvalidArgument("solver '" + name + "' already added");
    }
  }
  solvers_.push_back({std::move(name), std::move(solver),
                      std::make_unique<SharedMutex>()});
  return Status::OK();
}

Status PprServer::Start() {
  MutexLock lock(mu_);
  if (started_) return Status::FailedPrecondition("Start() called twice");
  if (solvers_.empty()) {
    return Status::FailedPrecondition("Start() with no solver added");
  }
  if (!options_.degraded.fallback_solver.empty() &&
      FindHosted(options_.degraded.fallback_solver) == nullptr) {
    return Status::FailedPrecondition(
        "degraded fallback solver '" + options_.degraded.fallback_solver +
        "' is not hosted; AddSolver it before Start()");
  }
  started_ = true;
  workers_.reserve(options_.workers);
  for (unsigned i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void PprServer::Stop() {
  StopInternal(/*bounded=*/false, std::chrono::nanoseconds{0});
}

void PprServer::Stop(std::chrono::nanoseconds drain_budget) {
  StopInternal(/*bounded=*/true, drain_budget);
}

uint64_t PprServer::FinishedCountLocked() const {
  return completed_ + failed_ + shed_ + cancelled_;
}

void PprServer::StopInternal(bool bounded,
                             std::chrono::nanoseconds drain_budget) {
  {
    MutexLock lock(mu_);
    if (!started_ || stopped_) {
      stopped_ = true;
      return;
    }
    stopped_ = true;
  }
  // Closing the queue (a) fails later Submits and (b) lets the workers
  // drain every accepted request before their Pop returns nullopt — the
  // join below therefore completes all in-flight futures.
  queue_.Close();
  if (bounded) {
    const auto deadline = std::chrono::steady_clock::now() + drain_budget;
    MutexLock lock(mu_);
    while (FinishedCountLocked() < submitted_) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        // Budget spent: flip the shared hard stop. Workers shed what is
        // still queued and in-flight solves bail at their next poll —
        // everything still completes (with Cancelled), just no longer
        // at full fidelity. The join below then finishes promptly.
        hard_stop_->store(true, std::memory_order_relaxed);
        break;
      }
      drain_cv_.WaitFor(lock, std::chrono::ceil<std::chrono::microseconds>(
                                  deadline - now));
    }
  }
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

bool PprServer::running() const {
  MutexLock lock(mu_);
  return started_ && !stopped_;
}

const PprServer::Hosted* PprServer::FindHosted(std::string_view name) const {
  if (name.empty()) return solvers_.empty() ? nullptr : &solvers_[0];
  for (const Hosted& hosted : solvers_) {
    if (hosted.name == name) return &hosted;
  }
  return nullptr;
}

Result<PprFuture> PprServer::Enqueue(const PprQuery& query,
                                     std::string_view solver, uint64_t seed,
                                     bool blocking) {
  internal::ServeRequest request;
  {
    MutexLock lock(mu_);
    if (!started_ || stopped_) {
      return Status::FailedPrecondition("server is not running");
    }
    // Degraded mode: reroute default-routed queries to the (validated
    // at Start) fallback when the queue is at or past the watermark.
    // Explicit specs are honoured as given — the caller chose.
    std::string_view route = solver;
    if (solver.empty() && !options_.degraded.fallback_solver.empty() &&
        queue_.size() >= options_.degraded.queue_watermark) {
      route = options_.degraded.fallback_solver;
      request.degraded = true;
    }
    const Hosted* hosted = FindHosted(route);
    if (hosted == nullptr) {
      return Status::NotFound("no solver '" + std::string(route) +
                              "' on this server");
    }
    request.solver = hosted->solver.get();
    request.barrier = hosted->barrier.get();
    request.seed =
        seed != 0 ? seed
                  : SplitStream(options_.seed, next_submission_).NextUint64();
    next_submission_++;
  }
  request.query = query;
  request.state = std::make_shared<PprFuture::State>();
  request.state->submitted = std::chrono::steady_clock::now();
  // Token setup happens before the request is published to the queue
  // (ChainHardStop is not poll-safe); afterwards the token is only
  // touched through its atomics.
  if (query.deadline.count() > 0) {
    request.state->token.ArmDeadline(request.state->submitted +
                                     query.deadline);
  }
  request.state->token.ChainHardStop(hard_stop_);
  PprFuture future(request.state);
  const bool degraded = request.degraded;

  PPR_FAULT_STATUS("serve.queue.push");

  QueuePushResult admitted;
  bool saw_full = false;
  if (blocking) {
    // The admission wait is bounded by the query's own deadline when it
    // has one, else by the configured batch admission budget (0 = wait
    // indefinitely, the legacy contract).
    auto admission_deadline = std::chrono::steady_clock::time_point::max();
    if (query.deadline.count() > 0) {
      admission_deadline = request.state->submitted + query.deadline;
    } else if (options_.batch_admission_budget.count() > 0) {
      admission_deadline =
          request.state->submitted + options_.batch_admission_budget;
    }
    admitted =
        queue_.PushUntil(std::move(request), admission_deadline, &saw_full);
  } else {
    admitted = queue_.TryPush(std::move(request))
                   ? QueuePushResult::kAdmitted
                   : QueuePushResult::kClosed;  // refined below
  }
  MutexLock lock(mu_);
  if (admitted != QueuePushResult::kAdmitted) {
    // A Stop() racing this submission closes the queue; that is a
    // lifecycle refusal, not load shedding.
    if (queue_.closed()) {
      return Status::FailedPrecondition("server is shutting down");
    }
    rejected_++;
    if (admitted == QueuePushResult::kTimedOut) {
      return Status::DeadlineExceeded(
          "admission deadline passed while waiting for queue space (" +
          std::to_string(queue_.capacity()) + " pending)");
    }
    return Status::Unavailable(
        "request queue full (" + std::to_string(queue_.capacity()) +
        " pending); retry later or raise queue_capacity");
  }
  // A blocking (SolveBatch) submission that found the queue full counts
  // as exactly one refusal, however many backoff rounds the eventual
  // admission took — the refusal was absorbed by the wait instead of
  // surfacing as Unavailable, but it is the same backpressure event.
  if (saw_full) rejected_++;
  if (degraded) degraded_++;
  submitted_++;
  return future;
}

Result<PprFuture> PprServer::Submit(const PprQuery& query,
                                    std::string_view solver, uint64_t seed) {
  return Enqueue(query, solver, seed, /*blocking=*/false);
}

Result<PprFuture> PprServer::SubmitBlocking(const PprQuery& query,
                                            std::string_view solver,
                                            uint64_t seed) {
  return Enqueue(query, solver, seed, /*blocking=*/true);
}

Status PprServer::SolveBatch(const std::vector<PprQuery>& queries,
                             std::vector<PprResult>* results,
                             std::string_view solver, uint64_t seed) {
  PPR_CHECK(results != nullptr);
  const uint64_t base_seed = seed != 0 ? seed : options_.seed;
  std::vector<PprFuture> futures;
  futures.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto submitted = Enqueue(queries[i], solver,
                             SplitStream(base_seed, i).NextUint64(),
                             /*blocking=*/true);
    if (!submitted.ok()) {
      // Already-admitted entries still complete (the workers own them);
      // wait so the caller never observes half-admitted batches racing.
      for (const PprFuture& f : futures) f.Wait();
      return submitted.status();
    }
    futures.push_back(std::move(submitted).ValueOrDie());
  }
  results->assign(queries.size(), PprResult{});
  Status first_error;
  for (size_t i = 0; i < futures.size(); ++i) {
    Status status = futures[i].Get(&(*results)[i]);
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

Result<uint64_t> PprServer::ApplyUpdates(const UpdateBatch& batch,
                                         std::string_view solver,
                                         UpdateStats* stats) {
  Solver* target = nullptr;
  SharedMutex* barrier = nullptr;
  {
    MutexLock lock(mu_);
    const Hosted* hosted = FindHosted(solver);
    if (hosted == nullptr) {
      return Status::NotFound("no solver '" + std::string(solver) +
                              "' on this server");
    }
    target = hosted->solver.get();
    barrier = hosted->barrier.get();
  }
  PPR_FAULT_STATUS("server.apply_updates");
  DynamicSolver* dynamic = target->AsDynamic();
  if (dynamic == nullptr) {
    return Status::FailedPrecondition(
        "solver '" + std::string(target->name()) +
        "' does not support updates; host a dynamic solver (e.g. "
        "dynfwdpush)");
  }
  uint64_t epoch = 0;
  {
    // Exclusive hold: waits out the queries running on this solver
    // (they hold the barrier shared), applies, and releases — queries
    // popped meanwhile block on the barrier, not on the whole server.
    ExclusiveLock epoch_guard(*barrier);
    PPR_RETURN_IF_ERROR(dynamic->ApplyUpdates(batch, stats));
    epoch = dynamic->epoch();
    // Warm contexts are conservatively invalidated once per batch (the
    // next query on each pays one full workspace assign) — inside the
    // exclusive hold, so no query can check out a stale context at the
    // new epoch.
    contexts_.AdvanceEpoch();
  }
  MutexLock lock(mu_);
  updates_++;
  return epoch;
}

void PprServer::WorkerLoop() {
  while (auto request = queue_.Pop()) {
    PPR_FAULT_POINT("serve.queue.pop");
    BatchSolver* fused =
        options_.max_batch > 1 ? request->solver->AsBatch() : nullptr;
    if (fused == nullptr) {
      ServeOne(*request);
      continue;
    }
    // Coalescing: extend the popped request with queued neighbors bound
    // to the same hosted solver. Same Solver pointer pins both the spec
    // and the epoch barrier, so one fused pass answers queries that
    // would have produced identical per-query plans anyway. Only the
    // head is ever taken (TryPopIf), so an incompatible head stops the
    // drain and FIFO order survives.
    const size_t limit = std::min(options_.max_batch, fused->max_fused());
    std::vector<internal::ServeRequest> batch;
    batch.push_back(std::move(*request));
    Solver* const anchor = batch.front().solver;
    while (batch.size() < limit) {
      auto next =
          queue_.TryPopIf([anchor](const internal::ServeRequest& head) {
            return head.solver == anchor;
          });
      if (!next.has_value()) break;
      batch.push_back(std::move(*next));
    }
    if (batch.size() == 1) {
      ServeOne(batch.front());
    } else {
      ServeFusedBatch(batch, *fused);
    }
  }
}

void PprServer::ServeOne(internal::ServeRequest& request) {
  // Triage before spending any compute: a query whose deadline
  // already expired in-queue (or that was cancelled while waiting,
  // or that a bounded-drain hard stop overtook) is shed — completed
  // with its terminal status without ever touching the solver.
  const Status triage = request.state->token.CheckNow();
  PprResult result;
  Status status = triage;
  if (triage.ok()) {
    ContextPool::Lease context = contexts_.Acquire();
    context->Reseed(request.seed);
    context->set_cancel_token(&request.state->token);
    {
      // The epoch barrier: queries run under a shared hold, so an
      // ApplyUpdates on this solver waits for them and they never see
      // a half-applied batch — each result is consistent with exactly
      // the epoch it stamps.
      SharedLock epoch_guard(*request.barrier);
      status = request.solver->Solve(request.query, *context, &result);
    }
    context->set_cancel_token(nullptr);
    context.Release();
    if (status.ok()) result.degraded = request.degraded;
  }
  FinishRequest(request, triage, std::move(status), std::move(result),
                /*fused=*/false);
}

void PprServer::ServeFusedBatch(std::vector<internal::ServeRequest>& batch,
                                BatchSolver& fused) {
  // Triage each coalesced request exactly as ServeOne would: a query
  // whose deadline expired in-queue (or that was cancelled, or that a
  // hard stop overtook) is shed before any compute — coalescing never
  // buys an expired query a solve it would not have gotten alone.
  std::vector<size_t> live;
  live.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const Status triage = batch[i].state->token.CheckNow();
    if (!triage.ok()) {
      FinishRequest(batch[i], triage, triage, PprResult{}, /*fused=*/false);
      continue;
    }
    live.push_back(i);
  }
  if (live.empty()) return;

  std::vector<PprQuery> queries;
  std::vector<uint64_t> seeds;
  std::vector<const CancelToken*> tokens;
  queries.reserve(live.size());
  seeds.reserve(live.size());
  tokens.reserve(live.size());
  for (size_t i : live) {
    queries.push_back(batch[i].query);
    seeds.push_back(batch[i].seed);
    tokens.push_back(&batch[i].state->token);
  }

  std::vector<PprResult> results;
  std::vector<Status> statuses;
  ContextPool::Lease context = contexts_.Acquire();
  // The context-level cancel token stays null: cancellation flows
  // through the per-query token span, so one cancelled or expired
  // query retires its own column instead of aborting its block-mates.
  {
    // One shared hold of the common epoch barrier covers the whole
    // block — every request was bound to the same hosted solver, hence
    // the same barrier, and the block completes on one epoch just as
    // each query would have alone.
    SharedLock epoch_guard(*batch[live.front()].barrier);
    // Explicit per-request seeds make each fused result identical to a
    // serial Reseed(seed) + Solve of the same query; the return value
    // is just the first per-query failure, already in `statuses`.
    (void)fused.SolveMany(queries, *context, &results, &statuses, seeds,
                          tokens);
  }
  context.Release();

  // A block that shrank to one live query still went through the fused
  // kernel, but nothing was actually shared — don't count it.
  const bool counted = live.size() >= 2;
  for (size_t j = 0; j < live.size(); ++j) {
    internal::ServeRequest& request = batch[live[j]];
    Status status = std::move(statuses[j]);
    PprResult result;
    if (status.ok()) {
      result = std::move(results[j]);
      result.degraded = request.degraded;
    }
    // Triage was OK for every live query, so the taxonomy degenerates
    // to completed / cancelled / failed — a deadline that expired
    // mid-block counts as failed (compute was spent), same as a
    // mid-solve expiry on the one-query path.
    FinishRequest(request, Status::OK(), std::move(status), std::move(result),
                  counted);
  }
}

void PprServer::FinishRequest(internal::ServeRequest& request,
                              const Status& triage, Status status,
                              PprResult result, bool fused) {
  const bool terminal_ok = status.ok();
  const StatusCode terminal_code = status.code();
  if (terminal_ok) result.shard = options_.shard_stamp;
  internal::PublishToFuture(*request.state, std::move(status),
                            std::move(result));

  {
    MutexLock lock(mu_);
    // Terminal taxonomy — exactly one bucket per accepted query, so
    // submitted == completed + failed + shed + cancelled always:
    //   shed       pre-solve deadline expiry (never ran);
    //   cancelled  Cancel()/hard stop, whether triaged or mid-solve;
    //   failed     every other non-OK, incl. mid-solve deadline expiry
    //              (compute was spent, unlike a shed query).
    if (terminal_ok) {
      completed_++;
    } else if (terminal_code == StatusCode::kCancelled) {
      cancelled_++;
    } else if (triage.code() == StatusCode::kDeadlineExceeded) {
      shed_++;
    } else {
      failed_++;
    }
    if (fused) coalesced_++;
  }
  drain_cv_.NotifyAll();
}

PprServerStats PprServer::Snapshot() const {
  PprServerStats stats;
  MutexLock lock(mu_);
  stats.submitted = submitted_;
  stats.rejected = rejected_;
  stats.completed = completed_;
  stats.failed = failed_;
  stats.shed = shed_;
  stats.cancelled = cancelled_;
  stats.degraded = degraded_;
  stats.updates = updates_;
  stats.coalesced = coalesced_;
  stats.queue_depth = queue_.size();
  return stats;
}

PprServerStats PprServer::stats() const { return Snapshot(); }

std::vector<std::string> PprServer::solver_names() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(solvers_.size());
  for (const Hosted& hosted : solvers_) names.push_back(hosted.name);
  return names;
}

bool PprServer::HostsSolver(std::string_view spec) const {
  MutexLock lock(mu_);
  return FindHosted(spec) != nullptr;
}

Result<SolverCapabilities> PprServer::HostedCapabilities(
    std::string_view spec) const {
  MutexLock lock(mu_);
  const Hosted* hosted = FindHosted(spec);
  if (hosted == nullptr) {
    return Status::NotFound("no solver '" + std::string(spec) +
                            "' on this server");
  }
  return hosted->solver->capabilities();
}

}  // namespace ppr
