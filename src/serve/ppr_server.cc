#include "serve/ppr_server.h"

#include <utility>

#include "api/registry.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/worker_pool.h"

namespace ppr {

// ---------------------------------------------------------------- future

struct PprFuture::State {
  Mutex mu;
  CondVar cv;
  bool done PPR_GUARDED_BY(mu) = false;
  Status status PPR_GUARDED_BY(mu);
  PprResult result PPR_GUARDED_BY(mu);
  std::chrono::steady_clock::time_point submitted;
  double latency_seconds PPR_GUARDED_BY(mu) = 0.0;
};

bool PprFuture::done() const {
  PPR_CHECK(valid());
  MutexLock lock(state_->mu);
  return state_->done;
}

void PprFuture::Wait() const {
  PPR_CHECK(valid());
  MutexLock lock(state_->mu);
  while (!state_->done) state_->cv.Wait(lock);
}

Status PprFuture::Get(PprResult* out) const {
  PPR_CHECK(valid());
  MutexLock lock(state_->mu);
  while (!state_->done) state_->cv.Wait(lock);
  if (state_->status.ok() && out != nullptr) *out = state_->result;
  return state_->status;
}

double PprFuture::latency_seconds() const {
  PPR_CHECK(valid());
  MutexLock lock(state_->mu);
  PPR_CHECK(state_->done);
  return state_->latency_seconds;
}

// ---------------------------------------------------------------- server

namespace {

unsigned ResolveWorkers(const PprServerOptions& options) {
  return options.workers > 0 ? options.workers : ThreadBudget();
}

size_t ResolveContexts(const PprServerOptions& options) {
  return options.contexts > 0 ? options.contexts
                              : static_cast<size_t>(ResolveWorkers(options));
}

}  // namespace

PprServer::PprServer(PprServerOptions options)
    : options_(options),
      contexts_(ResolveContexts(options), options.seed),
      queue_(options.queue_capacity) {
  options_.workers = ResolveWorkers(options);
  options_.contexts = ResolveContexts(options);
}

PprServer::~PprServer() { Stop(); }

Status PprServer::AddSolver(std::string_view spec, const Graph& graph) {
  auto created = SolverRegistry::Global().Create(spec);
  if (!created.ok()) return created.status();
  std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
  PPR_RETURN_IF_ERROR(solver->Prepare(graph));
  return AddSolver(std::string(spec), std::move(solver));
}

Status PprServer::AddSolver(std::string name, std::unique_ptr<Solver> solver) {
  PPR_CHECK(solver != nullptr);
  MutexLock lock(mu_);
  if (started_) {
    return Status::FailedPrecondition("AddSolver after Start()");
  }
  for (const Hosted& hosted : solvers_) {
    if (hosted.name == name) {
      return Status::InvalidArgument("solver '" + name + "' already added");
    }
  }
  solvers_.push_back({std::move(name), std::move(solver),
                      std::make_unique<SharedMutex>()});
  return Status::OK();
}

Status PprServer::Start() {
  MutexLock lock(mu_);
  if (started_) return Status::FailedPrecondition("Start() called twice");
  if (solvers_.empty()) {
    return Status::FailedPrecondition("Start() with no solver added");
  }
  started_ = true;
  workers_.reserve(options_.workers);
  for (unsigned i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void PprServer::Stop() {
  {
    MutexLock lock(mu_);
    if (!started_ || stopped_) {
      stopped_ = true;
      return;
    }
    stopped_ = true;
  }
  // Closing the queue (a) fails later Submits and (b) lets the workers
  // drain every accepted request before their Pop returns nullopt — the
  // join below therefore completes all in-flight futures.
  queue_.Close();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

bool PprServer::running() const {
  MutexLock lock(mu_);
  return started_ && !stopped_;
}

const PprServer::Hosted* PprServer::FindHosted(std::string_view name) const {
  if (name.empty()) return solvers_.empty() ? nullptr : &solvers_[0];
  for (const Hosted& hosted : solvers_) {
    if (hosted.name == name) return &hosted;
  }
  return nullptr;
}

Result<PprFuture> PprServer::Enqueue(const PprQuery& query,
                                     std::string_view solver, uint64_t seed,
                                     bool blocking) {
  internal::ServeRequest request;
  {
    MutexLock lock(mu_);
    if (!started_ || stopped_) {
      return Status::FailedPrecondition("server is not running");
    }
    const Hosted* hosted = FindHosted(solver);
    if (hosted == nullptr) {
      return Status::NotFound("no solver '" + std::string(solver) +
                              "' on this server");
    }
    request.solver = hosted->solver.get();
    request.barrier = hosted->barrier.get();
    request.seed =
        seed != 0 ? seed
                  : SplitStream(options_.seed, next_submission_).NextUint64();
    next_submission_++;
  }
  request.query = query;
  request.state = std::make_shared<PprFuture::State>();
  request.state->submitted = std::chrono::steady_clock::now();
  PprFuture future(request.state);

  bool saw_full = false;
  const bool admitted =
      blocking ? queue_.PushWithBackoff(std::move(request), &saw_full)
               : queue_.TryPush(std::move(request));
  MutexLock lock(mu_);
  if (!admitted) {
    // A Stop() racing this submission closes the queue; that is a
    // lifecycle refusal, not load shedding.
    if (queue_.closed()) {
      return Status::FailedPrecondition("server is shutting down");
    }
    rejected_++;
    return Status::Unavailable(
        "request queue full (" + std::to_string(queue_.capacity()) +
        " pending); retry later or raise queue_capacity");
  }
  // A blocking (SolveBatch) submission that found the queue full counts
  // as exactly one refusal, however many backoff rounds the eventual
  // admission took — the refusal was absorbed by the wait instead of
  // surfacing as Unavailable, but it is the same backpressure event.
  if (saw_full) rejected_++;
  submitted_++;
  return future;
}

Result<PprFuture> PprServer::Submit(const PprQuery& query,
                                    std::string_view solver, uint64_t seed) {
  return Enqueue(query, solver, seed, /*blocking=*/false);
}

Status PprServer::SolveBatch(const std::vector<PprQuery>& queries,
                             std::vector<PprResult>* results,
                             std::string_view solver, uint64_t seed) {
  PPR_CHECK(results != nullptr);
  const uint64_t base_seed = seed != 0 ? seed : options_.seed;
  std::vector<PprFuture> futures;
  futures.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto submitted = Enqueue(queries[i], solver,
                             SplitStream(base_seed, i).NextUint64(),
                             /*blocking=*/true);
    if (!submitted.ok()) {
      // Already-admitted entries still complete (the workers own them);
      // wait so the caller never observes half-admitted batches racing.
      for (const PprFuture& f : futures) f.Wait();
      return submitted.status();
    }
    futures.push_back(std::move(submitted).ValueOrDie());
  }
  results->assign(queries.size(), PprResult{});
  Status first_error;
  for (size_t i = 0; i < futures.size(); ++i) {
    Status status = futures[i].Get(&(*results)[i]);
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

Result<uint64_t> PprServer::ApplyUpdates(const UpdateBatch& batch,
                                         std::string_view solver,
                                         UpdateStats* stats) {
  Solver* target = nullptr;
  SharedMutex* barrier = nullptr;
  {
    MutexLock lock(mu_);
    const Hosted* hosted = FindHosted(solver);
    if (hosted == nullptr) {
      return Status::NotFound("no solver '" + std::string(solver) +
                              "' on this server");
    }
    target = hosted->solver.get();
    barrier = hosted->barrier.get();
  }
  DynamicSolver* dynamic = target->AsDynamic();
  if (dynamic == nullptr) {
    return Status::FailedPrecondition(
        "solver '" + std::string(target->name()) +
        "' does not support updates; host a dynamic solver (e.g. "
        "dynfwdpush)");
  }
  uint64_t epoch = 0;
  {
    // Exclusive hold: waits out the queries running on this solver
    // (they hold the barrier shared), applies, and releases — queries
    // popped meanwhile block on the barrier, not on the whole server.
    ExclusiveLock epoch_guard(*barrier);
    PPR_RETURN_IF_ERROR(dynamic->ApplyUpdates(batch, stats));
    epoch = dynamic->epoch();
    // Warm contexts are conservatively invalidated once per batch (the
    // next query on each pays one full workspace assign) — inside the
    // exclusive hold, so no query can check out a stale context at the
    // new epoch.
    contexts_.AdvanceEpoch();
  }
  MutexLock lock(mu_);
  updates_++;
  return epoch;
}

void PprServer::WorkerLoop() {
  while (auto request = queue_.Pop()) {
    ContextPool::Lease context = contexts_.Acquire();
    context->Reseed(request->seed);
    PprResult result;
    Status status;
    {
      // The epoch barrier: queries run under a shared hold, so an
      // ApplyUpdates on this solver waits for them and they never see a
      // half-applied batch — each result is consistent with exactly the
      // epoch it stamps.
      SharedLock epoch_guard(*request->barrier);
      status = request->solver->Solve(request->query, *context, &result);
    }
    context.Release();

    PprFuture::State& state = *request->state;
    {
      MutexLock lock(state.mu);
      state.status = status;
      state.result = std::move(result);
      state.latency_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        state.submitted)
              .count();
      state.done = true;
    }
    state.cv.NotifyAll();

    MutexLock lock(mu_);
    if (status.ok()) {
      completed_++;
    } else {
      failed_++;
    }
  }
}

PprServerStats PprServer::stats() const {
  PprServerStats stats;
  MutexLock lock(mu_);
  stats.submitted = submitted_;
  stats.rejected = rejected_;
  stats.completed = completed_;
  stats.failed = failed_;
  stats.updates = updates_;
  stats.queue_depth = queue_.size();
  return stats;
}

std::vector<std::string> PprServer::solver_names() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(solvers_.size());
  for (const Hosted& hosted : solvers_) names.push_back(hosted.name);
  return names;
}

}  // namespace ppr
