#ifndef PPR_SERVE_BOUNDED_QUEUE_H_
#define PPR_SERVE_BOUNDED_QUEUE_H_

#include <algorithm>
#include <chrono>
#include <deque>
#include <optional>
#include <utility>

#include "util/logging.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace ppr {

/// Outcome of a blocking admission attempt (PushUntil).
enum class QueuePushResult {
  kAdmitted,  // item is in the queue
  kClosed,    // queue closed before the item could be admitted
  kTimedOut,  // admission deadline passed while the queue stayed full
};

/// A bounded multi-producer multi-consumer FIFO — the PprServer's
/// request queue. Two admission disciplines:
///
///  * TryPush: backpressure by rejection — returns false immediately
///    when the queue is full (the server turns that into an Unavailable
///    status, so clients learn about overload instead of piling up
///    unbounded work);
///  * PushUntil / PushWithBackoff: backpressure by waiting — used by
///    the synchronous batch path, where the caller *is* the client and
///    waiting is the contract. A producer that finds the queue full
///    does not hot-spin resubmitting: re-checks are paced by a bounded
///    exponential backoff (and woken early when a consumer frees a
///    slot), so a saturated server spends its cycles draining the
///    queue, not arbitrating admission retries. PushUntil additionally
///    caps the total wait by an absolute deadline, so a stalled server
///    cannot block a batch caller forever.
///
/// Close() wakes every waiter. Consumers drain whatever was admitted
/// before the close (Pop returns the remaining items, then nullopt), so
/// a server shutdown completes accepted queries instead of dropping
/// them silently.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    PPR_CHECK(capacity >= 1);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking admit; false when full or closed.
  bool TryPush(T item) PPR_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    consumer_cv_.NotifyOne();
    return true;
  }

  /// Blocking admit with bounded exponential backoff and an absolute
  /// admission deadline (time_point::max() = wait indefinitely). Each
  /// failed admission check sleeps at most the current backoff interval
  /// — starting at kInitialBackoff and doubling up to kMaxBackoff,
  /// never past the remaining deadline budget — and a consumer freeing
  /// a slot wakes the producer early, so latency stays notify-driven
  /// while wakeup storms stay bounded. The backoff escalates only after
  /// a wait that ran its full interval: a consumer-notified early
  /// wakeup (or a spurious one) means the queue is draining and losing
  /// the race, not that the producer should slow down — doubling on
  /// those would walk a producer racing a fast-draining queue up to the
  /// 8ms max for no reason. The closed flag is re-checked first on
  /// every round: a Close() racing a backoff sleep fails the push at
  /// the next wakeup instead of sleeping through further rounds against
  /// a queue that can never drain.
  ///
  /// `*saw_full`, when non-null, is set to true iff at least one check
  /// found the queue full — one flag per submission no matter how many
  /// backoff rounds it took, which is what lets the server count one
  /// refused submission exactly once in stats().rejected.
  ///
  /// `*backoff_after`, when non-null, receives the backoff interval the
  /// producer ended at — observable pacing for the regression tests
  /// (kInitialBackoff when the queue was never full at a check).
  QueuePushResult PushUntil(T item,
                            std::chrono::steady_clock::time_point deadline,
                            bool* saw_full = nullptr,
                            std::chrono::microseconds* backoff_after = nullptr)
      PPR_EXCLUDES(mu_) {
    constexpr auto kNoDeadline = std::chrono::steady_clock::time_point::max();
    std::chrono::microseconds delay = kInitialBackoff;
    auto record_backoff = [&] {
      if (backoff_after != nullptr) *backoff_after = delay;
    };
    {
      MutexLock lock(mu_);
      while (items_.size() >= capacity_) {
        if (closed_) {
          record_backoff();
          return QueuePushResult::kClosed;
        }
        if (saw_full != nullptr) *saw_full = true;
        std::chrono::microseconds wait = delay;
        if (deadline != kNoDeadline) {
          const auto now = std::chrono::steady_clock::now();
          if (now >= deadline) {
            record_backoff();
            return QueuePushResult::kTimedOut;
          }
          wait = std::min(
              delay, std::chrono::ceil<std::chrono::microseconds>(deadline -
                                                                  now));
        }
        const auto wait_start = std::chrono::steady_clock::now();
        producer_cv_.WaitFor(lock, wait);
        if (std::chrono::steady_clock::now() - wait_start >= wait) {
          // The full interval elapsed with no slot: genuine sustained
          // pressure, escalate. Early wakeups keep the current pace.
          delay = std::min(delay * 2, kMaxBackoff);
        }
      }
      if (closed_) {
        record_backoff();
        return QueuePushResult::kClosed;
      }
      items_.push_back(std::move(item));
    }
    record_backoff();
    consumer_cv_.NotifyOne();
    return QueuePushResult::kAdmitted;
  }

  /// PushUntil without a deadline; false only when the queue is (or
  /// becomes) closed.
  bool PushWithBackoff(T item, bool* saw_full = nullptr) PPR_EXCLUDES(mu_) {
    return PushUntil(std::move(item),
                     std::chrono::steady_clock::time_point::max(),
                     saw_full) == QueuePushResult::kAdmitted;
  }

  /// Blocks until an item is available or the queue is closed and
  /// drained; nullopt means "no more items, ever".
  std::optional<T> Pop() PPR_EXCLUDES(mu_) {
    std::optional<T> item;
    {
      MutexLock lock(mu_);
      while (!closed_ && items_.empty()) consumer_cv_.Wait(lock);
      if (items_.empty()) return std::nullopt;
      item.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    producer_cv_.NotifyOne();
    return item;
  }

  /// Non-blocking conditional pop: removes and returns the head iff the
  /// queue is non-empty and `pred(head)` holds; nullopt otherwise (no
  /// waiting, even on an open empty queue). Only ever inspects the head,
  /// so FIFO order is preserved — this is how a worker extends the
  /// request it already popped into a coalesced batch without reordering
  /// or starving incompatible queries behind the head.
  template <typename Pred>
  std::optional<T> TryPopIf(const Pred& pred) PPR_EXCLUDES(mu_) {
    std::optional<T> item;
    {
      MutexLock lock(mu_);
      if (items_.empty() || !pred(items_.front())) return std::nullopt;
      item.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    producer_cv_.NotifyOne();
    return item;
  }

  /// Rejects future pushes and wakes all waiters; already-admitted items
  /// remain poppable. Idempotent.
  void Close() PPR_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    consumer_cv_.NotifyAll();
    producer_cv_.NotifyAll();
  }

  bool closed() const PPR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

  size_t size() const PPR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  static constexpr std::chrono::microseconds kInitialBackoff{64};
  static constexpr std::chrono::microseconds kMaxBackoff{8192};

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar consumer_cv_;
  CondVar producer_cv_;
  std::deque<T> items_ PPR_GUARDED_BY(mu_);
  bool closed_ PPR_GUARDED_BY(mu_) = false;
};

}  // namespace ppr

#endif  // PPR_SERVE_BOUNDED_QUEUE_H_
