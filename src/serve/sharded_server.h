#ifndef PPR_SERVE_SHARDED_SERVER_H_
#define PPR_SERVE_SHARDED_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "api/query.h"
#include "api/solver.h"
#include "graph/dynamic_graph.h"
#include "graph/partition.h"
#include "serve/bounded_queue.h"
#include "serve/ppr_server.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace ppr {

struct ShardedPprServerOptions {
  /// Shard (fragment) count. Clamped to >= 1.
  size_t shards = 2;

  /// Node-ownership scheme (see graph/partition.h).
  PartitionScheme partition = PartitionScheme::kHash;

  /// How whole-vector queries (target == kNoTarget) are executed.
  enum class WholeVectorRouting {
    /// Route to the owner shard of query.source, like single-pair
    /// queries. The default: one shard does the work, routing is the
    /// only overhead.
    kOwner,
    /// Fan the query to every shard and merge the score vectors on a
    /// router merge thread (ghost-aware: each global node's score is
    /// taken from its owner's partial). Exercises the full distributed
    /// read path; results are bit-identical to kOwner (see
    /// docs/serving.md, "Sharded serving").
    kScatterGather,
  };
  WholeVectorRouting whole_vector = WholeVectorRouting::kOwner;

  /// Router merge threads for the scatter-gather path (clamped >= 1;
  /// unused — and not spawned — under kOwner routing).
  unsigned mergers = 2;

  /// Bounded queue of pending scatter-gather queries awaiting a merge
  /// thread; a full queue rejects Submit with Unavailable, mirroring the
  /// per-shard request queue.
  size_t merge_queue_capacity = 256;

  /// Per-shard server template: workers, queue capacity, contexts, base
  /// seed, degraded policy, admission budget and coalescing all apply
  /// *within each shard*. shard_stamp is overwritten with the shard
  /// index.
  PprServerOptions shard;
};

/// Aggregated counters for the sharded tier.
///
/// `total` is the field-wise sum of one atomic Snapshot() per shard, so
/// the per-shard taxonomy identity (submitted == completed + failed +
/// shed + cancelled once drained) survives summation exactly. A
/// scatter-gather query appears once per shard in `total` (it really did
/// submit N shard queries); the logical view of the fan-out lives in the
/// fan_* counters, which reconcile on their own axis:
/// fanned == merged + fan_failed + fan_shed + fan_cancelled once drained.
struct ShardedPprServerStats {
  PprServerStats total;
  std::vector<PprServerStats> per_shard;

  uint64_t fanned = 0;         ///< scatter queries admitted to the merge queue
  uint64_t merged = 0;         ///< scatter queries completed OK
  uint64_t fan_failed = 0;     ///< scatter queries that finished non-OK
  uint64_t fan_shed = 0;       ///< deadline expired before fan-out (never ran)
  uint64_t fan_cancelled = 0;  ///< Cancel()/shutdown, pre- or mid-fan
  uint64_t fan_rejected = 0;   ///< merge queue full at submission
  size_t merge_queue_depth = 0;

  uint64_t updates_applied = 0;  ///< logical ApplyUpdates batches
  /// Edge updates whose endpoints live on different shards (from
  /// GraphPartition::SplitBatch) — what a distributed transport would
  /// forward. Accounting only; replicas apply the full batch.
  uint64_t cross_fragment_updates = 0;
};

/// A sharded serving tier behind the exact PprServer surface: N
/// in-process PprServer shards over a GraphPartition, plus routing.
///
///   ShardedPprServer server({.shards = 4});
///   server.AddSolver("fwdpush", graph);   // prepares one replica per shard
///   server.Start();
///   auto ticket = server.Submit(query);   // routed to owner(query.source)
///   server.Stop();
///
/// Execution model: each shard hosts its own Prepare()d replica of every
/// solver; the partition governs routing, score merging, and update
/// accounting. This is the honest single-process harness for the
/// distributed design — a transport later replaces replicas with
/// fragment-local state behind the same routing seams (see ROADMAP).
///
/// Determinism: a query with an explicit seed returns a result
/// bit-identical to a single unsharded server (and hence to a serial
/// Solve) — owner routing forwards (query, spec, seed) verbatim, and a
/// scatter-gather merge reassembles the identical vector from per-owner
/// slices. The sharded conformance suite asserts this for every registry
/// solver at 1, 2 and 4 shards under both partitioners.
///
/// Epoch contract: ApplyUpdates holds the router's per-spec barrier
/// exclusively while applying the batch to every shard (each behind its
/// own shard barrier), so every stamped PprResult::epoch is a batch
/// boundary — no result ever observes a half-applied batch — and all
/// partials of one merged result answered at one epoch. See
/// docs/serving.md, "Sharded serving".
class ShardedPprServer {
 public:
  explicit ShardedPprServer(ShardedPprServerOptions options = {});
  ~ShardedPprServer();

  ShardedPprServer(const ShardedPprServer&) = delete;
  ShardedPprServer& operator=(const ShardedPprServer&) = delete;

  /// Builds the partition on first call (from `graph`), then creates and
  /// prepares one registry replica of `spec` per shard. Every later call
  /// must pass a graph with the same fingerprint. Fails after Start().
  Status AddSolver(std::string_view spec, const Graph& graph)
      PPR_EXCLUDES(mu_);

  /// Starts every shard, then the merge threads. Requires >= 1 solver.
  Status Start() PPR_EXCLUDES(mu_);

  /// Unbounded drain: merge threads finish every admitted fan-out, then
  /// the shards drain their queues. Idempotent; the destructor calls it.
  void Stop() PPR_EXCLUDES(mu_);

  /// Bounded drain: pending fan-outs and shard queries that outlive the
  /// budget are hard-stopped and complete with Cancelled — every
  /// accepted future is done when this returns.
  void Stop(std::chrono::nanoseconds drain_budget) PPR_EXCLUDES(mu_);

  bool running() const PPR_EXCLUDES(mu_);

  /// Non-blocking submission, same semantics as PprServer::Submit.
  /// Single-pair queries and (under kOwner routing) whole-vector queries
  /// go to the owner shard of query.source; under kScatterGather,
  /// whole-vector queries are fanned and merged. `seed` 0 derives a
  /// per-query stream at the router so a fan-out uses one seed on every
  /// shard.
  Result<PprFuture> Submit(const PprQuery& query, std::string_view solver = {},
                           uint64_t seed = 0) PPR_EXCLUDES(mu_);

  /// Synchronous batch path, aligned with PprServer::SolveBatch: same
  /// per-entry seed derivation (SplitStream(seed, i)), blocking
  /// admission, first per-query failure returned.
  Status SolveBatch(const std::vector<PprQuery>& queries,
                    std::vector<PprResult>* results,
                    std::string_view solver = {}, uint64_t seed = 0)
      PPR_EXCLUDES(mu_);

  /// Applies `batch` to every shard's replica of the routed solver
  /// behind the router's exclusive per-spec barrier (the cross-shard
  /// epoch barrier): in-flight fan-outs finish first, then each shard
  /// applies the full batch behind its own barrier, and the shards'
  /// resulting epochs are verified equal. SplitBatch accounting
  /// (per-fragment slices, cross-fragment count) feeds stats().
  /// Returns the common new epoch. `stats` receives the summed
  /// UpdateStats. Updates to a sharded tier must go through this —
  /// bypassing the router (shard(i).ApplyUpdates) desynchronizes the
  /// replicas.
  Result<uint64_t> ApplyUpdates(const UpdateBatch& batch,
                                std::string_view solver = {},
                                UpdateStats* stats = nullptr)
      PPR_EXCLUDES(mu_);

  /// Aggregated counters: one atomic Snapshot per shard plus the
  /// router's fan/update counters, all under one router lock hold.
  ShardedPprServerStats stats() const PPR_EXCLUDES(mu_);

  std::vector<std::string> solver_names() const PPR_EXCLUDES(mu_);
  const ShardedPprServerOptions& options() const { return options_; }
  size_t num_shards() const { return shards_.size(); }

  /// Direct access to shard `i` — read-only uses (stats, context pool)
  /// in tests and benches. Mutating a shard directly voids the replica
  /// and epoch contracts.
  PprServer& shard(size_t i) { return *shards_[i]; }

  /// The partition built by the first AddSolver. Precondition: at least
  /// one solver was added.
  const GraphPartition& partition() const;

 private:
  /// Router-side view of one hosted spec: capabilities for routing
  /// decisions plus the cross-shard epoch barrier. Immutable once
  /// Start() spawned the merge threads (AddSolver fails after Start),
  /// so merge threads read entries without mu_.
  struct HostedSpec {
    std::string name;
    SolverCapabilities caps;
    /// Fan-outs hold it shared around submit+wait+merge; ApplyUpdates
    /// holds it exclusive while walking the shards. Heap-allocated so
    /// the address survives vector growth.
    std::unique_ptr<SharedMutex> barrier;
  };

  /// One admitted scatter-gather query awaiting a merge thread.
  struct MergeJob {
    PprQuery query;
    const HostedSpec* spec = nullptr;
    uint64_t seed = 0;
    std::shared_ptr<PprFuture::State> state;
  };

  const HostedSpec* FindSpec(std::string_view name) const PPR_REQUIRES(mu_);
  Result<PprFuture> Route(const PprQuery& query, std::string_view solver,
                          uint64_t seed, bool blocking) PPR_EXCLUDES(mu_);
  Result<PprFuture> EnqueueScatter(const PprQuery& query,
                                   const HostedSpec& spec, uint64_t seed,
                                   bool blocking) PPR_EXCLUDES(mu_);
  void MergerLoop() PPR_EXCLUDES(mu_);
  void ServeScatter(MergeJob& job) PPR_EXCLUDES(mu_);
  void FinishScatter(MergeJob& job, const Status& triage, Status status,
                     PprResult result) PPR_EXCLUDES(mu_);
  PprResult MergePartials(const PprQuery& query,
                          std::vector<PprResult>& partials) const;
  void StopInternal(bool bounded, std::chrono::nanoseconds drain_budget)
      PPR_EXCLUDES(mu_);

  ShardedPprServerOptions options_;
  /// The shards. Sized in the constructor and never resized; PprServer
  /// is internally synchronized, so calls go through without mu_.
  std::vector<std::unique_ptr<PprServer>> shards_;
  BoundedQueue<MergeJob> merge_queue_;
  /// Set by a bounded-drain Stop: chained into every scatter query's
  /// token so pending fan-outs cancel at their next poll.
  const std::shared_ptr<std::atomic<bool>> hard_stop_;
  /// Joined by the one Stop() that wins the stopped_ race — outside mu_
  /// for the same reason as PprServer::workers_.
  std::vector<std::thread> mergers_;
  /// Built by the first AddSolver under mu_, immutable after Start();
  /// merge threads read it lock-free (the Start() spawn is the
  /// happens-before edge).
  std::unique_ptr<GraphPartition> partition_;

  mutable Mutex mu_;
  std::vector<HostedSpec> solvers_ PPR_GUARDED_BY(mu_);
  uint64_t graph_fingerprint_ PPR_GUARDED_BY(mu_) = 0;
  bool started_ PPR_GUARDED_BY(mu_) = false;
  bool stopped_ PPR_GUARDED_BY(mu_) = false;
  uint64_t next_submission_ PPR_GUARDED_BY(mu_) = 0;
  uint64_t fanned_ PPR_GUARDED_BY(mu_) = 0;
  uint64_t merged_ PPR_GUARDED_BY(mu_) = 0;
  uint64_t fan_failed_ PPR_GUARDED_BY(mu_) = 0;
  uint64_t fan_shed_ PPR_GUARDED_BY(mu_) = 0;
  uint64_t fan_cancelled_ PPR_GUARDED_BY(mu_) = 0;
  uint64_t fan_rejected_ PPR_GUARDED_BY(mu_) = 0;
  uint64_t updates_applied_ PPR_GUARDED_BY(mu_) = 0;
  uint64_t cross_fragment_updates_ PPR_GUARDED_BY(mu_) = 0;
};

}  // namespace ppr

#endif  // PPR_SERVE_SHARDED_SERVER_H_
