#ifndef PPR_SERVE_PPR_SERVER_H_
#define PPR_SERVE_PPR_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "api/context_pool.h"
#include "api/dynamic_solver.h"
#include "api/query.h"
#include "api/solver.h"
#include "serve/bounded_queue.h"
#include "util/cancellation.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace ppr {

/// Completion handle for one submitted query. Cheap to copy (shared
/// state); Wait/Get may be called from any thread, any number of times.
class PprFuture {
 public:
  /// Opaque shared completion state (defined in serve/future_state.h;
  /// serving-tier internal).
  struct State;

  PprFuture() = default;

  bool valid() const { return state_ != nullptr; }

  /// True once the query finished (successfully or not).
  bool done() const;

  /// Blocks until the query finishes.
  void Wait() const;

  /// Blocks, then returns the query's terminal status. On OK and
  /// non-null `out`, the result is copied out (copied, not moved, so
  /// repeated Get calls agree).
  Status Get(PprResult* out) const;

  /// Requests cooperative cancellation of this query. Non-blocking and
  /// idempotent; safe from any thread. A query still in the queue is
  /// completed with Cancelled without ever being solved; a query
  /// mid-solve observes the request at its next cancellation poll
  /// (chunk / iteration / every-N-pushes boundary) and completes with
  /// Cancelled shortly after. A query that already finished is
  /// unaffected — Get keeps returning its original status.
  void Cancel() const;

  /// Seconds from Submit() to completion. Valid once done().
  double latency_seconds() const;

 private:
  friend class PprServer;
  friend class ShardedPprServer;
  explicit PprFuture(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

namespace internal {

/// One queued unit of server work. Header-visible only so the server can
/// hold a BoundedQueue<ServeRequest> by value.
struct ServeRequest {
  PprQuery query;
  Solver* solver = nullptr;
  /// The hosted solver's epoch barrier, held shared (SharedLock) for
  /// the duration of the Solve so ApplyUpdates (ExclusiveLock) cannot
  /// interleave.
  SharedMutex* barrier = nullptr;
  uint64_t seed = 0;
  /// True when the degraded policy rerouted this query to the fallback
  /// solver; stamped onto PprResult::degraded on success.
  bool degraded = false;
  std::shared_ptr<PprFuture::State> state;
};

}  // namespace internal

struct PprServerOptions {
  /// Serving threads — concurrent queries in flight. 0 → ThreadBudget().
  /// Each worker runs its query's serial phases itself and shares the
  /// budgeted WorkerPool for the parallel kernels, so total compute
  /// threads are bounded by workers + the pool — not by workers ×
  /// threads= as the old spawn-per-stage scheme multiplied. Keep
  /// workers within the machine share you intend the server to use.
  unsigned workers = 0;
  /// Bounded request-queue capacity; a full queue rejects Submit with
  /// Unavailable (see docs/serving.md, "Backpressure").
  size_t queue_capacity = 1024;
  /// Warm SolverContexts cycled across queries. 0 → workers.
  size_t contexts = 0;
  /// Base seed: query i with no explicit seed gets SplitStream(seed, i)
  /// by global submission index.
  uint64_t seed = SolverContext::kDefaultSeed;
  /// Opt-in degraded mode: when `fallback_solver` is non-empty and the
  /// queue depth at submission time is >= `queue_watermark`, a query
  /// submitted *without* an explicit solver spec is rerouted to the
  /// fallback (typically a relaxed-epsilon spec of the same algorithm)
  /// and its result is stamped PprResult::degraded = true. Queries that
  /// name a solver explicitly are never rerouted — the caller asked for
  /// that solver, overload or not. The fallback spec must be hosted
  /// (AddSolver) before Start(), which validates it.
  struct DegradedPolicy {
    std::string fallback_solver;
    size_t queue_watermark = 0;
  };
  DegradedPolicy degraded;
  /// Upper bound on how long one SolveBatch submission may wait for
  /// queue space when its query carries no deadline of its own
  /// (queries with PprQuery::deadline > 0 are bounded by that instead).
  /// 0 → wait indefinitely (the pre-deadline behaviour).
  std::chrono::nanoseconds batch_admission_budget{0};
  /// Opt-in query coalescing: a worker that pops a request routed to a
  /// batch-capable solver (one configured with batch= > 0) drains up to
  /// max_batch - 1 further *compatible* queued requests — same hosted
  /// solver, which pins the spec and the epoch barrier — and answers
  /// them with one fused SolveMany pass instead of max_batch separate
  /// CSR traversals. Only the queue head is ever inspected, so FIFO
  /// order is preserved. Results are still stamped per query and
  /// deadline/cancel semantics are unchanged: an expired coalesced
  /// query is shed exactly as today, never solved. 1 (the default)
  /// disables coalescing.
  size_t max_batch = 1;
  /// Stamped onto PprResult::shard of every OK result this server
  /// produces. -1 (the default) means "not part of a sharded tier";
  /// ShardedPprServer sets it to the shard index so routing decisions
  /// are observable on the results. See docs/serving.md.
  int32_t shard_stamp = -1;
};

/// Point-in-time counters (monotonic except queue_depth).
struct PprServerStats {
  uint64_t submitted = 0;  ///< accepted into the queue
  /// Submissions that hit a full queue, exactly once each: Submit()
  /// refusals surfaced as Unavailable, plus SolveBatch() submissions
  /// that had to back off before being admitted (counted once per
  /// submission, never once per backoff round).
  uint64_t rejected = 0;
  uint64_t completed = 0;  ///< finished with an OK status
  uint64_t failed = 0;     ///< finished with a non-OK status
  /// Queries whose deadline had already expired when a worker picked
  /// them up: completed with DeadlineExceeded *without* running the
  /// solver. Disjoint from failed/cancelled — for every accepted query,
  /// submitted == completed + failed + shed + cancelled exactly.
  uint64_t shed = 0;
  /// Queries that finished with Cancelled — via PprFuture::Cancel() or
  /// a bounded-drain Stop() hard-stopping leftover work.
  uint64_t cancelled = 0;
  /// Queries the degraded policy rerouted to the fallback solver.
  /// Counted at admission (a rerouted query may still be shed or
  /// cancelled later); subset of submitted, not a terminal state.
  uint64_t degraded = 0;
  uint64_t updates = 0;    ///< update batches applied via ApplyUpdates
  /// Queries answered as part of a fused block of >= 2 (options.max_batch
  /// coalescing). A query solved alone — no compatible queue neighbor —
  /// is not counted, so this measures realized fusion, not eligibility.
  uint64_t coalesced = 0;
  size_t queue_depth = 0;  ///< requests currently waiting
};

/// A concurrent SSPPR query server over the unified Solver API.
///
/// Lifecycle:
///
///   PprServer server({.workers = 4, .queue_capacity = 256});
///   server.AddSolver("powerpush", graph);        // prepares via registry
///   server.AddSolver("speedppr:eps=0.3", graph);
///   server.Start();
///   auto ticket = server.Submit(query);              // default solver
///   auto other  = server.Submit(query, "speedppr:eps=0.3");
///   PprResult result;
///   Status status = ticket.value().Get(&result);
///   server.Stop();   // drains accepted queries, joins workers
///
/// Concurrency & determinism: each worker checks a warm SolverContext
/// out of the pool, reseeds it to the query's seed and calls
/// Solver::Solve — the same composition a serial caller performs. The
/// context-reuse conformance contract (warm == cold, bit for bit) then
/// guarantees a served result is identical to a serial Solve of the
/// same (query, seed), regardless of worker count, queue order or which
/// context a query lands on. serve_test asserts this for every
/// registered solver.
///
/// Backpressure: Submit never blocks — a full queue returns Unavailable
/// immediately and the query is not admitted. The synchronous
/// SolveBatch path instead waits for queue space (the caller is the
/// client; blocking it *is* the backpressure), pacing its admission
/// re-checks with a bounded exponential backoff instead of hot-spinning
/// resubmissions; each such backpressured submission shows up exactly
/// once in stats().rejected.
///
/// Deadlines & shedding: a query with PprQuery::deadline > 0 must
/// finish within that budget of its submission. Workers shed queries
/// whose deadline already expired in-queue (completed with
/// DeadlineExceeded, never solved — stats().shed), and a deadline that
/// expires mid-solve stops the compute at the solver's next
/// cancellation poll. PprFuture::Cancel() stops a query the same
/// cooperative way with Cancelled. See docs/serving.md, "Deadlines and
/// cancellation".
///
/// Shutdown: Stop() closes the queue (later Submits fail), lets the
/// workers drain every accepted request, then joins. Every future
/// obtained from an accepted Submit therefore completes. The bounded
/// overload Stop(drain_budget) waits at most that long for the drain;
/// whatever is still unfinished then is hard-stopped and completed
/// with Cancelled — still *completed*, never abandoned. Idempotent;
/// the destructor calls it (unbounded form).
class PprServer {
 public:
  explicit PprServer(PprServerOptions options = {});
  ~PprServer();

  PprServer(const PprServer&) = delete;
  PprServer& operator=(const PprServer&) = delete;

  /// Creates `spec` via SolverRegistry::Global(), prepares it on `graph`
  /// (index builds happen here, not per query) and makes it routable
  /// under the exact spec string. The first added solver is the default.
  /// The graph must outlive the server. Fails after Start().
  Status AddSolver(std::string_view spec, const Graph& graph)
      PPR_EXCLUDES(mu_);

  /// As above with a caller-constructed, already-Prepare()d solver —
  /// the hook tests use to inject instrumented solvers.
  Status AddSolver(std::string name, std::unique_ptr<Solver> solver)
      PPR_EXCLUDES(mu_);

  /// Spawns the worker threads. Requires at least one solver; when a
  /// degraded policy is configured, its fallback spec must be hosted.
  Status Start() PPR_EXCLUDES(mu_);

  /// Drains accepted queries and joins the workers. Idempotent.
  void Stop() PPR_EXCLUDES(mu_);

  /// Bounded-drain shutdown: closes the queue, waits up to
  /// `drain_budget` for the accepted queries to finish, then
  /// hard-stops whatever remains — in-queue requests are completed
  /// with Cancelled by the draining workers, and in-flight solves
  /// observe the stop at their next cancellation poll and complete
  /// with Cancelled too. Always joins the workers before returning, so
  /// every accepted future is done when this returns. Idempotent with
  /// Stop(): the first call wins.
  void Stop(std::chrono::nanoseconds drain_budget) PPR_EXCLUDES(mu_);

  bool running() const PPR_EXCLUDES(mu_);

  /// Non-blocking submission. `solver` routes by spec string as given to
  /// AddSolver (empty → default). `seed` 0 derives a per-query stream
  /// from options.seed and the submission index. Unavailable when the
  /// queue is full, FailedPrecondition when not running, NotFound for an
  /// unknown solver spec.
  Result<PprFuture> Submit(const PprQuery& query, std::string_view solver = {},
                           uint64_t seed = 0);

  /// Blocking submission — the admission path SolveBatch uses, exposed
  /// so batch-style callers (ShardedPprServer::SolveBatch among them)
  /// can apply the same wait-for-queue-space backpressure per entry.
  /// Waits for space bounded by the query's deadline (when set) or
  /// options.batch_admission_budget (0 = indefinitely); exceeding the
  /// bound fails with DeadlineExceeded. Each backpressured admission
  /// counts exactly once in stats().rejected.
  Result<PprFuture> SubmitBlocking(const PprQuery& query,
                                   std::string_view solver = {},
                                   uint64_t seed = 0);

  /// Synchronous batch path: admits every query (waiting for queue space
  /// instead of rejecting), blocks until all finish, and fills `results`
  /// aligned with `queries`. Per-entry seed i is SplitStream(seed, i)
  /// (seed 0 → options.seed), so a batch is reproducible regardless of
  /// worker count. The admission wait is bounded: a query with a
  /// deadline may wait at most that deadline for queue space, one
  /// without at most options.batch_admission_budget (0 = indefinitely);
  /// exceeding the bound fails the batch with DeadlineExceeded (the
  /// already-admitted prefix still completes and is waited for).
  /// Returns the first per-query failure, if any.
  Status SolveBatch(const std::vector<PprQuery>& queries,
                    std::vector<PprResult>* results,
                    std::string_view solver = {}, uint64_t seed = 0);

  /// Applies `batch` to the hosted dynamic solver routed by `solver`
  /// (empty → default) behind an epoch barrier: the call waits for the
  /// queries currently executing on that solver to finish on the epoch
  /// they started at, applies the batch exclusively, and only then lets
  /// later queries run — so every served result is consistent with
  /// exactly one epoch (PprResult::epoch says which) and no query ever
  /// observes a half-applied batch. Warm pool contexts are invalidated
  /// on the epoch change. Queries on *other* hosted solvers are not
  /// blocked. Returns the solver's new epoch; NotFound for an unknown
  /// spec, FailedPrecondition for a solver without supports_updates,
  /// InvalidArgument (nothing applied) for an invalid batch. May be
  /// called before Start() and between Start() and Stop(); must not be
  /// called concurrently with itself on one solver from multiple
  /// threads unless the caller serializes (the barrier also does).
  Result<uint64_t> ApplyUpdates(const UpdateBatch& batch,
                                std::string_view solver = {},
                                UpdateStats* stats = nullptr)
      PPR_EXCLUDES(mu_);

  /// Atomic point-in-time snapshot of every counter: one lock hold
  /// covers the whole struct, so no field can be torn against another
  /// (reading stats().submitted and stats().completed as two calls can
  /// observe a query between its admission and its terminal counter).
  /// Aggregation across shards and any submitted-vs-terminal arithmetic
  /// must go through this.
  PprServerStats Snapshot() const PPR_EXCLUDES(mu_);

  /// Alias of Snapshot(), kept for call-site brevity. Each call is one
  /// atomic snapshot; arithmetic across *two* calls is still two
  /// snapshots — use one Snapshot() for cross-field invariants.
  PprServerStats stats() const PPR_EXCLUDES(mu_);

  std::vector<std::string> solver_names() const PPR_EXCLUDES(mu_);

  /// True when `spec` routes to a hosted solver (empty → has a default).
  bool HostsSolver(std::string_view spec = {}) const PPR_EXCLUDES(mu_);

  /// Capabilities of the hosted solver `spec` routes to (empty → the
  /// default solver) — what a routing tier needs to decide fan-out and
  /// residue merging without reaching into the solver. NotFound for an
  /// unknown spec.
  Result<SolverCapabilities> HostedCapabilities(std::string_view spec = {})
      const PPR_EXCLUDES(mu_);

  const PprServerOptions& options() const { return options_; }

  /// The warm-context pool (read-only; the serve tests assert its
  /// recycling counters).
  const ContextPool& context_pool() const { return contexts_; }

 private:
  struct Hosted {
    std::string name;
    std::unique_ptr<Solver> solver;
    /// Queries hold it shared around Solve; ApplyUpdates holds it
    /// exclusive. Heap-allocated so Hosted stays movable and the
    /// mutex address survives vector growth.
    std::unique_ptr<SharedMutex> barrier;
  };

  const Hosted* FindHosted(std::string_view name) const PPR_REQUIRES(mu_);
  void WorkerLoop() PPR_EXCLUDES(mu_);
  /// Publishes one terminal (status, result) pair to the request's
  /// future and bumps exactly one terminal counter. `triage` is the
  /// pre-solve token check that decided whether the query ran (its
  /// DeadlineExceeded is what distinguishes shed from failed);
  /// `fused` adds the query to stats().coalesced.
  void FinishRequest(internal::ServeRequest& request, const Status& triage,
                     Status status, PprResult result, bool fused)
      PPR_EXCLUDES(mu_);
  /// The classic one-query worker path: triage, lease a context, solve
  /// under the epoch barrier, publish.
  void ServeOne(internal::ServeRequest& request) PPR_EXCLUDES(mu_);
  /// The coalesced path: triages every drained request (expired ones
  /// are shed exactly as in ServeOne), then answers the survivors with
  /// one fused SolveMany under a single shared hold of the common epoch
  /// barrier, publishing each result with its own seed and token.
  void ServeFusedBatch(std::vector<internal::ServeRequest>& batch,
                       BatchSolver& fused) PPR_EXCLUDES(mu_);
  Result<PprFuture> Enqueue(const PprQuery& query, std::string_view solver,
                            uint64_t seed, bool blocking) PPR_EXCLUDES(mu_);
  void StopInternal(bool bounded, std::chrono::nanoseconds drain_budget)
      PPR_EXCLUDES(mu_);
  uint64_t FinishedCountLocked() const PPR_REQUIRES(mu_);

  PprServerOptions options_;
  ContextPool contexts_;
  BoundedQueue<internal::ServeRequest> queue_;
  /// Joined by the single Stop() call that wins the stopped_ race —
  /// outside mu_ (joining under the lock would deadlock the workers'
  /// final stats update), so not GUARDED_BY: Start() fills it under
  /// mu_, exactly one Stop() drains it.
  std::vector<std::thread> workers_;
  /// Set by a bounded-drain Stop() whose budget expired; chained into
  /// every accepted query's CancelToken so leftover work stops at its
  /// next poll. A plain atomic (not GUARDED_BY): workers read it
  /// lock-free inside solve loops.
  const std::shared_ptr<std::atomic<bool>> hard_stop_;

  mutable Mutex mu_;
  /// Signalled by workers after every terminal-counter update; the
  /// bounded-drain Stop() waits on it for
  /// completed+failed+shed+cancelled to catch up with submitted.
  CondVar drain_cv_;
  std::vector<Hosted> solvers_ PPR_GUARDED_BY(mu_);
  bool started_ PPR_GUARDED_BY(mu_) = false;
  bool stopped_ PPR_GUARDED_BY(mu_) = false;
  uint64_t next_submission_ PPR_GUARDED_BY(mu_) = 0;
  uint64_t submitted_ PPR_GUARDED_BY(mu_) = 0;
  uint64_t rejected_ PPR_GUARDED_BY(mu_) = 0;
  uint64_t completed_ PPR_GUARDED_BY(mu_) = 0;
  uint64_t failed_ PPR_GUARDED_BY(mu_) = 0;
  uint64_t shed_ PPR_GUARDED_BY(mu_) = 0;
  uint64_t cancelled_ PPR_GUARDED_BY(mu_) = 0;
  uint64_t degraded_ PPR_GUARDED_BY(mu_) = 0;
  uint64_t updates_ PPR_GUARDED_BY(mu_) = 0;
  uint64_t coalesced_ PPR_GUARDED_BY(mu_) = 0;
};

}  // namespace ppr

#endif  // PPR_SERVE_PPR_SERVER_H_
