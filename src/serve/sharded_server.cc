#include "serve/sharded_server.h"

#include <algorithm>
#include <utility>

#include "eval/metrics.h"
#include "serve/future_state.h"
#include "util/logging.h"
#include "util/rng.h"

namespace ppr {

namespace {

PprServerOptions ShardOptions(const ShardedPprServerOptions& options,
                              size_t shard_index) {
  PprServerOptions shard = options.shard;
  shard.shard_stamp = static_cast<int32_t>(shard_index);
  return shard;
}

}  // namespace

ShardedPprServer::ShardedPprServer(ShardedPprServerOptions options)
    : options_(std::move(options)),
      merge_queue_(std::max<size_t>(1, options_.merge_queue_capacity)),
      hard_stop_(std::make_shared<std::atomic<bool>>(false)) {
  options_.shards = std::max<size_t>(1, options_.shards);
  options_.mergers = std::max(1u, options_.mergers);
  options_.merge_queue_capacity =
      std::max<size_t>(1, options_.merge_queue_capacity);
  shards_.reserve(options_.shards);
  for (size_t s = 0; s < options_.shards; ++s) {
    shards_.push_back(std::make_unique<PprServer>(ShardOptions(options_, s)));
  }
}

ShardedPprServer::~ShardedPprServer() { Stop(); }

Status ShardedPprServer::AddSolver(std::string_view spec, const Graph& graph) {
  MutexLock lock(mu_);
  if (started_) {
    return Status::FailedPrecondition("AddSolver after Start()");
  }
  if (partition_ == nullptr) {
    auto built =
        GraphPartition::Build(graph, shards_.size(), options_.partition);
    if (!built.ok()) return built.status();
    partition_ = std::make_unique<GraphPartition>(std::move(built).ValueOrDie());
    graph_fingerprint_ = graph.Fingerprint();
  } else if (graph.Fingerprint() != graph_fingerprint_) {
    return Status::InvalidArgument(
        "sharded solvers must be prepared on one graph; '" +
        std::string(spec) + "' was given a different one");
  }
  for (const HostedSpec& hosted : solvers_) {
    if (hosted.name == spec) {
      return Status::InvalidArgument("solver '" + std::string(spec) +
                                     "' already added");
    }
  }
  // One independent replica per shard — index builds happen k times
  // here, never per query. The partition governs routing and merging;
  // replicas keep every shard able to answer any whole-vector fan-out.
  for (auto& shard : shards_) {
    PPR_RETURN_IF_ERROR(shard->AddSolver(spec, graph));
  }
  auto caps = shards_[0]->HostedCapabilities(spec);
  if (!caps.ok()) return caps.status();
  solvers_.push_back({std::string(spec), caps.value(),
                      std::make_unique<SharedMutex>()});
  return Status::OK();
}

Status ShardedPprServer::Start() {
  MutexLock lock(mu_);
  if (started_) return Status::FailedPrecondition("Start() called twice");
  if (solvers_.empty()) {
    return Status::FailedPrecondition("Start() with no solver added");
  }
  for (auto& shard : shards_) {
    PPR_RETURN_IF_ERROR(shard->Start());
  }
  started_ = true;
  if (options_.whole_vector ==
      ShardedPprServerOptions::WholeVectorRouting::kScatterGather) {
    mergers_.reserve(options_.mergers);
    for (unsigned i = 0; i < options_.mergers; ++i) {
      mergers_.emplace_back([this] { MergerLoop(); });
    }
  }
  return Status::OK();
}

void ShardedPprServer::Stop() {
  StopInternal(/*bounded=*/false, std::chrono::nanoseconds{0});
}

void ShardedPprServer::Stop(std::chrono::nanoseconds drain_budget) {
  StopInternal(/*bounded=*/true, drain_budget);
}

void ShardedPprServer::StopInternal(bool bounded,
                                    std::chrono::nanoseconds drain_budget) {
  {
    MutexLock lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  // Later Submits fail; merge threads drain what was admitted.
  merge_queue_.Close();
  if (bounded) {
    // Flip the router hard stop first so queued fan-outs triage to
    // Cancelled, then drain every shard in parallel under the budget —
    // in-flight partials complete (with Cancelled at worst), so the
    // merge threads can never wait on a future that will not finish.
    hard_stop_->store(true, std::memory_order_relaxed);
    std::vector<std::thread> stoppers;
    stoppers.reserve(shards_.size());
    for (auto& shard : shards_) {
      stoppers.emplace_back([&shard, drain_budget] {
        shard->Stop(drain_budget);
      });
    }
    for (std::thread& stopper : stoppers) stopper.join();
  }
  // Unbounded: join the merge threads *before* stopping the shards —
  // draining a fan-out needs shards that still accept Submits.
  for (std::thread& merger : mergers_) merger.join();
  mergers_.clear();
  if (!bounded) {
    for (auto& shard : shards_) shard->Stop();
  }
}

bool ShardedPprServer::running() const {
  MutexLock lock(mu_);
  return started_ && !stopped_;
}

const GraphPartition& ShardedPprServer::partition() const {
  PPR_CHECK(partition_ != nullptr);
  return *partition_;
}

const ShardedPprServer::HostedSpec* ShardedPprServer::FindSpec(
    std::string_view name) const {
  if (name.empty()) return solvers_.empty() ? nullptr : &solvers_[0];
  for (const HostedSpec& hosted : solvers_) {
    if (hosted.name == name) return &hosted;
  }
  return nullptr;
}

Result<PprFuture> ShardedPprServer::Route(const PprQuery& query,
                                          std::string_view solver,
                                          uint64_t seed, bool blocking) {
  size_t owner = 0;
  const HostedSpec* spec = nullptr;
  bool scatter = false;
  {
    MutexLock lock(mu_);
    if (!started_ || stopped_) {
      return Status::FailedPrecondition("sharded server is not running");
    }
    // Seeds derive at the router (same SplitStream scheme as one
    // server) so a fan-out hands every shard the *same* seed — the
    // replicas then produce identical vectors to merge from.
    if (seed == 0) {
      seed = SplitStream(options_.shard.seed, next_submission_).NextUint64();
    }
    next_submission_++;
    scatter = options_.whole_vector ==
                  ShardedPprServerOptions::WholeVectorRouting::kScatterGather &&
              query.target == kNoTarget;
    if (scatter) {
      // Resolve the spec here: fanning an empty spec would let each
      // shard's degraded policy reroute independently, and a merge
      // across different solvers is meaningless. A scatter query is
      // therefore never degraded.
      spec = FindSpec(solver);
      if (spec == nullptr) {
        return Status::NotFound("no solver '" + std::string(solver) +
                                "' on this sharded server");
      }
    } else {
      owner = partition_->FragmentOf(query.source);
    }
  }
  if (scatter) return EnqueueScatter(query, *spec, seed, blocking);
  // Owner routing forwards (query, spec, seed) verbatim — including an
  // empty spec, so the owner shard's degraded policy applies exactly as
  // on a single server.
  return blocking ? shards_[owner]->SubmitBlocking(query, solver, seed)
                  : shards_[owner]->Submit(query, solver, seed);
}

Result<PprFuture> ShardedPprServer::Submit(const PprQuery& query,
                                           std::string_view solver,
                                           uint64_t seed) {
  return Route(query, solver, seed, /*blocking=*/false);
}

Status ShardedPprServer::SolveBatch(const std::vector<PprQuery>& queries,
                                    std::vector<PprResult>* results,
                                    std::string_view solver, uint64_t seed) {
  PPR_CHECK(results != nullptr);
  // Same derivation as PprServer::SolveBatch, so a sharded batch with
  // the same base seed reproduces the single-server batch bit for bit.
  const uint64_t base_seed = seed != 0 ? seed : options_.shard.seed;
  std::vector<PprFuture> futures;
  futures.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto submitted = Route(queries[i], solver,
                           SplitStream(base_seed, i).NextUint64(),
                           /*blocking=*/true);
    if (!submitted.ok()) {
      for (const PprFuture& f : futures) f.Wait();
      return submitted.status();
    }
    futures.push_back(std::move(submitted).ValueOrDie());
  }
  results->assign(queries.size(), PprResult{});
  Status first_error;
  for (size_t i = 0; i < futures.size(); ++i) {
    Status status = futures[i].Get(&(*results)[i]);
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

Result<uint64_t> ShardedPprServer::ApplyUpdates(const UpdateBatch& batch,
                                                std::string_view solver,
                                                UpdateStats* stats) {
  const HostedSpec* spec = nullptr;
  {
    MutexLock lock(mu_);
    spec = FindSpec(solver);
    if (spec == nullptr) {
      return Status::NotFound("no solver '" + std::string(solver) +
                              "' on this sharded server");
    }
  }
  // Routing accounting: which fragment each update belongs to, and how
  // many cross the cut. The replicas still apply the full batch below —
  // a transport would ship these slices instead.
  const UpdateSplit split = partition_->SplitBatch(batch);
  UpdateStats total{};
  uint64_t epoch = 0;
  {
    // The cross-shard epoch barrier: exclusive against in-flight
    // fan-outs of this spec (they hold it shared around submit + wait +
    // merge), so no merged result ever mixes epochs. Each shard then
    // applies the full batch behind its own barrier, which orders it
    // against that shard's owner-routed queries.
    ExclusiveLock epoch_guard(*spec->barrier);
    for (size_t s = 0; s < shards_.size(); ++s) {
      UpdateStats shard_stats{};
      auto applied = shards_[s]->ApplyUpdates(batch, spec->name, &shard_stats);
      if (!applied.ok()) {
        if (s == 0) return applied.status();  // nothing applied anywhere
        return Status::Corruption(
            "shard " + std::to_string(s) + " failed mid-application (" +
            applied.status().ToString() +
            "); replicas have diverged — rebuild the sharded server");
      }
      if (s == 0) {
        epoch = applied.value();
      } else if (applied.value() != epoch) {
        return Status::Corruption(
            "replica epoch divergence: shard " + std::to_string(s) +
            " is at " + std::to_string(applied.value()) + ", shard 0 at " +
            std::to_string(epoch) +
            " — was a shard updated outside the router?");
      }
      total.push_operations += shard_stats.push_operations;
      total.walks_resampled += shard_stats.walks_resampled;
      total.resize_events += shard_stats.resize_events;
      total.seconds += shard_stats.seconds;
    }
    total.epoch = epoch;
  }
  {
    MutexLock lock(mu_);
    updates_applied_++;
    cross_fragment_updates_ += split.cross_fragment;
  }
  if (stats != nullptr) *stats = total;
  return epoch;
}

Result<PprFuture> ShardedPprServer::EnqueueScatter(const PprQuery& query,
                                                   const HostedSpec& spec,
                                                   uint64_t seed,
                                                   bool blocking) {
  MergeJob job;
  job.query = query;
  job.spec = &spec;
  job.seed = seed;
  job.state = std::make_shared<PprFuture::State>();
  job.state->submitted = std::chrono::steady_clock::now();
  // Token setup before publication, exactly as PprServer::Enqueue: the
  // deadline covers queue + fan + merge end to end, and a bounded-drain
  // Stop reaches pending fan-outs through the chained hard stop.
  if (query.deadline.count() > 0) {
    job.state->token.ArmDeadline(job.state->submitted + query.deadline);
  }
  job.state->token.ChainHardStop(hard_stop_);
  PprFuture future(job.state);

  QueuePushResult admitted;
  bool saw_full = false;
  if (blocking) {
    auto admission_deadline = std::chrono::steady_clock::time_point::max();
    if (query.deadline.count() > 0) {
      admission_deadline = job.state->submitted + query.deadline;
    } else if (options_.shard.batch_admission_budget.count() > 0) {
      admission_deadline =
          job.state->submitted + options_.shard.batch_admission_budget;
    }
    admitted =
        merge_queue_.PushUntil(std::move(job), admission_deadline, &saw_full);
  } else {
    admitted = merge_queue_.TryPush(std::move(job))
                   ? QueuePushResult::kAdmitted
                   : QueuePushResult::kClosed;  // refined below
  }
  MutexLock lock(mu_);
  if (admitted != QueuePushResult::kAdmitted) {
    if (merge_queue_.closed()) {
      return Status::FailedPrecondition("sharded server is shutting down");
    }
    fan_rejected_++;
    if (admitted == QueuePushResult::kTimedOut) {
      return Status::DeadlineExceeded(
          "admission deadline passed while waiting for merge-queue space (" +
          std::to_string(merge_queue_.capacity()) + " pending)");
    }
    return Status::Unavailable(
        "merge queue full (" + std::to_string(merge_queue_.capacity()) +
        " pending fan-outs); retry later or raise merge_queue_capacity");
  }
  if (saw_full) fan_rejected_++;
  fanned_++;
  return future;
}

void ShardedPprServer::MergerLoop() {
  while (auto job = merge_queue_.Pop()) {
    ServeScatter(*job);
  }
}

void ShardedPprServer::ServeScatter(MergeJob& job) {
  // Triage before fanning: a fan-out whose deadline expired in the
  // merge queue (or that was cancelled, or that a bounded-drain stop
  // overtook) never submits a single shard query.
  const Status triage = job.state->token.CheckNow();
  if (!triage.ok()) {
    FinishScatter(job, triage, triage, PprResult{});
    return;
  }

  std::vector<PprFuture> partials;
  partials.reserve(shards_.size());
  Status failure;
  {
    // Shared hold of the cross-shard epoch barrier across submit + wait:
    // a router ApplyUpdates on this spec either precedes every partial
    // or follows all of them, so the partials agree on one epoch.
    SharedLock epoch_guard(*job.spec->barrier);
    for (auto& shard : shards_) {
      auto submitted = shard->Submit(job.query, job.spec->name, job.seed);
      if (!submitted.ok()) {
        failure = submitted.status();
        break;
      }
      partials.push_back(std::move(submitted).ValueOrDie());
    }
    bool relayed = false;
    if (!failure.ok()) {
      // A shard refused (full queue / racing shutdown): the siblings
      // already admitted must still complete — cancel and wait them out
      // rather than abandoning their futures.
      for (PprFuture& partial : partials) partial.Cancel();
      relayed = true;
    }
    for (;;) {
      bool all_done = true;
      for (PprFuture& partial : partials) {
        all_done = all_done && partial.done();
      }
      if (all_done) break;
      // Relay the logical query's cancellation/deadline/hard-stop to
      // the shards once, then keep waiting — every shard future is
      // guaranteed to complete.
      if (!relayed && !job.state->token.CheckNow().ok()) {
        for (PprFuture& partial : partials) partial.Cancel();
        relayed = true;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  if (!failure.ok()) {
    // Map a fan that raced shutdown or expiry onto the logical query's
    // own terminal status (Cancelled / DeadlineExceeded) instead of the
    // shard's lifecycle refusal.
    const Status token_now = job.state->token.CheckNow();
    if (!token_now.ok()) failure = token_now;
    FinishScatter(job, triage, std::move(failure), PprResult{});
    return;
  }

  std::vector<PprResult> results(partials.size());
  for (size_t i = 0; i < partials.size(); ++i) {
    Status status = partials[i].Get(&results[i]);
    if (!status.ok() && failure.ok()) failure = status;
  }
  if (failure.ok()) {
    for (size_t i = 1; i < results.size(); ++i) {
      if (results[i].epoch != results[0].epoch ||
          results[i].scores.size() != results[0].scores.size()) {
        failure = Status::Corruption(
            "shard partials disagree (epoch " +
            std::to_string(results[i].epoch) + " vs " +
            std::to_string(results[0].epoch) +
            ") — was a shard updated outside the router?");
        break;
      }
    }
  }
  if (!failure.ok()) {
    FinishScatter(job, triage, std::move(failure), PprResult{});
    return;
  }
  FinishScatter(job, triage, Status::OK(), MergePartials(job.query, results));
}

PprResult ShardedPprServer::MergePartials(
    const PprQuery& query, std::vector<PprResult>& partials) const {
  PprResult merged;
  const PprResult& base = partials[0];
  const size_t n = base.scores.size();
  // Ghost-aware reassembly: every global node's score comes from the
  // shard that owns it. With replicas the partials are identical, so
  // this is exactly the single-server vector; with fragment-local state
  // this same loop is the reduce step.
  merged.scores.resize(n);
  for (size_t g = 0; g < n; ++g) {
    merged.scores[g] = partials[partition_->FragmentOf(
        static_cast<NodeId>(g))].scores[g];
  }
  if (query.want_residues && base.has_residues()) {
    merged.residues.resize(n);
    for (size_t g = 0; g < n; ++g) {
      merged.residues[g] = partials[partition_->FragmentOf(
          static_cast<NodeId>(g))].residues[g];
    }
  }
  // Recompute top-k from the merged vector with the same deterministic
  // TopK every solver stamps with (eval/metrics.h), preserving the
  // NaN-safe value-desc/id-asc order bit for bit.
  if (query.top_k > 0) merged.top_nodes = TopK(merged.scores, query.top_k);
  merged.l1_bound = base.l1_bound;
  merged.epoch = base.epoch;
  merged.solver = base.solver;
  merged.stats.final_rsum = base.stats.final_rsum;
  for (const PprResult& partial : partials) {
    merged.stats.push_operations += partial.stats.push_operations;
    merged.stats.edge_pushes += partial.stats.edge_pushes;
    merged.stats.iterations =
        std::max(merged.stats.iterations, partial.stats.iterations);
    merged.stats.random_walks += partial.stats.random_walks;
    merged.stats.walk_steps += partial.stats.walk_steps;
    // Partials ran concurrently: the logical latency is the slowest
    // shard, while the summed operation counters above stay the true
    // total cost of the fan-out.
    merged.stats.seconds = std::max(merged.stats.seconds,
                                    partial.stats.seconds);
  }
  return merged;
}

void ShardedPprServer::FinishScatter(MergeJob& job, const Status& triage,
                                     Status status, PprResult result) {
  const bool terminal_ok = status.ok();
  const StatusCode terminal_code = status.code();
  if (terminal_ok) {
    result.shard = kShardMerged;
    result.degraded = false;
  }
  internal::PublishToFuture(*job.state, std::move(status), std::move(result));
  MutexLock lock(mu_);
  // Logical fan-out taxonomy, mirroring the per-shard one: exactly one
  // bucket per admitted fan-out, so
  // fanned == merged + fan_failed + fan_shed + fan_cancelled once
  // drained.
  if (terminal_ok) {
    merged_++;
  } else if (terminal_code == StatusCode::kCancelled) {
    fan_cancelled_++;
  } else if (triage.code() == StatusCode::kDeadlineExceeded) {
    fan_shed_++;
  } else {
    fan_failed_++;
  }
}

ShardedPprServerStats ShardedPprServer::stats() const {
  ShardedPprServerStats out;
  out.per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    out.per_shard.push_back(shard->Snapshot());
  }
  for (const PprServerStats& s : out.per_shard) {
    out.total.submitted += s.submitted;
    out.total.rejected += s.rejected;
    out.total.completed += s.completed;
    out.total.failed += s.failed;
    out.total.shed += s.shed;
    out.total.cancelled += s.cancelled;
    out.total.degraded += s.degraded;
    out.total.updates += s.updates;
    out.total.coalesced += s.coalesced;
    out.total.queue_depth += s.queue_depth;
  }
  out.merge_queue_depth = merge_queue_.size();
  MutexLock lock(mu_);
  out.fanned = fanned_;
  out.merged = merged_;
  out.fan_failed = fan_failed_;
  out.fan_shed = fan_shed_;
  out.fan_cancelled = fan_cancelled_;
  out.fan_rejected = fan_rejected_;
  out.updates_applied = updates_applied_;
  out.cross_fragment_updates = cross_fragment_updates_;
  return out;
}

std::vector<std::string> ShardedPprServer::solver_names() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(solvers_.size());
  for (const HostedSpec& hosted : solvers_) names.push_back(hosted.name);
  return names;
}

}  // namespace ppr
