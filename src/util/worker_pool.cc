#include "util/worker_pool.h"

#include <algorithm>

#include "util/logging.h"
#include "util/parallel.h"

namespace ppr {

unsigned ThreadBudget() {
  static const unsigned budget = internal::ConfiguredThreadCount();
  return budget;
}

WorkerPool::WorkerPool(unsigned num_threads) : num_threads_(num_threads) {
  threads_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() { Shutdown(); }

void WorkerPool::Shutdown() {
  std::vector<std::thread> to_join;
  {
    MutexLock lock(mu_);
    if (shutdown_) {
      // Another caller (say the destructor racing an explicit Shutdown)
      // owns the join; wait until it finishes so "after Shutdown the
      // workers are stopped" holds for every caller.
      while (!joined_) work_cv_.Wait(lock);
      return;
    }
    shutdown_ = true;
    to_join.swap(threads_);  // exactly one caller joins each thread
  }
  work_cv_.NotifyAll();
  for (std::thread& t : to_join) t.join();
  {
    MutexLock lock(mu_);
    joined_ = true;
  }
  work_cv_.NotifyAll();
}

void WorkerPool::WorkerLoop() {
  // Workers only ever run region chunks, so the nested-auto-sizing flag
  // can stay set for the thread's whole lifetime.
  internal::ScopedParallelWorker worker_marker;
  MutexLock lock(mu_);
  while (true) {
    while (!shutdown_ && pending_.empty()) work_cv_.Wait(lock);
    if (pending_.empty()) return;  // shutdown with the queue drained
    Region* r = pending_.front();
    const unsigned c = r->next_chunk++;
    RetireIfFullyClaimed(r);
    lock.Unlock();
    ExecuteChunk(r, c);
    lock.Lock();
  }
}

void WorkerPool::RetireIfFullyClaimed(Region* r) {
  if (r->next_chunk < r->chunks) return;
  auto it = std::find(pending_.begin(), pending_.end(), r);
  if (it != pending_.end()) pending_.erase(it);
}

void WorkerPool::ExecuteChunk(Region* r, unsigned c) {
  bool skip;
  {
    MutexLock lock(mu_);
    skip = r->failed;
    if (!skip) {
      active_++;
      peak_active_ = std::max(peak_active_, active_);
    }
  }
  if (!skip) {
    try {
      internal::ScopedParallelWorker worker_marker;
      (*r->fn)(c);
    } catch (...) {
      MutexLock lock(mu_);
      if (!r->failed) {
        r->failed = true;
        r->error = std::current_exception();
      }
    }
  }
  MutexLock lock(mu_);
  if (!skip) active_--;
  r->done++;
  if (r->done == r->chunks) r->done_cv.NotifyAll();
}

void WorkerPool::Run(unsigned chunks, const std::function<void(unsigned)>& fn) {
  if (chunks == 0) return;
  Region region;
  region.fn = &fn;
  region.chunks = chunks;

  {
    MutexLock lock(mu_);
    // After Shutdown (or with zero workers) nobody will pick the region
    // up, so don't enqueue it — the help loop below runs every chunk on
    // this thread, in index order.
    if (!joined_ && !shutdown_ && num_threads_ > 0 && chunks > 1) {
      pending_.push_back(&region);
    }
  }
  if (chunks > 1) work_cv_.NotifyAll();

  // Help-first: claim this region's chunks until none are left, then
  // wait for the stragglers other threads claimed.
  MutexLock lock(mu_);
  while (true) {
    if (region.next_chunk < region.chunks) {
      const unsigned c = region.next_chunk++;
      RetireIfFullyClaimed(&region);
      lock.Unlock();
      ExecuteChunk(&region, c);
      lock.Lock();
      continue;
    }
    if (region.done == region.chunks) break;
    region.done_cv.Wait(lock);
  }
  lock.Unlock();
  if (region.error) std::rethrow_exception(region.error);
}

unsigned WorkerPool::active_executors() const {
  MutexLock lock(mu_);
  return active_;
}

unsigned WorkerPool::peak_executors() const {
  MutexLock lock(mu_);
  return peak_active_;
}

void WorkerPool::ResetPeak() {
  MutexLock lock(mu_);
  peak_active_ = active_;
}

WorkerPool& WorkerPool::Shared() {
  // Deliberately leaked: idle workers block on the pool's own (leaked)
  // condition variable, so process exit never races a destructor.
  static WorkerPool* shared = new WorkerPool(ThreadBudget() - 1);
  return *shared;
}

}  // namespace ppr
