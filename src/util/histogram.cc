#include "util/histogram.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "util/logging.h"

namespace ppr {

Histogram::Histogram()
    : buckets_(kNumBuckets, 0), count_(0), sum_(0), min_(~0ULL), max_(0) {}

int Histogram::BucketFor(uint64_t value) {
  if (value == 0) return 0;
  return 64 - std::countl_zero(value);
}

uint64_t Histogram::BucketLow(int b) {
  if (b <= 0) return 0;
  return 1ULL << (b - 1);
}

uint64_t Histogram::BucketHigh(int b) {
  if (b <= 0) return 0;
  if (b >= 64) return ~0ULL;
  return (1ULL << b) - 1;
}

void Histogram::Add(uint64_t value) {
  buckets_[BucketFor(value)]++;
  count_++;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double Histogram::Mean() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

double Histogram::Quantile(double q) const {
  PPR_CHECK(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  double target = q * static_cast<double>(count_);
  uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    if (static_cast<double>(seen + buckets_[b]) >= target) {
      double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(buckets_[b]);
      double low = static_cast<double>(BucketLow(b));
      double high = static_cast<double>(BucketHigh(b));
      return low + frac * (high - low);
    }
    seen += buckets_[b];
  }
  return static_cast<double>(max_);
}

std::string Histogram::ToString() const {
  std::ostringstream out;
  out << "count=" << count_ << " mean=" << Mean() << " min=" << min()
      << " max=" << max_ << "\n";
  for (int b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    out << "  [" << BucketLow(b) << ", " << BucketHigh(b)
        << "]: " << buckets_[b] << "\n";
  }
  return out.str();
}

void Histogram::Merge(const Histogram& other) {
  for (int b = 0; b < kNumBuckets; ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace ppr
