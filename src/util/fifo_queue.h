#ifndef PPR_UTIL_FIFO_QUEUE_H_
#define PPR_UTIL_FIFO_QUEUE_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace ppr {

/// Fixed-capacity FIFO ring buffer over node ids with O(1) membership
/// testing — the exact structure Algorithm 2 (FIFO-FwdPush) needs for its
/// "if u not in Q then append" step. Capacity is the number of distinct
/// ids (a node can appear at most once), so the ring never overflows.
class FifoQueue {
 public:
  /// Creates a queue able to hold ids in [0, universe).
  explicit FifoQueue(uint32_t universe)
      : ring_(static_cast<size_t>(universe) + 1),
        in_queue_(universe, 0),
        head_(0),
        tail_(0) {}

  /// Appends v if it is not currently queued. Returns true if appended.
  bool PushIfAbsent(uint32_t v) {
    PPR_DCHECK(v < in_queue_.size());
    if (in_queue_[v]) return false;
    in_queue_[v] = 1;
    ring_[tail_] = v;
    tail_ = Advance(tail_);
    return true;
  }

  /// Pops the front id. Precondition: !empty().
  uint32_t Pop() {
    PPR_DCHECK(!empty());
    uint32_t v = ring_[head_];
    head_ = Advance(head_);
    in_queue_[v] = 0;
    return v;
  }

  bool empty() const { return head_ == tail_; }

  size_t size() const {
    return tail_ >= head_ ? tail_ - head_ : ring_.size() - head_ + tail_;
  }

  bool Contains(uint32_t v) const {
    PPR_DCHECK(v < in_queue_.size());
    return in_queue_[v] != 0;
  }

  /// Removes every element and clears membership flags in O(size).
  void Clear() {
    while (!empty()) Pop();
  }

  /// Re-targets the queue at a (possibly different) universe. Reallocates
  /// only when the universe changes; otherwise just drains leftovers, so
  /// a solver context can reuse one queue across queries without paying
  /// the O(universe) flag reset.
  void Reconfigure(uint32_t universe) {
    if (in_queue_.size() != universe) {
      ring_.assign(static_cast<size_t>(universe) + 1, 0);
      in_queue_.assign(universe, 0);
      head_ = tail_ = 0;
    } else {
      Clear();
    }
  }

 private:
  size_t Advance(size_t i) const { return i + 1 == ring_.size() ? 0 : i + 1; }

  std::vector<uint32_t> ring_;
  std::vector<uint8_t> in_queue_;
  size_t head_;
  size_t tail_;
};

}  // namespace ppr

#endif  // PPR_UTIL_FIFO_QUEUE_H_
