#include "util/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <vector>

#include "util/logging.h"

namespace ppr {

unsigned ParallelThreadCount() {
  if (const char* env = std::getenv("PPR_THREADS")) {
    int v = std::atoi(env);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ParallelFor(uint64_t begin, uint64_t end,
                 const std::function<void(uint64_t, uint64_t, unsigned)>& fn,
                 uint64_t grain) {
  PPR_CHECK(begin <= end);
  PPR_CHECK(grain >= 1);
  if (begin == end) return;
  const uint64_t range = end - begin;
  unsigned threads = ParallelThreadCount();
  // Spawning threads below ~2 grains of work costs more than it saves.
  if (threads <= 1 || range < 2 * grain) {
    fn(begin, end, 0);
    return;
  }
  threads =
      static_cast<unsigned>(std::min<uint64_t>(threads, range / grain + 1));

  const uint64_t chunk = (range + threads - 1) / threads;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    const uint64_t lo = begin + w * chunk;
    const uint64_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    workers.emplace_back([&fn, lo, hi, w] { fn(lo, hi, w); });
  }
  for (std::thread& t : workers) t.join();
}

}  // namespace ppr
