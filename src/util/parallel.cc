#include "util/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <vector>

#include "util/logging.h"
#include "util/worker_pool.h"

namespace ppr {

namespace {
/// True on threads executing a parallel-region chunk, so auto-sized
/// (threads=0) stages nested inside an outer parallel region — e.g. a
/// walk phase running under a BatchSolve worker — resolve to serial
/// instead of oversubscribing the machine. Explicit counts still win.
/// Set via internal::ScopedParallelWorker by the WorkerPool.
thread_local bool t_inside_parallel_worker = false;
}  // namespace

namespace internal {

unsigned ConfiguredThreadCount() {
  if (const char* env = std::getenv("PPR_THREADS")) {
    int v = std::atoi(env);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ScopedParallelWorker::ScopedParallelWorker()
    : previous_(t_inside_parallel_worker) {
  t_inside_parallel_worker = true;
}

ScopedParallelWorker::~ScopedParallelWorker() {
  t_inside_parallel_worker = previous_;
}

}  // namespace internal

unsigned ParallelThreadCount() {
  if (t_inside_parallel_worker) return 1;
  return internal::ConfiguredThreadCount();
}

void ParallelFor(uint64_t begin, uint64_t end,
                 const std::function<void(uint64_t, uint64_t, unsigned)>& fn,
                 uint64_t grain) {
  ParallelForThreads(begin, end, ParallelThreadCount(), fn, grain);
}

void ParallelForThreads(uint64_t begin, uint64_t end, unsigned threads,
                        const std::function<void(uint64_t, uint64_t, unsigned)>&
                            fn,
                        uint64_t grain) {
  PPR_CHECK(begin <= end);
  PPR_CHECK(grain >= 1);
  PPR_CHECK(threads >= 1);
  if (begin == end) return;
  const uint64_t range = end - begin;
  // Spawning threads below ~2 grains of work costs more than it saves.
  if (threads <= 1 || range < 2 * grain) {
    fn(begin, end, 0);
    return;
  }
  threads =
      static_cast<unsigned>(std::min<uint64_t>(threads, range / grain + 1));

  // The chunk partition is a pure function of (range, threads) — the
  // same boundaries and worker indices the thread-per-chunk
  // implementation produced — so per-chunk RNG streams and buffers stay
  // bit-identical. Execution is delegated to the shared persistent pool:
  // chunk w may run on any pool worker or on this thread, but runs
  // exactly once with index w.
  const uint64_t chunk = (range + threads - 1) / threads;
  const unsigned nchunks = static_cast<unsigned>((range + chunk - 1) / chunk);
  WorkerPool::Shared().Run(nchunks, [&fn, begin, end, chunk](unsigned w) {
    const uint64_t lo = begin + w * chunk;
    const uint64_t hi = std::min(end, lo + chunk);
    fn(lo, hi, w);
  });
}

std::vector<uint64_t> BalancedChunkBounds(
    uint64_t n, unsigned chunks,
    const std::function<uint64_t(uint64_t)>& weight, uint64_t known_total) {
  PPR_CHECK(chunks >= 1);
  uint64_t total = known_total;
  if (total == 0) {
    for (uint64_t i = 0; i < n; ++i) total += weight(i);
  }

  std::vector<uint64_t> bounds;
  bounds.reserve(chunks + 1);
  bounds.push_back(0);
  uint64_t accumulated = 0;
  uint64_t next = 0;
  for (unsigned c = 1; c < chunks; ++c) {
    // Chunk c ends once the running weight reaches c/chunks of the total
    // (ceiling so empty-weight prefixes don't produce zero-width tails).
    const uint64_t target = (total * c + chunks - 1) / chunks;
    while (next < n && accumulated < target) accumulated += weight(next++);
    bounds.push_back(next);
  }
  bounds.push_back(n);
  return bounds;
}

}  // namespace ppr
