#include "util/flags.h"

#include <cstdlib>
#include <sstream>

#include "util/string_utils.h"

namespace ppr {

void FlagParser::AddString(const std::string& name, std::string* target,
                           const std::string& help) {
  flags_.push_back({name, Kind::kString, target, help});
}

void FlagParser::AddDouble(const std::string& name, double* target,
                           const std::string& help) {
  flags_.push_back({name, Kind::kDouble, target, help});
}

void FlagParser::AddUint64(const std::string& name, uint64_t* target,
                           const std::string& help) {
  flags_.push_back({name, Kind::kUint64, target, help});
}

void FlagParser::AddBool(const std::string& name, bool* target,
                         const std::string& help) {
  flags_.push_back({name, Kind::kBool, target, help});
}

Status FlagParser::Apply(const Flag& flag, const std::string& value,
                         bool has_value) {
  switch (flag.kind) {
    case Kind::kBool:
      if (has_value && value != "true" && value != "false") {
        return Status::InvalidArgument("--" + flag.name +
                                       " takes no value (or true/false)");
      }
      *static_cast<bool*>(flag.target) = !has_value || value == "true";
      return Status::OK();
    case Kind::kString:
      if (!has_value) {
        return Status::InvalidArgument("--" + flag.name + " needs a value");
      }
      *static_cast<std::string*>(flag.target) = value;
      return Status::OK();
    case Kind::kDouble: {
      if (!has_value) {
        return Status::InvalidArgument("--" + flag.name + " needs a value");
      }
      char* end = nullptr;
      const double parsed = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("--" + flag.name +
                                       ": not a number: " + value);
      }
      *static_cast<double*>(flag.target) = parsed;
      return Status::OK();
    }
    case Kind::kUint64: {
      if (!has_value) {
        return Status::InvalidArgument("--" + flag.name + " needs a value");
      }
      uint64_t parsed = 0;
      if (!ParseUint64(value, &parsed)) {
        return Status::InvalidArgument("--" + flag.name +
                                       ": not a non-negative integer: " +
                                       value);
      }
      *static_cast<uint64_t*>(flag.target) = parsed;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unreachable");
}

Status FlagParser::Parse(int argc, char** argv) {
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const size_t eq = arg.find('=');
    const std::string name =
        eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
    const bool has_value = eq != std::string::npos;
    const std::string value = has_value ? arg.substr(eq + 1) : "";

    bool matched = false;
    for (const Flag& flag : flags_) {
      if (flag.name == name) {
        PPR_RETURN_IF_ERROR(Apply(flag, value, has_value));
        matched = true;
        break;
      }
    }
    if (!matched) return Status::InvalidArgument("unknown flag: " + arg);
  }
  return Status::OK();
}

std::string FlagParser::Usage() const {
  std::ostringstream out;
  for (const Flag& flag : flags_) {
    out << "  --" << flag.name << "  " << flag.help << "\n";
  }
  return out.str();
}

}  // namespace ppr
