#ifndef PPR_UTIL_HISTOGRAM_H_
#define PPR_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ppr {

/// Log-bucketed histogram for non-negative integer observations (degree
/// distributions, walk lengths, queue sizes). Bucket b holds values in
/// [2^(b-1), 2^b) with bucket 0 holding the value 0.
class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;

  /// Approximate quantile (q in [0,1]) assuming a uniform distribution
  /// within each bucket.
  double Quantile(double q) const;

  /// Multi-line textual rendering with one row per non-empty bucket.
  std::string ToString() const;

  /// Merges another histogram's observations into this one.
  void Merge(const Histogram& other);

 private:
  static constexpr int kNumBuckets = 65;
  static int BucketFor(uint64_t value);
  static uint64_t BucketLow(int b);
  static uint64_t BucketHigh(int b);

  std::vector<uint64_t> buckets_;
  uint64_t count_;
  uint64_t sum_;
  uint64_t min_;
  uint64_t max_;
};

}  // namespace ppr

#endif  // PPR_UTIL_HISTOGRAM_H_
