#include "util/table_printer.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace ppr {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  PPR_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  PPR_CHECK(cells.size() == headers_.size())
      << "row has " << cells.size() << " cells, expected " << headers_.size();
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      out << cells[c];
      if (c + 1 < cells.size()) {
        out << std::string(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    out << "\n";
  };

  emit_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace ppr
