#ifndef PPR_UTIL_STATUS_H_
#define PPR_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace ppr {

/// Error categories used across the library. Kept deliberately small:
/// most internal invariant violations are programming errors and are
/// handled with PPR_CHECK instead of Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kOutOfRange,
  kFailedPrecondition,
  kCorruption,
  kUnimplemented,
  /// Transient overload: retry later (e.g. a full PprServer queue).
  kUnavailable,
  /// The operation's deadline passed before it finished (serving tier).
  kDeadlineExceeded,
  /// The operation was cancelled by the caller or by server shutdown.
  kCancelled,
};

/// Returns a short human-readable name for a status code ("IOError", ...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value, RocksDB-style. Functions that can
/// fail for reasons outside the programmer's control (I/O, user input)
/// return Status (or Result<T>); everything else uses assertions.
///
/// [[nodiscard]] on the class: any function returning Status by value
/// makes ignoring the error a compile error (builds run with
/// -Werror=unused-result). A deliberately-ignored error must say so
/// with a (void) cast at the call site.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value or an error. Result<T> is used by constructors/loaders that
/// either produce a fully-formed object or fail. [[nodiscard]] for the
/// same reason as Status: dropping one silently drops the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(implicit)
  Result(Status status) : value_(std::move(status)) {}   // NOLINT(implicit)

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(value_);
  }

  /// Precondition: ok().
  T& value() { return std::get<T>(value_); }
  const T& value() const { return std::get<T>(value_); }

  /// Moves the value out. Precondition: ok().
  T ValueOrDie() && { return std::move(std::get<T>(value_)); }

 private:
  std::variant<T, Status> value_;
};

/// Propagates a non-OK Status to the caller.
#define PPR_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::ppr::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace ppr

#endif  // PPR_UTIL_STATUS_H_
