#ifndef PPR_UTIL_LOGGING_H_
#define PPR_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace ppr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
/// Defaults to kInfo; override with the PPR_LOG_LEVEL env var (0-3).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style message collector that emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process in the destructor.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define PPR_LOG(level)                                                   \
  ::ppr::internal::LogMessage(::ppr::LogLevel::k##level, __FILE__, __LINE__)

/// Invariant check, always on (the cost is negligible next to graph work;
/// databases-style codebases keep checks in release builds).
#define PPR_CHECK(cond)                                            \
  if (!(cond))                                                     \
  ::ppr::internal::FatalLogMessage(__FILE__, __LINE__, #cond)

#define PPR_CHECK_OK(expr)                                         \
  do {                                                             \
    ::ppr::Status _st = (expr);                                    \
    PPR_CHECK(_st.ok()) << _st.ToString();                         \
  } while (0)

#ifndef NDEBUG
#define PPR_DCHECK(cond) PPR_CHECK(cond)
#else
#define PPR_DCHECK(cond) \
  if (false)             \
  ::ppr::internal::FatalLogMessage(__FILE__, __LINE__, #cond)
#endif

}  // namespace ppr

#endif  // PPR_UTIL_LOGGING_H_
