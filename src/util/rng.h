#ifndef PPR_UTIL_RNG_H_
#define PPR_UTIL_RNG_H_

#include <cstdint>

namespace ppr {

/// SplitMix64: used to expand a single seed into independent stream seeds.
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Xoshiro256++: the library-wide PRNG. Fast (sub-ns per draw), passes
/// BigCrush, and — critically for reproducible experiments — fully
/// deterministic given a seed. Every randomized component in this library
/// (generators, random walks, query sampling) takes an explicit Rng or
/// seed; nothing reads global entropy.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL);

  /// Uniform on [0, 2^64).
  uint64_t NextUint64();

  /// Uniform on [0, bound). Uses Lemire's multiply-shift rejection method;
  /// unbiased. Precondition: bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform on [0, 1) with 53 random bits.
  double NextDouble();

  /// Bernoulli(p).
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Number of failures before the first success in Bernoulli(p) trials;
  /// i.e. Geometric(p) supported on {0, 1, 2, ...}. Used for skipping
  /// ahead in random-walk generation. Precondition: 0 < p <= 1.
  uint64_t NextGeometric(double p);

  /// Splits off an independently-seeded child stream. The child sequence
  /// is statistically independent of (and does not perturb) this stream's
  /// future output.
  Rng Split();

  /// Satisfies the C++ UniformRandomBitGenerator concept so Rng can be
  /// passed to <algorithm> utilities such as std::shuffle.
  using result_type = uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return NextUint64(); }

 private:
  uint64_t s_[4];
};

/// Derives child stream `index` of `seed` — the (seed, i) splitting
/// scheme shared by WalkIndex::BuildParallel, the walk phases, and the
/// single-pair fan-out. All of those must agree bit for bit on this
/// composition for the documented determinism contracts to hold, so it
/// lives here instead of being restated at each call site.
inline Rng SplitStream(uint64_t seed, uint64_t index) {
  return Rng(SplitMix64(seed ^ (index * 0x9e3779b97f4a7c15ULL)).Next());
}

}  // namespace ppr

#endif  // PPR_UTIL_RNG_H_
