#ifndef PPR_UTIL_WORKER_POOL_H_
#define PPR_UTIL_WORKER_POOL_H_

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace ppr {

/// The process-wide worker-thread budget: PPR_THREADS when set (>= 1),
/// hardware concurrency otherwise. Unlike ParallelThreadCount() — which
/// re-reads the environment on every call and only picks the *default*
/// chunk count — the budget caps *physical* parallelism process-wide and
/// is read once, at first use (the shared pool is sized from it).
unsigned ThreadBudget();

/// A persistent pool of worker threads executing indexed task regions.
///
/// ParallelForThreads historically spawned fresh std::threads per stage;
/// for small queries the spawn/join overhead dominates, and concurrent
/// queries each spawning threads= workers multiply into oversubscription.
/// WorkerPool fixes both: threads are created once, and every parallel
/// region in the process shares them.
///
/// Run(chunks, fn) executes fn(0..chunks-1), each chunk exactly once, and
/// blocks until all finish. The *submitting thread participates*: it
/// claims and runs chunks of its own region whenever no pool worker got
/// there first ("help-first" scheduling). That gives two guarantees:
///
///  * progress without reservation — a pool of zero workers (budget 1)
///    still completes every region, serially on the caller;
///  * nested regions never deadlock — a chunk that itself calls Run()
///    drains the inner region on its own thread if the pool is saturated,
///    because a region only ever waits on its *own* chunks.
///
/// Scheduling is FIFO across regions and by ascending chunk index within
/// a region. Which OS thread runs a chunk is not deterministic — callers
/// needing reproducibility must key per-chunk state (buffers, RNG
/// streams) on the chunk index, which is exactly the contract the
/// parallel kernels already follow.
///
/// An exception thrown by fn is captured, the region's remaining chunks
/// are skipped, and the first exception rethrows from Run() on the
/// submitting thread. The pool stays usable afterwards.
class WorkerPool {
 public:
  /// Creates `num_threads` persistent workers (0 is valid: every region
  /// then runs inline on its submitter).
  explicit WorkerPool(unsigned num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Executes fn(0..chunks-1) and blocks until every chunk finished.
  /// Chunks run with the "inside parallel worker" flag set (see
  /// ParallelThreadCount), on pool workers and on the calling thread
  /// alike. Safe to call concurrently from many threads and from inside
  /// a running chunk. After Shutdown() regions run inline on the caller.
  void Run(unsigned chunks, const std::function<void(unsigned)>& fn)
      PPR_EXCLUDES(mu_);

  /// Stops and joins the workers after the queued regions drain.
  /// Idempotent; later Run() calls degrade to inline execution.
  void Shutdown() PPR_EXCLUDES(mu_);

  unsigned num_threads() const { return num_threads_; }

  // ---- instrumentation (for the oversubscription regression tests) ----

  /// Threads currently executing a chunk (pool workers + helping
  /// submitters).
  unsigned active_executors() const PPR_EXCLUDES(mu_);
  /// High-water mark of active_executors() since the last ResetPeak().
  unsigned peak_executors() const PPR_EXCLUDES(mu_);
  void ResetPeak() PPR_EXCLUDES(mu_);

  /// The process-wide pool every ParallelForThreads region runs on,
  /// lazily created with ThreadBudget() - 1 workers (the submitting
  /// thread is the budget's remaining slot). Never destroyed — workers
  /// idle on a condition variable until process exit, which sidesteps
  /// static-destruction-order hazards for late parallel work.
  static WorkerPool& Shared();

 private:
  /// Region fields after construction are guarded by the pool's mu_
  /// (expressed as comments: a nested struct cannot name the enclosing
  /// class's mutex in a PPR_GUARDED_BY expression).
  struct Region {
    const std::function<void(unsigned)>* fn = nullptr;
    unsigned chunks = 0;
    unsigned next_chunk = 0;  // first unclaimed index (guarded by mu_)
    unsigned done = 0;        // finished chunks (guarded by mu_)
    bool failed = false;      // first exception wins; rest are skipped
    std::exception_ptr error;
    CondVar done_cv;
  };

  void WorkerLoop() PPR_EXCLUDES(mu_);
  /// Runs chunk `c` of `r` (or skips it when the region already failed)
  /// and updates completion state. Called with mu_ *unlocked*.
  void ExecuteChunk(Region* r, unsigned c) PPR_EXCLUDES(mu_);
  /// Pops `r` from pending_ once its last chunk is claimed.
  void RetireIfFullyClaimed(Region* r) PPR_REQUIRES(mu_);

  const unsigned num_threads_;
  mutable Mutex mu_;
  CondVar work_cv_;
  /// Regions with unclaimed chunks, FIFO. A region leaves the deque when
  /// its last chunk is claimed (not when it finishes).
  std::deque<Region*> pending_ PPR_GUARDED_BY(mu_);
  std::vector<std::thread> threads_ PPR_GUARDED_BY(mu_);
  bool shutdown_ PPR_GUARDED_BY(mu_) = false;
  bool joined_ PPR_GUARDED_BY(mu_) = false;

  unsigned active_ PPR_GUARDED_BY(mu_) = 0;
  unsigned peak_active_ PPR_GUARDED_BY(mu_) = 0;
};

}  // namespace ppr

#endif  // PPR_UTIL_WORKER_POOL_H_
