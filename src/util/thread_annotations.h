#ifndef PPR_UTIL_THREAD_ANNOTATIONS_H_
#define PPR_UTIL_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis attribute macros. Annotating a mutex
// class as a *capability* and its guarded state with PPR_GUARDED_BY
// turns the locking contract into something `-Wthread-safety` verifies
// at compile time: an access to guarded state without the capability
// held, a function called without its PPR_REQUIRES mutex, or a lock
// leaked out of a scope is a compile error under PPR_ANALYZE=ON — no
// interleaving needs to run (contrast the TSAN CI job, which only sees
// the schedules the tests happen to hit).
//
// Every macro expands to nothing on compilers without the attributes
// (GCC, MSVC), so the annotated wrappers in util/mutex.h cost nothing
// off Clang. Policy — when to use which (see docs/development.md for
// the long form):
//
//   PPR_GUARDED_BY(mu)   on a data member: reads and writes require mu.
//   PPR_REQUIRES(mu)     on a private helper: every caller already
//                        holds mu (the "Locked" suffix convention made
//                        machine-checked).
//   PPR_EXCLUDES(mu)     on a public method that acquires mu itself:
//                        calling it with mu held would self-deadlock.
//
// The negative-compile suite (tests/static_analysis) proves these
// macros reject the seeded violations — and that their corrected twins
// still compile — so a broken macro definition cannot silently turn
// the whole analysis off.

#if defined(__clang__) && !defined(SWIG)
#define PPR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PPR_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Declares a class to be a capability ("mutex" names it in warnings).
#define PPR_CAPABILITY(x) PPR_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires a capability at construction
/// and releases it at destruction.
#define PPR_SCOPED_CAPABILITY PPR_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with the capability held.
#define PPR_GUARDED_BY(x) PPR_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the capability.
#define PPR_PT_GUARDED_BY(x) PPR_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability held exclusively on entry (and does
/// not release it).
#define PPR_REQUIRES(...) \
  PPR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function requires the capability held at least shared on entry.
#define PPR_REQUIRES_SHARED(...) \
  PPR_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability exclusively (caller must not hold
/// it on entry).
#define PPR_ACQUIRE(...) \
  PPR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function acquires the capability shared.
#define PPR_ACQUIRE_SHARED(...) \
  PPR_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the (exclusively held) capability.
#define PPR_RELEASE(...) \
  PPR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function releases the shared-held capability.
#define PPR_RELEASE_SHARED(...) \
  PPR_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function releases the capability whether held shared or exclusive
/// (what a scoped lock's destructor does).
#define PPR_RELEASE_GENERIC(...) \
  PPR_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function attempts the acquisition; the first argument is the return
/// value meaning "acquired".
#define PPR_TRY_ACQUIRE(...) \
  PPR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function acquires it
/// itself; holding it on entry would self-deadlock).
#define PPR_EXCLUDES(...) PPR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the capability is held (for code paths the
/// analysis cannot follow); the analysis then assumes it.
#define PPR_ASSERT_CAPABILITY(x) \
  PPR_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the capability guarding its result.
#define PPR_RETURN_CAPABILITY(x) PPR_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only with
/// a comment explaining which protocol (not mutex) makes it safe.
#define PPR_NO_THREAD_SAFETY_ANALYSIS \
  PPR_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // PPR_UTIL_THREAD_ANNOTATIONS_H_
