#ifndef PPR_UTIL_STRING_UTILS_H_
#define PPR_UTIL_STRING_UTILS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ppr {

/// "1.47B", "30.6M", "317K", "42" — the unit convention of the paper's
/// Table 1.
std::string HumanCount(uint64_t value);

/// "54.5GB", "8.01MB", "124KB", "12B".
std::string HumanBytes(uint64_t bytes);

/// "1.72", "0.520", "57988" — seconds formatted to three significant
/// digits like the paper's Table 2.
std::string HumanSeconds(double seconds);

/// Splits on any of the given delimiter characters, dropping empty pieces.
std::vector<std::string_view> SplitAndTrim(std::string_view text,
                                           std::string_view delims);

/// Parses a non-negative integer. Returns false on any malformed input or
/// overflow; *out is untouched on failure.
bool ParseUint64(std::string_view text, uint64_t* out);

/// True if the line is empty, whitespace-only, or a '#'/'%' comment —
/// the comment conventions of SNAP edge-list files.
bool IsCommentOrBlank(std::string_view line);

}  // namespace ppr

#endif  // PPR_UTIL_STRING_UTILS_H_
