#include "util/fault_injection.h"

#include <thread>

namespace ppr {
namespace {

// FNV-1a, so trigger decisions are stable across platforms (std::hash
// makes no such promise).
uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// Uniform draw in [0, 1) from (seed, point, visit index) — independent
// of thread schedule, so a chaos run replays with its seed.
double Draw(uint64_t seed, std::string_view point, uint64_t visit) {
  const uint64_t h = Mix(seed + Mix(HashBytes(point) + Mix(visit)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

Status MakeStatus(StatusCode code, const std::string& message) {
  switch (code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case StatusCode::kNotFound:
      return Status::NotFound(message);
    case StatusCode::kIOError:
      return Status::IOError(message);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(message);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(message);
    case StatusCode::kCorruption:
      return Status::Corruption(message);
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(message);
    case StatusCode::kUnavailable:
      return Status::Unavailable(message);
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(message);
    case StatusCode::kCancelled:
      return Status::Cancelled(message);
  }
  return Status::OK();
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Enable(uint64_t seed) {
  {
    MutexLock lock(mu_);
    seed_ = seed;
  }
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Disable() { armed_.store(false, std::memory_order_release); }

void FaultInjector::SetFault(std::string_view point, FaultSpec spec) {
  MutexLock lock(mu_);
  Point& entry = points_[std::string(point)];
  entry.spec = std::move(spec);
  entry.visits = 0;
  entry.triggers = 0;
}

void FaultInjector::ClearFault(std::string_view point) {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  if (it != points_.end()) points_.erase(it);
}

void FaultInjector::Clear() {
  MutexLock lock(mu_);
  points_.clear();
}

Status FaultInjector::Evaluate(std::string_view point) {
  std::chrono::microseconds delay{0};
  StatusCode error = StatusCode::kOk;
  std::string message;
  {
    MutexLock lock(mu_);
    if (!armed_.load(std::memory_order_acquire)) return Status::OK();
    auto it = points_.find(point);
    if (it == points_.end()) return Status::OK();
    Point& entry = it->second;
    const uint64_t visit = entry.visits++;
    const FaultSpec& spec = entry.spec;
    if (spec.max_triggers != 0 && entry.triggers >= spec.max_triggers) {
      return Status::OK();
    }
    if (spec.probability < 1.0 &&
        Draw(seed_, point, visit) >= spec.probability) {
      return Status::OK();
    }
    ++entry.triggers;
    delay = spec.delay;
    error = spec.error;
    message = spec.message;
  }
  // Sleep outside the lock so one slow point never serializes others.
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
  return MakeStatus(error, message);
}

uint64_t FaultInjector::visits(std::string_view point) const {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.visits;
}

uint64_t FaultInjector::triggers(std::string_view point) const {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.triggers;
}

}  // namespace ppr
