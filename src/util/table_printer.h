#ifndef PPR_UTIL_TABLE_PRINTER_H_
#define PPR_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace ppr {

/// Column-aligned plain-text tables; every bench binary renders its
/// paper-table/figure rows through this so output is uniform and easy to
/// diff against the paper.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders with a header underline and two-space column gaps.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ppr

#endif  // PPR_UTIL_TABLE_PRINTER_H_
