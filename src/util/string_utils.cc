#include "util/string_utils.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace ppr {

namespace {

std::string WithUnit(double scaled, const char* unit) {
  char buf[32];
  if (scaled >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.0f%s", scaled, unit);
  } else if (scaled >= 10.0) {
    std::snprintf(buf, sizeof(buf), "%.1f%s", scaled, unit);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f%s", scaled, unit);
  }
  return buf;
}

}  // namespace

std::string HumanCount(uint64_t value) {
  double v = static_cast<double>(value);
  if (value >= 1000000000ULL) return WithUnit(v / 1e9, "B");
  if (value >= 1000000ULL) return WithUnit(v / 1e6, "M");
  if (value >= 1000ULL) return WithUnit(v / 1e3, "K");
  return std::to_string(value);
}

std::string HumanBytes(uint64_t bytes) {
  double v = static_cast<double>(bytes);
  if (bytes >= (1ULL << 30)) return WithUnit(v / (1ULL << 30), "GB");
  if (bytes >= (1ULL << 20)) return WithUnit(v / (1ULL << 20), "MB");
  if (bytes >= (1ULL << 10)) return WithUnit(v / (1ULL << 10), "KB");
  return std::to_string(bytes) + "B";
}

std::string HumanSeconds(double seconds) {
  char buf[32];
  if (seconds >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.0f", seconds);
  } else if (seconds >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.0f", seconds);
  } else if (seconds >= 10.0) {
    std::snprintf(buf, sizeof(buf), "%.1f", seconds);
  } else if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3g", seconds);
  }
  return buf;
}

std::vector<std::string_view> SplitAndTrim(std::string_view text,
                                           std::string_view delims) {
  std::vector<std::string_view> pieces;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find_first_of(delims, start);
    if (end == std::string_view::npos) end = text.size();
    if (end > start) pieces.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return pieces;
}

bool ParseUint64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (~0ULL - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool IsCommentOrBlank(std::string_view line) {
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    return c == '#' || c == '%';
  }
  return true;
}

}  // namespace ppr
