#ifndef PPR_UTIL_FAULT_INJECTION_H_
#define PPR_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

// Deterministic fault injection for chaos testing.
//
// Production code marks *named injection points* with the macros below;
// tests arm specific points with a delay and/or an error, drive load,
// and assert the system's invariants hold under the induced slowness
// and failures. Injection is:
//
//   * deterministic — whether visit k of point p triggers is a pure
//     function of (enable seed, p, k), independent of thread schedule,
//     so a failing chaos run reproduces with the same seed;
//   * cheap when idle — a disarmed point costs one relaxed atomic load;
//   * compiled out entirely when CMake is configured with
//     -DPPR_FAULT_INJECTION=OFF (the macros expand to nothing).
//
// Registered points (keep this list in sync with docs/serving.md):
//
//   serve.queue.push      PprServer admission, before the queue push
//   serve.queue.pop       worker loop, after popping a request
//   solver.solve          Solver::Solve wrapper, before DoSolve
//   walkindex.save        WalkIndex::SaveTo entry (cache write)
//   walkindex.load        WalkIndex::LoadFrom entry (cache read)
//   server.apply_updates  PprServer::ApplyUpdates, before the barrier

#if !defined(PPR_FAULT_INJECTION)
#define PPR_FAULT_INJECTION 0
#endif

namespace ppr {

/// What an armed injection point does when a visit triggers.
struct FaultSpec {
  /// Probability in [0, 1] that a given visit triggers (deterministic
  /// per visit index; 1.0 = every visit).
  double probability = 1.0;
  /// Sleep this long on a triggered visit (injected slowness).
  std::chrono::microseconds delay{0};
  /// Status code returned on a triggered visit; kOk = delay only.
  StatusCode error = StatusCode::kOk;
  /// Message for the injected status.
  std::string message = "injected fault";
  /// Stop triggering after this many triggers; 0 = unlimited.
  uint64_t max_triggers = 0;
};

/// Process-wide registry of armed injection points. Thread-safe; the
/// disarmed fast path is a single relaxed atomic load.
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Arms the injector. Trigger decisions derive from `seed`; Clear()s
  /// nothing, so faults set before Enable stay armed.
  void Enable(uint64_t seed) PPR_EXCLUDES(mu_);
  /// Disarms every point (specs stay registered until Clear()).
  void Disable() PPR_EXCLUDES(mu_);
  bool enabled() const {
    return armed_.load(std::memory_order_acquire);
  }

  void SetFault(std::string_view point, FaultSpec spec) PPR_EXCLUDES(mu_);
  void ClearFault(std::string_view point) PPR_EXCLUDES(mu_);
  /// Removes every spec and resets all visit/trigger counters.
  void Clear() PPR_EXCLUDES(mu_);

  /// Evaluates one visit of `point`: sleeps through an injected delay,
  /// then returns the injected error (or OK). Called via the macros.
  Status Evaluate(std::string_view point) PPR_EXCLUDES(mu_);

  /// Observability for tests.
  uint64_t visits(std::string_view point) const PPR_EXCLUDES(mu_);
  uint64_t triggers(std::string_view point) const PPR_EXCLUDES(mu_);

 private:
  struct Point {
    FaultSpec spec;
    uint64_t visits = 0;
    uint64_t triggers = 0;
  };

  FaultInjector() = default;

  std::atomic<bool> armed_{false};
  mutable Mutex mu_;
  uint64_t seed_ PPR_GUARDED_BY(mu_) = 0;
  std::map<std::string, Point, std::less<>> points_ PPR_GUARDED_BY(mu_);
};

/// RAII enable/cleanup for tests: arms the injector with `seed` on
/// construction, disables it and clears every spec on destruction.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(uint64_t seed) {
    FaultInjector::Global().Enable(seed);
  }
  ~ScopedFaultInjection() {
    FaultInjector::Global().Disable();
    FaultInjector::Global().Clear();
  }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace ppr

#if PPR_FAULT_INJECTION

/// Marks an injection point whose only effect can be delay: an injected
/// error status at this point is deliberately dropped.
#define PPR_FAULT_POINT(point)                                         \
  do {                                                                 \
    if (::ppr::FaultInjector::Global().enabled()) {                    \
      ::ppr::Status _fault_st =                                        \
          ::ppr::FaultInjector::Global().Evaluate(point);              \
      (void)_fault_st;                                                 \
    }                                                                  \
  } while (0)

/// Marks an injection point on a Status/Result-returning path: an
/// injected error is returned to the caller (delay still applies).
#define PPR_FAULT_STATUS(point)                                        \
  do {                                                                 \
    if (::ppr::FaultInjector::Global().enabled()) {                    \
      ::ppr::Status _fault_st =                                        \
          ::ppr::FaultInjector::Global().Evaluate(point);              \
      if (!_fault_st.ok()) return _fault_st;                           \
    }                                                                  \
  } while (0)

#else  // !PPR_FAULT_INJECTION

#define PPR_FAULT_POINT(point) \
  do {                         \
  } while (0)
#define PPR_FAULT_STATUS(point) \
  do {                          \
  } while (0)

#endif  // PPR_FAULT_INJECTION

#endif  // PPR_UTIL_FAULT_INJECTION_H_
