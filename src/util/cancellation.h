#ifndef PPR_UTIL_CANCELLATION_H_
#define PPR_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "util/status.h"

namespace ppr {

/// Cooperative cancellation + deadline token for long-running solves.
///
/// One token belongs to one in-flight operation (the serving tier keeps
/// it in the PprFuture's shared state). Three independent stop signals
/// feed it:
///
///   * RequestCancel()   — explicit caller cancellation (PprFuture::Cancel);
///   * ArmDeadline(tp)   — an absolute steady-clock completion deadline;
///   * ChainHardStop(p)  — a shared flag flipped by bounded-drain server
///                         shutdown, chained once before the token is
///                         published to other threads.
///
/// Compute kernels poll ShouldStop() at coarse boundaries (walk-phase
/// chunks, SpMV iterations, every-N pushes) and bail out; the Solve
/// wrapper converts the condition to a Status with CheckNow(). Polling
/// is lock-free (plain atomics), and a null token pointer means "never
/// stop" — kernels gate every poll on `cancel != nullptr`, so
/// deadline-free serving takes exactly the pre-token code path.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Asks the operation to stop as soon as it next polls. Idempotent,
  /// callable from any thread at any time.
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Arms an absolute completion deadline. Call before publishing the
  /// token to the solving thread (the serving tier arms it at admission).
  void ArmDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           deadline.time_since_epoch())
                           .count(),
                       std::memory_order_relaxed);
  }

  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }

  bool deadline_expired() const {
    const int64_t ns = deadline_ns_.load(std::memory_order_relaxed);
    return ns != 0 && NowNs() >= ns;
  }

  /// Chains a shared stop flag (bounded-drain shutdown). shared_ptr so a
  /// token embedded in a future that outlives the server stays valid.
  /// Not thread-safe against concurrent polls: call before publication.
  void ChainHardStop(std::shared_ptr<const std::atomic<bool>> stop) {
    hard_stop_ = std::move(stop);
  }

  /// Cheap poll for kernel inner loops: should the operation stop now?
  bool ShouldStop() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (hard_stop_ != nullptr && hard_stop_->load(std::memory_order_relaxed)) {
      return true;
    }
    return deadline_expired();
  }

  /// Status form of ShouldStop() for operation boundaries. Explicit
  /// cancellation and shutdown report kCancelled; an expired deadline
  /// reports kDeadlineExceeded.
  Status CheckNow() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      return Status::Cancelled("query cancelled");
    }
    if (hard_stop_ != nullptr && hard_stop_->load(std::memory_order_relaxed)) {
      return Status::Cancelled("server shutting down");
    }
    if (deadline_expired()) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }

 private:
  static int64_t NowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  std::atomic<bool> cancelled_{false};
  // Steady-clock deadline in ns since clock epoch; 0 = no deadline armed.
  std::atomic<int64_t> deadline_ns_{0};
  std::shared_ptr<const std::atomic<bool>> hard_stop_;
};

}  // namespace ppr

#endif  // PPR_UTIL_CANCELLATION_H_
