#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace ppr {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  // Xoshiro state must not be all-zero; SplitMix64 output on any seed
  // makes that event practically impossible, but guard anyway.
  do {
    for (auto& s : s_) s = sm.Next();
  } while ((s_[0] | s_[1] | s_[2] | s_[3]) == 0);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  PPR_DCHECK(bound > 0);
  // Lemire 2019: unbiased bounded generation without division in the
  // common case.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextGeometric(double p) {
  PPR_DCHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u = NextDouble();
  // Avoid log(0); NextDouble() < 1 so 1-u > 0.
  return static_cast<uint64_t>(std::floor(std::log1p(-u) / std::log1p(-p)));
}

Rng Rng::Split() { return Rng(NextUint64()); }

}  // namespace ppr
