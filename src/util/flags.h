#ifndef PPR_UTIL_FLAGS_H_
#define PPR_UTIL_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace ppr {

/// Minimal "--name=value" / "--switch" command-line parser used by the
/// example binaries. Positional arguments are collected in order;
/// unknown flags are reported as errors so typos do not silently change
/// experiments.
class FlagParser {
 public:
  /// Registers flags before Parse(). The bool overload defines a switch
  /// (present => true); others parse their value.
  void AddString(const std::string& name, std::string* target,
                 const std::string& help);
  void AddDouble(const std::string& name, double* target,
                 const std::string& help);
  void AddUint64(const std::string& name, uint64_t* target,
                 const std::string& help);
  void AddBool(const std::string& name, bool* target,
               const std::string& help);

  /// Parses argv (excluding argv[0]). On success, positional() holds the
  /// non-flag arguments in order.
  Status Parse(int argc, char** argv);

  const std::vector<std::string>& positional() const { return positional_; }

  /// One "  --name  help" line per registered flag.
  std::string Usage() const;

 private:
  enum class Kind { kString, kDouble, kUint64, kBool };
  struct Flag {
    std::string name;
    Kind kind;
    void* target;
    std::string help;
  };

  Status Apply(const Flag& flag, const std::string& value, bool has_value);

  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace ppr

#endif  // PPR_UTIL_FLAGS_H_
