#ifndef PPR_UTIL_MUTEX_H_
#define PPR_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace ppr {

// Capability-annotated wrappers over the std synchronization types —
// the only place raw std::mutex / std::shared_mutex /
// std::condition_variable may appear in src/ (scripts/run_tidy.sh and
// the -Wthread-safety CI job keep it that way). Everything in the
// serving/dynamic tier locks through these so Clang's thread-safety
// analysis can verify the contracts:
//
//   Mutex mu_;
//   std::deque<Item> items_ PPR_GUARDED_BY(mu_);
//
//   void Push(Item item) PPR_EXCLUDES(mu_) {
//     MutexLock lock(mu_);
//     items_.push_back(std::move(item));   // OK: mu_ held
//   }
//
// The wrappers add no state and no behavior beyond the std types; in a
// non-Clang build they compile to exactly the std calls.

class CondVar;
class MutexLock;

/// An exclusive mutex (std::mutex) declared as a thread-safety
/// capability. Prefer the scoped MutexLock over manual Lock/Unlock.
class PPR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PPR_ACQUIRE() { mu_.lock(); }
  void Unlock() PPR_RELEASE() { mu_.unlock(); }
  bool TryLock() PPR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// A reader/writer mutex (std::shared_mutex) declared as a capability —
/// the PprServer epoch barrier's type: queries hold it shared around
/// Solve, ApplyUpdates holds it exclusive.
class PPR_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() PPR_ACQUIRE() { mu_.lock(); }
  void Unlock() PPR_RELEASE() { mu_.unlock(); }
  void LockShared() PPR_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() PPR_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  friend class SharedLock;
  friend class ExclusiveLock;
  std::shared_mutex mu_;
};

/// RAII exclusive hold on a Mutex. Also the handle CondVar waits
/// through (wrapping std::unique_lock keeps std::condition_variable's
/// native wait path), and re-lockable for the worker-pool pattern that
/// releases the lock around chunk execution:
///
///   MutexLock lock(mu_);
///   ...claim work...
///   lock.Unlock();
///   ...run the chunk without the lock...
///   lock.Lock();
class PPR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PPR_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() PPR_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases early; the destructor then does nothing.
  void Unlock() PPR_RELEASE() { lock_.unlock(); }
  /// Re-acquires after an Unlock().
  void Lock() PPR_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// RAII shared (reader) hold on a SharedMutex.
class PPR_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mu) PPR_ACQUIRE_SHARED(mu)
      : lock_(mu.mu_) {}
  ~SharedLock() PPR_RELEASE() {}

  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  std::shared_lock<std::shared_mutex> lock_;
};

/// RAII exclusive (writer) hold on a SharedMutex.
class PPR_SCOPED_CAPABILITY ExclusiveLock {
 public:
  explicit ExclusiveLock(SharedMutex& mu) PPR_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~ExclusiveLock() PPR_RELEASE() {}

  ExclusiveLock(const ExclusiveLock&) = delete;
  ExclusiveLock& operator=(const ExclusiveLock&) = delete;

 private:
  std::unique_lock<std::shared_mutex> lock_;
};

/// Condition variable paired with Mutex/MutexLock.
///
/// Deliberately predicate-free: the thread-safety analysis treats a
/// lambda as a separate function, so a `cv.wait(lock, [&]{ return
/// guarded_; })` predicate reads guarded state in a context where no
/// lock is visibly held and fails the analysis. Write the loop
/// explicitly instead — the guarded reads then sit lexically under the
/// MutexLock:
///
///   MutexLock lock(mu_);
///   while (!done_) cv_.Wait(lock);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases the lock, blocks, re-acquires before return.
  /// As with std::condition_variable, spurious wakeups happen: always
  /// re-check the condition in a loop.
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// As Wait, but returns std::cv_status::timeout after `timeout` at
  /// the latest.
  template <typename Rep, typename Period>
  std::cv_status WaitFor(MutexLock& lock,
                         const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ppr

#endif  // PPR_UTIL_MUTEX_H_
