#ifndef PPR_UTIL_PARALLEL_H_
#define PPR_UTIL_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace ppr {

/// Number of worker threads used by ParallelFor: hardware concurrency by
/// default, overridable with PPR_THREADS (1 disables parallelism).
/// Returns 1 on a thread that is itself a ParallelForThreads worker, so
/// auto-sized nested stages (a solver's walk phase under a BatchSolve
/// worker) degrade to serial instead of oversubscribing; explicit
/// ParallelForThreads counts are unaffected.
unsigned ParallelThreadCount();

/// Runs fn(begin..end) across threads in contiguous chunks:
/// fn(chunk_begin, chunk_end, worker_index). Deterministic work
/// partition (chunk boundaries depend only on the range and thread
/// count), so callers can derive per-chunk RNG seeds and keep results
/// reproducible. Blocks until every chunk finishes.
///
/// `grain` is the minimum number of items worth one thread: ranges
/// shorter than 2*grain run as a single inline call on the caller's
/// thread. The default suits cheap per-item work (walk generation);
/// pass grain=1 for heavy items (whole SSPPR queries).
void ParallelFor(uint64_t begin, uint64_t end,
                 const std::function<void(uint64_t, uint64_t, unsigned)>& fn,
                 uint64_t grain = 2048);

/// As above with an explicit thread count instead of
/// ParallelThreadCount(). The registry solvers use this to honor their
/// threads= option: an explicit count must win over the PPR_THREADS
/// environment override, which only governs the default.
///
/// `threads` fixes the *logical* work partition — chunk boundaries,
/// worker indices (and therefore per-chunk buffers and RNG streams) are
/// exactly those of `threads` workers, so results stay bit-identical to
/// the historical thread-spawning implementation. *Physical* execution
/// is a separate, process-wide resource: chunks run on the shared
/// WorkerPool (ThreadBudget() - 1 threads) plus each calling thread.
/// Concurrent parallel regions — a PprServer answering many threads=N
/// queries at once — therefore share one pool instead of multiplying
/// into N threads per caller; total compute threads are bounded by
/// pool + callers, independent of N (see docs/serving.md, "The thread
/// budget").
void ParallelForThreads(uint64_t begin, uint64_t end, unsigned threads,
                        const std::function<void(uint64_t, uint64_t, unsigned)>&
                            fn,
                        uint64_t grain = 2048);

/// Splits [0, n) into `chunks` contiguous ranges of roughly equal total
/// weight and returns the chunks+1 ascending boundaries (front 0, back
/// n). Used to partition CSR rows by edge count or residues by walk
/// count so skewed degree distributions don't starve all but one
/// worker. Deterministic; some ranges may be empty when the weight is
/// concentrated on few items. `known_total`, when the caller already
/// holds Σ weight(i), skips the totaling pass; 0 computes it.
std::vector<uint64_t> BalancedChunkBounds(
    uint64_t n, unsigned chunks,
    const std::function<uint64_t(uint64_t)>& weight,
    uint64_t known_total = 0);

namespace internal {

/// The PPR_THREADS / hardware-concurrency resolution shared by
/// ParallelThreadCount (re-read per call, worker-flag aside) and
/// ThreadBudget (cached at first use): env value when >= 1, else
/// hardware concurrency, never 0.
unsigned ConfiguredThreadCount();

/// RAII marker: while alive, the current thread reports itself as a
/// parallel worker, so auto-sized nested stages (threads=0) resolve to
/// serial via ParallelThreadCount() == 1. WorkerPool wraps every chunk
/// execution in one; nothing else should need it.
class ScopedParallelWorker {
 public:
  ScopedParallelWorker();
  ~ScopedParallelWorker();
  ScopedParallelWorker(const ScopedParallelWorker&) = delete;
  ScopedParallelWorker& operator=(const ScopedParallelWorker&) = delete;

 private:
  bool previous_;
};

}  // namespace internal

}  // namespace ppr

#endif  // PPR_UTIL_PARALLEL_H_
