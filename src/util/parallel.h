#ifndef PPR_UTIL_PARALLEL_H_
#define PPR_UTIL_PARALLEL_H_

#include <cstdint>
#include <functional>

namespace ppr {

/// Number of worker threads used by ParallelFor: hardware concurrency by
/// default, overridable with PPR_THREADS (1 disables parallelism).
unsigned ParallelThreadCount();

/// Runs fn(begin..end) across threads in contiguous chunks:
/// fn(chunk_begin, chunk_end, worker_index). Deterministic work
/// partition (chunk boundaries depend only on the range and thread
/// count), so callers can derive per-chunk RNG seeds and keep results
/// reproducible. Blocks until every chunk finishes.
///
/// `grain` is the minimum number of items worth one thread: ranges
/// shorter than 2*grain run as a single inline call on the caller's
/// thread. The default suits cheap per-item work (walk generation);
/// pass grain=1 for heavy items (whole SSPPR queries).
void ParallelFor(uint64_t begin, uint64_t end,
                 const std::function<void(uint64_t, uint64_t, unsigned)>& fn,
                 uint64_t grain = 2048);

}  // namespace ppr

#endif  // PPR_UTIL_PARALLEL_H_
