#ifndef PPR_UTIL_D_HEAP_H_
#define PPR_UTIL_D_HEAP_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace ppr {

/// Indexed 4-ary max-heap over keys in [0, universe) with double
/// priorities and O(1) position lookup — the structure behind the
/// max-residue-first Forward Push variant (priority_push.h). A 4-ary
/// layout trades a slightly deeper sift-up for much cheaper sift-down on
/// modern caches.
///
/// Supports the decrease/increase-key pattern push algorithms need:
/// Update() inserts the key if absent, otherwise re-positions it.
class DHeap {
 public:
  explicit DHeap(uint32_t universe)
      : position_(universe, kAbsent) {}

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  bool Contains(uint32_t key) const {
    PPR_DCHECK(key < position_.size());
    return position_[key] != kAbsent;
  }

  double PriorityOf(uint32_t key) const {
    PPR_DCHECK(Contains(key));
    return priority_[position_[key]];
  }

  /// Inserts key or updates its priority, restoring heap order.
  void Update(uint32_t key, double priority) {
    PPR_DCHECK(key < position_.size());
    uint32_t pos = position_[key];
    if (pos == kAbsent) {
      pos = static_cast<uint32_t>(heap_.size());
      heap_.push_back(key);
      priority_.push_back(priority);
      position_[key] = pos;
      SiftUp(pos);
    } else {
      const double old = priority_[pos];
      priority_[pos] = priority;
      if (priority > old) {
        SiftUp(pos);
      } else if (priority < old) {
        SiftDown(pos);
      }
    }
  }

  /// Returns the key with the maximum priority. Precondition: !empty().
  uint32_t Top() const {
    PPR_DCHECK(!empty());
    return heap_[0];
  }

  double TopPriority() const {
    PPR_DCHECK(!empty());
    return priority_[0];
  }

  /// Removes and returns the maximum-priority key.
  uint32_t PopTop() {
    PPR_DCHECK(!empty());
    const uint32_t top = heap_[0];
    RemoveAt(0);
    return top;
  }

  /// Removes a key if present; no-op otherwise.
  void Remove(uint32_t key) {
    PPR_DCHECK(key < position_.size());
    const uint32_t pos = position_[key];
    if (pos != kAbsent) RemoveAt(pos);
  }

 private:
  static constexpr uint32_t kAbsent = ~0u;
  static constexpr uint32_t kArity = 4;

  void RemoveAt(uint32_t pos) {
    const uint32_t last = static_cast<uint32_t>(heap_.size()) - 1;
    position_[heap_[pos]] = kAbsent;
    if (pos != last) {
      heap_[pos] = heap_[last];
      priority_[pos] = priority_[last];
      position_[heap_[pos]] = pos;
    }
    heap_.pop_back();
    priority_.pop_back();
    if (pos < heap_.size()) {
      SiftUp(pos);
      SiftDown(pos);
    }
  }

  void Swap(uint32_t a, uint32_t b) {
    std::swap(heap_[a], heap_[b]);
    std::swap(priority_[a], priority_[b]);
    position_[heap_[a]] = a;
    position_[heap_[b]] = b;
  }

  void SiftUp(uint32_t pos) {
    while (pos > 0) {
      const uint32_t parent = (pos - 1) / kArity;
      if (priority_[parent] >= priority_[pos]) break;
      Swap(parent, pos);
      pos = parent;
    }
  }

  void SiftDown(uint32_t pos) {
    for (;;) {
      const uint64_t first_child = static_cast<uint64_t>(pos) * kArity + 1;
      if (first_child >= heap_.size()) break;
      uint32_t best = pos;
      const uint64_t end =
          std::min<uint64_t>(first_child + kArity, heap_.size());
      for (uint64_t c = first_child; c < end; ++c) {
        if (priority_[c] > priority_[best]) best = static_cast<uint32_t>(c);
      }
      if (best == pos) break;
      Swap(pos, best);
      pos = best;
    }
  }

  std::vector<uint32_t> heap_;      // position -> key
  std::vector<double> priority_;    // position -> priority
  std::vector<uint32_t> position_;  // key -> position or kAbsent
};

}  // namespace ppr

#endif  // PPR_UTIL_D_HEAP_H_
