#ifndef PPR_API_CONTEXT_H_
#define PPR_API_CONTEXT_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "api/query.h"
#include "core/trace.h"
#include "core/workspace.h"
#include "graph/graph.h"
#include "util/cancellation.h"
#include "util/fifo_queue.h"
#include "util/rng.h"

namespace ppr {

/// Per-thread reusable query state: the (reserve, residue) workspace, a
/// dense score scratch, the scratch FIFO for push loops, and the RNG.
///
/// The point of the context is that a *repeated* query pays for the work
/// it touches, not for the graph size: the first query on a given graph
/// performs one full O(n) initialization, and every later Acquire*()
/// call zeroes only the entries the previous solve left nonzero (the
/// support recorded by the matching Export*/Release call). The
/// full_assigns()/sparse_resets() counters make this contract testable.
///
/// A context is not thread-safe; batch drivers create one per worker.
/// One context can serve many solvers and many graphs — switching graph
/// size simply costs one fresh full initialization.
class SolverContext {
 public:
  explicit SolverContext(uint64_t seed = kDefaultSeed);

  static constexpr uint64_t kDefaultSeed = 0x5eed5eed5eedULL;

  Rng& rng() { return rng_; }
  /// Restores the RNG to a known state. Replaying the same seed before
  /// each query makes randomized solvers reproducible regardless of how
  /// many queries the context served before.
  void Reseed(uint64_t seed) { rng_ = Rng(seed); }

  /// Optional convergence trace recorded by solvers whose capabilities
  /// report supports_trace. The pointer must stay valid for the duration
  /// of the Solve() calls; set nullptr to disable.
  void set_trace(ConvergenceTrace* trace) { trace_ = trace; }
  ConvergenceTrace* trace() const { return trace_; }

  /// Optional cooperative cancellation token, polled by the long-running
  /// kernel phases during Solve() (see util/cancellation.h). The token
  /// must stay valid for the duration of the Solve() calls; set nullptr
  /// to disable — the default, and the bit-identical fast path.
  void set_cancel_token(const CancelToken* token) { cancel_ = token; }
  const CancelToken* cancel_token() const { return cancel_; }

  // ---- workspace protocol (called by Solver adapters) ----------------

  /// Returns the (reserve, residue) workspace in the canonical start
  /// state (reserve ≡ 0, residue = e_source) at size n. Sparse-resets
  /// when the previous user recorded its support; falls back to a full
  /// assign otherwise (first use, size change, or a solve that ended
  /// without Export/Release).
  PprEstimate* AcquireEstimate(NodeId n, NodeId source);

  /// Returns the dense score scratch, all-zero at size n. Same reset
  /// discipline as AcquireEstimate.
  std::vector<double>* AcquireScores(NodeId n);

  /// Returns the scratch FIFO reconfigured for n nodes (reallocates only
  /// when n changes).
  FifoQueue* AcquireQueue(NodeId n);

  /// Returns `count` all-zero dense buffers of size n for the parallel
  /// kernels' per-thread reductions (threads= option). The kernels
  /// return them zeroed (their merge passes re-zero what the scatter
  /// touched), so a warm context pays the O(n·count) initialization only
  /// on first use or shape change.
  ThreadDenseBuffers* AcquireThreadBuffers(unsigned count, NodeId n);

  /// Returns an all-zero length-`size` buffer backing the fused batch
  /// kernels' flat n·B block matrices (slot 0: reserve, 1: residue,
  /// 2: sweep double-buffer). No sparse-reset discipline applies — a
  /// block's support is dense by design, so every call pays one
  /// O(size) assign, amortized O(n) per fused query. The buffers
  /// persist on the context, so a warm context reallocates only when
  /// the block shape grows.
  std::vector<double>* AcquireBlockScratch(size_t slot, size_t size);

  /// Uninitialized-content scratch for the order= layouts' result remap:
  /// Solver::Solve gathers into it and swaps it with the result vector,
  /// so a warm context performs no per-query allocation for the remap.
  std::vector<double>* RemapScratch() { return &remap_scratch_; }

  /// Copies the estimate workspace into result->scores (and, when
  /// `with_residues`, result->residues), recording the workspace support
  /// so the next AcquireEstimate can sparse-reset.
  void ExportEstimate(bool with_residues, PprResult* result);

  /// Copies the score scratch into result->scores, recording support.
  void ExportScores(PprResult* result);

  /// Records the estimate workspace's support without exporting it —
  /// for solvers that use the estimate as an intermediate (e.g. the
  /// push phase of SpeedPPR) and export scores instead.
  void ReleaseEstimate();

  /// Drops the workspace-reuse state: the next Acquire* performs a full
  /// O(n) assign instead of a sparse reset. ContextPool invalidates warm
  /// contexts with this when the served graph changes epoch
  /// (PprServer::ApplyUpdates) — conservative by design: nothing a
  /// context caches is epoch-dependent today, but the invalidation
  /// keeps that a local fact instead of a distributed assumption.
  void InvalidateWorkspace() {
    estimate_clean_ = false;
    scores_clean_ = false;
  }

  /// ContextPool bookkeeping: the pool epoch this context last saw,
  /// stored here so checkout stays O(1). Not meaningful outside a pool.
  uint64_t pool_epoch() const { return pool_epoch_; }
  void set_pool_epoch(uint64_t epoch) { pool_epoch_ = epoch; }

  // ---- instrumentation ----------------------------------------------

  /// Number of full O(n) workspace initializations performed. Stays
  /// constant across repeated queries on one graph — the unit tests
  /// assert exactly this.
  uint64_t full_assigns() const { return full_assigns_; }
  /// Number of sparse (support-only) resets performed.
  uint64_t sparse_resets() const { return sparse_resets_; }

 private:
  Rng rng_;
  ConvergenceTrace* trace_ = nullptr;
  const CancelToken* cancel_ = nullptr;

  PprEstimate estimate_;
  std::vector<NodeId> estimate_support_;
  bool estimate_clean_ = false;  // support list describes all nonzeros

  std::vector<double> scores_;
  std::vector<NodeId> scores_support_;
  bool scores_clean_ = false;

  FifoQueue queue_{0};
  ThreadDenseBuffers thread_buffers_;
  std::array<std::vector<double>, 3> block_scratch_;
  std::vector<double> remap_scratch_;

  uint64_t full_assigns_ = 0;
  uint64_t sparse_resets_ = 0;
  uint64_t pool_epoch_ = 0;
};

}  // namespace ppr

#endif  // PPR_API_CONTEXT_H_
