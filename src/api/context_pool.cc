#include "api/context_pool.h"

#include <utility>

#include "util/logging.h"
#include "util/rng.h"

namespace ppr {

ContextPool::ContextPool(size_t capacity, uint64_t seed) {
  PPR_CHECK(capacity >= 1);
  contexts_.reserve(capacity);
  free_.reserve(capacity);
  for (size_t i = 0; i < capacity; ++i) {
    contexts_.push_back(std::make_unique<SolverContext>(
        SplitMix64(seed ^ (i * 0x9e3779b97f4a7c15ULL)).Next()));
    free_.push_back(contexts_.back().get());
  }
}

ContextPool::Lease::Lease(Lease&& other) noexcept
    : pool_(other.pool_), context_(other.context_) {
  other.pool_ = nullptr;
  other.context_ = nullptr;
}

ContextPool::Lease& ContextPool::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    context_ = other.context_;
    other.pool_ = nullptr;
    other.context_ = nullptr;
  }
  return *this;
}

void ContextPool::Lease::Release() {
  if (context_ != nullptr) {
    pool_->Return(context_);
    pool_ = nullptr;
    context_ = nullptr;
  }
}

void ContextPool::RefreshForEpoch(SolverContext* context) {
  if (context->pool_epoch() != epoch_) {
    context->InvalidateWorkspace();
    context->set_pool_epoch(epoch_);
  }
}

ContextPool::Lease ContextPool::Acquire() {
  MutexLock lock(mu_);
  while (free_.empty()) free_cv_.Wait(lock);
  SolverContext* context = free_.back();
  free_.pop_back();
  RefreshForEpoch(context);
  return Lease(this, context);
}

std::optional<ContextPool::Lease> ContextPool::TryAcquire() {
  MutexLock lock(mu_);
  if (free_.empty()) return std::nullopt;
  SolverContext* context = free_.back();
  free_.pop_back();
  RefreshForEpoch(context);
  return Lease(this, context);
}

void ContextPool::AdvanceEpoch() {
  MutexLock lock(mu_);
  epoch_++;
}

uint64_t ContextPool::epoch() const {
  MutexLock lock(mu_);
  return epoch_;
}

void ContextPool::Return(SolverContext* context) {
  {
    MutexLock lock(mu_);
    free_.push_back(context);
  }
  free_cv_.NotifyOne();
}

size_t ContextPool::available() const {
  MutexLock lock(mu_);
  return free_.size();
}

uint64_t ContextPool::TotalFullAssigns() const {
  uint64_t total = 0;
  for (const auto& context : contexts_) total += context->full_assigns();
  return total;
}

uint64_t ContextPool::TotalSparseResets() const {
  uint64_t total = 0;
  for (const auto& context : contexts_) total += context->sparse_resets();
  return total;
}

}  // namespace ppr
