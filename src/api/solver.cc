#include "api/solver.h"

#include <limits>
#include <utility>

#include "eval/metrics.h"
#include "graph/permute.h"
#include "util/fault_injection.h"
#include "util/parallel.h"

namespace ppr {

const char* SolverFamilyName(SolverFamily family) {
  switch (family) {
    case SolverFamily::kHighPrecision:
      return "high-precision";
    case SolverFamily::kApproximate:
      return "approximate";
    case SolverFamily::kSinglePair:
      return "single-pair";
    case SolverFamily::kGlobal:
      return "global";
  }
  return "unknown";
}

Result<GraphOrder> ParseGraphOrder(std::string_view text) {
  if (text == "none") return GraphOrder::kNone;
  if (text == "degree") return GraphOrder::kDegree;
  if (text == "bfs") return GraphOrder::kBfs;
  return Status::InvalidArgument("option 'order' expects none, degree or "
                                 "bfs; got '" +
                                 std::string(text) + "'");
}

namespace {

NodeId MaxOutDegreeNode(const Graph& graph) {
  NodeId best = 0;
  for (NodeId v = 1; v < graph.num_nodes(); ++v) {
    if (graph.OutDegree(v) > graph.OutDegree(best)) best = v;
  }
  return best;
}

}  // namespace

Status Solver::Prepare(const Graph& graph) {
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("cannot prepare a solver on an empty graph");
  }
  const SolverCapabilities caps = capabilities();
  if (caps.needs_in_adjacency && !graph.has_in_adjacency()) {
    return Status::FailedPrecondition(
        std::string(name()) +
        " needs the in-adjacency; call Graph::BuildInAdjacency() first");
  }
  if (caps.needs_dead_end_free && graph.CountDeadEnds() > 0) {
    return Status::FailedPrecondition(
        std::string(name()) + " requires a graph without dead ends");
  }
  perm_.clear();
  permuted_.reset();
  if (order_ != GraphOrder::kNone) {
    perm_ = order_ == GraphOrder::kDegree
                ? DegreeDescendingOrder(graph)
                : BfsOrder(graph, MaxOutDegreeNode(graph));
    permuted_ = std::make_unique<Graph>(PermuteGraph(graph, perm_));
    // Relabeling preserves degrees, so the precondition checks above
    // transfer; only the transpose must be rebuilt for the copy.
    if (caps.needs_in_adjacency) permuted_->BuildInAdjacency();
    graph_ = permuted_.get();
  } else {
    graph_ = &graph;
  }
  return Status::OK();
}

Status Solver::Solve(const PprQuery& query, SolverContext& context,
                     PprResult* result) {
  if (graph_ == nullptr) {
    return Status::FailedPrecondition("Solve() before a successful Prepare()");
  }
  // Range checks use the evolving node count for dynamic solvers, so a
  // node added by ApplyUpdates is queryable without re-Prepare.
  const NodeId current_n = CurrentNumNodes();
  if (query.source >= current_n) {
    return Status::InvalidArgument("query source out of range");
  }
  if (query.target != kNoTarget && query.target >= current_n) {
    return Status::InvalidArgument("query target out of range");
  }
  // Boundary cancellation checks bracket DoSolve: the pre-check stops a
  // query that is already cancelled/expired before any compute, and the
  // post-check guarantees an OK result was finished in time even for
  // solvers with no interior poll points.
  const CancelToken* cancel = context.cancel_token();
  if (cancel != nullptr) PPR_RETURN_IF_ERROR(cancel->CheckNow());
  PPR_FAULT_STATUS("solver.solve");
  result->residues.clear();
  result->top_nodes.clear();
  result->stats = SolveStats{};
  result->epoch = 0;  // dynamic solvers stamp their epoch in DoSolve
  result->degraded = false;
  result->shard = kShardNone;  // the serving tier re-stamps on success
  if (perm_.empty()) {
    PPR_RETURN_IF_ERROR(DoSolve(query, context, result));
  } else {
    PprQuery mapped = query;
    mapped.source = LayoutOf(query.source);
    if (query.target != kNoTarget) mapped.target = LayoutOf(query.target);
    PPR_RETURN_IF_ERROR(DoSolve(mapped, context, result));
    // Back to original ids: entry v lives at layout slot LayoutOf(v)
    // (perm_[v], identity for nodes added after Prepare). The
    // gather-and-swap through the context scratch keeps warm queries
    // allocation-free.
    const NodeId n = static_cast<NodeId>(result->scores.size());
    std::vector<double>& scratch = *context.RemapScratch();
    scratch.resize(n);
    for (NodeId v = 0; v < n; ++v) scratch[v] = result->scores[LayoutOf(v)];
    result->scores.swap(scratch);
    if (!result->residues.empty()) {
      for (NodeId v = 0; v < n; ++v) {
        scratch[v] = result->residues[LayoutOf(v)];
      }
      result->residues.swap(scratch);
    }
  }
  if (cancel != nullptr) PPR_RETURN_IF_ERROR(cancel->CheckNow());
  result->solver = name();
  result->l1_bound = AdvertisedL1Bound(query);
  if (query.top_k > 0) {
    result->top_nodes = TopK(result->scores, query.top_k);
  }
  return Status::OK();
}

double Solver::AdvertisedL1Bound(const PprQuery& /*query*/) const {
  return std::numeric_limits<double>::infinity();
}

unsigned Solver::ResolvedWorkers() const {
  return threads_ == 0 ? ParallelThreadCount() : threads_;
}

}  // namespace ppr
