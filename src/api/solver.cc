#include "api/solver.h"

#include <limits>

#include "eval/metrics.h"

namespace ppr {

const char* SolverFamilyName(SolverFamily family) {
  switch (family) {
    case SolverFamily::kHighPrecision:
      return "high-precision";
    case SolverFamily::kApproximate:
      return "approximate";
    case SolverFamily::kSinglePair:
      return "single-pair";
    case SolverFamily::kGlobal:
      return "global";
  }
  return "unknown";
}

Status Solver::Prepare(const Graph& graph) {
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("cannot prepare a solver on an empty graph");
  }
  const SolverCapabilities caps = capabilities();
  if (caps.needs_in_adjacency && !graph.has_in_adjacency()) {
    return Status::FailedPrecondition(
        std::string(name()) +
        " needs the in-adjacency; call Graph::BuildInAdjacency() first");
  }
  if (caps.needs_dead_end_free && graph.CountDeadEnds() > 0) {
    return Status::FailedPrecondition(
        std::string(name()) + " requires a graph without dead ends");
  }
  graph_ = &graph;
  return Status::OK();
}

Status Solver::Solve(const PprQuery& query, SolverContext& context,
                     PprResult* result) {
  if (graph_ == nullptr) {
    return Status::FailedPrecondition("Solve() before a successful Prepare()");
  }
  if (query.source >= graph_->num_nodes()) {
    return Status::InvalidArgument("query source out of range");
  }
  if (query.target != kNoTarget && query.target >= graph_->num_nodes()) {
    return Status::InvalidArgument("query target out of range");
  }
  result->residues.clear();
  result->top_nodes.clear();
  result->stats = SolveStats{};
  PPR_RETURN_IF_ERROR(DoSolve(query, context, result));
  result->solver = name();
  result->l1_bound = AdvertisedL1Bound(query);
  if (query.top_k > 0) {
    result->top_nodes = TopK(result->scores, query.top_k);
  }
  return Status::OK();
}

double Solver::AdvertisedL1Bound(const PprQuery& /*query*/) const {
  return std::numeric_limits<double>::infinity();
}

}  // namespace ppr
