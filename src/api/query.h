#ifndef PPR_API_QUERY_H_
#define PPR_API_QUERY_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/workspace.h"
#include "graph/graph.h"

namespace ppr {

/// Sentinel for PprQuery::target: "this is a whole-vector query".
inline constexpr NodeId kNoTarget = ~NodeId{0};

/// Sentinels for PprResult::shard.
inline constexpr int32_t kShardNone = -1;    ///< not served by a sharded tier
inline constexpr int32_t kShardMerged = -2;  ///< merged from a shard fan-out

/// One SSPPR query, understood by every solver behind the unified API.
///
/// Numeric fields use 0 (or kNoTarget) as "unset": an unset field falls
/// back to the solver's configured default — which is either the
/// built-in default or an override given in the registry option string
/// (see SolverRegistry). This lets one PprQuery be replayed verbatim
/// against solvers of different families: a high-precision solver reads
/// `lambda`, an approximate solver reads `epsilon`/`mu`, a single-pair
/// solver additionally reads `target`; fields a solver does not consume
/// are ignored.
struct PprQuery {
  /// Query source node s.
  NodeId source = 0;

  /// Single-pair target t (π(s, t)); kNoTarget asks single-pair solvers
  /// to materialize the whole vector by querying every target — O(n)
  /// queries, intended for small graphs and conformance tests.
  NodeId target = kNoTarget;

  /// Teleport probability; 0 = solver default (0.2 unless overridden).
  double alpha = 0.0;

  /// High-precision families: ℓ1-error target λ; 0 = solver default.
  double lambda = 0.0;

  /// Approximate families: relative error ε; 0 = solver default.
  double epsilon = 0.0;

  /// Approximate families: PPR magnitude threshold μ; 0 = 1/n.
  double mu = 0.0;

  /// When > 0, PprResult::top_nodes receives the k highest-scoring node
  /// ids in decreasing score order.
  size_t top_k = 0;

  /// Request the residue vector in PprResult::residues. Honored only by
  /// solvers whose capabilities().exposes_residues is true.
  bool want_residues = false;

  /// Relative completion budget, measured from admission (Submit /
  /// SolveBatch). Zero = no deadline. The serving tier arms a
  /// cancellation token with it: a query whose deadline expires while
  /// still queued is shed (never solved, counted in stats().shed), and
  /// one that expires mid-solve is stopped at the solver's next
  /// cooperative poll and fails with kDeadlineExceeded. Ignored by
  /// direct Solver::Solve calls unless the caller arms a token itself.
  std::chrono::nanoseconds deadline{0};
};

/// The unified result every solver produces.
struct PprResult {
  /// Dense estimate π̂(s, ·), size n. For a single-pair query (target !=
  /// kNoTarget) only scores[target] is populated; everything else is 0.
  std::vector<double> scores;

  /// Residue vector r(s, ·) — the exact ℓ1 error certificate of push-
  /// style solvers. Filled iff the query asked for residues and the
  /// solver exposes them; empty otherwise.
  std::vector<double> residues;

  /// Top-k node ids by score, decreasing; filled iff query.top_k > 0.
  std::vector<NodeId> top_nodes;

  /// Work counters (pushes, walks, seconds, final rsum).
  SolveStats stats;

  /// The bound the solver advertises for this query (see
  /// Solver::AdvertisedL1Bound); +inf when no bound is claimed.
  double l1_bound = 0.0;

  /// Graph epoch this result answered at. Dynamic solvers (capability
  /// supports_updates) stamp the epoch their evolving graph was at when
  /// the query ran — the consistency token of updates-under-load
  /// serving (see docs/serving.md). Static solvers leave it 0.
  uint64_t epoch = 0;

  /// Name of the solver that produced this result.
  std::string solver;

  /// True when an overloaded server answered with its DegradedPolicy
  /// fallback spec (relaxed quality for bounded latency) instead of the
  /// solver the query would normally route to. Always false outside the
  /// serving tier. See docs/serving.md, "Load shedding & degraded mode".
  bool degraded = false;

  /// Which shard of a sharded serving tier answered: the owning shard's
  /// index for an owner-routed query, kShardMerged (-2) for a result the
  /// router merged from a cross-shard fan-out, and kShardNone (-1) —
  /// the default — everywhere outside the sharded tier. See
  /// docs/serving.md, "Sharded serving".
  int32_t shard = -1;

  bool has_residues() const { return !residues.empty(); }
};

}  // namespace ppr

#endif  // PPR_API_QUERY_H_
