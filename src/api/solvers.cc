// The built-in Solver adapters: every SSPPR algorithm in src/core/,
// src/approx/ and src/bepi/ wrapped behind the unified api/ interface.
// The original free functions stay as the thin internals these adapters
// compose; what the adapters add is
//
//  * option-string configuration (SolverRegistry::Create),
//  * per-query parameter resolution (PprQuery overrides > option
//    overrides > built-in defaults),
//  * SolverContext workspace reuse: the push/walk compositions run
//    against the context's sparsely-reset vectors and scratch queue, so
//    a warm context performs no O(n) assign on repeated queries.

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>

#include "api/batch_solver.h"
#include "api/dynamic_solver.h"
#include "api/registry.h"
#include "api/solver.h"
#include "core/dynamic_ppr.h"
#include "core/multi_source.h"
#include "graph/permute.h"
#include "approx/bippr.h"
#include "approx/fora.h"
#include "approx/hubppr.h"
#include "approx/monte_carlo.h"
#include "approx/resacc.h"
#include "approx/residue_walks.h"
#include "approx/speedppr.h"
#include "approx/walk_index.h"
#include "bepi/bepi.h"
#include "core/forward_push.h"
#include "core/pagerank.h"
#include "core/power_iteration.h"
#include "core/power_push.h"
#include "core/priority_push.h"
#include "util/mutex.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace ppr {
namespace {

/// The cross-cutting options every registered solver accepts. threads=
/// selects the worker count for the solver's parallel stages (0 = defer
/// to PPR_THREADS/hardware for the thread-count-invariant stages, serial
/// for the order-sensitive dense kernels); order= selects the Prepare-
/// time CSR layout. Factories Read() before Finish() and Apply() after
/// construction.
struct CommonOptions {
  uint64_t threads = 0;
  std::string order_text = "none";

  void Read(OptionReader& reader) {
    reader.Uint64("threads", &threads).String("order", &order_text);
  }

  Status Apply(Solver* solver) const {
    if (threads > 256) {
      return Status::InvalidArgument(
          "option 'threads' expects at most 256 worker threads");
    }
    auto order = ParseGraphOrder(order_text);
    if (!order.ok()) return order.status();
    solver->set_threads(static_cast<unsigned>(threads));
    solver->set_graph_order(order.value());
    return Status::OK();
  }
};

/// Shared per-solver configuration defaults and query resolution.
struct ParamDefaults {
  double alpha = 0.2;
  double lambda = 1e-8;
  double epsilon = 0.5;
  double mu = 0.0;  // 0 → 1/n

  double Alpha(const PprQuery& q) const { return q.alpha > 0 ? q.alpha : alpha; }
  double Lambda(const PprQuery& q) const {
    return q.lambda > 0 ? q.lambda : lambda;
  }
  double Epsilon(const PprQuery& q) const {
    return q.epsilon > 0 ? q.epsilon : epsilon;
  }
  double Mu(const PprQuery& q, NodeId n) const {
    const double m = q.mu > 0 ? q.mu : mu;
    return m > 0 ? m : 1.0 / static_cast<double>(n);
  }
};

/// Shared body of the fused DoSolveMany paths: builds the flat n·B
/// block matrices on the context's block scratch, runs the
/// multi-source kernel, and leaves per-source scores / residues /
/// stats in `results`. `residue_store` non-null forces residue-column
/// export into it (FORA's walk phase consumes residues even when the
/// caller did not ask for them); otherwise residue columns export into
/// results[b].residues only for queries with want_residues.
void RunFusedBlock(const Graph& graph, SolverContext& context,
                   std::span<const PprQuery> queries,
                   std::span<const CancelToken* const> cancels,
                   MultiSourceOptions options,
                   std::span<const NodeId> sources,
                   std::span<const double> alpha,
                   std::span<const double> threshold,
                   std::span<const size_t> top_k,
                   std::span<PprResult> results,
                   std::vector<std::vector<double>>* residue_store) {
  const NodeId n = graph.num_nodes();
  const size_t B = queries.size();
  const size_t words = static_cast<size_t>(n) * B;
  const unsigned threads = options.threads <= 1 ? 1 : options.threads;
  std::vector<double>* reserve = context.AcquireBlockScratch(0, words);
  std::vector<double>* residue = context.AcquireBlockScratch(1, words);
  // The sweep double-buffer only exists on the serial path; the
  // parallel path rebuilds `residue` in place through ScatterMergeStep.
  std::vector<double>* next =
      context.AcquireBlockScratch(2, threads > 1 ? 0 : words);
  std::vector<double*> score_ptrs(B);
  std::vector<double*> residue_ptrs(B, nullptr);
  std::vector<SolveStats> stats(B);
  for (size_t b = 0; b < B; ++b) {
    results[b].scores.assign(n, 0.0);
    score_ptrs[b] = results[b].scores.data();
    if (residue_store != nullptr) {
      (*residue_store)[b].assign(n, 0.0);
      residue_ptrs[b] = (*residue_store)[b].data();
    } else if (queries[b].want_residues) {
      results[b].residues.assign(n, 0.0);
      residue_ptrs[b] = results[b].residues.data();
    }
  }
  options.block_cancel = context.cancel_token();
  MultiSourceOutputs out;
  out.scores = score_ptrs;
  out.residues = residue_ptrs;
  out.stats = stats;
  MultiSourceFusedSolve(graph, sources, alpha, threshold, top_k, cancels,
                        options, *reserve, *residue, *next,
                        threads > 1
                            ? context.AcquireThreadBuffers(
                                  threads, static_cast<NodeId>(words))
                            : nullptr,
                        out);
  for (size_t b = 0; b < B; ++b) results[b].stats = stats[b];
}

// --------------------------------------------------------------------
// High-precision push family
// --------------------------------------------------------------------

/// FIFO / priority Forward Push (Algorithm 2 and the max-benefit
/// ablation variant share everything but the push discipline).
///
/// batch= > 0 enables the fused tier and switches the spec — serial
/// B=1 solves included — onto the multi-source kernel's deterministic
/// node-ordered scan discipline (same pushes and the same
/// (m + dead_ends)·rmax certificate as the FIFO order, but a sweep
/// order independent of batch width, so fused blocks match per-query
/// solves of the same spec bit-for-bit).
class ForwardPushSolver : public BatchSolver {
 public:
  ForwardPushSolver(bool priority, ParamDefaults params, double rmax,
                    size_t batch, bool topk_early)
      : priority_(priority),
        params_(params),
        rmax_(rmax),
        topk_early_(topk_early) {
    set_max_fused(batch);
  }

  std::string_view name() const override {
    return priority_ ? "prioritypush" : "fwdpush";
  }

  SolverCapabilities capabilities() const override {
    SolverCapabilities caps;
    caps.family = SolverFamily::kHighPrecision;
    caps.exposes_residues = true;
    // The priority variant allocates its DHeap per solve, and the
    // fused tier's dense block scratch is a full assign per call, so
    // only the classic FIFO variant honors the warm-context
    // no-full-assign contract.
    caps.reuses_workspace = !priority_ && max_fused() == 0;
    caps.supports_trace = true;
    return caps;
  }

  Status Prepare(const Graph& graph) override {
    PPR_RETURN_IF_ERROR(Solver::Prepare(graph));
    // graph_ rather than the argument: a configured order= layout means
    // the solver runs on its relabeled copy from here on.
    dead_ends_ = graph_->CountDeadEnds();
    return Status::OK();
  }

  double AdvertisedL1Bound(const PprQuery& query) const override {
    // A top-k-early-retired source stops with rsum above the
    // certificate: the top-k *set* is guaranteed, the ℓ1 error is not.
    if (topk_early_ && query.top_k > 0) {
      return std::numeric_limits<double>::infinity();
    }
    // Termination: every v inactive w.r.t. rmax, so
    // rsum ≤ Σ_v deff(v)·rmax = (m + #dead-ends)·rmax (Equation (7)).
    const double effective_edges =
        static_cast<double>(graph_->num_edges() + dead_ends_);
    return effective_edges * ResolvedRmax(query);
  }

 protected:
  Status DoSolve(const PprQuery& query, SolverContext& context,
                 PprResult* result) override {
    if (max_fused() > 0) {
      // The batch= spec answers every query — fused or not — through
      // the scan kernel, keeping B=1 bit-identical to fused blocks.
      const CancelToken* token = context.cancel_token();
      std::array<Status, 1> statuses = {Status::OK()};
      PPR_RETURN_IF_ERROR(DoSolveMany({&query, 1}, {}, {&token, 1}, context,
                                      {result, 1}, statuses));
      return statuses[0];
    }
    const NodeId n = graph_->num_nodes();
    PprEstimate* estimate = context.AcquireEstimate(n, query.source);
    ForwardPushOptions options;
    options.alpha = params_.Alpha(query);
    options.rmax = ResolvedRmax(query);
    options.assume_initialized = true;
    options.cancel = context.cancel_token();
    if (priority_) {
      result->stats = PriorityForwardPush(*graph_, query.source, options,
                                          estimate, context.trace());
    } else {
      result->stats =
          FifoForwardPush(*graph_, query.source, options, estimate,
                          context.trace(), context.AcquireQueue(n));
    }
    context.ExportEstimate(query.want_residues, result);
    return Status::OK();
  }

  Status DoSolveMany(std::span<const PprQuery> queries,
                     std::span<const uint64_t> /*seeds*/,
                     std::span<const CancelToken* const> cancels,
                     SolverContext& context, std::span<PprResult> results,
                     std::span<Status> /*statuses*/) override {
    const size_t B = queries.size();
    std::vector<NodeId> sources(B);
    std::vector<double> alpha(B);
    std::vector<double> threshold(B);
    std::vector<size_t> top_k(B, 0);
    for (size_t b = 0; b < B; ++b) {
      sources[b] = queries[b].source;
      alpha[b] = params_.Alpha(queries[b]);
      threshold[b] = ResolvedRmax(queries[b]);
      if (topk_early_) top_k[b] = queries[b].top_k;
    }
    MultiSourceOptions options;
    options.push_mode = true;
    options.topk_early = topk_early_;
    options.threads = threads();
    RunFusedBlock(*graph_, context, queries, cancels, options, sources, alpha,
                  threshold, top_k, results, nullptr);
    return Status::OK();
  }

 private:
  double ResolvedRmax(const PprQuery& query) const {
    if (rmax_ > 0) return rmax_;
    return params_.Lambda(query) / static_cast<double>(graph_->num_edges());
  }

  const bool priority_;
  const ParamDefaults params_;
  const double rmax_;  // 0 → derive lambda/m per query
  const bool topk_early_;
  NodeId dead_ends_ = 0;
};

/// PowerPush (Algorithm 3), the paper's primary contribution.
class PowerPushSolver : public Solver {
 public:
  /// epochs == 0 disables the dynamic-threshold epochs (single epoch at
  /// lambda); queue_phase=false skips the local FIFO phase — the two
  /// ablation axes of §5, exposed so the ablation benches run through
  /// the registry instead of core internals.
  PowerPushSolver(ParamDefaults params, double lambda_unset, int epochs,
                  double scan_threshold, bool queue_phase)
      : params_(params),
        lambda_set_(lambda_unset > 0),
        epochs_(epochs),
        scan_threshold_(scan_threshold),
        queue_phase_(queue_phase) {
    if (lambda_set_) params_.lambda = lambda_unset;
  }

  std::string_view name() const override { return "powerpush"; }

  SolverCapabilities capabilities() const override {
    SolverCapabilities caps;
    caps.family = SolverFamily::kHighPrecision;
    caps.exposes_residues = true;
    caps.reuses_workspace = true;
    caps.supports_trace = true;
    return caps;
  }

  Status Prepare(const Graph& graph) override {
    PPR_RETURN_IF_ERROR(Solver::Prepare(graph));
    dead_ends_ = graph_->CountDeadEnds();
    return Status::OK();
  }

  double AdvertisedL1Bound(const PprQuery& query) const override {
    // λ on dead-end-free graphs; λ·(1 + k/m) with k dead ends (see
    // power_push.h).
    const double m = static_cast<double>(graph_->num_edges());
    return Lambda(query) * (1.0 + static_cast<double>(dead_ends_) / m);
  }

 protected:
  Status DoSolve(const PprQuery& query, SolverContext& context,
                 PprResult* result) override {
    const NodeId n = graph_->num_nodes();
    PprEstimate* estimate = context.AcquireEstimate(n, query.source);
    PowerPushOptions options;
    options.alpha = params_.Alpha(query);
    options.lambda = Lambda(query);
    options.use_epochs = epochs_ > 0;
    options.epoch_num = epochs_ > 0 ? epochs_ : 1;
    options.use_queue_phase = queue_phase_;
    options.scan_threshold_fraction = scan_threshold_;
    options.assume_initialized = true;
    options.threads = threads();
    options.cancel = context.cancel_token();
    result->stats = PowerPush(*graph_, query.source, options, estimate,
                              context.trace(), context.AcquireQueue(n),
                              threads() > 1
                                  ? context.AcquireThreadBuffers(threads(), n)
                                  : nullptr);
    context.ExportEstimate(query.want_residues, result);
    return Status::OK();
  }

 private:
  double Lambda(const PprQuery& query) const {
    if (query.lambda > 0) return query.lambda;
    return lambda_set_ ? params_.lambda : PaperLambda(*graph_);
  }

  ParamDefaults params_;
  const bool lambda_set_;  // false → paper default min(1e-8, 1/m)
  const int epochs_;
  const double scan_threshold_;
  const bool queue_phase_;
  NodeId dead_ends_ = 0;
};

/// Vanilla Power Iteration (§3.1).
///
/// batch= > 0 routes every solve — fused blocks and B=1 alike —
/// through the multi-source kernel, whose power mode replicates this
/// solver's per-column operation sequence exactly: fused results match
/// classic serial powitr bit-for-bit at threads<=1 and to the usual
/// ~1e-12 scatter/merge reassociation at threads>1.
class PowerIterationSolver : public BatchSolver {
 public:
  PowerIterationSolver(ParamDefaults params, size_t batch, bool topk_early)
      : params_(params), topk_early_(topk_early) {
    set_max_fused(batch);
  }

  std::string_view name() const override { return "powitr"; }

  SolverCapabilities capabilities() const override {
    SolverCapabilities caps;
    caps.family = SolverFamily::kHighPrecision;
    caps.exposes_residues = true;
    // PowerIteration allocates its γ_{j+1} scratch per solve; the
    // context estimate is reused but the no-full-assign contract the
    // flag promises does not hold.
    caps.reuses_workspace = false;
    caps.supports_trace = true;
    return caps;
  }

  double AdvertisedL1Bound(const PprQuery& query) const override {
    // A top-k-early-retired source stops with rsum above λ: the top-k
    // *set* is guaranteed, the ℓ1 error is not.
    if (topk_early_ && query.top_k > 0) {
      return std::numeric_limits<double>::infinity();
    }
    return params_.Lambda(query);
  }

 protected:
  Status DoSolve(const PprQuery& query, SolverContext& context,
                 PprResult* result) override {
    if (max_fused() > 0) {
      const CancelToken* token = context.cancel_token();
      std::array<Status, 1> statuses = {Status::OK()};
      PPR_RETURN_IF_ERROR(DoSolveMany({&query, 1}, {}, {&token, 1}, context,
                                      {result, 1}, statuses));
      return statuses[0];
    }
    const NodeId n = graph_->num_nodes();
    PprEstimate* estimate = context.AcquireEstimate(n, query.source);
    PowerIterationOptions options;
    options.alpha = params_.Alpha(query);
    options.lambda = params_.Lambda(query);
    options.assume_initialized = true;
    options.threads = threads();
    options.cancel = context.cancel_token();
    result->stats = PowerIteration(*graph_, query.source, options, estimate,
                                   context.trace(),
                                   threads() > 1
                                       ? context.AcquireThreadBuffers(
                                             threads(), n)
                                       : nullptr);
    context.ExportEstimate(query.want_residues, result);
    return Status::OK();
  }

  Status DoSolveMany(std::span<const PprQuery> queries,
                     std::span<const uint64_t> /*seeds*/,
                     std::span<const CancelToken* const> cancels,
                     SolverContext& context, std::span<PprResult> results,
                     std::span<Status> /*statuses*/) override {
    const size_t B = queries.size();
    std::vector<NodeId> sources(B);
    std::vector<double> alpha(B);
    std::vector<double> threshold(B);
    std::vector<size_t> top_k(B, 0);
    for (size_t b = 0; b < B; ++b) {
      sources[b] = queries[b].source;
      alpha[b] = params_.Alpha(queries[b]);
      threshold[b] = params_.Lambda(queries[b]);
      if (topk_early_) top_k[b] = queries[b].top_k;
    }
    MultiSourceOptions options;
    options.push_mode = false;
    options.topk_early = topk_early_;
    options.threads = threads();
    RunFusedBlock(*graph_, context, queries, cancels, options, sources, alpha,
                  threshold, top_k, results, nullptr);
    return Status::OK();
  }

 private:
  const ParamDefaults params_;
  const bool topk_early_;
};

/// Global PageRank — the uniform-teleport special case; ignores
/// query.source.
class PageRankSolver : public Solver {
 public:
  explicit PageRankSolver(ParamDefaults params) : params_(params) {}

  std::string_view name() const override { return "pagerank"; }

  SolverCapabilities capabilities() const override {
    SolverCapabilities caps;
    caps.family = SolverFamily::kGlobal;
    return caps;
  }

  double AdvertisedL1Bound(const PprQuery& query) const override {
    return params_.Lambda(query);
  }

 protected:
  Status DoSolve(const PprQuery& query, SolverContext& context,
                 PprResult* result) override {
    PageRankOptions options;
    options.alpha = params_.Alpha(query);
    options.lambda = params_.Lambda(query);
    options.threads = threads();
    result->scores =
        PageRank(*graph_, options, &result->stats,
                 threads() > 1 ? context.AcquireThreadBuffers(
                                     threads(), graph_->num_nodes())
                               : nullptr);
    return Status::OK();
  }

 private:
  ParamDefaults params_;
};

/// BePI (Jung et al., SIGMOD'17): preprocessing-based high-precision
/// competitor. query.lambda doubles as BePI's convergence delta.
class BepiApiSolver : public Solver {
 public:
  BepiApiSolver(ParamDefaults params, uint64_t max_iterations)
      : params_(params), max_iterations_(max_iterations) {}

  std::string_view name() const override { return "bepi"; }

  SolverCapabilities capabilities() const override {
    SolverCapabilities caps;
    caps.family = SolverFamily::kHighPrecision;
    caps.needs_in_adjacency = true;
    caps.has_index = true;
    return caps;
  }

  Status Prepare(const Graph& graph) override {
    PPR_RETURN_IF_ERROR(Solver::Prepare(graph));
    BepiOptions options;
    options.alpha = params_.alpha;
    options.max_iterations = max_iterations_;
    bepi_ = BepiSolver::Preprocess(*graph_, options);
    return Status::OK();
  }

  double AdvertisedL1Bound(const PprQuery& query) const override {
    // BePI's delta is an ℓ2 successive-iterate criterion, not a direct
    // ℓ1 certificate; sqrt(delta) is a comfortably conservative
    // empirical calibration (see bepi_test: delta=1e-9 lands below
    // 1e-6 ℓ1 across the zoo).
    return std::sqrt(params_.Lambda(query));
  }

  uint64_t IndexBytes() const override { return bepi_ ? bepi_->IndexBytes() : 0; }

 protected:
  Status DoSolve(const PprQuery& query, SolverContext& /*context*/,
                 PprResult* result) override {
    if (query.alpha > 0 && query.alpha != params_.alpha) {
      return Status::InvalidArgument(
          "bepi preprocessing is bound to alpha=" +
          std::to_string(params_.alpha) + "; recreate with the alpha option");
    }
    result->stats =
        bepi_->Solve(query.source, params_.Lambda(query), &result->scores);
    return Status::OK();
  }

 private:
  const ParamDefaults params_;
  const uint64_t max_iterations_;
  std::unique_ptr<BepiSolver> bepi_;
};

/// Shared plumbing of the registered dynamic solvers (dynfwdpush and
/// the walk-index tier): the owned evolving graph in layout space, the
/// per-source residue-repair pool (core/dynamic_ppr), original-id
/// update mapping under order= layouts, and the original-id Snapshot().
/// Concrete solvers decide the rmax the pool maintains and what Solve
/// does with the maintained (reserve, residue) pairs.
class DynamicPoolSolver : public DynamicSolver {
 public:
  uint64_t epoch() const override {
    return dynamic_ != nullptr ? dynamic_->epoch() : 0;
  }

  Graph Snapshot() const override {
    PPR_CHECK(dynamic_ != nullptr) << "Snapshot() before Prepare()";
    Graph layout = dynamic_->Snapshot();
    const std::vector<NodeId>& perm = layout_permutation();
    if (perm.empty()) return layout;
    // Back to original ids: layout node perm[v] is original node v, and
    // nodes added after Prepare sit at the same id in both spaces.
    std::vector<NodeId> inverse(layout.num_nodes());
    for (NodeId v = 0; v < static_cast<NodeId>(perm.size()); ++v) {
      inverse[perm[v]] = v;
    }
    for (NodeId v = static_cast<NodeId>(perm.size());
         v < layout.num_nodes(); ++v) {
      inverse[v] = v;
    }
    return PermuteGraph(layout, inverse);
  }

  /// Queries range-check against the evolving graph, so nodes added by
  /// ApplyUpdates are queryable without re-Prepare.
  NodeId CurrentNumNodes() const override {
    return dynamic_ != nullptr ? dynamic_->num_nodes()
                               : Solver::CurrentNumNodes();
  }

 protected:
  /// Builds the evolving copy and the tracker pool; call from Prepare()
  /// after Solver::Prepare() bound graph_ (so an order= layout is
  /// already applied — repairs then enjoy the relabeled CSR too).
  void PrepareDynamicState(double alpha, double rmax) {
    dynamic_ = std::make_unique<DynamicGraph>(*graph_);
    DynamicSsppr::Options options;
    options.alpha = alpha;
    options.rmax = rmax;
    pool_ = std::make_unique<DynamicSspprPool>(dynamic_.get(), options);
  }

  /// Maps the batch into layout space when needed and applies it to the
  /// pool; `applied` fires after each landed mutation (see
  /// DynamicSspprPool::Apply). The caller-must-hold-mu_ contract is
  /// compiler-checked under PPR_ANALYZE.
  Status ApplyToPool(const UpdateBatch& batch, uint64_t* pushes,
                     const std::function<void(const EdgeUpdate&)>& applied)
      PPR_REQUIRES(mu_) {
    const std::vector<NodeId>& perm = layout_permutation();
    if (perm.empty()) return pool_->Apply(batch, pushes, applied);
    // Updates arrive in original ids; the evolving graph lives in
    // layout space. LayoutOf passes post-Prepare ids (identity-mapped)
    // and out-of-range ids through unchanged — Apply's validation
    // rejects the truly out-of-range ones against the evolving node
    // count, which Prepare-time perm cannot know.
    UpdateBatch mapped;
    mapped.updates.reserve(batch.updates.size());
    for (const EdgeUpdate& up : batch.updates) {
      switch (up.kind) {
        case UpdateKind::kAddNode:
          mapped.updates.push_back(up);  // no ids to map
          break;
        case UpdateKind::kRemoveNode:
          mapped.updates.push_back({up.kind, LayoutOf(up.u), 0});
          break;
        default:
          mapped.updates.push_back({up.kind, LayoutOf(up.u), LayoutOf(up.v)});
          break;
      }
    }
    return pool_->Apply(mapped, pushes, applied);
  }

  std::unique_ptr<DynamicGraph> dynamic_;
  std::unique_ptr<DynamicSspprPool> pool_;
  /// Serializes Solve (the maintained estimates live in the solver, not
  /// the context) and ApplyUpdates against each other.
  Mutex mu_;
};

/// Incremental Forward Push on an evolving graph ("dynfwdpush"): the
/// registry face of core/dynamic_ppr.h. Prepare copies the graph into an
/// owned DynamicGraph; ApplyUpdates repairs a pool of per-source
/// trackers algebraically instead of re-solving, and Solve exports the
/// maintained estimate for its source — so repeated queries on a slowly
/// mutating graph cost O(updates · d_u), not O(m) per query.
///
/// Under an order= layout the evolving graph lives in layout space (the
/// repair pushes walk the relabeled CSR-ordered adjacency): update
/// endpoints are mapped in, results map back through the base Solve.
class DynFwdPushSolver : public DynamicPoolSolver {
 public:
  DynFwdPushSolver(ParamDefaults params, double rmax)
      : params_(params), rmax_(rmax) {}

  std::string_view name() const override { return "dynfwdpush"; }

  SolverCapabilities capabilities() const override {
    SolverCapabilities caps;
    caps.family = SolverFamily::kHighPrecision;
    caps.exposes_residues = true;
    caps.supports_updates = true;
    return caps;
  }

  Status Prepare(const Graph& graph) override {
    PPR_RETURN_IF_ERROR(Solver::Prepare(graph));
    prepare_edges_ = graph_->num_edges();
    PrepareDynamicState(params_.alpha, ResolvedRmax());
    return Status::OK();
  }

  double AdvertisedL1Bound(const PprQuery& /*query*/) const override {
    // Termination of every repair: |r(v)| <= deff(v)·rmax for all v, so
    // Σ|r| <= (m + k)·rmax at the *current* edge and dead-end counts —
    // the evolving-graph form of Equation (7). DynamicGraph maintains
    // both counts in O(1).
    const double effective_edges = static_cast<double>(
        dynamic_->num_edges() + dynamic_->num_dead_ends());
    return effective_edges * ResolvedRmax();
  }

  Status ApplyUpdates(const UpdateBatch& batch,
                      UpdateStats* stats) override {
    if (pool_ == nullptr) {
      return Status::FailedPrecondition(
          "ApplyUpdates() before a successful Prepare()");
    }
    Timer timer;
    uint64_t pushes = 0;
    MutexLock lock(mu_);
    PPR_RETURN_IF_ERROR(ApplyToPool(batch, &pushes, {}));
    if (stats != nullptr) {
      stats->push_operations = pushes;
      stats->walks_resampled = 0;
      stats->resize_events = 0;
      stats->seconds = timer.ElapsedSeconds();
      stats->epoch = dynamic_->epoch();
    }
    return Status::OK();
  }

 protected:
  Status DoSolve(const PprQuery& query, SolverContext& /*context*/,
                 PprResult* result) override {
    if (query.alpha > 0 && query.alpha != params_.alpha) {
      return Status::InvalidArgument(
          "dynfwdpush trackers are bound to alpha=" +
          std::to_string(params_.alpha) + "; recreate with the alpha option");
    }
    if (query.lambda > 0) {
      return Status::InvalidArgument(
          "dynfwdpush maintains its estimate at a fixed rmax; set the rmax "
          "(or lambda) option instead of a per-query lambda");
    }
    // The estimate lives in the solver (that is the point: it persists
    // across queries and updates), not in the context — so concurrent
    // Solves serialize on the pool here. Solve is read-only for an
    // existing tracker; first use pays one from-scratch push.
    MutexLock lock(mu_);
    DynamicSsppr& tracker = pool_->TrackerFor(query.source);
    const PprEstimate& estimate = tracker.estimate();
    result->scores.assign(estimate.reserve.begin(), estimate.reserve.end());
    if (query.want_residues) {
      result->residues.assign(estimate.residue.begin(),
                              estimate.residue.end());
    }
    result->epoch = dynamic_->epoch();
    result->stats.final_rsum = tracker.ResidueL1();
    return Status::OK();
  }

 private:
  double ResolvedRmax() const {
    if (rmax_ > 0) return rmax_;
    // lambda → rmax at the Prepare-time edge count; the advertised
    // bound above tracks the current counts as the graph evolves.
    return params_.lambda /
           static_cast<double>(std::max<EdgeId>(prepare_edges_, 1));
  }

  const ParamDefaults params_;
  const double rmax_;  // 0 → derive lambda/m at Prepare
  EdgeId prepare_edges_ = 1;
};

// --------------------------------------------------------------------
// Approximate family
// --------------------------------------------------------------------

/// Plain Monte Carlo: W Chernoff-sized α-walks from the source.
class MonteCarloSolver : public Solver {
 public:
  explicit MonteCarloSolver(ParamDefaults params) : params_(params) {}

  std::string_view name() const override { return "mc"; }

  SolverCapabilities capabilities() const override {
    SolverCapabilities caps;
    caps.family = SolverFamily::kApproximate;
    caps.randomized = true;
    caps.reuses_workspace = true;
    return caps;
  }

  double AdvertisedL1Bound(const PprQuery& query) const override {
    return params_.Epsilon(query);
  }

 protected:
  Status DoSolve(const PprQuery& query, SolverContext& context,
                 PprResult* result) override {
    const NodeId n = graph_->num_nodes();
    ApproxOptions options;
    options.alpha = params_.Alpha(query);
    options.epsilon = params_.Epsilon(query);
    options.mu = params_.Mu(query, n);
    options.threads = threads();
    options.cancel = context.cancel_token();
    std::vector<double>* scores = context.AcquireScores(n);
    // Scratch feeds only the dense-counts branch; the stop-list branch
    // would leave O(n·workers) buffers pinned unused.
    const unsigned workers = ResolvedWorkers();
    result->stats = MonteCarloInto(
        *graph_, query.source, options, context.rng(), scores,
        workers > 1 && MonteCarloUsesDenseCounts(n, options)
            ? context.AcquireThreadBuffers(workers, n)
            : nullptr);
    context.ExportScores(result);
    return Status::OK();
  }

 private:
  const ParamDefaults params_;
};

/// FORA / FORA+ and SpeedPPR / SpeedPPR-Index share the two-phase
/// structure; `kind_` picks the phase-1 engine and the index sizing.
class TwoPhaseSolver : public BatchSolver {
 public:
  enum class Kind { kFora, kSpeedPpr };

  /// batch= (kFora only, factory-enforced) enables the fused tier: the
  /// push phases of a block advance together through the multi-source
  /// scan kernel at each source's own rmax, then every source runs its
  /// own seeded walk phase. The scan replaces FIFO push for the whole
  /// spec (B=1 included) so fused and per-query solves of the same
  /// spec+seed are bit-identical; the scan always runs serially — a
  /// parallel merge's 1e-15 reassociation would flip ceil(|r|·W) walk
  /// counts — while the thread-count-invariant walk phases scale.
  TwoPhaseSolver(Kind kind, ParamDefaults params, bool indexed,
                 double index_eps, uint64_t index_seed, std::string cache_dir,
                 size_t batch)
      : kind_(kind),
        params_(params),
        indexed_(indexed),
        index_eps_(index_eps),
        index_seed_(index_seed),
        cache_dir_(std::move(cache_dir)) {
    set_max_fused(batch);
  }

  std::string_view name() const override {
    return kind_ == Kind::kFora ? "fora" : "speedppr";
  }

  SolverCapabilities capabilities() const override {
    SolverCapabilities caps;
    caps.family = SolverFamily::kApproximate;
    caps.randomized = true;
    // The fused tier's dense block scratch is a full assign per call.
    caps.reuses_workspace = max_fused() == 0;
    caps.has_index = indexed_;
    return caps;
  }

  Status Prepare(const Graph& graph) override {
    PPR_RETURN_IF_ERROR(Solver::Prepare(graph));
    index_.reset();
    if (!indexed_) return Status::OK();
    const NodeId n = graph_->num_nodes();
    WalkIndex::Sizing sizing;
    uint64_t w;
    if (kind_ == Kind::kSpeedPpr) {
      // ε-independent sizing: exactly d_v walks per node (§6.2).
      sizing = WalkIndex::Sizing::kSpeedPpr;
      w = 0;
    } else {
      // FORA+ sizing depends on W and therefore on the ε the index is
      // built for (§6.1); smaller index_eps serves every larger ε.
      sizing = WalkIndex::Sizing::kForaPlus;
      const double eps = index_eps_ > 0 ? index_eps_ : params_.epsilon;
      w = ChernoffWalkCount(n, eps, params_.Mu({}, n));
    }
    // cache_dir=: reuse a previously saved index whose filename matches
    // every build input; otherwise build and save for the next Prepare.
    std::string cache_path;
    if (!cache_dir_.empty()) {
      // The fingerprint is taken from graph_: under an order= layout the
      // permuted CSR fingerprints differently, so caches built for
      // different layouts of the same graph never cross-load.
      cache_path = cache_dir_ + "/" +
                   WalkIndex::CacheFileName(sizing, params_.alpha, w,
                                            index_seed_,
                                            graph_->Fingerprint());
      auto loaded = WalkIndex::LoadFrom(cache_path);
      // The embedded fingerprint is the staleness check the filename
      // cannot provide: a cache saved before the graph changed (and
      // renamed, copied, or colliding into the expected path) fails
      // here and Prepare rebuilds instead of serving stale walks.
      if (loaded.ok() && loaded.value().num_nodes() == n &&
          loaded.value().alpha() == params_.alpha &&
          loaded.value().graph_fingerprint() == graph_->Fingerprint()) {
        index_ = std::make_unique<WalkIndex>(std::move(loaded).ValueOrDie());
        return Status::OK();
      }
    }
    index_ = std::make_unique<WalkIndex>(WalkIndex::BuildParallel(
        *graph_, params_.alpha, sizing, w, index_seed_));
    if (!cache_path.empty()) {
      // The in-memory index is valid either way; a failed save (missing
      // or read-only cache_dir) costs the next Prepare a rebuild, not
      // this one its solver.
      Status saved = index_->SaveTo(cache_path);
      if (!saved.ok()) {
        PPR_LOG(Warning) << "walk-index cache not saved: "
                         << saved.ToString();
      }
    }
    return Status::OK();
  }

  double AdvertisedL1Bound(const PprQuery& query) const override {
    return params_.Epsilon(query);
  }

  uint64_t IndexBytes() const override {
    return index_ != nullptr ? index_->SizeBytes() : 0;
  }

  const WalkIndex* index() const { return index_.get(); }

 protected:
  Status DoSolve(const PprQuery& query, SolverContext& context,
                 PprResult* result) override {
    if (max_fused() > 0) {
      // The batch= spec answers every query through the fused path
      // with the context RNG driving the walk phase, so Reseed(seed) +
      // Solve stays bit-identical to SolveMany with that seed.
      const CancelToken* token = context.cancel_token();
      std::array<Status, 1> statuses = {Status::OK()};
      PPR_RETURN_IF_ERROR(FusedFora({&query, 1}, {}, {&token, 1}, context,
                                    {result, 1}, statuses, &context.rng()));
      return statuses[0];
    }
    const NodeId n = graph_->num_nodes();
    const double alpha = params_.Alpha(query);
    if (indexed_ && query.alpha > 0 && query.alpha != params_.alpha) {
      return Status::InvalidArgument(
          "the walk index is bound to alpha=" + std::to_string(params_.alpha) +
          "; recreate with the alpha option");
    }
    ApproxOptions options;
    options.alpha = alpha;
    options.epsilon = params_.Epsilon(query);
    options.mu = params_.Mu(query, n);
    options.threads = threads();
    options.cancel = context.cancel_token();

    // The compositions live in SpeedPprInto/ForaInto — shared with the
    // free functions, so the two entry points cannot drift.
    PprEstimate* estimate = context.AcquireEstimate(n, query.source);
    std::vector<double>* scores = context.AcquireScores(n);
    if (kind_ == Kind::kSpeedPpr) {
      // Lend scratch only to the stages that will read it: the PowerPush
      // scan under an explicit threads=N, or the W <= m MonteCarlo
      // fallback (which auto-parallelizes under threads=0). Acquiring
      // unconditionally would pin O(n·workers) buffers that the common
      // W > m, threads=0 path never touches.
      const unsigned workers = ResolvedWorkers();
      const bool mc_fallback_wants_scratch =
          SpeedPprUsesMonteCarloFallback(*graph_, options) &&
          MonteCarloUsesDenseCounts(n, options);
      ThreadDenseBuffers* scratch =
          workers > 1 && (threads() > 1 || mc_fallback_wants_scratch)
              ? context.AcquireThreadBuffers(workers, n)
              : nullptr;
      result->stats =
          SpeedPprInto(*graph_, query.source, options, context.rng(), estimate,
                       scores, index_.get(), context.AcquireQueue(n), scratch);
    } else {
      result->stats =
          ForaInto(*graph_, query.source, options, context.rng(), estimate,
                   scores, index_.get(), context.AcquireQueue(n));
    }
    context.ReleaseEstimate();
    context.ExportScores(result);
    return Status::OK();
  }

  Status DoSolveMany(std::span<const PprQuery> queries,
                     std::span<const uint64_t> seeds,
                     std::span<const CancelToken* const> cancels,
                     SolverContext& context, std::span<PprResult> results,
                     std::span<Status> statuses) override {
    return FusedFora(queries, seeds, cancels, context, results, statuses,
                     nullptr);
  }

 private:
  /// Fused FORA body shared by DoSolveMany (per-query seed streams) and
  /// the batch= B=1 DoSolve (`serial_rng` = the context RNG, so
  /// Reseed(seed)+Solve equals SolveMany at that seed bit-for-bit).
  Status FusedFora(std::span<const PprQuery> queries,
                   std::span<const uint64_t> seeds,
                   std::span<const CancelToken* const> cancels,
                   SolverContext& context, std::span<PprResult> results,
                   std::span<Status> statuses, Rng* serial_rng) {
    PPR_CHECK(kind_ == Kind::kFora);
    PPR_CHECK(serial_rng != nullptr || seeds.size() == queries.size());
    const NodeId n = graph_->num_nodes();
    const size_t B = queries.size();
    // Per-query alpha overrides are rejected per query when indexed —
    // columns are independent, so siblings keep their block slot.
    std::vector<size_t> live;
    live.reserve(B);
    for (size_t b = 0; b < B; ++b) {
      if (indexed_ && queries[b].alpha > 0 &&
          queries[b].alpha != params_.alpha) {
        statuses[b] = Status::InvalidArgument(
            "the walk index is bound to alpha=" +
            std::to_string(params_.alpha) + "; recreate with the alpha option");
      } else {
        live.push_back(b);
      }
    }
    if (live.empty()) return Status::OK();

    const size_t num_live = live.size();
    std::vector<PprQuery> sub_queries(num_live);
    std::vector<const CancelToken*> sub_cancels(num_live, nullptr);
    std::vector<NodeId> sources(num_live);
    std::vector<double> alpha(num_live);
    std::vector<double> threshold(num_live);
    std::vector<uint64_t> walk_w(num_live);
    for (size_t j = 0; j < num_live; ++j) {
      const PprQuery& q = queries[live[j]];
      sub_queries[j] = q;
      if (!cancels.empty()) sub_cancels[j] = cancels[live[j]];
      sources[j] = q.source;
      alpha[j] = params_.Alpha(q);
      walk_w[j] = ChernoffWalkCount(n, params_.Epsilon(q), params_.Mu(q, n));
      threshold[j] = ForaRmax(*graph_, walk_w[j]);
    }
    std::vector<PprResult> sub_results(num_live);
    std::vector<std::vector<double>> residue_store(num_live);
    MultiSourceOptions options;
    options.push_mode = true;
    // Serial scan only (see the class comment): a parallel merge's
    // 1e-15 reassociation would flip ceil(|r|·W) walk counts and break
    // the bit-identical fused == serial contract.
    options.threads = 1;
    RunFusedBlock(*graph_, context, sub_queries, sub_cancels, options, sources,
                  alpha, threshold, /*top_k=*/{}, sub_results, &residue_store);

    const CancelToken* block_token = context.cancel_token();
    for (size_t j = 0; j < num_live; ++j) {
      PprResult& r = sub_results[j];
      const CancelToken* token = sub_cancels[j];
      // A source stopped during the push phase has partial columns:
      // skip its walks — the SolveMany wrapper fails it on post-check.
      if ((token != nullptr && token->ShouldStop()) ||
          (block_token != nullptr && block_token->ShouldStop())) {
        results[live[j]] = std::move(r);
        continue;
      }
      // r.scores already holds the reserve column (the fused analogue
      // of SeedScoresFromReserve); the walk phase refines it in place.
      if (serial_rng != nullptr) {
        ResidueWalkPhase(*graph_, residue_store[j], walk_w[j], alpha[j],
                         *serial_rng, index_.get(), &r.scores, &r.stats,
                         threads(), token);
      } else {
        Rng rng(seeds[live[j]]);
        ResidueWalkPhase(*graph_, residue_store[j], walk_w[j], alpha[j], rng,
                         index_.get(), &r.scores, &r.stats, threads(), token);
      }
      results[live[j]] = std::move(r);
    }
    return Status::OK();
  }

  const Kind kind_;
  const ParamDefaults params_;
  const bool indexed_;
  const double index_eps_;
  const uint64_t index_seed_;
  const std::string cache_dir_;
  std::unique_ptr<WalkIndex> index_;
};

/// The dynamic approximate tier ("dynfora" / "dynspeedppr"): FORA and
/// SpeedPPR kept query-ready on an evolving graph, pairing the two
/// incremental structures the static two-phase solvers lack:
///
///  * phase 1 (push) is not re-run per update — a DynamicSspprPool
///    maintains each queried source's (reserve, residue) pair at the
///    algorithm's own rmax (FORA: 1/sqrt(m·W); SpeedPPR: 1/W, which is
///    exactly the refinement target r(s,v) ≤ d_v/W of Lemma 4.5), using
///    the O(d_u) algebraic corrections of core/dynamic_ppr;
///  * phase 2's WalkIndex is not rebuilt per update — a DynamicWalkIndex
///    resamples only the walks a mutation actually invalidated
///    (UpdateStats::walks_resampled counts them) and tracks the sizing
///    rule at the new degrees, staying distribution-identical to a
///    fresh build on the updated graph.
///
/// Solve composes the two exactly like the static compositions: seed
/// scores from the maintained reserves, then run the shared
/// ResidueWalkPhase over the maintained residues against the repaired
/// index, topping up shortfalls with fresh walks on a cached CSR
/// snapshot of the current epoch. Deletion corrections can leave
/// negative residues; the walk phase handles them with signed
/// contributions (|r| walks of weight r/W_v), keeping the estimate
/// unbiased.
///
/// The W behind the walk counts (and FORA's rmax) is fixed at Prepare
/// from the configured ε — per-query ε/α/μ overrides are rejected, the
/// same way dynfwdpush rejects per-query lambdas. For the kForaPlus
/// sizing the per-degree ratio sqrt(W/m) tracks the live m: when it
/// drifts past the configured drift= factor, the index re-derives the
/// ratio and resizes every K_v (UpdateStats::resize_events counts the
/// events; see DynamicWalkIndex).
class DynTwoPhaseSolver : public DynamicPoolSolver {
 public:
  using Kind = TwoPhaseSolver::Kind;

  DynTwoPhaseSolver(Kind kind, ParamDefaults params, double index_eps,
                    uint64_t index_seed, double drift_factor)
      : kind_(kind),
        params_(params),
        index_eps_(index_eps),
        index_seed_(index_seed),
        drift_factor_(drift_factor) {}

  std::string_view name() const override {
    return kind_ == Kind::kFora ? "dynfora" : "dynspeedppr";
  }

  SolverCapabilities capabilities() const override {
    SolverCapabilities caps;
    caps.family = SolverFamily::kApproximate;
    caps.randomized = true;
    caps.reuses_workspace = true;
    caps.has_index = true;
    caps.supports_updates = true;
    return caps;
  }

  Status Prepare(const Graph& graph) override {
    PPR_RETURN_IF_ERROR(Solver::Prepare(graph));
    const NodeId n = graph_->num_nodes();
    walk_count_w_ =
        ChernoffWalkCount(n, params_.epsilon, params_.Mu({}, n));
    const double rmax =
        kind_ == Kind::kSpeedPpr
            ? 1.0 / static_cast<double>(walk_count_w_)
            : ForaRmax(*graph_, walk_count_w_);
    PrepareDynamicState(params_.alpha, rmax);

    WalkIndex::Sizing sizing;
    uint64_t index_w = 0;
    if (kind_ == Kind::kSpeedPpr) {
      // ε-independent d_v sizing (§6.2) — nothing to freeze.
      sizing = WalkIndex::Sizing::kSpeedPpr;
    } else {
      // FORA+ sizing at the index ε (≤ the serving ε tops up less).
      sizing = WalkIndex::Sizing::kForaPlus;
      const double eps = index_eps_ > 0 ? index_eps_ : params_.epsilon;
      index_w = ChernoffWalkCount(n, eps, params_.Mu({}, n));
    }
    index_ = std::make_unique<DynamicWalkIndex>(
        *graph_, params_.alpha, sizing, index_w, index_seed_, drift_factor_);
    {
      MutexLock lock(mu_);
      snapshot_.reset();
      snapshot_epoch_ = 0;
    }
    return Status::OK();
  }

  double AdvertisedL1Bound(const PprQuery& query) const override {
    return params_.Epsilon(query);
  }

  Status ApplyUpdates(const UpdateBatch& batch,
                      UpdateStats* stats) override {
    if (pool_ == nullptr) {
      return Status::FailedPrecondition(
          "ApplyUpdates() before a successful Prepare()");
    }
    Timer timer;
    uint64_t pushes = 0;
    uint64_t walks = 0;
    MutexLock lock(mu_);
    const uint64_t resizes_before = index_->resize_events();
    // The hook runs right after each mutation lands, so the index always
    // repairs against the adjacency the walks must now follow; residue
    // repair and walk refresh share one validation and one graph pass.
    // Node ops arrive through the same hook: a kAddNode grows the index
    // in lockstep with the graph; a kRemoveNode already fired the hook
    // once per lowered edge deletion, so its marker needs no refresh.
    PPR_RETURN_IF_ERROR(
        ApplyToPool(batch, &pushes, [&](const EdgeUpdate& up) {
          switch (up.kind) {
            case UpdateKind::kAddNode:
              index_->AddNode();
              break;
            case UpdateKind::kRemoveNode:
              break;
            default:
              walks += index_->RefreshMutatedNode(*dynamic_, up.u);
              break;
          }
        }));
    snapshot_.reset();  // next Solve re-materializes the current epoch
    if (stats != nullptr) {
      stats->push_operations = pushes;
      stats->walks_resampled = walks;
      stats->resize_events = index_->resize_events() - resizes_before;
      stats->seconds = timer.ElapsedSeconds();
      stats->epoch = dynamic_->epoch();
    }
    return Status::OK();
  }

  uint64_t IndexBytes() const override {
    return index_ != nullptr ? index_->SizeBytes() : 0;
  }

  const DynamicWalkIndex* index() const { return index_.get(); }

 protected:
  Status DoSolve(const PprQuery& query, SolverContext& context,
                 PprResult* result) override {
    if (query.alpha > 0 && query.alpha != params_.alpha) {
      return Status::InvalidArgument(
          std::string(name()) + " trackers and walk index are bound to "
          "alpha=" + std::to_string(params_.alpha) +
          "; recreate with the alpha option");
    }
    if ((query.epsilon > 0 && query.epsilon != params_.epsilon) ||
        (query.mu > 0 && query.mu != params_.mu)) {
      return Status::InvalidArgument(
          std::string(name()) + " maintains its estimate at the W derived "
          "from its configured eps/mu; recreate with the eps/mu options");
    }
    if (query.lambda > 0) {
      return Status::InvalidArgument(
          std::string(name()) +
          " is an approximate solver; lambda does not apply");
    }
    const DynamicSsppr* tracker;
    const Graph* snapshot;
    {
      MutexLock lock(mu_);
      tracker = &pool_->TrackerFor(query.source);
      RefreshSnapshotLocked();
      snapshot = snapshot_.get();
    }
    // Phase 2 runs outside mu_: between update batches the maintained
    // estimates, the walk index and the epoch snapshot are all
    // read-only (ApplyUpdates is excluded by the DynamicSolver
    // contract — under load, by the server's epoch barrier), so
    // concurrent queries pay the lock only for tracker lookup/creation
    // and the per-epoch snapshot refresh, not for the walk phase that
    // dominates the query. The snapshot's node count (not the
    // Prepare-time graph_'s) sizes the workspace: the graph may have
    // grown through kAddNode updates.
    const NodeId n = snapshot->num_nodes();
    Timer timer;
    std::vector<double>* scores = context.AcquireScores(n);
    SeedScoresFromReserve(tracker->estimate().reserve, scores);
    SolveStats stats;
    ResidueWalkPhase(*snapshot, tracker->estimate().residue, walk_count_w_,
                     params_.alpha, context.rng(), index_.get(), scores,
                     &stats, threads(), context.cancel_token());
    stats.final_rsum = tracker->ResidueL1();
    stats.seconds = timer.ElapsedSeconds();
    result->stats = stats;
    context.ExportScores(result);
    result->epoch = dynamic_->epoch();
    return Status::OK();
  }

 private:
  /// The walk phase's fresh-walk top-ups need a CSR of the current
  /// graph; materialized once per epoch, not per query. Caller holds
  /// mu_.
  void RefreshSnapshotLocked() PPR_REQUIRES(mu_) {
    if (snapshot_ == nullptr || snapshot_epoch_ != dynamic_->epoch()) {
      snapshot_ = std::make_unique<Graph>(dynamic_->Snapshot());
      snapshot_epoch_ = dynamic_->epoch();
    }
  }

  const Kind kind_;
  const ParamDefaults params_;
  const double index_eps_;
  const uint64_t index_seed_;
  const double drift_factor_;
  uint64_t walk_count_w_ = 0;
  std::unique_ptr<DynamicWalkIndex> index_;
  std::unique_ptr<Graph> snapshot_ PPR_GUARDED_BY(mu_);  // layout space
  uint64_t snapshot_epoch_ PPR_GUARDED_BY(mu_) = 0;
};

/// ResAcc (Lin et al., ICDE'20): index-free FORA accelerator.
class ResAccSolver : public Solver {
 public:
  explicit ResAccSolver(ParamDefaults params) : params_(params) {}

  std::string_view name() const override { return "resacc"; }

  SolverCapabilities capabilities() const override {
    SolverCapabilities caps;
    caps.family = SolverFamily::kApproximate;
    caps.randomized = true;
    return caps;
  }

  double AdvertisedL1Bound(const PprQuery& query) const override {
    return params_.Epsilon(query);
  }

 protected:
  Status DoSolve(const PprQuery& query, SolverContext& context,
                 PprResult* result) override {
    ApproxOptions options;
    options.alpha = params_.Alpha(query);
    options.epsilon = params_.Epsilon(query);
    options.mu = params_.Mu(query, graph_->num_nodes());
    options.threads = threads();
    options.cancel = context.cancel_token();
    result->stats = ResAcc(*graph_, query.source, options, context.rng(),
                           &result->scores);
    return Status::OK();
  }

 private:
  const ParamDefaults params_;
};

// --------------------------------------------------------------------
// Single-pair family
// --------------------------------------------------------------------

/// Shared single-pair plumbing: a concrete estimator answers one
/// (s, t) pair; the base materializes whole vectors by looping targets
/// when the query has none (O(n) pair queries — small graphs only).
class SinglePairSolver : public Solver {
 public:
  SolverCapabilities capabilities() const override {
    SolverCapabilities caps;
    caps.family = SolverFamily::kSinglePair;
    caps.randomized = true;
    caps.needs_in_adjacency = true;
    caps.needs_dead_end_free = true;
    return caps;
  }

  double AdvertisedL1Bound(const PprQuery& query) const override {
    // ε relative error at magnitude ≥ δ plus ~ε·δ absolute noise below
    // it: ε per pair, 2ε summed over a whole column (δ = 1/n).
    const double eps = params_.Epsilon(query);
    return query.target != kNoTarget ? eps : 2.0 * eps;
  }

 protected:
  explicit SinglePairSolver(ParamDefaults params) : params_(params) {}

  virtual BiPprResult SolvePair(NodeId source, NodeId target,
                                const PprQuery& query, Rng& rng) = 0;

  Status DoSolve(const PprQuery& query, SolverContext& context,
                 PprResult* result) override {
    const NodeId n = graph_->num_nodes();
    result->scores.assign(n, 0.0);
    SolveStats stats;
    Timer timer;
    if (query.target != kNoTarget) {
      BiPprResult pair =
          SolvePair(query.source, query.target, query, context.rng());
      result->scores[query.target] = pair.estimate;
      stats.random_walks = pair.walks;
      stats.push_operations = pair.backward_pushes;
    } else {
      // Materializing the column runs every target on its own RNG
      // stream derived from one context draw; targets write disjoint
      // entries, so the fan-out parallelizes with bit-identical results
      // for every thread count.
      const uint64_t seed = context.rng().NextUint64();
      const unsigned workers = ResolvedWorkers();
      std::vector<uint64_t> walks(workers, 0);
      std::vector<uint64_t> pushes(workers, 0);
      ParallelForThreads(0, n, workers,
                         [&](uint64_t lo, uint64_t hi, unsigned w) {
        for (uint64_t t = lo; t < hi; ++t) {
          Rng rng = SplitStream(seed, t);
          BiPprResult pair =
              SolvePair(query.source, static_cast<NodeId>(t), query, rng);
          result->scores[t] = pair.estimate;
          walks[w] += pair.walks;
          pushes[w] += pair.backward_pushes;
        }
      }, /*grain=*/1);
      for (unsigned w = 0; w < workers; ++w) {
        stats.random_walks += walks[w];
        stats.push_operations += pushes[w];
      }
    }
    stats.seconds = timer.ElapsedSeconds();
    result->stats = stats;
    return Status::OK();
  }

  const ParamDefaults params_;
};

/// BiPPR (Lofgren et al., WSDM'16).
class BiPprSolver : public SinglePairSolver {
 public:
  BiPprSolver(ParamDefaults params, double delta, double rmax)
      : SinglePairSolver(params), delta_(delta), rmax_(rmax) {}

  std::string_view name() const override { return "bippr"; }

 protected:
  BiPprResult SolvePair(NodeId source, NodeId target, const PprQuery& query,
                        Rng& rng) override {
    BiPprOptions options;
    options.alpha = params_.Alpha(query);
    options.epsilon = params_.Epsilon(query);
    options.delta = delta_;
    options.rmax = rmax_;
    return BiPpr(*graph_, source, target, options, rng);
  }

 private:
  const double delta_;
  const double rmax_;
};

/// HubPPR (Wang et al., VLDB'16): BiPPR with precomputed backward
/// oracles for hub targets.
class HubPprSolver : public SinglePairSolver {
 public:
  HubPprSolver(ParamDefaults params, uint64_t num_hubs, double rmax)
      : SinglePairSolver(params), num_hubs_(num_hubs), rmax_(rmax) {}

  std::string_view name() const override { return "hubppr"; }

  SolverCapabilities capabilities() const override {
    SolverCapabilities caps = SinglePairSolver::capabilities();
    caps.has_index = true;
    return caps;
  }

  Status Prepare(const Graph& graph) override {
    PPR_RETURN_IF_ERROR(Solver::Prepare(graph));
    HubPprIndex::Options options;
    options.alpha = params_.alpha;
    options.num_hubs = static_cast<NodeId>(num_hubs_);
    if (rmax_ > 0) options.rmax = rmax_;
    // graph_, not the argument: under order= the hub oracles must live
    // in the same relabeled id space the queries arrive in.
    index_ = HubPprIndex::Build(*graph_, options);
    return Status::OK();
  }

 protected:
  BiPprResult SolvePair(NodeId source, NodeId target, const PprQuery& query,
                        Rng& rng) override {
    return index_->Query(source, target, params_.Epsilon(query), rng);
  }

 private:
  const uint64_t num_hubs_;
  const double rmax_;
  std::optional<HubPprIndex> index_;
};

// --------------------------------------------------------------------
// Factories + registration
// --------------------------------------------------------------------

/// Applies the cross-cutting options and hands the solver over — the
/// shared tail of every factory.
Result<std::unique_ptr<Solver>> FinishSolver(const CommonOptions& common,
                                             std::unique_ptr<Solver> solver) {
  PPR_RETURN_IF_ERROR(common.Apply(solver.get()));
  return solver;
}

/// Shared validation for the fused-tier options.
Status ValidateBatchOptions(uint64_t batch, bool topk_early) {
  if (batch > 4096) {
    return Status::InvalidArgument(
        "option 'batch' expects at most 4096 fused sources");
  }
  if (topk_early && batch == 0) {
    return Status::InvalidArgument(
        "option 'topk_early' requires batch= > 0 (it is a fused-tier "
        "retirement rule)");
  }
  return Status::OK();
}

Result<std::unique_ptr<Solver>> MakeForwardPush(const SolverSpec& spec,
                                                bool priority) {
  ParamDefaults params;
  double rmax = 0.0;
  uint64_t batch = 0;
  bool topk_early = false;
  CommonOptions common;
  OptionReader reader(spec);
  common.Read(reader);
  reader.Double("alpha", &params.alpha)
      .Double("lambda", &params.lambda)
      .Double("rmax", &rmax);
  if (!priority) {
    // The fused tier's scan discipline has no priority analogue.
    reader.Uint64("batch", &batch).Bool("topk_early", &topk_early);
  }
  PPR_RETURN_IF_ERROR(reader.Finish());
  PPR_RETURN_IF_ERROR(ValidateBatchOptions(batch, topk_early));
  return FinishSolver(common, std::unique_ptr<Solver>(new ForwardPushSolver(
                                  priority, params, rmax, batch, topk_early)));
}

Result<std::unique_ptr<Solver>> MakeDynFwdPush(const SolverSpec& spec) {
  ParamDefaults params;
  double rmax = 0.0;
  CommonOptions common;
  OptionReader reader(spec);
  common.Read(reader);
  reader.Double("alpha", &params.alpha)
      .Double("lambda", &params.lambda)
      .Double("rmax", &rmax);
  PPR_RETURN_IF_ERROR(reader.Finish());
  return FinishSolver(common, std::unique_ptr<Solver>(new DynFwdPushSolver(
                                  params, rmax)));
}

Result<std::unique_ptr<Solver>> MakePowerPush(const SolverSpec& spec) {
  ParamDefaults params;
  double lambda = 0.0;  // unset → paper default min(1e-8, 1/m)
  int epochs = 8;  // 0 → single epoch at lambda (no-epochs ablation)
  double scan_threshold = 0.25;
  bool queue_phase = true;
  CommonOptions common;
  OptionReader reader(spec);
  common.Read(reader);
  reader.Double("alpha", &params.alpha)
      .Double("lambda", &lambda)
      .Int("epochs", &epochs)
      .Double("scan_threshold", &scan_threshold)
      .Bool("queue_phase", &queue_phase);
  PPR_RETURN_IF_ERROR(reader.Finish());
  if (epochs < 0) {
    return Status::InvalidArgument("powerpush: epochs must be >= 0");
  }
  return FinishSolver(common,
                      std::unique_ptr<Solver>(new PowerPushSolver(
                          params, lambda, epochs, scan_threshold,
                          queue_phase)));
}

Result<std::unique_ptr<Solver>> MakePowerIteration(const SolverSpec& spec) {
  ParamDefaults params;
  uint64_t batch = 0;
  bool topk_early = false;
  CommonOptions common;
  OptionReader reader(spec);
  common.Read(reader);
  reader.Double("alpha", &params.alpha)
      .Double("lambda", &params.lambda)
      .Uint64("batch", &batch)
      .Bool("topk_early", &topk_early);
  PPR_RETURN_IF_ERROR(reader.Finish());
  PPR_RETURN_IF_ERROR(ValidateBatchOptions(batch, topk_early));
  return FinishSolver(common, std::unique_ptr<Solver>(new PowerIterationSolver(
                                  params, batch, topk_early)));
}

Result<std::unique_ptr<Solver>> MakePageRank(const SolverSpec& spec) {
  ParamDefaults params;
  params.lambda = 1e-10;
  CommonOptions common;
  OptionReader reader(spec);
  common.Read(reader);
  reader.Double("alpha", &params.alpha).Double("lambda", &params.lambda);
  PPR_RETURN_IF_ERROR(reader.Finish());
  return FinishSolver(common,
                      std::unique_ptr<Solver>(new PageRankSolver(params)));
}

Result<std::unique_ptr<Solver>> MakeBepi(const SolverSpec& spec) {
  ParamDefaults params;
  uint64_t max_iterations = 1000;
  CommonOptions common;
  OptionReader reader(spec);
  common.Read(reader);
  reader.Double("alpha", &params.alpha)
      .Double("lambda", &params.lambda)
      .Uint64("max_iterations", &max_iterations);
  PPR_RETURN_IF_ERROR(reader.Finish());
  return FinishSolver(common, std::unique_ptr<Solver>(new BepiApiSolver(
                                  params, max_iterations)));
}

Result<std::unique_ptr<Solver>> MakeMonteCarlo(const SolverSpec& spec) {
  ParamDefaults params;
  CommonOptions common;
  OptionReader reader(spec);
  common.Read(reader);
  reader.Double("alpha", &params.alpha)
      .Double("eps", &params.epsilon)
      .Double("mu", &params.mu);
  PPR_RETURN_IF_ERROR(reader.Finish());
  return FinishSolver(common,
                      std::unique_ptr<Solver>(new MonteCarloSolver(params)));
}

Result<std::unique_ptr<Solver>> MakeTwoPhase(const SolverSpec& spec,
                                             TwoPhaseSolver::Kind kind,
                                             bool default_indexed) {
  ParamDefaults params;
  bool indexed = default_indexed;
  double index_eps = 0.0;
  uint64_t seed = SolverContext::kDefaultSeed;
  uint64_t batch = 0;
  std::string cache_dir;
  CommonOptions common;
  OptionReader reader(spec);
  common.Read(reader);
  reader.Double("alpha", &params.alpha)
      .Double("eps", &params.epsilon)
      .Double("mu", &params.mu)
      .Uint64("seed", &seed)
      .String("cache_dir", &cache_dir);
  if (!default_indexed) {
    // The "-index" registry entries do not accept `indexed`: silently
    // honoring indexed=false would run the wrong variant under an
    // -index name.
    reader.Bool("indexed", &indexed);
  }
  if (kind == TwoPhaseSolver::Kind::kFora) {
    // batch= is a FORA-only fused tier: SpeedPPR's PowerPush scan has
    // its own epoch schedule that the multi-source kernel does not
    // replicate, so it keeps classic execution.
    reader.Double("index_eps", &index_eps).Uint64("batch", &batch);
  }
  PPR_RETURN_IF_ERROR(reader.Finish());
  PPR_RETURN_IF_ERROR(ValidateBatchOptions(batch, /*topk_early=*/false));
  if (!cache_dir.empty() && !indexed) {
    return Status::InvalidArgument(
        "option 'cache_dir' needs an index; use the -index variant or "
        "indexed=true");
  }
  return FinishSolver(common, std::unique_ptr<Solver>(new TwoPhaseSolver(
                                  kind, params, indexed, index_eps, seed,
                                  std::move(cache_dir), batch)));
}

Result<std::unique_ptr<Solver>> MakeDynTwoPhase(const SolverSpec& spec,
                                                TwoPhaseSolver::Kind kind) {
  ParamDefaults params;
  double index_eps = 0.0;
  double drift = DynamicWalkIndex::kDefaultDriftFactor;
  uint64_t seed = SolverContext::kDefaultSeed;
  CommonOptions common;
  OptionReader reader(spec);
  common.Read(reader);
  reader.Double("alpha", &params.alpha)
      .Double("eps", &params.epsilon)
      .Double("mu", &params.mu)
      .Uint64("seed", &seed);
  if (kind == TwoPhaseSolver::Kind::kFora) {
    // drift= only matters to the W-dependent kForaPlus sizing; the
    // d_v-sized dynspeedppr index has no ratio to re-derive.
    reader.Double("index_eps", &index_eps).Double("drift", &drift);
  }
  PPR_RETURN_IF_ERROR(reader.Finish());
  if (!std::isfinite(drift) || (drift != 0.0 && drift <= 1.0)) {
    return Status::InvalidArgument(
        "option 'drift' expects a factor > 1 (or 0 to disable); got " +
        std::to_string(drift));
  }
  return FinishSolver(common, std::unique_ptr<Solver>(new DynTwoPhaseSolver(
                                  kind, params, index_eps, seed, drift)));
}

Result<std::unique_ptr<Solver>> MakeResAcc(const SolverSpec& spec) {
  ParamDefaults params;
  CommonOptions common;
  OptionReader reader(spec);
  common.Read(reader);
  reader.Double("alpha", &params.alpha)
      .Double("eps", &params.epsilon)
      .Double("mu", &params.mu);
  PPR_RETURN_IF_ERROR(reader.Finish());
  return FinishSolver(common,
                      std::unique_ptr<Solver>(new ResAccSolver(params)));
}

Result<std::unique_ptr<Solver>> MakeBiPpr(const SolverSpec& spec) {
  ParamDefaults params;
  double delta = 0.0;
  double rmax = 0.0;
  CommonOptions common;
  OptionReader reader(spec);
  common.Read(reader);
  reader.Double("alpha", &params.alpha)
      .Double("eps", &params.epsilon)
      .Double("delta", &delta)
      .Double("rmax", &rmax);
  PPR_RETURN_IF_ERROR(reader.Finish());
  return FinishSolver(common, std::unique_ptr<Solver>(new BiPprSolver(
                                  params, delta, rmax)));
}

Result<std::unique_ptr<Solver>> MakeHubPpr(const SolverSpec& spec) {
  ParamDefaults params;
  uint64_t hubs = 0;
  double rmax = 1e-5;
  CommonOptions common;
  OptionReader reader(spec);
  common.Read(reader);
  reader.Double("alpha", &params.alpha)
      .Double("eps", &params.epsilon)
      .Uint64("hubs", &hubs)
      .Double("rmax", &rmax);
  PPR_RETURN_IF_ERROR(reader.Finish());
  return FinishSolver(common, std::unique_ptr<Solver>(new HubPprSolver(
                                  params, hubs, rmax)));
}

}  // namespace

void RegisterBuiltinSolvers(SolverRegistry* registry) {
  // Every solver additionally accepts the cross-cutting threads= and
  // order= options (see CommonOptions / docs/api.md).
  registry->Register(
      {"fwdpush", "FIFO Forward Push (Algorithm 2), l1 <= m*rmax",
       "alpha, lambda, rmax, batch, topk_early, threads, order",
       [](const SolverSpec& s) { return MakeForwardPush(s, false); }});
  registry->Register(
      {"prioritypush", "max-benefit-first Forward Push (push ablation)",
       "alpha, lambda, rmax, threads, order",
       [](const SolverSpec& s) { return MakeForwardPush(s, true); }});
  registry->Register(
      {"dynfwdpush",
       "incremental Forward Push on an evolving graph (ApplyUpdates)",
       "alpha, lambda, rmax, threads, order", MakeDynFwdPush});
  registry->Register(
      {"powerpush", "Power Iteration with Forward Push (Algorithm 3)",
       "alpha, lambda, epochs (0 = off), scan_threshold, queue_phase, "
       "threads, order",
       MakePowerPush});
  registry->Register({"powitr", "vanilla Power Iteration (Section 3.1)",
                      "alpha, lambda, batch, topk_early, threads, order",
                      MakePowerIteration});
  registry->Register({"pagerank",
                      "global PageRank (uniform teleport; ignores source)",
                      "alpha, lambda, threads, order", MakePageRank});
  registry->Register(
      {"bepi", "BePI block elimination (needs in-adjacency; lambda = delta)",
       "alpha, lambda, max_iterations, threads, order", MakeBepi});
  registry->Register({"mc", "plain Monte Carlo, W Chernoff-sized walks",
                      "alpha, eps, mu, threads, order", MakeMonteCarlo});
  registry->Register(
      {"fora", "FORA two-phase framework (Wang et al., KDD'17)",
       "alpha, eps, mu, indexed, index_eps, batch, seed, cache_dir, threads, "
       "order",
       [](const SolverSpec& s) {
         return MakeTwoPhase(s, TwoPhaseSolver::Kind::kFora, false);
       }});
  registry->Register(
      {"fora-index", "FORA+ with a pre-built eps-bound walk index",
       "alpha, eps, mu, index_eps, batch, seed, cache_dir, threads, order",
       [](const SolverSpec& s) {
         return MakeTwoPhase(s, TwoPhaseSolver::Kind::kFora, true);
       }});
  registry->Register(
      {"speedppr", "SpeedPPR (Algorithm 4), PowerPush + capped walks",
       "alpha, eps, mu, indexed, seed, cache_dir, threads, order",
       [](const SolverSpec& s) {
         return MakeTwoPhase(s, TwoPhaseSolver::Kind::kSpeedPpr, false);
       }});
  registry->Register(
      {"speedppr-index", "SpeedPPR with the eps-independent d_v walk index",
       "alpha, eps, mu, seed, cache_dir, threads, order",
       [](const SolverSpec& s) {
         return MakeTwoPhase(s, TwoPhaseSolver::Kind::kSpeedPpr, true);
       }});
  registry->Register(
      {"dynfora",
       "FORA+ on an evolving graph: maintained pushes + incremental walk "
       "refresh (ApplyUpdates)",
       "alpha, eps, mu, index_eps, drift, seed, threads, order",
       [](const SolverSpec& s) {
         return MakeDynTwoPhase(s, TwoPhaseSolver::Kind::kFora);
       }});
  registry->Register(
      {"dynspeedppr",
       "SpeedPPR-Index on an evolving graph: maintained pushes + "
       "incremental d_v walk refresh (ApplyUpdates)",
       "alpha, eps, mu, seed, threads, order",
       [](const SolverSpec& s) {
         return MakeDynTwoPhase(s, TwoPhaseSolver::Kind::kSpeedPpr);
       }});
  registry->Register({"resacc", "ResAcc residue accumulation (index-free)",
                      "alpha, eps, mu, threads, order", MakeResAcc});
  registry->Register(
      {"bippr",
       "BiPPR single-pair estimator (needs in-adjacency, no dead ends)",
       "alpha, eps, delta, rmax, threads, order", MakeBiPpr});
  registry->Register(
      {"hubppr", "HubPPR single-pair with precomputed hub oracles",
       "alpha, eps, hubs, rmax, threads, order", MakeHubPpr});
}

}  // namespace ppr
