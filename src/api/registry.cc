#include "api/registry.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "util/string_utils.h"

namespace ppr {

namespace {

std::string_view Trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace

Result<SolverSpec> ParseSolverSpec(std::string_view text) {
  SolverSpec spec;
  const size_t colon = text.find(':');
  spec.name = std::string(Trim(text.substr(0, colon)));
  if (spec.name.empty()) {
    return Status::InvalidArgument("empty solver name in spec '" +
                                   std::string(text) + "'");
  }
  if (colon == std::string_view::npos) return spec;

  std::string_view rest = text.substr(colon + 1);
  // SplitAndTrim drops empty pieces, which also forgives a trailing comma.
  for (std::string_view piece : SplitAndTrim(rest, ",")) {
    piece = Trim(piece);
    if (piece.empty()) continue;
    const size_t eq = piece.find('=');
    SolverSpec::Option option;
    option.key = std::string(Trim(piece.substr(0, eq)));
    option.value = eq == std::string_view::npos
                       ? "true"  // bare key is shorthand for key=true
                       : std::string(Trim(piece.substr(eq + 1)));
    if (option.key.empty()) {
      return Status::InvalidArgument("empty option key in spec '" +
                                     std::string(text) + "'");
    }
    spec.options.push_back(std::move(option));
  }
  return spec;
}

OptionReader::OptionReader(const SolverSpec& spec)
    : spec_(spec), consumed_(spec.options.size(), false) {}

const SolverSpec::Option* OptionReader::Take(std::string_view key) {
  const SolverSpec::Option* found = nullptr;
  for (size_t i = 0; i < spec_.options.size(); ++i) {
    if (spec_.options[i].key != key) continue;
    if (found != nullptr) {
      // Consume the duplicate too so Finish() reports the real problem
      // instead of "does not understand option".
      if (status_.ok()) {
        status_ = Status::InvalidArgument("duplicate option '" +
                                          std::string(key) + "'");
      }
    } else {
      found = &spec_.options[i];
    }
    consumed_[i] = true;
  }
  return found;
}

OptionReader& OptionReader::Double(std::string_view key, double* out) {
  const SolverSpec::Option* option = Take(key);
  if (option == nullptr) return *this;
  char* end = nullptr;
  const double value = std::strtod(option->value.c_str(), &end);
  if (end == option->value.c_str() || *end != '\0') {
    if (status_.ok()) {
      status_ = Status::InvalidArgument("option '" + option->key +
                                        "' expects a number, got '" +
                                        option->value + "'");
    }
    return *this;
  }
  *out = value;
  return *this;
}

OptionReader& OptionReader::Uint64(std::string_view key, uint64_t* out) {
  const SolverSpec::Option* option = Take(key);
  if (option == nullptr) return *this;
  uint64_t value = 0;
  if (!ParseUint64(option->value, &value)) {
    if (status_.ok()) {
      status_ = Status::InvalidArgument("option '" + option->key +
                                        "' expects a non-negative integer, "
                                        "got '" +
                                        option->value + "'");
    }
    return *this;
  }
  *out = value;
  return *this;
}

OptionReader& OptionReader::Int(std::string_view key, int* out) {
  uint64_t value = 0;
  const SolverSpec::Option* option = Take(key);
  if (option == nullptr) return *this;
  if (!ParseUint64(option->value, &value) ||
      value > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    if (status_.ok()) {
      status_ = Status::InvalidArgument("option '" + option->key +
                                        "' expects a small non-negative "
                                        "integer, got '" +
                                        option->value + "'");
    }
    return *this;
  }
  *out = static_cast<int>(value);
  return *this;
}

OptionReader& OptionReader::Bool(std::string_view key, bool* out) {
  const SolverSpec::Option* option = Take(key);
  if (option == nullptr) return *this;
  const std::string& v = option->value;
  if (v == "true" || v == "1" || v == "yes" || v == "on") {
    *out = true;
  } else if (v == "false" || v == "0" || v == "no" || v == "off") {
    *out = false;
  } else if (status_.ok()) {
    status_ = Status::InvalidArgument("option '" + option->key +
                                      "' expects a boolean, got '" + v + "'");
  }
  return *this;
}

OptionReader& OptionReader::String(std::string_view key, std::string* out) {
  const SolverSpec::Option* option = Take(key);
  if (option == nullptr) return *this;
  if (option->value.empty()) {
    if (status_.ok()) {
      status_ = Status::InvalidArgument("option '" + option->key +
                                        "' expects a value");
    }
    return *this;
  }
  *out = option->value;
  return *this;
}

Status OptionReader::Finish() const {
  if (!status_.ok()) return status_;
  for (size_t i = 0; i < spec_.options.size(); ++i) {
    if (!consumed_[i]) {
      return Status::InvalidArgument("solver '" + spec_.name +
                                     "' does not understand option '" +
                                     spec_.options[i].key + "'");
    }
  }
  return Status::OK();
}

SolverRegistry& SolverRegistry::Global() {
  static SolverRegistry* registry = [] {
    auto* r = new SolverRegistry();
    RegisterBuiltinSolvers(r);
    return r;
  }();
  return *registry;
}

void SolverRegistry::Register(Entry entry) {
  PPR_CHECK(!entry.name.empty());
  PPR_CHECK(Find(entry.name) == nullptr)
      << "duplicate solver name: " << entry.name;
  entries_.push_back(std::move(entry));
}

bool SolverRegistry::Contains(std::string_view name) const {
  return Find(name) != nullptr;
}

const SolverRegistry::Entry* SolverRegistry::Find(
    std::string_view name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

Result<std::unique_ptr<Solver>> SolverRegistry::Create(
    std::string_view spec_text) const {
  Result<SolverSpec> parsed = ParseSolverSpec(spec_text);
  if (!parsed.ok()) return parsed.status();
  const SolverSpec& spec = parsed.value();
  const Entry* entry = Find(spec.name);
  if (entry == nullptr) {
    std::string known;
    for (const std::string& name : Names()) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    return Status::NotFound("unknown solver '" + spec.name +
                            "'; registered: " + known);
  }
  return entry->factory(spec);
}

std::vector<std::string> SolverRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& entry : entries_) names.push_back(entry.name);
  std::sort(names.begin(), names.end());
  return names;
}

std::string SolverRegistry::HelpText() const {
  std::string text;
  for (const std::string& name : Names()) {
    const Entry* entry = Find(name);
    text += "  " + name + " — " + entry->summary;
    if (!entry->options_help.empty()) {
      text += " (options: " + entry->options_help + ")";
    }
    text += "\n";
  }
  return text;
}

}  // namespace ppr
