#include "api/batch_solver.h"

#include <limits>
#include <string>
#include <utility>

#include "eval/metrics.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/rng.h"

namespace ppr {

Status BatchSolver::SolveMany(std::span<const PprQuery> queries,
                              SolverContext& context,
                              std::vector<PprResult>* results,
                              std::vector<Status>* statuses,
                              std::span<const uint64_t> seeds,
                              std::span<const CancelToken* const> cancels) {
  PPR_CHECK(results != nullptr);
  const size_t count = queries.size();
  results->assign(count, PprResult{});
  std::vector<Status> local(count, Status::OK());

  auto finish = [&]() {
    Status first;
    for (const Status& s : local) {
      if (!s.ok()) {
        first = s;
        break;
      }
    }
    if (statuses != nullptr) *statuses = std::move(local);
    return first;
  };
  auto fail_all = [&](const Status& status) {
    for (Status& s : local) s = status;
  };

  if (graph_ == nullptr) {
    fail_all(Status::FailedPrecondition(
        "SolveMany() before a successful Prepare()"));
    return finish();
  }
  if (!seeds.empty() && seeds.size() != count) {
    fail_all(Status::InvalidArgument("seeds span must match queries"));
    return finish();
  }
  if (!cancels.empty() && cancels.size() != count) {
    fail_all(Status::InvalidArgument("cancels span must match queries"));
    return finish();
  }
  const size_t fuse = max_fused_ > 0 ? max_fused_ : 1;
  // The fused kernels index the flat n·B block through NodeId.
  if (static_cast<size_t>(graph_->num_nodes()) * fuse >
      std::numeric_limits<NodeId>::max()) {
    fail_all(Status::InvalidArgument(
        "batch=" + std::to_string(fuse) +
        " times the graph's node count overflows the block index"));
    return finish();
  }
  const CancelToken* block_token = context.cancel_token();
  if (block_token != nullptr) {
    Status pre = block_token->CheckNow();
    if (!pre.ok()) {
      fail_all(pre);
      return finish();
    }
  }
  // One fault site per API call, mirroring Solver::Solve.
  {
    Status fault = [] {
      PPR_FAULT_STATUS("solver.solve");
      return Status::OK();
    }();
    if (!fault.ok()) {
      fail_all(fault);
      return finish();
    }
  }

  // Per-query seeds: explicit, or split deterministically off one
  // context draw so an unseeded SolveMany is still reproducible from
  // the context's RNG state.
  std::vector<uint64_t> derived;
  if (seeds.empty()) {
    derived.resize(count);
    const uint64_t base = context.rng().NextUint64();
    for (size_t i = 0; i < count; ++i) {
      derived[i] = SplitStream(base, i).NextUint64();
    }
    seeds = derived;
  }

  const NodeId current_n = CurrentNumNodes();
  std::vector<PprQuery> block;
  std::vector<uint64_t> block_seeds;
  std::vector<const CancelToken*> block_cancels;
  std::vector<size_t> block_index;

  auto flush = [&]() {
    if (block.empty()) return;
    std::vector<PprResult> block_results(block.size());
    std::vector<Status> block_status(block.size(), Status::OK());
    Status structural =
        DoSolveMany(block, block_seeds, block_cancels, context,
                    block_results, block_status);
    Status block_check = Status::OK();
    if (structural.ok() && block_token != nullptr) {
      block_check = block_token->CheckNow();
    }
    for (size_t j = 0; j < block.size(); ++j) {
      const size_t i = block_index[j];
      Status qs = !structural.ok() ? structural : block_status[j];
      if (qs.ok() && !block_check.ok()) qs = block_check;
      if (qs.ok() && block_cancels[j] != nullptr) {
        qs = block_cancels[j]->CheckNow();
      }
      if (qs.ok()) {
        PprResult& r = block_results[j];
        if (!layout_permutation().empty()) {
          // Same gather-and-swap as Solver::Solve's layout remap.
          const NodeId n = static_cast<NodeId>(r.scores.size());
          std::vector<double>& scratch = *context.RemapScratch();
          scratch.resize(n);
          for (NodeId v = 0; v < n; ++v) scratch[v] = r.scores[LayoutOf(v)];
          r.scores.swap(scratch);
          if (!r.residues.empty()) {
            for (NodeId v = 0; v < n; ++v) {
              scratch[v] = r.residues[LayoutOf(v)];
            }
            r.residues.swap(scratch);
          }
        }
        r.solver = name();
        r.l1_bound = AdvertisedL1Bound(queries[i]);
        if (queries[i].top_k > 0) {
          r.top_nodes = TopK(r.scores, queries[i].top_k);
        }
        (*results)[i] = std::move(r);
      }
      local[i] = qs;
    }
    block.clear();
    block_seeds.clear();
    block_cancels.clear();
    block_index.clear();
  };

  for (size_t i = 0; i < count; ++i) {
    const PprQuery& query = queries[i];
    if (query.source >= current_n) {
      local[i] = Status::InvalidArgument("query source out of range");
      continue;
    }
    if (query.target != kNoTarget && query.target >= current_n) {
      local[i] = Status::InvalidArgument("query target out of range");
      continue;
    }
    const CancelToken* token = cancels.empty() ? nullptr : cancels[i];
    if (token != nullptr) {
      Status pre = token->CheckNow();
      if (!pre.ok()) {
        local[i] = pre;
        continue;
      }
    }
    PprQuery mapped = query;
    if (!layout_permutation().empty()) {
      mapped.source = LayoutOf(query.source);
      if (query.target != kNoTarget) mapped.target = LayoutOf(query.target);
    }
    block.push_back(mapped);
    block_seeds.push_back(seeds[i]);
    block_cancels.push_back(token);
    block_index.push_back(i);
    if (block.size() == fuse) flush();
  }
  flush();
  return finish();
}

}  // namespace ppr
