#ifndef PPR_API_BATCH_SOLVER_H_
#define PPR_API_BATCH_SOLVER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "api/context.h"
#include "api/query.h"
#include "api/solver.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace ppr {

/// A solver that can advance a block of queries through one fused
/// kernel pass (the `batch=` registry option on powitr / fwdpush /
/// fora). The contract is strict per-query equivalence: query i of
/// SolveMany() behaves exactly like
///
///   context.Reseed(seeds[i]);
///   solver.Solve(queries[i], context, &results[i]);
///
/// on the *same solver spec* — bit-identical for the walk-based
/// solvers, equal to ≤1e-12 FP reassociation for the SpMV kernels at
/// threads > 1 — at every batch size and thread count, with the same
/// advertised per-query ℓ1 bound. Queries are fused in submission
/// order into blocks of at most max_fused(); validation, cancellation
/// and result stamping mirror Solver::Solve per query.
class BatchSolver : public Solver {
 public:
  /// Widest block one fused kernel call advances (the batch= option);
  /// 0 means the solver is configured for classic per-query execution
  /// and AsBatch() hides it from batch-routing drivers.
  size_t max_fused() const { return max_fused_; }

  BatchSolver* AsBatch() override { return max_fused_ > 0 ? this : nullptr; }

  /// Answers `queries` in blocks of up to max_fused(). `results` is
  /// resized to queries.size(); entry i is valid iff its status is OK.
  /// `statuses` (optional) receives the per-query outcomes — a bad
  /// query (out-of-range source, expired token) fails alone without
  /// poisoning its block. `seeds` (optional, size queries.size())
  /// fixes each query's RNG stream; empty derives per-query seeds by
  /// SplitStream from one context RNG draw. `cancels` (optional, size
  /// queries.size(), entries nullable) attaches per-query cancellation,
  /// polled at sweep boundaries; the context's own token, when set,
  /// cancels whole blocks. Returns the first non-OK per-query status
  /// in submission order (OK when everything succeeded).
  [[nodiscard]] Status SolveMany(
      std::span<const PprQuery> queries, SolverContext& context,
      std::vector<PprResult>* results, std::vector<Status>* statuses = nullptr,
      std::span<const uint64_t> seeds = {},
      std::span<const CancelToken* const> cancels = {});

 protected:
  /// Registry factories configure the batch= option through this.
  void set_max_fused(size_t max_fused) { max_fused_ = max_fused; }

  /// Fused kernel body. Queries arrive validated and in layout space
  /// (like DoSolve); `statuses` arrives all-OK and may be downgraded
  /// per query (e.g. a per-query parameter the spec cannot serve) —
  /// a failed query's column must not affect its siblings. The return
  /// Status is structural and fails the whole block. `results[j]` must
  /// receive scores (residues when queries[j].want_residues) and stats;
  /// the wrapper stamps solver/l1_bound/top_nodes and remaps layouts.
  virtual Status DoSolveMany(std::span<const PprQuery> queries,
                             std::span<const uint64_t> seeds,
                             std::span<const CancelToken* const> cancels,
                             SolverContext& context,
                             std::span<PprResult> results,
                             std::span<Status> statuses) = 0;

 private:
  size_t max_fused_ = 0;
};

}  // namespace ppr

#endif  // PPR_API_BATCH_SOLVER_H_
