#ifndef PPR_API_SOLVER_H_
#define PPR_API_SOLVER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "api/context.h"
#include "api/query.h"
#include "graph/graph.h"
#include "util/status.h"

namespace ppr {

class BatchSolver;
class DynamicSolver;

/// Prepare-time CSR layouts selectable with the order= solver option
/// (§5 of the paper: storage order is part of PowerPush's win). The
/// solver permutes a private copy of the graph and transparently maps
/// queries in and results back, so callers always speak original ids.
enum class GraphOrder {
  kNone,    ///< solve on the caller's graph as-is (default)
  kDegree,  ///< hubs first (DegreeDescendingOrder): hot CSR rows cluster
  kBfs,     ///< BFS from the max-out-degree node: neighbors get nearby ids
};

/// Parses an order= option value ("none", "degree", "bfs").
Result<GraphOrder> ParseGraphOrder(std::string_view text);

/// What a solver computes, grouped the way the paper groups algorithms.
enum class SolverFamily {
  /// Deterministic ℓ1-bounded whole-vector estimate (FwdPush, PowerPush,
  /// PowItr, BePI): ‖π̂ − π‖₁ ≤ λ.
  kHighPrecision,
  /// Probabilistic (ε, μ) relative-error whole-vector estimate (MC,
  /// FORA, SpeedPPR, ResAcc).
  kApproximate,
  /// Single-pair π(s, t) estimators (BiPPR, HubPPR).
  kSinglePair,
  /// Source-independent global scores (PageRank).
  kGlobal,
};

const char* SolverFamilyName(SolverFamily family);

/// Static facts about a solver, used by drivers (batch, bench, CLI) to
/// pick fixtures, preconditions, and assertions without knowing the
/// concrete type.
struct SolverCapabilities {
  SolverFamily family = SolverFamily::kHighPrecision;
  /// PprResult::residues can be filled (push-style solvers).
  bool exposes_residues = false;
  /// Output depends on the context RNG state.
  bool randomized = false;
  /// Repeated Solve() calls on one SolverContext reuse its workspace
  /// with sparse resets (no full-vector assign after the first query).
  bool reuses_workspace = false;
  /// Prepare() requires Graph::BuildInAdjacency() to have been called.
  bool needs_in_adjacency = false;
  /// Prepare() requires a graph with no dead ends (backward push).
  bool needs_dead_end_free = false;
  /// Honors SolverContext::set_trace() convergence checkpoints.
  bool supports_trace = false;
  /// Prepare() builds a per-graph index (walk index, hub oracle, LU).
  bool has_index = false;
  /// The solver maintains its estimate under edge updates: it is a
  /// DynamicSolver (api/dynamic_solver.h) whose ApplyUpdates() repairs
  /// state incrementally instead of requiring a whole-graph re-Prepare.
  bool supports_updates = false;
};

/// The polymorphic SSPPR solver interface: every algorithm in src/core/
/// and src/approx/ (plus BePI) is reachable through it. Lifecycle:
///
///   auto solver = SolverRegistry::Global().Create("speedppr:eps=0.3");
///   solver->Prepare(graph);            // bind + build index if any
///   SolverContext context;             // per thread, reused across queries
///   PprResult result;
///   solver->Solve({.source = 42}, context, &result);
///
/// Solve() may be called any number of times after one Prepare(); the
/// graph must outlive the solver. Prepare() may be called again to
/// re-bind to a different graph.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Registry name ("powerpush", "speedppr", ...).
  virtual std::string_view name() const = 0;

  virtual SolverCapabilities capabilities() const = 0;

  /// Binds the solver to a graph and runs preprocessing (index builds).
  /// Validates the capability preconditions (in-adjacency, dead ends).
  [[nodiscard]] virtual Status Prepare(const Graph& graph);

  /// Answers one query. `result` is overwritten. Returns
  /// FailedPrecondition when Prepare() has not succeeded and
  /// InvalidArgument for out-of-range sources/targets. Concurrent calls
  /// on one solver are safe when each thread uses its own context —
  /// implementations must keep per-query mutable state in the
  /// SolverContext (BatchSolve relies on this).
  [[nodiscard]] Status Solve(const PprQuery& query, SolverContext& context,
                             PprResult* result);

  /// The ℓ1-error bound the solver advertises for this query — exact for
  /// the high-precision family (the push-termination certificate), a
  /// conservative testing bound for the probabilistic families (see
  /// docs/api.md). +infinity when nothing is claimed. Valid only after
  /// Prepare().
  virtual double AdvertisedL1Bound(const PprQuery& query) const;

  /// The graph queries run against: the caller's graph, or the solver's
  /// relabeled copy when an order= layout is configured.
  const Graph* graph() const { return graph_; }

  /// In-memory bytes of any prepared per-graph index (walk index, hub
  /// oracle, LU blocks); 0 for index-free solvers or before Prepare().
  /// The Table-2-style memory column, reachable without downcasting.
  virtual uint64_t IndexBytes() const { return 0; }

  /// The dynamic interface when capabilities().supports_updates, else
  /// nullptr — how drivers (PprServer, ppr_cli --updates) reach
  /// ApplyUpdates without downcasting by name.
  virtual DynamicSolver* AsDynamic() { return nullptr; }

  /// The fused-batch interface when the solver was configured with
  /// batch= > 0, else nullptr — how drivers (PprServer coalescing,
  /// eval/topk batch runners) reach SolveMany without downcasting.
  virtual BatchSolver* AsBatch() { return nullptr; }

  // ---- cross-cutting options (set by the registry factories) ----------

  /// Worker threads for the solver's parallel stages; 0 defers to
  /// ParallelThreadCount() for the thread-count-invariant stages (walk
  /// phases, single-pair materialization) and keeps the order-sensitive
  /// dense kernels serial (see docs/api.md, "Parallelism & determinism").
  void set_threads(unsigned threads) { threads_ = threads; }
  unsigned threads() const { return threads_; }

  /// Storage layout applied at the next Prepare().
  void set_graph_order(GraphOrder order) { order_ = order; }

 protected:
  /// Algorithm body; preconditions already validated by Solve(). Runs in
  /// layout space: query ids are already permuted and results are mapped
  /// back by Solve().
  virtual Status DoSolve(const PprQuery& query, SolverContext& context,
                         PprResult* result) = 0;

  /// threads= as the auto-parallelizing stages resolve it: the explicit
  /// count, else ParallelThreadCount(). Adapters use this instead of
  /// re-deriving it so the asymmetric policy — walk phases auto-scale,
  /// dense kernels stay serial at 0 — lives in one place.
  unsigned ResolvedWorkers() const;

  /// Original id → layout id under an order= layout; empty for kNone.
  /// Dynamic solvers map incoming update endpoints through it so their
  /// evolving graph stays in layout space (results map back via Solve).
  const std::vector<NodeId>& layout_permutation() const { return perm_; }

  /// Original id → layout id, identity beyond the Prepare-time node
  /// count: nodes added after Prepare (kAddNode) append to both spaces
  /// in arrival order, so the extension is exact. The single mapping
  /// rule for queries and updates once the graph can grow.
  NodeId LayoutOf(NodeId v) const {
    return v < perm_.size() ? perm_[v] : v;
  }

  /// Node count Solve() range-checks queries against. The static base
  /// answers with the Prepare-time graph; dynamic solvers override to
  /// their evolving graph so nodes added by ApplyUpdates are queryable
  /// (and removed ones stay addressable as isolated dead ends).
  virtual NodeId CurrentNumNodes() const {
    return graph_ == nullptr ? 0 : graph_->num_nodes();
  }

  const Graph* graph_ = nullptr;

 private:
  unsigned threads_ = 0;
  GraphOrder order_ = GraphOrder::kNone;
  /// Original id -> layout id; empty when order_ == kNone.
  std::vector<NodeId> perm_;
  /// The relabeled CSR copy graph_ points into under a layout.
  std::unique_ptr<Graph> permuted_;
};

}  // namespace ppr

#endif  // PPR_API_SOLVER_H_
