#ifndef PPR_API_CONTEXT_POOL_H_
#define PPR_API_CONTEXT_POOL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "api/context.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace ppr {

/// A fixed set of warm SolverContexts checked out per query.
///
/// The point: a SolverContext's sparse-reset contract makes the *second*
/// query on a context nearly free, so a server answering thousands of
/// queries should cycle a handful of contexts instead of constructing
/// one per query (each construction pays the next solve's full O(n)
/// workspace assign). The pool never grows — exhaustion blocks until a
/// lease returns, which is what keeps every context warm. With
/// capacity >= the number of serving threads, Acquire never blocks in
/// steady state.
///
/// Thread-safe. The handed-out SolverContext itself is single-threaded,
/// as always — the lease is exclusive until destroyed.
class ContextPool {
 public:
  /// Eagerly constructs `capacity` contexts (capacity >= 1). Context i
  /// starts seeded with SplitStream(seed, i); servers reseed per query
  /// anyway, so the initial seeds only matter for ad-hoc use.
  explicit ContextPool(size_t capacity,
                       uint64_t seed = SolverContext::kDefaultSeed);

  /// Exclusive handle on a pooled context; returns it on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&& other) noexcept;
    ~Lease() { Release(); }

    bool valid() const { return context_ != nullptr; }
    SolverContext& operator*() const { return *context_; }
    SolverContext* operator->() const { return context_; }

    /// Returns the context early (idempotent).
    void Release();

   private:
    friend class ContextPool;
    Lease(ContextPool* pool, SolverContext* context)
        : pool_(pool), context_(context) {}

    ContextPool* pool_ = nullptr;
    SolverContext* context_ = nullptr;
  };

  /// Blocks until a context is free.
  Lease Acquire() PPR_EXCLUDES(mu_);

  /// Returns an invalid lease instead of blocking when the pool is
  /// exhausted.
  std::optional<Lease> TryAcquire() PPR_EXCLUDES(mu_);

  /// Marks every context stale: the next Acquire of each performs a
  /// full workspace invalidation (SolverContext::InvalidateWorkspace)
  /// before handing it out. Called once per applied update batch by
  /// PprServer::ApplyUpdates; costs each context one full O(n) assign
  /// on its next query, after which sparse resets resume.
  void AdvanceEpoch() PPR_EXCLUDES(mu_);

  /// Number of AdvanceEpoch() calls so far.
  uint64_t epoch() const PPR_EXCLUDES(mu_);

  size_t capacity() const { return contexts_.size(); }
  size_t available() const PPR_EXCLUDES(mu_);

  /// Σ full_assigns() over every pooled context. Only meaningful when no
  /// lease is outstanding (the serve tests assert warm-pool steady state
  /// performs zero new full assigns).
  uint64_t TotalFullAssigns() const;
  /// Σ sparse_resets() over every pooled context; same caveat.
  uint64_t TotalSparseResets() const;

 private:
  void Return(SolverContext* context) PPR_EXCLUDES(mu_);
  /// Invalidates `context` if it has not seen the current epoch —
  /// the unlocked-checkout violation the negative-compile suite seeds.
  void RefreshForEpoch(SolverContext* context) PPR_REQUIRES(mu_);

  /// Immutable after construction (the pool never grows); only the
  /// free-list below needs the lock.
  std::vector<std::unique_ptr<SolverContext>> contexts_;
  mutable Mutex mu_;
  CondVar free_cv_;
  std::vector<SolverContext*> free_ PPR_GUARDED_BY(mu_);
  uint64_t epoch_ PPR_GUARDED_BY(mu_) = 0;
};

}  // namespace ppr

#endif  // PPR_API_CONTEXT_POOL_H_
