#ifndef PPR_API_DYNAMIC_SOLVER_H_
#define PPR_API_DYNAMIC_SOLVER_H_

#include <cstdint>

#include "api/solver.h"
#include "graph/dynamic_graph.h"

namespace ppr {

/// Work counters for one applied UpdateBatch.
struct UpdateStats {
  /// Repair push operations across every maintained estimate.
  uint64_t push_operations = 0;
  /// Walk-index repairs (dynamic approximate tier only): walks whose
  /// suffix was invalidated by a mutated adjacency row and resampled,
  /// plus fresh walks appended when a node's sizing target grew. 0 for
  /// index-free dynamic solvers.
  uint64_t walks_resampled = 0;
  /// Drift-triggered whole-index K_v re-derivations during this batch
  /// (dynamic approximate tier with the kForaPlus sizing only; see
  /// docs/api.md "Dynamic solvers" — resize & drift). 0 elsewhere.
  uint64_t resize_events = 0;
  /// Wall time inside ApplyUpdates.
  double seconds = 0.0;
  /// Graph epoch after the batch.
  uint64_t epoch = 0;
};

/// A Solver that maintains its estimates under graph updates — the
/// evolving-graph extension of the unified API. Where a static solver's
/// only reaction to a changed graph is a whole-graph re-Prepare(), a
/// DynamicSolver accepts an UpdateBatch — edge insertions/deletions
/// plus node additions/removals — and repairs its internal state
/// incrementally (O(d_u) algebraic corrections plus local pushes for
/// the push family), advancing a monotonically increasing epoch by one
/// per mutation.
///
/// Contract:
///
///  * `capabilities().supports_updates` is true and `AsDynamic()`
///    returns the solver, so drivers discover the interface without
///    name dispatch.
///  * `ApplyUpdates` validates the whole batch first (bounds,
///    self-loops, deletions of absent edges → InvalidArgument with
///    nothing applied), then applies it atomically with respect to
///    epochs: the epoch moves from e to e + one per mutation
///    (batch.size() for edge-only batches; a kRemoveNode lowers to its
///    incident edge deletions plus a marker, see
///    DynamicGraph::RemoveNode) and queries never observe an
///    intermediate state. Updates speak *original* node ids — a
///    configured order= layout is mapped internally, the same way Solve
///    maps queries; nodes added after Prepare extend both id spaces
///    identically (identity mapping) and are immediately queryable.
///  * After any applied update sequence, Solve results must stay within
///    AdvertisedL1Bound of a from-scratch solve on Snapshot() — the
///    dynamic conformance suite (tests/dynamic_solver_test.cc) holds
///    every dynamic solver to exactly that.
///  * `ApplyUpdates` must not run concurrently with Solve on the same
///    instance; PprServer::ApplyUpdates provides the epoch barrier that
///    serializes them under load (in-flight queries finish against the
///    epoch they started on).
class DynamicSolver : public Solver {
 public:
  DynamicSolver* AsDynamic() final { return this; }

  /// Applies the batch; see the contract above. `stats`, when non-null,
  /// receives the repair cost and the new epoch.
  [[nodiscard]] virtual Status ApplyUpdates(const UpdateBatch& batch,
                                            UpdateStats* stats = nullptr) = 0;

  /// Mutations applied since Prepare(). 0 before the first batch.
  virtual uint64_t epoch() const = 0;

  /// Immutable CSR copy of the current graph in *original* id space —
  /// what a from-scratch solver would be Prepared on to cross-check the
  /// incremental estimate.
  virtual Graph Snapshot() const = 0;
};

}  // namespace ppr

#endif  // PPR_API_DYNAMIC_SOLVER_H_
