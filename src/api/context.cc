#include "api/context.h"

namespace ppr {

SolverContext::SolverContext(uint64_t seed) : rng_(seed) {}

PprEstimate* SolverContext::AcquireEstimate(NodeId n, NodeId source) {
  PPR_CHECK(source < n);
  if (estimate_.reserve.size() != n || !estimate_clean_) {
    estimate_.reserve.assign(n, 0.0);
    estimate_.residue.assign(n, 0.0);
    full_assigns_++;
  } else {
    for (NodeId v : estimate_support_) {
      estimate_.reserve[v] = 0.0;
      estimate_.residue[v] = 0.0;
    }
    sparse_resets_++;
  }
  estimate_support_.clear();
  // Dirty until the solve records its support via Export/Release; a
  // solver that errors out mid-query therefore costs one full assign,
  // never a stale workspace.
  estimate_clean_ = false;
  estimate_.residue[source] = 1.0;
  return &estimate_;
}

std::vector<double>* SolverContext::AcquireScores(NodeId n) {
  if (scores_.size() != n || !scores_clean_) {
    scores_.assign(n, 0.0);
    full_assigns_++;
  } else {
    for (NodeId v : scores_support_) scores_[v] = 0.0;
    sparse_resets_++;
  }
  scores_support_.clear();
  scores_clean_ = false;
  return &scores_;
}

FifoQueue* SolverContext::AcquireQueue(NodeId n) {
  queue_.Reconfigure(n);
  return &queue_;
}

ThreadDenseBuffers* SolverContext::AcquireThreadBuffers(unsigned count,
                                                        NodeId n) {
  EnsureThreadBuffers(&thread_buffers_, count, n);
  return &thread_buffers_;
}

std::vector<double>* SolverContext::AcquireBlockScratch(size_t slot,
                                                        size_t size) {
  PPR_CHECK(slot < block_scratch_.size());
  std::vector<double>& buffer = block_scratch_[slot];
  buffer.assign(size, 0.0);
  return &buffer;
}

void SolverContext::ExportEstimate(bool with_residues, PprResult* result) {
  const NodeId n = static_cast<NodeId>(estimate_.reserve.size());
  result->scores.resize(n);
  if (with_residues) {
    result->residues.resize(n);
  } else {
    result->residues.clear();
  }
  estimate_support_.clear();
  for (NodeId v = 0; v < n; ++v) {
    const double reserve = estimate_.reserve[v];
    const double residue = estimate_.residue[v];
    result->scores[v] = reserve;
    if (with_residues) result->residues[v] = residue;
    if (reserve != 0.0 || residue != 0.0) estimate_support_.push_back(v);
  }
  estimate_clean_ = true;
}

void SolverContext::ExportScores(PprResult* result) {
  const NodeId n = static_cast<NodeId>(scores_.size());
  result->scores.resize(n);
  result->residues.clear();
  scores_support_.clear();
  for (NodeId v = 0; v < n; ++v) {
    const double score = scores_[v];
    result->scores[v] = score;
    if (score != 0.0) scores_support_.push_back(v);
  }
  scores_clean_ = true;
}

void SolverContext::ReleaseEstimate() {
  const NodeId n = static_cast<NodeId>(estimate_.reserve.size());
  estimate_support_.clear();
  for (NodeId v = 0; v < n; ++v) {
    if (estimate_.reserve[v] != 0.0 || estimate_.residue[v] != 0.0) {
      estimate_support_.push_back(v);
    }
  }
  estimate_clean_ = true;
}

}  // namespace ppr
