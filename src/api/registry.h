#ifndef PPR_API_REGISTRY_H_
#define PPR_API_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/solver.h"
#include "util/status.h"

namespace ppr {

/// A parsed solver spec string. Grammar (see docs/api.md):
///
///   spec   := name [ ":" option { "," option } ]
///   option := key [ "=" value ]
///
/// Whitespace around tokens is trimmed. A bare key is shorthand for
/// key=true. Examples: "powerpush", "speedppr:eps=0.1,indexed=true",
/// "fora:indexed".
struct SolverSpec {
  struct Option {
    std::string key;
    std::string value;
  };
  std::string name;
  std::vector<Option> options;
};

Result<SolverSpec> ParseSolverSpec(std::string_view spec);

/// Typed consumer for SolverSpec options, used by solver factories.
/// Getters record the first parse error and mark keys consumed;
/// Finish() reports that error or any key no getter asked for, so typos
/// in option strings fail loudly instead of silently configuring
/// nothing.
class OptionReader {
 public:
  explicit OptionReader(const SolverSpec& spec);

  OptionReader& Double(std::string_view key, double* out);
  OptionReader& Uint64(std::string_view key, uint64_t* out);
  OptionReader& Int(std::string_view key, int* out);
  OptionReader& Bool(std::string_view key, bool* out);
  /// Verbatim string value (order=, cache_dir=); empty values rejected.
  OptionReader& String(std::string_view key, std::string* out);

  Status Finish() const;

 private:
  const SolverSpec::Option* Take(std::string_view key);

  const SolverSpec& spec_;
  std::vector<bool> consumed_;
  Status status_;
};

/// name → solver factory. Benches, tests and the CLI dispatch through
/// Create("name:options") instead of #include-ing algorithm headers.
class SolverRegistry {
 public:
  using Factory =
      std::function<Result<std::unique_ptr<Solver>>(const SolverSpec&)>;

  struct Entry {
    std::string name;
    /// One-line description shown by the CLI's --help.
    std::string summary;
    /// Comma-separated option keys the factory understands.
    std::string options_help;
    Factory factory;
  };

  /// The process-wide registry, with every built-in solver registered.
  static SolverRegistry& Global();

  /// Registers a solver; the name must be unused.
  void Register(Entry entry);

  bool Contains(std::string_view name) const;
  const Entry* Find(std::string_view name) const;

  /// Parses `spec` and builds the solver. NotFound for unknown names,
  /// InvalidArgument for malformed specs or unknown option keys (the
  /// message lists the registered names / accepted keys).
  Result<std::unique_ptr<Solver>> Create(std::string_view spec) const;

  /// Registered names in sorted order.
  std::vector<std::string> Names() const;

  /// Multi-line "name — summary (options: ...)" listing for --help.
  std::string HelpText() const;

 private:
  std::vector<Entry> entries_;
};

/// Registers the built-in adapters (called once by Global(); exposed for
/// tests that build a private registry).
void RegisterBuiltinSolvers(SolverRegistry* registry);

}  // namespace ppr

#endif  // PPR_API_REGISTRY_H_
