#ifndef PPR_BEPI_BEPI_H_
#define PPR_BEPI_BEPI_H_

#include <memory>
#include <vector>

#include "bepi/slashburn.h"
#include "bepi/sparse_matrix.h"
#include "core/workspace.h"
#include "graph/graph.h"

namespace ppr {

/// Options for the BePI reimplementation (Jung et al., SIGMOD'17), the
/// paper's high-precision index-based competitor.
struct BepiOptions {
  double alpha = 0.2;
  SlashBurnOptions slashburn;
  /// Cap on Schur-complement iterations per query.
  uint64_t max_iterations = 1000;
};

/// Block-elimination PPR solver. Preprocessing reorders the nodes with
/// SlashBurn so that the spoke-spoke block H11 of
///
///     H = I − (1−α)·P₀ᵀ      (P₀ = transition matrix with dead-end rows
///                             zeroed; see the dead-end note below)
///
/// is block diagonal, factorizes each diagonal block with a dense LU, and
/// stores the H12 / H21 / H22 partitions. A query solves H·x = α·e_s by
/// eliminating the spoke block exactly and running a Richardson (power-
/// iteration-style) loop on the hub Schur complement — the structure that
/// gives BePI its fast queries and its large, density-sensitive index.
///
/// Dead ends: the paper's convention sends a dead end's mass back to the
/// query source, which would make H source-dependent. We instead solve
/// the absorbing system (zero rows in P₀) and rescale by
/// t = α / (α − (1−α)·D₀), D₀ = Σ_{dead v} x₀(v) — algebraically exact,
/// so BePI's output matches the other solvers' convention bit-for-bit in
/// the limit.
class BepiSolver {
 public:
  /// Builds the index. The graph's in-adjacency is required (call
  /// BuildInAdjacency() first). The graph must outlive the solver.
  static std::unique_ptr<BepiSolver> Preprocess(const Graph& graph,
                                                const BepiOptions& options);

  /// Solves for one source. `delta` is the convergence parameter: the
  /// loop stops when the ℓ2 distance between successive hub iterates
  /// drops below it (the BePI stopping rule used in the paper's §8). The
  /// result is written densely into *out (size n).
  SolveStats Solve(NodeId source, double delta,
                   std::vector<double>* out) const;

  /// Index footprint: LU factors + partition matrices + permutations —
  /// what Table 2 reports for BePI.
  uint64_t IndexBytes() const;
  double preprocess_seconds() const { return preprocess_seconds_; }
  NodeId num_spokes() const { return order_.num_spokes; }
  NodeId num_hubs() const {
    return static_cast<NodeId>(order_.perm.size()) - order_.num_spokes;
  }
  int slashburn_levels() const { return order_.levels; }

 private:
  BepiSolver() = default;

  /// y = H11⁻¹ · y, block by block (skips all-zero block slices).
  void SolveH11InPlace(std::vector<double>* y) const;

  const Graph* graph_ = nullptr;
  double alpha_ = 0.2;
  uint64_t max_iterations_ = 1000;
  SlashBurnResult order_;
  std::vector<DenseLu> block_lu_;   // one per diagonal block of H11
  CsrMatrix h12_;                   // spokes x hubs
  CsrMatrix h21_;                   // hubs x spokes
  CsrMatrix h22_;                   // hubs x hubs
  std::vector<uint8_t> dead_;       // permuted dead-end flags
  double preprocess_seconds_ = 0.0;
};

}  // namespace ppr

#endif  // PPR_BEPI_BEPI_H_
