#include "bepi/slashburn.h"

#include <algorithm>
#include <cmath>

#include "graph/components.h"
#include "util/logging.h"

namespace ppr {

namespace {

/// Undirected degree of v within the still-active node set.
uint64_t ActiveDegree(const Graph& graph, NodeId v,
                      const std::vector<uint8_t>& alive) {
  uint64_t degree = 0;
  for (NodeId u : graph.OutNeighbors(v)) degree += alive[u];
  for (NodeId u : graph.InNeighbors(v)) degree += alive[u];
  return degree;
}

}  // namespace

SlashBurnResult SlashBurn(const Graph& graph,
                          const SlashBurnOptions& options) {
  PPR_CHECK(graph.has_in_adjacency())
      << "SlashBurn needs the transpose; call Graph::BuildInAdjacency first";
  const NodeId n = graph.num_nodes();
  PPR_CHECK(n > 0);
  const NodeId k = options.hubs_per_round > 0
                       ? options.hubs_per_round
                       : std::max<NodeId>(1, static_cast<NodeId>(
                                                 std::ceil(0.005 * n)));
  const NodeId max_block = std::max<NodeId>(1, options.max_block);

  SlashBurnResult result;
  std::vector<uint8_t> alive(n, 1);
  NodeId active_count = n;

  std::vector<NodeId> spokes;        // old ids in final spoke order
  std::vector<NodeId> hubs;          // old ids in final hub order
  spokes.reserve(n);

  std::vector<NodeId> component;
  std::vector<NodeId> candidates;

  auto emit_block = [&](const std::vector<NodeId>& nodes) {
    NodeId begin = static_cast<NodeId>(spokes.size());
    spokes.insert(spokes.end(), nodes.begin(), nodes.end());
    result.blocks.emplace_back(begin, static_cast<NodeId>(spokes.size()));
  };

  while (active_count > 0) {
    if (active_count <= max_block) {
      // The final remnant fits in one diagonal block.
      component.clear();
      for (NodeId v = 0; v < n; ++v) {
        if (alive[v]) component.push_back(v);
      }
      for (NodeId v : component) alive[v] = 0;
      active_count = 0;
      emit_block(component);
      break;
    }

    // 1. Remove the k highest-degree active nodes ("slash").
    candidates.clear();
    for (NodeId v = 0; v < n; ++v) {
      if (alive[v]) candidates.push_back(v);
    }
    const NodeId take = std::min<NodeId>(k, active_count);
    std::nth_element(candidates.begin(), candidates.begin() + take - 1,
                     candidates.end(), [&](NodeId a, NodeId b) {
                       return ActiveDegree(graph, a, alive) >
                              ActiveDegree(graph, b, alive);
                     });
    for (NodeId i = 0; i < take; ++i) {
      hubs.push_back(candidates[i]);
      alive[candidates[i]] = 0;
    }
    active_count -= take;
    result.levels++;

    if (active_count == 0) break;

    // 2. Decompose the remainder into connected components ("burn");
    //    the giant component survives to the next round, the rest become
    //    spoke blocks (or hubs, if too large for a dense LU block).
    ComponentResult decomposition = WeaklyConnectedComponents(graph, alive);
    std::vector<std::vector<NodeId>> components(
        decomposition.num_components());
    for (NodeId v = 0; v < n; ++v) {
      if (alive[v]) components[decomposition.component_of[v]].push_back(v);
    }
    const size_t giant = decomposition.giant;

    for (size_t c = 0; c < components.size(); ++c) {
      if (c == giant) continue;  // survives to the next round
      const std::vector<NodeId>& nodes = components[c];
      if (nodes.size() <= max_block) {
        emit_block(nodes);
      } else {
        // An oversized satellite component cannot be a dense-LU block;
        // promote its nodes to hubs (rare on heavy-tailed graphs).
        hubs.insert(hubs.end(), nodes.begin(), nodes.end());
      }
      for (NodeId v : nodes) alive[v] = 0;
      active_count -= static_cast<NodeId>(nodes.size());
    }
  }

  result.num_spokes = static_cast<NodeId>(spokes.size());
  result.inverse = std::move(spokes);
  result.inverse.insert(result.inverse.end(), hubs.begin(), hubs.end());
  PPR_CHECK(result.inverse.size() == n);
  result.perm.assign(n, 0);
  for (NodeId pos = 0; pos < n; ++pos) {
    result.perm[result.inverse[pos]] = pos;
  }
  return result;
}

}  // namespace ppr
