#ifndef PPR_BEPI_SPARSE_MATRIX_H_
#define PPR_BEPI_SPARSE_MATRIX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/logging.h"

namespace ppr {

/// A sparse (row, col, value) entry used to assemble CSR matrices.
struct Triplet {
  uint32_t row;
  uint32_t col;
  double value;
};

/// Double-precision CSR sparse matrix — the numerical substrate of the
/// BePI reimplementation (partition blocks of H = I − (1−α)P₀ᵀ).
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Assembles from triplets (need not be sorted; duplicates are summed).
  static CsrMatrix FromTriplets(uint32_t rows, uint32_t cols,
                                std::vector<Triplet> triplets);

  uint32_t rows() const { return rows_; }
  uint32_t cols() const { return cols_; }
  uint64_t nnz() const { return values_.size(); }

  /// y = A·x. x.size() == cols(), y.size() == rows().
  void Multiply(std::span<const double> x, std::span<double> y) const;

  /// y -= A·x (fused form used by the Schur iteration).
  void MultiplySubtract(std::span<const double> x, std::span<double> y) const;

  /// Row access for algorithms that stream rows.
  std::span<const uint32_t> RowCols(uint32_t r) const {
    PPR_DCHECK(r < rows_);
    return {cols_idx_.data() + offsets_[r], cols_idx_.data() + offsets_[r + 1]};
  }
  std::span<const double> RowValues(uint32_t r) const {
    PPR_DCHECK(r < rows_);
    return {values_.data() + offsets_[r], values_.data() + offsets_[r + 1]};
  }

  uint64_t SizeBytes() const {
    return offsets_.size() * sizeof(uint64_t) +
           cols_idx_.size() * sizeof(uint32_t) +
           values_.size() * sizeof(double);
  }

 private:
  uint32_t rows_ = 0;
  uint32_t cols_ = 0;
  std::vector<uint64_t> offsets_;
  std::vector<uint32_t> cols_idx_;
  std::vector<double> values_;
};

/// Dense LU factorization with partial pivoting for the small diagonal
/// blocks of H11. Factor once at preprocessing time, then Solve per query
/// in O(b²) for block size b.
class DenseLu {
 public:
  /// Factorizes the b×b row-major matrix `a`. Aborts on exact singularity
  /// (cannot happen for H11 blocks, which are strictly diagonally
  /// dominant M-matrix blocks).
  static DenseLu Factorize(std::vector<double> a, uint32_t b);

  /// Solves L·U·x = b_in (in place: b_in becomes x).
  void Solve(std::span<double> b_in) const;

  uint32_t size() const { return b_; }
  uint64_t SizeBytes() const {
    return lu_.size() * sizeof(double) + pivots_.size() * sizeof(uint32_t);
  }

 private:
  uint32_t b_ = 0;
  std::vector<double> lu_;        // packed L (unit diag) and U
  std::vector<uint32_t> pivots_;  // row permutation
};

}  // namespace ppr

#endif  // PPR_BEPI_SPARSE_MATRIX_H_
