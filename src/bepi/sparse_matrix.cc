#include "bepi/sparse_matrix.h"

#include <algorithm>
#include <cmath>

namespace ppr {

CsrMatrix CsrMatrix::FromTriplets(uint32_t rows, uint32_t cols,
                                  std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    PPR_CHECK(t.row < rows && t.col < cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  // Sum duplicates.
  size_t out = 0;
  for (size_t i = 0; i < triplets.size(); ++i) {
    if (out > 0 && triplets[out - 1].row == triplets[i].row &&
        triplets[out - 1].col == triplets[i].col) {
      triplets[out - 1].value += triplets[i].value;
    } else {
      triplets[out++] = triplets[i];
    }
  }
  triplets.resize(out);

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.offsets_.assign(static_cast<size_t>(rows) + 1, 0);
  for (const Triplet& t : triplets) m.offsets_[t.row + 1]++;
  for (uint32_t r = 0; r < rows; ++r) m.offsets_[r + 1] += m.offsets_[r];
  m.cols_idx_.resize(triplets.size());
  m.values_.resize(triplets.size());
  for (size_t i = 0; i < triplets.size(); ++i) {
    m.cols_idx_[i] = triplets[i].col;
    m.values_[i] = triplets[i].value;
  }
  return m;
}

void CsrMatrix::Multiply(std::span<const double> x,
                         std::span<double> y) const {
  PPR_DCHECK(x.size() == cols_ && y.size() == rows_);
  for (uint32_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (uint64_t i = offsets_[r]; i < offsets_[r + 1]; ++i) {
      sum += values_[i] * x[cols_idx_[i]];
    }
    y[r] = sum;
  }
}

void CsrMatrix::MultiplySubtract(std::span<const double> x,
                                 std::span<double> y) const {
  PPR_DCHECK(x.size() == cols_ && y.size() == rows_);
  for (uint32_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (uint64_t i = offsets_[r]; i < offsets_[r + 1]; ++i) {
      sum += values_[i] * x[cols_idx_[i]];
    }
    y[r] -= sum;
  }
}

DenseLu DenseLu::Factorize(std::vector<double> a, uint32_t b) {
  PPR_CHECK(a.size() == static_cast<size_t>(b) * b);
  DenseLu lu;
  lu.b_ = b;
  lu.pivots_.resize(b);
  auto at = [&a, b](uint32_t r, uint32_t c) -> double& {
    return a[static_cast<size_t>(r) * b + c];
  };

  for (uint32_t k = 0; k < b; ++k) {
    // Partial pivoting.
    uint32_t pivot = k;
    double best = std::fabs(at(k, k));
    for (uint32_t r = k + 1; r < b; ++r) {
      double mag = std::fabs(at(r, k));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    PPR_CHECK(best > 0.0) << "singular block in H11 LU";
    lu.pivots_[k] = pivot;
    if (pivot != k) {
      for (uint32_t c = 0; c < b; ++c) std::swap(at(k, c), at(pivot, c));
    }
    const double inv = 1.0 / at(k, k);
    for (uint32_t r = k + 1; r < b; ++r) {
      const double factor = at(r, k) * inv;
      at(r, k) = factor;
      if (factor == 0.0) continue;
      for (uint32_t c = k + 1; c < b; ++c) at(r, c) -= factor * at(k, c);
    }
  }
  lu.lu_ = std::move(a);
  return lu;
}

void DenseLu::Solve(std::span<double> b_in) const {
  PPR_DCHECK(b_in.size() == b_);
  const auto at = [this](uint32_t r, uint32_t c) {
    return lu_[static_cast<size_t>(r) * b_ + c];
  };
  // Apply the pivot permutation, then forward/backward substitution.
  for (uint32_t k = 0; k < b_; ++k) {
    if (pivots_[k] != k) std::swap(b_in[k], b_in[pivots_[k]]);
  }
  for (uint32_t r = 1; r < b_; ++r) {
    double sum = b_in[r];
    for (uint32_t c = 0; c < r; ++c) sum -= at(r, c) * b_in[c];
    b_in[r] = sum;
  }
  for (uint32_t r = b_; r-- > 0;) {
    double sum = b_in[r];
    for (uint32_t c = r + 1; c < b_; ++c) sum -= at(r, c) * b_in[c];
    b_in[r] = sum / at(r, r);
  }
}

}  // namespace ppr
