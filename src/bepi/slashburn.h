#ifndef PPR_BEPI_SLASHBURN_H_
#define PPR_BEPI_SLASHBURN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace ppr {

/// Result of the SlashBurn-style hub/spoke reordering (Kang & Faloutsos,
/// ICDM'11 — the ordering BePI builds on).
///
/// Nodes are permuted so that positions [0, num_spokes) hold "spoke"
/// nodes whose induced subgraph decomposes into the listed connected
/// blocks (no edges between different blocks in either direction), and
/// positions [num_spokes, n) hold the "hub" nodes removed along the way.
/// This makes the H11 partition of BePI's linear system block diagonal.
struct SlashBurnResult {
  /// old id -> new position.
  std::vector<NodeId> perm;
  /// new position -> old id.
  std::vector<NodeId> inverse;
  /// Number of spoke positions (n1 in BePI's notation).
  NodeId num_spokes = 0;
  /// [begin, end) position ranges of the diagonal blocks within the spoke
  /// region, in increasing position order.
  std::vector<std::pair<NodeId, NodeId>> blocks;
  /// Number of hub-removal rounds performed.
  int levels = 0;
};

struct SlashBurnOptions {
  /// Hubs removed per round; 0 selects ceil(0.005 * n).
  NodeId hubs_per_round = 0;
  /// Spoke components larger than this are promoted to hubs so that every
  /// diagonal block stays small enough for a dense LU factorization.
  NodeId max_block = 256;
};

/// Runs the reordering. Connectivity is taken over the undirected version
/// of the graph (the union of out- and in-edges), so block diagonality
/// holds for both H12/H21 directions. Requires/loads the in-adjacency.
SlashBurnResult SlashBurn(const Graph& graph, const SlashBurnOptions& options);

}  // namespace ppr

#endif  // PPR_BEPI_SLASHBURN_H_
