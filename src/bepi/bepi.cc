#include "bepi/bepi.h"

#include <cmath>

#include "util/timer.h"

namespace ppr {

std::unique_ptr<BepiSolver> BepiSolver::Preprocess(const Graph& graph,
                                                   const BepiOptions& options) {
  PPR_CHECK(graph.has_in_adjacency())
      << "BePI needs the transpose; call Graph::BuildInAdjacency first";
  Timer timer;
  auto solver = std::unique_ptr<BepiSolver>(new BepiSolver());
  solver->graph_ = &graph;
  solver->alpha_ = options.alpha;
  solver->max_iterations_ = options.max_iterations;
  solver->order_ = SlashBurn(graph, options.slashburn);

  const NodeId n = graph.num_nodes();
  const NodeId n1 = solver->order_.num_spokes;
  const NodeId n2 = n - n1;
  const double scale = -(1.0 - options.alpha);
  const std::vector<NodeId>& perm = solver->order_.perm;

  solver->dead_.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (graph.OutDegree(v) == 0) solver->dead_[perm[v]] = 1;
  }

  // Map every permuted spoke position to its diagonal block.
  std::vector<uint32_t> block_of(n1, 0);
  for (uint32_t b = 0; b < solver->order_.blocks.size(); ++b) {
    auto [begin, end] = solver->order_.blocks[b];
    for (NodeId p = begin; p < end; ++p) block_of[p] = b;
  }

  // Assemble the partitions of H = I − (1−α)P₀ᵀ in permuted space. The
  // off-diagonal entry for edge (u → w) lands at H[perm[w]][perm[u]] with
  // value −(1−α)/d_u; dead-end rows of P₀ are zero, contributing nothing.
  std::vector<Triplet> t12;
  std::vector<Triplet> t21;
  std::vector<Triplet> t22;
  // H22's identity diagonal (H11's is added into the dense blocks below;
  // H12/H21 are purely off-diagonal partitions).
  for (NodeId i = 0; i < n2; ++i) t22.push_back({i, i, 1.0});
  std::vector<std::vector<double>> blocks_dense(
      solver->order_.blocks.size());
  for (uint32_t b = 0; b < solver->order_.blocks.size(); ++b) {
    auto [begin, end] = solver->order_.blocks[b];
    const size_t size = end - begin;
    blocks_dense[b].assign(size * size, 0.0);
    for (size_t i = 0; i < size; ++i) blocks_dense[b][i * size + i] = 1.0;
  }

  for (NodeId u = 0; u < n; ++u) {
    const NodeId d = graph.OutDegree(u);
    if (d == 0) continue;
    const double value = scale / d;
    const NodeId cu = perm[u];
    for (NodeId w : graph.OutNeighbors(u)) {
      const NodeId rw = perm[w];
      if (rw < n1 && cu < n1) {
        const uint32_t b = block_of[rw];
        PPR_CHECK(block_of[cu] == b)
            << "SlashBurn produced a cross-block spoke edge";
        const NodeId begin = solver->order_.blocks[b].first;
        const size_t size =
            solver->order_.blocks[b].second - begin;
        blocks_dense[b][static_cast<size_t>(rw - begin) * size +
                        (cu - begin)] += value;
      } else if (rw < n1) {
        t12.push_back({rw, static_cast<uint32_t>(cu - n1), value});
      } else if (cu < n1) {
        t21.push_back({static_cast<uint32_t>(rw - n1), cu, value});
      } else {
        t22.push_back({static_cast<uint32_t>(rw - n1),
                       static_cast<uint32_t>(cu - n1), value});
      }
    }
  }

  solver->block_lu_.reserve(blocks_dense.size());
  for (uint32_t b = 0; b < blocks_dense.size(); ++b) {
    auto [begin, end] = solver->order_.blocks[b];
    solver->block_lu_.push_back(DenseLu::Factorize(
        std::move(blocks_dense[b]), static_cast<uint32_t>(end - begin)));
  }
  solver->h12_ = CsrMatrix::FromTriplets(n1, n2, std::move(t12));
  solver->h21_ = CsrMatrix::FromTriplets(n2, n1, std::move(t21));
  solver->h22_ = CsrMatrix::FromTriplets(n2, n2, std::move(t22));

  solver->preprocess_seconds_ = timer.ElapsedSeconds();
  return solver;
}

void BepiSolver::SolveH11InPlace(std::vector<double>* y) const {
  for (size_t b = 0; b < block_lu_.size(); ++b) {
    auto [begin, end] = order_.blocks[b];
    std::span<double> slice(y->data() + begin, end - begin);
    bool nonzero = false;
    for (double v : slice) {
      if (v != 0.0) {
        nonzero = true;
        break;
      }
    }
    if (nonzero) block_lu_[b].Solve(slice);
  }
}

SolveStats BepiSolver::Solve(NodeId source, double delta,
                             std::vector<double>* out) const {
  const NodeId n = graph_->num_nodes();
  PPR_CHECK(source < n);
  const NodeId n1 = order_.num_spokes;
  const NodeId n2 = n - n1;
  Timer timer;
  SolveStats stats;

  // Right-hand side q = α·e_{perm(source)} split into (q1, q2).
  std::vector<double> q1(n1, 0.0);
  std::vector<double> q2(n2, 0.0);
  const NodeId ps = order_.perm[source];
  if (ps < n1) {
    q1[ps] = alpha_;
  } else {
    q2[ps - n1] = alpha_;
  }

  // t1 = H11⁻¹ q1;  b2 = q2 − H21 t1.
  std::vector<double> t1 = q1;
  SolveH11InPlace(&t1);
  std::vector<double> b2 = q2;
  if (n2 > 0 && n1 > 0) h21_.MultiplySubtract(t1, b2);

  // Richardson iteration on the Schur complement S = H22 − H21 H11⁻¹ H12:
  //   x2 ← b2 + (I − S)·x2.
  std::vector<double> x2(n2, 0.0);
  if (n2 > 0) {
    std::vector<double> w1(n1, 0.0);
    std::vector<double> sx(n2, 0.0);
    std::vector<double> next(n2, 0.0);
    for (uint64_t it = 0; it < max_iterations_; ++it) {
      if (n1 > 0) {
        h12_.Multiply(x2, w1);
        SolveH11InPlace(&w1);
      }
      h22_.Multiply(x2, sx);                    // sx = H22 x2
      if (n1 > 0) h21_.MultiplySubtract(w1, sx);  // sx = S x2
      double diff2 = 0.0;
      for (NodeId i = 0; i < n2; ++i) {
        next[i] = b2[i] + x2[i] - sx[i];
        const double d = next[i] - x2[i];
        diff2 += d * d;
      }
      x2.swap(next);
      stats.iterations++;
      stats.edge_pushes += h12_.nnz() + h21_.nnz() + h22_.nnz();
      if (std::sqrt(diff2) <= delta) break;
    }
  }

  // Back-substitute the spoke part: x1 = H11⁻¹ (q1 − H12 x2).
  std::vector<double> x1 = q1;
  if (n1 > 0 && n2 > 0) h12_.MultiplySubtract(x2, x1);
  SolveH11InPlace(&x1);

  // Dead-end correction: rescale the absorbing solution so it matches the
  // dead-end→source random-walk convention exactly.
  double dead_mass = 0.0;
  for (NodeId p = 0; p < n1; ++p) {
    if (dead_[p]) dead_mass += x1[p];
  }
  for (NodeId p = n1; p < n; ++p) {
    if (dead_[p]) dead_mass += x2[p - n1];
  }
  double rescale = 1.0;
  const double denom = alpha_ - (1.0 - alpha_) * dead_mass;
  PPR_CHECK(denom > 0.0) << "dead-end mass too large for rescaling";
  rescale = alpha_ / denom;

  out->assign(n, 0.0);
  for (NodeId p = 0; p < n1; ++p) (*out)[order_.inverse[p]] = x1[p] * rescale;
  for (NodeId p = n1; p < n; ++p) {
    (*out)[order_.inverse[p]] = x2[p - n1] * rescale;
  }

  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

uint64_t BepiSolver::IndexBytes() const {
  uint64_t bytes = 0;
  for (const DenseLu& lu : block_lu_) bytes += lu.SizeBytes();
  bytes += h12_.SizeBytes() + h21_.SizeBytes() + h22_.SizeBytes();
  bytes += order_.perm.size() * sizeof(NodeId) * 2;
  return bytes;
}

}  // namespace ppr
