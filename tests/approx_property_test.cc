// Property sweeps for the approximate algorithms: (graph family × ε ×
// algorithm) — the randomized counterpart of property_invariants_test.
// Each case checks the §2 contract (relative error on nodes with
// π ≥ 1/n), that the estimate is a near-probability vector, and
// determinism under a fixed seed.

#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "approx/fora.h"
#include "approx/resacc.h"
#include "approx/speedppr.h"
#include "eval/metrics.h"
#include "test_util.h"

namespace ppr {
namespace {

enum class Algo { kSpeedPpr, kSpeedPprIndex, kFora, kForaIndex, kResAcc };

const char* AlgoName(Algo a) {
  switch (a) {
    case Algo::kSpeedPpr: return "speedppr";
    case Algo::kSpeedPprIndex: return "speedppr_idx";
    case Algo::kFora: return "fora";
    case Algo::kForaIndex: return "fora_idx";
    case Algo::kResAcc: return "resacc";
  }
  return "?";
}

enum class Family { kStar, kComplete, kGrid, kEr, kBa, kCl };

const char* FamilyName(Family f) {
  switch (f) {
    case Family::kStar: return "star";
    case Family::kComplete: return "complete";
    case Family::kGrid: return "grid";
    case Family::kEr: return "er";
    case Family::kBa: return "ba";
    case Family::kCl: return "chunglu";
  }
  return "?";
}

Graph MakeFamily(Family f) {
  Rng rng(4242);
  switch (f) {
    case Family::kStar: return StarGraph(60);
    case Family::kComplete: return CompleteGraph(20);
    case Family::kGrid: return GridGraph(8, 8);
    case Family::kEr: return ErdosRenyi(150, 5.0, rng);
    case Family::kBa: return BarabasiAlbert(150, 3, rng);
    case Family::kCl: return ChungLuPowerLaw(200, 6.0, 2.5, rng);
  }
  __builtin_unreachable();
}

using Param = std::tuple<Family, double, Algo>;

class ApproxProperty : public ::testing::TestWithParam<Param> {
 protected:
  void Run(uint64_t seed, std::vector<double>* out) {
    ApproxOptions options;
    options.epsilon = std::get<1>(GetParam());
    Rng rng(seed);
    const Algo algo = std::get<2>(GetParam());
    switch (algo) {
      case Algo::kSpeedPpr:
        SpeedPpr(graph_, 0, options, rng, out);
        break;
      case Algo::kSpeedPprIndex:
        EnsureIndex(WalkIndex::Sizing::kSpeedPpr, options);
        SpeedPpr(graph_, 0, options, rng, out, index_.get());
        break;
      case Algo::kFora:
        Fora(graph_, 0, options, rng, out);
        break;
      case Algo::kForaIndex:
        EnsureIndex(WalkIndex::Sizing::kForaPlus, options);
        Fora(graph_, 0, options, rng, out, index_.get());
        break;
      case Algo::kResAcc:
        ResAcc(graph_, 0, options, rng, out);
        break;
    }
  }

  void EnsureIndex(WalkIndex::Sizing sizing, const ApproxOptions& options) {
    if (index_ != nullptr) return;
    Rng rng(7);
    const uint64_t w = ChernoffWalkCount(
        graph_.num_nodes(), options.epsilon,
        options.ResolvedMu(graph_.num_nodes()));
    index_ = std::make_unique<WalkIndex>(
        WalkIndex::Build(graph_, 0.2, sizing, w, rng));
  }

  Graph graph_ = MakeFamily(std::get<0>(GetParam()));
  std::unique_ptr<WalkIndex> index_;
};

TEST_P(ApproxProperty, MeetsRelativeErrorContract) {
  std::vector<double> exact = testing::ExactPprDense(graph_, 0, 0.2);
  std::vector<double> estimate;
  Run(/*seed=*/1234, &estimate);
  const double mu = 1.0 / graph_.num_nodes();
  const double eps = std::get<1>(GetParam());
  // ResAcc's renormalization is approximate (see header); grant it the
  // same slack the paper's Figure 8 shows it needing.
  const double allowed =
      std::get<2>(GetParam()) == Algo::kResAcc ? 2.0 * eps : eps;
  EXPECT_LE(MaxRelativeError(estimate, exact, mu), allowed);
}

TEST_P(ApproxProperty, EstimateIsNearProbabilityVector) {
  std::vector<double> estimate;
  Run(/*seed=*/99, &estimate);
  EXPECT_NEAR(testing::Sum(estimate), 1.0, 0.02);
  for (double v : estimate) ASSERT_GE(v, 0.0);
}

TEST_P(ApproxProperty, DeterministicUnderFixedSeed) {
  std::vector<double> a;
  std::vector<double> b;
  Run(/*seed=*/5, &a);
  index_.reset();  // rebuilt identically (Rng(7) inside)
  Run(/*seed=*/5, &b);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ApproxProperty,
    ::testing::Combine(
        ::testing::Values(Family::kStar, Family::kComplete, Family::kGrid,
                          Family::kEr, Family::kBa, Family::kCl),
        ::testing::Values(0.5, 0.25),
        ::testing::Values(Algo::kSpeedPpr, Algo::kSpeedPprIndex, Algo::kFora,
                          Algo::kForaIndex, Algo::kResAcc)),
    [](const ::testing::TestParamInfo<Param>& info) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%s_e%02d_%s",
                    FamilyName(std::get<0>(info.param)),
                    static_cast<int>(std::get<1>(info.param) * 100),
                    AlgoName(std::get<2>(info.param)));
      return std::string(buf);
    });

}  // namespace
}  // namespace ppr
