#include "util/d_heap.h"

#include <algorithm>
#include <queue>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ppr {
namespace {

TEST(DHeapTest, StartsEmpty) {
  DHeap h(10);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
  EXPECT_FALSE(h.Contains(3));
}

TEST(DHeapTest, InsertAndTop) {
  DHeap h(10);
  h.Update(3, 1.0);
  h.Update(5, 3.0);
  h.Update(7, 2.0);
  EXPECT_EQ(h.size(), 3u);
  EXPECT_EQ(h.Top(), 5u);
  EXPECT_DOUBLE_EQ(h.TopPriority(), 3.0);
}

TEST(DHeapTest, PopsInPriorityOrder) {
  DHeap h(16);
  const std::vector<double> priorities = {0.5, 9.1, 3.3, 7.7, 1.2, 8.8};
  for (uint32_t k = 0; k < priorities.size(); ++k) h.Update(k, priorities[k]);
  std::vector<double> popped;
  while (!h.empty()) {
    popped.push_back(h.TopPriority());
    h.PopTop();
  }
  std::vector<double> sorted = priorities;
  std::sort(sorted.rbegin(), sorted.rend());
  EXPECT_EQ(popped, sorted);
}

TEST(DHeapTest, IncreaseKeyMovesUp) {
  DHeap h(8);
  h.Update(0, 1.0);
  h.Update(1, 2.0);
  h.Update(2, 3.0);
  h.Update(0, 10.0);
  EXPECT_EQ(h.Top(), 0u);
  EXPECT_DOUBLE_EQ(h.PriorityOf(0), 10.0);
}

TEST(DHeapTest, DecreaseKeyMovesDown) {
  DHeap h(8);
  h.Update(0, 10.0);
  h.Update(1, 2.0);
  h.Update(2, 3.0);
  h.Update(0, 0.5);
  EXPECT_EQ(h.Top(), 2u);
  EXPECT_TRUE(h.Contains(0));
  EXPECT_DOUBLE_EQ(h.PriorityOf(0), 0.5);
}

TEST(DHeapTest, RemoveArbitraryKey) {
  DHeap h(8);
  for (uint32_t k = 0; k < 6; ++k) h.Update(k, k * 1.0);
  h.Remove(3);
  EXPECT_FALSE(h.Contains(3));
  EXPECT_EQ(h.size(), 5u);
  h.Remove(3);  // idempotent
  EXPECT_EQ(h.size(), 5u);
  // Remaining keys still pop in order.
  std::vector<uint32_t> popped;
  while (!h.empty()) popped.push_back(h.PopTop());
  EXPECT_EQ(popped, (std::vector<uint32_t>{5, 4, 2, 1, 0}));
}

TEST(DHeapTest, ReinsertAfterPop) {
  DHeap h(4);
  h.Update(1, 5.0);
  EXPECT_EQ(h.PopTop(), 1u);
  EXPECT_FALSE(h.Contains(1));
  h.Update(1, 7.0);
  EXPECT_TRUE(h.Contains(1));
  EXPECT_DOUBLE_EQ(h.TopPriority(), 7.0);
}

TEST(DHeapTest, RandomizedAgainstStdPriorityQueue) {
  Rng rng(99);
  constexpr uint32_t kUniverse = 200;
  DHeap h(kUniverse);
  std::vector<double> current(kUniverse, -1.0);  // -1 = absent
  for (int op = 0; op < 20000; ++op) {
    const uint32_t key = static_cast<uint32_t>(rng.NextBounded(kUniverse));
    const double action = rng.NextDouble();
    if (action < 0.6) {
      const double priority = rng.NextDouble();
      h.Update(key, priority);
      current[key] = priority;
    } else if (action < 0.8) {
      h.Remove(key);
      current[key] = -1.0;
    } else if (!h.empty()) {
      const uint32_t top = h.PopTop();
      // Verify the popped key had the maximum live priority.
      const double expected =
          *std::max_element(current.begin(), current.end());
      ASSERT_DOUBLE_EQ(current[top], expected);
      current[top] = -1.0;
    }
    // Membership bookkeeping stays consistent.
    ASSERT_EQ(h.Contains(key), current[key] >= 0.0);
  }
}

}  // namespace
}  // namespace ppr
