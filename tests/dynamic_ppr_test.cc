#include "core/dynamic_ppr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/forward_push.h"
#include "test_util.h"

namespace ppr {
namespace {

/// ℓ1 distance between the tracker's reserve and a from-scratch dense
/// solve on the current snapshot.
double ErrorVsScratch(const DynamicSsppr& tracker, const DynamicGraph& dg) {
  Graph snapshot = dg.Snapshot();
  std::vector<double> exact =
      testing::ExactPprDense(snapshot, tracker.source(), 0.2);
  double l1 = 0.0;
  for (NodeId v = 0; v < snapshot.num_nodes(); ++v) {
    l1 += std::fabs(tracker.estimate().reserve[v] - exact[v]);
  }
  return l1;
}

TEST(DynamicGraphTest, SnapshotRoundTripsStaticGraph) {
  Graph g = PaperExampleGraph();
  DynamicGraph dg(g);
  Graph snapshot = dg.Snapshot();
  EXPECT_EQ(snapshot.out_offsets(), g.out_offsets());
  EXPECT_EQ(snapshot.out_targets(), g.out_targets());
}

TEST(DynamicGraphTest, SnapshotKeepsTrailingIsolatedNodes) {
  DynamicGraph dg(10);
  dg.AddEdge(0, 1);
  Graph snapshot = dg.Snapshot();
  EXPECT_EQ(snapshot.num_nodes(), 10u);
  EXPECT_EQ(snapshot.num_edges(), 1u);
}

TEST(DynamicGraphTest, AddEdgeUpdatesDegreeAndCount) {
  DynamicGraph dg(4);
  dg.AddEdge(0, 1);
  dg.AddEdge(0, 2);
  EXPECT_EQ(dg.OutDegree(0), 2u);
  EXPECT_EQ(dg.num_edges(), 2u);
}

TEST(DynamicSspprTest, InitialStateMatchesStaticPush) {
  Graph g = PaperExampleGraph();
  DynamicGraph dg(g);
  DynamicSsppr::Options options;
  options.rmax = 1e-8;
  DynamicSsppr tracker(&dg, 0, options);
  EXPECT_LT(ErrorVsScratch(tracker, dg), 13 * 2 * options.rmax);
}

TEST(DynamicSspprTest, SingleInsertionRepairsExactly) {
  Graph g = PaperExampleGraph();
  DynamicGraph dg(g);
  DynamicSsppr::Options options;
  options.rmax = 1e-9;
  DynamicSsppr tracker(&dg, 0, options);
  // Add an edge the example graph lacks: v1 -> v4 (0 -> 3).
  tracker.AddEdge(0, 3);
  const double bound = 2.0 * dg.num_edges() * options.rmax;
  EXPECT_LT(ErrorVsScratch(tracker, dg), bound);
}

TEST(DynamicSspprTest, RandomInsertionStreamStaysAccurate) {
  Rng rng(7);
  Graph g = ErdosRenyi(60, 3.0, rng);
  DynamicGraph dg(g);
  DynamicSsppr::Options options;
  options.rmax = 1e-9;
  DynamicSsppr tracker(&dg, 0, options);
  for (int i = 0; i < 100; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(dg.num_nodes()));
    NodeId w = static_cast<NodeId>(rng.NextBounded(dg.num_nodes()));
    if (u == w) continue;
    tracker.AddEdge(u, w);
    if (i % 10 == 0) {
      const double bound = 2.0 * dg.num_edges() * options.rmax;
      ASSERT_LT(ErrorVsScratch(tracker, dg), bound) << "after " << i;
    }
  }
  EXPECT_LT(ErrorVsScratch(tracker, dg),
            2.0 * dg.num_edges() * options.rmax);
}

TEST(DynamicSspprTest, MassStaysConserved) {
  Rng rng(9);
  Graph g = CycleGraph(30);
  DynamicGraph dg(g);
  DynamicSsppr::Options options;
  options.rmax = 1e-8;
  DynamicSsppr tracker(&dg, 5, options);
  for (int i = 0; i < 50; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(30));
    NodeId w = static_cast<NodeId>(rng.NextBounded(30));
    if (u == w) continue;
    tracker.AddEdge(u, w);
    // Invariant: reserve mass + signed residue mass == 1 exactly (the
    // algebraic correction conserves the signed total).
    double signed_residue = 0.0;
    for (double r : tracker.estimate().residue) signed_residue += r;
    ASSERT_NEAR(tracker.estimate().ReserveSum() + signed_residue, 1.0,
                1e-9);
  }
}

TEST(DynamicSspprTest, DeadEndGainingItsFirstEdge) {
  // Path 0->1->2: node 2 is a dead end. Adding 2->0 changes its
  // effective row from e_source to e_0 (here the same node — pick source
  // 1 to make them differ).
  Graph g = PathGraph(3);
  DynamicGraph dg(g);
  DynamicSsppr::Options options;
  options.rmax = 1e-10;
  DynamicSsppr tracker(&dg, 1, options);
  tracker.AddEdge(2, 0);
  EXPECT_LT(ErrorVsScratch(tracker, dg),
            2.0 * dg.num_edges() * options.rmax + 1e-9);
}

TEST(DynamicSspprTest, InsertionTouchingSourceRow) {
  Graph g = PaperExampleGraph();
  DynamicGraph dg(g);
  DynamicSsppr::Options options;
  options.rmax = 1e-10;
  DynamicSsppr tracker(&dg, 0, options);
  tracker.AddEdge(0, 4);  // source gains an out-edge
  EXPECT_LT(ErrorVsScratch(tracker, dg),
            2.0 * dg.num_edges() * options.rmax + 1e-9);
}

TEST(DynamicSspprTest, IncrementalBeatsScratchOnWork) {
  // The point of the tracker: repairing after one insertion costs far
  // fewer pushes than re-running from scratch.
  Rng rng(11);
  Graph g = ChungLuPowerLaw(500, 6.0, 2.5, rng);
  DynamicGraph dg(g);
  DynamicSsppr::Options options;
  options.rmax = 1e-8;
  DynamicSsppr tracker(&dg, 0, options);

  uint64_t incremental = tracker.AddEdge(10, 20);

  ForwardPushOptions scratch_options;
  scratch_options.rmax = options.rmax;
  PprEstimate scratch;
  SolveStats scratch_stats =
      FifoForwardPush(dg.Snapshot(), 0, scratch_options, &scratch);
  EXPECT_LT(incremental * 10, scratch_stats.push_operations)
      << "repair should be at least 10x cheaper than re-solving";
}

TEST(DynamicSspprTest, ResidueL1ReportsBound) {
  Graph g = CycleGraph(12);
  DynamicGraph dg(g);
  DynamicSsppr::Options options;
  options.rmax = 1e-6;
  DynamicSsppr tracker(&dg, 0, options);
  // After Refresh, every |r| <= deff * rmax.
  EXPECT_LE(tracker.ResidueL1(),
            (dg.num_edges() + 1) * options.rmax + 1e-15);
}

}  // namespace
}  // namespace ppr
