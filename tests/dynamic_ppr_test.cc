#include "core/dynamic_ppr.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/forward_push.h"
#include "eval/query_gen.h"
#include "test_util.h"

namespace ppr {
namespace {

/// ℓ1 distance between the tracker's reserve and a from-scratch dense
/// solve on the current snapshot.
double ErrorVsScratch(const DynamicSsppr& tracker, const DynamicGraph& dg,
                      double alpha = 0.2) {
  Graph snapshot = dg.Snapshot();
  std::vector<double> exact =
      testing::ExactPprDense(snapshot, tracker.source(), alpha);
  double l1 = 0.0;
  for (NodeId v = 0; v < snapshot.num_nodes(); ++v) {
    l1 += std::fabs(tracker.estimate().reserve[v] - exact[v]);
  }
  return l1;
}

/// The tracker's own certificate: Σ|r| bounds the true error, and push
/// termination bounds Σ|r| by (m + #dead-ends)·rmax.
double CertifiedBound(const DynamicGraph& dg, double rmax) {
  return static_cast<double>(dg.num_edges() + dg.num_dead_ends()) * rmax;
}

TEST(DynamicGraphTest, SnapshotRoundTripsStaticGraph) {
  Graph g = PaperExampleGraph();
  DynamicGraph dg(g);
  Graph snapshot = dg.Snapshot();
  EXPECT_EQ(snapshot.out_offsets(), g.out_offsets());
  EXPECT_EQ(snapshot.out_targets(), g.out_targets());
}

TEST(DynamicGraphTest, SnapshotKeepsTrailingIsolatedNodes) {
  DynamicGraph dg(10);
  dg.AddEdge(0, 1);
  Graph snapshot = dg.Snapshot();
  EXPECT_EQ(snapshot.num_nodes(), 10u);
  EXPECT_EQ(snapshot.num_edges(), 1u);
}

TEST(DynamicGraphTest, AddEdgeUpdatesDegreeAndCount) {
  DynamicGraph dg(4);
  dg.AddEdge(0, 1);
  dg.AddEdge(0, 2);
  EXPECT_EQ(dg.OutDegree(0), 2u);
  EXPECT_EQ(dg.num_edges(), 2u);
}

TEST(DynamicSspprTest, InitialStateMatchesStaticPush) {
  Graph g = PaperExampleGraph();
  DynamicGraph dg(g);
  DynamicSsppr::Options options;
  options.rmax = 1e-8;
  DynamicSsppr tracker(&dg, 0, options);
  EXPECT_LT(ErrorVsScratch(tracker, dg), 13 * 2 * options.rmax);
}

TEST(DynamicSspprTest, SingleInsertionRepairsExactly) {
  Graph g = PaperExampleGraph();
  DynamicGraph dg(g);
  DynamicSsppr::Options options;
  options.rmax = 1e-9;
  DynamicSsppr tracker(&dg, 0, options);
  // Add an edge the example graph lacks: v1 -> v4 (0 -> 3).
  tracker.AddEdge(0, 3);
  const double bound = 2.0 * dg.num_edges() * options.rmax;
  EXPECT_LT(ErrorVsScratch(tracker, dg), bound);
}

TEST(DynamicSspprTest, RandomInsertionStreamStaysAccurate) {
  Rng rng(7);
  Graph g = ErdosRenyi(60, 3.0, rng);
  DynamicGraph dg(g);
  DynamicSsppr::Options options;
  options.rmax = 1e-9;
  DynamicSsppr tracker(&dg, 0, options);
  for (int i = 0; i < 100; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(dg.num_nodes()));
    NodeId w = static_cast<NodeId>(rng.NextBounded(dg.num_nodes()));
    if (u == w) continue;
    tracker.AddEdge(u, w);
    if (i % 10 == 0) {
      const double bound = 2.0 * dg.num_edges() * options.rmax;
      ASSERT_LT(ErrorVsScratch(tracker, dg), bound) << "after " << i;
    }
  }
  EXPECT_LT(ErrorVsScratch(tracker, dg),
            2.0 * dg.num_edges() * options.rmax);
}

TEST(DynamicSspprTest, MassStaysConserved) {
  Rng rng(9);
  Graph g = CycleGraph(30);
  DynamicGraph dg(g);
  DynamicSsppr::Options options;
  options.rmax = 1e-8;
  DynamicSsppr tracker(&dg, 5, options);
  for (int i = 0; i < 50; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(30));
    NodeId w = static_cast<NodeId>(rng.NextBounded(30));
    if (u == w) continue;
    tracker.AddEdge(u, w);
    // Invariant: reserve mass + signed residue mass == 1 exactly (the
    // algebraic correction conserves the signed total).
    double signed_residue = 0.0;
    for (double r : tracker.estimate().residue) signed_residue += r;
    ASSERT_NEAR(tracker.estimate().ReserveSum() + signed_residue, 1.0,
                1e-9);
  }
}

TEST(DynamicSspprTest, DeadEndGainingItsFirstEdge) {
  // Path 0->1->2: node 2 is a dead end. Adding 2->0 changes its
  // effective row from e_source to e_0 (here the same node — pick source
  // 1 to make them differ).
  Graph g = PathGraph(3);
  DynamicGraph dg(g);
  DynamicSsppr::Options options;
  options.rmax = 1e-10;
  DynamicSsppr tracker(&dg, 1, options);
  tracker.AddEdge(2, 0);
  EXPECT_LT(ErrorVsScratch(tracker, dg),
            2.0 * dg.num_edges() * options.rmax + 1e-9);
}

TEST(DynamicSspprTest, InsertionTouchingSourceRow) {
  Graph g = PaperExampleGraph();
  DynamicGraph dg(g);
  DynamicSsppr::Options options;
  options.rmax = 1e-10;
  DynamicSsppr tracker(&dg, 0, options);
  tracker.AddEdge(0, 4);  // source gains an out-edge
  EXPECT_LT(ErrorVsScratch(tracker, dg),
            2.0 * dg.num_edges() * options.rmax + 1e-9);
}

TEST(DynamicSspprTest, IncrementalBeatsScratchOnWork) {
  // The point of the tracker: repairing after one insertion costs far
  // fewer pushes than re-running from scratch.
  Rng rng(11);
  Graph g = ChungLuPowerLaw(500, 6.0, 2.5, rng);
  DynamicGraph dg(g);
  DynamicSsppr::Options options;
  options.rmax = 1e-8;
  DynamicSsppr tracker(&dg, 0, options);

  uint64_t incremental = tracker.AddEdge(10, 20);

  ForwardPushOptions scratch_options;
  scratch_options.rmax = options.rmax;
  PprEstimate scratch;
  SolveStats scratch_stats =
      FifoForwardPush(dg.Snapshot(), 0, scratch_options, &scratch);
  EXPECT_LT(incremental * 10, scratch_stats.push_operations)
      << "repair should be at least 10x cheaper than re-solving";
}

TEST(DynamicGraphTest, RemoveEdgeUpdatesDegreeCountAndDeadEnds) {
  DynamicGraph dg(4);
  dg.AddEdge(0, 1);
  dg.AddEdge(0, 2);
  dg.AddEdge(1, 2);
  EXPECT_EQ(dg.num_dead_ends(), 2u);  // 2 and 3
  dg.RemoveEdge(0, 1);
  EXPECT_EQ(dg.OutDegree(0), 1u);
  EXPECT_EQ(dg.num_edges(), 2u);
  dg.RemoveEdge(1, 2);
  EXPECT_EQ(dg.num_dead_ends(), 3u);  // 1 became a dead end
  dg.AddEdge(1, 3);
  EXPECT_EQ(dg.num_dead_ends(), 2u);
}

TEST(DynamicGraphTest, EpochAndFingerprintTrackMutationHistory) {
  Graph g = PaperExampleGraph();
  DynamicGraph a(g);
  DynamicGraph b(g);
  EXPECT_EQ(a.epoch(), 0u);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  a.AddEdge(0, 3);
  EXPECT_EQ(a.epoch(), 1u);
  EXPECT_NE(a.fingerprint(), b.fingerprint());

  // Same history → same (epoch, fingerprint).
  b.AddEdge(0, 3);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  // Different kinds of mutation on the same endpoints diverge.
  a.RemoveEdge(0, 3);
  DynamicGraph c(g);
  c.AddEdge(0, 3);
  c.AddEdge(0, 3);
  EXPECT_EQ(a.epoch(), c.epoch());
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(DynamicGraphTest, ApplyValidatesAtomically) {
  Graph g = PathGraph(4);  // 0->1->2->3
  DynamicGraph dg(g);
  const uint64_t epoch_before = dg.epoch();
  const uint64_t fp_before = dg.fingerprint();

  // Invalid in the middle: the second update deletes a missing edge.
  UpdateBatch bad;
  bad.Insert(0, 2).Delete(3, 0).Insert(1, 3);
  Status status = dg.Apply(bad);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(dg.epoch(), epoch_before);
  EXPECT_EQ(dg.fingerprint(), fp_before);
  EXPECT_EQ(dg.num_edges(), g.num_edges());

  // Out-of-range and self-loop updates are refused up front.
  UpdateBatch oob;
  oob.Insert(0, 99);
  EXPECT_EQ(dg.Apply(oob).code(), StatusCode::kInvalidArgument);
  UpdateBatch loop;
  loop.Insert(2, 2);
  EXPECT_EQ(dg.Apply(loop).code(), StatusCode::kInvalidArgument);

  // A batch may delete an edge it inserted earlier...
  UpdateBatch ok;
  ok.Insert(3, 0).Delete(3, 0).Delete(0, 1);
  ASSERT_TRUE(dg.Apply(ok).ok());
  EXPECT_EQ(dg.epoch(), epoch_before + 3);
  EXPECT_EQ(dg.EdgeMultiplicity(3, 0), 0u);
  EXPECT_EQ(dg.EdgeMultiplicity(0, 1), 0u);

  // ...but cannot delete the same occurrence twice.
  UpdateBatch twice;
  twice.Delete(1, 2).Delete(1, 2);
  EXPECT_EQ(dg.Apply(twice).code(), StatusCode::kInvalidArgument);
}

TEST(DynamicSspprTest, SingleDeletionRepairsExactly) {
  Graph g = PaperExampleGraph();
  DynamicGraph dg(g);
  DynamicSsppr::Options options;
  options.rmax = 1e-9;
  DynamicSsppr tracker(&dg, 0, options);
  // Remove an edge the example graph has; the correction grows the
  // surviving neighbors' share and takes the target's away.
  const NodeId u = 0;
  ASSERT_GT(dg.OutDegree(u), 1u);
  const NodeId w = dg.OutNeighbors(u)[0];
  tracker.RemoveEdge(u, w);
  EXPECT_LT(ErrorVsScratch(tracker, dg),
            2.0 * CertifiedBound(dg, options.rmax) + 1e-12);
}

TEST(DynamicSspprTest, DeletionCreatingADeadEnd) {
  // Path 0->1->2 with source 0: deleting (1, 2) turns node 1 into a
  // dead end, flipping its row from e_2 to e_source — the mirror of a
  // dead end gaining its first edge.
  Graph g = PathGraph(3);
  DynamicGraph dg(g);
  DynamicSsppr::Options options;
  options.rmax = 1e-10;
  DynamicSsppr tracker(&dg, 0, options);
  tracker.RemoveEdge(1, 2);
  EXPECT_EQ(dg.num_dead_ends(), 2u);
  EXPECT_LT(ErrorVsScratch(tracker, dg),
            2.0 * CertifiedBound(dg, options.rmax) + 1e-9);
  // And back: the dead end regains an edge.
  tracker.AddEdge(1, 2);
  EXPECT_LT(ErrorVsScratch(tracker, dg),
            2.0 * CertifiedBound(dg, options.rmax) + 1e-9);
}

TEST(DynamicSspprTest, NegativeResidueStaysBoundedAndAccurate) {
  // A loose rmax keeps the insertion correction parked in the residue
  // vector (|Δr| < deff·rmax, so no push fires), where the old
  // neighbor's entry must go negative — its transition probability
  // shrank; the |r|-based bound still holds.
  Graph g = CycleGraph(8);
  DynamicGraph dg(g);
  DynamicSsppr::Options options;
  options.rmax = 0.4;
  DynamicSsppr tracker(&dg, 0, options);
  tracker.AddEdge(1, 4);  // node 1 holds reserve; its old row shrinks
  const auto& residue = tracker.estimate().residue;
  EXPECT_LT(*std::min_element(residue.begin(), residue.end()), 0.0)
      << "insertion into a reserve-carrying row must leave a negative "
         "residue at this rmax";
  EXPECT_LT(ErrorVsScratch(tracker, dg), tracker.ResidueL1() + 1e-12);
  EXPECT_LE(tracker.ResidueL1(), CertifiedBound(dg, options.rmax) + 1e-12);
}

TEST(DynamicSspprTest, RandomInsertDeleteBatchesAcrossAlphasAndSeeds) {
  // The tentpole cross-check: mixed insert/delete streams, several
  // alphas and seeds, tracker vs dense exact on Snapshot() after every
  // chunk — within Σ|r|, which itself stays within (m+k)·rmax.
  for (double alpha : {0.1, 0.2, 0.5}) {
    for (uint64_t seed : {3u, 11u}) {
      Rng rng(seed);
      Graph g = ErdosRenyi(50, 3.0, rng);
      DynamicGraph dg(g);
      DynamicSsppr::Options options;
      options.alpha = alpha;
      options.rmax = 1e-9;
      DynamicSspprPool pool(&dg, options);
      DynamicSsppr& tracker = pool.TrackerFor(0);

      UpdateWorkloadOptions workload;
      workload.count = 80;
      workload.delete_fraction = 0.4;
      workload.seed = seed * 1000 + 1;
      UpdateBatch stream =
          GenerateUpdateStream(g, workload).ValueOrDie();
      constexpr size_t kChunks = 4;
      for (size_t c = 0; c < kChunks; ++c) {
        UpdateBatch chunk;
        chunk.updates.assign(
            stream.updates.begin() + c * stream.size() / kChunks,
            stream.updates.begin() + (c + 1) * stream.size() / kChunks);
        ASSERT_TRUE(pool.Apply(chunk).ok())
            << "alpha=" << alpha << " seed=" << seed << " chunk=" << c;
        ASSERT_LT(ErrorVsScratch(tracker, dg, alpha),
                  tracker.ResidueL1() + 1e-11)
            << "alpha=" << alpha << " seed=" << seed << " chunk=" << c;
        ASSERT_LE(tracker.ResidueL1(),
                  CertifiedBound(dg, options.rmax) + 1e-12);
      }
    }
  }
}

TEST(DynamicSspprPoolTest, TrackersShareOneUpdateStream) {
  Rng rng(5);
  Graph g = ErdosRenyi(40, 3.0, rng);
  DynamicGraph dg(g);
  DynamicSsppr::Options options;
  options.rmax = 1e-9;
  DynamicSspprPool pool(&dg, options);
  DynamicSsppr& a = pool.TrackerFor(0);
  DynamicSsppr& b = pool.TrackerFor(7);
  EXPECT_EQ(pool.tracker_count(), 2u);
  EXPECT_EQ(&pool.TrackerFor(0), &a) << "trackers must be stable";

  UpdateWorkloadOptions workload;
  workload.count = 30;
  workload.delete_fraction = 0.3;
  workload.seed = 21;
  uint64_t pushes = 0;
  ASSERT_TRUE(
      pool.Apply(GenerateUpdateStream(g, workload).ValueOrDie(), &pushes)
          .ok());
  EXPECT_GT(pushes, 0u);
  // One graph mutation pass repaired *both* per-source estimates.
  EXPECT_LT(ErrorVsScratch(a, dg), 2.0 * CertifiedBound(dg, options.rmax));
  EXPECT_LT(ErrorVsScratch(b, dg), 2.0 * CertifiedBound(dg, options.rmax));

  // A tracker created *after* updates starts from the current graph.
  DynamicSsppr& late = pool.TrackerFor(3);
  EXPECT_LT(ErrorVsScratch(late, dg), 2.0 * CertifiedBound(dg, options.rmax));

  // An invalid batch leaves the pool and graph untouched.
  const uint64_t epoch_before = dg.epoch();
  UpdateBatch bad;
  bad.Delete(0, 0);
  EXPECT_EQ(pool.Apply(bad).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(dg.epoch(), epoch_before);
}

TEST(DynamicSspprTest, ResidueL1ReportsBound) {
  Graph g = CycleGraph(12);
  DynamicGraph dg(g);
  DynamicSsppr::Options options;
  options.rmax = 1e-6;
  DynamicSsppr tracker(&dg, 0, options);
  // After Refresh, every |r| <= deff * rmax.
  EXPECT_LE(tracker.ResidueL1(),
            (dg.num_edges() + 1) * options.rmax + 1e-15);
}

}  // namespace
}  // namespace ppr
