// Direct unit coverage for the small utilities that other tests only
// exercise indirectly: Timer, ConvergenceTrace, log-level plumbing.

#include <gtest/gtest.h>

#include "core/trace.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/timer.h"

namespace ppr {
namespace {

TEST(TimerTest, ElapsedIsMonotone) {
  Timer timer;
  double a = timer.ElapsedSeconds();
  double b = timer.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  EXPECT_NEAR(timer.ElapsedMillis(), timer.ElapsedSeconds() * 1e3,
              timer.ElapsedMillis() * 0.5 + 1.0);
}

TEST(TimerTest, ResetRestartsClock) {
  Timer timer;
  // Burn a little time.
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  double before = timer.ElapsedSeconds();
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), before + 1e-3);
}

TEST(ConvergenceTraceTest, ZeroIntervalNeverDue) {
  ConvergenceTrace trace(0);
  trace.Start();
  EXPECT_FALSE(trace.Due(0));
  EXPECT_FALSE(trace.Due(1ULL << 40));
  // Record still works for solver-chosen checkpoints.
  trace.Record(10, 0.5);
  ASSERT_EQ(trace.points().size(), 1u);
  EXPECT_EQ(trace.points()[0].updates, 10u);
}

TEST(ConvergenceTraceTest, DueFiresAtIntervalMultiples) {
  ConvergenceTrace trace(100);
  trace.Start();
  EXPECT_FALSE(trace.Due(99));
  EXPECT_TRUE(trace.Due(100));
  trace.Record(150, 0.9);  // advances the next boundary past 150
  EXPECT_FALSE(trace.Due(199));
  EXPECT_TRUE(trace.Due(200));
}

TEST(ConvergenceTraceTest, StartClearsPoints) {
  ConvergenceTrace trace(10);
  trace.Start();
  trace.Record(10, 0.5);
  trace.Record(20, 0.25);
  ASSERT_EQ(trace.points().size(), 2u);
  trace.Start();
  EXPECT_TRUE(trace.points().empty());
  EXPECT_TRUE(trace.Due(10));
}

TEST(ConvergenceTraceTest, RecordCapturesElapsedTime) {
  ConvergenceTrace trace(1);
  trace.Start();
  trace.Record(1, 1.0);
  ASSERT_EQ(trace.points().size(), 1u);
  EXPECT_GE(trace.points()[0].seconds, 0.0);
  EXPECT_LT(trace.points()[0].seconds, 5.0);
}

TEST(LogLevelTest, SetAndGetRoundTrip) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(PPR_CHECK(1 == 2) << "impossible", "Check failed: 1 == 2");
}

TEST(LoggingTest, CheckOkPassesOnOkStatus) {
  PPR_CHECK_OK(Status::OK());  // must not abort
  SUCCEED();
}

TEST(LoggingDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(PPR_CHECK_OK(Status::IOError("disk gone")), "disk gone");
}

}  // namespace
}  // namespace ppr
