#include <gtest/gtest.h>

#include "core/power_iteration.h"
#include "core/sim_forward_push.h"
#include "test_util.h"

namespace ppr {
namespace {

using testing::Sum;

// Lemma 4.1: SimFwdPush's residue vector r⁽ʲ⁾ and reserve vector π̂⁽ʲ⁾
// equal PowItr's γ⁽ʲ⁾ and π̂⁽ʲ⁾ in every iteration. Our implementations
// perform floating-point operations in the same order, so the equality is
// *exact*, not just within tolerance.
TEST(SimEquivalenceTest, ExactlyEqualToPowerIterationAcrossGraphZoo) {
  for (auto& tc : testing::SmallGraphZoo()) {
    for (double lambda : {0.5, 1e-2, 1e-6, 1e-10}) {
      PowerIterationOptions options;
      options.lambda = lambda;
      PprEstimate pi;
      SolveStats pi_stats = PowerIteration(tc.graph, 0, options, &pi);

      PprEstimate sim;
      SolveStats sim_stats =
          SimForwardPush(tc.graph, 0, options.alpha, lambda, &sim);

      ASSERT_EQ(pi_stats.iterations, sim_stats.iterations)
          << tc.name << " lambda=" << lambda;
      for (NodeId v = 0; v < tc.graph.num_nodes(); ++v) {
        ASSERT_EQ(pi.reserve[v], sim.reserve[v])
            << tc.name << " reserve differs at v=" << v;
        ASSERT_EQ(pi.residue[v], sim.residue[v])
            << tc.name << " residue differs at v=" << v;
      }
    }
  }
}

TEST(SimEquivalenceTest, SameWorkCounters) {
  for (auto& tc : testing::SmallGraphZoo()) {
    PowerIterationOptions options;
    options.lambda = 1e-8;
    PprEstimate pi;
    SolveStats a = PowerIteration(tc.graph, 0, options, &pi);
    PprEstimate sim;
    SolveStats b = SimForwardPush(tc.graph, 0, options.alpha, 1e-8, &sim);
    EXPECT_EQ(a.push_operations, b.push_operations) << tc.name;
    EXPECT_EQ(a.edge_pushes, b.edge_pushes) << tc.name;
  }
}

TEST(SimForwardPushTest, FigureThreeIterationOne) {
  // Figure 3: after iteration 1 on the example graph (s=v1, α=0.2),
  // r = (0, 0.4, 0.4, 0, 0) and π̂(v1) = 0.2.
  Graph g = PaperExampleGraph();
  PprEstimate estimate;
  // λ=0.9 stops after exactly one iteration (rsum: 1 -> 0.8).
  SolveStats stats = SimForwardPush(g, 0, 0.2, 0.9, &estimate);
  ASSERT_EQ(stats.iterations, 1u);
  EXPECT_DOUBLE_EQ(estimate.residue[0], 0.0);
  EXPECT_DOUBLE_EQ(estimate.residue[1], 0.4);
  EXPECT_DOUBLE_EQ(estimate.residue[2], 0.4);
  EXPECT_DOUBLE_EQ(estimate.residue[3], 0.0);
  EXPECT_DOUBLE_EQ(estimate.residue[4], 0.0);
  EXPECT_DOUBLE_EQ(estimate.reserve[0], 0.2);
}

TEST(SimForwardPushTest, FigureThreeIterationTwo) {
  // Figure 3: after iteration 2,
  // r = (0.08, 0.16, 0.08, 0.24, 0.08).
  Graph g = PaperExampleGraph();
  PprEstimate estimate;
  // λ=0.7 stops after exactly two iterations (rsum: 1 -> 0.8 -> 0.64).
  SolveStats stats = SimForwardPush(g, 0, 0.2, 0.7, &estimate);
  ASSERT_EQ(stats.iterations, 2u);
  EXPECT_NEAR(estimate.residue[0], 0.08, 1e-15);
  EXPECT_NEAR(estimate.residue[1], 0.16, 1e-15);
  EXPECT_NEAR(estimate.residue[2], 0.08, 1e-15);
  EXPECT_NEAR(estimate.residue[3], 0.24, 1e-15);
  EXPECT_NEAR(estimate.residue[4], 0.08, 1e-15);
  // Reserves after two iterations: π̂(v1)=0.2, π̂(v2)=π̂(v3)=0.08.
  EXPECT_NEAR(estimate.reserve[0], 0.2, 1e-15);
  EXPECT_NEAR(estimate.reserve[1], 0.08, 1e-15);
  EXPECT_NEAR(estimate.reserve[2], 0.08, 1e-15);
}

TEST(SimForwardPushTest, ResidueSumMatchesGeometricDecay) {
  Graph g = PaperExampleGraph();
  PprEstimate estimate;
  SolveStats stats = SimForwardPush(g, 0, 0.2, 1e-6, &estimate);
  EXPECT_NEAR(stats.final_rsum, std::pow(0.8, stats.iterations), 1e-12);
}

TEST(SimForwardPushTest, MassConservation) {
  Graph g = testing::SmallGraphZoo()[8].graph;
  PprEstimate estimate;
  SimForwardPush(g, 3, 0.2, 1e-9, &estimate);
  EXPECT_NEAR(Sum(estimate.reserve) + Sum(estimate.residue), 1.0, 1e-12);
}

}  // namespace
}  // namespace ppr
