// Chaos coverage for the serving tier: deterministic fault injection,
// cooperative cancellation latency, bounded-drain shutdown, and a soak
// that drives submissions, deadlines, cancellations, and graph updates
// through injected slowness and errors while checking the accounting
// reconciles exactly.
//
// The suite names deliberately start with PprServer so scripts/check.sh
// runs them under ThreadSanitizer with the rest of the serving tests.

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/context.h"
#include "approx/walk_index.h"
#include "graph/dynamic_graph.h"
#include "graph/generators.h"
#include "serve/bounded_queue.h"
#include "serve/ppr_server.h"
#include "util/cancellation.h"
#include "util/fault_injection.h"
#include "util/rng.h"

// TSAN's instrumentation inflates wakeup latency past the queue's
// 64µs initial backoff interval as a matter of course, so *pacing*
// assertions (as opposed to correctness ones) are vacuous under it:
// every notified wakeup looks like a fully-elapsed wait.
#if defined(__SANITIZE_THREAD__)
#define PPR_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PPR_TSAN_BUILD 1
#endif
#endif
#ifndef PPR_TSAN_BUILD
#define PPR_TSAN_BUILD 0
#endif

namespace ppr {
namespace {

using std::chrono::steady_clock;

const Graph& ChaosGraph() {
  static const Graph* graph = [] {
    Rng rng(77);
    return new Graph(BarabasiAlbert(120, 3, rng));
  }();
  return *graph;
}

/// A solver that spins polling its cancellation token — the way to
/// measure how fast Cancel()/deadlines/hard stops actually stop
/// compute. The safety valve keeps a broken token from hanging the
/// suite forever (it fails the test instead).
class SpinSolver : public Solver {
 public:
  std::string_view name() const override { return "spin"; }
  SolverCapabilities capabilities() const override { return {}; }

  void AwaitEntered(unsigned count) {
    while (entered_.load(std::memory_order_acquire) < count) {
      std::this_thread::yield();
    }
  }

 protected:
  Status DoSolve(const PprQuery& query, SolverContext& context,
                 PprResult* result) override {
    entered_.fetch_add(1, std::memory_order_acq_rel);
    const CancelToken* token = context.cancel_token();
    constexpr auto kPoll = std::chrono::microseconds(100);
    for (int i = 0; i < 100000; ++i) {  // safety valve: ~10s
      if (token != nullptr) {
        Status status = token->CheckNow();
        if (!status.ok()) return status;
      }
      std::this_thread::sleep_for(kPoll);
    }
    return Status::FailedPrecondition(
        "spin solver never observed a stop signal");
  }

 private:
  std::atomic<unsigned> entered_{0};
};

// ---------------------------------------------------------------------
// Deterministic injection draws
// ---------------------------------------------------------------------

std::vector<bool> DrawSequence(uint64_t seed, size_t count) {
  ScopedFaultInjection chaos(seed);
  FaultSpec spec;
  spec.probability = 0.5;
  spec.error = StatusCode::kUnavailable;
  FaultInjector::Global().SetFault("test.point", spec);
  std::vector<bool> triggered;
  triggered.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    triggered.push_back(!FaultInjector::Global().Evaluate("test.point").ok());
  }
  return triggered;
}

TEST(FaultInjectionTest, DrawsAreSeedStableAndSeedSensitive) {
  const std::vector<bool> run1 = DrawSequence(42, 64);
  const std::vector<bool> run2 = DrawSequence(42, 64);
  const std::vector<bool> other = DrawSequence(43, 64);
  EXPECT_EQ(run1, run2) << "same seed must reproduce the same fault run";
  EXPECT_NE(run1, other) << "different seeds must explore different runs";
  // probability 0.5 really is a coin, not all-or-nothing
  size_t hits = 0;
  for (bool b : run1) hits += b ? 1 : 0;
  EXPECT_GT(hits, 8u);
  EXPECT_LT(hits, 56u);
}

TEST(FaultInjectionTest, DisarmedInjectorInjectsNothing) {
  FaultSpec spec;
  spec.error = StatusCode::kIOError;
  FaultInjector::Global().SetFault("test.disarmed", spec);
  // Never Enabled: every evaluation is a no-op (and in production code
  // the macros skip Evaluate entirely on the disarmed fast path).
  EXPECT_TRUE(FaultInjector::Global().Evaluate("test.disarmed").ok());
  FaultInjector::Global().Clear();
}

TEST(FaultInjectionTest, MaxTriggersBoundsTheBlastRadius) {
  ScopedFaultInjection chaos(7);
  FaultSpec spec;
  spec.error = StatusCode::kUnavailable;
  spec.max_triggers = 2;
  FaultInjector::Global().SetFault("test.bounded", spec);
  unsigned failures = 0;
  for (int i = 0; i < 10; ++i) {
    if (!FaultInjector::Global().Evaluate("test.bounded").ok()) failures++;
  }
  EXPECT_EQ(failures, 2u);
  EXPECT_EQ(FaultInjector::Global().visits("test.bounded"), 10u);
  EXPECT_EQ(FaultInjector::Global().triggers("test.bounded"), 2u);
}

#if PPR_FAULT_INJECTION

// ---------------------------------------------------------------------
// Every registered production fault point is actually wired
// ---------------------------------------------------------------------

TEST(PprServerChaosTest, SubmitFaultPointSurfacesInjectedError) {
  ScopedFaultInjection chaos(11);
  PprServer server({.workers = 1});
  ASSERT_TRUE(server.AddSolver("mc:eps=0.9", ChaosGraph()).ok());
  ASSERT_TRUE(server.Start().ok());

  FaultSpec spec;
  spec.error = StatusCode::kIOError;
  FaultInjector::Global().SetFault("serve.queue.push", spec);
  auto refused = server.Submit({});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kIOError);
  EXPECT_EQ(server.stats().submitted, 0u) << "refused before admission";

  FaultInjector::Global().ClearFault("serve.queue.push");
  auto accepted = server.Submit({});
  ASSERT_TRUE(accepted.ok());
  EXPECT_TRUE(accepted.value().Get(nullptr).ok());
  server.Stop();
}

TEST(PprServerChaosTest, SolveFaultPointFailsTheQueryNotTheServer) {
  ScopedFaultInjection chaos(12);
  PprServer server({.workers = 1});
  ASSERT_TRUE(server.AddSolver("mc:eps=0.9", ChaosGraph()).ok());
  ASSERT_TRUE(server.Start().ok());

  FaultSpec spec;
  spec.error = StatusCode::kUnavailable;
  spec.max_triggers = 1;
  FaultInjector::Global().SetFault("solver.solve", spec);
  auto faulted = server.Submit({});
  ASSERT_TRUE(faulted.ok());
  EXPECT_EQ(faulted.value().Get(nullptr).code(), StatusCode::kUnavailable);

  // The server survives an injected solver failure and keeps serving.
  auto healthy = server.Submit({});
  ASSERT_TRUE(healthy.ok());
  EXPECT_TRUE(healthy.value().Get(nullptr).ok());
  server.Stop();
  const PprServerStats stats = server.Snapshot();  // one coherent read
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(PprServerChaosTest, ApplyUpdatesFaultPointSurfacesAndAppliesNothing) {
  ScopedFaultInjection chaos(13);
  Rng rng(5);
  Graph graph = ErdosRenyi(30, 3.0, rng);
  PprServer server({.workers = 1});
  ASSERT_TRUE(server.AddSolver("dynfwdpush:rmax=1e-6", graph).ok());

  FaultSpec spec;
  spec.error = StatusCode::kIOError;
  spec.max_triggers = 1;
  FaultInjector::Global().SetFault("server.apply_updates", spec);
  UpdateBatch batch;
  batch.Insert(0, 7);
  auto faulted = server.ApplyUpdates(batch);
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kIOError);
  EXPECT_EQ(server.stats().updates, 0u);

  auto applied = server.ApplyUpdates(batch);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied.value(), 1u);
}

TEST(PprServerChaosTest, WalkIndexCacheFaultPointsCoverSaveAndLoad) {
  ScopedFaultInjection chaos(14);
  Rng rng(9);
  WalkIndex index = WalkIndex::Build(ChaosGraph(), 0.2,
                                     WalkIndex::Sizing::kSpeedPpr,
                                     /*walk_count_w=*/0, rng);
  const std::string path = ::testing::TempDir() + "/chaos_index.bin";

  FaultSpec spec;
  spec.error = StatusCode::kIOError;
  spec.max_triggers = 1;
  FaultInjector::Global().SetFault("walkindex.save", spec);
  EXPECT_EQ(index.SaveTo(path).code(), StatusCode::kIOError);
  EXPECT_TRUE(index.SaveTo(path).ok()) << "fault was bounded to 1 trigger";

  FaultInjector::Global().SetFault("walkindex.load", spec);
  EXPECT_EQ(WalkIndex::LoadFrom(path).status().code(), StatusCode::kIOError);
  auto reloaded = WalkIndex::LoadFrom(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded.value().total_walks(), index.total_walks());
}

#endif  // PPR_FAULT_INJECTION

// ---------------------------------------------------------------------
// Cancellation latency and bounded-drain shutdown
// ---------------------------------------------------------------------

TEST(PprServerChaosTest, CancelStopsComputeWithinOnePollInterval) {
  auto spin = std::make_unique<SpinSolver>();
  SpinSolver* spin_ptr = spin.get();
  ASSERT_TRUE(spin->Prepare(ChaosGraph()).ok());
  PprServer server({.workers = 1});
  ASSERT_TRUE(server.AddSolver("spin", std::move(spin)).ok());
  ASSERT_TRUE(server.Start().ok());

  auto submitted = server.Submit({});
  ASSERT_TRUE(submitted.ok());
  spin_ptr->AwaitEntered(1);

  const auto cancel_at = steady_clock::now();
  submitted.value().Cancel();
  EXPECT_EQ(submitted.value().Get(nullptr).code(), StatusCode::kCancelled);
  const auto observed = steady_clock::now() - cancel_at;
  // The solver polls every 100µs; anything near a second means the
  // cancellation never actually interrupted the compute loop.
  EXPECT_LT(observed, std::chrono::seconds(2));
  server.Stop();
  EXPECT_EQ(server.stats().cancelled, 1u);
}

TEST(PprServerChaosTest, MidSolveDeadlineStopsComputeAndCountsAsFailed) {
  auto spin = std::make_unique<SpinSolver>();
  SpinSolver* spin_ptr = spin.get();
  ASSERT_TRUE(spin->Prepare(ChaosGraph()).ok());
  PprServer server({.workers = 1});
  ASSERT_TRUE(server.AddSolver("spin", std::move(spin)).ok());
  ASSERT_TRUE(server.Start().ok());

  PprQuery query;
  query.deadline = std::chrono::milliseconds(50);
  const auto submit_at = steady_clock::now();
  auto submitted = server.Submit(query);
  ASSERT_TRUE(submitted.ok());
  spin_ptr->AwaitEntered(1);
  EXPECT_EQ(submitted.value().Get(nullptr).code(),
            StatusCode::kDeadlineExceeded);
  const auto observed = steady_clock::now() - submit_at;
  EXPECT_LT(observed, std::chrono::seconds(2));
  server.Stop();
  // Compute was spent before the budget ran out mid-solve: that is a
  // failure, not a shed (the query did run).
  const PprServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.shed, 0u);
}

TEST(PprServerChaosTest, BoundedDrainStopCancelsPendingWork) {
  auto spin = std::make_unique<SpinSolver>();
  SpinSolver* spin_ptr = spin.get();
  ASSERT_TRUE(spin->Prepare(ChaosGraph()).ok());
  PprServer server({.workers = 1, .queue_capacity = 4});
  ASSERT_TRUE(server.AddSolver("spin", std::move(spin)).ok());
  ASSERT_TRUE(server.Start().ok());

  // One query spins on the worker (it would run ~10s on its own), two
  // more wait behind it — none would finish inside the drain budget.
  std::vector<PprFuture> futures;
  for (int i = 0; i < 3; ++i) {
    auto submitted = server.Submit({});
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).ValueOrDie());
  }
  spin_ptr->AwaitEntered(1);

  const auto stop_at = steady_clock::now();
  server.Stop(std::chrono::milliseconds(100));
  const auto stop_took = steady_clock::now() - stop_at;
  // Budget 100ms + one 100µs poll + join slack: far under the ~10s the
  // spinning query would otherwise take.
  EXPECT_LT(stop_took, std::chrono::seconds(5));

  for (PprFuture& f : futures) {
    ASSERT_TRUE(f.done()) << "bounded drain must complete every future";
    EXPECT_EQ(f.Get(nullptr).code(), StatusCode::kCancelled);
  }
  const PprServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.cancelled, 3u);
  EXPECT_EQ(stats.completed + stats.failed + stats.shed + stats.cancelled,
            stats.submitted);
}

TEST(PprServerChaosTest, BoundedDrainWithIdleQueueStopsPromptly) {
  PprServer server({.workers = 2});
  ASSERT_TRUE(server.AddSolver("mc:eps=0.9", ChaosGraph()).ok());
  ASSERT_TRUE(server.Start().ok());
  auto submitted = server.Submit({});
  ASSERT_TRUE(submitted.ok());
  ASSERT_TRUE(submitted.value().Get(nullptr).ok());
  server.Stop(std::chrono::seconds(30));  // nothing pending: returns now
  const PprServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.cancelled, 0u);
}

// ---------------------------------------------------------------------
// The soak: everything at once, and the books still balance
// ---------------------------------------------------------------------

TEST(PprServerChaosTest, SoakReconcilesUnderFaultsDeadlinesAndUpdates) {
#if !PPR_FAULT_INJECTION
  GTEST_SKIP() << "built with -DPPR_FAULT_INJECTION=OFF";
#else
  ScopedFaultInjection chaos(0xC4A05ULL);
  {
    // Injected solver slowness + flakiness and pop-path delay: the
    // operating conditions the robustness layer exists for.
    FaultSpec flaky;
    flaky.probability = 0.2;
    flaky.error = StatusCode::kUnavailable;
    flaky.delay = std::chrono::microseconds(300);
    FaultInjector::Global().SetFault("solver.solve", flaky);
    FaultSpec slow_pop;
    slow_pop.probability = 0.5;
    slow_pop.delay = std::chrono::microseconds(200);
    FaultInjector::Global().SetFault("serve.queue.pop", slow_pop);
  }

  Rng graph_rng(21);
  Graph dynamic_graph = ErdosRenyi(60, 3.0, graph_rng);
  PprServerOptions options;
  options.workers = 3;
  options.contexts = 2;
  options.queue_capacity = 64;
  PprServer server(options);
  ASSERT_TRUE(server.AddSolver("mc:eps=0.7", ChaosGraph()).ok());
  ASSERT_TRUE(server.AddSolver("dynfwdpush:rmax=1e-6", dynamic_graph).ok());
  ASSERT_TRUE(server.Start().ok());

  constexpr unsigned kClients = 4;
  constexpr unsigned kEach = 40;
  const std::chrono::nanoseconds kDeadlines[] = {
      std::chrono::nanoseconds(0),       // none
      std::chrono::milliseconds(50),     // generous
      std::chrono::microseconds(200),    // likely to expire in-queue
  };
  std::vector<std::vector<PprFuture>> futures(kClients);
  std::vector<std::vector<std::chrono::nanoseconds>> deadlines(kClients);
  std::atomic<unsigned> accepted{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (unsigned c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (unsigned q = 0; q < kEach; ++q) {
        PprQuery query;
        const bool dynamic = (c + q) % 3 == 0;
        query.source = (17 * c + q) % 60;  // valid for both graphs
        query.deadline = kDeadlines[(c + q) % 3];
        auto submitted = server.Submit(
            query, dynamic ? "dynfwdpush:rmax=1e-6" : "mc:eps=0.7");
        if (!submitted.ok()) {
          // Backpressure rejection: allowed, just not admitted.
          EXPECT_TRUE(submitted.status().code() == StatusCode::kUnavailable ||
                      submitted.status().code() == StatusCode::kIOError)
              << submitted.status().ToString();
          continue;
        }
        accepted.fetch_add(1, std::memory_order_relaxed);
        futures[c].push_back(std::move(submitted).ValueOrDie());
        deadlines[c].push_back(query.deadline);
        // A slice of in-flight work gets cancelled mid-stream.
        if (q % 9 == 4) futures[c].back().Cancel();
      }
    });
  }

  // Concurrent evolving-graph updates on the dynamic solver.
  std::thread updater([&] {
    Rng update_rng(31);
    for (int b = 0; b < 8; ++b) {
      UpdateBatch batch;
      batch.Insert(static_cast<NodeId>(update_rng.NextBounded(60)),
                   static_cast<NodeId>(update_rng.NextBounded(60)));
      auto applied = server.ApplyUpdates(batch, "dynfwdpush:rmax=1e-6");
      // Self-inserts are rejected as invalid — fine; anything else isn't.
      if (!applied.ok()) {
        EXPECT_EQ(applied.status().code(), StatusCode::kInvalidArgument)
            << applied.status().ToString();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  for (std::thread& t : clients) t.join();
  updater.join();
  server.Stop(std::chrono::seconds(20));

  // Invariant 1: every accepted future completed (none abandoned).
  for (unsigned c = 0; c < kClients; ++c) {
    for (PprFuture& f : futures[c]) {
      ASSERT_TRUE(f.done()) << "an accepted future never completed";
    }
  }

  // Invariant 2: exact reconciliation — each accepted query lands in
  // exactly one terminal bucket.
  const PprServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.submitted, accepted.load());
  EXPECT_EQ(stats.completed + stats.failed + stats.shed + stats.cancelled,
            stats.submitted)
      << "completed=" << stats.completed << " failed=" << stats.failed
      << " shed=" << stats.shed << " cancelled=" << stats.cancelled;

  // Invariant 3: terminal statuses come from the closed expected set,
  // and a success that carried a deadline beat that deadline (up to the
  // post-solve check → completion-stamp window).
  for (unsigned c = 0; c < kClients; ++c) {
    for (size_t i = 0; i < futures[c].size(); ++i) {
      PprResult result;
      const Status status = futures[c][i].Get(&result);
      if (status.ok()) {
        EXPECT_EQ(result.scores.size(), result.solver == "dynfwdpush"
                                            ? dynamic_graph.num_nodes()
                                            : ChaosGraph().num_nodes());
        if (deadlines[c][i].count() > 0) {
          const double budget =
              std::chrono::duration<double>(deadlines[c][i]).count();
          EXPECT_LT(futures[c][i].latency_seconds(), budget + 0.25)
              << "a served success blew far past its deadline";
        }
        continue;
      }
      EXPECT_TRUE(status.code() == StatusCode::kUnavailable ||      // injected
                  status.code() == StatusCode::kDeadlineExceeded ||  // budget
                  status.code() == StatusCode::kCancelled)           // Cancel()
          << status.ToString();
    }
  }
#endif  // PPR_FAULT_INJECTION
}

// ---------------------------------------------------------------------
// BoundedQueue admission deadlines and close-fast behaviour
// ---------------------------------------------------------------------

TEST(PprServerQueueTest, PushUntilTimesOutOnAFullQueue) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.TryPush(1));
  const auto start = steady_clock::now();
  bool saw_full = false;
  const QueuePushResult result = queue.PushUntil(
      2, start + std::chrono::milliseconds(30), &saw_full);
  const auto waited = steady_clock::now() - start;
  EXPECT_EQ(result, QueuePushResult::kTimedOut);
  EXPECT_TRUE(saw_full);
  EXPECT_GE(waited, std::chrono::milliseconds(25));
  EXPECT_LT(waited, std::chrono::seconds(5));
  EXPECT_EQ(queue.size(), 1u) << "a timed-out push admits nothing";
}

TEST(PprServerQueueTest, PushUntilAdmitsOnceAConsumerDrains) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.TryPush(1));
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(queue.Pop().has_value());
  });
  const QueuePushResult result = queue.PushUntil(
      2, steady_clock::now() + std::chrono::seconds(30));
  consumer.join();
  EXPECT_EQ(result, QueuePushResult::kAdmitted);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(PprServerQueueTest, BackoffEscalatesOnlyOnFullyElapsedWaits) {
  // A producer left waiting on a full queue with no consumer sees every
  // wait run its full interval, so the backoff must walk all the way up
  // to kMaxBackoff — the bounded-wakeup half of the pacing contract.
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.TryPush(1));
  bool saw_full = false;
  std::chrono::microseconds backoff{0};
  const QueuePushResult result =
      queue.PushUntil(2, steady_clock::now() + std::chrono::milliseconds(80),
                      &saw_full, &backoff);
  EXPECT_EQ(result, QueuePushResult::kTimedOut);
  EXPECT_TRUE(saw_full);
  // 64µs doubling per elapsed round reaches 8192µs well inside 80ms.
  EXPECT_EQ(backoff, BoundedQueue<int>::kMaxBackoff);
}

TEST(PprServerQueueTest, ConsumerNotifiedWakeupsDoNotEscalateBackoff) {
  // The regression the elapsed-time check fixes: a producer racing a
  // fast-draining queue is woken early by every Pop, loses the slot race
  // to TryPush, and goes back to waiting. Those notified wakeups are not
  // congestion — doubling on them walked the producer up to the 8ms max
  // and throttled it against a queue that was never saturated for long.
  // With the fix, a backoff round only escalates after a wait that ran
  // its full interval, so hundreds of notify-then-lose cycles leave the
  // pace near the initial interval.
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.TryPush(1));

  std::atomic<bool> stop{false};
  // The racing pair: a consumer that frees the slot (waking the waiting
  // producer) and a rival producer that immediately re-fills it. The
  // waiting PushUntil keeps losing without ever seeing a full interval
  // elapse uninterrupted.
  std::thread churn([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (queue.Pop().has_value()) {
        while (!queue.TryPush(0) && !stop.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      }
    }
  });

  bool saw_full = false;
  std::chrono::microseconds backoff{0};
  QueuePushResult result = QueuePushResult::kAdmitted;
  // Two kinds of run are ambiguous and get retried. An attempt whose
  // very first TryPush sneaks into the instant between churn's pop and
  // re-push is admitted without ever waiting (vacuous — the property
  // was never exercised). And on a loaded machine (or under TSAN's
  // instrumentation slowdown) the churn thread can be starved long
  // enough that the queue is *genuinely* full for whole intervals, so
  // one attempt's escalation is correct behavior, not the regression.
  // The always-double bug escalates to the max on essentially every
  // attempt, so a single cleanly-paced attempt is a sound verdict.
  for (int attempt = 0; attempt < 6; ++attempt) {
    bool attempt_full = false;
    std::chrono::microseconds attempt_backoff{0};
    result = queue.PushUntil(
        2, steady_clock::now() + std::chrono::milliseconds(150),
        &attempt_full, &attempt_backoff);
    if (!attempt_full) continue;
    saw_full = true;
    backoff = attempt_backoff;
    if (backoff <= std::chrono::microseconds(1024)) break;
  }
  stop.store(true, std::memory_order_release);
  queue.Close();
  churn.join();
  // Whether the producer eventually won the race or timed out, 150ms of
  // consumer-notified wakeups must not have walked the backoff anywhere
  // near the max. The bound leaves room for a few genuinely-elapsed
  // rounds on a loaded CI machine (64 → 1024µs is four escalations)
  // while still failing the always-double behavior, which reaches
  // 8192µs within the first ~16ms.
  EXPECT_TRUE(result == QueuePushResult::kAdmitted ||
              result == QueuePushResult::kTimedOut ||
              result == QueuePushResult::kClosed);
  EXPECT_TRUE(saw_full);
  // Escalation on a notified-but-slow wakeup is indistinguishable from
  // a fully-elapsed wait, and under TSAN every wakeup is slow — the
  // pacing bound only means something in uninstrumented builds.
  if (!PPR_TSAN_BUILD) {
    EXPECT_LE(backoff, std::chrono::microseconds(1024))
        << "early wakeups escalated the backoff on every attempt";
  }
}

TEST(PprServerQueueTest, CloseDuringBackoffFailsThePushFast) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.TryPush(1));

  std::atomic<bool> pushed{false};
  std::atomic<bool> admitted{true};
  std::thread producer([&] {
    // No deadline: without the close-fast re-check this would back off
    // against the full queue forever.
    admitted.store(queue.PushWithBackoff(2));
    pushed.store(true, std::memory_order_release);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load(std::memory_order_acquire));
  const auto close_at = steady_clock::now();
  queue.Close();
  producer.join();
  const auto reacted = steady_clock::now() - close_at;
  EXPECT_FALSE(admitted.load());
  // kMaxBackoff is ~8ms; seconds would mean the close never woke the
  // backoff sleep.
  EXPECT_LT(reacted, std::chrono::seconds(2));
  // The already-admitted item still drains after close.
  EXPECT_TRUE(queue.Pop().has_value());
  EXPECT_FALSE(queue.Pop().has_value());
}

}  // namespace
}  // namespace ppr
