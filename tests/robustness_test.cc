// Fuzz-style robustness tests: random and adversarial inputs must never
// crash library entry points — they either succeed or return a Status.

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "approx/walk_index.h"
#include "core/power_push.h"
#include "graph/edge_list_io.h"
#include "graph/graph_builder.h"
#include "test_util.h"
#include "util/rng.h"

namespace ppr {
namespace {

TEST(RobustnessTest, EdgeListReaderSurvivesRandomBytes) {
  Rng rng(1);
  const std::string path = ::testing::TempDir() + "/fuzz_input.txt";
  for (int trial = 0; trial < 50; ++trial) {
    {
      std::ofstream out(path, std::ios::binary);
      const size_t len = rng.NextBounded(512);
      for (size_t i = 0; i < len; ++i) {
        // Bias toward printable bytes and digits so some inputs get deep
        // into the parser.
        char c;
        const uint64_t pick = rng.NextBounded(10);
        if (pick < 4) {
          c = static_cast<char>('0' + rng.NextBounded(10));
        } else if (pick < 7) {
          c = static_cast<char>(rng.NextBounded(2) ? ' ' : '\n');
        } else {
          c = static_cast<char>(rng.NextBounded(256));
        }
        out.put(c);
      }
    }
    auto result = ReadEdgeListText(path);
    // Must terminate with either a value or a clean error; any crash
    // fails the test by killing the process.
    if (!result.ok()) {
      EXPECT_NE(result.status().code(), StatusCode::kOk);
    }
  }
}

TEST(RobustnessTest, UpdateStreamReaderSurvivesRandomBytes) {
  Rng rng(4);
  const std::string path = ::testing::TempDir() + "/fuzz_updates.txt";
  for (int trial = 0; trial < 50; ++trial) {
    {
      std::ofstream out(path, std::ios::binary);
      const size_t len = rng.NextBounded(512);
      for (size_t i = 0; i < len; ++i) {
        // Bias toward the stream's own alphabet — kind markers, digits,
        // separators — so many trials get past the kind field and into
        // the id parsing and range checks, not just the first branch.
        char c;
        const uint64_t pick = rng.NextBounded(12);
        if (pick < 2) {
          c = "+-adnx"[rng.NextBounded(6)];
        } else if (pick < 6) {
          c = static_cast<char>('0' + rng.NextBounded(10));
        } else if (pick < 9) {
          c = " \t\n,"[rng.NextBounded(4)];
        } else {
          c = static_cast<char>(rng.NextBounded(256));
        }
        out.put(c);
      }
    }
    auto result = ReadUpdateStreamText(path);
    // Either a parsed batch or a clean Status; a crash kills the process
    // and fails the test. Successful parses must still be well-formed.
    if (result.ok()) {
      for (const auto& update : result.value().updates) {
        EXPECT_TRUE(update.kind == UpdateKind::kInsert ||
                    update.kind == UpdateKind::kDelete ||
                    update.kind == UpdateKind::kAddNode ||
                    update.kind == UpdateKind::kRemoveNode);
      }
    } else {
      EXPECT_NE(result.status().code(), StatusCode::kOk);
    }
  }
}

TEST(RobustnessTest, WalkIndexLoaderSurvivesRandomBytes) {
  // The index cache loader shares the threat model of the binary graph
  // reader: cache_dir= files arrive from disk, possibly truncated by a
  // crashed saver or scribbled on — random bytes must produce a clean
  // Status, never a crash or a giant allocation.
  Rng rng(5);
  const std::string path = ::testing::TempDir() + "/fuzz_walk_index.bin";
  for (int trial = 0; trial < 50; ++trial) {
    {
      std::ofstream out(path, std::ios::binary);
      const size_t len = rng.NextBounded(512);
      // Half the trials start with the real magic so the fuzz reaches
      // the count validation and offset checks, not just the first read.
      if (rng.NextBounded(2) == 1) {
        const uint64_t magic = 0x5050523257494458ULL;  // "PPR2WIDX"
        out.write(reinterpret_cast<const char*>(&magic), 8);
      }
      for (size_t i = 0; i < len; ++i) {
        out.put(static_cast<char>(rng.NextBounded(256)));
      }
    }
    auto result = WalkIndex::LoadFrom(path);
    if (!result.ok()) {
      EXPECT_NE(result.status().code(), StatusCode::kOk);
    }
  }
}

TEST(RobustnessTest, WalkIndexLoaderRejectsHostileHeader) {
  // A hostile file with a valid magic claiming 2^60 walks must fail the
  // size validation, not OOM inside resize(): the header's counts are
  // only trusted after they reconcile with the actual file size.
  Graph g = PathGraph(3);
  Rng rng(6);
  WalkIndex valid =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, rng);
  const std::string path = ::testing::TempDir() + "/hostile_walk_index.bin";
  ASSERT_TRUE(valid.SaveTo(path).ok());
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    const uint64_t huge = uint64_t{1} << 60;
    f.seekp(8);  // node count, then walk count
    f.write(reinterpret_cast<const char*>(&huge), 8);
    f.write(reinterpret_cast<const char*>(&huge), 8);
  }
  auto result = WalkIndex::LoadFrom(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(RobustnessTest, GraphBinaryReaderSurvivesRandomBytes) {
  Rng rng(2);
  const std::string path = ::testing::TempDir() + "/fuzz_graph.bin";
  for (int trial = 0; trial < 50; ++trial) {
    {
      std::ofstream out(path, std::ios::binary);
      const size_t len = rng.NextBounded(256);
      for (size_t i = 0; i < len; ++i) {
        out.put(static_cast<char>(rng.NextBounded(256)));
      }
    }
    auto result = ReadGraphBinary(path);
    EXPECT_FALSE(result.ok());  // random bytes can't be a valid graph
  }
}

TEST(RobustnessTest, GraphBinaryReaderRejectsHostileHeader) {
  // A valid magic followed by absurd counts must fail cleanly (not OOM):
  // the reader's reads hit EOF before any giant allocation is usable.
  const std::string path = ::testing::TempDir() + "/hostile_graph.bin";
  {
    std::ofstream out(path, std::ios::binary);
    const uint64_t magic = 0x5050523147524248ULL;
    const uint64_t n = 100;  // plausible n, truncated body
    const uint64_t m = 50;
    out.write(reinterpret_cast<const char*>(&magic), 8);
    out.write(reinterpret_cast<const char*>(&n), 8);
    out.write(reinterpret_cast<const char*>(&m), 8);
    // No CSR arrays at all.
  }
  auto result = ReadGraphBinary(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(RobustnessTest, BuilderHandlesRandomEdgeSoup) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    GraphBuilder builder;
    const size_t edges = rng.NextBounded(500);
    const NodeId universe = static_cast<NodeId>(1 + rng.NextBounded(64));
    for (size_t i = 0; i < edges; ++i) {
      builder.AddEdge(static_cast<NodeId>(rng.NextBounded(universe)),
                      static_cast<NodeId>(rng.NextBounded(universe)));
    }
    Graph g = builder.Build();
    // Whatever came out must satisfy CSR invariants (constructor CHECKs)
    // and be consumable by a solver without issue.
    if (g.num_nodes() > 0) {
      PowerPushOptions options;
      options.lambda = 1e-4;
      PprEstimate estimate;
      PowerPush(g, 0, options, &estimate);
      EXPECT_NEAR(estimate.ReserveSum() + estimate.ResidueSum(), 1.0, 1e-9);
    }
  }
}

TEST(RobustnessTest, SolversSurviveEverySourceOfATinyGraph) {
  // Exhaustive source sweep catches boundary ids (0, n-1, dead ends).
  Graph g = PathGraph(7);
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    PowerPushOptions options;
    options.lambda = 1e-8;
    PprEstimate estimate;
    PowerPush(g, s, options, &estimate);
    std::vector<double> exact = testing::ExactPprDense(g, s, options.alpha);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_NEAR(estimate.reserve[v], exact[v], 1e-6)
          << "s=" << s << " v=" << v;
    }
  }
}

}  // namespace
}  // namespace ppr
