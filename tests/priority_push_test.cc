#include "core/priority_push.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/forward_push.h"
#include "test_util.h"

namespace ppr {
namespace {

using testing::ExactPprDense;
using testing::Sum;

TEST(PriorityPushTest, TerminationInvariant) {
  for (auto& tc : testing::SmallGraphZoo()) {
    ForwardPushOptions options;
    options.rmax = 1e-5;
    PprEstimate estimate;
    PriorityForwardPush(tc.graph, 0, options, &estimate);
    for (NodeId v = 0; v < tc.graph.num_nodes(); ++v) {
      ASSERT_LE(estimate.residue[v],
                static_cast<double>(EffectiveDegree(tc.graph, v)) *
                        options.rmax +
                    1e-15)
          << tc.name << " v=" << v;
    }
    EXPECT_NEAR(Sum(estimate.reserve) + Sum(estimate.residue), 1.0, 1e-10)
        << tc.name;
  }
}

TEST(PriorityPushTest, MatchesExactWithinBound) {
  for (auto& tc : testing::SmallGraphZoo()) {
    std::vector<double> exact = ExactPprDense(tc.graph, 0, 0.2);
    ForwardPushOptions options;
    options.rmax = 1e-7 / static_cast<double>(tc.graph.num_edges());
    PprEstimate estimate;
    PriorityForwardPush(tc.graph, 0, options, &estimate);
    for (NodeId v = 0; v < tc.graph.num_nodes(); ++v) {
      ASSERT_NEAR(estimate.reserve[v], exact[v], 1e-6)
          << tc.name << " v=" << v;
    }
  }
}

TEST(PriorityPushTest, SameGuaranteeAsFifoDifferentPath) {
  // FIFO and priority ordering must land on answers within the shared
  // m*rmax error bound of each other, despite different push orders.
  Graph g = testing::SmallGraphZoo()[8].graph;
  ForwardPushOptions options;
  options.rmax = 1e-6;
  PprEstimate fifo;
  FifoForwardPush(g, 0, options, &fifo);
  PprEstimate priority;
  PriorityForwardPush(g, 0, options, &priority);
  double l1 = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    l1 += std::fabs(fifo.reserve[v] - priority.reserve[v]);
  }
  EXPECT_LE(l1, 2.0 * g.num_edges() * options.rmax);
}

TEST(PriorityPushTest, NeverMorePushesThanFifoNeedsAtEqualRsum) {
  // Greedy max-benefit pushes extract the most mass per edge touched, so
  // reaching the same rsum must not need more edge pushes than FIFO.
  // (Wall clock is another story — that is the ablation bench's job.)
  Graph g = testing::SmallGraphZoo()[7].graph;  // ba_120
  ForwardPushOptions options;
  options.rmax = 1e-9;
  options.stop_rsum = 1e-3;
  PprEstimate est;
  SolveStats fifo = FifoForwardPush(g, 0, options, &est);
  SolveStats priority = PriorityForwardPush(g, 0, options, &est);
  EXPECT_LE(priority.edge_pushes, fifo.edge_pushes + g.num_edges() / 10);
}

TEST(PriorityPushTest, StopRsumRespected) {
  Graph g = testing::SmallGraphZoo()[6].graph;
  ForwardPushOptions options;
  options.rmax = 1e-10;
  options.stop_rsum = 0.25;
  PprEstimate estimate;
  SolveStats stats = PriorityForwardPush(g, 0, options, &estimate);
  EXPECT_LE(stats.final_rsum, 0.25);
}

TEST(PriorityPushTest, DeadEndsHandled) {
  Graph g = PathGraph(5);
  ForwardPushOptions options;
  options.rmax = 1e-9;
  PprEstimate estimate;
  PriorityForwardPush(g, 0, options, &estimate);
  std::vector<double> exact = ExactPprDense(g, 0, 0.2);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_NEAR(estimate.reserve[v], exact[v], 1e-7);
  }
}

}  // namespace
}  // namespace ppr
