#include "util/histogram.h"

#include <gtest/gtest.h>

namespace ppr {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  EXPECT_DOUBLE_EQ(h.Mean(), 42.0);
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Add(v);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
}

TEST(HistogramTest, ZeroGoesToBucketZero) {
  Histogram h;
  h.Add(0);
  h.Add(0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, QuantileIsMonotone) {
  Histogram h;
  for (uint64_t v = 0; v < 10000; ++v) h.Add(v);
  double q25 = h.Quantile(0.25);
  double q50 = h.Quantile(0.5);
  double q75 = h.Quantile(0.75);
  double q99 = h.Quantile(0.99);
  EXPECT_LE(q25, q50);
  EXPECT_LE(q50, q75);
  EXPECT_LE(q75, q99);
  // Log-bucketed quantiles are coarse; allow a factor-2 band.
  EXPECT_GT(q50, 2500.0);
  EXPECT_LT(q50, 10000.0);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a;
  Histogram b;
  for (uint64_t v = 0; v < 50; ++v) a.Add(1);
  for (uint64_t v = 0; v < 50; ++v) b.Add(3);
  a.Merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 3u);
}

TEST(HistogramTest, ToStringMentionsCount) {
  Histogram h;
  h.Add(5);
  std::string s = h.ToString();
  EXPECT_NE(s.find("count=1"), std::string::npos);
}

TEST(HistogramTest, LargeValues) {
  Histogram h;
  h.Add(1ULL << 40);
  h.Add(1ULL << 50);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), 1ULL << 50);
  EXPECT_GT(h.Quantile(0.9), static_cast<double>(1ULL << 39));
}

}  // namespace
}  // namespace ppr
