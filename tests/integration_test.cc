// End-to-end flows across subsystems: dataset generation -> every solver
// -> metrics, exercising the same paths the bench harness uses.

#include <gtest/gtest.h>

#include "approx/fora.h"
#include "approx/resacc.h"
#include "approx/speedppr.h"
#include "bepi/bepi.h"
#include "core/forward_push.h"
#include "core/power_iteration.h"
#include "core/power_push.h"
#include "eval/experiment.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "eval/query_gen.h"
#include "graph/datasets.h"
#include "test_util.h"

namespace ppr {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // A miniature "pokec": directed, heavy-tailed, a few thousand nodes.
    graph_ = new Graph(MakeDataset(FindDataset("pokec-sim"), /*scale=*/0.04));
    graph_->BuildInAdjacency();
    sources_ = SampleQuerySources(*graph_, 3, /*seed=*/11);
  }
  static void TearDownTestSuite() {
    delete graph_;
    graph_ = nullptr;
  }

  static Graph* graph_;
  static std::vector<NodeId> sources_;
};

Graph* IntegrationTest::graph_ = nullptr;
std::vector<NodeId> IntegrationTest::sources_;

TEST_F(IntegrationTest, HighPrecisionSolversAgreeOnRealisticGraph) {
  const double lambda = PaperLambda(*graph_);
  for (NodeId s : sources_) {
    PprEstimate pi;
    PowerIterationOptions pi_options;
    pi_options.lambda = lambda;
    PowerIteration(*graph_, s, pi_options, &pi);

    PprEstimate fp;
    ForwardPushOptions fp_options;
    fp_options.rmax = lambda / static_cast<double>(graph_->num_edges());
    FifoForwardPush(*graph_, s, fp_options, &fp);

    PprEstimate pp;
    PowerPushOptions pp_options;
    pp_options.lambda = lambda;
    PowerPush(*graph_, s, pp_options, &pp);

    EXPECT_LE(L1Distance(fp.reserve, pi.reserve), 4 * lambda) << "s=" << s;
    EXPECT_LE(L1Distance(pp.reserve, pi.reserve), 4 * lambda) << "s=" << s;
  }
}

TEST_F(IntegrationTest, BepiMatchesPowerPushOnRealisticGraph) {
  BepiOptions options;
  auto solver = BepiSolver::Preprocess(*graph_, options);
  for (NodeId s : sources_) {
    std::vector<double> bepi;
    solver->Solve(s, /*delta=*/1e-10, &bepi);
    std::vector<double> gt = ComputeGroundTruth(*graph_, s);
    EXPECT_LE(L1Distance(bepi, gt), 1e-6) << "s=" << s;
  }
}

TEST_F(IntegrationTest, ApproximateSolversMeetGuaranteeOnRealisticGraph) {
  const NodeId s = sources_[0];
  std::vector<double> gt = ComputeGroundTruth(*graph_, s);
  const double mu = 1.0 / graph_->num_nodes();
  const double eps = 0.5;

  ApproxOptions options;
  options.epsilon = eps;

  Rng rng1(100);
  std::vector<double> fora;
  Fora(*graph_, s, options, rng1, &fora);
  EXPECT_LE(MaxRelativeError(fora, gt, mu), eps) << "FORA";

  Rng rng2(200);
  std::vector<double> speed;
  SpeedPpr(*graph_, s, options, rng2, &speed);
  EXPECT_LE(MaxRelativeError(speed, gt, mu), eps) << "SpeedPPR";

  Rng rng3(300);
  std::vector<double> resacc;
  ResAcc(*graph_, s, options, rng3, &resacc);
  EXPECT_LE(L1Distance(resacc, gt), 0.05) << "ResAcc";
}

TEST_F(IntegrationTest, IndexedVariantsMatchIndexFreeQuality) {
  const NodeId s = sources_[1];
  std::vector<double> gt = ComputeGroundTruth(*graph_, s);
  const double mu = 1.0 / graph_->num_nodes();
  ApproxOptions options;
  options.epsilon = 0.3;
  const uint64_t w = ChernoffWalkCount(graph_->num_nodes(), options.epsilon,
                                       mu);

  Rng index_rng(7);
  WalkIndex fora_index = WalkIndex::Build(
      *graph_, options.alpha, WalkIndex::Sizing::kForaPlus, w, index_rng);
  WalkIndex speed_index = WalkIndex::Build(
      *graph_, options.alpha, WalkIndex::Sizing::kSpeedPpr, 0, index_rng);

  Rng rng1(1);
  std::vector<double> fora;
  Fora(*graph_, s, options, rng1, &fora, &fora_index);
  EXPECT_LE(MaxRelativeError(fora, gt, mu), options.epsilon);

  Rng rng2(2);
  std::vector<double> speed;
  SpeedPpr(*graph_, s, options, rng2, &speed, &speed_index);
  EXPECT_LE(MaxRelativeError(speed, gt, mu), options.epsilon);

  // The SpeedPPR index is never larger than the graph (+dead ends).
  EXPECT_LE(speed_index.total_walks(),
            graph_->num_edges() + graph_->CountDeadEnds());
}

TEST_F(IntegrationTest, TopKRecoveredByApproximateAnswers) {
  const NodeId s = sources_[2];
  std::vector<double> gt = ComputeGroundTruth(*graph_, s);
  ApproxOptions options;
  options.epsilon = 0.2;
  Rng rng(55);
  std::vector<double> estimate;
  SpeedPpr(*graph_, s, options, rng, &estimate);
  EXPECT_GE(PrecisionAtK(estimate, gt, 20), 0.9);
}

TEST(LoadBenchDatasetsTest, FilterAndScaleWork) {
  ASSERT_EQ(setenv("PPR_BENCH_DATASETS", "dblp-sim", 1), 0);
  auto graphs = LoadBenchDatasets(/*scale=*/0.03);
  ASSERT_EQ(unsetenv("PPR_BENCH_DATASETS"), 0);
  ASSERT_EQ(graphs.size(), 1u);
  EXPECT_EQ(graphs[0].paper_name, "DBLP");
  EXPECT_GE(graphs[0].graph.num_nodes(), 900u);
}

TEST(LoadBenchDatasetsTest, MaxCountTruncates) {
  auto graphs = LoadBenchDatasets(/*scale=*/0.02, /*max_count=*/2);
  ASSERT_EQ(graphs.size(), 2u);
  EXPECT_EQ(graphs[0].paper_name, "DBLP");
  EXPECT_EQ(graphs[1].paper_name, "Web-St");
}

}  // namespace
}  // namespace ppr
