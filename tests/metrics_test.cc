#include "eval/metrics.h"

#include <limits>

#include <gtest/gtest.h>

namespace ppr {
namespace {

TEST(MetricsTest, L1Distance) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = {1.5, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(L1Distance(a, b), 1.5);
  EXPECT_DOUBLE_EQ(L1Distance(a, a), 0.0);
}

TEST(MetricsTest, L2Distance) {
  std::vector<double> a = {0.0, 3.0};
  std::vector<double> b = {4.0, 0.0};
  EXPECT_DOUBLE_EQ(L2Distance(a, b), 5.0);
}

TEST(MetricsTest, MaxRelativeErrorRespectsThreshold) {
  std::vector<double> truth = {0.5, 0.01, 0.001};
  std::vector<double> estimate = {0.55, 0.02, 0.0};
  // Threshold 0.1: only index 0 qualifies -> rel err 0.1.
  EXPECT_NEAR(MaxRelativeError(estimate, truth, 0.1), 0.1, 1e-12);
  // Threshold 0.005: indices 0 and 1 qualify -> index 1 has rel err 1.0.
  EXPECT_NEAR(MaxRelativeError(estimate, truth, 0.005), 1.0, 1e-12);
}

TEST(MetricsTest, MaxRelativeErrorEmptySetIsZero) {
  std::vector<double> truth = {0.001, 0.002};
  std::vector<double> estimate = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(MaxRelativeError(estimate, truth, 0.5), 0.0);
}

TEST(MetricsTest, TopKOrdersByValueThenId) {
  std::vector<double> values = {0.1, 0.5, 0.5, 0.9};
  auto top = TopK(values, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 3u);
  EXPECT_EQ(top[1], 1u);  // tie with 2, lower id wins
  EXPECT_EQ(top[2], 2u);
}

TEST(MetricsTest, TopKClampsToSize) {
  std::vector<double> values = {0.3, 0.1};
  EXPECT_EQ(TopK(values, 10).size(), 2u);
}

TEST(MetricsTest, TopKAllTiesStableByNodeId) {
  std::vector<double> values(6, 0.25);
  auto top = TopK(values, 4);
  EXPECT_EQ(top, (std::vector<uint32_t>{0, 1, 2, 3}));
}

TEST(MetricsTest, TopKNansOrderLastDeterministically) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> values = {nan, 0.2, nan, 0.9, 0.2};
  // NaNs sort after every number; within each tie class, lower id first.
  auto top = TopK(values, 5);
  EXPECT_EQ(top, (std::vector<uint32_t>{3, 1, 4, 0, 2}));
  // The same input always produces the same answer — run it again.
  EXPECT_EQ(TopK(values, 5), top);
  // A k that cuts inside the NaN tail still picks the lower ids.
  EXPECT_EQ(TopK(values, 4), (std::vector<uint32_t>{3, 1, 4, 0}));
}

TEST(MetricsTest, PrecisionAtKPerfectAndDisjoint) {
  std::vector<double> truth = {0.4, 0.3, 0.2, 0.1};
  std::vector<double> same = truth;
  EXPECT_DOUBLE_EQ(PrecisionAtK(same, truth, 2), 1.0);
  std::vector<double> reversed = {0.1, 0.2, 0.3, 0.4};
  EXPECT_DOUBLE_EQ(PrecisionAtK(reversed, truth, 2), 0.0);
}

TEST(MetricsTest, PrecisionAtKPartialOverlap) {
  std::vector<double> truth = {0.4, 0.3, 0.2, 0.1};
  std::vector<double> estimate = {0.4, 0.1, 0.3, 0.2};
  // True top-2 {0,1}; estimated top-2 {0,2}: overlap 1/2.
  EXPECT_DOUBLE_EQ(PrecisionAtK(estimate, truth, 2), 0.5);
}

TEST(MetricsTest, PrecisionAtZeroIsOne) {
  std::vector<double> v = {1.0};
  EXPECT_DOUBLE_EQ(PrecisionAtK(v, v, 0), 1.0);
}

TEST(MetricsDeathTest, MismatchedSizesAbort) {
  std::vector<double> a = {1.0};
  std::vector<double> b = {1.0, 2.0};
  EXPECT_DEATH(L1Distance(a, b), "Check failed");
}

}  // namespace
}  // namespace ppr
