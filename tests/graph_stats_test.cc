#include "graph/graph_stats.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/rng.h"

namespace ppr {
namespace {

TEST(GraphStatsTest, CycleStats) {
  GraphStats stats = ComputeGraphStats(CycleGraph(10));
  EXPECT_EQ(stats.num_nodes, 10u);
  EXPECT_EQ(stats.num_edges, 10u);
  EXPECT_DOUBLE_EQ(stats.avg_degree, 1.0);
  EXPECT_EQ(stats.max_out_degree, 1u);
  EXPECT_EQ(stats.dead_ends, 0u);
}

TEST(GraphStatsTest, PathCountsDeadEnd) {
  GraphStats stats = ComputeGraphStats(PathGraph(5));
  EXPECT_EQ(stats.dead_ends, 1u);
  EXPECT_EQ(stats.num_edges, 4u);
}

TEST(GraphStatsTest, StarConcentration) {
  GraphStats stats = ComputeGraphStats(StarGraph(200));
  EXPECT_EQ(stats.max_out_degree, 199u);
  // Node 0 is the only member of the top-1% set (2 nodes of 200) and owns
  // half of all directed edges.
  EXPECT_GT(stats.top1pct_degree_share, 0.45);
}

TEST(GraphStatsTest, HistogramCountsEveryNode) {
  Rng rng(2);
  Graph g = ErdosRenyi(500, 4.0, rng);
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.out_degree_histogram.count(), 500u);
  EXPECT_NEAR(stats.out_degree_histogram.Mean(), stats.avg_degree, 1e-9);
}

TEST(GraphStatsTest, FormatMentionsKeyNumbers) {
  GraphStats stats = ComputeGraphStats(CycleGraph(1500));
  std::string s = FormatGraphStats(stats);
  EXPECT_NE(s.find("n=1.50K"), std::string::npos) << s;
  EXPECT_NE(s.find("dead=0"), std::string::npos) << s;
}

TEST(GraphStatsTest, UniformGraphHasLowConcentration) {
  GraphStats stats = ComputeGraphStats(CycleGraph(1000));
  // Every node has degree 1: the top 1% holds exactly 1% of edges.
  EXPECT_NEAR(stats.top1pct_degree_share, 0.01, 0.001);
}

}  // namespace
}  // namespace ppr
