#include "approx/resacc.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "test_util.h"

namespace ppr {
namespace {

TEST(ResAccTest, EstimateSumsToApproximatelyOne) {
  Graph g = testing::SmallGraphZoo()[7].graph;
  ApproxOptions options;
  options.epsilon = 0.5;
  Rng rng(1);
  std::vector<double> estimate;
  ResAcc(g, 0, options, rng, &estimate);
  EXPECT_NEAR(testing::Sum(estimate), 1.0, 1e-6);
}

TEST(ResAccTest, CloseToExactOnL1) {
  // ResAcc's renormalization is a mild approximation; verify the overall
  // quality is in the same band as FORA's.
  for (auto& tc : testing::SmallGraphZoo()) {
    std::vector<double> exact = testing::ExactPprDense(tc.graph, 0, 0.2);
    ApproxOptions options;
    options.epsilon = 0.3;
    Rng rng(13);
    std::vector<double> estimate;
    ResAcc(tc.graph, 0, options, rng, &estimate);
    EXPECT_LT(L1Distance(estimate, exact), 0.15) << tc.name;
  }
}

TEST(ResAccTest, AccumulatesInsteadOfRepushingSource) {
  // On a cycle, all residue funnels through the source; ResAcc should
  // perform far fewer source pushes than plain FwdPush would.
  Graph g = CycleGraph(40);
  ApproxOptions options;
  options.epsilon = 0.2;
  Rng rng(2);
  std::vector<double> estimate;
  SolveStats stats = ResAcc(g, 0, options, rng, &estimate);
  // Each non-source node is pushed at most once per "lap", and the source
  // exactly once: push count is bounded by n (one lap) here because the
  // source is never re-pushed.
  EXPECT_LE(stats.push_operations, g.num_nodes());
  EXPECT_NEAR(testing::Sum(estimate), 1.0, 1e-9);
}

TEST(ResAccTest, HandlesDeadEnds) {
  Graph g = PathGraph(6);
  ApproxOptions options;
  options.epsilon = 0.3;
  Rng rng(3);
  std::vector<double> estimate;
  ResAcc(g, 0, options, rng, &estimate);
  std::vector<double> exact = testing::ExactPprDense(g, 0, 0.2);
  EXPECT_LT(L1Distance(estimate, exact), 0.1);
}

TEST(ResAccTest, DeterministicGivenSeed) {
  Graph g = testing::SmallGraphZoo()[8].graph;
  ApproxOptions options;
  options.epsilon = 0.4;
  Rng a(9);
  Rng b(9);
  std::vector<double> ea;
  std::vector<double> eb;
  ResAcc(g, 0, options, a, &ea);
  ResAcc(g, 0, options, b, &eb);
  EXPECT_EQ(ea, eb);
}

}  // namespace
}  // namespace ppr
