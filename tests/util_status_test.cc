#include "util/status.h"

#include <gtest/gtest.h>

namespace ppr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryMethodsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("y").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::OutOfRange("z").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("w").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Corruption("c").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unimplemented("u").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Unavailable("busy").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::IOError("disk on fire").message(), "disk on fire");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::Corruption("bad magic");
  EXPECT_EQ(s.ToString(), "Corruption: bad magic");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrDieMovesOut) {
  Result<std::string> r(std::string("payload"));
  std::string moved = std::move(r).ValueOrDie();
  EXPECT_EQ(moved, "payload");
}

Status FailingStep() { return Status::IOError("inner"); }

Status Pipeline() {
  PPR_RETURN_IF_ERROR(Status::OK());
  PPR_RETURN_IF_ERROR(FailingStep());
  return Status::OK();  // unreachable
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = Pipeline();
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "inner");
}

}  // namespace
}  // namespace ppr
