#include "graph/datasets.h"

#include <cstdlib>

#include <gtest/gtest.h>

#include "graph/graph_stats.h"

namespace ppr {
namespace {

TEST(DatasetsTest, RegistryHasSixDatasetsInTableOneOrder) {
  const auto& specs = PaperDatasets();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].paper_name, "DBLP");
  EXPECT_EQ(specs[1].paper_name, "Web-St");
  EXPECT_EQ(specs[2].paper_name, "Pokec");
  EXPECT_EQ(specs[3].paper_name, "LJ");
  EXPECT_EQ(specs[4].paper_name, "Orkut");
  EXPECT_EQ(specs[5].paper_name, "Twitter");
}

TEST(DatasetsTest, DirectednessMatchesTableOne) {
  EXPECT_FALSE(FindDataset("DBLP").directed);
  EXPECT_TRUE(FindDataset("Web-St").directed);
  EXPECT_TRUE(FindDataset("Pokec").directed);
  EXPECT_TRUE(FindDataset("LJ").directed);
  EXPECT_FALSE(FindDataset("Orkut").directed);
  EXPECT_TRUE(FindDataset("Twitter").directed);
}

TEST(DatasetsTest, FindByEitherName) {
  EXPECT_EQ(FindDataset("dblp-sim").paper_name, "DBLP");
  EXPECT_EQ(FindDataset("Orkut").name, "orkut-sim");
}

TEST(DatasetsTest, SmallScaleAverageDegreeNearTarget) {
  for (const DatasetSpec& spec : PaperDatasets()) {
    Graph g = MakeDataset(spec, /*scale=*/0.05);
    // Degree targets are approximate at small n (dedup losses, integer
    // out-degrees); allow 25%.
    EXPECT_NEAR(g.AverageDegree(), spec.avg_degree, spec.avg_degree * 0.25)
        << spec.name;
  }
}

TEST(DatasetsTest, UndirectedStandInsAreSymmetric) {
  for (const DatasetSpec& spec : PaperDatasets()) {
    if (spec.directed) continue;
    Graph g = MakeDataset(spec, /*scale=*/0.05);
    g.BuildInAdjacency();
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(g.OutDegree(v), g.InDegree(v))
          << spec.name << " node " << v;
    }
  }
}

TEST(DatasetsTest, DeterministicAcrossCalls) {
  const DatasetSpec& spec = FindDataset("pokec-sim");
  Graph a = MakeDataset(spec, 0.05, /*seed=*/42);
  Graph b = MakeDataset(spec, 0.05, /*seed=*/42);
  EXPECT_EQ(a.out_offsets(), b.out_offsets());
  EXPECT_EQ(a.out_targets(), b.out_targets());
}

TEST(DatasetsTest, SeedChangesGraph) {
  const DatasetSpec& spec = FindDataset("pokec-sim");
  Graph a = MakeDataset(spec, 0.05, /*seed=*/1);
  Graph b = MakeDataset(spec, 0.05, /*seed=*/2);
  EXPECT_NE(a.out_targets(), b.out_targets());
}

TEST(DatasetsTest, ScaleControlsNodeCount) {
  const DatasetSpec& spec = FindDataset("lj-sim");
  Graph small = MakeDataset(spec, 0.02);
  Graph larger = MakeDataset(spec, 0.04);
  EXPECT_GT(larger.num_nodes(), small.num_nodes());
  EXPECT_NEAR(static_cast<double>(larger.num_nodes()),
              2.0 * static_cast<double>(small.num_nodes()),
              0.1 * larger.num_nodes());
}

TEST(DatasetsTest, MinimumThousandNodes) {
  const DatasetSpec& spec = FindDataset("dblp-sim");
  Graph g = MakeDataset(spec, 1e-6);
  EXPECT_GE(g.num_nodes(), 900u);  // ~1000 modulo isolated-node cleanup
}

TEST(DatasetsTest, HeavyTailsEverywhere) {
  for (const DatasetSpec& spec : PaperDatasets()) {
    Graph g = MakeDataset(spec, 0.05);
    if (spec.family == DatasetSpec::Family::kCopyWeb) {
      // Web crawls have bounded out-degree; their heavy tail lives in the
      // in-degree (popular pages). Check concentration on the transpose.
      g.BuildInAdjacency();
      NodeId max_in = 0;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        max_in = std::max(max_in, g.InDegree(v));
      }
      EXPECT_GT(max_in, 20 * g.AverageDegree())
          << spec.name << " should have in-degree hubs";
      continue;
    }
    GraphStats stats = ComputeGraphStats(g);
    EXPECT_GT(stats.top1pct_degree_share, 0.03)
        << spec.name << " should be heavy-tailed";
  }
}

TEST(DatasetsTest, BenchScaleFromEnvParsesAndClamps) {
  ASSERT_EQ(setenv("PPR_BENCH_SCALE", "0.5", 1), 0);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 0.5);
  ASSERT_EQ(setenv("PPR_BENCH_SCALE", "1000", 1), 0);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 100.0);
  ASSERT_EQ(setenv("PPR_BENCH_SCALE", "garbage", 1), 0);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 1.0);
  ASSERT_EQ(unsetenv("PPR_BENCH_SCALE"), 0);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 1.0);
}

TEST(DatasetsDeathTest, UnknownNameAborts) {
  EXPECT_DEATH(FindDataset("no-such-dataset"), "unknown dataset");
}

}  // namespace
}  // namespace ppr
