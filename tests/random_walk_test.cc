#include "approx/random_walk.h"

#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

namespace ppr {
namespace {

TEST(RandomWalkTest, StopDistributionMatchesExactPpr) {
  // Empirical stop frequencies must converge to the PPR vector — this is
  // the definition of PPR (§2).
  Graph g = PaperExampleGraph();
  std::vector<double> exact = testing::ExactPprDense(g, 0, 0.2);
  Rng rng(31);
  constexpr int kWalks = 400000;
  std::vector<double> freq(g.num_nodes(), 0.0);
  for (int i = 0; i < kWalks; ++i) {
    freq[RandomWalk(g, 0, 0.2, rng).stop] += 1.0 / kWalks;
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(freq[v], exact[v], 0.005) << "v=" << v;
  }
}

TEST(RandomWalkTest, MeanStepsMatchesGeometry) {
  // E[steps] = (1−α)/α on a graph where walks never hit dead ends.
  Graph g = CycleGraph(64);
  Rng rng(5);
  for (double alpha : {0.2, 0.5}) {
    double total = 0.0;
    constexpr int kWalks = 100000;
    for (int i = 0; i < kWalks; ++i) {
      total += RandomWalk(g, 0, alpha, rng).steps;
    }
    EXPECT_NEAR(total / kWalks, ExpectedWalkSteps(alpha), 0.05)
        << "alpha=" << alpha;
  }
}

TEST(RandomWalkTest, DeterministicGivenRngState) {
  Graph g = testing::SmallGraphZoo()[8].graph;
  Rng a(77);
  Rng b(77);
  for (int i = 0; i < 1000; ++i) {
    WalkOutcome wa = RandomWalk(g, i % g.num_nodes(), 0.2, a);
    WalkOutcome wb = RandomWalk(g, i % g.num_nodes(), 0.2, b);
    ASSERT_EQ(wa.stop, wb.stop);
    ASSERT_EQ(wa.steps, wb.steps);
  }
}

TEST(RandomWalkTest, DeadEndReturnsToOrigin) {
  // Path 0->1: a walk from 1 that decides to move has nowhere to go and
  // jumps back to its origin 1, so it can only ever stop at 1.
  Graph g = PathGraph(2);
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(RandomWalk(g, 1, 0.2, rng).stop, 1u);
  }
}

TEST(RandomWalkTest, HighAlphaStopsAtOriginOften) {
  Graph g = CycleGraph(8);
  Rng rng(13);
  int at_origin = 0;
  constexpr int kWalks = 100000;
  for (int i = 0; i < kWalks; ++i) {
    if (RandomWalk(g, 0, 0.9, rng).stop == 0) at_origin++;
  }
  // P(stop at origin) >= alpha = 0.9 (plus full-cycle returns).
  EXPECT_GT(at_origin, static_cast<int>(0.9 * kWalks) - 500);
}

TEST(RandomWalkTest, ExpectedStepsFormula) {
  EXPECT_DOUBLE_EQ(ExpectedWalkSteps(0.2), 4.0);
  EXPECT_DOUBLE_EQ(ExpectedWalkSteps(0.5), 1.0);
}

}  // namespace
}  // namespace ppr
