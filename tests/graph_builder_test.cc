#include "graph/graph_builder.h"

#include <gtest/gtest.h>

namespace ppr {
namespace {

TEST(GraphBuilderTest, BuildsSimpleGraph) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  Graph g = b.Build();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(GraphBuilderTest, RemovesSelfLoopsByDefault) {
  GraphBuilder b;
  b.AddEdge(0, 0);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);
  Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(GraphBuilderTest, KeepsSelfLoopsWhenAsked) {
  GraphBuilder b;
  b.AddEdge(0, 0);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);
  BuildOptions options;
  options.remove_self_loops = false;
  Graph g = b.Build(options);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.HasEdge(0, 0));
}

TEST(GraphBuilderTest, DeduplicatesParallelEdges) {
  GraphBuilder b;
  for (int i = 0; i < 5; ++i) b.AddEdge(0, 1);
  b.AddEdge(1, 0);
  Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.OutDegree(0), 1u);
}

TEST(GraphBuilderTest, SymmetrizeAddsReverseEdges) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  BuildOptions options;
  options.symmetrize = true;
  Graph g = b.Build(options);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 1));
}

TEST(GraphBuilderTest, SymmetrizeDeduplicatesMutualEdges) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);  // already mutual: symmetrizing must not double it
  BuildOptions options;
  options.symmetrize = true;
  Graph g = b.Build(options);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphBuilderTest, RemovesIsolatedNodesAndRelabelsDensely) {
  GraphBuilder b;
  // Node ids 10, 20, 30 with gaps; 25 is never referenced.
  b.AddEdge(10, 20);
  b.AddEdge(20, 30);
  b.AddEdge(30, 10);
  Graph g = b.Build();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  // Relative order preserved: 10 -> 0, 20 -> 1, 30 -> 2.
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(2, 0));
}

TEST(GraphBuilderTest, KeepIsolatedPreservesUniverse) {
  GraphBuilder b;
  b.AddEdge(0, 5);
  BuildOptions options;
  options.remove_isolated = false;
  Graph g = b.Build(options);
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.CountDeadEnds(), 5u);
}

TEST(GraphBuilderTest, AdjacencyListsAreSorted) {
  GraphBuilder b;
  b.AddEdge(0, 3);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  Graph g = b.Build();
  auto nbrs = g.OutNeighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(GraphBuilderTest, BuilderIsReusableAfterBuild) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  Graph g1 = b.Build();
  EXPECT_EQ(b.num_pending_edges(), 0u);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g2 = b.Build();
  EXPECT_EQ(g1.num_edges(), 1u);
  EXPECT_EQ(g2.num_edges(), 2u);
}

TEST(GraphBuilderTest, BuildInAdjacencyOption) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  BuildOptions options;
  options.build_in_adjacency = true;
  Graph g = b.Build(options);
  EXPECT_TRUE(g.has_in_adjacency());
  EXPECT_EQ(g.InDegree(1), 1u);
}

TEST(GraphBuilderTest, FromEdgesStaticHelper) {
  Graph g = GraphBuilder::FromEdges({{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(GraphBuilderTest, EmptyBuildProducesEmptyGraph) {
  GraphBuilder b;
  Graph g = b.Build();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

}  // namespace
}  // namespace ppr
