#ifndef PPR_TESTS_TEST_UTIL_H_
#define PPR_TESTS_TEST_UTIL_H_

#include <cmath>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "util/logging.h"
#include "util/rng.h"

namespace ppr {
namespace testing {

/// Exact PPR by dense Gaussian elimination — an implementation
/// *independent* of every solver under test. Solves
/// (I − (1−α)·P̃ᵀ)·x = α·e_s where P̃ is the transition matrix with the
/// dead-end→source convention baked in (row of a dead end is e_s).
/// Only for small graphs (O(n³)).
inline std::vector<double> ExactPprDense(const Graph& graph, NodeId source,
                                         double alpha) {
  const NodeId n = graph.num_nodes();
  PPR_CHECK(n <= 512) << "dense solve is for small test graphs";
  // a[r][c] = (I − (1−α)P̃ᵀ)[r][c]; rhs = α e_s.
  std::vector<std::vector<double>> a(n, std::vector<double>(n, 0.0));
  std::vector<double> x(n, 0.0);
  for (NodeId i = 0; i < n; ++i) a[i][i] = 1.0;
  for (NodeId u = 0; u < n; ++u) {
    const NodeId d = graph.OutDegree(u);
    if (d == 0) {
      a[source][u] -= (1.0 - alpha);  // dead end: jump back to source
    } else {
      const double w = (1.0 - alpha) / d;
      for (NodeId v : graph.OutNeighbors(u)) a[v][u] -= w;
    }
  }
  x[source] = alpha;

  // Gaussian elimination with partial pivoting.
  for (NodeId k = 0; k < n; ++k) {
    NodeId pivot = k;
    for (NodeId r = k + 1; r < n; ++r) {
      if (std::fabs(a[r][k]) > std::fabs(a[pivot][k])) pivot = r;
    }
    PPR_CHECK(std::fabs(a[pivot][k]) > 1e-12);
    std::swap(a[k], a[pivot]);
    std::swap(x[k], x[pivot]);
    for (NodeId r = k + 1; r < n; ++r) {
      const double f = a[r][k] / a[k][k];
      if (f == 0.0) continue;
      for (NodeId c = k; c < n; ++c) a[r][c] -= f * a[k][c];
      x[r] -= f * x[k];
    }
  }
  for (NodeId k = n; k-- > 0;) {
    double sum = x[k];
    for (NodeId c = k + 1; c < n; ++c) sum -= a[k][c] * x[c];
    x[k] = sum / a[k][k];
  }
  return x;
}

/// Sum of a vector's entries.
inline double Sum(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

/// A small zoo of structurally diverse graphs for property sweeps.
struct TestGraphCase {
  std::string name;
  Graph graph;
};

inline std::vector<TestGraphCase> SmallGraphZoo() {
  Rng rng(1234);
  std::vector<TestGraphCase> zoo;
  zoo.push_back({"paper_example", PaperExampleGraph()});
  zoo.push_back({"cycle_16", CycleGraph(16)});
  zoo.push_back({"path_12", PathGraph(12)});  // has a dead end
  zoo.push_back({"star_20", StarGraph(20)});
  zoo.push_back({"complete_10", CompleteGraph(10)});
  zoo.push_back({"grid_5x5", GridGraph(5, 5)});
  zoo.push_back({"er_100", ErdosRenyi(100, 4.0, rng)});
  zoo.push_back({"ba_120", BarabasiAlbert(120, 3, rng)});
  zoo.push_back({"chunglu_150", ChungLuPowerLaw(150, 6.0, 2.5, rng)});
  zoo.push_back({"copyweb_100", CopyModelWeb(100, 4, 0.5, rng)});
  return zoo;
}

}  // namespace testing
}  // namespace ppr

#endif  // PPR_TESTS_TEST_UTIL_H_
