// Conformance for the fused multi-source batch tier (api/batch_solver.h
// + core/multi_source.cc): at every batch size and thread count, a
// fused SolveMany must agree with B independent serial solves of the
// same spec — bit-identical where the per-column op sequence is
// replicated exactly (serial dense kernels, FORA's walk phase), within
// 1e-12 where a parallel merge reorders float additions. The suites are
// named Batch* so scripts/check.sh runs them under TSAN as well.

#include "api/batch_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/registry.h"
#include "eval/metrics.h"
#include "eval/query_gen.h"
#include "graph/generators.h"
#include "test_util.h"
#include "util/rng.h"

namespace ppr {
namespace {

Graph TestGraph() {
  Rng rng(99);
  return BarabasiAlbert(120, 3, rng);
}

std::unique_ptr<Solver> MakeSolver(const std::string& spec,
                                   const Graph& graph) {
  auto created = SolverRegistry::Global().Create(spec);
  EXPECT_TRUE(created.ok()) << spec << ": " << created.status().ToString();
  std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
  EXPECT_TRUE(solver->Prepare(graph).ok()) << spec;
  return solver;
}

std::vector<PprQuery> MakeQueries(const Graph& graph, size_t count) {
  std::vector<PprQuery> queries(count);
  const auto sources = SampleQuerySources(graph, count, /*seed=*/3);
  for (size_t i = 0; i < count; ++i) queries[i].source = sources[i];
  return queries;
}

void ExpectClose(const std::vector<double>& a, const std::vector<double>& b,
                 double tolerance, const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t v = 0; v < a.size(); ++v) {
    if (tolerance == 0.0) {
      ASSERT_EQ(a[v], b[v]) << context << " node " << v;
    } else {
      ASSERT_NEAR(a[v], b[v], tolerance) << context << " node " << v;
    }
  }
}

// Fused powitr vs the classic (batch=0) serial power iteration: the
// fused power mode replays the serial kernel's per-column op sequence,
// so single-threaded blocks are bit-identical at every B, and parallel
// blocks stay within the SpMV merge tolerance.
TEST(BatchFusedTest, PowitrFusedMatchesClassicSerial) {
  const Graph graph = TestGraph();
  auto classic = MakeSolver("powitr:lambda=1e-6", graph);
  const std::vector<PprQuery> queries = MakeQueries(graph, 8);

  SolverContext serial_context;
  std::vector<PprResult> expected(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(
        classic->Solve(queries[i], serial_context, &expected[i]).ok());
  }

  for (unsigned threads : {1u, 4u}) {
    for (size_t batch : {1u, 2u, 3u, 8u}) {
      const std::string spec = "powitr:lambda=1e-6,batch=" +
                               std::to_string(batch) +
                               ",threads=" + std::to_string(threads);
      auto solver = MakeSolver(spec, graph);
      BatchSolver* fused = solver->AsBatch();
      ASSERT_NE(fused, nullptr) << spec;
      EXPECT_EQ(fused->max_fused(), batch);

      SolverContext context;
      std::vector<PprResult> results;
      std::vector<Status> statuses;
      ASSERT_TRUE(fused->SolveMany(queries, context, &results, &statuses).ok())
          << spec;
      ASSERT_EQ(results.size(), queries.size());
      for (size_t i = 0; i < queries.size(); ++i) {
        ASSERT_TRUE(statuses[i].ok()) << spec;
        // Serial blocks replicate the op sequence exactly; parallel
        // blocks reorder the merge, so only 1e-12 agreement is claimed.
        ExpectClose(results[i].scores, expected[i].scores,
                    threads <= 1 ? 0.0 : 1e-12,
                    spec + " query " + std::to_string(i));
        EXPECT_EQ(results[i].solver, "powitr");
      }
    }
  }
}

// Fused fwdpush vs per-query Solve on the same spec (batch= switches
// the whole spec onto the deterministic node-ordered scan discipline,
// so the B=1 DoSolve path IS the independent-serial baseline).
TEST(BatchFusedTest, FwdpushFusedMatchesPerQuerySolve) {
  const Graph graph = TestGraph();
  const std::vector<PprQuery> queries = MakeQueries(graph, 8);

  for (unsigned threads : {1u, 4u}) {
    for (size_t batch : {1u, 2u, 3u, 8u}) {
      const std::string spec = "fwdpush:rmax=1e-6,batch=" +
                               std::to_string(batch) +
                               ",threads=" + std::to_string(threads);
      auto solver = MakeSolver(spec, graph);
      BatchSolver* fused = solver->AsBatch();
      ASSERT_NE(fused, nullptr) << spec;

      SolverContext serial_context;
      std::vector<PprResult> expected(queries.size());
      for (size_t i = 0; i < queries.size(); ++i) {
        ASSERT_TRUE(
            solver->Solve(queries[i], serial_context, &expected[i]).ok());
      }

      SolverContext context;
      std::vector<PprResult> results;
      ASSERT_TRUE(fused->SolveMany(queries, context, &results).ok()) << spec;
      for (size_t i = 0; i < queries.size(); ++i) {
        // The B=1 baseline and the fused block partition the scatter
        // differently under threads > 1, so exact equality is only
        // claimed for the serial scan.
        ExpectClose(results[i].scores, expected[i].scores,
                    threads <= 1 ? 0.0 : 1e-12,
                    spec + " query " + std::to_string(i));
      }
    }
  }
}

// The advertised certificate survives fusion: every fused fwdpush
// result obeys its ℓ1 bound against the dense exact solution, and
// reserve+residue mass is conserved.
TEST(BatchFusedTest, FwdpushFusedKeepsCertificateAndMass) {
  const Graph graph = PaperExampleGraph();
  auto solver = MakeSolver("fwdpush:rmax=1e-8,batch=4", graph);
  BatchSolver* fused = solver->AsBatch();
  ASSERT_NE(fused, nullptr);

  std::vector<PprQuery> queries(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    queries[v].source = v;
    queries[v].want_residues = true;
  }
  SolverContext context;
  std::vector<PprResult> results;
  ASSERT_TRUE(fused->SolveMany(queries, context, &results).ok());

  for (size_t i = 0; i < queries.size(); ++i) {
    const PprResult& r = results[i];
    ASSERT_FALSE(r.residues.empty());
    EXPECT_NEAR(testing::Sum(r.scores) + testing::Sum(r.residues), 1.0, 1e-12);
    const std::vector<double> exact =
        testing::ExactPprDense(graph, queries[i].source, 0.2);
    double l1 = 0.0;
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      l1 += std::fabs(r.scores[v] - exact[v]);
    }
    EXPECT_LE(l1, r.l1_bound) << "source " << queries[i].source;
    EXPECT_TRUE(std::isfinite(r.l1_bound));
  }
}

// Fused FORA with explicit seeds is bit-identical to Reseed(seed) +
// Solve of the same spec, at every batch size and thread count: the
// scan phase is forced serial inside the fused kernel and the walk
// phase is thread-count-invariant by construction.
TEST(BatchForaTest, FusedBitIdenticalToSeededSerial) {
  const Graph graph = TestGraph();
  const std::vector<PprQuery> queries = MakeQueries(graph, 6);
  std::vector<uint64_t> seeds(queries.size());
  for (size_t i = 0; i < seeds.size(); ++i) {
    seeds[i] = SplitStream(0xf04a, i).NextUint64();
  }

  for (unsigned threads : {1u, 4u}) {
    for (size_t batch : {1u, 3u, 6u}) {
      const std::string spec = "fora:eps=0.5,batch=" + std::to_string(batch) +
                               ",threads=" + std::to_string(threads);
      auto solver = MakeSolver(spec, graph);
      BatchSolver* fused = solver->AsBatch();
      ASSERT_NE(fused, nullptr) << spec;

      SolverContext serial_context;
      std::vector<PprResult> expected(queries.size());
      for (size_t i = 0; i < queries.size(); ++i) {
        serial_context.Reseed(seeds[i]);
        ASSERT_TRUE(
            solver->Solve(queries[i], serial_context, &expected[i]).ok());
      }

      SolverContext context;
      std::vector<PprResult> results;
      std::vector<Status> statuses;
      ASSERT_TRUE(fused
                      ->SolveMany(queries, context, &results, &statuses,
                                  seeds)
                      .ok())
          << spec;
      for (size_t i = 0; i < queries.size(); ++i) {
        ExpectClose(results[i].scores, expected[i].scores, 0.0,
                    spec + " query " + std::to_string(i));
      }
    }
  }
}

// An unseeded SolveMany derives per-query streams from the context RNG,
// so two contexts reseeded identically reproduce each other exactly.
TEST(BatchForaTest, UnseededSolveManyReproducibleFromContextSeed) {
  const Graph graph = TestGraph();
  auto solver = MakeSolver("fora:eps=0.5,batch=4", graph);
  BatchSolver* fused = solver->AsBatch();
  ASSERT_NE(fused, nullptr);
  const std::vector<PprQuery> queries = MakeQueries(graph, 4);

  std::vector<PprResult> first, second;
  SolverContext a(/*seed=*/42), b(/*seed=*/42);
  ASSERT_TRUE(fused->SolveMany(queries, a, &first).ok());
  ASSERT_TRUE(fused->SolveMany(queries, b, &second).ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectClose(first[i].scores, second[i].scores, 0.0,
                "query " + std::to_string(i));
  }
}

// Top-k early retirement changes the work, never the answer set: the
// returned top-k ids match the non-early run as a set, and the early
// run performs no more sweeps. With topk_early the solver stops
// claiming an ℓ1 bound for top-k queries (the retired columns' rsum
// sits above the certificate).
TEST(BatchTopKEarlyTest, SetEqualWithFewerSweeps) {
  const Graph graph = TestGraph();
  constexpr size_t kTopK = 5;
  const std::vector<PprQuery> base = MakeQueries(graph, 8);
  std::vector<PprQuery> queries = base;
  for (PprQuery& q : queries) q.top_k = kTopK;

  auto run = [&](const std::string& spec, std::vector<PprResult>* results) {
    auto solver = MakeSolver(spec, graph);
    BatchSolver* fused = solver->AsBatch();
    ASSERT_NE(fused, nullptr) << spec;
    SolverContext context;
    ASSERT_TRUE(fused->SolveMany(queries, context, results).ok()) << spec;
  };

  std::vector<PprResult> plain, early;
  run("fwdpush:rmax=1e-7,batch=8", &plain);
  run("fwdpush:rmax=1e-7,batch=8,topk_early=1", &early);

  uint64_t plain_iters = 0, early_iters = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    std::vector<NodeId> a = plain[i].top_nodes;
    std::vector<NodeId> b = early[i].top_nodes;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "top-k set changed for query " << i;
    EXPECT_TRUE(std::isfinite(plain[i].l1_bound));
    EXPECT_TRUE(std::isinf(early[i].l1_bound));
    plain_iters += plain[i].stats.iterations;
    early_iters += early[i].stats.iterations;
  }
  EXPECT_LE(early_iters, plain_iters);
}

// One bad query fails alone: its status is InvalidArgument while the
// rest of the block solves normally.
TEST(BatchFusedTest, PerQueryValidationDoesNotPoisonTheBlock) {
  const Graph graph = TestGraph();
  auto solver = MakeSolver("powitr:lambda=1e-5,batch=4", graph);
  BatchSolver* fused = solver->AsBatch();
  ASSERT_NE(fused, nullptr);

  std::vector<PprQuery> queries = MakeQueries(graph, 3);
  queries[1].source = graph.num_nodes() + 7;  // out of range

  SolverContext context;
  std::vector<PprResult> results;
  std::vector<Status> statuses;
  const Status first =
      fused->SolveMany(queries, context, &results, &statuses);
  EXPECT_EQ(first.code(), StatusCode::kInvalidArgument);
  ASSERT_EQ(statuses.size(), 3u);
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_EQ(statuses[1].code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(statuses[2].ok());
  EXPECT_EQ(results[0].scores.size(), graph.num_nodes());
  EXPECT_TRUE(results[1].scores.empty());
  EXPECT_EQ(results[2].scores.size(), graph.num_nodes());
}

// n·B must fit the NodeId block index; a graph big enough to overflow
// it at batch=4096 is rejected up front instead of corrupting offsets.
TEST(BatchFusedTest, RejectsBlockIndexOverflow) {
  const NodeId n =
      static_cast<NodeId>(std::numeric_limits<NodeId>::max() / 4096 + 2);
  const Graph graph = PathGraph(n);
  auto solver = MakeSolver("powitr:lambda=1e-2,batch=4096", graph);
  BatchSolver* fused = solver->AsBatch();
  ASSERT_NE(fused, nullptr);

  std::vector<PprQuery> queries(1);
  SolverContext context;
  std::vector<PprResult> results;
  std::vector<Status> statuses;
  const Status status =
      fused->SolveMany(queries, context, &results, &statuses);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].code(), StatusCode::kInvalidArgument);
}

// Registry option validation: batch caps at 4096, topk_early requires a
// batch, and speedppr/prioritypush do not accept batch at all.
TEST(BatchFusedTest, RegistryOptionValidation) {
  EXPECT_FALSE(SolverRegistry::Global().Create("powitr:batch=4097").ok());
  EXPECT_FALSE(SolverRegistry::Global().Create("powitr:topk_early=1").ok());
  EXPECT_FALSE(SolverRegistry::Global().Create("speedppr:batch=4").ok());
  EXPECT_FALSE(SolverRegistry::Global().Create("prioritypush:batch=4").ok());
  auto ok = SolverRegistry::Global().Create("fwdpush:batch=16,topk_early=1");
  EXPECT_TRUE(ok.ok());
}

}  // namespace
}  // namespace ppr
