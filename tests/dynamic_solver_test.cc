// Conformance suite for the DynamicSolver concept and its first
// implementation, "dynfwdpush": registry creation, the ApplyUpdates
// contract (atomic validation, epoch advance, original-id mapping under
// order= layouts), and the acceptance bound — after any applied update
// sequence the estimate matches a from-scratch solve on Snapshot()
// within the advertised Σ|r| ℓ1 bound.

#include "api/dynamic_solver.h"

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/context.h"
#include "api/registry.h"
#include "eval/metrics.h"
#include "eval/query_gen.h"
#include "graph/generators.h"
#include "test_util.h"

namespace ppr {
namespace {

using ::ppr::testing::ExactPprDense;

constexpr uint64_t kSeed = 20260731;

/// Creates a prepared dynfwdpush and returns its dynamic interface.
struct Prepared {
  std::unique_ptr<Solver> solver;
  DynamicSolver* dynamic = nullptr;
};

Prepared MakeDynamic(const std::string& spec, const Graph& graph) {
  Prepared p;
  auto created = SolverRegistry::Global().Create(spec);
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  p.solver = std::move(created).ValueOrDie();
  EXPECT_TRUE(p.solver->Prepare(graph).ok());
  p.dynamic = p.solver->AsDynamic();
  EXPECT_NE(p.dynamic, nullptr);
  return p;
}

TEST(DynamicSolverTest, RegistryExposesTheDynamicCapability) {
  ASSERT_TRUE(SolverRegistry::Global().Contains("dynfwdpush"));
  auto created = SolverRegistry::Global().Create("dynfwdpush");
  ASSERT_TRUE(created.ok());
  EXPECT_TRUE(created.value()->capabilities().supports_updates);
  EXPECT_NE(created.value()->AsDynamic(), nullptr);

  // Static solvers stay static.
  auto powerpush = SolverRegistry::Global().Create("powerpush");
  ASSERT_TRUE(powerpush.ok());
  EXPECT_FALSE(powerpush.value()->capabilities().supports_updates);
  EXPECT_EQ(powerpush.value()->AsDynamic(), nullptr);
}

TEST(DynamicSolverTest, ApplyBeforePrepareFailsCleanly) {
  auto created = SolverRegistry::Global().Create("dynfwdpush");
  ASSERT_TRUE(created.ok());
  UpdateBatch batch;
  batch.Insert(0, 1);
  Status status =
      created.value()->AsDynamic()->ApplyUpdates(batch, nullptr);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(DynamicSolverTest, EstimateTracksSnapshotWithinAdvertisedBound) {
  // The acceptance criterion, across specs that vary rmax and layout:
  // after every applied chunk of a mixed insert/delete stream, Solve's
  // scores match a dense exact solve on Snapshot() within l1_bound.
  Rng rng(4);
  Graph graph = ErdosRenyi(60, 3.0, rng);
  for (const char* spec :
       {"dynfwdpush:rmax=1e-9", "dynfwdpush:lambda=1e-7",
        "dynfwdpush:rmax=1e-9,order=degree",
        "dynfwdpush:rmax=1e-9,order=bfs", "dynfwdpush:rmax=1e-9,threads=4"}) {
    Prepared p = MakeDynamic(spec, graph);

    UpdateWorkloadOptions workload;
    workload.count = 60;
    workload.delete_fraction = 0.35;
    workload.seed = 9;
    UpdateBatch stream = GenerateUpdateStream(graph, workload);

    SolverContext context(kSeed);
    PprQuery query;
    query.source = 1;
    constexpr size_t kChunks = 3;
    for (size_t c = 0; c < kChunks; ++c) {
      UpdateBatch chunk;
      chunk.updates.assign(
          stream.updates.begin() + c * stream.size() / kChunks,
          stream.updates.begin() + (c + 1) * stream.size() / kChunks);
      UpdateStats stats;
      ASSERT_TRUE(p.dynamic->ApplyUpdates(chunk, &stats).ok()) << spec;
      EXPECT_EQ(stats.epoch, p.dynamic->epoch()) << spec;

      PprResult result;
      ASSERT_TRUE(p.solver->Solve(query, context, &result).ok()) << spec;
      EXPECT_EQ(result.epoch, p.dynamic->epoch()) << spec;

      Graph snapshot = p.dynamic->Snapshot();
      ASSERT_EQ(snapshot.num_nodes(), graph.num_nodes()) << spec;
      const std::vector<double> exact =
          ExactPprDense(snapshot, query.source, 0.2);
      ASSERT_LT(L1Distance(result.scores, exact), result.l1_bound + 1e-11)
          << spec << " chunk " << c;
    }
    EXPECT_EQ(p.dynamic->epoch(), stream.size()) << spec;
  }
}

TEST(DynamicSolverTest, SnapshotSpeaksOriginalIdsUnderOrderLayouts) {
  // Before any update, the snapshot of an order=-configured solver must
  // equal the original graph — the layout is an internal detail.
  Rng rng(8);
  Graph graph = BarabasiAlbert(80, 3, rng);
  Prepared p = MakeDynamic("dynfwdpush:order=degree", graph);
  Graph snapshot = p.dynamic->Snapshot();
  ASSERT_EQ(snapshot.num_nodes(), graph.num_nodes());
  ASSERT_EQ(snapshot.num_edges(), graph.num_edges());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    std::vector<NodeId> expected(graph.OutNeighbors(v).begin(),
                                 graph.OutNeighbors(v).end());
    std::vector<NodeId> got(snapshot.OutNeighbors(v).begin(),
                            snapshot.OutNeighbors(v).end());
    std::sort(expected.begin(), expected.end());
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, expected) << "v=" << v;
  }

  // Updates speak original ids too: inserting (u, w) must show up as
  // (u, w) in the snapshot, whatever the internal labeling.
  UpdateBatch batch;
  batch.Insert(79, 0);
  ASSERT_TRUE(p.dynamic->ApplyUpdates(batch, nullptr).ok());
  Graph after = p.dynamic->Snapshot();
  EXPECT_TRUE(after.HasEdge(79, 0));
}

TEST(DynamicSolverTest, InvalidBatchesLeaveStateUntouched) {
  Graph graph = PathGraph(5);
  Prepared p = MakeDynamic("dynfwdpush:rmax=1e-8", graph);
  SolverContext context(kSeed);
  PprQuery query;
  query.source = 0;
  PprResult before;
  ASSERT_TRUE(p.solver->Solve(query, context, &before).ok());

  for (const auto& make_bad : {
           +[](UpdateBatch* b) { b->Insert(0, 99); },     // out of range
           +[](UpdateBatch* b) { b->Insert(2, 2); },      // self-loop
           +[](UpdateBatch* b) { b->Delete(4, 0); },      // absent edge
           +[](UpdateBatch* b) { b->Insert(0, 2).Delete(0, 2).Delete(0, 2); },
       }) {
    UpdateBatch bad;
    make_bad(&bad);
    Status status = p.dynamic->ApplyUpdates(bad, nullptr);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(p.dynamic->epoch(), 0u);
    PprResult after;
    ASSERT_TRUE(p.solver->Solve(query, context, &after).ok());
    EXPECT_EQ(after.scores, before.scores);
    EXPECT_EQ(after.epoch, 0u);
  }
}

TEST(DynamicSolverTest, PerQueryParameterOverridesAreRejected) {
  // The maintained estimate is bound to its construction-time alpha and
  // rmax; silently answering at other parameters would be wrong.
  Graph graph = PathGraph(4);
  Prepared p = MakeDynamic("dynfwdpush", graph);
  SolverContext context(kSeed);
  PprResult result;

  PprQuery alpha_query;
  alpha_query.source = 0;
  alpha_query.alpha = 0.5;
  EXPECT_EQ(p.solver->Solve(alpha_query, context, &result).code(),
            StatusCode::kInvalidArgument);

  PprQuery lambda_query;
  lambda_query.source = 0;
  lambda_query.lambda = 1e-4;
  EXPECT_EQ(p.solver->Solve(lambda_query, context, &result).code(),
            StatusCode::kInvalidArgument);
}

TEST(DynamicSolverTest, ResultsCarryTheEpochAndStaticSolversStampZero) {
  Graph graph = PathGraph(4);
  Prepared p = MakeDynamic("dynfwdpush", graph);
  SolverContext context(kSeed);
  PprQuery query;
  query.source = 0;
  PprResult result;
  ASSERT_TRUE(p.solver->Solve(query, context, &result).ok());
  EXPECT_EQ(result.epoch, 0u);

  UpdateBatch batch;
  batch.Insert(3, 0).Insert(3, 1);
  ASSERT_TRUE(p.dynamic->ApplyUpdates(batch, nullptr).ok());
  ASSERT_TRUE(p.solver->Solve(query, context, &result).ok());
  EXPECT_EQ(result.epoch, 2u);

  // A static solver reuses the same PprResult without inheriting the
  // stale epoch.
  auto powerpush = SolverRegistry::Global().Create("powerpush");
  ASSERT_TRUE(powerpush.ok());
  ASSERT_TRUE(powerpush.value()->Prepare(graph).ok());
  ASSERT_TRUE(powerpush.value()->Solve(query, context, &result).ok());
  EXPECT_EQ(result.epoch, 0u);
}

TEST(DynamicSolverTest, WantResiduesExportsTheSignedCertificate) {
  Rng rng(12);
  Graph graph = ErdosRenyi(40, 3.0, rng);
  Prepared p = MakeDynamic("dynfwdpush:rmax=1e-7", graph);

  UpdateWorkloadOptions workload;
  workload.count = 20;
  workload.delete_fraction = 0.5;
  workload.seed = 31;
  ASSERT_TRUE(
      p.dynamic->ApplyUpdates(GenerateUpdateStream(graph, workload), nullptr)
          .ok());

  SolverContext context(kSeed);
  PprQuery query;
  query.source = 2;
  query.want_residues = true;
  PprResult result;
  ASSERT_TRUE(p.solver->Solve(query, context, &result).ok());
  ASSERT_TRUE(result.has_residues());
  // Signed mass conservation survives updates: reserve + residue = 1.
  double total = 0.0;
  for (double x : result.scores) total += x;
  for (double r : result.residues) total += r;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // And Σ|r| stays within the advertised bound.
  double l1 = 0.0;
  for (double r : result.residues) l1 += std::fabs(r);
  EXPECT_LE(l1, result.l1_bound + 1e-12);
}

}  // namespace
}  // namespace ppr
