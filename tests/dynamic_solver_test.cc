// Conformance suite for the DynamicSolver concept and its three
// implementations — the exact tier "dynfwdpush" and the walk-index
// approximate tier "dynfora"/"dynspeedppr": registry creation, the
// ApplyUpdates contract (atomic validation, epoch advance, original-id
// mapping under order= layouts, walks_resampled accounting), and the
// acceptance bound — after any applied update sequence the estimate
// matches a from-scratch solve on Snapshot() within the advertised ℓ1
// bound (Σ|r| for the exact tier, ε for the approximate tier).

#include "api/dynamic_solver.h"

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/context.h"
#include "api/registry.h"
#include "eval/metrics.h"
#include "eval/query_gen.h"
#include "graph/generators.h"
#include "test_util.h"

namespace ppr {
namespace {

using ::ppr::testing::ExactPprDense;

constexpr uint64_t kSeed = 20260731;

/// Creates a prepared dynfwdpush and returns its dynamic interface.
struct Prepared {
  std::unique_ptr<Solver> solver;
  DynamicSolver* dynamic = nullptr;
};

Prepared MakeDynamic(const std::string& spec, const Graph& graph) {
  Prepared p;
  auto created = SolverRegistry::Global().Create(spec);
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  p.solver = std::move(created).ValueOrDie();
  EXPECT_TRUE(p.solver->Prepare(graph).ok());
  p.dynamic = p.solver->AsDynamic();
  EXPECT_NE(p.dynamic, nullptr);
  return p;
}

/// The three registered dynamic solvers; every contract test sweeps
/// them.
const char* const kDynamicNames[] = {"dynfwdpush", "dynfora", "dynspeedppr"};

TEST(DynamicSolverTest, RegistryExposesTheDynamicCapability) {
  for (const char* name : kDynamicNames) {
    ASSERT_TRUE(SolverRegistry::Global().Contains(name)) << name;
    auto created = SolverRegistry::Global().Create(name);
    ASSERT_TRUE(created.ok()) << name;
    EXPECT_TRUE(created.value()->capabilities().supports_updates) << name;
    EXPECT_NE(created.value()->AsDynamic(), nullptr) << name;
  }

  // Static solvers stay static — including the static two-phase
  // siblings of the new tier.
  for (const char* name : {"powerpush", "fora-index", "speedppr-index"}) {
    auto solver = SolverRegistry::Global().Create(name);
    ASSERT_TRUE(solver.ok()) << name;
    EXPECT_FALSE(solver.value()->capabilities().supports_updates) << name;
    EXPECT_EQ(solver.value()->AsDynamic(), nullptr) << name;
  }
}

TEST(DynamicSolverTest, ApplyBeforePrepareFailsCleanly) {
  for (const char* name : kDynamicNames) {
    auto created = SolverRegistry::Global().Create(name);
    ASSERT_TRUE(created.ok()) << name;
    UpdateBatch batch;
    batch.Insert(0, 1);
    Status status =
        created.value()->AsDynamic()->ApplyUpdates(batch, nullptr);
    EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition) << name;
  }
}

TEST(DynamicSolverTest, EstimateTracksSnapshotWithinAdvertisedBound) {
  // The acceptance criterion, across all three dynamic solvers and
  // specs that vary rmax, ε, layout and threading: after every applied
  // chunk of a mixed insert/delete stream, Solve's scores match a dense
  // exact solve on Snapshot() within l1_bound — Σ|r| for dynfwdpush,
  // the configured ε for the walk-index tier (whose phase-2 noise sits
  // far below it at these scales).
  Rng rng(4);
  Graph graph = ErdosRenyi(60, 3.0, rng);
  for (const char* spec :
       {"dynfwdpush:rmax=1e-9", "dynfwdpush:lambda=1e-7",
        "dynfwdpush:rmax=1e-9,order=degree",
        "dynfwdpush:rmax=1e-9,order=bfs", "dynfwdpush:rmax=1e-9,threads=4",
        "dynfora:eps=0.3", "dynfora:eps=0.3,index_eps=0.2",
        "dynfora:eps=0.3,order=degree", "dynfora:eps=0.3,threads=4",
        "dynspeedppr:eps=0.3", "dynspeedppr:eps=0.3,order=bfs",
        "dynspeedppr:eps=0.3,threads=4"}) {
    Prepared p = MakeDynamic(spec, graph);

    UpdateWorkloadOptions workload;
    workload.count = 60;
    workload.delete_fraction = 0.35;
    workload.seed = 9;
    UpdateBatch stream = GenerateUpdateStream(graph, workload).ValueOrDie();

    SolverContext context(kSeed);
    PprQuery query;
    query.source = 1;
    constexpr size_t kChunks = 3;
    for (size_t c = 0; c < kChunks; ++c) {
      UpdateBatch chunk;
      chunk.updates.assign(
          stream.updates.begin() + c * stream.size() / kChunks,
          stream.updates.begin() + (c + 1) * stream.size() / kChunks);
      UpdateStats stats;
      ASSERT_TRUE(p.dynamic->ApplyUpdates(chunk, &stats).ok()) << spec;
      EXPECT_EQ(stats.epoch, p.dynamic->epoch()) << spec;

      PprResult result;
      ASSERT_TRUE(p.solver->Solve(query, context, &result).ok()) << spec;
      EXPECT_EQ(result.epoch, p.dynamic->epoch()) << spec;

      Graph snapshot = p.dynamic->Snapshot();
      ASSERT_EQ(snapshot.num_nodes(), graph.num_nodes()) << spec;
      const std::vector<double> exact =
          ExactPprDense(snapshot, query.source, 0.2);
      ASSERT_LT(L1Distance(result.scores, exact), result.l1_bound + 1e-11)
          << spec << " chunk " << c;
    }
    EXPECT_EQ(p.dynamic->epoch(), stream.size()) << spec;
  }
}

TEST(DynamicSolverTest, SnapshotSpeaksOriginalIdsUnderOrderLayouts) {
  // Before any update, the snapshot of an order=-configured solver must
  // equal the original graph — the layout is an internal detail.
  Rng rng(8);
  Graph graph = BarabasiAlbert(80, 3, rng);
  for (const char* spec : {"dynfwdpush:order=degree", "dynfora:order=degree",
                           "dynspeedppr:order=degree"}) {
    Prepared p = MakeDynamic(spec, graph);
    Graph snapshot = p.dynamic->Snapshot();
    ASSERT_EQ(snapshot.num_nodes(), graph.num_nodes()) << spec;
    ASSERT_EQ(snapshot.num_edges(), graph.num_edges()) << spec;
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      std::vector<NodeId> expected(graph.OutNeighbors(v).begin(),
                                   graph.OutNeighbors(v).end());
      std::vector<NodeId> got(snapshot.OutNeighbors(v).begin(),
                              snapshot.OutNeighbors(v).end());
      std::sort(expected.begin(), expected.end());
      std::sort(got.begin(), got.end());
      ASSERT_EQ(got, expected) << spec << " v=" << v;
    }

    // Updates speak original ids too: inserting (u, w) must show up as
    // (u, w) in the snapshot, whatever the internal labeling.
    UpdateBatch batch;
    batch.Insert(79, 0);
    ASSERT_TRUE(p.dynamic->ApplyUpdates(batch, nullptr).ok()) << spec;
    Graph after = p.dynamic->Snapshot();
    EXPECT_TRUE(after.HasEdge(79, 0)) << spec;
  }
}

TEST(DynamicSolverTest, InvalidBatchesLeaveStateUntouched) {
  Graph graph = PathGraph(5);
  for (const char* name : kDynamicNames) {
    Prepared p = MakeDynamic(name, graph);
    SolverContext context(kSeed);
    PprQuery query;
    query.source = 0;
    PprResult before;
    context.Reseed(kSeed);  // randomized solvers: fix the walk stream
    ASSERT_TRUE(p.solver->Solve(query, context, &before).ok()) << name;

    for (const auto& make_bad : {
             +[](UpdateBatch* b) { b->Insert(0, 99); },     // out of range
             +[](UpdateBatch* b) { b->Insert(2, 2); },      // self-loop
             +[](UpdateBatch* b) { b->Delete(4, 0); },      // absent edge
             +[](UpdateBatch* b) {
               b->Insert(0, 2).Delete(0, 2).Delete(0, 2);
             },
         }) {
      UpdateBatch bad;
      make_bad(&bad);
      Status status = p.dynamic->ApplyUpdates(bad, nullptr);
      EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << name;
      EXPECT_EQ(p.dynamic->epoch(), 0u) << name;
      PprResult after;
      context.Reseed(kSeed);
      ASSERT_TRUE(p.solver->Solve(query, context, &after).ok()) << name;
      EXPECT_EQ(after.scores, before.scores) << name;
      EXPECT_EQ(after.epoch, 0u) << name;
    }
  }
}

TEST(DynamicSolverTest, PerQueryParameterOverridesAreRejected) {
  // The maintained estimates (and, for the walk-index tier, the index
  // and the W behind the walk counts) are bound to their construction-
  // time parameters; silently answering at other ones would be wrong.
  Graph graph = PathGraph(4);
  for (const char* name : kDynamicNames) {
    Prepared p = MakeDynamic(name, graph);
    SolverContext context(kSeed);
    PprResult result;

    PprQuery alpha_query;
    alpha_query.source = 0;
    alpha_query.alpha = 0.5;
    EXPECT_EQ(p.solver->Solve(alpha_query, context, &result).code(),
              StatusCode::kInvalidArgument)
        << name;

    PprQuery lambda_query;
    lambda_query.source = 0;
    lambda_query.lambda = 1e-4;
    EXPECT_EQ(p.solver->Solve(lambda_query, context, &result).code(),
              StatusCode::kInvalidArgument)
        << name;
  }

  // ε/μ are what the approximate tier's W is derived from.
  for (const char* name : {"dynfora", "dynspeedppr"}) {
    Prepared p = MakeDynamic(name, graph);
    SolverContext context(kSeed);
    PprResult result;

    PprQuery eps_query;
    eps_query.source = 0;
    eps_query.epsilon = 0.1;
    EXPECT_EQ(p.solver->Solve(eps_query, context, &result).code(),
              StatusCode::kInvalidArgument)
        << name;

    PprQuery mu_query;
    mu_query.source = 0;
    mu_query.mu = 0.01;
    EXPECT_EQ(p.solver->Solve(mu_query, context, &result).code(),
              StatusCode::kInvalidArgument)
        << name;
  }
}

TEST(DynamicSolverTest, ResultsCarryTheEpochAndStaticSolversStampZero) {
  Graph graph = PathGraph(4);
  for (const char* name : kDynamicNames) {
    Prepared p = MakeDynamic(name, graph);
    SolverContext context(kSeed);
    PprQuery query;
    query.source = 0;
    PprResult result;
    ASSERT_TRUE(p.solver->Solve(query, context, &result).ok()) << name;
    EXPECT_EQ(result.epoch, 0u) << name;

    UpdateBatch batch;
    batch.Insert(3, 0).Insert(3, 1);
    ASSERT_TRUE(p.dynamic->ApplyUpdates(batch, nullptr).ok()) << name;
    ASSERT_TRUE(p.solver->Solve(query, context, &result).ok()) << name;
    EXPECT_EQ(result.epoch, 2u) << name;
  }

  // A static solver reuses the same PprResult without inheriting the
  // stale epoch.
  SolverContext context(kSeed);
  PprQuery query;
  query.source = 0;
  PprResult result;
  auto powerpush = SolverRegistry::Global().Create("powerpush");
  ASSERT_TRUE(powerpush.ok());
  ASSERT_TRUE(powerpush.value()->Prepare(graph).ok());
  ASSERT_TRUE(powerpush.value()->Solve(query, context, &result).ok());
  EXPECT_EQ(result.epoch, 0u);
}

TEST(DynamicSolverTest, UpdateStatsReportWalksResampledForTheIndexedTier) {
  // BarabasiAlbert hubs sit on many walk paths, so a mixed stream must
  // invalidate some walks; the exact tier has no index and reports 0.
  Rng rng(14);
  Graph graph = BarabasiAlbert(60, 3, rng);
  UpdateWorkloadOptions workload;
  workload.count = 20;
  workload.delete_fraction = 0.3;
  workload.seed = 77;
  UpdateBatch stream = GenerateUpdateStream(graph, workload).ValueOrDie();

  for (const char* name : kDynamicNames) {
    Prepared p = MakeDynamic(name, graph);
    UpdateStats stats;
    ASSERT_TRUE(p.dynamic->ApplyUpdates(stream, &stats).ok()) << name;
    EXPECT_EQ(stats.epoch, stream.size()) << name;
    if (std::string(name) == "dynfwdpush") {
      EXPECT_EQ(stats.walks_resampled, 0u) << name;
    } else {
      EXPECT_GT(stats.walks_resampled, 0u) << name;
    }
  }
}

TEST(DynamicSolverTest, WantResiduesExportsTheSignedCertificate) {
  Rng rng(12);
  Graph graph = ErdosRenyi(40, 3.0, rng);
  Prepared p = MakeDynamic("dynfwdpush:rmax=1e-7", graph);

  UpdateWorkloadOptions workload;
  workload.count = 20;
  workload.delete_fraction = 0.5;
  workload.seed = 31;
  ASSERT_TRUE(p.dynamic
                  ->ApplyUpdates(
                      GenerateUpdateStream(graph, workload).ValueOrDie(),
                      nullptr)
                  .ok());

  SolverContext context(kSeed);
  PprQuery query;
  query.source = 2;
  query.want_residues = true;
  PprResult result;
  ASSERT_TRUE(p.solver->Solve(query, context, &result).ok());
  ASSERT_TRUE(result.has_residues());
  // Signed mass conservation survives updates: reserve + residue = 1.
  double total = 0.0;
  for (double x : result.scores) total += x;
  for (double r : result.residues) total += r;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // And Σ|r| stays within the advertised bound.
  double l1 = 0.0;
  for (double r : result.residues) l1 += std::fabs(r);
  EXPECT_LE(l1, result.l1_bound + 1e-12);
}

}  // namespace
}  // namespace ppr
