// Conformance suite for the DynamicSolver concept and its three
// implementations — the exact tier "dynfwdpush" and the walk-index
// approximate tier "dynfora"/"dynspeedppr": registry creation, the
// ApplyUpdates contract (atomic validation, epoch advance, original-id
// mapping under order= layouts, walks_resampled accounting), and the
// acceptance bound — after any applied update sequence the estimate
// matches a from-scratch solve on Snapshot() within the advertised ℓ1
// bound (Σ|r| for the exact tier, ε for the approximate tier).

#include "api/dynamic_solver.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/context.h"
#include "api/registry.h"
#include "eval/metrics.h"
#include "eval/query_gen.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "test_util.h"

namespace ppr {
namespace {

using ::ppr::testing::ExactPprDense;

constexpr uint64_t kSeed = 20260731;

/// Creates a prepared dynfwdpush and returns its dynamic interface.
struct Prepared {
  std::unique_ptr<Solver> solver;
  DynamicSolver* dynamic = nullptr;
};

Prepared MakeDynamic(const std::string& spec, const Graph& graph) {
  Prepared p;
  auto created = SolverRegistry::Global().Create(spec);
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  p.solver = std::move(created).ValueOrDie();
  EXPECT_TRUE(p.solver->Prepare(graph).ok());
  p.dynamic = p.solver->AsDynamic();
  EXPECT_NE(p.dynamic, nullptr);
  return p;
}

/// The three registered dynamic solvers; every contract test sweeps
/// them.
const char* const kDynamicNames[] = {"dynfwdpush", "dynfora", "dynspeedppr"};

TEST(DynamicSolverTest, RegistryExposesTheDynamicCapability) {
  for (const char* name : kDynamicNames) {
    ASSERT_TRUE(SolverRegistry::Global().Contains(name)) << name;
    auto created = SolverRegistry::Global().Create(name);
    ASSERT_TRUE(created.ok()) << name;
    EXPECT_TRUE(created.value()->capabilities().supports_updates) << name;
    EXPECT_NE(created.value()->AsDynamic(), nullptr) << name;
  }

  // Static solvers stay static — including the static two-phase
  // siblings of the new tier.
  for (const char* name : {"powerpush", "fora-index", "speedppr-index"}) {
    auto solver = SolverRegistry::Global().Create(name);
    ASSERT_TRUE(solver.ok()) << name;
    EXPECT_FALSE(solver.value()->capabilities().supports_updates) << name;
    EXPECT_EQ(solver.value()->AsDynamic(), nullptr) << name;
  }
}

TEST(DynamicSolverTest, ApplyBeforePrepareFailsCleanly) {
  for (const char* name : kDynamicNames) {
    auto created = SolverRegistry::Global().Create(name);
    ASSERT_TRUE(created.ok()) << name;
    UpdateBatch batch;
    batch.Insert(0, 1);
    Status status =
        created.value()->AsDynamic()->ApplyUpdates(batch, nullptr);
    EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition) << name;
  }
}

TEST(DynamicSolverTest, EstimateTracksSnapshotWithinAdvertisedBound) {
  // The acceptance criterion, across all three dynamic solvers and
  // specs that vary rmax, ε, layout and threading: after every applied
  // chunk of a mixed insert/delete stream, Solve's scores match a dense
  // exact solve on Snapshot() within l1_bound — Σ|r| for dynfwdpush,
  // the configured ε for the walk-index tier (whose phase-2 noise sits
  // far below it at these scales).
  Rng rng(4);
  Graph graph = ErdosRenyi(60, 3.0, rng);
  for (const char* spec :
       {"dynfwdpush:rmax=1e-9", "dynfwdpush:lambda=1e-7",
        "dynfwdpush:rmax=1e-9,order=degree",
        "dynfwdpush:rmax=1e-9,order=bfs", "dynfwdpush:rmax=1e-9,threads=4",
        "dynfora:eps=0.3", "dynfora:eps=0.3,index_eps=0.2",
        "dynfora:eps=0.3,order=degree", "dynfora:eps=0.3,threads=4",
        "dynspeedppr:eps=0.3", "dynspeedppr:eps=0.3,order=bfs",
        "dynspeedppr:eps=0.3,threads=4"}) {
    Prepared p = MakeDynamic(spec, graph);

    UpdateWorkloadOptions workload;
    workload.count = 60;
    workload.delete_fraction = 0.35;
    workload.seed = 9;
    UpdateBatch stream = GenerateUpdateStream(graph, workload).ValueOrDie();

    SolverContext context(kSeed);
    PprQuery query;
    query.source = 1;
    constexpr size_t kChunks = 3;
    for (size_t c = 0; c < kChunks; ++c) {
      UpdateBatch chunk;
      chunk.updates.assign(
          stream.updates.begin() + c * stream.size() / kChunks,
          stream.updates.begin() + (c + 1) * stream.size() / kChunks);
      UpdateStats stats;
      ASSERT_TRUE(p.dynamic->ApplyUpdates(chunk, &stats).ok()) << spec;
      EXPECT_EQ(stats.epoch, p.dynamic->epoch()) << spec;

      PprResult result;
      ASSERT_TRUE(p.solver->Solve(query, context, &result).ok()) << spec;
      EXPECT_EQ(result.epoch, p.dynamic->epoch()) << spec;

      Graph snapshot = p.dynamic->Snapshot();
      ASSERT_EQ(snapshot.num_nodes(), graph.num_nodes()) << spec;
      const std::vector<double> exact =
          ExactPprDense(snapshot, query.source, 0.2);
      ASSERT_LT(L1Distance(result.scores, exact), result.l1_bound + 1e-11)
          << spec << " chunk " << c;
    }
    EXPECT_EQ(p.dynamic->epoch(), stream.size()) << spec;
  }
}

TEST(DynamicSolverTest, SnapshotSpeaksOriginalIdsUnderOrderLayouts) {
  // Before any update, the snapshot of an order=-configured solver must
  // equal the original graph — the layout is an internal detail.
  Rng rng(8);
  Graph graph = BarabasiAlbert(80, 3, rng);
  for (const char* spec : {"dynfwdpush:order=degree", "dynfora:order=degree",
                           "dynspeedppr:order=degree"}) {
    Prepared p = MakeDynamic(spec, graph);
    Graph snapshot = p.dynamic->Snapshot();
    ASSERT_EQ(snapshot.num_nodes(), graph.num_nodes()) << spec;
    ASSERT_EQ(snapshot.num_edges(), graph.num_edges()) << spec;
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      std::vector<NodeId> expected(graph.OutNeighbors(v).begin(),
                                   graph.OutNeighbors(v).end());
      std::vector<NodeId> got(snapshot.OutNeighbors(v).begin(),
                              snapshot.OutNeighbors(v).end());
      std::sort(expected.begin(), expected.end());
      std::sort(got.begin(), got.end());
      ASSERT_EQ(got, expected) << spec << " v=" << v;
    }

    // Updates speak original ids too: inserting (u, w) must show up as
    // (u, w) in the snapshot, whatever the internal labeling.
    UpdateBatch batch;
    batch.Insert(79, 0);
    ASSERT_TRUE(p.dynamic->ApplyUpdates(batch, nullptr).ok()) << spec;
    Graph after = p.dynamic->Snapshot();
    EXPECT_TRUE(after.HasEdge(79, 0)) << spec;
  }
}

TEST(DynamicSolverTest, InvalidBatchesLeaveStateUntouched) {
  Graph graph = PathGraph(5);
  for (const char* name : kDynamicNames) {
    Prepared p = MakeDynamic(name, graph);
    SolverContext context(kSeed);
    PprQuery query;
    query.source = 0;
    PprResult before;
    context.Reseed(kSeed);  // randomized solvers: fix the walk stream
    ASSERT_TRUE(p.solver->Solve(query, context, &before).ok()) << name;

    for (const auto& make_bad : {
             +[](UpdateBatch* b) { b->Insert(0, 99); },     // out of range
             +[](UpdateBatch* b) { b->Insert(2, 2); },      // self-loop
             +[](UpdateBatch* b) { b->Delete(4, 0); },      // absent edge
             +[](UpdateBatch* b) {
               b->Insert(0, 2).Delete(0, 2).Delete(0, 2);
             },
         }) {
      UpdateBatch bad;
      make_bad(&bad);
      Status status = p.dynamic->ApplyUpdates(bad, nullptr);
      EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << name;
      EXPECT_EQ(p.dynamic->epoch(), 0u) << name;
      PprResult after;
      context.Reseed(kSeed);
      ASSERT_TRUE(p.solver->Solve(query, context, &after).ok()) << name;
      EXPECT_EQ(after.scores, before.scores) << name;
      EXPECT_EQ(after.epoch, 0u) << name;
    }
  }
}

TEST(DynamicSolverTest, PerQueryParameterOverridesAreRejected) {
  // The maintained estimates (and, for the walk-index tier, the index
  // and the W behind the walk counts) are bound to their construction-
  // time parameters; silently answering at other ones would be wrong.
  Graph graph = PathGraph(4);
  for (const char* name : kDynamicNames) {
    Prepared p = MakeDynamic(name, graph);
    SolverContext context(kSeed);
    PprResult result;

    PprQuery alpha_query;
    alpha_query.source = 0;
    alpha_query.alpha = 0.5;
    EXPECT_EQ(p.solver->Solve(alpha_query, context, &result).code(),
              StatusCode::kInvalidArgument)
        << name;

    PprQuery lambda_query;
    lambda_query.source = 0;
    lambda_query.lambda = 1e-4;
    EXPECT_EQ(p.solver->Solve(lambda_query, context, &result).code(),
              StatusCode::kInvalidArgument)
        << name;
  }

  // ε/μ are what the approximate tier's W is derived from.
  for (const char* name : {"dynfora", "dynspeedppr"}) {
    Prepared p = MakeDynamic(name, graph);
    SolverContext context(kSeed);
    PprResult result;

    PprQuery eps_query;
    eps_query.source = 0;
    eps_query.epsilon = 0.1;
    EXPECT_EQ(p.solver->Solve(eps_query, context, &result).code(),
              StatusCode::kInvalidArgument)
        << name;

    PprQuery mu_query;
    mu_query.source = 0;
    mu_query.mu = 0.01;
    EXPECT_EQ(p.solver->Solve(mu_query, context, &result).code(),
              StatusCode::kInvalidArgument)
        << name;
  }
}

TEST(DynamicSolverTest, ResultsCarryTheEpochAndStaticSolversStampZero) {
  Graph graph = PathGraph(4);
  for (const char* name : kDynamicNames) {
    Prepared p = MakeDynamic(name, graph);
    SolverContext context(kSeed);
    PprQuery query;
    query.source = 0;
    PprResult result;
    ASSERT_TRUE(p.solver->Solve(query, context, &result).ok()) << name;
    EXPECT_EQ(result.epoch, 0u) << name;

    UpdateBatch batch;
    batch.Insert(3, 0).Insert(3, 1);
    ASSERT_TRUE(p.dynamic->ApplyUpdates(batch, nullptr).ok()) << name;
    ASSERT_TRUE(p.solver->Solve(query, context, &result).ok()) << name;
    EXPECT_EQ(result.epoch, 2u) << name;
  }

  // A static solver reuses the same PprResult without inheriting the
  // stale epoch.
  SolverContext context(kSeed);
  PprQuery query;
  query.source = 0;
  PprResult result;
  auto powerpush = SolverRegistry::Global().Create("powerpush");
  ASSERT_TRUE(powerpush.ok());
  ASSERT_TRUE(powerpush.value()->Prepare(graph).ok());
  ASSERT_TRUE(powerpush.value()->Solve(query, context, &result).ok());
  EXPECT_EQ(result.epoch, 0u);
}

TEST(DynamicSolverTest, UpdateStatsReportWalksResampledForTheIndexedTier) {
  // BarabasiAlbert hubs sit on many walk paths, so a mixed stream must
  // invalidate some walks; the exact tier has no index and reports 0.
  Rng rng(14);
  Graph graph = BarabasiAlbert(60, 3, rng);
  UpdateWorkloadOptions workload;
  workload.count = 20;
  workload.delete_fraction = 0.3;
  workload.seed = 77;
  UpdateBatch stream = GenerateUpdateStream(graph, workload).ValueOrDie();

  for (const char* name : kDynamicNames) {
    Prepared p = MakeDynamic(name, graph);
    UpdateStats stats;
    ASSERT_TRUE(p.dynamic->ApplyUpdates(stream, &stats).ok()) << name;
    EXPECT_EQ(stats.epoch, stream.size()) << name;
    if (std::string(name) == "dynfwdpush") {
      EXPECT_EQ(stats.walks_resampled, 0u) << name;
    } else {
      EXPECT_GT(stats.walks_resampled, 0u) << name;
    }
  }
}

// ---------------------------------------------------------------------
// DynamicResizeTest — node additions/removals and drift-aware index
// resizing through the DynamicSolver interface (graph resize at serving
// scale; runs under TSAN via scripts/check.sh's DynamicResize* filter).
// ---------------------------------------------------------------------

TEST(DynamicResizeTest, NodeOpsStayConformantAcrossSolversAndLayouts) {
  // The acceptance criterion with dimension changes in the stream: a
  // batch that adds nodes, wires them in, removes a node, and keeps
  // mutating must leave every dynamic solver within its advertised
  // bound of a from-scratch solve on the (resized) snapshot — including
  // under order= layouts, whose Prepare-time permutation must extend
  // identically over nodes it has never seen.
  Rng rng(21);
  Graph graph = ErdosRenyi(40, 3.0, rng);
  const NodeId n0 = graph.num_nodes();
  for (const char* spec :
       {"dynfwdpush:rmax=1e-9", "dynfwdpush:rmax=1e-9,order=degree",
        "dynfwdpush:rmax=1e-9,order=bfs", "dynfora:eps=0.3",
        "dynfora:eps=0.3,order=degree", "dynspeedppr:eps=0.3",
        "dynspeedppr:eps=0.3,order=bfs"}) {
    Prepared p = MakeDynamic(spec, graph);

    UpdateBatch batch;
    batch.AddNode();                 // id n0
    batch.Insert(n0, 0).Insert(3, n0).Insert(n0, 7);
    batch.AddNode();                 // id n0 + 1
    batch.Insert(n0 + 1, n0);
    batch.RemoveNode(5);
    batch.Insert(1, 2).RemoveNode(n0 + 1);
    UpdateStats stats;
    ASSERT_TRUE(p.dynamic->ApplyUpdates(batch, &stats).ok()) << spec;
    EXPECT_EQ(stats.epoch, p.dynamic->epoch()) << spec;

    Graph snapshot = p.dynamic->Snapshot();
    ASSERT_EQ(snapshot.num_nodes(), n0 + 2) << spec;
    EXPECT_EQ(snapshot.OutDegree(5), 0u) << spec;
    EXPECT_EQ(snapshot.OutDegree(n0 + 1), 0u) << spec;
    EXPECT_TRUE(snapshot.HasEdge(n0, 0)) << spec;

    SolverContext context(kSeed);
    // Sources: an original node, the surviving added node, and the
    // removed node (still addressable as an isolated dead end).
    for (NodeId source : {NodeId{1}, n0, NodeId{5}}) {
      PprQuery query;
      query.source = source;
      PprResult result;
      ASSERT_TRUE(p.solver->Solve(query, context, &result).ok())
          << spec << " source=" << source;
      ASSERT_EQ(result.scores.size(), snapshot.num_nodes())
          << spec << " source=" << source;
      const std::vector<double> exact = ExactPprDense(snapshot, source, 0.2);
      ASSERT_LT(L1Distance(result.scores, exact), result.l1_bound + 1e-11)
          << spec << " source=" << source;
    }

    // Beyond the grown range is still out of range.
    PprQuery oob;
    oob.source = n0 + 2;
    PprResult result;
    EXPECT_EQ(p.solver->Solve(oob, context, &result).code(),
              StatusCode::kInvalidArgument)
        << spec;
  }
}

TEST(DynamicResizeTest, GeneratedStreamsWithNodeOpsStayConformant) {
  // The same conformance bar against the synthetic generator with node
  // churn enabled — chunked, so dimension changes land mid-lifetime,
  // with queries between chunks.
  Rng rng(22);
  Graph graph = BarabasiAlbert(50, 3, rng);
  UpdateWorkloadOptions workload;
  workload.count = 60;
  workload.delete_fraction = 0.25;
  workload.node_add_fraction = 0.15;
  workload.node_remove_fraction = 0.05;
  workload.seed = 41;
  UpdateBatch stream = GenerateUpdateStream(graph, workload).ValueOrDie();
  const bool has_node_ops =
      std::any_of(stream.updates.begin(), stream.updates.end(),
                  [](const EdgeUpdate& up) {
                    return up.kind == UpdateKind::kAddNode ||
                           up.kind == UpdateKind::kRemoveNode;
                  });
  ASSERT_TRUE(has_node_ops) << "workload fixture lost its node churn";

  for (const char* name : kDynamicNames) {
    Prepared p = MakeDynamic(name, graph);
    SolverContext context(kSeed);
    constexpr size_t kChunks = 3;
    for (size_t c = 0; c < kChunks; ++c) {
      UpdateBatch chunk;
      chunk.updates.assign(
          stream.updates.begin() + c * stream.size() / kChunks,
          stream.updates.begin() + (c + 1) * stream.size() / kChunks);
      ASSERT_TRUE(p.dynamic->ApplyUpdates(chunk, nullptr).ok())
          << name << " chunk " << c;

      Graph snapshot = p.dynamic->Snapshot();
      PprQuery query;
      query.source = 1;
      PprResult result;
      ASSERT_TRUE(p.solver->Solve(query, context, &result).ok())
          << name << " chunk " << c;
      ASSERT_EQ(result.scores.size(), snapshot.num_nodes())
          << name << " chunk " << c;
      const std::vector<double> exact = ExactPprDense(snapshot, 1, 0.2);
      ASSERT_LT(L1Distance(result.scores, exact), result.l1_bound + 1e-11)
          << name << " chunk " << c;
    }
  }
}

TEST(DynamicResizeTest, DriftResizeFiresThroughApplyUpdatesForDynfora) {
  // CompleteGraph(6) has m = 30; deleting 16 edges halves the live m,
  // which must trip exactly one kForaPlus ratio re-derivation in the
  // dynfora index — surfaced through UpdateStats.resize_events — while
  // the degree-sized dynspeedppr and the index-free dynfwdpush report
  // none. Conformance must hold across the resize.
  Graph graph = CompleteGraph(6);
  UpdateBatch deletes;
  int deleted = 0;
  for (NodeId u = 1; u < 6 && deleted < 16; ++u) {
    for (NodeId v = 1; v < 6 && deleted < 16; ++v) {
      if (u == v) continue;
      deletes.Delete(u, v);
      ++deleted;
    }
  }
  ASSERT_EQ(deleted, 16);

  for (const char* name : kDynamicNames) {
    Prepared p = MakeDynamic(name, graph);
    UpdateStats stats;
    ASSERT_TRUE(p.dynamic->ApplyUpdates(deletes, &stats).ok()) << name;
    if (std::string(name) == "dynfora") {
      EXPECT_EQ(stats.resize_events, 1u) << name;
    } else {
      EXPECT_EQ(stats.resize_events, 0u) << name;
    }

    Graph snapshot = p.dynamic->Snapshot();
    SolverContext context(kSeed);
    PprQuery query;
    query.source = 0;
    PprResult result;
    ASSERT_TRUE(p.solver->Solve(query, context, &result).ok()) << name;
    const std::vector<double> exact = ExactPprDense(snapshot, 0, 0.2);
    ASSERT_LT(L1Distance(result.scores, exact), result.l1_bound + 1e-11)
        << name;
  }

  // drift=0 restores the frozen-ratio behavior.
  Prepared frozen = MakeDynamic("dynfora:drift=0", graph);
  UpdateStats stats;
  ASSERT_TRUE(frozen.dynamic->ApplyUpdates(deletes, &stats).ok());
  EXPECT_EQ(stats.resize_events, 0u);
}

TEST(DynamicResizeTest, DriftOptionIsValidatedAtCreation) {
  // A factor in (0, 1] can never stop firing (every m "drifts" past
  // it); only 0 (off) or > 1 make sense.
  for (const char* spec : {"dynfora:drift=1", "dynfora:drift=0.5",
                           "dynfora:drift=-2", "dynfora:drift=nan"}) {
    auto created = SolverRegistry::Global().Create(spec);
    ASSERT_FALSE(created.ok()) << spec;
    EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument) << spec;
  }
  // The degree-sized tier has no ratio to re-derive; the option does
  // not exist there.
  EXPECT_FALSE(SolverRegistry::Global().Create("dynspeedppr:drift=2").ok());
}

TEST(DynamicResizeTest, IndexBytesIsReachableWithoutDowncasting) {
  Graph graph = PathGraph(6);
  for (const char* name : kDynamicNames) {
    Prepared p = MakeDynamic(name, graph);
    if (std::string(name) == "dynfwdpush") {
      EXPECT_EQ(p.solver->IndexBytes(), 0u) << name;
    } else {
      EXPECT_GT(p.solver->IndexBytes(), 0u) << name;
    }
  }
  // Before Prepare there is no index yet.
  auto unprepared = SolverRegistry::Global().Create("dynspeedppr");
  ASSERT_TRUE(unprepared.ok());
  EXPECT_EQ(unprepared.value()->IndexBytes(), 0u);
}

TEST(DynamicResizeTest, InvalidNodeBatchesLeaveStateUntouched) {
  Graph graph = PathGraph(5);
  for (const char* name : kDynamicNames) {
    Prepared p = MakeDynamic(name, graph);
    for (const auto& make_bad : {
             +[](UpdateBatch* b) { b->RemoveNode(99); },  // out of range
             +[](UpdateBatch* b) {
               // The removal detaches (3, 4); deleting it afterwards
               // must fail — the batch-running multiplicity is zeroed.
               b->RemoveNode(4).Delete(3, 4);
             },
             +[](UpdateBatch* b) {
               // An added node starts isolated: nothing to delete.
               b->AddNode().Delete(5, 0);
             },
         }) {
      UpdateBatch bad;
      make_bad(&bad);
      Status status = p.dynamic->ApplyUpdates(bad, nullptr);
      EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << name;
      EXPECT_EQ(p.dynamic->epoch(), 0u) << name;
      EXPECT_EQ(p.dynamic->Snapshot().num_nodes(), graph.num_nodes()) << name;
    }
  }
}

TEST(DynamicResizeTest, UpdateStreamTextRoundTripsNodeOps) {
  UpdateBatch batch;
  batch.Insert(0, 1).AddNode().RemoveNode(2).Delete(1, 3).AddNode();
  const std::string path = ::testing::TempDir() + "/node_ops_stream.txt";
  ASSERT_TRUE(WriteUpdateStreamText(path, batch).ok());
  auto read = ReadUpdateStreamText(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read.value().size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(read.value().updates[i].kind, batch.updates[i].kind) << i;
    EXPECT_EQ(read.value().updates[i].u, batch.updates[i].u) << i;
  }
  // Malformed node-op lines fail cleanly with the line number.
  {
    std::ofstream out(path);
    out << "n 3\n";  // 'n' takes no operands
  }
  auto bad = ReadUpdateStreamText(path);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
  {
    std::ofstream out(path);
    out << "x\n";  // 'x' needs a node id
  }
  bad = ReadUpdateStreamText(path);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
}

TEST(DynamicSolverTest, WantResiduesExportsTheSignedCertificate) {
  Rng rng(12);
  Graph graph = ErdosRenyi(40, 3.0, rng);
  Prepared p = MakeDynamic("dynfwdpush:rmax=1e-7", graph);

  UpdateWorkloadOptions workload;
  workload.count = 20;
  workload.delete_fraction = 0.5;
  workload.seed = 31;
  ASSERT_TRUE(p.dynamic
                  ->ApplyUpdates(
                      GenerateUpdateStream(graph, workload).ValueOrDie(),
                      nullptr)
                  .ok());

  SolverContext context(kSeed);
  PprQuery query;
  query.source = 2;
  query.want_residues = true;
  PprResult result;
  ASSERT_TRUE(p.solver->Solve(query, context, &result).ok());
  ASSERT_TRUE(result.has_residues());
  // Signed mass conservation survives updates: reserve + residue = 1.
  double total = 0.0;
  for (double x : result.scores) total += x;
  for (double r : result.residues) total += r;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // And Σ|r| stays within the advertised bound.
  double l1 = 0.0;
  for (double r : result.residues) l1 += std::fabs(r);
  EXPECT_LE(l1, result.l1_bound + 1e-12);
}

}  // namespace
}  // namespace ppr
