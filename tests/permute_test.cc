#include "graph/permute.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "core/power_push.h"
#include "graph/graph_builder.h"
#include "test_util.h"

namespace ppr {
namespace {

TEST(PermuteGraphTest, IdentityPermutationPreservesGraph) {
  Graph g = PaperExampleGraph();
  std::vector<NodeId> identity(g.num_nodes());
  std::iota(identity.begin(), identity.end(), 0);
  Graph permuted = PermuteGraph(g, identity);
  EXPECT_EQ(permuted.out_offsets(), g.out_offsets());
  EXPECT_EQ(permuted.out_targets(), g.out_targets());
}

TEST(PermuteGraphTest, EdgesMapThroughPermutation) {
  Graph g = PaperExampleGraph();
  std::vector<NodeId> perm = {4, 3, 2, 1, 0};  // reverse
  Graph permuted = PermuteGraph(g, perm);
  EXPECT_EQ(permuted.num_nodes(), g.num_nodes());
  EXPECT_EQ(permuted.num_edges(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      ASSERT_TRUE(permuted.HasEdge(perm[u], perm[v]))
          << u << "->" << v;
    }
  }
}

TEST(PermuteGraphTest, PprIsEquivariant) {
  // pi_G(s, v) == pi_{perm(G)}(perm(s), perm(v)) — relabeling must not
  // change the answer, only the coordinates.
  Graph g = testing::SmallGraphZoo()[8].graph;
  Rng rng(4);
  std::vector<NodeId> perm = RandomOrder(g.num_nodes(), rng);
  Graph permuted = PermuteGraph(g, perm);

  PowerPushOptions options;
  options.lambda = 1e-12;
  PprEstimate original;
  PowerPush(g, 0, options, &original);
  PprEstimate relabeled;
  PowerPush(permuted, perm[0], options, &relabeled);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_NEAR(original.reserve[v], relabeled.reserve[perm[v]], 1e-10);
  }
}

TEST(DegreeDescendingOrderTest, SortsHubsFirst) {
  Graph g = StarGraph(10);  // node 0 has degree 9
  std::vector<NodeId> perm = DegreeDescendingOrder(g);
  EXPECT_EQ(perm[0], 0u) << "the hub must get the smallest new id";
  Graph permuted = PermuteGraph(g, perm);
  for (NodeId v = 0; v + 1 < permuted.num_nodes(); ++v) {
    ASSERT_GE(permuted.OutDegree(v), permuted.OutDegree(v + 1));
  }
}

TEST(BfsOrderTest, AssignsContiguousIdsOutward) {
  Graph g = PathGraph(6);
  std::vector<NodeId> perm = BfsOrder(g, 0);
  // A path from the root is already in BFS order.
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(perm[v], v);
}

TEST(BfsOrderTest, UnreachedNodesAppended) {
  // Two disjoint cycles; BFS from the first reaches only half.
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);
  b.AddEdge(2, 3);
  b.AddEdge(3, 2);
  Graph g = b.Build();
  std::vector<NodeId> perm = BfsOrder(g, 2);
  EXPECT_EQ(perm[2], 0u);
  EXPECT_EQ(perm[3], 1u);
  EXPECT_EQ(perm[0], 2u);
  EXPECT_EQ(perm[1], 3u);
}

TEST(RandomOrderTest, IsAPermutation) {
  Rng rng(7);
  std::vector<NodeId> perm = RandomOrder(100, rng);
  std::vector<NodeId> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (NodeId i = 0; i < 100; ++i) ASSERT_EQ(sorted[i], i);
}

}  // namespace
}  // namespace ppr
