#include "graph/graph.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/rng.h"

namespace ppr {
namespace {

Graph SmallGraph() {
  // 0 -> {1, 2}, 1 -> {2}, 2 -> {}, 3 -> {0}
  return Graph({0, 2, 3, 3, 4}, {1, 2, 2, 0});
}

TEST(GraphTest, BasicCounts) {
  Graph g = SmallGraph();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 1.0);
}

TEST(GraphTest, OutDegreesAndNeighbors) {
  Graph g = SmallGraph();
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.OutDegree(1), 1u);
  EXPECT_EQ(g.OutDegree(2), 0u);
  EXPECT_EQ(g.OutDegree(3), 1u);
  auto n0 = g.OutNeighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
  EXPECT_TRUE(g.OutNeighbors(2).empty());
}

TEST(GraphTest, CountDeadEnds) {
  Graph g = SmallGraph();
  EXPECT_EQ(g.CountDeadEnds(), 1u);  // node 2
}

TEST(GraphTest, HasEdge) {
  Graph g = SmallGraph();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(3, 0));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(2, 0));
}

TEST(GraphTest, InAdjacencyIsTranspose) {
  Graph g = SmallGraph();
  EXPECT_FALSE(g.has_in_adjacency());
  g.BuildInAdjacency();
  ASSERT_TRUE(g.has_in_adjacency());
  EXPECT_EQ(g.InDegree(0), 1u);  // from 3
  EXPECT_EQ(g.InDegree(1), 1u);  // from 0
  EXPECT_EQ(g.InDegree(2), 2u);  // from 0, 1
  EXPECT_EQ(g.InDegree(3), 0u);
  auto in2 = g.InNeighbors(2);
  ASSERT_EQ(in2.size(), 2u);
  EXPECT_EQ(in2[0], 0u);
  EXPECT_EQ(in2[1], 1u);
}

TEST(GraphTest, BuildInAdjacencyIsIdempotent) {
  Graph g = SmallGraph();
  g.BuildInAdjacency();
  uint64_t bytes = g.MemoryBytes();
  g.BuildInAdjacency();
  EXPECT_EQ(g.MemoryBytes(), bytes);
}

TEST(GraphTest, TransposeOfTransposeMatchesOriginal) {
  Rng rng(5);
  Graph g = ErdosRenyi(200, 5.0, rng);
  g.BuildInAdjacency();
  // For every edge (u,v): v lists u as in-neighbor, u lists v as
  // out-neighbor, and totals match.
  uint64_t in_total = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    in_total += g.InDegree(v);
    for (NodeId u : g.InNeighbors(v)) {
      ASSERT_TRUE(g.HasEdge(u, v));
    }
  }
  EXPECT_EQ(in_total, g.num_edges());
}

TEST(GraphTest, MemoryBytesGrowsWithInAdjacency) {
  Graph g = SmallGraph();
  uint64_t before = g.MemoryBytes();
  g.BuildInAdjacency();
  EXPECT_GT(g.MemoryBytes(), before);
}

TEST(GraphTest, EmptyGraphIsValid) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 0.0);
}

TEST(GraphDeathTest, RejectsInconsistentCsr) {
  // offsets.back() must equal targets.size().
  EXPECT_DEATH(Graph({0, 2}, {1}), "Check failed");
  // Targets must be < n.
  EXPECT_DEATH(Graph({0, 1}, {5}), "Check failed");
  // Offsets must be non-decreasing.
  EXPECT_DEATH(Graph({0, 2, 1, 3}, {0, 1, 2}), "Check failed");
}

}  // namespace
}  // namespace ppr
