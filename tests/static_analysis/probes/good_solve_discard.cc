// PROBE(good): twin of bad_solve_discard.cc — propagating or checking
// the Solve/ApplyUpdates status compiles under the same gate.
#include "api/dynamic_solver.h"
#include "api/solver.h"

namespace {

ppr::Status ForwardsSolve(ppr::Solver& solver, const ppr::PprQuery& query,
                          ppr::SolverContext& context,
                          ppr::PprResult* result) {
  return solver.Solve(query, context, result);
}

ppr::Status ChecksApply(ppr::DynamicSolver& solver,
                        const ppr::UpdateBatch& batch) {
  ppr::UpdateStats stats;
  PPR_RETURN_IF_ERROR(solver.ApplyUpdates(batch, &stats));
  return ppr::Status::OK();
}

void* const kAnchor[] = {reinterpret_cast<void*>(&ForwardsSolve),
                         reinterpret_cast<void*>(&ChecksApply)};

}  // namespace
