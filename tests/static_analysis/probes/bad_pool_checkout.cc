// PROBE(bad, Clang only): calling a PPR_REQUIRES(mu_) function without
// holding mu_ must fail -Wthread-safety. This mirrors ContextPool's
// checkout path (api/context_pool.h: RefreshForEpoch is
// PPR_REQUIRES(mu_), called only from Acquire/TryAcquire under the
// lock; it is private, hence the mirror). Corrected twin:
// good_pool_checkout.cc.
#include <cstdint>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class PoolMirror {
 public:
  void Checkout() {
    RefreshForEpoch();  // BAD: caller never took mu_
  }

 private:
  void RefreshForEpoch() PPR_REQUIRES(mu_) { stale_ = epoch_; }

  ppr::Mutex mu_;
  uint64_t epoch_ PPR_GUARDED_BY(mu_) = 0;
  uint64_t stale_ PPR_GUARDED_BY(mu_) = 0;
};

PoolMirror pool_mirror;

}  // namespace
