// PROBE(bad): discarding the Status of Solver::Solve (and a dynamic
// solver's ApplyUpdates) must not compile — a failed query would look
// exactly like a successful one with stale results. Corrected twin:
// good_solve_discard.cc.
#include "api/dynamic_solver.h"
#include "api/solver.h"

namespace {

void DiscardsSolve(ppr::Solver& solver, const ppr::PprQuery& query,
                   ppr::SolverContext& context, ppr::PprResult* result) {
  solver.Solve(query, context, result);  // BAD: result may be garbage
}

void DiscardsApply(ppr::DynamicSolver& solver,
                   const ppr::UpdateBatch& batch) {
  solver.ApplyUpdates(batch);  // BAD: estimates may now be stale
}

void* const kAnchor[] = {reinterpret_cast<void*>(&DiscardsSolve),
                         reinterpret_cast<void*>(&DiscardsApply)};

}  // namespace
