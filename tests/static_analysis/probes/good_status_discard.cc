// PROBE(good): twin of bad_status_discard.cc — every legal way to
// consume a Status compiles under the same gate.
#include "util/status.h"

namespace {

ppr::Status Fallible() { return ppr::Status::IOError("disk gone"); }

ppr::Status Propagates() {
  PPR_RETURN_IF_ERROR(Fallible());  // the idiomatic fix
  return ppr::Status::OK();
}

bool Inspects() { return Fallible().ok(); }

void DeliberatelyIgnores() {
  // Best-effort path: the discard is an explicit decision, visible in
  // review, not an accident.
  (void)Fallible();
}

void* const kAnchor[] = {reinterpret_cast<void*>(&Propagates),
                         reinterpret_cast<void*>(&Inspects),
                         reinterpret_cast<void*>(&DeliberatelyIgnores)};

}  // namespace
