// PROBE(bad, Clang only): reading PPR_GUARDED_BY state without holding
// the lock must fail -Wthread-safety. This mirrors PprServer's stats
// counters (serve/ppr_server.h: submitted_, completed_, ... are
// PPR_GUARDED_BY(mu_) and private, hence the mirror) with the real
// ppr::Mutex wrappers — so what it actually guards is the annotation
// layer itself: strip the capability attributes from ppr::Mutex or
// PPR_GUARDED_BY and this compiles, which fails the harness.
// Corrected twin: good_server_guarded_state.cc.
#include <cstdint>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class ServerStatsMirror {
 public:
  uint64_t completed() const {
    return completed_;  // BAD: mu_ not held
  }

  void RecordCompleted() {
    completed_++;  // BAD: racing writer
  }

 private:
  mutable ppr::Mutex mu_;
  uint64_t completed_ PPR_GUARDED_BY(mu_) = 0;
};

ServerStatsMirror stats_mirror;

}  // namespace
