// PROBE(bad): silently dropping a returned Status must not compile.
// Gate: class-level [[nodiscard]] on ppr::Status (util/status.h) +
// -Werror=unused-result. Corrected twin: good_status_discard.cc.
#include "util/status.h"

namespace {

ppr::Status Fallible() { return ppr::Status::IOError("disk gone"); }

void Caller() {
  Fallible();  // BAD: the IOError evaporates here
}

// Anchor so Caller is odr-used and the translation unit is not empty.
void* const kAnchor = reinterpret_cast<void*>(&Caller);

}  // namespace
