// PROBE(good): twin of bad_server_guarded_state.cc — the same guarded
// counter accessed under a MutexLock passes -Wthread-safety.
#include <cstdint>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class ServerStatsMirror {
 public:
  uint64_t completed() const PPR_EXCLUDES(mu_) {
    ppr::MutexLock lock(mu_);
    return completed_;
  }

  void RecordCompleted() PPR_EXCLUDES(mu_) {
    ppr::MutexLock lock(mu_);
    completed_++;
  }

 private:
  mutable ppr::Mutex mu_;
  uint64_t completed_ PPR_GUARDED_BY(mu_) = 0;
};

ServerStatsMirror stats_mirror;

}  // namespace
