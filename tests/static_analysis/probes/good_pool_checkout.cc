// PROBE(good): twin of bad_pool_checkout.cc — taking the lock before
// the PPR_REQUIRES call is exactly what ContextPool::Acquire does, and
// passes -Wthread-safety.
#include <cstdint>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class PoolMirror {
 public:
  void Checkout() PPR_EXCLUDES(mu_) {
    ppr::MutexLock lock(mu_);
    RefreshForEpoch();
  }

 private:
  void RefreshForEpoch() PPR_REQUIRES(mu_) { stale_ = epoch_; }

  ppr::Mutex mu_;
  uint64_t epoch_ PPR_GUARDED_BY(mu_) = 0;
  uint64_t stale_ PPR_GUARDED_BY(mu_) = 0;
};

PoolMirror pool_mirror;

}  // namespace
