#include "util/parallel.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

namespace ppr {
namespace {

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  constexpr uint64_t kN = 100000;
  std::vector<std::atomic<int>> touched(kN);
  for (auto& t : touched) t.store(0);
  ParallelFor(0, kN, [&](uint64_t lo, uint64_t hi, unsigned) {
    for (uint64_t i = lo; i < hi; ++i) touched[i].fetch_add(1);
  });
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "i=" << i;
  }
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(5, 5, [&](uint64_t, uint64_t, unsigned) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SmallRangeRunsInline) {
  // Below the parallel threshold the callback runs once, on the caller's
  // thread, with worker index 0.
  std::vector<unsigned> workers;
  ParallelFor(10, 20, [&](uint64_t lo, uint64_t hi, unsigned w) {
    EXPECT_EQ(lo, 10u);
    EXPECT_EQ(hi, 20u);
    workers.push_back(w);
  });
  ASSERT_EQ(workers.size(), 1u);
  EXPECT_EQ(workers[0], 0u);
}

TEST(ParallelForTest, NonZeroBeginRespected) {
  std::atomic<uint64_t> sum{0};
  ParallelFor(1000, 101000, [&](uint64_t lo, uint64_t hi, unsigned) {
    uint64_t local = 0;
    for (uint64_t i = lo; i < hi; ++i) local += i;
    sum.fetch_add(local);
  });
  uint64_t expected = 0;
  for (uint64_t i = 1000; i < 101000; ++i) expected += i;
  EXPECT_EQ(sum.load(), expected);
}

TEST(ParallelForTest, ChunksAreDisjointAndOrderedPerWorker) {
  std::mutex mu;
  std::vector<std::pair<uint64_t, uint64_t>> chunks;
  ParallelFor(0, 50000, [&](uint64_t lo, uint64_t hi, unsigned) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  uint64_t cursor = 0;
  for (auto [lo, hi] : chunks) {
    ASSERT_EQ(lo, cursor);
    ASSERT_LT(lo, hi);
    cursor = hi;
  }
  ASSERT_EQ(cursor, 50000u);
}

TEST(ParallelForTest, PprThreadsEnvForcesSingleThread) {
  ASSERT_EQ(setenv("PPR_THREADS", "1", 1), 0);
  EXPECT_EQ(ParallelThreadCount(), 1u);
  int calls = 0;
  ParallelFor(0, 100000, [&](uint64_t lo, uint64_t hi, unsigned) {
    // Single-threaded: one inline call, safe to mutate without locks.
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 100000u);
    calls++;
  });
  EXPECT_EQ(calls, 1);
  ASSERT_EQ(unsetenv("PPR_THREADS"), 0);
  EXPECT_GE(ParallelThreadCount(), 1u);
}

}  // namespace
}  // namespace ppr
