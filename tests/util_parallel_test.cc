#include "util/parallel.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

namespace ppr {
namespace {

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  constexpr uint64_t kN = 100000;
  std::vector<std::atomic<int>> touched(kN);
  for (auto& t : touched) t.store(0);
  ParallelFor(0, kN, [&](uint64_t lo, uint64_t hi, unsigned) {
    for (uint64_t i = lo; i < hi; ++i) touched[i].fetch_add(1);
  });
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "i=" << i;
  }
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(5, 5, [&](uint64_t, uint64_t, unsigned) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SmallRangeRunsInline) {
  // Below the parallel threshold the callback runs once, on the caller's
  // thread, with worker index 0.
  std::vector<unsigned> workers;
  ParallelFor(10, 20, [&](uint64_t lo, uint64_t hi, unsigned w) {
    EXPECT_EQ(lo, 10u);
    EXPECT_EQ(hi, 20u);
    workers.push_back(w);
  });
  ASSERT_EQ(workers.size(), 1u);
  EXPECT_EQ(workers[0], 0u);
}

TEST(ParallelForTest, NonZeroBeginRespected) {
  std::atomic<uint64_t> sum{0};
  ParallelFor(1000, 101000, [&](uint64_t lo, uint64_t hi, unsigned) {
    uint64_t local = 0;
    for (uint64_t i = lo; i < hi; ++i) local += i;
    sum.fetch_add(local);
  });
  uint64_t expected = 0;
  for (uint64_t i = 1000; i < 101000; ++i) expected += i;
  EXPECT_EQ(sum.load(), expected);
}

TEST(ParallelForTest, ChunksAreDisjointAndOrderedPerWorker) {
  std::mutex mu;
  std::vector<std::pair<uint64_t, uint64_t>> chunks;
  ParallelFor(0, 50000, [&](uint64_t lo, uint64_t hi, unsigned) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  uint64_t cursor = 0;
  for (auto [lo, hi] : chunks) {
    ASSERT_EQ(lo, cursor);
    ASSERT_LT(lo, hi);
    cursor = hi;
  }
  ASSERT_EQ(cursor, 50000u);
}

TEST(ParallelForThreadsTest, ExplicitCountOverridesEnvironment) {
  // threads= on a solver must win over PPR_THREADS; the explicit
  // overload therefore ignores the env var entirely.
  ASSERT_EQ(setenv("PPR_THREADS", "1", 1), 0);
  std::mutex mu;
  std::vector<std::pair<uint64_t, uint64_t>> chunks;
  ParallelForThreads(0, 100000, 4, [&](uint64_t lo, uint64_t hi, unsigned) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(lo, hi);
  });
  ASSERT_EQ(unsetenv("PPR_THREADS"), 0);
  EXPECT_EQ(chunks.size(), 4u);
  std::sort(chunks.begin(), chunks.end());
  uint64_t cursor = 0;
  for (auto [lo, hi] : chunks) {
    ASSERT_EQ(lo, cursor);
    cursor = hi;
  }
  ASSERT_EQ(cursor, 100000u);
}

TEST(ParallelForThreadsTest, AutoSizingIsSerialInsideAWorker) {
  // A nested auto-sized stage (threads=0 → ParallelThreadCount) must
  // not fan out again from within a worker thread — BatchSolve workers
  // running walk phases rely on this to avoid oversubscription.
  std::atomic<unsigned> max_nested{0};
  ParallelForThreads(0, 100000, 4, [&](uint64_t, uint64_t, unsigned) {
    const unsigned nested = ParallelThreadCount();
    unsigned seen = max_nested.load();
    while (nested > seen && !max_nested.compare_exchange_weak(seen, nested)) {
    }
  });
  EXPECT_EQ(max_nested.load(), 1u);
  // Back on the caller's thread the default is restored.
  EXPECT_GE(ParallelThreadCount(), 1u);
}

TEST(BalancedChunkBoundsTest, UniformWeightsSplitEvenly) {
  const auto bounds = BalancedChunkBounds(1000, 4, [](uint64_t) { return 1; });
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), 1000u);
  for (size_t c = 0; c + 1 < bounds.size(); ++c) {
    EXPECT_NEAR(static_cast<double>(bounds[c + 1] - bounds[c]), 250.0, 1.0);
  }
}

TEST(BalancedChunkBoundsTest, SkewedWeightsBalanceTotals) {
  // Item 0 carries half the total weight: it must sit alone-ish in the
  // first chunk instead of dragging half the items with it.
  auto weight = [](uint64_t i) { return i == 0 ? uint64_t{1000} : 1; };
  const auto bounds = BalancedChunkBounds(1001, 4, weight);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_EQ(bounds.back(), 1001u);
  // First chunk reaches the 1/4 target with item 0 alone.
  EXPECT_EQ(bounds[1], 1u);
  // Bounds stay monotone; no chunk holds more than the heavy item's
  // weight plus one target's worth of light items.
  auto chunk_weight = [&](size_t c) {
    uint64_t total = 0;
    for (uint64_t i = bounds[c]; i < bounds[c + 1]; ++i) total += weight(i);
    return total;
  };
  for (size_t c = 0; c + 1 < bounds.size(); ++c) {
    ASSERT_LE(bounds[c], bounds[c + 1]);
    EXPECT_LE(chunk_weight(c), 1000u + 501u) << c;
  }
}

TEST(BalancedChunkBoundsTest, ZeroTotalWeightStillCoversRange) {
  const auto bounds = BalancedChunkBounds(10, 3, [](uint64_t) { return 0; });
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), 10u);
  for (size_t c = 0; c + 1 < bounds.size(); ++c) {
    ASSERT_LE(bounds[c], bounds[c + 1]);
  }
}

TEST(ParallelForTest, PprThreadsEnvForcesSingleThread) {
  ASSERT_EQ(setenv("PPR_THREADS", "1", 1), 0);
  EXPECT_EQ(ParallelThreadCount(), 1u);
  int calls = 0;
  ParallelFor(0, 100000, [&](uint64_t lo, uint64_t hi, unsigned) {
    // Single-threaded: one inline call, safe to mutate without locks.
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 100000u);
    calls++;
  });
  EXPECT_EQ(calls, 1);
  ASSERT_EQ(unsetenv("PPR_THREADS"), 0);
  EXPECT_GE(ParallelThreadCount(), 1u);
}

}  // namespace
}  // namespace ppr
