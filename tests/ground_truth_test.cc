#include "eval/ground_truth.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ppr {
namespace {

TEST(GroundTruthTest, MatchesDenseExactSolve) {
  for (auto& tc : testing::SmallGraphZoo()) {
    std::vector<double> gt = ComputeGroundTruth(tc.graph, 0);
    std::vector<double> exact = testing::ExactPprDense(tc.graph, 0, 0.2);
    for (NodeId v = 0; v < tc.graph.num_nodes(); ++v) {
      ASSERT_NEAR(gt[v], exact[v], 1e-12) << tc.name << " v=" << v;
    }
  }
}

TEST(GroundTruthTest, IsProbabilityDistribution) {
  Graph g = testing::SmallGraphZoo()[8].graph;
  std::vector<double> gt = ComputeGroundTruth(g, 3);
  EXPECT_NEAR(testing::Sum(gt), 1.0, 1e-10);
  for (double v : gt) EXPECT_GE(v, 0.0);
}

TEST(GroundTruthTest, RespectsAlpha) {
  Graph g = CycleGraph(16);
  std::vector<double> low = ComputeGroundTruth(g, 0, /*alpha=*/0.1);
  std::vector<double> high = ComputeGroundTruth(g, 0, /*alpha=*/0.5);
  EXPECT_GT(high[0], low[0]);
  EXPECT_NEAR(high[0], testing::ExactPprDense(g, 0, 0.5)[0], 1e-12);
}

}  // namespace
}  // namespace ppr
