#include "eval/trace_export.h"

#include <fstream>

#include <gtest/gtest.h>

namespace ppr {
namespace {

std::vector<TraceSeries> SampleSeries() {
  return {
      {"PowerPush", {{0.01, 100, 0.5}, {0.02, 200, 0.25}}},
      {"PowItr", {{0.015, 150, 0.6}}},
  };
}

TEST(TraceExportTest, CsvHasHeaderAndRows) {
  std::string csv = TracesToCsv(SampleSeries());
  EXPECT_NE(csv.find("label,seconds,updates,rsum\n"), std::string::npos);
  EXPECT_NE(csv.find("PowerPush,"), std::string::npos);
  EXPECT_NE(csv.find(",200,"), std::string::npos);
  // 1 header + 3 data rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
}

TEST(TraceExportTest, RoundTrip) {
  std::string path = ::testing::TempDir() + "/traces.csv";
  auto series = SampleSeries();
  ASSERT_TRUE(WriteTracesCsv(path, series).ok());
  auto loaded = ReadTracesCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[0].label, "PowerPush");
  ASSERT_EQ(loaded.value()[0].points.size(), 2u);
  EXPECT_EQ(loaded.value()[0].points[1].updates, 200u);
  EXPECT_DOUBLE_EQ(loaded.value()[0].points[1].rsum, 0.25);
  EXPECT_NEAR(loaded.value()[0].points[0].seconds, 0.01, 1e-9);
}

TEST(TraceExportTest, EmptySeriesRoundTrips) {
  std::string path = ::testing::TempDir() + "/empty.csv";
  ASSERT_TRUE(WriteTracesCsv(path, {}).ok());
  auto loaded = ReadTracesCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
}

TEST(TraceExportTest, RejectsBadHeader) {
  std::string path = ::testing::TempDir() + "/bad_header.csv";
  {
    std::ofstream out(path);
    out << "nope\n";
  }
  auto loaded = ReadTracesCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(TraceExportTest, RejectsMalformedRow) {
  std::string path = ::testing::TempDir() + "/bad_row.csv";
  {
    std::ofstream out(path);
    out << "label,seconds,updates,rsum\n";
    out << "x,1.0,notanumber,0.5\n";
  }
  auto loaded = ReadTracesCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(TraceExportTest, MissingFileIsIOError) {
  auto loaded = ReadTracesCsv(::testing::TempDir() + "/nonexistent.csv");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace ppr
