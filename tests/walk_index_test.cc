#include "approx/walk_index.h"

#include <cmath>
#include <fstream>

#include <gtest/gtest.h>

#include "approx/monte_carlo.h"
#include "test_util.h"

namespace ppr {
namespace {

TEST(WalkIndexTest, SpeedPprSizingIsDegreePerNode) {
  Graph g = PaperExampleGraph();
  Rng rng(1);
  WalkIndex index =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, rng);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(index.Endpoints(v).size(), g.OutDegree(v)) << "v=" << v;
  }
  EXPECT_EQ(index.total_walks(), g.num_edges());
}

TEST(WalkIndexTest, SpeedPprSizingGivesDeadEndsOneWalk) {
  Graph g = PathGraph(4);
  Rng rng(2);
  WalkIndex index =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, rng);
  EXPECT_EQ(index.Endpoints(3).size(), 1u);
  EXPECT_LE(index.total_walks(), g.num_edges() + g.CountDeadEnds());
}

TEST(WalkIndexTest, ForaPlusSizingFollowsFormula) {
  Graph g = PaperExampleGraph();
  Rng rng(3);
  const uint64_t w = 10000;
  WalkIndex index =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kForaPlus, w, rng);
  const double ratio = std::sqrt(static_cast<double>(w) /
                                 static_cast<double>(g.num_edges()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const uint64_t expected =
        static_cast<uint64_t>(std::ceil(g.OutDegree(v) * ratio)) + 1;
    EXPECT_EQ(index.Endpoints(v).size(), expected) << "v=" << v;
  }
}

TEST(WalkIndexTest, ForaPlusIndexGrowsWithW_SpeedPprDoesNot) {
  // The ε-independence headline of the paper: SpeedPPR's index size does
  // not change with W while FORA+'s does.
  Graph g = testing::SmallGraphZoo()[7].graph;
  Rng rng(4);
  WalkIndex fora_small =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kForaPlus, 10000, rng);
  WalkIndex fora_large =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kForaPlus, 1000000, rng);
  WalkIndex speed_a =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 10000, rng);
  WalkIndex speed_b =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 1000000, rng);
  EXPECT_GT(fora_large.total_walks(), 2 * fora_small.total_walks());
  EXPECT_EQ(speed_a.total_walks(), speed_b.total_walks());
}

TEST(WalkIndexTest, EndpointDistributionMatchesPpr) {
  // Endpoints of walks from v are samples of π_v; check the aggregate
  // frequency for a high-degree node.
  Graph g = CompleteGraph(6);
  Rng rng(5);
  // Give every node many walks by inflating W for the FORA sizing.
  WalkIndex index =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kForaPlus, 40000000, rng);
  std::vector<double> exact = testing::ExactPprDense(g, 0, 0.2);
  auto endpoints = index.Endpoints(0);
  ASSERT_GT(endpoints.size(), 1000u);
  std::vector<double> freq(g.num_nodes(), 0.0);
  for (NodeId stop : endpoints) freq[stop] += 1.0 / endpoints.size();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(freq[v], exact[v], 0.02) << "v=" << v;
  }
}

TEST(WalkIndexTest, SizeBytesAccountsForStorage) {
  Graph g = PaperExampleGraph();
  Rng rng(6);
  WalkIndex index =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, rng);
  EXPECT_EQ(index.SizeBytes(),
            (g.num_nodes() + 1) * sizeof(uint64_t) +
                index.total_walks() * sizeof(NodeId));
}

TEST(WalkIndexTest, SerializationRoundTrip) {
  Graph g = testing::SmallGraphZoo()[6].graph;
  Rng rng(7);
  WalkIndex index =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, rng);
  std::string path = ::testing::TempDir() + "/walk_index.bin";
  ASSERT_TRUE(index.SaveTo(path).ok());
  auto loaded = WalkIndex::LoadFrom(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().num_nodes(), index.num_nodes());
  ASSERT_EQ(loaded.value().total_walks(), index.total_walks());
  EXPECT_DOUBLE_EQ(loaded.value().alpha(), index.alpha());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto a = index.Endpoints(v);
    auto b = loaded.value().Endpoints(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
  }
}

TEST(WalkIndexTest, LoadRejectsGarbage) {
  std::string path = ::testing::TempDir() + "/garbage_index.bin";
  {
    std::ofstream out(path);
    out << "garbage";
  }
  auto loaded = WalkIndex::LoadFrom(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(WalkIndexTest, DeterministicGivenSeed) {
  Graph g = testing::SmallGraphZoo()[8].graph;
  Rng rng_a(50);
  Rng rng_b(50);
  WalkIndex a = WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, rng_a);
  WalkIndex b = WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, rng_b);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto ea = a.Endpoints(v);
    auto eb = b.Endpoints(v);
    ASSERT_EQ(ea.size(), eb.size());
    for (size_t i = 0; i < ea.size(); ++i) ASSERT_EQ(ea[i], eb[i]);
  }
}

TEST(WalkIndexTest, BuildRecordsTheGraphFingerprint) {
  // The staleness check behind cache_dir=: the fingerprint is embedded
  // at build time and survives a save/load round trip, so a cache saved
  // for one CSR can never silently serve another.
  Graph g = testing::SmallGraphZoo()[6].graph;
  WalkIndex index = WalkIndex::BuildParallel(
      g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, /*seed=*/5);
  EXPECT_EQ(index.graph_fingerprint(), g.Fingerprint());

  std::string path = ::testing::TempDir() + "/fingerprinted_index.bin";
  ASSERT_TRUE(index.SaveTo(path).ok());
  auto loaded = WalkIndex::LoadFrom(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().graph_fingerprint(), g.Fingerprint());
}

// ---------------------------------------------------------------------
// DynamicWalkIndex — incremental walk refresh
// ---------------------------------------------------------------------

TEST(DynamicWalkIndexTest, FreshBuildMatchesBuildParallelBitForBit) {
  // The dynamic index shares the (seed, v) per-node stream scheme, so
  // before any mutation it IS the static index.
  Graph g = testing::SmallGraphZoo()[7].graph;
  constexpr uint64_t kSeed = 11;
  for (auto sizing :
       {WalkIndex::Sizing::kSpeedPpr, WalkIndex::Sizing::kForaPlus}) {
    const uint64_t w = sizing == WalkIndex::Sizing::kForaPlus ? 100000 : 0;
    WalkIndex flat = WalkIndex::BuildParallel(g, 0.2, sizing, w, kSeed);
    DynamicWalkIndex dynamic(g, 0.2, sizing, w, kSeed);
    ASSERT_EQ(dynamic.total_walks(), flat.total_walks());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      auto a = flat.Endpoints(v);
      auto b = dynamic.Endpoints(v);
      ASSERT_EQ(a.size(), b.size()) << "v=" << v;
      for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i], b[i]) << "v=" << v << " i=" << i;
      }
    }
  }
}

TEST(DynamicWalkIndexTest, TracksTheSizingRuleAcrossMutations) {
  Graph g = PaperExampleGraph();
  DynamicGraph dg(g);
  DynamicWalkIndex index(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, /*seed=*/3);

  // Insertions grow K_u with the degree, deletions shrink it; dead ends
  // keep one walk.
  Rng rng(9);
  for (int step = 0; step < 30; ++step) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(dg.num_nodes()));
    const NodeId w = static_cast<NodeId>(rng.NextBounded(dg.num_nodes()));
    if (u == w) continue;
    if (dg.OutDegree(u) > 0 && rng.NextBernoulli(0.4)) {
      auto neighbors = dg.OutNeighbors(u);
      const NodeId victim =
          neighbors[rng.NextBounded(neighbors.size())];
      dg.RemoveEdge(u, victim);
    } else {
      dg.AddEdge(u, w);
    }
    index.RefreshMutatedNode(dg, u);

    uint64_t expected_total = 0;
    for (NodeId v = 0; v < dg.num_nodes(); ++v) {
      const uint64_t expected =
          dg.OutDegree(v) == 0 ? 1 : dg.OutDegree(v);
      ASSERT_EQ(index.Endpoints(v).size(), expected)
          << "step=" << step << " v=" << v;
      expected_total += expected;
    }
    ASSERT_EQ(index.total_walks(), expected_total) << "step=" << step;
  }
}

TEST(DynamicWalkIndexTest, RefreshRedirectsWalksOffRemovedEdges) {
  // Path 0→1→2→3: cutting (1, 2) makes {2, 3} unreachable from 0 and 1,
  // so after the refresh no stored walk from those origins may still
  // stop there — the stale-suffix invalidation must catch every walk
  // that crossed the removed edge.
  Graph g = PathGraph(4);
  DynamicGraph dg(g);
  DynamicWalkIndex index(g, 0.2, WalkIndex::Sizing::kForaPlus, 4000,
                         /*seed=*/21);
  bool crossed_before = false;
  for (NodeId origin : {NodeId{0}, NodeId{1}}) {
    for (NodeId stop : index.Endpoints(origin)) {
      crossed_before |= stop >= 2;
    }
  }
  ASSERT_TRUE(crossed_before) << "fixture too small to exercise the cut";

  dg.RemoveEdge(1, 2);
  const uint64_t resampled = index.RefreshMutatedNode(dg, 1);
  EXPECT_GT(resampled, 0u);
  for (NodeId origin : {NodeId{0}, NodeId{1}}) {
    for (NodeId stop : index.Endpoints(origin)) {
      ASSERT_LT(stop, 2u) << "origin=" << origin;
    }
  }
  // Walks from 2 and 3 never used node 1's adjacency and stay put.
  for (NodeId stop : index.Endpoints(2)) ASSERT_GE(stop, 2u);
  for (NodeId stop : index.Endpoints(3)) ASSERT_EQ(stop, 3u);
}

TEST(DynamicWalkIndexTest, RefreshedEndpointDistributionMatchesPpr) {
  // The distribution-identity claim, empirically: after a mutation and
  // its refresh, endpoint frequencies from a well-sampled node match
  // the exact PPR of the *updated* graph — the same tolerance the
  // static index passes on a fresh build.
  Graph g = CompleteGraph(6);
  DynamicGraph dg(g);
  DynamicWalkIndex index(g, 0.2, WalkIndex::Sizing::kForaPlus, 40000000,
                         /*seed=*/5);

  dg.RemoveEdge(0, 3);
  dg.AddEdge(5, 0);
  index.RefreshMutatedNode(dg, 0);
  index.RefreshMutatedNode(dg, 5);

  Graph updated = dg.Snapshot();
  std::vector<double> exact = testing::ExactPprDense(updated, 0, 0.2);
  auto endpoints = index.Endpoints(0);
  ASSERT_GT(endpoints.size(), 1000u);
  std::vector<double> freq(updated.num_nodes(), 0.0);
  for (NodeId stop : endpoints) freq[stop] += 1.0 / endpoints.size();
  for (NodeId v = 0; v < updated.num_nodes(); ++v) {
    EXPECT_NEAR(freq[v], exact[v], 0.02) << "v=" << v;
  }
}

}  // namespace
}  // namespace ppr
