#include "approx/walk_index.h"

#include <cmath>
#include <fstream>

#include <gtest/gtest.h>

#include "approx/monte_carlo.h"
#include "test_util.h"

namespace ppr {
namespace {

TEST(WalkIndexTest, SpeedPprSizingIsDegreePerNode) {
  Graph g = PaperExampleGraph();
  Rng rng(1);
  WalkIndex index =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, rng);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(index.Endpoints(v).size(), g.OutDegree(v)) << "v=" << v;
  }
  EXPECT_EQ(index.total_walks(), g.num_edges());
}

TEST(WalkIndexTest, SpeedPprSizingGivesDeadEndsOneWalk) {
  Graph g = PathGraph(4);
  Rng rng(2);
  WalkIndex index =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, rng);
  EXPECT_EQ(index.Endpoints(3).size(), 1u);
  EXPECT_LE(index.total_walks(), g.num_edges() + g.CountDeadEnds());
}

TEST(WalkIndexTest, ForaPlusSizingFollowsFormula) {
  Graph g = PaperExampleGraph();
  Rng rng(3);
  const uint64_t w = 10000;
  WalkIndex index =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kForaPlus, w, rng);
  const double ratio = std::sqrt(static_cast<double>(w) /
                                 static_cast<double>(g.num_edges()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const uint64_t expected =
        static_cast<uint64_t>(std::ceil(g.OutDegree(v) * ratio)) + 1;
    EXPECT_EQ(index.Endpoints(v).size(), expected) << "v=" << v;
  }
}

TEST(WalkIndexTest, ForaPlusIndexGrowsWithW_SpeedPprDoesNot) {
  // The ε-independence headline of the paper: SpeedPPR's index size does
  // not change with W while FORA+'s does.
  Graph g = testing::SmallGraphZoo()[7].graph;
  Rng rng(4);
  WalkIndex fora_small =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kForaPlus, 10000, rng);
  WalkIndex fora_large =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kForaPlus, 1000000, rng);
  WalkIndex speed_a =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 10000, rng);
  WalkIndex speed_b =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 1000000, rng);
  EXPECT_GT(fora_large.total_walks(), 2 * fora_small.total_walks());
  EXPECT_EQ(speed_a.total_walks(), speed_b.total_walks());
}

TEST(WalkIndexTest, EndpointDistributionMatchesPpr) {
  // Endpoints of walks from v are samples of π_v; check the aggregate
  // frequency for a high-degree node.
  Graph g = CompleteGraph(6);
  Rng rng(5);
  // Give every node many walks by inflating W for the FORA sizing.
  WalkIndex index =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kForaPlus, 40000000, rng);
  std::vector<double> exact = testing::ExactPprDense(g, 0, 0.2);
  auto endpoints = index.Endpoints(0);
  ASSERT_GT(endpoints.size(), 1000u);
  std::vector<double> freq(g.num_nodes(), 0.0);
  for (NodeId stop : endpoints) freq[stop] += 1.0 / endpoints.size();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(freq[v], exact[v], 0.02) << "v=" << v;
  }
}

TEST(WalkIndexTest, SizeBytesAccountsForStorage) {
  Graph g = PaperExampleGraph();
  Rng rng(6);
  WalkIndex index =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, rng);
  EXPECT_EQ(index.SizeBytes(),
            (g.num_nodes() + 1) * sizeof(uint64_t) +
                index.total_walks() * sizeof(NodeId));
}

TEST(WalkIndexTest, SerializationRoundTrip) {
  Graph g = testing::SmallGraphZoo()[6].graph;
  Rng rng(7);
  WalkIndex index =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, rng);
  std::string path = ::testing::TempDir() + "/walk_index.bin";
  ASSERT_TRUE(index.SaveTo(path).ok());
  auto loaded = WalkIndex::LoadFrom(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().num_nodes(), index.num_nodes());
  ASSERT_EQ(loaded.value().total_walks(), index.total_walks());
  EXPECT_DOUBLE_EQ(loaded.value().alpha(), index.alpha());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto a = index.Endpoints(v);
    auto b = loaded.value().Endpoints(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
  }
}

TEST(WalkIndexTest, LoadRejectsGarbage) {
  std::string path = ::testing::TempDir() + "/garbage_index.bin";
  {
    std::ofstream out(path);
    out << "garbage";
  }
  auto loaded = WalkIndex::LoadFrom(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(WalkIndexTest, DeterministicGivenSeed) {
  Graph g = testing::SmallGraphZoo()[8].graph;
  Rng rng_a(50);
  Rng rng_b(50);
  WalkIndex a = WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, rng_a);
  WalkIndex b = WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, rng_b);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto ea = a.Endpoints(v);
    auto eb = b.Endpoints(v);
    ASSERT_EQ(ea.size(), eb.size());
    for (size_t i = 0; i < ea.size(); ++i) ASSERT_EQ(ea[i], eb[i]);
  }
}

}  // namespace
}  // namespace ppr
