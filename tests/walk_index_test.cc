#include "approx/walk_index.h"

#include <cmath>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "approx/monte_carlo.h"
#include "test_util.h"

namespace ppr {
namespace {

TEST(WalkIndexTest, SpeedPprSizingIsDegreePerNode) {
  Graph g = PaperExampleGraph();
  Rng rng(1);
  WalkIndex index =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, rng);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(index.Endpoints(v).size(), g.OutDegree(v)) << "v=" << v;
  }
  EXPECT_EQ(index.total_walks(), g.num_edges());
}

TEST(WalkIndexTest, SpeedPprSizingGivesDeadEndsOneWalk) {
  Graph g = PathGraph(4);
  Rng rng(2);
  WalkIndex index =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, rng);
  EXPECT_EQ(index.Endpoints(3).size(), 1u);
  EXPECT_LE(index.total_walks(), g.num_edges() + g.CountDeadEnds());
}

TEST(WalkIndexTest, ForaPlusSizingFollowsFormula) {
  Graph g = PaperExampleGraph();
  Rng rng(3);
  const uint64_t w = 10000;
  WalkIndex index =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kForaPlus, w, rng);
  const double ratio = std::sqrt(static_cast<double>(w) /
                                 static_cast<double>(g.num_edges()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const uint64_t expected =
        static_cast<uint64_t>(std::ceil(g.OutDegree(v) * ratio)) + 1;
    EXPECT_EQ(index.Endpoints(v).size(), expected) << "v=" << v;
  }
}

TEST(WalkIndexTest, ForaPlusIndexGrowsWithW_SpeedPprDoesNot) {
  // The ε-independence headline of the paper: SpeedPPR's index size does
  // not change with W while FORA+'s does.
  Graph g = testing::SmallGraphZoo()[7].graph;
  Rng rng(4);
  WalkIndex fora_small =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kForaPlus, 10000, rng);
  WalkIndex fora_large =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kForaPlus, 1000000, rng);
  WalkIndex speed_a =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 10000, rng);
  WalkIndex speed_b =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 1000000, rng);
  EXPECT_GT(fora_large.total_walks(), 2 * fora_small.total_walks());
  EXPECT_EQ(speed_a.total_walks(), speed_b.total_walks());
}

TEST(WalkIndexTest, EndpointDistributionMatchesPpr) {
  // Endpoints of walks from v are samples of π_v; check the aggregate
  // frequency for a high-degree node.
  Graph g = CompleteGraph(6);
  Rng rng(5);
  // Give every node many walks by inflating W for the FORA sizing.
  WalkIndex index =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kForaPlus, 40000000, rng);
  std::vector<double> exact = testing::ExactPprDense(g, 0, 0.2);
  auto endpoints = index.Endpoints(0);
  ASSERT_GT(endpoints.size(), 1000u);
  std::vector<double> freq(g.num_nodes(), 0.0);
  for (NodeId stop : endpoints) freq[stop] += 1.0 / endpoints.size();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(freq[v], exact[v], 0.02) << "v=" << v;
  }
}

TEST(WalkIndexTest, SizeBytesAccountsForStorage) {
  Graph g = PaperExampleGraph();
  Rng rng(6);
  WalkIndex index =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, rng);
  EXPECT_EQ(index.SizeBytes(),
            (g.num_nodes() + 1) * sizeof(uint64_t) +
                index.total_walks() * sizeof(NodeId));
}

TEST(WalkIndexTest, SerializationRoundTrip) {
  Graph g = testing::SmallGraphZoo()[6].graph;
  Rng rng(7);
  WalkIndex index =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, rng);
  std::string path = ::testing::TempDir() + "/walk_index.bin";
  ASSERT_TRUE(index.SaveTo(path).ok());
  auto loaded = WalkIndex::LoadFrom(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().num_nodes(), index.num_nodes());
  ASSERT_EQ(loaded.value().total_walks(), index.total_walks());
  EXPECT_DOUBLE_EQ(loaded.value().alpha(), index.alpha());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto a = index.Endpoints(v);
    auto b = loaded.value().Endpoints(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
  }
}

TEST(WalkIndexTest, SaveLeavesNoTempFilesBehind) {
  // SaveTo stages through a temp name and renames; a successful save
  // must leave exactly the canonical file, not droppings a cache_dir
  // scan would trip over.
  Graph g = PaperExampleGraph();
  Rng rng(8);
  WalkIndex index =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, rng);
  const std::string dir = ::testing::TempDir() + "/atomic_save_dir";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(index.SaveTo(dir + "/index.bin").ok());
  size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++entries;
    EXPECT_EQ(entry.path().filename(), "index.bin");
  }
  EXPECT_EQ(entries, 1u);
  std::filesystem::remove_all(dir);
}

TEST(WalkIndexTest, LoadRejectsHostileHeaderCounts) {
  // A corrupt or hostile file with a valid magic but absurd counts
  // (2^60 endpoints) must fail the size validation cleanly instead of
  // attempting a ~4 EiB allocation.
  Graph g = PaperExampleGraph();
  Rng rng(9);
  WalkIndex index =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, rng);
  const std::string path = ::testing::TempDir() + "/hostile_index.bin";
  ASSERT_TRUE(index.SaveTo(path).ok());
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    const uint64_t huge = uint64_t{1} << 60;
    f.seekp(8);  // n, then total — both claim 2^60
    f.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
    f.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  }
  auto loaded = WalkIndex::LoadFrom(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(WalkIndexTest, LoadRejectsTruncatedFile) {
  // A crash mid-write under an in-place scheme leaves a prefix of a
  // valid file; the exact-size check must refuse it so callers rebuild.
  Graph g = PaperExampleGraph();
  Rng rng(10);
  WalkIndex index =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, rng);
  const std::string path = ::testing::TempDir() + "/truncated_index.bin";
  ASSERT_TRUE(index.SaveTo(path).ok());
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full * 3 / 5);
  auto loaded = WalkIndex::LoadFrom(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(WalkIndexTest, LoadRejectsNonMonotonicOffsets) {
  Graph g = PaperExampleGraph();
  Rng rng(11);
  WalkIndex index =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, rng);
  const std::string path = ::testing::TempDir() + "/nonmonotonic_index.bin";
  ASSERT_TRUE(index.SaveTo(path).ok());
  {
    // Overwrite offsets_[1] with the total walk count: front/back stay
    // consistent but the prefix sums now run backwards at i = 1.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    const uint64_t bogus = index.total_walks();
    f.seekp(5 * sizeof(uint64_t) + sizeof(uint64_t));
    f.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  }
  auto loaded = WalkIndex::LoadFrom(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(WalkIndexTest, LoadRejectsGarbage) {
  std::string path = ::testing::TempDir() + "/garbage_index.bin";
  {
    std::ofstream out(path);
    out << "garbage";
  }
  auto loaded = WalkIndex::LoadFrom(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(WalkIndexTest, DeterministicGivenSeed) {
  Graph g = testing::SmallGraphZoo()[8].graph;
  Rng rng_a(50);
  Rng rng_b(50);
  WalkIndex a = WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, rng_a);
  WalkIndex b = WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, rng_b);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto ea = a.Endpoints(v);
    auto eb = b.Endpoints(v);
    ASSERT_EQ(ea.size(), eb.size());
    for (size_t i = 0; i < ea.size(); ++i) ASSERT_EQ(ea[i], eb[i]);
  }
}

TEST(WalkIndexTest, BuildRecordsTheGraphFingerprint) {
  // The staleness check behind cache_dir=: the fingerprint is embedded
  // at build time and survives a save/load round trip, so a cache saved
  // for one CSR can never silently serve another.
  Graph g = testing::SmallGraphZoo()[6].graph;
  WalkIndex index = WalkIndex::BuildParallel(
      g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, /*seed=*/5);
  EXPECT_EQ(index.graph_fingerprint(), g.Fingerprint());

  std::string path = ::testing::TempDir() + "/fingerprinted_index.bin";
  ASSERT_TRUE(index.SaveTo(path).ok());
  auto loaded = WalkIndex::LoadFrom(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().graph_fingerprint(), g.Fingerprint());
}

// ---------------------------------------------------------------------
// DynamicWalkIndex — incremental walk refresh
// ---------------------------------------------------------------------

TEST(DynamicWalkIndexTest, FreshBuildMatchesBuildParallelBitForBit) {
  // The dynamic index shares the (seed, v) per-node stream scheme, so
  // before any mutation it IS the static index.
  Graph g = testing::SmallGraphZoo()[7].graph;
  constexpr uint64_t kSeed = 11;
  for (auto sizing :
       {WalkIndex::Sizing::kSpeedPpr, WalkIndex::Sizing::kForaPlus}) {
    const uint64_t w = sizing == WalkIndex::Sizing::kForaPlus ? 100000 : 0;
    WalkIndex flat = WalkIndex::BuildParallel(g, 0.2, sizing, w, kSeed);
    DynamicWalkIndex dynamic(g, 0.2, sizing, w, kSeed);
    ASSERT_EQ(dynamic.total_walks(), flat.total_walks());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      auto a = flat.Endpoints(v);
      auto b = dynamic.Endpoints(v);
      ASSERT_EQ(a.size(), b.size()) << "v=" << v;
      for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i], b[i]) << "v=" << v << " i=" << i;
      }
    }
  }
}

TEST(DynamicWalkIndexTest, TracksTheSizingRuleAcrossMutations) {
  Graph g = PaperExampleGraph();
  DynamicGraph dg(g);
  DynamicWalkIndex index(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, /*seed=*/3);

  // Insertions grow K_u with the degree, deletions shrink it; dead ends
  // keep one walk.
  Rng rng(9);
  for (int step = 0; step < 30; ++step) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(dg.num_nodes()));
    const NodeId w = static_cast<NodeId>(rng.NextBounded(dg.num_nodes()));
    if (u == w) continue;
    if (dg.OutDegree(u) > 0 && rng.NextBernoulli(0.4)) {
      auto neighbors = dg.OutNeighbors(u);
      const NodeId victim =
          neighbors[rng.NextBounded(neighbors.size())];
      dg.RemoveEdge(u, victim);
    } else {
      dg.AddEdge(u, w);
    }
    index.RefreshMutatedNode(dg, u);

    uint64_t expected_total = 0;
    for (NodeId v = 0; v < dg.num_nodes(); ++v) {
      const uint64_t expected =
          dg.OutDegree(v) == 0 ? 1 : dg.OutDegree(v);
      ASSERT_EQ(index.Endpoints(v).size(), expected)
          << "step=" << step << " v=" << v;
      expected_total += expected;
    }
    ASSERT_EQ(index.total_walks(), expected_total) << "step=" << step;
  }
}

TEST(DynamicWalkIndexTest, RefreshRedirectsWalksOffRemovedEdges) {
  // Path 0→1→2→3: cutting (1, 2) makes {2, 3} unreachable from 0 and 1,
  // so after the refresh no stored walk from those origins may still
  // stop there — the stale-suffix invalidation must catch every walk
  // that crossed the removed edge.
  Graph g = PathGraph(4);
  DynamicGraph dg(g);
  DynamicWalkIndex index(g, 0.2, WalkIndex::Sizing::kForaPlus, 4000,
                         /*seed=*/21);
  bool crossed_before = false;
  for (NodeId origin : {NodeId{0}, NodeId{1}}) {
    for (NodeId stop : index.Endpoints(origin)) {
      crossed_before |= stop >= 2;
    }
  }
  ASSERT_TRUE(crossed_before) << "fixture too small to exercise the cut";

  dg.RemoveEdge(1, 2);
  const uint64_t resampled = index.RefreshMutatedNode(dg, 1);
  EXPECT_GT(resampled, 0u);
  for (NodeId origin : {NodeId{0}, NodeId{1}}) {
    for (NodeId stop : index.Endpoints(origin)) {
      ASSERT_LT(stop, 2u) << "origin=" << origin;
    }
  }
  // Walks from 2 and 3 never used node 1's adjacency and stay put.
  for (NodeId stop : index.Endpoints(2)) ASSERT_GE(stop, 2u);
  for (NodeId stop : index.Endpoints(3)) ASSERT_EQ(stop, 3u);
}

TEST(DynamicWalkIndexTest, RefreshedEndpointDistributionMatchesPpr) {
  // The distribution-identity claim, empirically: after a mutation and
  // its refresh, endpoint frequencies from a well-sampled node match
  // the exact PPR of the *updated* graph — the same tolerance the
  // static index passes on a fresh build.
  Graph g = CompleteGraph(6);
  DynamicGraph dg(g);
  DynamicWalkIndex index(g, 0.2, WalkIndex::Sizing::kForaPlus, 40000000,
                         /*seed=*/5);

  dg.RemoveEdge(0, 3);
  dg.AddEdge(5, 0);
  index.RefreshMutatedNode(dg, 0);
  index.RefreshMutatedNode(dg, 5);

  Graph updated = dg.Snapshot();
  std::vector<double> exact = testing::ExactPprDense(updated, 0, 0.2);
  auto endpoints = index.Endpoints(0);
  ASSERT_GT(endpoints.size(), 1000u);
  std::vector<double> freq(updated.num_nodes(), 0.0);
  for (NodeId stop : endpoints) freq[stop] += 1.0 / endpoints.size();
  for (NodeId v = 0; v < updated.num_nodes(); ++v) {
    EXPECT_NEAR(freq[v], exact[v], 0.02) << "v=" << v;
  }
}

TEST(DynamicWalkIndexTest, AddNodeMatchesFreshBuildBitForBit) {
  // Growing the index by a node replays exactly the walks a fresh build
  // at n+1 would draw for it (per-node streams make this local), so the
  // grown index and a from-scratch one are indistinguishable.
  Graph g = testing::SmallGraphZoo()[6].graph;
  constexpr uint64_t kSeed = 17;
  for (auto sizing :
       {WalkIndex::Sizing::kSpeedPpr, WalkIndex::Sizing::kForaPlus}) {
    const uint64_t w = sizing == WalkIndex::Sizing::kForaPlus ? 100000 : 0;
    DynamicGraph dg(g);
    DynamicWalkIndex grown(g, 0.2, sizing, w, kSeed);
    dg.AddNode();
    grown.AddNode();
    dg.AddNode();
    grown.AddNode();

    Graph snapshot = dg.Snapshot();
    ASSERT_EQ(snapshot.num_nodes(), g.num_nodes() + 2);
    DynamicWalkIndex fresh(snapshot, 0.2, sizing, w, kSeed);
    ASSERT_EQ(grown.total_walks(), fresh.total_walks());
    for (NodeId v = 0; v < snapshot.num_nodes(); ++v) {
      auto a = fresh.Endpoints(v);
      auto b = grown.Endpoints(v);
      ASSERT_EQ(a.size(), b.size()) << "v=" << v;
      for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i], b[i]) << "v=" << v << " i=" << i;
      }
    }
    // The new nodes are isolated: every walk from them stays put.
    for (NodeId stop : grown.Endpoints(snapshot.num_nodes() - 1)) {
      ASSERT_EQ(stop, snapshot.num_nodes() - 1);
    }
  }
}

TEST(DynamicWalkIndexTest, SizeBytesStaysBoundedUnderChurn) {
  // The arena recycles retired walk slots; a long insert+delete stream
  // must not grow the footprint past a small constant factor of what a
  // fresh build on the final graph occupies (the pre-arena layout had
  // no such bound: every refresh leaked a vector header's slack).
  Graph g = testing::SmallGraphZoo()[7].graph;  // ba_120
  constexpr uint64_t kSeed = 23;
  for (auto sizing :
       {WalkIndex::Sizing::kSpeedPpr, WalkIndex::Sizing::kForaPlus}) {
    const uint64_t w = sizing == WalkIndex::Sizing::kForaPlus ? 200000 : 0;
    DynamicGraph dg(g);
    DynamicWalkIndex index(g, 0.2, sizing, w, kSeed);
    Rng rng(29);
    for (int step = 0; step < 400; ++step) {
      const NodeId u = static_cast<NodeId>(rng.NextBounded(dg.num_nodes()));
      const NodeId v = static_cast<NodeId>(rng.NextBounded(dg.num_nodes()));
      if (u == v) continue;
      if (dg.OutDegree(u) > 0 && rng.NextBernoulli(0.5)) {
        auto neighbors = dg.OutNeighbors(u);
        dg.RemoveEdge(u, neighbors[rng.NextBounded(neighbors.size())]);
      } else {
        dg.AddEdge(u, v);
      }
      index.RefreshMutatedNode(dg, u);
    }
    DynamicWalkIndex fresh(dg.Snapshot(), 0.2, sizing, w, kSeed);
    // Degree-sized walk counts converge exactly; kForaPlus counts track
    // the ratio derived at the last drift event, which stays within the
    // drift factor of the fresh build's.
    if (sizing == WalkIndex::Sizing::kSpeedPpr) {
      EXPECT_EQ(index.total_walks(), fresh.total_walks());
    } else {
      EXPECT_LT(index.total_walks(), 2 * fresh.total_walks());
      EXPECT_GT(2 * index.total_walks(), fresh.total_walks());
    }
    // Compaction bounds each arena at ~2x its live words plus a small
    // per-node slack; 4x total plus a fixed allowance is comfortably
    // above the invariant and far below unbounded leak territory.
    EXPECT_LE(index.SizeBytes(), 4 * fresh.SizeBytes() + 64 * 1024)
        << "sizing=" << static_cast<int>(sizing);
  }
}

TEST(DynamicWalkIndexTest, DriftResizeRederivesTheForaRatio) {
  // Force an m-drift: CompleteGraph(6) has m = 30; deleting 16 edges
  // brings m to 14, and 14 * drift_factor(2) < 30 trips the resize on
  // the final refresh. After it, per-node walk counts must equal a
  // fresh build at the new m, and endpoint frequencies must still match
  // the exact PPR of the final graph — the conformance bar a fresh
  // index is held to, now across a drift event.
  Graph g = CompleteGraph(6);
  DynamicGraph dg(g);
  DynamicWalkIndex index(g, 0.2, WalkIndex::Sizing::kForaPlus, 40000000,
                         /*seed=*/5);
  ASSERT_EQ(index.resize_events(), 0u);

  int deleted = 0;
  for (NodeId u = 1; u < 6 && deleted < 16; ++u) {
    for (NodeId v = 1; v < 6 && deleted < 16; ++v) {
      if (u == v) continue;
      dg.RemoveEdge(u, v);
      index.RefreshMutatedNode(dg, u);
      ++deleted;
    }
  }
  ASSERT_EQ(deleted, 16);
  ASSERT_EQ(dg.num_edges(), 14u);
  EXPECT_EQ(index.resize_events(), 1u);

  Graph updated = dg.Snapshot();
  DynamicWalkIndex fresh(updated, 0.2, WalkIndex::Sizing::kForaPlus, 40000000,
                         /*seed=*/99);
  for (NodeId v = 0; v < updated.num_nodes(); ++v) {
    EXPECT_EQ(index.Endpoints(v).size(), fresh.Endpoints(v).size())
        << "v=" << v;
  }
  EXPECT_EQ(index.total_walks(), fresh.total_walks());

  std::vector<double> exact = testing::ExactPprDense(updated, 0, 0.2);
  auto endpoints = index.Endpoints(0);
  ASSERT_GT(endpoints.size(), 1000u);
  std::vector<double> freq(updated.num_nodes(), 0.0);
  for (NodeId stop : endpoints) freq[stop] += 1.0 / endpoints.size();
  for (NodeId v = 0; v < updated.num_nodes(); ++v) {
    EXPECT_NEAR(freq[v], exact[v], 0.02) << "v=" << v;
  }
}

TEST(DynamicWalkIndexTest, DriftFactorZeroFreezesTheRatio) {
  // drift_factor = 0 restores the frozen-ratio behavior: the same
  // 30 → 14 edge drift resizes nothing.
  Graph g = CompleteGraph(6);
  DynamicGraph dg(g);
  DynamicWalkIndex index(g, 0.2, WalkIndex::Sizing::kForaPlus, 1000000,
                         /*seed=*/5, /*drift_factor=*/0.0);
  const size_t walks_before = index.Endpoints(0).size();
  int deleted = 0;
  for (NodeId u = 1; u < 6 && deleted < 16; ++u) {
    for (NodeId v = 1; v < 6 && deleted < 16; ++v) {
      if (u == v) continue;
      dg.RemoveEdge(u, v);
      index.RefreshMutatedNode(dg, u);
      ++deleted;
    }
  }
  EXPECT_EQ(index.resize_events(), 0u);
  // Node 0's adjacency never mutated, so with the ratio frozen its walk
  // count is untouched too.
  EXPECT_EQ(index.Endpoints(0).size(), walks_before);
}

}  // namespace
}  // namespace ppr
