// Property sweeps over (graph family × α × error target) for the paper's
// core invariants (DESIGN.md "Key invariants"). These are the tests that
// pin the algebra of the algorithms, not just specific examples.

#include <cmath>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/forward_push.h"
#include "core/power_iteration.h"
#include "core/power_push.h"
#include "core/sim_forward_push.h"
#include "test_util.h"

namespace ppr {
namespace {

using testing::Sum;

enum class Family { kCycle, kPath, kStar, kComplete, kGrid, kEr, kBa, kCl };

std::string FamilyName(Family f) {
  switch (f) {
    case Family::kCycle: return "cycle";
    case Family::kPath: return "path";
    case Family::kStar: return "star";
    case Family::kComplete: return "complete";
    case Family::kGrid: return "grid";
    case Family::kEr: return "er";
    case Family::kBa: return "ba";
    case Family::kCl: return "chunglu";
  }
  return "?";
}

Graph MakeFamily(Family f) {
  Rng rng(999);
  switch (f) {
    case Family::kCycle: return CycleGraph(40);
    case Family::kPath: return PathGraph(40);
    case Family::kStar: return StarGraph(40);
    case Family::kComplete: return CompleteGraph(15);
    case Family::kGrid: return GridGraph(6, 7);
    case Family::kEr: return ErdosRenyi(120, 4.0, rng);
    case Family::kBa: return BarabasiAlbert(120, 3, rng);
    case Family::kCl: return ChungLuPowerLaw(150, 6.0, 2.5, rng);
  }
  __builtin_unreachable();
}

using Param = std::tuple<Family, double, double>;  // family, alpha, lambda

class HighPrecisionProperty : public ::testing::TestWithParam<Param> {
 protected:
  Graph graph_ = MakeFamily(std::get<0>(GetParam()));
  double alpha_ = std::get<1>(GetParam());
  double lambda_ = std::get<2>(GetParam());
};

TEST_P(HighPrecisionProperty, PowerIterationMassConservation) {
  PowerIterationOptions options;
  options.alpha = alpha_;
  options.lambda = lambda_;
  PprEstimate estimate;
  PowerIteration(graph_, 0, options, &estimate);
  EXPECT_NEAR(Sum(estimate.reserve) + Sum(estimate.residue), 1.0, 1e-10);
}

TEST_P(HighPrecisionProperty, PowerIterationGeometricDecay) {
  PowerIterationOptions options;
  options.alpha = alpha_;
  options.lambda = lambda_;
  PprEstimate estimate;
  SolveStats stats = PowerIteration(graph_, 0, options, &estimate);
  EXPECT_NEAR(stats.final_rsum,
              std::pow(1.0 - alpha_, stats.iterations), 1e-12);
}

TEST_P(HighPrecisionProperty, ForwardPushTerminationThreshold) {
  ForwardPushOptions options;
  options.alpha = alpha_;
  options.rmax = lambda_ / static_cast<double>(graph_.num_edges());
  PprEstimate estimate;
  FifoForwardPush(graph_, 0, options, &estimate);
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    ASSERT_LE(
        estimate.residue[v],
        static_cast<double>(EffectiveDegree(graph_, v)) * options.rmax +
            1e-18);
  }
  EXPECT_NEAR(Sum(estimate.reserve) + Sum(estimate.residue), 1.0, 1e-10);
}

TEST_P(HighPrecisionProperty, ForwardPushUnderestimatesTruth) {
  std::vector<double> exact = testing::ExactPprDense(graph_, 0, alpha_);
  ForwardPushOptions options;
  options.alpha = alpha_;
  options.rmax = lambda_ / static_cast<double>(graph_.num_edges());
  PprEstimate estimate;
  FifoForwardPush(graph_, 0, options, &estimate);
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    ASSERT_LE(estimate.reserve[v], exact[v] + 1e-11);
  }
}

TEST_P(HighPrecisionProperty, PowerPushMeetsErrorTarget) {
  PowerPushOptions options;
  options.alpha = alpha_;
  options.lambda = lambda_;
  PprEstimate estimate;
  PowerPush(graph_, 0, options, &estimate);
  std::vector<double> exact = testing::ExactPprDense(graph_, 0, alpha_);
  double l1 = 0.0;
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    l1 += std::fabs(estimate.reserve[v] - exact[v]);
  }
  const double dead = graph_.CountDeadEnds();
  const double m = static_cast<double>(graph_.num_edges());
  EXPECT_LE(l1, lambda_ * (1.0 + dead / m) + 1e-12);
}

TEST_P(HighPrecisionProperty, SimEqualsPowerIterationExactly) {
  PowerIterationOptions options;
  options.alpha = alpha_;
  options.lambda = lambda_;
  PprEstimate pi;
  PowerIteration(graph_, 0, options, &pi);
  PprEstimate sim;
  SimForwardPush(graph_, 0, alpha_, lambda_, &sim);
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    ASSERT_EQ(pi.reserve[v], sim.reserve[v]);
    ASSERT_EQ(pi.residue[v], sim.residue[v]);
  }
}

TEST_P(HighPrecisionProperty, AllFourSolversAgree) {
  const double lambda = lambda_;
  std::vector<std::vector<double>> results;

  PowerIterationOptions pi_options;
  pi_options.alpha = alpha_;
  pi_options.lambda = lambda;
  PprEstimate pi;
  PowerIteration(graph_, 0, pi_options, &pi);
  results.push_back(pi.reserve);

  ForwardPushOptions fp_options;
  fp_options.alpha = alpha_;
  fp_options.rmax = lambda / static_cast<double>(graph_.num_edges());
  PprEstimate fp;
  FifoForwardPush(graph_, 0, fp_options, &fp);
  results.push_back(fp.reserve);

  PowerPushOptions pp_options;
  pp_options.alpha = alpha_;
  pp_options.lambda = lambda;
  PprEstimate pp;
  PowerPush(graph_, 0, pp_options, &pp);
  results.push_back(pp.reserve);

  for (size_t i = 1; i < results.size(); ++i) {
    double l1 = 0.0;
    for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
      l1 += std::fabs(results[i][v] - results[0][v]);
    }
    EXPECT_LE(l1, 3.0 * lambda) << "solver " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HighPrecisionProperty,
    ::testing::Combine(
        ::testing::Values(Family::kCycle, Family::kPath, Family::kStar,
                          Family::kComplete, Family::kGrid, Family::kEr,
                          Family::kBa, Family::kCl),
        ::testing::Values(0.1, 0.2, 0.5),
        ::testing::Values(1e-4, 1e-8)),
    [](const ::testing::TestParamInfo<Param>& info) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%s_a%02d_l%d",
                    FamilyName(std::get<0>(info.param)).c_str(),
                    static_cast<int>(std::get<1>(info.param) * 100),
                    static_cast<int>(-std::log10(std::get<2>(info.param))));
      return std::string(buf);
    });

}  // namespace
}  // namespace ppr
