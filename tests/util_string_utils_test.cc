#include "util/string_utils.h"

#include <gtest/gtest.h>

namespace ppr {
namespace {

TEST(HumanCountTest, MatchesPaperTableOneConventions) {
  EXPECT_EQ(HumanCount(317000), "317K");
  EXPECT_EQ(HumanCount(2100000), "2.10M");
  EXPECT_EQ(HumanCount(30600000), "30.6M");
  EXPECT_EQ(HumanCount(1470000000), "1.47B");
  EXPECT_EQ(HumanCount(42), "42");
  EXPECT_EQ(HumanCount(0), "0");
  EXPECT_EQ(HumanCount(999), "999");
  EXPECT_EQ(HumanCount(1000), "1.00K");
}

TEST(HumanBytesTest, PicksBinaryUnits) {
  EXPECT_EQ(HumanBytes(12), "12B");
  EXPECT_EQ(HumanBytes(1ULL << 10), "1.00KB");
  EXPECT_EQ(HumanBytes(8 * (1ULL << 20)), "8.00MB");
  EXPECT_EQ(HumanBytes(54ULL * (1ULL << 30)), "54.0GB");
}

TEST(HumanSecondsTest, SignificantDigits) {
  EXPECT_EQ(HumanSeconds(57988.0), "57988");
  EXPECT_EQ(HumanSeconds(1.72), "1.72");
  EXPECT_EQ(HumanSeconds(0.52), "0.52");
  EXPECT_EQ(HumanSeconds(75.4), "75.4");
}

TEST(SplitAndTrimTest, SplitsOnAnyDelimiter) {
  auto pieces = SplitAndTrim("1\t2 3,4", " \t,");
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "1");
  EXPECT_EQ(pieces[3], "4");
}

TEST(SplitAndTrimTest, DropsEmptyPieces) {
  auto pieces = SplitAndTrim("  a   b  ", " ");
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
}

TEST(SplitAndTrimTest, EmptyInput) {
  EXPECT_TRUE(SplitAndTrim("", " ").empty());
  EXPECT_TRUE(SplitAndTrim("   ", " ").empty());
}

TEST(ParseUint64Test, ParsesValidNumbers) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint64("123456789", &v));
  EXPECT_EQ(v, 123456789u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));
  EXPECT_EQ(v, ~0ULL);
}

TEST(ParseUint64Test, RejectsMalformedInput) {
  uint64_t v = 77;
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
  EXPECT_FALSE(ParseUint64("12a", &v));
  EXPECT_FALSE(ParseUint64("1.5", &v));
  EXPECT_FALSE(ParseUint64(" 1", &v));
  // Overflow: one past uint64 max.
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));
  EXPECT_EQ(v, 77u) << "failed parse must not clobber the output";
}

TEST(IsCommentOrBlankTest, RecognizesSnapConventions) {
  EXPECT_TRUE(IsCommentOrBlank(""));
  EXPECT_TRUE(IsCommentOrBlank("   "));
  EXPECT_TRUE(IsCommentOrBlank("# comment"));
  EXPECT_TRUE(IsCommentOrBlank("  % matlab-style"));
  EXPECT_FALSE(IsCommentOrBlank("1 2"));
  EXPECT_FALSE(IsCommentOrBlank("  7"));
}

}  // namespace
}  // namespace ppr
