#include "eval/batch.h"

#include <cstdlib>

#include <gtest/gtest.h>

#include "approx/speedppr.h"
#include "eval/metrics.h"
#include "eval/query_gen.h"
#include "test_util.h"

namespace ppr {
namespace {

TEST(BatchPowerPushTest, MatchesSerialRuns) {
  Graph g = testing::SmallGraphZoo()[8].graph;
  auto sources = SampleQuerySources(g, 6, 1);
  PowerPushOptions options;
  options.lambda = 1e-9;
  auto rows = BatchPowerPush(g, sources, options);
  ASSERT_EQ(rows.size(), sources.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    PprEstimate serial;
    PowerPush(g, sources[i], options, &serial);
    ASSERT_EQ(rows[i], serial.reserve) << "source " << sources[i];
  }
}

TEST(BatchSpeedPprTest, EveryRowMeetsTheContract) {
  Graph g = testing::SmallGraphZoo()[7].graph;
  auto sources = SampleQuerySources(g, 4, 2);
  ApproxOptions options;
  options.epsilon = 0.5;
  auto rows = BatchSpeedPpr(g, sources, options, /*seed=*/9);
  ASSERT_EQ(rows.size(), sources.size());
  const double mu = 1.0 / g.num_nodes();
  for (size_t i = 0; i < sources.size(); ++i) {
    std::vector<double> exact =
        testing::ExactPprDense(g, sources[i], options.alpha);
    EXPECT_LE(MaxRelativeError(rows[i], exact, mu), options.epsilon)
        << "source " << sources[i];
  }
}

TEST(BatchSpeedPprTest, ThreadCountIndependent) {
  Graph g = testing::SmallGraphZoo()[8].graph;
  auto sources = SampleQuerySources(g, 5, 3);
  ApproxOptions options;
  options.epsilon = 0.4;

  ASSERT_EQ(setenv("PPR_THREADS", "1", 1), 0);
  auto serial = BatchSpeedPpr(g, sources, options, 77);
  ASSERT_EQ(setenv("PPR_THREADS", "4", 1), 0);
  auto parallel = BatchSpeedPpr(g, sources, options, 77);
  ASSERT_EQ(unsetenv("PPR_THREADS"), 0);

  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], parallel[i]) << "row " << i;
  }
}

TEST(BatchSpeedPprTest, IndexedBatch) {
  Graph g = testing::SmallGraphZoo()[7].graph;
  auto sources = SampleQuerySources(g, 3, 4);
  ApproxOptions options;
  options.epsilon = 0.3;
  Rng index_rng(5);
  WalkIndex index =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, index_rng);
  auto rows = BatchSpeedPpr(g, sources, options, 11, &index);
  const double mu = 1.0 / g.num_nodes();
  for (size_t i = 0; i < sources.size(); ++i) {
    std::vector<double> exact =
        testing::ExactPprDense(g, sources[i], options.alpha);
    EXPECT_LE(MaxRelativeError(rows[i], exact, mu), options.epsilon);
  }
}

TEST(WalkIndexParallelBuildTest, ThreadCountIndependentAndValid) {
  Graph g = testing::SmallGraphZoo()[8].graph;
  ASSERT_EQ(setenv("PPR_THREADS", "1", 1), 0);
  WalkIndex one = WalkIndex::BuildParallel(
      g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, /*seed=*/3);
  ASSERT_EQ(setenv("PPR_THREADS", "8", 1), 0);
  WalkIndex eight = WalkIndex::BuildParallel(
      g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, /*seed=*/3);
  ASSERT_EQ(unsetenv("PPR_THREADS"), 0);

  ASSERT_EQ(one.total_walks(), eight.total_walks());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto a = one.Endpoints(v);
    auto b = eight.Endpoints(v);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.size(), EffectiveDegree(g, v));
    for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
  }
}

TEST(WalkIndexParallelBuildTest, ServesSpeedPprQueries) {
  Graph g = testing::SmallGraphZoo()[7].graph;
  WalkIndex index = WalkIndex::BuildParallel(
      g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, /*seed=*/6);
  std::vector<double> exact = testing::ExactPprDense(g, 0, 0.2);
  ApproxOptions options;
  options.epsilon = 0.3;
  Rng rng(8);
  std::vector<double> estimate;
  SolveStats stats = SpeedPpr(g, 0, options, rng, &estimate, &index);
  EXPECT_EQ(stats.walk_steps, 0u);
  EXPECT_LE(MaxRelativeError(estimate, exact, 1.0 / g.num_nodes()),
            options.epsilon);
}

}  // namespace
}  // namespace ppr
