// Parallel hot paths: thread-count invariance of the walk phases,
// serial-vs-parallel exactness of the dense iteration kernels, the
// order= layout round trip, and the WalkIndex cache_dir= option.

#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/context.h"
#include "api/query.h"
#include "api/registry.h"
#include "api/solver.h"
#include "approx/monte_carlo.h"
#include "approx/residue_walks.h"
#include "approx/walk_index.h"
#include "core/pagerank.h"
#include "core/power_iteration.h"
#include "core/power_push.h"
#include "graph/dynamic_graph.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "test_util.h"
#include "util/parallel.h"

namespace ppr {
namespace {

using ::ppr::testing::ExactPprDense;
using ::ppr::testing::Sum;

constexpr uint64_t kSeed = 20260731;

double L1(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

Graph MidSizeGraph() {
  Rng rng(31);
  return BarabasiAlbert(3000, 4, rng);
}

// ---------------------------------------------------------------------
// Walk-phase determinism
// ---------------------------------------------------------------------

TEST(ResidueWalkPhaseTest, BitIdenticalAcrossThreadCounts) {
  const Graph graph = MidSizeGraph();
  const NodeId n = graph.num_nodes();
  // A residue profile heavy enough to clear the parallel cutoff
  // (total walks ≈ 0.2 · W = 40K).
  std::vector<double> residue(n, 0.0);
  for (NodeId v = 0; v < n; v += 3) residue[v] = 0.2 / (n / 3 + 1);
  const uint64_t w = 200000;

  std::vector<std::vector<double>> outputs;
  std::vector<SolveStats> stats;
  for (unsigned threads : {1u, 2u, 4u, 7u}) {
    std::vector<double> out(n, 0.0);
    SolveStats s;
    Rng rng(kSeed);
    ResidueWalkPhase(graph, residue, w, 0.2, rng, /*index=*/nullptr, &out,
                     &s, threads);
    outputs.push_back(std::move(out));
    stats.push_back(s);
  }
  for (size_t i = 1; i < outputs.size(); ++i) {
    ASSERT_EQ(outputs[0], outputs[i]) << "thread variant " << i;
    EXPECT_EQ(stats[0].random_walks, stats[i].random_walks);
    EXPECT_EQ(stats[0].walk_steps, stats[i].walk_steps);
  }
  EXPECT_GT(stats[0].random_walks, 4096u) << "cutoff not exercised";
}

TEST(ResidueWalkPhaseTest, IndexServedWalksStayThreadCountInvariant) {
  const Graph graph = MidSizeGraph();
  const NodeId n = graph.num_nodes();
  WalkIndex index = WalkIndex::BuildParallel(
      graph, 0.2, WalkIndex::Sizing::kSpeedPpr, /*walk_count_w=*/0, 77);
  std::vector<double> residue(n, 0.0);
  for (NodeId v = 0; v < n; v += 2) residue[v] = 0.3 / (n / 2 + 1);
  const uint64_t w = 150000;

  std::vector<double> serial(n, 0.0);
  std::vector<double> parallel(n, 0.0);
  SolveStats s1, s4;
  Rng rng1(kSeed), rng4(kSeed);
  ResidueWalkPhase(graph, residue, w, 0.2, rng1, &index, &serial, &s1, 1);
  ResidueWalkPhase(graph, residue, w, 0.2, rng4, &index, &parallel, &s4, 4);
  ASSERT_EQ(serial, parallel);
  EXPECT_EQ(s1.random_walks, s4.random_walks);
}

TEST(MonteCarloTest, BitIdenticalAcrossThreadCounts) {
  const Graph graph = testing::SmallGraphZoo()[7].graph;  // ba_120
  ApproxOptions options;
  options.epsilon = 0.3;  // W well above two walk blocks
  std::vector<double> serial, parallel;
  SolveStats s1, s4;
  {
    Rng rng(kSeed);
    options.threads = 1;
    s1 = MonteCarlo(graph, 5, options, rng, &serial);
  }
  {
    Rng rng(kSeed);
    options.threads = 4;
    s4 = MonteCarlo(graph, 5, options, rng, &parallel);
  }
  ASSERT_GT(s1.random_walks, 8192u) << "need >= 2 walk blocks";
  ASSERT_EQ(serial, parallel);
  EXPECT_EQ(s1.walk_steps, s4.walk_steps);
  EXPECT_NEAR(Sum(serial), 1.0, 1e-9);
}

TEST(MonteCarloTest, StopListBranchIsAlsoThreadCountInvariant) {
  // walks between one block (4096) and n routes the parallel path
  // through the stop-list branch instead of the dense counts — that
  // merge's block-ordered replay needs its own coverage.
  Rng graph_rng(17);
  const Graph graph = BarabasiAlbert(10000, 3, graph_rng);
  ApproxOptions options;
  options.epsilon = 0.5;
  options.mu = 0.028;
  std::vector<double> serial, parallel;
  SolveStats s1, s4;
  {
    Rng rng(kSeed);
    options.threads = 1;
    s1 = MonteCarlo(graph, 9, options, rng, &serial);
  }
  {
    Rng rng(kSeed);
    options.threads = 4;
    s4 = MonteCarlo(graph, 9, options, rng, &parallel);
  }
  ASSERT_GT(s1.random_walks, 4096u) << "need >= 2 walk blocks";
  ASSERT_LT(s1.random_walks, graph.num_nodes()) << "must avoid dense counts";
  ASSERT_EQ(serial, parallel);
  EXPECT_EQ(s1.walk_steps, s4.walk_steps);
}

TEST(RegistryParallelTest, ForaIsThreadCountInvariantEndToEnd) {
  // FORA's phase 1 (FIFO push) is serial at any setting and the walk
  // phase is invariant, so whole solves must agree bit for bit.
  const Graph graph = MidSizeGraph();
  std::vector<std::vector<double>> scores;
  for (unsigned threads : {1u, 4u}) {
    auto created = SolverRegistry::Global().Create(
        "fora:eps=0.5,threads=" + std::to_string(threads));
    ASSERT_TRUE(created.ok());
    std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
    ASSERT_TRUE(solver->Prepare(graph).ok());
    SolverContext context(kSeed);
    PprResult result;
    ASSERT_TRUE(solver->Solve({.source = 2}, context, &result).ok());
    scores.push_back(std::move(result.scores));
  }
  ASSERT_EQ(scores[0], scores[1]);
}

// ---------------------------------------------------------------------
// Dense kernels: parallel vs serial
// ---------------------------------------------------------------------

TEST(ParallelKernelTest, PowerIterationMatchesSerialTo1e12) {
  const Graph graph = MidSizeGraph();
  PowerIterationOptions options;
  options.lambda = 1e-10;
  PprEstimate serial;
  SolveStats serial_stats = PowerIteration(graph, 0, options, &serial);

  for (unsigned threads : {2u, 4u}) {
    options.threads = threads;
    PprEstimate parallel;
    SolveStats stats = PowerIteration(graph, 0, options, &parallel);
    EXPECT_LE(L1(serial.reserve, parallel.reserve), 1e-12) << threads;
    EXPECT_EQ(serial_stats.iterations, stats.iterations) << threads;
    EXPECT_EQ(serial_stats.push_operations, stats.push_operations) << threads;
    EXPECT_LE(stats.final_rsum, options.lambda) << threads;
  }
}

TEST(ParallelKernelTest, PowerIterationParallelIsDeterministic) {
  const Graph graph = MidSizeGraph();
  PowerIterationOptions options;
  options.lambda = 1e-8;
  options.threads = 4;
  PprEstimate a, b;
  PowerIteration(graph, 3, options, &a);
  PowerIteration(graph, 3, options, &b);
  ASSERT_EQ(a.reserve, b.reserve);
  ASSERT_EQ(a.residue, b.residue);
}

TEST(ParallelKernelTest, PageRankMatchesSerialTo1e12) {
  const Graph graph = MidSizeGraph();
  PageRankOptions options;
  const std::vector<double> serial = PageRank(graph, options);
  for (unsigned threads : {2u, 4u}) {
    options.threads = threads;
    const std::vector<double> parallel = PageRank(graph, options);
    EXPECT_LE(L1(serial, parallel), 1e-12) << threads;
    EXPECT_NEAR(Sum(parallel), 1.0, 1e-9) << threads;
  }
}

TEST(ParallelKernelTest, PowerPushParallelScanKeepsTheCertificate) {
  const Graph graph = testing::SmallGraphZoo()[7].graph;  // ba_120
  const std::vector<double> exact = ExactPprDense(graph, 1, 0.2);
  PowerPushOptions options;
  options.lambda = 1e-9;
  for (unsigned threads : {1u, 4u}) {
    options.threads = threads;
    PprEstimate estimate;
    SolveStats stats = PowerPush(graph, 1, options, &estimate);
    EXPECT_LE(stats.final_rsum, options.lambda) << threads;
    EXPECT_LE(L1(estimate.reserve, exact), 2 * options.lambda) << threads;
    EXPECT_NEAR(Sum(estimate.reserve) + Sum(estimate.residue), 1.0, 1e-9)
        << threads;
  }
  // Fixed thread count → fixed result.
  options.threads = 4;
  PprEstimate a, b;
  PowerPush(graph, 1, options, &a);
  PowerPush(graph, 1, options, &b);
  ASSERT_EQ(a.reserve, b.reserve);
}

// ---------------------------------------------------------------------
// Conformance sweep: every solver under threads=4 and each order=
// ---------------------------------------------------------------------

/// Mirrors api_registry_test's fixture selection.
const Graph& SweepFixture(const SolverCapabilities& caps, const Graph& general,
                          const Graph& strict) {
  return (caps.needs_dead_end_free || caps.needs_in_adjacency) ? strict
                                                               : general;
}

/// Dead-end-free, in-adjacency, and deliberately NOT vertex-transitive:
/// a relabeling bug on the strict-fixture solvers (bepi, bippr, hubppr)
/// must show up as misplaced scores, which a symmetric fixture like a
/// complete graph would hide.
Graph AsymmetricStrictGraph() {
  GraphBuilder builder;
  const NodeId n = 12;
  for (NodeId v = 0; v < n; ++v) builder.AddEdge(v, (v + 1) % n);
  builder.AddEdge(0, 5);
  builder.AddEdge(0, 7);
  builder.AddEdge(3, 7);
  builder.AddEdge(6, 2);
  builder.AddEdge(9, 4);
  builder.AddEdge(1, 8);
  builder.AddEdge(5, 2);
  Graph graph = builder.Build();
  graph.BuildInAdjacency();
  return graph;
}

TEST(RegistryParallelTest, ConformanceUnderThreadsAndOrders) {
  Rng rng(99);
  Graph general = BarabasiAlbert(120, 3, rng);
  Graph strict = AsymmetricStrictGraph();

  for (const std::string& name : SolverRegistry::Global().Names()) {
    for (const char* variant : {":threads=4", ":order=degree", ":order=bfs"}) {
      const std::string spec = name + variant;
      auto created = SolverRegistry::Global().Create(spec);
      ASSERT_TRUE(created.ok()) << spec << ": " << created.status().ToString();
      std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
      const SolverCapabilities caps = solver->capabilities();
      const Graph& graph = SweepFixture(caps, general, strict);
      ASSERT_TRUE(solver->Prepare(graph).ok()) << spec;

      SolverContext context(kSeed);
      PprQuery query;
      query.source = 1;
      PprResult result;
      ASSERT_TRUE(solver->Solve(query, context, &result).ok()) << spec;
      ASSERT_EQ(result.scores.size(), graph.num_nodes()) << spec;

      // The advertised ℓ1 contract must survive both options. PageRank
      // has no per-source dense reference here; its determinism check
      // below covers it.
      if (caps.family != SolverFamily::kGlobal) {
        const std::vector<double> exact = ExactPprDense(graph, 1, 0.2);
        EXPECT_LE(L1(result.scores, exact), result.l1_bound + 1e-9) << spec;
      }

      // Same spec, warm context, replayed seed → identical output.
      context.Reseed(kSeed);
      PprResult replay;
      ASSERT_TRUE(solver->Solve(query, context, &replay).ok()) << spec;
      ASSERT_EQ(result.scores, replay.scores) << spec;
    }
  }
}

// ---------------------------------------------------------------------
// order= result mapping
// ---------------------------------------------------------------------

/// A deliberately asymmetric directed graph with a dead end, so a wrong
/// permutation direction cannot cancel out.
Graph AsymmetricGraph() {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 3);
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 0);
  builder.AddEdge(4, 5);
  builder.AddEdge(5, 6);
  builder.AddEdge(6, 2);
  builder.AddEdge(2, 7);  // 7 is a dead end
  builder.AddEdge(5, 0);
  BuildOptions options;
  options.remove_isolated = false;
  return builder.Build(options);
}

TEST(GraphOrderTest, PowerPushResultsMapBackToOriginalIds) {
  const Graph graph = AsymmetricGraph();
  const std::vector<double> exact = ExactPprDense(graph, 0, 0.2);
  for (const char* order : {"none", "degree", "bfs"}) {
    auto created = SolverRegistry::Global().Create(
        std::string("powerpush:lambda=1e-12,order=") + order);
    ASSERT_TRUE(created.ok());
    std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
    ASSERT_TRUE(solver->Prepare(graph).ok()) << order;
    SolverContext context(kSeed);
    PprQuery query;
    query.source = 0;
    query.want_residues = true;
    query.top_k = 3;
    PprResult result;
    ASSERT_TRUE(solver->Solve(query, context, &result).ok()) << order;

    // Scores must line up with the dense solve in ORIGINAL ids; a
    // missing or double permutation would misplace whole entries
    // (errors ~1e-1, far beyond the 1e-10 slack).
    EXPECT_LE(L1(result.scores, exact), 1e-10) << order;
    // The residues travel through the same mapping: mass conservation
    // holds entry-aligned.
    ASSERT_TRUE(result.has_residues()) << order;
    EXPECT_NEAR(Sum(result.scores) + Sum(result.residues), 1.0, 1e-9)
        << order;
    // top_nodes speak original ids.
    ASSERT_EQ(result.top_nodes.size(), 3u) << order;
    NodeId argmax = 0;
    for (NodeId v = 1; v < graph.num_nodes(); ++v) {
      if (result.scores[v] > result.scores[argmax]) argmax = v;
    }
    EXPECT_EQ(result.top_nodes[0], argmax) << order;
  }
}

TEST(GraphOrderTest, SinglePairTargetIsMappedBothWays) {
  const Graph graph = AsymmetricStrictGraph();
  const std::vector<double> exact = ExactPprDense(graph, 1, 0.2);
  auto created = SolverRegistry::Global().Create("bippr:order=degree");
  ASSERT_TRUE(created.ok());
  std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
  ASSERT_TRUE(solver->Prepare(graph).ok());
  SolverContext context(kSeed);
  PprQuery query;
  query.source = 1;
  query.target = 4;
  PprResult result;
  ASSERT_TRUE(solver->Solve(query, context, &result).ok());
  EXPECT_NEAR(result.scores[4], exact[4], 0.05);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (v != 4) EXPECT_EQ(result.scores[v], 0.0) << v;
  }
}

TEST(GraphOrderTest, HubPprHubOraclesLiveInLayoutSpace) {
  // Regression: the hub index must be built on the relabeled copy, not
  // the caller's graph — on this asymmetric fixture an index in the
  // wrong id space misplaces whole entries (errors ~1e-1).
  const Graph graph = AsymmetricStrictGraph();
  const std::vector<double> exact = ExactPprDense(graph, 2, 0.2);
  for (const char* order : {"degree", "bfs"}) {
    auto created = SolverRegistry::Global().Create(
        std::string("hubppr:eps=0.2,hubs=6,order=") + order);
    ASSERT_TRUE(created.ok());
    std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
    ASSERT_TRUE(solver->Prepare(graph).ok()) << order;
    SolverContext context(kSeed);
    PprResult result;
    ASSERT_TRUE(solver->Solve({.source = 2}, context, &result).ok()) << order;
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      EXPECT_NEAR(result.scores[v], exact[v], 0.05)
          << "order=" << order << " v=" << v;
    }
  }
}

TEST(GraphOrderTest, IsolatedNodesSurviveRelabeling) {
  // Regression: node 2 has no edges at all; degree order assigns it the
  // highest layout id, and the permuted copy must still have all three
  // nodes (a builder-based rebuild would silently drop it).
  const Graph graph({0, 1, 1, 1}, {1});
  auto created = SolverRegistry::Global().Create("powitr:order=degree");
  ASSERT_TRUE(created.ok());
  std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
  ASSERT_TRUE(solver->Prepare(graph).ok());
  ASSERT_EQ(solver->graph()->num_nodes(), 3u);

  SolverContext context(kSeed);
  PprResult result;
  ASSERT_TRUE(solver->Solve({.source = 2}, context, &result).ok());
  ASSERT_EQ(result.scores.size(), 3u);
  // 2 is a dead end: its mass cycles 2 → (redirect) 2, so π(2,2) = 1.
  EXPECT_NEAR(result.scores[2], 1.0, 1e-7);
}

TEST(GraphOrderTest, RejectsUnknownOrderValues) {
  auto created = SolverRegistry::Global().Create("powerpush:order=zigzag");
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument);
}

TEST(RegistryParallelTest, RejectsAbsurdThreadCounts) {
  auto created = SolverRegistry::Global().Create("powitr:threads=100000");
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// cache_dir=
// ---------------------------------------------------------------------

std::string CacheDir() {
  const std::string dir = ::testing::TempDir() + "/ppr_widx_cache";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<double> SolveOnce(const std::string& spec, const Graph& graph) {
  auto created = SolverRegistry::Global().Create(spec);
  EXPECT_TRUE(created.ok()) << spec << ": " << created.status().ToString();
  std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
  EXPECT_TRUE(solver->Prepare(graph).ok()) << spec;
  SolverContext context(kSeed);
  PprResult result;
  EXPECT_TRUE(solver->Solve({.source = 3}, context, &result).ok()) << spec;
  return result.scores;
}

TEST(WalkIndexCacheTest, PrepareSavesAndSecondPrepareLoads) {
  const Graph graph = testing::SmallGraphZoo()[7].graph;  // ba_120
  const std::string dir = CacheDir();
  const std::string spec =
      "speedppr-index:eps=0.4,seed=5,cache_dir=" + dir;
  const std::string cache_path =
      dir + "/" + WalkIndex::CacheFileName(WalkIndex::Sizing::kSpeedPpr, 0.2,
                                           0, 5, graph.Fingerprint());

  const std::vector<double> first = SolveOnce(spec, graph);
  ASSERT_TRUE(std::filesystem::exists(cache_path)) << cache_path;

  // Same spec again: served from the cache, same answer bit for bit.
  EXPECT_EQ(SolveOnce(spec, graph), first);

  // Plant an index generated with a different walk seed at the expected
  // path. If Prepare really loads (rather than silently rebuilding),
  // the planted endpoints change the walk phase's output.
  WalkIndex planted = WalkIndex::BuildParallel(
      graph, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, /*seed=*/999);
  ASSERT_TRUE(planted.SaveTo(cache_path).ok());
  EXPECT_NE(SolveOnce(spec, graph), first);

  // A corrupted cache file falls back to a rebuild, restoring the
  // original answer and overwriting the bad file.
  {
    std::ofstream out(cache_path, std::ios::binary | std::ios::trunc);
    out << "not an index";
  }
  EXPECT_EQ(SolveOnce(spec, graph), first);

  std::filesystem::remove_all(dir);
}

TEST(WalkIndexCacheTest, TruncatedCacheFromMidWriteCrashRebuilds) {
  // Simulate the wreckage of a crash mid-save: a prefix of a valid
  // index at the canonical name (what the old write-in-place SaveTo
  // could leave). Load must reject it on the exact-size check and
  // Prepare must fall back to a rebuild — same answer as the first,
  // uncorrupted run — and then replace the file with a complete one.
  const Graph graph = testing::SmallGraphZoo()[7].graph;  // ba_120
  const std::string dir = CacheDir();
  const std::string spec =
      "speedppr-index:eps=0.4,seed=5,cache_dir=" + dir;
  const std::string cache_path =
      dir + "/" + WalkIndex::CacheFileName(WalkIndex::Sizing::kSpeedPpr, 0.2,
                                           0, 5, graph.Fingerprint());

  const std::vector<double> first = SolveOnce(spec, graph);
  ASSERT_TRUE(std::filesystem::exists(cache_path)) << cache_path;
  const auto full_size = std::filesystem::file_size(cache_path);
  std::filesystem::resize_file(cache_path, full_size / 2);

  auto direct = WalkIndex::LoadFrom(cache_path);
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(direct.status().code(), StatusCode::kCorruption);

  EXPECT_EQ(SolveOnce(spec, graph), first);
  EXPECT_EQ(std::filesystem::file_size(cache_path), full_size);

  std::filesystem::remove_all(dir);
}

TEST(WalkIndexCacheTest, StaleCacheFromAnEarlierEpochIsRejected) {
  // The stale-cache hazard: an index saved for the pre-update CSR must
  // never be served for the post-update graph. The filename encodes the
  // fingerprint, but a copied/renamed/colliding file defeats names — the
  // embedded fingerprint check at load time is what must hold the line.
  const Graph graph = testing::SmallGraphZoo()[7].graph;  // ba_120
  const std::string dir = CacheDir();
  const std::string spec =
      "speedppr-index:eps=0.4,seed=5,cache_dir=" + dir;

  // Prepare on the base graph: cache saved under its fingerprint.
  SolveOnce(spec, graph);
  const std::string base_cache =
      dir + "/" + WalkIndex::CacheFileName(WalkIndex::Sizing::kSpeedPpr, 0.2,
                                           0, 5, graph.Fingerprint());
  ASSERT_TRUE(std::filesystem::exists(base_cache)) << base_cache;

  // The graph evolves by one applied update batch.
  DynamicGraph evolving(graph);
  UpdateBatch batch;
  batch.Insert(0, 119).Insert(7, 3);
  ASSERT_TRUE(evolving.Apply(batch).ok());
  const Graph updated = evolving.Snapshot();
  ASSERT_NE(updated.Fingerprint(), graph.Fingerprint());

  // Tamper: plant the pre-update cache at the post-update path.
  const std::string updated_cache =
      dir + "/" + WalkIndex::CacheFileName(WalkIndex::Sizing::kSpeedPpr, 0.2,
                                           0, 5, updated.Fingerprint());
  std::filesystem::copy_file(base_cache, updated_cache);

  // Prepare on the updated graph must reject the stale file (its
  // embedded fingerprint names the old CSR) and rebuild — bitwise the
  // same answer as a cache-less solver on the updated graph.
  const std::vector<double> fresh =
      SolveOnce("speedppr-index:eps=0.4,seed=5", updated);
  EXPECT_EQ(SolveOnce(spec, updated), fresh);

  // And the rebuild replaced the tampered file with a valid cache for
  // the updated graph.
  auto reloaded = WalkIndex::LoadFrom(updated_cache);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded.value().graph_fingerprint(), updated.Fingerprint());

  std::filesystem::remove_all(dir);
}

TEST(WalkIndexCacheTest, UnwritableCacheDirDegradesToWarning) {
  // The index that was just built is valid regardless of whether it
  // could be saved; Prepare must not fail on a bad cache_dir.
  const Graph graph = testing::SmallGraphZoo()[7].graph;
  const std::vector<double> scores = SolveOnce(
      "speedppr-index:eps=0.4,cache_dir=/nonexistent/ppr_cache", graph);
  ASSERT_EQ(scores.size(), graph.num_nodes());
  EXPECT_NEAR(testing::Sum(scores), 1.0, 1e-9);
}

TEST(WalkIndexCacheTest, CacheDirWithoutIndexIsRejected) {
  auto created = SolverRegistry::Global().Create("fora:cache_dir=/tmp/x");
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument);

  auto non_two_phase =
      SolverRegistry::Global().Create("powerpush:cache_dir=/tmp/x");
  ASSERT_FALSE(non_two_phase.ok());
  EXPECT_EQ(non_two_phase.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ppr
