#include "approx/bippr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "test_util.h"

namespace ppr {
namespace {

TEST(BiPprTest, SinglePairEstimateIsAccurate) {
  Graph g = PaperExampleGraph();
  g.BuildInAdjacency();
  std::vector<double> exact = testing::ExactPprDense(g, 0, 0.2);
  BiPprOptions options;
  options.epsilon = 0.2;
  Rng rng(5);
  for (NodeId t = 0; t < g.num_nodes(); ++t) {
    BiPprResult result = BiPpr(g, 0, t, options, rng);
    EXPECT_NEAR(result.estimate, exact[t], 0.25 * exact[t] + 1e-3)
        << "t=" << t;
  }
}

TEST(BiPprTest, UnbiasedOverSeeds) {
  Graph g = testing::SmallGraphZoo()[4].graph;  // complete_10
  g.BuildInAdjacency();
  std::vector<double> exact = testing::ExactPprDense(g, 2, 0.2);
  BiPprOptions options;
  options.epsilon = 0.5;
  double mean = 0.0;
  constexpr int kRuns = 40;
  for (int run = 0; run < kRuns; ++run) {
    Rng rng(run * 31337 + 11);
    mean += BiPpr(g, 2, 7, options, rng).estimate / kRuns;
  }
  EXPECT_NEAR(mean, exact[7], 0.02);
}

TEST(BiPprTest, PureBackwardWhenRmaxTiny) {
  // With a tiny rmax the backward phase resolves everything; the walk
  // phase adds ~zero and the estimate is near-exact.
  Graph g = CycleGraph(16);
  g.BuildInAdjacency();
  std::vector<double> exact = testing::ExactPprDense(g, 3, 0.2);
  BiPprOptions options;
  options.rmax = 1e-12;
  Rng rng(1);
  BiPprResult result = BiPpr(g, 3, 9, options, rng);
  EXPECT_NEAR(result.estimate, exact[9], 1e-9);
}

TEST(BiPprTest, ReportsWorkCounters) {
  Graph g = testing::SmallGraphZoo()[4].graph;
  g.BuildInAdjacency();
  BiPprOptions options;
  Rng rng(3);
  BiPprResult result = BiPpr(g, 0, 1, options, rng);
  EXPECT_GT(result.walks, 0u);
  EXPECT_GT(result.backward_pushes, 0u);
  EXPECT_GE(result.seconds, 0.0);
}

TEST(BiPprTest, SelfPairAtLeastAlpha) {
  Graph g = testing::SmallGraphZoo()[5].graph;  // grid_5x5
  g.BuildInAdjacency();
  BiPprOptions options;
  options.epsilon = 0.3;
  Rng rng(9);
  BiPprResult result = BiPpr(g, 6, 6, options, rng);
  EXPECT_GE(result.estimate, 0.2 * 0.8);  // alpha modulo estimator noise
}

}  // namespace
}  // namespace ppr
