#include "bepi/sparse_matrix.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ppr {
namespace {

TEST(CsrMatrixTest, FromTripletsSortsAndStores) {
  CsrMatrix m = CsrMatrix::FromTriplets(
      2, 3, {{1, 2, 5.0}, {0, 1, 2.0}, {0, 0, 1.0}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 3u);
  auto cols0 = m.RowCols(0);
  ASSERT_EQ(cols0.size(), 2u);
  EXPECT_EQ(cols0[0], 0u);
  EXPECT_EQ(cols0[1], 1u);
  EXPECT_DOUBLE_EQ(m.RowValues(0)[1], 2.0);
}

TEST(CsrMatrixTest, DuplicateTripletsAreSummed) {
  CsrMatrix m = CsrMatrix::FromTriplets(1, 1, {{0, 0, 1.5}, {0, 0, 2.5}});
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.RowValues(0)[0], 4.0);
}

TEST(CsrMatrixTest, MultiplyMatchesDense) {
  Rng rng(3);
  constexpr uint32_t kN = 20;
  std::vector<std::vector<double>> dense(kN, std::vector<double>(kN, 0.0));
  std::vector<Triplet> triplets;
  for (int k = 0; k < 100; ++k) {
    uint32_t r = static_cast<uint32_t>(rng.NextBounded(kN));
    uint32_t c = static_cast<uint32_t>(rng.NextBounded(kN));
    double v = rng.NextDouble() - 0.5;
    dense[r][c] += v;
    triplets.push_back({r, c, v});
  }
  CsrMatrix m = CsrMatrix::FromTriplets(kN, kN, triplets);
  std::vector<double> x(kN);
  for (auto& xi : x) xi = rng.NextDouble();
  std::vector<double> y(kN, 0.0);
  m.Multiply(x, y);
  for (uint32_t r = 0; r < kN; ++r) {
    double expected = 0.0;
    for (uint32_t c = 0; c < kN; ++c) expected += dense[r][c] * x[c];
    EXPECT_NEAR(y[r], expected, 1e-12);
  }
}

TEST(CsrMatrixTest, MultiplySubtractComposes) {
  CsrMatrix m =
      CsrMatrix::FromTriplets(2, 2, {{0, 0, 2.0}, {1, 1, 3.0}});
  std::vector<double> x = {1.0, 1.0};
  std::vector<double> y = {10.0, 10.0};
  m.MultiplySubtract(x, y);
  EXPECT_DOUBLE_EQ(y[0], 8.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(CsrMatrixTest, EmptyMatrixMultiply) {
  CsrMatrix m = CsrMatrix::FromTriplets(3, 3, {});
  std::vector<double> x = {1, 2, 3};
  std::vector<double> y = {9, 9, 9};
  m.Multiply(x, y);
  for (double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(CsrMatrixTest, SizeBytesIsPositive) {
  CsrMatrix m = CsrMatrix::FromTriplets(2, 2, {{0, 1, 1.0}});
  EXPECT_GT(m.SizeBytes(), 0u);
}

TEST(DenseLuTest, SolvesIdentity) {
  std::vector<double> a = {1, 0, 0, 1};
  DenseLu lu = DenseLu::Factorize(a, 2);
  std::vector<double> b = {3.0, 4.0};
  lu.Solve(b);
  EXPECT_DOUBLE_EQ(b[0], 3.0);
  EXPECT_DOUBLE_EQ(b[1], 4.0);
}

TEST(DenseLuTest, SolvesKnownSystem) {
  // [2 1; 1 3] x = [5; 10]  =>  x = (1, 3).
  std::vector<double> a = {2, 1, 1, 3};
  DenseLu lu = DenseLu::Factorize(a, 2);
  std::vector<double> b = {5.0, 10.0};
  lu.Solve(b);
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(DenseLuTest, PivotingHandlesZeroLeadingEntry) {
  // [0 1; 1 0] needs a row swap.
  std::vector<double> a = {0, 1, 1, 0};
  DenseLu lu = DenseLu::Factorize(a, 2);
  std::vector<double> b = {7.0, 8.0};
  lu.Solve(b);
  EXPECT_NEAR(b[0], 8.0, 1e-12);
  EXPECT_NEAR(b[1], 7.0, 1e-12);
}

TEST(DenseLuTest, RandomDiagonallyDominantSystems) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const uint32_t n = 1 + static_cast<uint32_t>(rng.NextBounded(30));
    std::vector<double> a(static_cast<size_t>(n) * n);
    for (auto& v : a) v = rng.NextDouble() - 0.5;
    for (uint32_t i = 0; i < n; ++i) {
      a[static_cast<size_t>(i) * n + i] += n;  // make dominant
    }
    std::vector<double> a_copy = a;
    std::vector<double> x_true(n);
    for (auto& v : x_true) v = rng.NextDouble() * 2 - 1;
    std::vector<double> b(n, 0.0);
    for (uint32_t r = 0; r < n; ++r) {
      for (uint32_t c = 0; c < n; ++c) {
        b[r] += a_copy[static_cast<size_t>(r) * n + c] * x_true[c];
      }
    }
    DenseLu lu = DenseLu::Factorize(std::move(a), n);
    lu.Solve(b);
    for (uint32_t i = 0; i < n; ++i) {
      ASSERT_NEAR(b[i], x_true[i], 1e-9) << "trial " << trial;
    }
  }
}

TEST(DenseLuDeathTest, SingularMatrixAborts) {
  std::vector<double> a = {1, 1, 1, 1};
  EXPECT_DEATH(DenseLu::Factorize(a, 2), "singular");
}

}  // namespace
}  // namespace ppr
