#include "core/forward_push.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "test_util.h"

namespace ppr {
namespace {

using testing::ExactPprDense;
using testing::Sum;

TEST(ForwardPushTest, TerminationInvariantEquation7) {
  // On termination every residue obeys r(s,v) <= d_v * rmax and the ℓ1
  // error equals the residue sum (Equation (7)).
  for (auto& tc : testing::SmallGraphZoo()) {
    ForwardPushOptions options;
    options.rmax = 1e-5;
    PprEstimate estimate;
    SolveStats stats = FifoForwardPush(tc.graph, 0, options, &estimate);
    for (NodeId v = 0; v < tc.graph.num_nodes(); ++v) {
      ASSERT_LE(estimate.residue[v],
                static_cast<double>(EffectiveDegree(tc.graph, v)) *
                        options.rmax +
                    1e-15)
          << tc.name << " v=" << v;
    }
    EXPECT_NEAR(stats.final_rsum, estimate.ResidueSum(), 1e-9) << tc.name;
  }
}

TEST(ForwardPushTest, L1ErrorBoundedByMRmax) {
  Graph g = PaperExampleGraph();
  std::vector<double> exact = ExactPprDense(g, 0, 0.2);
  ForwardPushOptions options;
  options.rmax = 1e-6;
  PprEstimate estimate;
  FifoForwardPush(g, 0, options, &estimate);
  double l1 = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    l1 += std::abs(estimate.reserve[v] - exact[v]);
  }
  EXPECT_LE(l1, static_cast<double>(g.num_edges()) * options.rmax + 1e-12);
}

TEST(ForwardPushTest, ResidueSumIsExactL1Error) {
  Graph g = PaperExampleGraph();
  std::vector<double> exact = ExactPprDense(g, 1, 0.2);
  ForwardPushOptions options;
  options.rmax = 1e-4;
  PprEstimate estimate;
  FifoForwardPush(g, 1, options, &estimate);
  double l1 = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    l1 += exact[v] - estimate.reserve[v];  // underestimate everywhere
  }
  EXPECT_NEAR(l1, estimate.ResidueSum(), 1e-10);
}

TEST(ForwardPushTest, MassConservation) {
  for (auto& tc : testing::SmallGraphZoo()) {
    ForwardPushOptions options;
    options.rmax = 1e-4;
    PprEstimate estimate;
    FifoForwardPush(tc.graph, 0, options, &estimate);
    EXPECT_NEAR(Sum(estimate.reserve) + Sum(estimate.residue), 1.0, 1e-10)
        << tc.name;
  }
}

TEST(ForwardPushTest, FirstPushMatchesPaperFigure2) {
  // Figure 2, step 1: pushing v1 gives π̂(v1) = 0.2 and residues 0.4 on
  // both out-neighbors v2, v3. Verify via a one-push-only run (rmax
  // large enough that v2, v3 with degree 4 and 2 stay inactive:
  // 0.4 <= d*rmax needs rmax >= 0.2; the source's first push still
  // happens because residue 1 > 2*0.2).
  Graph g = PaperExampleGraph();
  ForwardPushOptions options;
  options.rmax = 0.2;
  PprEstimate estimate;
  SolveStats stats = FifoForwardPush(g, 0, options, &estimate);
  EXPECT_EQ(stats.push_operations, 1u);
  EXPECT_DOUBLE_EQ(estimate.reserve[0], 0.2);
  EXPECT_DOUBLE_EQ(estimate.residue[1], 0.4);
  EXPECT_DOUBLE_EQ(estimate.residue[2], 0.4);
  EXPECT_DOUBLE_EQ(estimate.residue[0], 0.0);
}

TEST(ForwardPushTest, PaperRmaxReproducesFigure2FinalReserves) {
  // With rmax = 0.099 the run in Figure 2 performs pushes on v1, v3, v2
  // and stops. FIFO order pushes v2 before v3, but the final reserve of
  // the *source* matches, and every termination invariant holds. We
  // check the quantities that are order-independent.
  Graph g = PaperExampleGraph();
  ForwardPushOptions options;
  options.rmax = 0.099;
  PprEstimate estimate;
  FifoForwardPush(g, 0, options, &estimate);
  EXPECT_DOUBLE_EQ(estimate.reserve[0], 0.2);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_LE(estimate.residue[v], g.OutDegree(v) * options.rmax + 1e-15);
  }
  EXPECT_NEAR(Sum(estimate.reserve) + Sum(estimate.residue), 1.0, 1e-12);
}

TEST(ForwardPushTest, SmallerRmaxGivesMoreAccuracy) {
  Graph g = testing::SmallGraphZoo()[8].graph;  // chunglu_150
  std::vector<double> exact = ExactPprDense(g, 0, 0.2);
  double prev_error = 1.0;
  for (double rmax : {1e-3, 1e-5, 1e-7}) {
    ForwardPushOptions options;
    options.rmax = rmax;
    PprEstimate estimate;
    FifoForwardPush(g, 0, options, &estimate);
    double l1 = 0.0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      l1 += std::abs(estimate.reserve[v] - exact[v]);
    }
    EXPECT_LT(l1, prev_error);
    prev_error = l1;
  }
  EXPECT_LT(prev_error, 1e-4);
}

TEST(ForwardPushTest, StopRsumHaltsEarly) {
  Graph g = testing::SmallGraphZoo()[6].graph;  // er_100
  ForwardPushOptions options;
  options.rmax = 1e-9;
  options.stop_rsum = 0.5;
  PprEstimate estimate;
  SolveStats stats = FifoForwardPush(g, 0, options, &estimate);
  EXPECT_LE(stats.final_rsum, 0.5);
  // A full run pushes far more.
  options.stop_rsum = 0.0;
  PprEstimate full;
  SolveStats full_stats = FifoForwardPush(g, 0, options, &full);
  EXPECT_GT(full_stats.push_operations, stats.push_operations);
}

TEST(ForwardPushTest, RefineContinuesFromExistingState) {
  Graph g = testing::SmallGraphZoo()[7].graph;  // ba_120
  ForwardPushOptions options;
  options.rmax = 1e-3;
  PprEstimate estimate;
  FifoForwardPush(g, 0, options, &estimate);
  // Refine to a 100x tighter threshold.
  const double tighter = 1e-5;
  FifoForwardPushRefine(g, 0, options.alpha, tighter, &estimate);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_LE(estimate.residue[v],
              static_cast<double>(EffectiveDegree(g, v)) * tighter + 1e-15);
  }
  EXPECT_NEAR(Sum(estimate.reserve) + Sum(estimate.residue), 1.0, 1e-10);
}

TEST(ForwardPushTest, RefineFromConvergedStateIsCheap) {
  Graph g = testing::SmallGraphZoo()[6].graph;
  ForwardPushOptions options;
  options.rmax = 1e-6;
  PprEstimate estimate;
  FifoForwardPush(g, 0, options, &estimate);
  SolveStats stats =
      FifoForwardPushRefine(g, 0, options.alpha, options.rmax, &estimate);
  EXPECT_EQ(stats.push_operations, 0u)
      << "already satisfies the threshold; nothing to push";
}

TEST(ForwardPushTest, DeadEndMassFlowsBackToSource) {
  Graph g = PathGraph(4);  // 0->1->2->3, 3 dead
  ForwardPushOptions options;
  options.rmax = 1e-10;
  PprEstimate estimate;
  FifoForwardPush(g, 0, options, &estimate);
  std::vector<double> exact = ExactPprDense(g, 0, options.alpha);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_NEAR(estimate.reserve[v], exact[v], 1e-8) << "v=" << v;
  }
}

TEST(ForwardPushTest, IsolatedSourceDeadEndConverges) {
  // Source is itself a dead end: π(s,s) = 1. The effective-degree rule
  // keeps the push loop finite.
  GraphBuilder b;
  b.AddEdge(1, 2);
  b.AddEdge(2, 1);
  BuildOptions bo;
  bo.remove_isolated = false;
  Graph g = b.Build(bo);
  ASSERT_EQ(g.OutDegree(0), 0u);
  ForwardPushOptions options;
  options.rmax = 1e-8;
  PprEstimate estimate;
  FifoForwardPush(g, 0, options, &estimate);
  EXPECT_NEAR(estimate.reserve[0], 1.0, 1e-6);
  EXPECT_NEAR(estimate.reserve[1], 0.0, 1e-12);
}

TEST(ForwardPushTest, TheoremBoundOnWork) {
  // Theorem 4.3: total edge pushes = O((m/α) ln(1/λ) + m). Verify the
  // concrete constant from the proof: T <= (m/α) ln(1/λ) + 2m.
  for (auto& tc : testing::SmallGraphZoo()) {
    const double m = static_cast<double>(tc.graph.num_edges());
    ForwardPushOptions options;
    options.rmax = 1e-6 / m;
    PprEstimate estimate;
    SolveStats stats = FifoForwardPush(tc.graph, 0, options, &estimate);
    const double lambda = m * options.rmax;
    const double bound = (m / options.alpha) * std::log(1.0 / lambda) + 2 * m;
    EXPECT_LE(static_cast<double>(stats.edge_pushes), bound) << tc.name;
  }
}

}  // namespace
}  // namespace ppr
