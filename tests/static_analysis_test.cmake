# Negative-compile harness: proves the compile-time contracts actually
# reject what they claim to reject. Each probe under
# tests/static_analysis/probes/ comes as a bad/good pair — the bad
# probe must FAIL to compile with the gate's flags, and its corrected
# good twin must compile with the same flags. A bad probe that compiles
# means a contract silently rotted (e.g. someone stripped the capability
# attributes off ppr::MutexLock, or dropped [[nodiscard]] from Status)
# and the harness fails the build.
#
# Included by tests/static_analysis/CMakeLists.txt (a mini-project
# configured by the `static_analysis.negative_compile` ctest entry), not
# by the main build: try_compile is a configure-time command, so the
# probes run as their own configure step.
#
# The [[nodiscard]] probes run under any compiler. The thread-safety
# probes need Clang (-Wthread-safety); under other compilers they are
# reported as skipped, not silently dropped.

set(CMAKE_TRY_COMPILE_TARGET_TYPE STATIC_LIBRARY)  # compile-only, no main()

set(PPR_PROBE_DIR ${CMAKE_CURRENT_LIST_DIR}/static_analysis/probes)
set(PPR_PROBE_FAILURES "")
set(PPR_PROBE_COUNT 0)

# ppr_probe(<name> <source> <EXPECT_COMPILE|EXPECT_REJECT> <flags>
#           <diag-substring>)
# For EXPECT_REJECT, the compiler output must contain <diag-substring> —
# a probe that fails for an unrelated reason (typo, missing include) is
# a harness bug, not a passing test.
function(ppr_probe name source expectation flags diag)
  math(EXPR count "${PPR_PROBE_COUNT} + 1")
  set(PPR_PROBE_COUNT ${count} PARENT_SCOPE)
  separate_arguments(flag_list UNIX_COMMAND "${flags}")
  # Distinct cached result var per probe; the ctest entry configures this
  # project with --fresh, so results are never stale across runs.
  try_compile(ppr_probe_${name}
              ${CMAKE_BINARY_DIR}/probe_${name}
              ${PPR_PROBE_DIR}/${source}
              CMAKE_FLAGS "-DINCLUDE_DIRECTORIES=${PPR_SOURCE_DIR}/src"
              COMPILE_DEFINITIONS ${flag_list}
              CXX_STANDARD 20
              CXX_STANDARD_REQUIRED ON
              OUTPUT_VARIABLE probe_output)
  if(expectation STREQUAL "EXPECT_COMPILE")
    if(ppr_probe_${name})
      message(STATUS "probe ${name}: compiled (expected)")
    else()
      list(APPEND PPR_PROBE_FAILURES
           "${name}: expected to compile but was rejected:\n${probe_output}")
    endif()
  elseif(expectation STREQUAL "EXPECT_REJECT")
    if(ppr_probe_${name})
      list(APPEND PPR_PROBE_FAILURES
           "${name}: expected rejection (${diag}) but it compiled — the "
           "gate this probe exercises is no longer enforced")
    elseif(NOT probe_output MATCHES "${diag}")
      list(APPEND PPR_PROBE_FAILURES
           "${name}: rejected, but not by '${diag}' — probe is broken, "
           "not passing:\n${probe_output}")
    else()
      message(STATUS "probe ${name}: rejected by ${diag} (expected)")
    endif()
  else()
    message(FATAL_ERROR "ppr_probe ${name}: bad expectation ${expectation}")
  endif()
  set(PPR_PROBE_FAILURES "${PPR_PROBE_FAILURES}" PARENT_SCOPE)
endfunction()

# ------------------------------------------------- [[nodiscard]] probes
# Gate: class-level [[nodiscard]] on Status/Result (src/util/status.h)
# plus -Werror=unused-result (root CMakeLists). Compiler-agnostic.

ppr_probe(status_discard_bad bad_status_discard.cc
          EXPECT_REJECT "-Werror=unused-result" "unused-result")
ppr_probe(status_discard_good good_status_discard.cc
          EXPECT_COMPILE "-Werror=unused-result" "")
ppr_probe(solve_discard_bad bad_solve_discard.cc
          EXPECT_REJECT "-Werror=unused-result" "unused-result")
ppr_probe(solve_discard_good good_solve_discard.cc
          EXPECT_COMPILE "-Werror=unused-result" "")

# ------------------------------------------------ thread-safety probes
# Gate: PPR_GUARDED_BY/PPR_REQUIRES attributes (util/thread_annotations.h)
# on the ppr::Mutex wrappers (util/mutex.h), checked by Clang's
# -Wthread-safety — the same flags PPR_ANALYZE turns on for the tree.

if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  set(ts_flags "-Wthread-safety -Werror=thread-safety")
  ppr_probe(server_guarded_bad bad_server_guarded_state.cc
            EXPECT_REJECT "${ts_flags}" "thread-safety")
  ppr_probe(server_guarded_good good_server_guarded_state.cc
            EXPECT_COMPILE "${ts_flags}" "")
  ppr_probe(pool_checkout_bad bad_pool_checkout.cc
            EXPECT_REJECT "${ts_flags}" "thread-safety")
  ppr_probe(pool_checkout_good good_pool_checkout.cc
            EXPECT_COMPILE "${ts_flags}" "")
else()
  message(STATUS "thread-safety probes: SKIPPED "
          "(${CMAKE_CXX_COMPILER_ID} has no -Wthread-safety; they run on "
          "the Clang CI job)")
endif()

# -------------------------------------------------------------- verdict
if(PPR_PROBE_FAILURES)
  list(JOIN PPR_PROBE_FAILURES "\n---\n" failure_report)
  message(FATAL_ERROR
          "negative-compile probes failed:\n${failure_report}")
endif()
message(STATUS "all ${PPR_PROBE_COUNT} negative-compile probes behaved")
